// Full-stack conformance grid: every circuit family x several sizes, all
// three engines (+ the optimizer as a preprocessing pass) must agree on the
// final state. This is the repository's broadest regression net.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "helpers.hpp"
#include "qc/optimizer.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd {
namespace {

constexpr int kFamilies = 14;

qc::Circuit familyCircuit(int family, int size) {
  // size in {0, 1, 2} scales each family's qubit count.
  const Qubit n = static_cast<Qubit>(5 + 2 * size);  // 5, 7, 9
  switch (family) {
    case 0: return circuits::ghz(n);
    case 1: return circuits::wState(n);
    case 2: return circuits::adder((n - 1) / 2, 3 + size, 5);
    case 3: return circuits::qft(n, 3 + 2 * size);
    case 4: return circuits::grover(n);
    case 5: return circuits::bernsteinVazirani(n - 1, 0b1011 + size);
    case 6: return circuits::dnn(n, 2 + size, 300 + size);
    case 7: return circuits::vqe(n, 2 + size, 310 + size);
    case 8: return circuits::knn(n | 1, 320 + size);
    case 9: return circuits::swapTest(n | 1, 330 + size);
    case 10: return circuits::supremacy(n, 4 + size, 340 + size);
    case 11: return circuits::qaoa(n, 1 + size, 350 + size);
    case 12: return circuits::hiddenShift(n & ~1, 0b101 + size, 360 + size);
    default: return circuits::quantumVolume(n, 1 + size, 370 + size);
  }
}

class FamilyGrid : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FamilyGrid, AllEnginesAndOptimizerAgree) {
  const auto [family, size] = GetParam();
  const auto circuit = familyCircuit(family, size);
  const Qubit n = circuit.numQubits();

  sim::ArraySimulator arr{n, {.threads = 2}};
  arr.simulate(circuit);

  sim::DDSimulator ddSim{n};
  ddSim.simulate(circuit);
  EXPECT_STATE_NEAR(ddSim.stateVector(), arr.state(), 1e-8)
      << circuit.name() << " [dd vs array]";

  flat::FlatDDOptions opt;
  opt.threads = 4;
  flat::FlatDDSimulator flatSim{n, opt};
  flatSim.simulate(circuit);
  EXPECT_STATE_NEAR(flatSim.stateVector(), arr.state(), 1e-8)
      << circuit.name() << " [flatdd vs array]";

  // Optimizer pass then array simulation: same state.
  const auto optimized = qc::optimize(circuit);
  sim::ArraySimulator arrOpt{n, {.threads = 2}};
  arrOpt.simulate(optimized);
  EXPECT_STATE_NEAR(arrOpt.state(), arr.state(), 1e-8)
      << circuit.name() << " [optimized vs raw]";
}

INSTANTIATE_TEST_SUITE_P(Grid, FamilyGrid,
                         ::testing::Combine(::testing::Range(0, kFamilies),
                                            ::testing::Range(0, 3)));

}  // namespace
}  // namespace fdd
