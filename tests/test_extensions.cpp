// Tests for library features beyond the paper's algorithms: the
// Quantum++-faithful MultiIndex kernel, the identity-subtree fast path and
// its ablation switch, the complex-table garbage collection, and the
// identity-node marking invariant.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "dd/package.hpp"
#include "flatdd/dmav.hpp"
#include "helpers.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd {
namespace {

TEST(MultiIndexKernel, AgreesWithBitTricks) {
  const Qubit n = 7;
  const auto circuit = test::randomCircuit(n, 50, 61);
  sim::ArraySimulator fast{n, {.indexing = sim::ArrayIndexing::BitTricks}};
  fast.simulate(circuit);
  sim::ArraySimulator faithful{
      n, {.indexing = sim::ArrayIndexing::MultiIndex}};
  faithful.simulate(circuit);
  EXPECT_STATE_NEAR(fast.state(), faithful.state(), 1e-12);
}

TEST(MultiIndexKernel, ThreadedAgreesToo) {
  const Qubit n = 8;
  const auto circuit = circuits::supremacy(n, 6, 62);
  sim::ArraySimulator a{n,
                        {.threads = 4,
                         .parallelThresholdDim = 1,
                         .indexing = sim::ArrayIndexing::MultiIndex}};
  a.simulate(circuit);
  sim::ArraySimulator b{n, {.threads = 1}};
  b.simulate(circuit);
  EXPECT_STATE_NEAR(a.state(), b.state(), 1e-11);
}

TEST(IdentFastPath, TogglePreservesResults) {
  const Qubit n = 7;
  dd::Package p{n};
  const qc::Operation op{qc::GateKind::U3, 2, {5}, {0.4, 0.8, 1.2}};
  const dd::mEdge m = p.makeGateDD(op);
  const auto v = test::randomState(n, 63);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> fast(v.size());
  AlignedVector<Complex> scalar(v.size());

  ASSERT_TRUE(flat::identFastPathEnabled());
  flat::dmav(m, n, in, fast, 2);
  flat::setIdentFastPath(false);
  EXPECT_FALSE(flat::identFastPathEnabled());
  flat::dmav(m, n, in, scalar, 2);
  flat::setIdentFastPath(true);

  EXPECT_STATE_NEAR(fast, scalar, 1e-12);
  const auto ref = test::denseApply(test::denseOperator(op, n), v);
  EXPECT_STATE_NEAR(fast, ref, 1e-11);
}

TEST(IdentMarking, IdentityNodesAreMarked) {
  dd::Package p{8};
  const dd::mEdge id = p.makeIdent(7);
  EXPECT_TRUE(id.n->ident);
  // Every node along the identity chain is marked.
  const dd::mNode* cur = id.n;
  while (!cur->isTerminal()) {
    EXPECT_TRUE(cur->ident);
    cur = cur->e[0].n;
  }
}

TEST(IdentMarking, GateDDsContainMarkedIdentitySubtrees) {
  // A gate on qubit k has pure-identity subtrees below level k.
  dd::Package p{8};
  const dd::mEdge h = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 5);
  EXPECT_FALSE(h.n->ident);  // the root is not an identity
  // Walk down the diagonal to the target level; below it sits identity.
  const dd::mNode* cur = h.n;
  for (int level = 7; level > 5; --level) {
    cur = cur->e[0].n;
  }
  // cur is the H-level node; its nonzero children are identities.
  for (const auto& child : cur->e) {
    if (!child.isZero() && !child.isTerminal()) {
      EXPECT_TRUE(child.n->ident);
    }
  }
}

TEST(IdentMarking, NonIdentityDiagonalIsNotMarked) {
  dd::Package p{4};
  const dd::mEdge rz =
      p.makeGateDD(qc::gateMatrix(qc::GateKind::RZ, {0.7}), 0);
  // RZ is diagonal but not the identity; no node of it may claim ident.
  std::vector<const dd::mNode*> stack{rz.n};
  while (!stack.empty()) {
    const dd::mNode* n = stack.back();
    stack.pop_back();
    if (n->isTerminal()) {
      continue;
    }
    if (n->ident) {
      // Only genuine identity subtrees may be marked; verify by extracting.
      // An ident node at level l must represent I_{2^(l+1)}.
      // RZ's subtree below the target *is* the identity, which is fine;
      // the node containing the e^{±i t} weights is at the target level.
      EXPECT_GT(n->v, -1);
    }
    for (const auto& child : n->e) {
      if (!child.isZero() && !child.isTerminal()) {
        stack.push_back(child.n);
      }
    }
  }
  // The root itself (carrying distinct diagonal phases) must not be ident.
  EXPECT_FALSE(rz.n->ident);
}

TEST(ComplexTableGc, RebuildKeepsSimulationCorrect) {
  // Force many GC cycles with table rebuilds on an irregular circuit and
  // cross-check the final state.
  const Qubit n = 8;
  const auto circuit = circuits::dnn(n, 6, 64);
  sim::DDSimulator s{n};
  std::size_t i = 0;
  for (const auto& op : circuit) {
    s.applyOperation(op);
    if (++i % 10 == 0) {
      s.package().garbageCollect(true);
    }
  }
  sim::ArraySimulator ref{n};
  ref.simulate(circuit);
  EXPECT_STATE_NEAR(s.stateVector(), ref.state(), 1e-9);
}

TEST(ComplexTableGc, MemoryStaysBoundedOnIrregularRuns) {
  // The complex table must not grow without bound across a long irregular
  // simulation (the rebuild-on-GC keeps it proportional to live nodes).
  const Qubit n = 10;
  sim::DDSimulator s{n};
  const auto circuit = circuits::dnn(n, 30, 65);
  s.simulate(circuit);
  const auto stats = s.package().stats();
  // Generous bound: a few hundred MB would indicate the leak regressed.
  EXPECT_LT(stats.memoryBytes, std::size_t{256} * 1024 * 1024);
}

TEST(InsertExact, PreservesBitPatterns) {
  dd::ComplexTable t{1e-10};
  const Complex a{0.123456789, -0.5};
  const Complex canonical = t.lookup(a);
  t.clear();
  t.insertExact(canonical);
  // Lookup of the exact value returns the exact value.
  const Complex again = t.lookup(canonical);
  EXPECT_TRUE(dd::weightEqual(canonical, again));
}

}  // namespace
}  // namespace fdd
