// Parallel DD-to-array conversion (Section 3.1.2): equivalence with the
// sequential conversion across circuit families and thread counts, plus the
// load-balancing and scalar-multiplication special cases of Fig. 4.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "flatdd/conversion.hpp"
#include "helpers.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd::flat {
namespace {

struct ConvCase {
  qc::Circuit circuit;
  unsigned threads;
};

class Conversion
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

qc::Circuit circuitByIndex(int idx) {
  switch (idx) {
    case 0: return circuits::ghz(9);
    case 1: return circuits::wState(9);
    case 2: return circuits::qft(8, 11);
    case 3: return circuits::dnn(8, 3, 3);
    case 4: return circuits::vqe(8, 2, 4);
    case 5: return circuits::supremacy(8, 6, 6);
    case 6: return circuits::adder(3, 5, 2);
    default: return circuits::bernsteinVazirani(8, 0b1101101);
  }
}

TEST_P(Conversion, MatchesSequentialToArray) {
  const auto [idx, threads] = GetParam();
  const auto circuit = circuitByIndex(idx);
  sim::DDSimulator s{circuit.numQubits()};
  s.simulate(circuit);
  const auto ref = s.package().toArray(s.state());
  const auto par =
      ddToArrayParallel(s.state(), circuit.numQubits(), threads);
  EXPECT_STATE_NEAR(par, ref, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    CircuitsTimesThreads, Conversion,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u)));

TEST(ConversionUnit, ZeroEdgeGivesZeroVector) {
  AlignedVector<Complex> out(16, Complex{3.0, 3.0});
  ddToArrayParallel(dd::vEdge::zero(), 4, out, 4);
  for (const auto& amp : out) {
    EXPECT_EQ(amp, Complex{});
  }
}

TEST(ConversionUnit, WrongSizeThrows) {
  dd::Package p{3};
  AlignedVector<Complex> out(4);
  EXPECT_THROW(ddToArrayParallel(p.makeZeroState(), 3, out, 2),
               std::invalid_argument);
}

TEST(ConversionUnit, OverwritesStaleOutput) {
  dd::Package p{4};
  AlignedVector<Complex> out(16, Complex{7.0, -7.0});
  ddToArrayParallel(p.makeBasisState(5), 4, out, 4);
  for (Index i = 0; i < 16; ++i) {
    if (i == 5) {
      EXPECT_NEAR(std::abs(out[i] - Complex{1.0}), 0.0, 1e-12);
    } else {
      EXPECT_EQ(out[i], Complex{});
    }
  }
}

TEST(ConversionUnit, BasisStateExercisesLoadBalancing) {
  // A basis state is one long chain with a zero sibling at every level:
  // the planner must route all threads down the nonzero edge and record a
  // zero-skip per level, producing exactly one fill task.
  const Qubit n = 10;
  dd::Package p{n};
  const dd::vEdge s = p.makeBasisState(777);
  AlignedVector<Complex> out(Index{1} << n);
  const ConversionStats stats = ddToArrayParallel(s, n, out, 8);
  EXPECT_EQ(stats.fillTasks, 1u);
  EXPECT_EQ(stats.zeroSkips, static_cast<std::size_t>(n));
  EXPECT_NEAR(std::abs(out[777] - Complex{1.0}), 0.0, 1e-12);
}

TEST(ConversionUnit, UniformStateExercisesScalarMultiplication) {
  // |+...+> has identical children at every level: with the optimization the
  // planner emits scale tasks instead of dividing threads.
  const Qubit n = 8;
  sim::DDSimulator s{n};
  qc::Circuit c{n};
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  s.simulate(c);
  AlignedVector<Complex> out(Index{1} << n);
  const ConversionStats stats =
      ddToArrayParallel(s.state(), n, out, 4);
  EXPECT_GT(stats.scaleTasks, 0u);
  const fp expected = 1.0 / std::sqrt(static_cast<fp>(Index{1} << n));
  for (const auto& amp : out) {
    EXPECT_NEAR(std::abs(amp - Complex{expected}), 0.0, 1e-10);
  }
}

TEST(ConversionUnit, GhzWithSignsViaScalePath) {
  // GHZ then Z on the top qubit gives (|0..0> - |1..1>)/sqrt(2); the top
  // node has identical children with opposite weights, so the scale path
  // must reproduce the sign.
  const Qubit n = 6;
  sim::DDSimulator s{n};
  auto c = circuits::ghz(n);
  c.z(n - 1);
  s.simulate(c);
  const auto out = ddToArrayParallel(s.state(), n, 4);
  EXPECT_NEAR(std::abs(out.front() - Complex{SQRT2_INV}), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(out.back() + Complex{SQRT2_INV}), 0.0, 1e-10);
}

TEST(ConversionUnit, NonPowerOfTwoThreadsClamped) {
  const Qubit n = 7;
  dd::Package p{n};
  const auto v = test::randomState(n, 8);
  const dd::vEdge e = p.fromArray(v);
  for (const unsigned t : {3u, 5u, 6u, 7u, 9u, 15u}) {
    const auto out = ddToArrayParallel(e, n, t);
    EXPECT_STATE_NEAR(out, v, 1e-9) << "threads=" << t;
  }
}

TEST(ConversionUnit, RandomStatesRoundTrip) {
  const Qubit n = 9;
  dd::Package p{n};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto v = test::randomState(n, seed);
    const dd::vEdge e = p.fromArray(v);
    const auto out = ddToArrayParallel(e, n, 8);
    EXPECT_STATE_NEAR(out, v, 1e-9) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace fdd::flat
