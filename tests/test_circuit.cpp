// Circuit container: builder validation, decompositions, append semantics,
// serialization.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "qc/circuit.hpp"

namespace fdd::qc {
namespace {

TEST(Circuit, ConstructionValidatesQubitCount) {
  EXPECT_THROW(Circuit(0), std::invalid_argument);
  EXPECT_THROW(Circuit(-3), std::invalid_argument);
  EXPECT_THROW(Circuit(63), std::invalid_argument);
  EXPECT_NO_THROW(Circuit(1));
  EXPECT_NO_THROW(Circuit(32));
}

TEST(Circuit, RejectsOutOfRangeTarget) {
  Circuit c{3};
  EXPECT_THROW(c.h(3), std::out_of_range);
  EXPECT_THROW(c.h(-1), std::out_of_range);
}

TEST(Circuit, RejectsBadControls) {
  Circuit c{3};
  EXPECT_THROW(c.cx(0, 0), std::invalid_argument);  // control == target
  EXPECT_THROW(c.cx(5, 1), std::out_of_range);
  EXPECT_THROW(c.gate(GateKind::X, {0, 0}, 1), std::invalid_argument);
}

TEST(Circuit, RejectsMissingParams) {
  Circuit c{2};
  EXPECT_THROW(c.gate(GateKind::RZ, {}, 0), std::invalid_argument);
}

TEST(Circuit, ControlsStoredSorted) {
  Circuit c{4};
  c.gate(GateKind::X, {3, 1}, 0);
  EXPECT_EQ(c[0].controls, (std::vector<Qubit>{1, 3}));
}

TEST(Circuit, SwapDecomposesToThreeCx) {
  Circuit c{2};
  c.swap(0, 1);
  ASSERT_EQ(c.numGates(), 3u);
  for (const auto& op : c) {
    EXPECT_EQ(op.kind, GateKind::X);
    EXPECT_EQ(op.controls.size(), 1u);
  }
}

TEST(Circuit, SwapSemantics) {
  // SWAP |01> must give |10>.
  Circuit c{2};
  c.x(0);  // |01> (qubit 0 set)
  c.swap(0, 1);
  const auto state = test::denseSimulate(c);
  EXPECT_NEAR(std::abs(state[2] - Complex{1.0}), 0.0, 1e-12);
}

TEST(Circuit, CswapSemantics) {
  // Control set: swap happens.
  Circuit c{3};
  c.x(0);  // control
  c.x(1);  // |q1=1, q2=0>
  c.cswap(0, 1, 2);
  const auto s1 = test::denseSimulate(c);
  // Expect |q0=1, q1=0, q2=1> = index 0b101 = 5.
  EXPECT_NEAR(std::abs(s1[5] - Complex{1.0}), 0.0, 1e-12);

  // Control clear: nothing happens.
  Circuit c2{3};
  c2.x(1);
  c2.cswap(0, 1, 2);
  const auto s2 = test::denseSimulate(c2);
  EXPECT_NEAR(std::abs(s2[2] - Complex{1.0}), 0.0, 1e-12);
}

TEST(Circuit, SwapIdenticalQubitsThrows) {
  Circuit c{2};
  EXPECT_THROW(c.swap(1, 1), std::invalid_argument);
  Circuit c3{3};
  EXPECT_THROW(c3.cswap(0, 1, 1), std::invalid_argument);
}

TEST(Circuit, AppendCircuitConcatenates) {
  Circuit a{2};
  a.h(0);
  Circuit b{2};
  b.cx(0, 1);
  a.append(b);
  EXPECT_EQ(a.numGates(), 2u);
  EXPECT_EQ(a[1].kind, GateKind::X);
}

TEST(Circuit, AppendMismatchedWidthThrows) {
  Circuit a{2};
  Circuit b{3};
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(Circuit, ToStringContainsEveryGate) {
  Circuit c{3, "demo"};
  c.h(0).cx(0, 1).rz(0.25, 2);
  const std::string s = c.toString();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("h q0"), std::string::npos);
  EXPECT_NE(s.find("cx q0,q1"), std::string::npos);
  EXPECT_NE(s.find("rz(0.25) q2"), std::string::npos);
}

TEST(Circuit, EqualityIsStructural) {
  Circuit a{2};
  a.h(0).cx(0, 1);
  Circuit b{2};
  b.h(0).cx(0, 1);
  EXPECT_EQ(a, b);
  b.h(1);
  EXPECT_NE(a, b);
}

TEST(Circuit, ToQasmEmitsHeaderAndGates) {
  Circuit c{2, "q"};
  c.h(0).cx(0, 1).rz(0.5, 1);
  const std::string s = c.toQasm();
  EXPECT_NE(s.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(s.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(s.find("h q[0];"), std::string::npos);
  EXPECT_NE(s.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(s.find("rz(0.5) q[1];"), std::string::npos);
}

}  // namespace
}  // namespace fdd::qc
