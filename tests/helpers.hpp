#pragma once
// Shared test utilities: dense reference implementations (independent of the
// DD package and the simulators under test) and comparison helpers.

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/bits.hpp"
#include "common/prng.hpp"
#include "common/types.hpp"
#include "qc/circuit.hpp"

namespace fdd::test {

using DenseVector = std::vector<Complex>;
using DenseMatrix = std::vector<std::vector<Complex>>;

/// Builds the full 2^n x 2^n matrix of a controlled single-qubit operation
/// directly from its definition — the independent oracle for everything.
inline DenseMatrix denseOperator(const qc::Operation& op, Qubit n) {
  const Index dim = Index{1} << n;
  DenseMatrix m(dim, std::vector<Complex>(dim, Complex{}));
  const qc::Matrix2 u = op.matrix();
  Index controlMask = 0;
  for (const Qubit c : op.controls) {
    controlMask |= Index{1} << c;
  }
  const Index tBit = Index{1} << op.target;
  for (Index col = 0; col < dim; ++col) {
    if ((col & controlMask) != controlMask) {
      m[col][col] = Complex{1.0};
      continue;
    }
    const bool t1 = (col & tBit) != 0;
    const Index partner = col ^ tBit;
    if (!t1) {
      m[col][col] = u[0];       // u00: |0> -> |0>
      m[partner][col] = u[2];   // u10: |0> -> |1>
    } else {
      m[partner][col] = u[1];   // u01: |1> -> |0>
      m[col][col] = u[3];       // u11: |1> -> |1>
    }
  }
  return m;
}

inline DenseVector denseApply(const DenseMatrix& m, const DenseVector& v) {
  const std::size_t dim = v.size();
  DenseVector out(dim, Complex{});
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      out[r] += m[r][c] * v[c];
    }
  }
  return out;
}

/// Reference circuit simulation: dense matrices all the way.
inline DenseVector denseSimulate(const qc::Circuit& circuit) {
  const Index dim = Index{1} << circuit.numQubits();
  DenseVector state(dim, Complex{});
  state[0] = Complex{1.0};
  for (const auto& op : circuit) {
    state = denseApply(denseOperator(op, circuit.numQubits()), state);
  }
  return state;
}

/// Max-norm distance between two amplitude sequences.
template <typename A, typename B>
fp maxDistance(const A& a, const B& b) {
  EXPECT_EQ(a.size(), b.size());
  fp d = 0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    d = std::max(d, std::abs(Complex{a[i]} - Complex{b[i]}));
  }
  return d;
}

#define EXPECT_STATE_NEAR(a, b, tol)                               \
  EXPECT_LT(::fdd::test::maxDistance((a), (b)), (tol))             \
      << "state vectors differ beyond tolerance"

/// Random normalized dense state.
inline DenseVector randomState(Qubit n, std::uint64_t seed) {
  Xoshiro256 rng{seed};
  const Index dim = Index{1} << n;
  DenseVector v(dim);
  fp norm = 0;
  for (auto& amp : v) {
    amp = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    norm += norm2(amp);
  }
  const fp inv = 1.0 / std::sqrt(norm);
  for (auto& amp : v) {
    amp *= inv;
  }
  return v;
}

/// A random circuit mixing every gate kind the IR supports.
inline qc::Circuit randomCircuit(Qubit n, std::size_t gates,
                                 std::uint64_t seed) {
  Xoshiro256 rng{seed};
  qc::Circuit c{n, "random"};
  for (std::size_t g = 0; g < gates; ++g) {
    const Qubit target = static_cast<Qubit>(rng.below(n));
    switch (rng.below(6)) {
      case 0:
        c.h(target);
        break;
      case 1:
        c.rz(rng.uniform(0, 2 * PI), target);
        break;
      case 2:
        c.ry(rng.uniform(0, 2 * PI), target);
        break;
      case 3:
        c.t(target);
        break;
      case 4: {
        if (n < 2) {
          c.x(target);
          break;
        }
        Qubit ctrl = static_cast<Qubit>(rng.below(n));
        while (ctrl == target) {
          ctrl = static_cast<Qubit>(rng.below(n));
        }
        c.cx(ctrl, target);
        break;
      }
      default: {
        if (n < 2) {
          c.sx(target);
          break;
        }
        Qubit ctrl = static_cast<Qubit>(rng.below(n));
        while (ctrl == target) {
          ctrl = static_cast<Qubit>(rng.below(n));
        }
        c.cp(rng.uniform(0, 2 * PI), ctrl, target);
        break;
      }
    }
  }
  return c;
}

}  // namespace fdd::test
