// DMAV with caching (Algorithm 2): equivalence with the uncached kernel and
// the dense reference, column-assignment invariants, buffer sharing, cache
// hit accounting.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "dd/package.hpp"
#include "flatdd/dmav_cache.hpp"
#include "helpers.hpp"

namespace fdd::flat {
namespace {

TEST(ColumnAssign, IdentityGetsOneBufferTotal) {
  // Identity: thread u writes rows [u*h,(u+1)*h) only — all threads can
  // share one buffer.
  const Qubit n = 6;
  dd::Package p{n};
  const ColumnAssignment a = assignColumnSpace(p.makeIdent(n - 1), n, 8);
  EXPECT_EQ(a.numBuffers, 1u);
  for (const unsigned b : a.bufferOf) {
    EXPECT_EQ(b, 0u);
  }
}

TEST(ColumnAssign, DenseTopGateNeedsTwoBuffers) {
  // H on the top qubit: each thread writes both row halves -> threads in
  // different column halves overlap pairwise... in fact every thread writes
  // every row block it touches, so sharing is limited.
  const Qubit n = 5;
  dd::Package p{n};
  const dd::mEdge h =
      p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), n - 1);
  const ColumnAssignment a = assignColumnSpace(h, n, 2);
  // Both threads write rows {0, h}: no sharing possible.
  EXPECT_EQ(a.numBuffers, 2u);
}

TEST(ColumnAssign, TaskStartsAreRowOffsets) {
  const Qubit n = 6;
  dd::Package p{n};
  const ColumnAssignment a = assignColumnSpace(p.makeIdent(n - 1), n, 4);
  for (unsigned u = 0; u < a.threads; ++u) {
    ASSERT_EQ(a.perThread[u].size(), 1u);
    // Identity pairs column block u with row block u.
    EXPECT_EQ(a.perThread[u][0].start, u * a.h);
  }
}

class CachedGates
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

qc::Operation cachedGateByIndex(int idx) {
  switch (idx) {
    case 0: return {qc::GateKind::H, 0, {}, {}};
    case 1: return {qc::GateKind::H, 5, {}, {}};
    case 2: return {qc::GateKind::X, 3, {0}, {}};
    case 3: return {qc::GateKind::X, 0, {5}, {}};
    case 4: return {qc::GateKind::Z, 2, {1, 4}, {}};
    case 5: return {qc::GateKind::RY, 4, {}, {0.77}};
    case 6: return {qc::GateKind::SW, 5, {}, {}};
    default: return {qc::GateKind::U3, 2, {}, {0.3, 0.6, 0.9}};
  }
}

TEST_P(CachedGates, MatchesDenseReference) {
  const auto [idx, threads] = GetParam();
  const Qubit n = 6;
  const qc::Operation op = cachedGateByIndex(idx);
  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD(op);
  const auto v = test::randomState(n, 300 + static_cast<std::uint64_t>(idx));
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  DmavWorkspace ws;
  dmavCached(m, n, in, out, threads, ws);
  const auto ref = test::denseApply(test::denseOperator(op, n), v);
  EXPECT_STATE_NEAR(out, ref, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    GatesTimesThreads, CachedGates,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u)));

TEST(DmavCache, AgreesWithUncachedOnWholeCircuits) {
  const Qubit n = 7;
  for (const auto& circuit :
       {circuits::supremacy(n, 4, 21), circuits::dnn(n, 2, 22),
        circuits::qft(n, 13)}) {
    dd::Package p{n};
    AlignedVector<Complex> v1(Index{1} << n, Complex{});
    v1[0] = Complex{1.0};
    AlignedVector<Complex> v2 = v1;
    AlignedVector<Complex> w1(v1.size());
    AlignedVector<Complex> w2(v1.size());
    DmavWorkspace ws;
    for (const auto& op : circuit) {
      const dd::mEdge m = p.makeGateDD(op);
      dmav(m, n, v1, w1, 4);
      dmavCached(m, n, v2, w2, 4, ws);
      std::swap(v1, w1);
      std::swap(v2, w2);
    }
    EXPECT_STATE_NEAR(v1, v2, 1e-10) << circuit.name();
  }
}

TEST(DmavCache, HitsOccurOnRepeatedSubMatrices) {
  // A dense gate on the *top* qubit gives every thread two tasks whose
  // sub-matrix is the same node with different coefficients (the ±1/sqrt(2)
  // Hadamard blocks) — exactly the reuse of Fig. 6; the cache must hit.
  const Qubit n = 8;
  dd::Package p{n};
  const dd::mEdge m =
      p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), n - 1);
  const auto v = test::randomState(n, 23);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  DmavWorkspace ws;
  const DmavCacheStats s = dmavCached(m, n, in, out, 4, ws);
  EXPECT_GT(s.cacheHits, 0u);
  EXPECT_STATE_NEAR(
      out,
      test::denseApply(
          test::denseOperator({qc::GateKind::H, n - 1, {}, {}}, n), v),
      1e-11);
}

TEST(DmavCache, NoHitsOnIdentityAssignment) {
  // The identity produces exactly one task per thread: nothing to reuse.
  const Qubit n = 6;
  dd::Package p{n};
  const auto v = test::randomState(n, 24);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  DmavWorkspace ws;
  const DmavCacheStats s = dmavCached(p.makeIdent(n - 1), n, in, out, 4, ws);
  EXPECT_EQ(s.cacheHits, 0u);
  EXPECT_STATE_NEAR(out, v, 1e-12);
}

TEST(DmavCache, StatsCountTasksAndBuffers) {
  const Qubit n = 6;
  dd::Package p{n};
  const dd::mEdge h =
      p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), n - 1);
  const auto v = test::randomState(n, 25);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  DmavWorkspace ws;
  const DmavCacheStats s = dmavCached(h, n, in, out, 2, ws);
  EXPECT_EQ(s.tasks, 4u);    // 2 threads x 2 row blocks
  EXPECT_EQ(s.buffers, 2u);  // overlapping rows -> no sharing
}

TEST(DmavCache, WorkspaceIsReusableAcrossGates) {
  const Qubit n = 6;
  dd::Package p{n};
  DmavWorkspace ws;
  AlignedVector<Complex> v(Index{1} << n, Complex{});
  v[0] = Complex{1.0};
  AlignedVector<Complex> w(v.size());
  const auto circuit = circuits::vqe(n, 2, 26);
  for (const auto& op : circuit) {
    dmavCached(p.makeGateDD(op), n, v, w, 4, ws);
    std::swap(v, w);
  }
  fp norm = 0;
  for (const auto& amp : v) {
    norm += norm2(amp);
  }
  EXPECT_NEAR(norm, 1.0, 1e-9);
  EXPECT_GT(ws.memoryBytes(), 0u);
}

TEST(DmavCache, OneThreadOneQubitSharesNoBuffers) {
  // Regression for the buffer-placement rewrite: the degenerate 1-thread,
  // 1-qubit assignment has a single task covering the whole (2-row) output,
  // so there is exactly one buffer and nothing is shared.
  dd::Package p{1};
  const dd::mEdge h = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 0);
  const ColumnAssignment a = assignColumnSpace(h, 1, 1);
  EXPECT_EQ(a.threads, 1u);
  EXPECT_EQ(a.numBuffers, 1u);
  ASSERT_EQ(a.bufferOf.size(), 1u);
  EXPECT_EQ(a.bufferOf[0], 0u);

  const auto v = test::randomState(1, 27);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  DmavWorkspace ws;
  const DmavCacheStats s = dmavCached(h, 1, in, out, 1, ws);
  EXPECT_EQ(s.buffers, 1u);
  const auto ref = test::denseApply(
      test::denseOperator(qc::Operation{qc::GateKind::H, 0, {}, {}}, 1), v);
  EXPECT_STATE_NEAR(out, ref, 1e-12);
}

TEST(DmavCache, AliasedVectorsThrow) {
  dd::Package p{3};
  AlignedVector<Complex> v(8);
  DmavWorkspace ws;
  EXPECT_THROW(dmavCached(p.makeIdent(2), 3, v, v, 2, ws),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdd::flat
