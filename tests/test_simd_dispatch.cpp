// Randomized equivalence of every dispatched kernel against plain scalar
// reference loops — across sizes 1..257 (vector body + tail), every
// vector-relative buffer alignment, and comb strides up to 2^8 — run under
// every dispatch tier available on the host. Also covers the
// ArraySimulator's control-run decomposition: BitTricks (span kernels) vs
// the faithful MultiIndex baseline on random controlled circuits.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/aligned.hpp"
#include "common/prng.hpp"
#include "qc/gate.hpp"
#include "sim/array_simulator.hpp"
#include "simd/kernels.hpp"

namespace fdd::simd {
namespace {

constexpr double kTol = 1e-12;

std::vector<DispatchTier> availableTiers() {
  std::vector<DispatchTier> tiers{DispatchTier::Scalar};
  if (tierAvailable(DispatchTier::Avx2)) {
    tiers.push_back(DispatchTier::Avx2);
  }
  if (tierAvailable(DispatchTier::Avx512)) {
    tiers.push_back(DispatchTier::Avx512);
  }
  return tiers;
}

/// Restores the startup dispatch tier when a test body returns.
class TierGuard {
 public:
  TierGuard() : saved_{activeTier()} {}
  ~TierGuard() { setDispatchTier(saved_); }

 private:
  DispatchTier saved_;
};

AlignedVector<Complex> randomBuf(std::size_t n, Xoshiro256& rng) {
  AlignedVector<Complex> v(n);
  for (auto& z : v) {
    z = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  return v;
}

Complex randomCoeff(Xoshiro256& rng) {
  return Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
}

// Alignment offsets in complex elements (16 bytes each): offset 0 is
// 64-byte aligned, the rest cover every vector-relative misalignment.
constexpr std::array<std::size_t, 4> kOffsets{0, 1, 2, 3};

void expectNear(const Complex& got, const Complex& want, const char* what,
                std::size_t i) {
  EXPECT_NEAR(std::abs(got - want), 0.0, kTol) << what << " i=" << i;
}

TEST(SimdDispatch, ScaleMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{11};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (std::size_t n = 1; n <= 257; n += (n < 16 ? 1 : 13)) {
      for (const std::size_t off : kOffsets) {
        const auto in = randomBuf(off + n, rng);
        auto out = randomBuf(off + n, rng);
        const Complex s = randomCoeff(rng);
        scale(out.data() + off, in.data() + off, s, n);
        for (std::size_t i = 0; i < n; ++i) {
          expectNear(out[off + i], s * in[off + i], toString(tier), i);
        }
        // In-place variant.
        auto v = in;
        scale(v.data() + off, v.data() + off, s, n);
        for (std::size_t i = 0; i < n; ++i) {
          expectNear(v[off + i], s * in[off + i], "in-place", i);
        }
      }
    }
  }
}

TEST(SimdDispatch, ScaleAccumulateMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{12};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (std::size_t n = 1; n <= 257; n += (n < 16 ? 1 : 13)) {
      for (const std::size_t off : kOffsets) {
        const auto in = randomBuf(off + n, rng);
        const auto base = randomBuf(off + n, rng);
        auto out = base;
        const Complex s = randomCoeff(rng);
        scaleAccumulate(out.data() + off, in.data() + off, s, n);
        for (std::size_t i = 0; i < n; ++i) {
          expectNear(out[off + i], base[off + i] + s * in[off + i],
                     toString(tier), i);
        }
      }
    }
  }
}

TEST(SimdDispatch, AccumulateMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{13};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (std::size_t n = 1; n <= 257; n += (n < 16 ? 1 : 13)) {
      for (const std::size_t off : kOffsets) {
        const auto in = randomBuf(off + n, rng);
        const auto base = randomBuf(off + n, rng);
        auto out = base;
        accumulate(out.data() + off, in.data() + off, n);
        for (std::size_t i = 0; i < n; ++i) {
          expectNear(out[off + i], base[off + i] + in[off + i],
                     toString(tier), i);
        }
      }
    }
  }
}

TEST(SimdDispatch, Mac2MatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{14};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (std::size_t n = 1; n <= 257; n += (n < 16 ? 1 : 13)) {
      for (const std::size_t off : kOffsets) {
        const auto x = randomBuf(off + n, rng);
        const auto y = randomBuf(off + n, rng);
        const auto base = randomBuf(off + n, rng);
        auto out = base;
        const Complex a = randomCoeff(rng);
        const Complex b = randomCoeff(rng);
        mac2(out.data() + off, x.data() + off, a, y.data() + off, b, n);
        for (std::size_t i = 0; i < n; ++i) {
          expectNear(out[off + i],
                     base[off + i] + a * x[off + i] + b * y[off + i],
                     toString(tier), i);
        }
      }
    }
  }
}

TEST(SimdDispatch, ButterflyMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{15};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (std::size_t n = 1; n <= 257; n += (n < 16 ? 1 : 13)) {
      for (const std::size_t off : kOffsets) {
        const std::array<Complex, 4> u{randomCoeff(rng), randomCoeff(rng),
                                       randomCoeff(rng), randomCoeff(rng)};
        const auto a0 = randomBuf(off + n, rng);
        const auto b0 = randomBuf(off + n, rng);
        auto a = a0;
        auto b = b0;
        butterfly(a.data() + off, b.data() + off, u.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          expectNear(a[off + i],
                     u[0] * a0[off + i] + u[1] * b0[off + i], "a", i);
          expectNear(b[off + i],
                     u[2] * a0[off + i] + u[3] * b0[off + i], "b", i);
        }
      }
    }
  }
}

TEST(SimdDispatch, ButterflyAdjacentMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{16};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (std::size_t pairs = 1; pairs <= 129;
         pairs += (pairs < 16 ? 1 : 13)) {
      for (const std::size_t off : kOffsets) {
        const std::array<Complex, 4> u{randomCoeff(rng), randomCoeff(rng),
                                       randomCoeff(rng), randomCoeff(rng)};
        const auto s0 = randomBuf(off + 2 * pairs, rng);
        auto s = s0;
        butterflyAdjacent(s.data() + off, u.data(), pairs);
        for (std::size_t i = 0; i < pairs; ++i) {
          const Complex x = s0[off + 2 * i];
          const Complex y = s0[off + 2 * i + 1];
          expectNear(s[off + 2 * i], u[0] * x + u[1] * y, "even", i);
          expectNear(s[off + 2 * i + 1], u[2] * x + u[3] * y, "odd", i);
        }
      }
    }
  }
}

// Comb shapes: every stride 1..2^8 that fits the len, sparse count grid.
struct CombCase {
  std::size_t count, len, stride;
};

std::vector<CombCase> combCases() {
  std::vector<CombCase> cases;
  for (const std::size_t len : {1u, 2u, 3u, 5u, 8u}) {
    for (std::size_t stride = 1; stride <= 256;
         stride += (stride < 9 ? 1 : stride)) {
      if (stride < len) {
        continue;
      }
      for (const std::size_t count : {1u, 2u, 3u, 5u, 17u}) {
        cases.push_back(CombCase{count, len, stride});
      }
    }
  }
  return cases;
}

TEST(SimdDispatch, ScaleStridedMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{17};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (const CombCase& c : combCases()) {
      for (const std::size_t off : kOffsets) {
        const std::size_t span = (c.count - 1) * c.stride + c.len;
        const auto in = randomBuf(off + span, rng);
        const auto base = randomBuf(off + span, rng);
        auto out = base;
        const Complex s = randomCoeff(rng);
        scaleStrided(out.data() + off, in.data() + off, s, c.count, c.len,
                     c.stride);
        for (std::size_t i = 0; i < span; ++i) {
          const std::size_t k = c.stride == 0 ? 0 : i / c.stride;
          const bool touched = k < c.count && i - k * c.stride < c.len;
          const Complex want = touched ? s * in[off + i] : base[off + i];
          expectNear(out[off + i], want, "strided", i);
        }
        // In-place (the ArraySimulator diagonal path).
        auto v = in;
        scaleStrided(v.data() + off, v.data() + off, s, c.count, c.len,
                     c.stride);
        for (std::size_t k = 0; k < c.count; ++k) {
          for (std::size_t j = 0; j < c.len; ++j) {
            const std::size_t i = k * c.stride + j;
            expectNear(v[off + i], s * in[off + i], "strided-inplace", i);
          }
        }
      }
    }
  }
}

TEST(SimdDispatch, MacStridedMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{18};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (const CombCase& c : combCases()) {
      for (const std::size_t off : kOffsets) {
        const std::size_t span = (c.count - 1) * c.stride + c.len;
        const auto in = randomBuf(off + span, rng);
        const auto base = randomBuf(off + span, rng);
        auto out = base;
        const Complex s = randomCoeff(rng);
        macStrided(out.data() + off, in.data() + off, s, c.count, c.len,
                   c.stride);
        for (std::size_t i = 0; i < span; ++i) {
          const std::size_t k = c.stride == 0 ? 0 : i / c.stride;
          const bool touched = k < c.count && i - k * c.stride < c.len;
          const Complex want =
              touched ? base[off + i] + s * in[off + i] : base[off + i];
          expectNear(out[off + i], want, "mac-strided", i);
        }
      }
    }
  }
}

TEST(SimdDispatch, Mac2StridedMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{19};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (const CombCase& c : combCases()) {
      for (const std::size_t off : kOffsets) {
        const std::size_t span = (c.count - 1) * c.stride + c.len;
        const auto x = randomBuf(off + span, rng);
        const auto y = randomBuf(off + span, rng);
        const auto base = randomBuf(off + span, rng);
        auto out = base;
        const Complex a = randomCoeff(rng);
        const Complex b = randomCoeff(rng);
        mac2Strided(out.data() + off, x.data() + off, a, y.data() + off, b,
                    c.count, c.len, c.stride);
        for (std::size_t i = 0; i < span; ++i) {
          const std::size_t k = c.stride == 0 ? 0 : i / c.stride;
          const bool touched = k < c.count && i - k * c.stride < c.len;
          const Complex want =
              touched ? base[off + i] + a * x[off + i] + b * y[off + i]
                      : base[off + i];
          expectNear(out[off + i], want, "mac2-strided", i);
        }
      }
    }
  }
}

TEST(SimdDispatch, NormSquaredMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{20};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (std::size_t n = 1; n <= 257; n += (n < 16 ? 1 : 13)) {
      for (const std::size_t off : kOffsets) {
        const auto v = randomBuf(off + n, rng);
        fp want = 0;
        for (std::size_t i = 0; i < n; ++i) {
          want += norm2(v[off + i]);
        }
        EXPECT_NEAR(normSquared(v.data() + off, n), want, kTol * (1 + want));
      }
    }
  }
}

TEST(SimdDispatch, TierRoundTrip) {
  TierGuard guard;
  for (const DispatchTier tier : availableTiers()) {
    EXPECT_TRUE(setDispatchTier(tier));
    EXPECT_EQ(activeTier(), tier);
    EXPECT_EQ(lanes(), lanesOf(tier));
    EXPECT_EQ(avx2Enabled(), tier == DispatchTier::Avx2);
    EXPECT_EQ(vectorEnabled(), tier != DispatchTier::Scalar);
  }
  EXPECT_TRUE(tierAvailable(DispatchTier::Scalar));
  EXPECT_STREQ(toString(DispatchTier::Scalar), "scalar");
  EXPECT_STREQ(toString(DispatchTier::Avx2), "avx2");
  EXPECT_STREQ(toString(DispatchTier::Avx512), "avx512");
  EXPECT_EQ(lanesOf(DispatchTier::Scalar), 1u);
  EXPECT_EQ(lanesOf(DispatchTier::Avx2), 4u);
  EXPECT_EQ(lanesOf(DispatchTier::Avx512), 8u);
}

TEST(SimdDispatch, ParseTierNameCoversVocabulary) {
  EXPECT_EQ(parseTierName("scalar"), DispatchTier::Scalar);
  EXPECT_EQ(parseTierName("avx2"), DispatchTier::Avx2);
  EXPECT_EQ(parseTierName("avx512"), DispatchTier::Avx512);
  EXPECT_EQ(parseTierName("AVX2"), std::nullopt);  // case-sensitive
  EXPECT_EQ(parseTierName("sse"), std::nullopt);
  EXPECT_EQ(parseTierName(""), std::nullopt);
  EXPECT_EQ(parseTierName(nullptr), std::nullopt);
}

TEST(SimdDispatch, MulPointwiseMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{22};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (std::size_t n = 1; n <= 257; n += (n < 16 ? 1 : 13)) {
      for (const std::size_t off : kOffsets) {
        const auto a = randomBuf(off + n, rng);
        const auto b = randomBuf(off + n, rng);
        auto out = randomBuf(off + n, rng);
        mulPointwise(out.data() + off, a.data() + off, b.data() + off, n);
        for (std::size_t i = 0; i < n; ++i) {
          expectNear(out[off + i], a[off + i] * b[off + i], toString(tier),
                     i);
        }
        // In-place on the first operand (the DiagRun replay shape).
        auto v = a;
        mulPointwise(v.data() + off, v.data() + off, b.data() + off, n);
        for (std::size_t i = 0; i < n; ++i) {
          expectNear(v[off + i], a[off + i] * b[off + i], "in-place", i);
        }
      }
    }
  }
}

TEST(SimdDispatch, DenseColumnsMatchesReference) {
  TierGuard guard;
  Xoshiro256 rng{23};
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    for (const unsigned m : {4u, 8u}) {
      for (std::size_t n = 1; n <= 129; n += (n < 16 ? 1 : 13)) {
        for (const std::size_t off : kOffsets) {
          std::array<Complex, 64> u{};
          for (unsigned j = 0; j < m * m; ++j) {
            u[j] = randomCoeff(rng);
          }
          std::vector<AlignedVector<Complex>> inBufs;
          std::vector<AlignedVector<Complex>> outBufs;
          const Complex* in[8];
          Complex* out[8];
          for (unsigned j = 0; j < m; ++j) {
            inBufs.push_back(randomBuf(off + n, rng));
            outBufs.push_back(randomBuf(off + n, rng));
          }
          for (unsigned j = 0; j < m; ++j) {
            in[j] = inBufs[j].data() + off;
            out[j] = outBufs[j].data() + off;
          }
          denseColumns(out, in, u.data(), m, n);
          for (unsigned j = 0; j < m; ++j) {
            for (std::size_t i = 0; i < n; ++i) {
              Complex want{};
              for (unsigned l = 0; l < m; ++l) {
                want += u[j * m + l] * inBufs[l][off + i];
              }
              expectNear(out[j][i], want, toString(tier), i);
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ArraySimulator control-run decomposition vs the faithful MultiIndex path
// ---------------------------------------------------------------------------

qc::Operation randomOp(Qubit n, Xoshiro256& rng) {
  static const std::vector<qc::GateKind> kinds = {
      qc::GateKind::H,  qc::GateKind::X, qc::GateKind::Z,
      qc::GateKind::T,  qc::GateKind::RZ, qc::GateKind::P,
      qc::GateKind::RY, qc::GateKind::RX,
  };
  qc::Operation op;
  op.kind = kinds[static_cast<std::size_t>(rng.below(kinds.size()))];
  op.target = static_cast<Qubit>(rng.below(static_cast<std::uint64_t>(n)));
  if (op.kind == qc::GateKind::RZ || op.kind == qc::GateKind::P ||
      op.kind == qc::GateKind::RY || op.kind == qc::GateKind::RX) {
    op.params.push_back(rng.uniform(-3, 3));
  }
  for (Qubit q = 0; q < n; ++q) {
    if (q != op.target && rng.below(4) == 0) {
      op.controls.push_back(q);
    }
  }
  return op;
}

TEST(SimdDispatch, ArraySimulatorRunDecompositionMatchesMultiIndex) {
  TierGuard guard;
  for (const DispatchTier tier : availableTiers()) {
    ASSERT_TRUE(setDispatchTier(tier));
    Xoshiro256 rng{21};
    for (const Qubit n : {1, 2, 3, 6, 9}) {
      for (const unsigned threads : {1u, 4u}) {
        sim::ArraySimOptions fast;
        fast.threads = threads;
        fast.parallelThresholdDim = 2;  // exercise the parallel chunking
        fast.indexing = sim::ArrayIndexing::BitTricks;
        sim::ArraySimOptions faithful = fast;
        faithful.indexing = sim::ArrayIndexing::MultiIndex;

        sim::ArraySimulator a{n, fast};
        sim::ArraySimulator b{n, faithful};
        const auto init = randomBuf(Index{1} << n, rng);
        a.setState(init);
        b.setState(init);
        for (int g = 0; g < 40; ++g) {
          const qc::Operation op = randomOp(n, rng);
          a.applyOperation(op);
          b.applyOperation(op);
        }
        for (Index i = 0; i < (Index{1} << n); ++i) {
          EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, kTol)
              << "tier=" << toString(tier) << " n=" << int{n}
              << " t=" << threads << " i=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace fdd::simd
