// DMAV without caching (Algorithm 1): equivalence with the dense reference
// across gates, thread counts, and circuit-long chains; assignment-structure
// invariants (task counts, disjoint output rows, border level).

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "dd/package.hpp"
#include "flatdd/dmav.hpp"
#include "helpers.hpp"

namespace fdd::flat {
namespace {

TEST(DmavUnit, ClampThreads) {
  EXPECT_EQ(clampDmavThreads(10, 0), 1u);
  EXPECT_EQ(clampDmavThreads(10, 1), 1u);
  EXPECT_EQ(clampDmavThreads(10, 3), 2u);
  EXPECT_EQ(clampDmavThreads(10, 8), 8u);
  EXPECT_EQ(clampDmavThreads(2, 16), 4u);  // at most 2^n
}

TEST(DmavUnit, BorderLevelFormula) {
  dd::Package p{6};
  const dd::mEdge id = p.makeIdent(5);
  const RowAssignment a = assignRowSpace(id, 6, 4);
  EXPECT_EQ(a.threads, 4u);
  EXPECT_EQ(a.h, Index{16});
  EXPECT_EQ(a.borderLevel, 3);  // n - log2(t) - 1 = 6 - 2 - 1
}

TEST(DmavUnit, IdentityAssignmentIsDiagonal) {
  // The identity DD has only diagonal blocks, so each thread gets exactly
  // one task, pairing row block u with column block u.
  const Qubit n = 6;
  dd::Package p{n};
  const RowAssignment a = assignRowSpace(p.makeIdent(n - 1), n, 8);
  for (unsigned u = 0; u < a.threads; ++u) {
    ASSERT_EQ(a.perThread[u].size(), 1u);
    EXPECT_EQ(a.perThread[u][0].start, u * a.h);
  }
}

TEST(DmavUnit, DenseGateOnTopQubitSplitsAllThreads) {
  // H on the topmost qubit has 4 nonzero blocks at the root: with t=2 each
  // thread gets 2 tasks (its row against both column halves).
  const Qubit n = 5;
  dd::Package p{n};
  const dd::mEdge h =
      p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), n - 1);
  const RowAssignment a = assignRowSpace(h, n, 2);
  ASSERT_EQ(a.perThread.size(), 2u);
  EXPECT_EQ(a.perThread[0].size(), 2u);
  EXPECT_EQ(a.perThread[1].size(), 2u);
}

class DmavGates
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

qc::Operation gateByIndex(int idx) {
  switch (idx) {
    case 0: return {qc::GateKind::H, 0, {}, {}};
    case 1: return {qc::GateKind::H, 5, {}, {}};
    case 2: return {qc::GateKind::X, 3, {0}, {}};
    case 3: return {qc::GateKind::X, 0, {5}, {}};
    case 4: return {qc::GateKind::Z, 2, {1, 4}, {}};
    case 5: return {qc::GateKind::RY, 4, {}, {0.77}};
    case 6: return {qc::GateKind::P, 1, {3}, {1.1}};
    default: return {qc::GateKind::U3, 2, {}, {0.3, 0.6, 0.9}};
  }
}

TEST_P(DmavGates, MatchesDenseReference) {
  const auto [idx, threads] = GetParam();
  const Qubit n = 6;
  const qc::Operation op = gateByIndex(idx);
  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD(op);
  const auto v = test::randomState(n, 100 + static_cast<std::uint64_t>(idx));
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  dmav(m, n, in, out, threads);
  const auto ref = test::denseApply(test::denseOperator(op, n), v);
  EXPECT_STATE_NEAR(out, ref, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    GatesTimesThreads, DmavGates,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u)));

TEST(Dmav, WholeCircuitViaDmavMatchesDense) {
  const Qubit n = 6;
  const auto circuit = circuits::supremacy(n, 5, 12);
  dd::Package p{n};
  AlignedVector<Complex> v(Index{1} << n, Complex{});
  v[0] = Complex{1.0};
  AlignedVector<Complex> w(v.size());
  for (const auto& op : circuit) {
    dmav(p.makeGateDD(op), n, v, w, 4);
    std::swap(v, w);
  }
  EXPECT_STATE_NEAR(v, test::denseSimulate(circuit), 1e-9);
}

TEST(Dmav, NormPreservedAcrossThreads) {
  const Qubit n = 8;
  dd::Package p{n};
  const auto v = test::randomState(n, 200);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  const dd::mEdge m = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 4);
  for (const unsigned t : {1u, 2u, 4u, 8u, 16u}) {
    dmav(m, n, in, out, t);
    fp norm = 0;
    for (const auto& amp : out) {
      norm += norm2(amp);
    }
    EXPECT_NEAR(norm, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(Dmav, FusedMatrixMatchesSequentialApplication) {
  // DMAV with a DDMM-fused matrix equals two sequential DMAVs (Fig. 9).
  const Qubit n = 5;
  dd::Package p{n};
  const auto c = test::randomCircuit(n, 2, 13);
  const dd::mEdge m1 = p.makeGateDD(c[0]);
  const dd::mEdge m2 = p.makeGateDD(c[1]);
  const dd::mEdge fused = p.multiply(m2, m1);

  const auto v = test::randomState(n, 14);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> mid(v.size());
  AlignedVector<Complex> seq(v.size());
  dmav(m1, n, in, mid, 4);
  dmav(m2, n, mid, seq, 4);

  AlignedVector<Complex> fus(v.size());
  dmav(fused, n, in, fus, 4);
  EXPECT_STATE_NEAR(fus, seq, 1e-10);
}

TEST(Dmav, AliasedVectorsThrow) {
  dd::Package p{3};
  AlignedVector<Complex> v(8);
  EXPECT_THROW(dmav(p.makeIdent(2), 3, v, v, 2), std::invalid_argument);
}

TEST(Dmav, WrongSizesThrow) {
  dd::Package p{3};
  AlignedVector<Complex> v(8);
  AlignedVector<Complex> w(4);
  EXPECT_THROW(dmav(p.makeIdent(2), 3, v, w, 2), std::invalid_argument);
}

TEST(Dmav, MaximalThreadCountEqualsDimension) {
  // t = 2^n drives the border level to -1: every task is a terminal edge.
  const Qubit n = 3;
  dd::Package p{n};
  const qc::Operation op{qc::GateKind::H, 1, {}, {}};
  const auto v = test::randomState(n, 15);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  dmav(p.makeGateDD(op), n, in, out, 8);
  EXPECT_STATE_NEAR(out, test::denseApply(test::denseOperator(op, n), v),
                    1e-11);
}

}  // namespace
}  // namespace fdd::flat
