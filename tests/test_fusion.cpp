// Gate fusion (Algorithm 3) and the k-operations baseline: semantic
// equivalence of the fused gate list, cost reduction on fusion-friendly
// circuits, cost-model-driven refusal to fuse when fusion would hurt.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "dd/package.hpp"
#include "flatdd/cost_model.hpp"
#include "flatdd/dmav.hpp"
#include "flatdd/fusion.hpp"
#include "helpers.hpp"

namespace fdd::flat {
namespace {

std::vector<dd::mEdge> buildGates(dd::Package& p, const qc::Circuit& c) {
  std::vector<dd::mEdge> gates;
  for (const auto& op : c) {
    const dd::mEdge m = p.makeGateDD(op);
    p.incRef(m);
    gates.push_back(m);
  }
  return gates;
}

test::DenseVector applyAllViaDmav(dd::Package&, Qubit n,
                                  const std::vector<dd::mEdge>& gates) {
  AlignedVector<Complex> v(Index{1} << n, Complex{});
  v[0] = Complex{1.0};
  AlignedVector<Complex> w(v.size());
  for (const auto& g : gates) {
    dmav(g, n, v, w, 4);
    std::swap(v, w);
  }
  return {v.begin(), v.end()};
}

class FusionCircuits : public ::testing::TestWithParam<int> {};

qc::Circuit fusionCircuitByIndex(int idx) {
  switch (idx) {
    case 0: return circuits::dnn(6, 3, 31);
    case 1: return circuits::vqe(6, 3, 32);
    case 2: return circuits::qft(6, 21);
    case 3: return circuits::supremacy(6, 5, 33);
    default: return test::randomCircuit(6, 50, 34);
  }
}

TEST_P(FusionCircuits, DmavAwareFusionPreservesSemantics) {
  const auto circuit = fusionCircuitByIndex(GetParam());
  const Qubit n = circuit.numQubits();
  dd::Package p{n};
  FusionStats stats;
  const auto fused =
      dmavAwareFusion(p, buildGates(p, circuit), 4, &stats);
  EXPECT_EQ(stats.inputGates, circuit.numGates());
  EXPECT_EQ(stats.outputGates, fused.size());
  EXPECT_LE(fused.size(), circuit.numGates() + 1);
  const auto got = applyAllViaDmav(p, n, fused);
  EXPECT_STATE_NEAR(got, test::denseSimulate(circuit), 1e-9)
      << circuit.name();
}

TEST_P(FusionCircuits, KOperationsPreservesSemantics) {
  const auto circuit = fusionCircuitByIndex(GetParam());
  const Qubit n = circuit.numQubits();
  dd::Package p{n};
  FusionStats stats;
  const auto fused =
      kOperationsFusion(p, buildGates(p, circuit), 4, 4, &stats);
  EXPECT_EQ(fused.size(), (circuit.numGates() + 3) / 4);
  const auto got = applyAllViaDmav(p, n, fused);
  EXPECT_STATE_NEAR(got, test::denseSimulate(circuit), 1e-9)
      << circuit.name();
}

INSTANTIATE_TEST_SUITE_P(Circuits, FusionCircuits, ::testing::Range(0, 5));

TEST(Fusion, ReducesCostOnDiagonalChains) {
  // Long chains of RZ / CP gates fuse into one diagonal matrix: the output
  // cost must drop dramatically.
  const Qubit n = 8;
  qc::Circuit c{n};
  Xoshiro256 rng{35};
  for (int i = 0; i < 40; ++i) {
    c.rz(rng.uniform(0, 2 * PI), static_cast<Qubit>(rng.below(n)));
  }
  dd::Package p{n};
  FusionStats stats;
  const auto fused = dmavAwareFusion(p, buildGates(p, c), 4, &stats);
  EXPECT_LT(fused.size(), 5u);
  EXPECT_LT(stats.outputCost, stats.inputCost / 2);
}

TEST(Fusion, RefusesToFuseWhenCostGrows) {
  // Hadamards on disjoint qubits: fusing multiplies path counts (Fig. 10),
  // so Algorithm 3 must keep them (almost all) separate.
  const Qubit n = 8;
  qc::Circuit c{n};
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  dd::Package p{n};
  FusionStats stats;
  const auto fused = dmavAwareFusion(p, buildGates(p, c), 4, &stats);
  // Fusing two disjoint Hadamards is cost-neutral under Eq. 5, and the
  // cached cost (Eq. 6) lets small groups merge a little further — but
  // unrestricted fusion would cost 2^n * 2^n and must be refused. Hence the
  // output stays a multi-gate list and total cost never grows.
  EXPECT_GE(fused.size(), static_cast<std::size_t>(n) / 4);
  EXPECT_LE(stats.outputCost, stats.inputCost * 1.01);
}

TEST(Fusion, SingleGateListPassesThrough) {
  dd::Package p{4};
  qc::Circuit c{4};
  c.h(2);
  const auto fused = dmavAwareFusion(p, buildGates(p, c), 4);
  ASSERT_EQ(fused.size(), 1u);
  const auto got = applyAllViaDmav(p, 4, fused);
  EXPECT_STATE_NEAR(got, test::denseSimulate(c), 1e-10);
}

TEST(Fusion, EmptyInputYieldsIdentityOnly) {
  dd::Package p{4};
  const auto fused = dmavAwareFusion(p, {}, 4);
  // Only the initial identity is flushed.
  ASSERT_EQ(fused.size(), 1u);
  const auto got = applyAllViaDmav(p, 4, fused);
  test::DenseVector expected(16, Complex{});
  expected[0] = Complex{1.0};
  EXPECT_STATE_NEAR(got, expected, 1e-12);
}

TEST(Fusion, KOperationsValidatesK) {
  dd::Package p{4};
  EXPECT_THROW((void)kOperationsFusion(p, {}, 0, 4), std::invalid_argument);
}

TEST(Fusion, OutputsSurviveGarbageCollection) {
  const Qubit n = 6;
  dd::Package p{n};
  const auto circuit = circuits::vqe(n, 2, 36);
  const auto fused = dmavAwareFusion(p, buildGates(p, circuit), 4);
  p.garbageCollect(true);
  const auto got = applyAllViaDmav(p, n, fused);
  EXPECT_STATE_NEAR(got, test::denseSimulate(circuit), 1e-9);
}

TEST(Fusion, DmavAwareNeverCostsMoreThanUnfused) {
  // The greedy rule only fuses when it strictly lowers Eq. 5 cost, so total
  // output cost <= input cost (up to the pass-through identity).
  for (int idx = 0; idx < 5; ++idx) {
    const auto circuit = fusionCircuitByIndex(idx);
    dd::Package p{circuit.numQubits()};
    FusionStats stats;
    (void)dmavAwareFusion(p, buildGates(p, circuit), 4, &stats);
    EXPECT_LE(stats.outputCost, stats.inputCost + 1.0) << circuit.name();
  }
}

}  // namespace
}  // namespace fdd::flat
