// Prometheus text-exposition writer (src/obs/exposition): format
// correctness (HELP/TYPE per family, cumulative monotone buckets, ascending
// le bounds, +Inf == _count, _sum consistency, name mangling, label
// escaping), snapshot-vs-live-writer concurrency (relaxed atomics only —
// TSan-clean), request-context propagation (RequestIdScope nesting, span
// args in the exported trace), and the live trace export.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fdd {
namespace {

/// One parsed sample line: metric name (with labels verbatim) and value.
struct Sample {
  std::string name;
  double value = 0;
};

/// Minimal exposition-text parser: collects samples and HELP/TYPE families.
struct Parsed {
  std::vector<Sample> samples;
  std::vector<std::string> helpFamilies;
  std::vector<std::string> typeFamilies;
  bool wellFormed = true;

  [[nodiscard]] const Sample* find(const std::string& name) const {
    for (const Sample& s : samples) {
      if (s.name == name) {
        return &s;
      }
    }
    return nullptr;
  }
  [[nodiscard]] std::vector<Sample> withPrefix(
      const std::string& prefix) const {
    std::vector<Sample> out;
    for (const Sample& s : samples) {
      if (s.name.rfind(prefix, 0) == 0) {
        out.push_back(s);
      }
    }
    return out;
  }
};

Parsed parseExposition(const std::string& text) {
  Parsed out;
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      out.wellFormed = false;  // no blank lines in our output
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      out.helpFamilies.push_back(line.substr(7, sp - 7));
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      out.typeFamilies.push_back(line.substr(7, sp - 7));
      continue;
    }
    if (line[0] == '#') {
      out.wellFormed = false;  // unknown comment form
      continue;
    }
    // name{labels} value  |  name value — the value is after the LAST
    // space (label values contain no raw spaces in our metric set).
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      out.wellFormed = false;
      continue;
    }
    Sample s;
    s.name = line.substr(0, sp);
    s.value = std::stod(line.substr(sp + 1));
    out.samples.push_back(s);
  }
  return out;
}

/// Extracts the le="..." bound of a _bucket sample name (inf for +Inf).
double leBound(const std::string& name) {
  const std::size_t start = name.find("le=\"");
  if (start == std::string::npos) {
    ADD_FAILURE() << "no le label in " << name;
    return 0;
  }
  const std::size_t end = name.find('"', start + 4);
  const std::string v = name.substr(start + 4, end - start - 4);
  if (v == "+Inf") {
    return std::numeric_limits<double>::infinity();
  }
  return std::stod(v);
}

#if FDD_OBS_ENABLED

class ExpositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::setEnabled(true);
    obs::clearTrace();
    obs::Registry::instance().reset();
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::clearTrace();
    obs::Registry::instance().reset();
  }
};

TEST_F(ExpositionTest, NameManglingAndPrefix) {
  EXPECT_EQ(obs::prometheusName("service.queue_depth"),
            "flatdd_service_queue_depth");
  EXPECT_EQ(obs::prometheusName("dmav.replay-fast"),
            "flatdd_dmav_replay_fast");
  EXPECT_EQ(obs::prometheusName("a:b"), "flatdd_a:b");  // colon is legal
}

TEST_F(ExpositionTest, CountersAndGaugesRender) {
  obs::Registry::instance().counter("test.requests").add(42);
  obs::Registry::instance().gauge("test.depth").set(7.5);

  const Parsed p = parseExposition(obs::prometheusText());
  EXPECT_TRUE(p.wellFormed);
  const Sample* counter = p.find("flatdd_test_requests_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 42);
  const Sample* gauge = p.find("flatdd_test_depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 7.5);
}

TEST_F(ExpositionTest, EveryFamilyHasHelpAndTypeExactlyOnce) {
  obs::Registry::instance().counter("fam.counter").add(1);
  obs::Registry::instance().gauge("fam.gauge").set(1);
  obs::Registry::instance().histogram("fam.hist").record(1000);

  const Parsed p = parseExposition(obs::prometheusText());
  EXPECT_TRUE(p.wellFormed);
  EXPECT_FALSE(p.samples.empty());
  // HELP and TYPE line up pairwise and are unique per family.
  EXPECT_EQ(p.helpFamilies, p.typeFamilies);
  std::vector<std::string> sorted = p.helpFamilies;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate HELP/TYPE family";
  // Every sample belongs to some declared family (its name starts with one).
  for (const Sample& s : p.samples) {
    bool declared = false;
    for (const std::string& fam : p.helpFamilies) {
      if (s.name.rfind(fam, 0) == 0) {
        declared = true;
        break;
      }
    }
    EXPECT_TRUE(declared) << "sample without HELP/TYPE: " << s.name;
  }
}

TEST_F(ExpositionTest, HistogramBucketsCumulativeMonotoneAndConsistent) {
  obs::Histogram& h = obs::Registry::instance().histogram("lat.apply");
  // Spread across several log2 buckets, plus a zero.
  const std::uint64_t values[] = {0, 1, 3, 100, 100, 5000, 1u << 20};
  std::uint64_t sum = 0;
  for (const std::uint64_t v : values) {
    h.record(v);
    sum += v;
  }

  const Parsed p = parseExposition(obs::prometheusText());
  const auto buckets = p.withPrefix("flatdd_lat_apply_seconds_bucket");
  ASSERT_GE(buckets.size(), 2u);

  double prevLe = -1;
  double prevCum = -1;
  for (const Sample& b : buckets) {
    const double le = leBound(b.name);
    EXPECT_GT(le, prevLe) << "le bounds must be strictly ascending";
    EXPECT_GE(b.value, prevCum) << "bucket counts must be cumulative";
    prevLe = le;
    prevCum = b.value;
  }
  EXPECT_TRUE(std::isinf(prevLe)) << "last bucket must be +Inf";

  const Sample* count = p.find("flatdd_lat_apply_seconds_count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->value, static_cast<double>(std::size(values)));
  EXPECT_EQ(prevCum, count->value) << "+Inf bucket must equal _count";

  const Sample* sumSample = p.find("flatdd_lat_apply_seconds_sum");
  ASSERT_NE(sumSample, nullptr);
  EXPECT_NEAR(sumSample->value, static_cast<double>(sum) / 1e9, 1e-12);
}

TEST_F(ExpositionTest, HistogramBucketBoundsContainRecordedValues) {
  obs::Histogram& h = obs::Registry::instance().histogram("lat.bound");
  h.record(100);  // bit_width(100) == 7 -> bucket with le (2^7-1) ns

  const Parsed p = parseExposition(obs::prometheusText());
  const auto buckets = p.withPrefix("flatdd_lat_bound_seconds_bucket");
  // The first bucket whose cumulative count reaches 1 must contain 100ns.
  for (const Sample& b : buckets) {
    if (b.value >= 1) {
      EXPECT_GE(leBound(b.name), 100.0 / 1e9);
      EXPECT_LT(leBound(b.name), 256.0 / 1e9);
      break;
    }
  }
}

TEST_F(ExpositionTest, LabelValuesAreEscaped) {
  obs::ObsSnapshot snap;
  obs::PoolPhaseSnapshot phase;
  phase.phase = "we\"ird\\phase\nname";
  phase.regions = 3;
  phase.wallSeconds = 1.5;
  phase.imbalance = 1.25;
  snap.poolPhases.push_back(phase);

  std::string out;
  obs::writePrometheusText(snap, out);
  EXPECT_NE(out.find("phase=\"we\\\"ird\\\\phase\\nname\""),
            std::string::npos)
      << out;
  // The raw newline must not survive into the exposition line.
  EXPECT_EQ(out.find("phase\nname"), std::string::npos);
}

TEST_F(ExpositionTest, WriterAppendsToExistingBuffer) {
  obs::Registry::instance().counter("append.check").add(1);
  std::string out = "PREFIX\n";
  obs::writePrometheusText(obs::Registry::instance().snapshot(), out);
  EXPECT_EQ(out.rfind("PREFIX\n", 0), 0u);
  EXPECT_NE(out.find("flatdd_append_check_total 1"), std::string::npos);
}

TEST_F(ExpositionTest, SnapshotRacingLiveWritersIsConsistentAfterJoin) {
  obs::Counter& counter = obs::Registry::instance().counter("race.hits");
  obs::Histogram& hist = obs::Registry::instance().histogram("race.lat");

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&counter, &hist] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        counter.add(1);
        hist.record(i % 4096);
      }
    });
  }
  // Scrape continuously while the writers hammer: every intermediate
  // exposition must parse and stay internally consistent (cumulative
  // buckets never decrease within one scrape) even though values are in
  // flux. All metric mutations are relaxed atomics, so this is TSan-clean.
  for (int scrape = 0; scrape < 20; ++scrape) {
    const Parsed p = parseExposition(obs::prometheusText());
    EXPECT_TRUE(p.wellFormed);
    const auto buckets = p.withPrefix("flatdd_race_lat_seconds_bucket");
    double prev = -1;
    for (const Sample& b : buckets) {
      EXPECT_GE(b.value, prev);
      prev = b.value;
    }
  }
  for (std::thread& t : writers) {
    t.join();
  }

  const Parsed p = parseExposition(obs::prometheusText());
  const Sample* total = p.find("flatdd_race_hits_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, static_cast<double>(kWriters * kPerWriter));
  const Sample* count = p.find("flatdd_race_lat_seconds_count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->value, static_cast<double>(kWriters * kPerWriter));
}

TEST_F(ExpositionTest, RequestIdScopeNestsAndRestores) {
  EXPECT_EQ(obs::currentRequestId(), 0u);
  {
    const obs::RequestIdScope outer{101};
    EXPECT_EQ(obs::currentRequestId(), 101u);
    {
      const obs::RequestIdScope inner{202};
      EXPECT_EQ(obs::currentRequestId(), 202u);
    }
    EXPECT_EQ(obs::currentRequestId(), 101u);
  }
  EXPECT_EQ(obs::currentRequestId(), 0u);
}

TEST_F(ExpositionTest, SpansCarryRequestIdIntoExportedTrace) {
  {
    const obs::RequestIdScope scope{777};
    // The 3-arg recordSpan picks the TLS id up implicitly — the path every
    // TraceScope (FDD_TIMED_SCOPE) takes.
    obs::recordSpan("test.span", obs::nowNs(), 10);
  }
  obs::recordSpan("test.naked", obs::nowNs(), 10);  // no request context

  const json::Value root = json::parse(obs::exportChromeTrace());
  const json::Array* events =
      root.object()->find("traceEvents")->second.array();
  ASSERT_NE(events, nullptr);
  bool sawTagged = false;
  bool sawNaked = false;
  for (const json::Value& entry : *events) {
    const json::Object* ev = entry.object();
    const auto nameIt = ev->find("name");
    if (nameIt == ev->end() || nameIt->second.string() == nullptr) {
      continue;
    }
    const std::string& name = *nameIt->second.string();
    if (name == "test.span") {
      sawTagged = true;
      const auto argsIt = ev->find("args");
      ASSERT_TRUE(argsIt != ev->end());
      const json::Object* args = argsIt->second.object();
      ASSERT_NE(args, nullptr);
      const auto idIt = args->find("request_id");
      ASSERT_TRUE(idIt != args->end());
      ASSERT_NE(idIt->second.string(), nullptr)
          << "request_id must be a decimal string (u64 > 2^53 safe)";
      EXPECT_EQ(*idIt->second.string(), "777");
    } else if (name == "test.naked") {
      sawNaked = true;
      EXPECT_TRUE(ev->find("args") == ev->end())
          << "spans without request context must not emit args";
    }
  }
  EXPECT_TRUE(sawTagged);
  EXPECT_TRUE(sawNaked);
}

TEST_F(ExpositionTest, FullU64RequestIdSurvivesExport) {
  const std::uint64_t big = (std::uint64_t{1} << 60) + 12345;  // > 2^53
  obs::recordSpan("test.big", obs::nowNs(), 5, big);

  const json::Value root = json::parse(obs::exportChromeTrace());
  const json::Array* events =
      root.object()->find("traceEvents")->second.array();
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const json::Value& entry : *events) {
    const json::Object* ev = entry.object();
    const auto nameIt = ev->find("name");
    if (nameIt != ev->end() && nameIt->second.string() != nullptr &&
        *nameIt->second.string() == "test.big") {
      const json::Object* args = ev->find("args")->second.object();
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(*args->find("request_id")->second.string(),
                std::to_string(big));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExpositionTest, LiveExportParsesWhileQuiesced) {
  for (int i = 0; i < 100; ++i) {
    obs::recordSpan("quiet.span", obs::nowNs(), 100, 5);
  }
  const json::Value root = json::parse(obs::exportChromeTraceLive());
  const json::Array* events =
      root.object()->find("traceEvents")->second.array();
  ASSERT_NE(events, nullptr);
  std::size_t spans = 0;
  for (const json::Value& entry : *events) {
    const json::Object* ev = entry.object();
    const auto it = ev->find("name");
    if (it != ev->end() && it->second.string() != nullptr &&
        *it->second.string() == "quiet.span") {
      ++spans;
    }
  }
  EXPECT_EQ(spans, 100u);
}

// The live export copies rings while writers advance — a benign torn read
// by design, detected and discarded via the double head read. That is a
// formal data race, so keep the concurrent variant out of TSan builds; the
// quiesced test above covers the code path there.
#if defined(__SANITIZE_THREAD__)
#define FDD_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FDD_TEST_TSAN 1
#endif
#endif

#if !defined(FDD_TEST_TSAN)
TEST_F(ExpositionTest, LiveExportParsesUnderConcurrentWriters) {
  obs::setRingCapacity(512);  // force wraparound during the export
  std::atomic<bool> stop{false};
  std::thread writer{[&stop] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      obs::recordSpan("storm.span", obs::nowNs(), i % 97, i);
      ++i;
    }
  }};
  for (int round = 0; round < 10; ++round) {
    const std::string text = obs::exportChromeTraceLive();
    EXPECT_NO_THROW({ (void)json::parse(text); })
        << "live export must always be well-formed JSON";
  }
  stop.store(true);
  writer.join();
  obs::setRingCapacity(16384);
}
#endif  // !FDD_TEST_TSAN

#else  // !FDD_OBS_ENABLED

TEST(ExpositionDisabled, StubsAreInertButWellFormed) {
  // OFF-mode: the writer renders an (empty-ish) snapshot, the trace stubs
  // return an empty trace, and RequestIdScope is a no-op.
  EXPECT_EQ(obs::currentRequestId(), 0u);
  {
    const obs::RequestIdScope scope{42};
    EXPECT_EQ(obs::currentRequestId(), 0u);
  }
  const std::string live = obs::exportChromeTraceLive();
  const json::Value root = json::parse(live);
  ASSERT_NE(root.object(), nullptr);
  EXPECT_TRUE(root.object()->find("traceEvents") != root.object()->end());

  const std::string text = obs::prometheusText();
  const Parsed p = parseExposition(text);
  EXPECT_TRUE(p.wellFormed);
  // Still syntactically valid exposition (the dropped-events gauge at
  // minimum), parsable by the same validator CI uses.
  EXPECT_NE(p.find("flatdd_trace_dropped_events"), nullptr);
}

#endif  // FDD_OBS_ENABLED

}  // namespace
}  // namespace fdd
