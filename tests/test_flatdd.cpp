// End-to-end FlatDD simulator: equivalence with the baselines on every
// circuit family, conversion behavior (regular circuits stay in DD,
// irregular ones convert), option handling, and statistics.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "helpers.hpp"
#include "sim/array_simulator.hpp"

namespace fdd::flat {
namespace {

class FlatDDCircuits : public ::testing::TestWithParam<int> {};

qc::Circuit e2eCircuit(int idx) {
  switch (idx) {
    case 0: return circuits::ghz(10);
    case 1: return circuits::wState(9);
    case 2: return circuits::adder(4, 11, 7);
    case 3: return circuits::qft(8, 5);
    case 4: return circuits::dnn(8, 3, 41);
    case 5: return circuits::vqe(8, 3, 42);
    case 6: return circuits::supremacy(8, 6, 43);
    case 7: return circuits::knn(9, 44);
    case 8: return circuits::swapTest(9, 45);
    default: return circuits::bernsteinVazirani(8, 0b10110101);
  }
}

TEST_P(FlatDDCircuits, MatchesArraySimulator) {
  const auto circuit = e2eCircuit(GetParam());
  const Qubit n = circuit.numQubits();
  FlatDDOptions opt;
  opt.threads = 4;
  FlatDDSimulator flat{n, opt};
  flat.simulate(circuit);
  sim::ArraySimulator ref{n, {.threads = 2}};
  ref.simulate(circuit);
  EXPECT_STATE_NEAR(flat.stateVector(), ref.state(), 1e-9) << circuit.name();
}

TEST_P(FlatDDCircuits, FusionModesAgree) {
  const auto circuit = e2eCircuit(GetParam());
  const Qubit n = circuit.numQubits();
  sim::ArraySimulator ref{n, {.threads = 2}};
  ref.simulate(circuit);
  for (const FusionMode mode :
       {FusionMode::DmavAware, FusionMode::KOperations}) {
    FlatDDOptions opt;
    opt.threads = 4;
    opt.fusion = mode;
    FlatDDSimulator flat{n, opt};
    flat.simulate(circuit);
    EXPECT_STATE_NEAR(flat.stateVector(), ref.state(), 1e-9)
        << circuit.name() << " mode=" << static_cast<int>(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FlatDDCircuits, ::testing::Range(0, 10));

TEST(FlatDD, RegularCircuitsStayInDD) {
  for (const auto& circuit :
       {circuits::ghz(14), circuits::adder(5, 17, 12)}) {
    FlatDDSimulator flat{circuit.numQubits(), {.threads = 4}};
    flat.simulate(circuit);
    EXPECT_FALSE(flat.stats().converted) << circuit.name();
    EXPECT_EQ(flat.stats().ddGates, circuit.numGates());
    EXPECT_EQ(flat.stats().dmavGates, 0u);
  }
}

TEST(FlatDD, IrregularCircuitsConvert) {
  const auto circuit = circuits::supremacy(10, 8, 46);
  FlatDDSimulator flat{10, {.threads = 4}};
  flat.simulate(circuit);
  EXPECT_TRUE(flat.stats().converted);
  EXPECT_GT(flat.stats().conversionGateIndex, 0u);
  EXPECT_LT(flat.stats().conversionGateIndex, circuit.numGates());
  EXPECT_EQ(flat.stats().ddGates + flat.stats().dmavGates,
            circuit.numGates());
}

TEST(FlatDD, ForcedConversionOverridesEwma) {
  const auto circuit = circuits::ghz(10);  // would never convert on its own
  FlatDDOptions opt;
  opt.threads = 4;
  opt.forceConversionAtGate = 3;
  FlatDDSimulator flat{10, opt};
  flat.simulate(circuit);
  EXPECT_TRUE(flat.stats().converted);
  EXPECT_EQ(flat.stats().conversionGateIndex, 3u);
  sim::ArraySimulator ref{10};
  ref.simulate(circuit);
  EXPECT_STATE_NEAR(flat.stateVector(), ref.state(), 1e-10);
}

TEST(FlatDD, ForcedCachingStillCorrect) {
  const auto circuit = circuits::dnn(8, 3, 47);
  FlatDDOptions opt;
  opt.threads = 4;
  opt.forceCaching = true;
  opt.forceConversionAtGate = 5;
  FlatDDSimulator flat{8, opt};
  flat.simulate(circuit);
  EXPECT_EQ(flat.stats().cachedGates, flat.stats().dmavGates);
  sim::ArraySimulator ref{8};
  ref.simulate(circuit);
  EXPECT_STATE_NEAR(flat.stateVector(), ref.state(), 1e-9);
}

TEST(FlatDD, DiagonalLayersCollapseIntoDiagRuns) {
  // An ISING/QAOA-style circuit: after the H wall, every layer is n RZ
  // gates plus a CP ladder — all diagonal. With fuseDiagonalRuns the DMAV
  // phase must collapse each maximal run into one fused sweep and still
  // match both the unfused configuration and the array baseline.
  const Qubit n = 8;
  qc::Circuit circuit{n, "diag-layers"};
  for (Qubit q = 0; q < n; ++q) {
    circuit.h(q);
  }
  for (int layer = 0; layer < 6; ++layer) {
    for (Qubit q = 0; q < n; ++q) {
      circuit.gate(qc::GateKind::RZ, {}, q, {0.1 + 0.07 * layer + 0.03 * q});
    }
    for (Qubit q = 0; q + 1 < n; ++q) {
      circuit.gate(qc::GateKind::P, {q}, static_cast<Qubit>(q + 1),
                   {0.2 + 0.05 * layer});
    }
    circuit.h(0);  // break the run so several independent runs form
  }

  FlatDDOptions opt;
  opt.threads = 2;
  opt.forceConversionAtGate = n;  // convert right after the H wall
  FlatDDSimulator fused{n, opt};
  fused.simulate(circuit);
  EXPECT_GT(fused.stats().diagRuns, 0u);
  EXPECT_GE(fused.stats().diagRunGates, 2 * fused.stats().diagRuns);
  // Every layer's 2n-1 diagonal gates form one maximal run.
  EXPECT_GE(fused.stats().diagRunGates, 6u * (2u * n - 1u));
  EXPECT_EQ(fused.stats().ddGates + fused.stats().dmavGates,
            circuit.numGates());

  FlatDDOptions unfusedOpt = opt;
  unfusedOpt.fuseDiagonalRuns = false;
  FlatDDSimulator unfused{n, unfusedOpt};
  unfused.simulate(circuit);
  EXPECT_EQ(unfused.stats().diagRuns, 0u);
  EXPECT_STATE_NEAR(fused.stateVector(), unfused.stateVector(), 1e-10);

  sim::ArraySimulator ref{n, {.threads = 2}};
  ref.simulate(circuit);
  EXPECT_STATE_NEAR(fused.stateVector(), ref.state(), 1e-10);
}

TEST(FlatDD, PerGateTraceCoversAllGates) {
  const auto circuit = circuits::supremacy(8, 5, 48);
  FlatDDOptions opt;
  opt.threads = 2;
  opt.recordPerGate = true;
  FlatDDSimulator flat{8, opt};
  flat.simulate(circuit);
  const auto& trace = flat.stats().perGate;
  ASSERT_EQ(trace.size(),
            flat.stats().ddGates + flat.stats().dmavGates);
  // DD-phase records come first, then DMAV records.
  bool seenFlat = false;
  for (const auto& rec : trace) {
    if (!rec.inDDPhase) {
      seenFlat = true;
    } else {
      EXPECT_FALSE(seenFlat) << "DD record after DMAV records";
      EXPECT_GT(rec.ddSize, 0u);
    }
    EXPECT_GE(rec.seconds, 0.0);
  }
}

TEST(FlatDD, AmplitudeQueriesWorkInBothPhases) {
  // Regular circuit (stays DD): amplitude from DD.
  FlatDDSimulator a{6, {.threads = 2}};
  a.simulate(circuits::ghz(6));
  EXPECT_NEAR(std::abs(a.amplitude(0)), SQRT2_INV, 1e-10);
  EXPECT_NEAR(std::abs(a.amplitude(63)), SQRT2_INV, 1e-10);

  // Forced conversion: amplitude from the flat array.
  FlatDDOptions opt;
  opt.threads = 2;
  opt.forceConversionAtGate = 2;
  FlatDDSimulator b{6, opt};
  b.simulate(circuits::ghz(6));
  EXPECT_NEAR(std::abs(b.amplitude(0)), SQRT2_INV, 1e-10);
  EXPECT_NEAR(std::abs(b.amplitude(63)), SQRT2_INV, 1e-10);
}

TEST(FlatDD, MismatchedCircuitThrows) {
  FlatDDSimulator flat{4};
  EXPECT_THROW(flat.simulate(circuits::ghz(5)), std::invalid_argument);
}

TEST(FlatDD, MemoryAccountingIsPositiveAndGrowsOnConversion) {
  const auto circuit = circuits::dnn(10, 3, 49);
  FlatDDSimulator flat{10, {.threads = 2}};
  flat.simulate(circuit);
  EXPECT_GT(flat.memoryBytes(), 0u);
  if (flat.stats().converted) {
    // Converted runs hold two flat vectors.
    EXPECT_GE(flat.memoryBytes(), 2 * sizeof(Complex) * (1u << 10));
  }
}

TEST(FlatDD, StatsTimingsAreConsistent) {
  const auto circuit = circuits::supremacy(8, 6, 50);
  FlatDDSimulator flat{8, {.threads = 2}};
  flat.simulate(circuit);
  const auto& s = flat.stats();
  EXPECT_GE(s.ddPhaseSeconds, 0.0);
  if (s.converted) {
    EXPECT_GT(s.dmavPhaseSeconds, 0.0);
    EXPECT_GE(s.conversionSeconds, 0.0);
  }
}

TEST(FlatDD, ThreadSweepIsDeterministicInResult) {
  const auto circuit = circuits::dnn(8, 2, 51);
  AlignedVector<Complex> reference;
  for (const unsigned t : {1u, 2u, 4u, 8u, 16u}) {
    FlatDDSimulator flat{8, {.threads = t}};
    flat.simulate(circuit);
    const auto state = flat.stateVector();
    if (reference.empty()) {
      reference = state;
    } else {
      EXPECT_STATE_NEAR(state, reference, 1e-10) << "t=" << t;
    }
  }
}

}  // namespace
}  // namespace fdd::flat
