// Pauli-string observables, DD sampling, probabilityOfOne, adjoint, mixed
// DD/array inner products, and the dot exporter.

#include <gtest/gtest.h>

#include <map>

#include "circuits/generators.hpp"
#include "dd/package.hpp"
#include "helpers.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/observables.hpp"

namespace fdd {
namespace {

TEST(PauliString, ParseAndPrintRoundTrip) {
  const auto p = sim::PauliString::parse("XIZY");
  EXPECT_EQ(p.toString(4), "XIZY");
  EXPECT_EQ(p.weight(), 3u);
  EXPECT_FALSE(p.isIdentity());
  EXPECT_TRUE(sim::PauliString::parse("IIII").isIdentity());
}

TEST(PauliString, SetValidates) {
  sim::PauliString p;
  EXPECT_THROW(p.set(-1, 'X'), std::out_of_range);
  EXPECT_THROW(p.set(0, 'Q'), std::invalid_argument);
  p.set(2, 'Y');
  EXPECT_EQ(p.toString(3), "YII");
}

TEST(Expectation, KnownSingleQubitValues) {
  // |0>: <Z> = 1, <X> = 0. |+>: <X> = 1, <Z> = 0. |i>: <Y> = 1.
  const std::vector<Complex> zero{Complex{1.0}, Complex{}};
  EXPECT_NEAR(sim::expectation(zero, sim::PauliString::parse("Z")).real(),
              1.0, 1e-12);
  EXPECT_NEAR(sim::expectation(zero, sim::PauliString::parse("X")).real(),
              0.0, 1e-12);
  const std::vector<Complex> plus{Complex{SQRT2_INV}, Complex{SQRT2_INV}};
  EXPECT_NEAR(sim::expectation(plus, sim::PauliString::parse("X")).real(),
              1.0, 1e-12);
  const std::vector<Complex> iState{Complex{SQRT2_INV},
                                    Complex{0.0, SQRT2_INV}};
  EXPECT_NEAR(sim::expectation(iState, sim::PauliString::parse("Y")).real(),
              1.0, 1e-12);
}

TEST(Expectation, GhzCorrelations) {
  // GHZ: <Z_i Z_j> = 1 for all pairs; <Z_i> = 0; <X...X> = 1.
  const Qubit n = 5;
  sim::ArraySimulator s{n};
  s.simulate(circuits::ghz(n));
  sim::PauliString zz;
  zz.set(0, 'Z');
  zz.set(3, 'Z');
  EXPECT_NEAR(sim::expectation(s.state(), zz).real(), 1.0, 1e-10);
  sim::PauliString z;
  z.set(2, 'Z');
  EXPECT_NEAR(sim::expectation(s.state(), z).real(), 0.0, 1e-10);
  EXPECT_NEAR(
      sim::expectation(s.state(), sim::PauliString::parse("XXXXX")).real(),
      1.0, 1e-10);
}

TEST(Expectation, HermitianObservablesAreReal) {
  const Qubit n = 5;
  const auto v = test::randomState(n, 81);
  Xoshiro256 rng{82};
  for (int trial = 0; trial < 20; ++trial) {
    sim::PauliString p;
    for (Qubit q = 0; q < n; ++q) {
      p.set(q, "IXYZ"[rng.below(4)]);
    }
    const Complex e = sim::expectation(v, p);
    EXPECT_NEAR(e.imag(), 0.0, 1e-10) << p.toString(n);
    EXPECT_LE(std::abs(e.real()), 1.0 + 1e-10);
  }
}

TEST(Expectation, DDAndArrayAgree) {
  const Qubit n = 6;
  const auto circuit = circuits::vqe(n, 2, 83);
  sim::DDSimulator ddSim{n};
  ddSim.simulate(circuit);
  sim::ArraySimulator arrSim{n};
  arrSim.simulate(circuit);
  Xoshiro256 rng{84};
  for (int trial = 0; trial < 10; ++trial) {
    sim::PauliString p;
    for (Qubit q = 0; q < n; ++q) {
      p.set(q, "IXYZ"[rng.below(4)]);
    }
    const Complex a = sim::expectation(arrSim.state(), p);
    const Complex d =
        sim::expectation(ddSim.package(), ddSim.state(), p);
    EXPECT_NEAR(std::abs(a - d), 0.0, 1e-9) << p.toString(n);
  }
}

TEST(Hamiltonian, TfimGroundishEnergyNegative) {
  const Qubit n = 6;
  const auto ham = sim::tfim(n, 1.0, 0.5);
  EXPECT_EQ(ham.terms.size(), static_cast<std::size_t>(2 * n - 1));
  // All-zero state: <H> = -J(n-1).
  sim::ArraySimulator s{n};
  EXPECT_NEAR(ham.expectation(s.state()), -(n - 1.0), 1e-10);
}

TEST(Hamiltonian, DDAndArrayAgree) {
  const Qubit n = 6;
  const auto circuit = circuits::dnn(n, 2, 85);
  sim::DDSimulator ddSim{n};
  ddSim.simulate(circuit);
  sim::ArraySimulator arrSim{n};
  arrSim.simulate(circuit);
  const auto ham = sim::tfim(n, 0.7, 1.3);
  EXPECT_NEAR(ham.expectation(arrSim.state()),
              ham.expectation(ddSim.package(), ddSim.state()), 1e-9);
}

TEST(ProbabilityOfOne, MatchesDenseMarginals) {
  const Qubit n = 6;
  const auto circuit = circuits::dnn(n, 2, 86);
  sim::DDSimulator s{n};
  s.simulate(circuit);
  const auto dense = s.stateVector();
  for (Qubit q = 0; q < n; ++q) {
    fp ref = 0;
    for (Index i = 0; i < dense.size(); ++i) {
      if (testBit(i, q)) {
        ref += norm2(dense[i]);
      }
    }
    EXPECT_NEAR(s.package().probabilityOfOne(s.state(), q), ref, 1e-10)
        << "q=" << q;
  }
}

TEST(ProbabilityOfOne, Validates) {
  dd::Package p{3};
  EXPECT_THROW((void)p.probabilityOfOne(p.makeZeroState(), 3),
               std::out_of_range);
}

TEST(DDSampling, GhzSamplesOnlyExtremes) {
  const Qubit n = 10;
  sim::DDSimulator s{n};
  s.simulate(circuits::ghz(n));
  Xoshiro256 rng{87};
  const auto samples = s.package().sample(s.state(), 500, rng);
  std::size_t zeros = 0;
  for (const Index smp : samples) {
    ASSERT_TRUE(smp == 0 || smp == (Index{1} << n) - 1) << smp;
    zeros += (smp == 0);
  }
  // Roughly balanced (3-sigma bound for p=0.5, n=500 is ~ +-34).
  EXPECT_GT(zeros, 180u);
  EXPECT_LT(zeros, 320u);
}

TEST(DDSampling, DistributionMatchesAmplitudes) {
  const Qubit n = 4;
  sim::DDSimulator s{n};
  s.simulate(circuits::vqe(n, 2, 88));
  Xoshiro256 rng{89};
  const std::size_t shots = 40000;
  const auto samples = s.package().sample(s.state(), shots, rng);
  std::map<Index, std::size_t> counts;
  for (const Index smp : samples) {
    ++counts[smp];
  }
  const auto dense = s.stateVector();
  for (Index i = 0; i < dense.size(); ++i) {
    const fp p = norm2(dense[i]);
    const fp observed =
        static_cast<fp>(counts.count(i) ? counts[i] : 0) / shots;
    EXPECT_NEAR(observed, p, 0.02) << "i=" << i;
  }
}

TEST(Adjoint, DoubleAdjointIsIdentityOnRandomGates) {
  const Qubit n = 5;
  dd::Package p{n};
  const auto circuit = test::randomCircuit(n, 10, 90);
  for (const auto& op : circuit) {
    const dd::mEdge m = p.makeGateDD(op);
    const dd::mEdge mdd = p.adjoint(p.adjoint(m));
    EXPECT_EQ(m.n, mdd.n);
    EXPECT_LT(std::abs(m.w - mdd.w), 1e-10);
  }
}

TEST(Adjoint, UnitaryTimesAdjointIsIdentity) {
  const Qubit n = 5;
  dd::Package p{n};
  dd::mEdge u = p.makeIdent(n - 1);
  for (const auto& op : test::randomCircuit(n, 15, 91)) {
    u = p.multiply(p.makeGateDD(op), u);
  }
  const dd::mEdge prod = p.multiply(u, p.adjoint(u));
  EXPECT_EQ(prod.n, p.makeIdent(n - 1).n);
  EXPECT_NEAR(std::abs(prod.w - Complex{1.0}), 0.0, 1e-9);
}

TEST(MixedInnerProduct, MatchesPureRepresentations) {
  const Qubit n = 6;
  dd::Package p{n};
  const auto va = test::randomState(n, 92);
  const auto vb = test::randomState(n, 93);
  const dd::vEdge a = p.fromArray(va);
  Complex ref{};
  for (Index i = 0; i < va.size(); ++i) {
    ref += std::conj(va[i]) * vb[i];
  }
  const Complex mixed = p.innerProduct(a, vb);
  EXPECT_NEAR(std::abs(mixed - ref), 0.0, 1e-9);
}

TEST(MixedInnerProduct, Validates) {
  dd::Package p{3};
  const std::vector<Complex> wrong(4);
  EXPECT_THROW((void)p.innerProduct(p.makeZeroState(), wrong),
               std::invalid_argument);
}

TEST(ToDot, ProducesWellFormedGraph) {
  dd::Package p{3};
  sim::DDSimulator s{3};
  s.simulate(circuits::ghz(3));
  const std::string dot = s.package().toDot(s.state());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("terminal"), std::string::npos);
  EXPECT_NE(dot.find("q2"), std::string::npos);
  EXPECT_EQ(dot.find("ERROR"), std::string::npos);
  // Zero edge renders the degenerate graph.
  const std::string zeroDot = p.toDot(dd::vEdge::zero());
  EXPECT_NE(zeroDot.find("label=\"0\""), std::string::npos);
}

}  // namespace
}  // namespace fdd
