// Circuit generators: structural checks plus semantic checks against the
// dense reference simulator (small sizes).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "helpers.hpp"

namespace fdd::circuits {
namespace {

TEST(Ghz, StateIsUniformOverExtremes) {
  const auto c = ghz(4);
  const auto state = test::denseSimulate(c);
  EXPECT_NEAR(std::abs(state.front()), SQRT2_INV, 1e-12);
  EXPECT_NEAR(std::abs(state.back()), SQRT2_INV, 1e-12);
  fp middle = 0;
  for (std::size_t i = 1; i + 1 < state.size(); ++i) {
    middle += std::abs(state[i]);
  }
  EXPECT_NEAR(middle, 0.0, 1e-12);
}

TEST(Ghz, GateCountLinear) {
  EXPECT_EQ(ghz(10).numGates(), 10u);  // 1 H + 9 CX
  EXPECT_EQ(ghz(10).numQubits(), 10);
}

TEST(WState, AmplitudesAreUniformOneHot) {
  const Qubit n = 5;
  const auto state = test::denseSimulate(wState(n));
  const fp expected = 1.0 / std::sqrt(static_cast<fp>(n));
  for (Index i = 0; i < state.size(); ++i) {
    const bool oneHot = std::popcount(i) == 1;
    if (oneHot) {
      EXPECT_NEAR(std::abs(state[i]), expected, 1e-10) << "i=" << i;
    } else {
      EXPECT_NEAR(std::abs(state[i]), 0.0, 1e-10) << "i=" << i;
    }
  }
}

class AdderCases
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t,
                                                 std::uint64_t>> {};

TEST_P(AdderCases, ComputesSum) {
  const auto [k, a, b] = GetParam();
  const auto c = adder(static_cast<Qubit>(k), a, b);
  const auto state = test::denseSimulate(c);
  // Find the (unique) basis state with amplitude 1.
  Index hot = 0;
  int hits = 0;
  for (Index i = 0; i < state.size(); ++i) {
    if (std::abs(state[i]) > 0.5) {
      hot = i;
      ++hits;
    }
  }
  ASSERT_EQ(hits, 1) << "adder output must stay a basis state";
  // Decode: b_i at qubit 2i+2, carry-out at the top qubit.
  std::uint64_t sum = 0;
  for (int i = 0; i < k; ++i) {
    sum |= static_cast<std::uint64_t>(testBit(hot, 2 * i + 2)) << i;
  }
  sum |= static_cast<std::uint64_t>(testBit(hot, 2 * k + 1)) << k;
  EXPECT_EQ(sum, a + b);
  // The a register must be restored.
  std::uint64_t aOut = 0;
  for (int i = 0; i < k; ++i) {
    aOut |= static_cast<std::uint64_t>(testBit(hot, 2 * i + 1)) << i;
  }
  EXPECT_EQ(aOut, a);
}

INSTANTIATE_TEST_SUITE_P(
    Sums, AdderCases,
    ::testing::Values(std::tuple{2, 0ULL, 0ULL}, std::tuple{2, 1ULL, 1ULL},
                      std::tuple{2, 3ULL, 3ULL}, std::tuple{3, 5ULL, 3ULL},
                      std::tuple{3, 7ULL, 7ULL}, std::tuple{4, 9ULL, 6ULL},
                      std::tuple{4, 15ULL, 15ULL}, std::tuple{4, 0ULL, 13ULL}));

TEST(Qft, OfBasisStateHasFlatMagnitudes) {
  const Qubit n = 4;
  const auto state = test::denseSimulate(qft(n, 5));
  const fp expected = 1.0 / std::sqrt(static_cast<fp>(Index{1} << n));
  for (const auto& amp : state) {
    EXPECT_NEAR(std::abs(amp), expected, 1e-10);
  }
}

TEST(Qft, MatchesAnalyticFormula) {
  // QFT|x> = sum_k e^{2 pi i x k / 2^n} |k> / sqrt(2^n).
  const Qubit n = 3;
  const std::uint64_t x = 3;
  const auto state = test::denseSimulate(qft(n, x));
  const Index dim = Index{1} << n;
  for (Index k = 0; k < dim; ++k) {
    const fp angle = 2 * PI * static_cast<fp>(x * k) / static_cast<fp>(dim);
    const Complex expected =
        Complex{std::cos(angle), std::sin(angle)} / std::sqrt(static_cast<fp>(dim));
    EXPECT_NEAR(std::abs(state[k] - expected), 0.0, 1e-10) << "k=" << k;
  }
}

TEST(Grover, AmplifiesMarkedState) {
  const Qubit n = 5;
  const auto state = test::denseSimulate(grover(n));
  const Index marked = (Index{1} << n) - 1;
  // After optimal iterations the marked probability should dominate.
  EXPECT_GT(norm2(state[marked]), 0.9);
}

TEST(Grover, OneIterationKnownAmplitude) {
  // For n=2, one Grover iteration finds |11> with certainty.
  const auto state = test::denseSimulate(grover(2, 1));
  EXPECT_NEAR(norm2(state[3]), 1.0, 1e-10);
}

TEST(BernsteinVazirani, RecoversSecret) {
  const Qubit n = 6;
  const std::uint64_t secret = 0b101101;
  const auto state = test::denseSimulate(bernsteinVazirani(n, secret));
  // The data register must be exactly |secret>; the ancilla is in |->.
  for (Index i = 0; i < state.size(); ++i) {
    const Index data = i & ((Index{1} << n) - 1);
    if (data == secret) {
      EXPECT_NEAR(std::abs(state[i]), SQRT2_INV, 1e-10);
    } else {
      EXPECT_NEAR(std::abs(state[i]), 0.0, 1e-10);
    }
  }
}

TEST(Dnn, StructureAndDeterminism) {
  const auto a = dnn(6, 3, 42);
  const auto b = dnn(6, 3, 42);
  EXPECT_EQ(a, b);
  const auto c = dnn(6, 3, 43);
  EXPECT_NE(a, c);
  // n encoding RY + layers*(2n rot + n CX) + n readout.
  EXPECT_EQ(a.numGates(), 6u + 3 * (2 * 6 + 6) + 6);
}

TEST(Dnn, ProducesIrregularState) {
  // The DNN state should spread over (nearly) all amplitudes.
  const auto state = test::denseSimulate(dnn(5, 3, 1));
  std::size_t nonzero = 0;
  for (const auto& amp : state) {
    nonzero += (std::abs(amp) > 1e-9);
  }
  EXPECT_GT(nonzero, state.size() * 3 / 4);
}

TEST(Vqe, StructureAndNormPreservation) {
  const auto c = vqe(5, 2, 3);
  const auto state = test::denseSimulate(c);
  fp norm = 0;
  for (const auto& amp : state) {
    norm += norm2(amp);
  }
  EXPECT_NEAR(norm, 1.0, 1e-10);
}

TEST(SwapTest, AncillaProbabilityEncodesOverlap) {
  // P(ancilla = 0) = (1 + |<a|b>|^2) / 2 — the defining property.
  const Qubit n = 5;  // ancilla + two 2-qubit registers
  const auto c = swapTest(n, 77);
  const auto state = test::denseSimulate(c);
  fp p0 = 0;
  for (Index i = 0; i < state.size(); ++i) {
    if (!testBit(i, 0)) {
      p0 += norm2(state[i]);
    }
  }
  EXPECT_GE(p0, 0.5 - 1e-10);  // overlap^2 >= 0 forces P(0) >= 1/2
  EXPECT_LE(p0, 1.0 + 1e-10);
}

TEST(SwapTest, RequiresOddQubitCount) {
  EXPECT_THROW((void)swapTest(4), std::invalid_argument);
  EXPECT_THROW((void)knn(6), std::invalid_argument);
  EXPECT_NO_THROW((void)knn(7));
}

TEST(Supremacy, GridShapeAndDeterminism) {
  SupremacyOptions opt;
  opt.rows = 2;
  opt.cols = 3;
  opt.cycles = 4;
  const auto a = supremacy(opt);
  const auto b = supremacy(opt);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.numQubits(), 6);
}

TEST(Supremacy, NoRepeatedSingleQubitGate) {
  SupremacyOptions opt;
  opt.rows = 2;
  opt.cols = 2;
  opt.cycles = 12;
  opt.finalHadamards = false;
  const auto c = supremacy(opt);
  // Track consecutive 1q gates per qubit (skipping H wall and CZ layers).
  std::vector<qc::GateKind> last(4, qc::GateKind::I);
  for (const auto& op : c) {
    if (op.controls.empty() && op.kind != qc::GateKind::H) {
      EXPECT_NE(op.kind, last[static_cast<std::size_t>(op.target)]);
      last[static_cast<std::size_t>(op.target)] = op.kind;
    }
  }
}

TEST(Supremacy, ConvenienceOverloadFactorsGrid) {
  const auto c = supremacy(12, 3, 5);
  EXPECT_EQ(c.numQubits(), 12);
  EXPECT_GT(c.numGates(), 12u * 3);
}

TEST(Supremacy, StateIsHighlyIrregular) {
  const auto state = test::denseSimulate(supremacy(8, 8, 3));
  std::size_t nonzero = 0;
  for (const auto& amp : state) {
    nonzero += (std::abs(amp) > 1e-9);
  }
  EXPECT_GT(nonzero, state.size() / 2);
}

}  // namespace
}  // namespace fdd::circuits
