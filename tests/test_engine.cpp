// Engine-layer tests: backend parity through the factory (every registered
// backend against the dense reference), the pass pipeline, the RunReport
// JSON round trip, and the streaming Backend API.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "engine/simulation_engine.hpp"
#include "helpers.hpp"
#include "obs/trace.hpp"
#include "simd/kernels.hpp"

namespace fdd {
namespace {

std::vector<qc::Circuit> parityCircuits() {
  std::vector<qc::Circuit> out;
  out.push_back(circuits::ghz(10));
  out.push_back(circuits::qft(7, 0x5eed));
  out.push_back(circuits::grover(6));
  out.push_back(circuits::supremacy(10, 5, 23));  // random supremacy slice
  return out;
}

// ---------------------------------------------------------------------------
// Backend parity: every registered backend, via the factory, against the
// dense reference oracle.
// ---------------------------------------------------------------------------

TEST(EngineParity, AllBackendsMatchDenseReference) {
  const auto names = engine::BackendFactory::instance().registeredNames();
  ASSERT_GE(names.size(), 4u);
  for (const auto& circuit : parityCircuits()) {
    const auto reference = test::denseSimulate(circuit);
    for (const auto& name : names) {
      engine::EngineOptions options;
      options.threads = 2;
      engine::SimulationEngine eng{options};
      const engine::RunReport report = eng.run(name, circuit);
      EXPECT_EQ(report.backend, name);
      EXPECT_EQ(report.qubits, circuit.numQubits());
      EXPECT_EQ(report.gates, circuit.numGates());
      const auto state = eng.backend().stateVector();
      EXPECT_LT(test::maxDistance(state, reference), 1e-9)
          << "backend " << name << " diverges on " << circuit.name();
    }
  }
}

TEST(EngineParity, AllBackendsAgreeWithPassesEnabled) {
  const auto circuit = circuits::supremacy(10, 6, 7);
  const auto reference = test::denseSimulate(circuit);
  const auto names = engine::BackendFactory::instance().registeredNames();
  for (const auto& name : names) {
    engine::EngineOptions options;
    options.threads = 2;
    options.passes = {"optimize", "fusion-dmav"};
    const engine::RunReport report = engine::simulate(name, circuit, options);
    ASSERT_EQ(report.passes.size(), 2u);

    engine::SimulationEngine eng{options};
    eng.run(name, circuit);
    EXPECT_LT(test::maxDistance(eng.backend().stateVector(), reference), 1e-9)
        << "backend " << name << " diverges with passes enabled";
  }
}

TEST(EngineParity, AmplitudeQueriesMatchStateVector) {
  const auto circuit = circuits::qft(6, 11);
  for (const auto& name :
       engine::BackendFactory::instance().registeredNames()) {
    engine::SimulationEngine eng;
    eng.run(name, circuit);
    const auto state = eng.backend().stateVector();
    for (Index i = 0; i < state.size(); ++i) {
      EXPECT_LT(std::abs(eng.backend().amplitude(i) - state[i]), 1e-12)
          << "backend " << name << " amplitude " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(BackendFactory, RegistersTheFourBuiltins) {
  const auto& factory = engine::BackendFactory::instance();
  for (const char* name : {"flatdd", "dd", "array", "array-mi"}) {
    EXPECT_TRUE(factory.contains(name)) << name;
    EXPECT_FALSE(factory.describe(name).empty()) << name;
  }
}

TEST(BackendFactory, UnknownBackendThrowsWithNameList) {
  try {
    (void)engine::BackendFactory::instance().create("no-such-backend", 4, {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("flatdd"), std::string::npos)
        << "error should list registered backends: " << e.what();
  }
}

TEST(BackendFactory, CreatedBackendReportsItsFactoryName) {
  for (const auto& name :
       engine::BackendFactory::instance().registeredNames()) {
    const auto backend =
        engine::BackendFactory::instance().create(name, 3, {});
    EXPECT_EQ(backend->name(), name);
    EXPECT_EQ(backend->numQubits(), 3);
  }
}

// ---------------------------------------------------------------------------
// Pass pipeline
// ---------------------------------------------------------------------------

TEST(PassPipeline, UnknownPassThrows) {
  engine::EngineOptions options;
  options.passes = {"optimize", "no-such-pass"};
  engine::SimulationEngine eng{options};
  EXPECT_THROW((void)eng.run("dd", circuits::ghz(4)), std::invalid_argument);
}

TEST(PassPipeline, OptimizeCancelsInversePairs) {
  qc::Circuit circuit{3, "cancel"};
  circuit.h(0).h(0).cx(0, 1).cx(0, 1).x(2);  // two inverse pairs + one gate

  engine::EngineOptions options;
  options.passes = {"optimize"};
  const engine::RunReport report = engine::simulate("dd", circuit, options);

  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_EQ(report.passes[0].name, "optimize");
  EXPECT_TRUE(report.passes[0].circuitTransform);
  EXPECT_EQ(report.passes[0].gatesBefore, 5u);
  EXPECT_EQ(report.passes[0].gatesAfter, 1u);
  EXPECT_EQ(report.gates, 1u);  // the simulated circuit is the prepared one
}

TEST(PassPipeline, FusionPassesAreArmedNotCircuitTransforms) {
  engine::EngineOptions options;
  options.passes = {"fusion-kops"};
  options.forceConversionAtGate = 4;
  const engine::RunReport report =
      engine::simulate("flatdd", circuits::supremacy(8, 6, 3), options);
  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_FALSE(report.passes[0].circuitTransform);
  EXPECT_EQ(report.passes[0].gatesBefore, report.passes[0].gatesAfter);
  EXPECT_TRUE(report.converted);
}

// ---------------------------------------------------------------------------
// RunReport serialization
// ---------------------------------------------------------------------------

TEST(RunReportJson, RoundTripsEveryField) {
  engine::EngineOptions options;
  options.threads = 2;
  options.passes = {"optimize", "fusion-dmav"};
  options.forceConversionAtGate = 10;
  options.recordPerGate = true;
  const engine::RunReport report =
      engine::simulate("flatdd", circuits::supremacy(8, 8, 5), options);

  EXPECT_TRUE(report.converted);
  EXPECT_FALSE(report.perGate.empty());
  EXPECT_EQ(report.passes.size(), 2u);

  const engine::RunReport parsed =
      engine::RunReport::fromJson(report.toJson());
  EXPECT_EQ(parsed, report);
}

TEST(RunReportJson, SimdTierAndFusionCountersAreReported) {
  // The report's resolved dispatch tier must match the active kernel table,
  // and a diagonal-layer circuit must surface the fused-run counters.
  qc::Circuit circuit{6, "diag"};
  for (Qubit q = 0; q < 6; ++q) {
    circuit.h(q);
  }
  for (int layer = 0; layer < 4; ++layer) {
    for (Qubit q = 0; q < 6; ++q) {
      circuit.gate(qc::GateKind::RZ, {}, q, {0.3 + 0.1 * layer});
    }
  }
  engine::EngineOptions options;
  options.forceConversionAtGate = 6;
  const engine::RunReport report = engine::simulate("flatdd", circuit,
                                                    options);
  EXPECT_EQ(report.simdTier, simd::toString(simd::activeTier()));
  EXPECT_EQ(report.simdLanes, simd::lanes());
  EXPECT_EQ(report.simdLanes, simd::lanesOf(simd::activeTier()));
  EXPECT_GT(report.diagRuns, 0u);
  EXPECT_GE(report.diagRunGates, 2 * report.diagRuns);
  const engine::RunReport parsed =
      engine::RunReport::fromJson(report.toJson());
  EXPECT_EQ(parsed.diagRuns, report.diagRuns);
  EXPECT_EQ(parsed.diagRunGates, report.diagRunGates);
  EXPECT_EQ(parsed.denseBlockGates, report.denseBlockGates);
  EXPECT_EQ(parsed, report);
}

TEST(RunReportJson, RoundTripsForEveryBackend) {
  const auto circuit = circuits::qft(6, 1);
  for (const auto& name :
       engine::BackendFactory::instance().registeredNames()) {
    engine::EngineOptions options;
    options.recordPerGate = true;
    const engine::RunReport report = engine::simulate(name, circuit, options);
    EXPECT_EQ(engine::RunReport::fromJson(report.toJson()), report)
        << "round trip broke for backend " << name;
  }
}

engine::RunReport reportWithMetrics() {
  engine::RunReport report;
  report.backend = "flatdd";
  report.circuit = "synthetic";
  report.metrics.counters = {{"planCache.hits", 3}, {"rss.bytes", 1.5e9}};
  engine::MetricHistogram hist;
  hist.name = "dmav.replay";
  hist.count = 12;
  hist.sumSeconds = 0.125;
  hist.minSeconds = 1e-6;
  hist.maxSeconds = 0.25;
  hist.p50Seconds = 0.001;
  hist.p99Seconds = 0.2;
  hist.buckets = {0, 2, 5, 5};
  report.metrics.histograms.push_back(hist);
  report.metrics.poolPhases.push_back(
      engine::PoolPhaseMetrics{"dmav.replay", 4, 0.25, {0.1, 0.2}, 1.25});
  report.metrics.loadImbalance = 1.25;
  report.metrics.droppedTraceEvents = 7;
  report.ewmaLog = {engine::EwmaTickReport{0, 10, 10.0, 20.0, false},
                    engine::EwmaTickReport{211, 5000, 1200.5, 2401.0, true}};
  return report;
}

TEST(RunReportJson, RoundTripsMetricsAndEwmaLog) {
  const engine::RunReport report = reportWithMetrics();
  EXPECT_FALSE(report.metrics.empty());
  const engine::RunReport parsed =
      engine::RunReport::fromJson(report.toJson());
  EXPECT_EQ(parsed.metrics, report.metrics);
  EXPECT_EQ(parsed.ewmaLog, report.ewmaLog);
  EXPECT_EQ(parsed, report);
}

TEST(RunReportJson, UnknownKeysInsideMetricsAreIgnored) {
  // A report written by a future version may grow fields anywhere inside the
  // metrics object; today's reader must skip them without throwing.
  const std::string json = R"({
    "backend": "flatdd",
    "metrics": {
      "counters": [{"name": "a", "value": 2, "futureField": [1, 2]}],
      "histograms": [{"name": "h", "count": 1, "sumSeconds": 0.5,
                      "shape": "bimodal"}],
      "poolPhases": [{"phase": "p", "regions": 1, "wallSeconds": 0.5,
                      "busySeconds": [0.1], "imbalance": 1.0,
                      "numaNode": 0}],
      "loadImbalance": 1.0,
      "droppedTraceEvents": 4,
      "futureSection": {"x": 1}
    },
    "ewmaLog": [{"gate": 3, "ddSize": 10, "ewma": 5.0, "threshold": 10.0,
                 "triggered": true, "confidence": null}]
  })";
  const engine::RunReport parsed = engine::RunReport::fromJson(json);
  ASSERT_EQ(parsed.metrics.counters.size(), 1u);
  EXPECT_EQ(parsed.metrics.counters[0].name, "a");
  EXPECT_DOUBLE_EQ(parsed.metrics.counters[0].value, 2.0);
  ASSERT_EQ(parsed.metrics.histograms.size(), 1u);
  EXPECT_EQ(parsed.metrics.histograms[0].count, 1u);
  ASSERT_EQ(parsed.metrics.poolPhases.size(), 1u);
  EXPECT_EQ(parsed.metrics.poolPhases[0].phase, "p");
  EXPECT_EQ(parsed.metrics.droppedTraceEvents, 4u);
  ASSERT_EQ(parsed.ewmaLog.size(), 1u);
  EXPECT_EQ(parsed.ewmaLog[0].gate, 3u);
  EXPECT_TRUE(parsed.ewmaLog[0].triggered);
}

#if FDD_OBS_ENABLED
TEST(RunReportJson, ObsRunProducesRoundTrippingMetrics) {
  engine::EngineOptions options;
  options.threads = 2;
  options.forceConversionAtGate = 10;
  options.enableObs = true;
  const engine::RunReport report =
      engine::simulate("flatdd", circuits::supremacy(8, 8, 5), options);
  fdd::obs::setEnabled(false);  // keep obs out of the remaining tests

  EXPECT_FALSE(report.metrics.empty());
  const engine::RunReport parsed =
      engine::RunReport::fromJson(report.toJson());
  EXPECT_EQ(parsed, report);

  // The scalar CSV gains the observability summary rows.
  const std::string csv = report.toCsv();
  EXPECT_NE(csv.find("load_imbalance,"), std::string::npos);
  EXPECT_NE(csv.find("dropped_trace_events,"), std::string::npos);
}
#endif  // FDD_OBS_ENABLED

TEST(RunReportJson, EscapesSpecialCharacters) {
  engine::RunReport report;
  report.backend = "quote\" backslash\\ newline\n tab\t";
  report.circuit = "control\x01char";
  const engine::RunReport parsed =
      engine::RunReport::fromJson(report.toJson());
  EXPECT_EQ(parsed.backend, report.backend);
  EXPECT_EQ(parsed.circuit, report.circuit);
}

TEST(RunReportJson, MalformedInputThrows) {
  EXPECT_THROW((void)engine::RunReport::fromJson(""), std::invalid_argument);
  EXPECT_THROW((void)engine::RunReport::fromJson("[1,2]{"),
               std::invalid_argument);
  EXPECT_THROW((void)engine::RunReport::fromJson("{\"backend\":}"),
               std::invalid_argument);
  EXPECT_THROW((void)engine::RunReport::fromJson("42"),
               std::invalid_argument);  // top level must be an object
}

TEST(RunReportCsv, EmitsScalarRowsAndPerGateTrace) {
  engine::EngineOptions options;
  options.recordPerGate = true;
  const engine::RunReport report =
      engine::simulate("array", circuits::ghz(5), options);

  const std::string csv = report.toCsv();
  EXPECT_NE(csv.find("backend,array"), std::string::npos);
  EXPECT_NE(csv.find("qubits,5"), std::string::npos);
  EXPECT_NE(csv.find("simulate_seconds,"), std::string::npos);

  const std::string trace = report.perGateCsv();
  // header + one row per gate
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '\n'),
            static_cast<long>(report.gates) + 1);
  EXPECT_NE(trace.find("array"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Streaming / stateful Backend API
// ---------------------------------------------------------------------------

TEST(EngineBackend, StreamingMatchesBatchForEveryBackend) {
  const auto circuit = circuits::supremacy(9, 6, 13);
  for (const auto& name :
       engine::BackendFactory::instance().registeredNames()) {
    engine::EngineOptions options;
    options.forceConversionAtGate = 8;  // exercise mid-stream conversion
    auto streamed = engine::BackendFactory::instance().create(
        name, circuit.numQubits(), options);
    for (const auto& op : circuit) {
      streamed->applyOperation(op);
    }
    auto batch = engine::BackendFactory::instance().create(
        name, circuit.numQubits(), options);
    batch->simulate(circuit);
    EXPECT_LT(test::maxDistance(streamed->stateVector(),
                                batch->stateVector()),
              1e-9)
        << "backend " << name;
  }
}

TEST(EngineBackend, SetStateThenResetRestoresZeroState) {
  const auto loaded = test::randomState(5, 77);
  for (const auto& name :
       engine::BackendFactory::instance().registeredNames()) {
    auto backend = engine::BackendFactory::instance().create(name, 5, {});
    backend->setState(loaded);
    EXPECT_LT(test::maxDistance(backend->stateVector(), loaded), 1e-10)
        << "backend " << name;
    backend->reset();
    const auto state = backend->stateVector();
    EXPECT_LT(std::abs(state[0] - Complex{1.0}), 1e-12) << "backend " << name;
    for (Index i = 1; i < state.size(); ++i) {
      EXPECT_LT(std::abs(state[i]), 1e-12) << "backend " << name;
    }
  }
}

TEST(EngineBackend, SamplingGhzYieldsOnlyTheTwoBranches) {
  const auto circuit = circuits::ghz(8);
  const Index allOnes = (Index{1} << 8) - 1;
  for (const auto& name :
       engine::BackendFactory::instance().registeredNames()) {
    engine::SimulationEngine eng;
    eng.run(name, circuit);
    Xoshiro256 rng{42};
    const auto samples = eng.backend().sample(500, rng);
    ASSERT_EQ(samples.size(), 500u) << "backend " << name;
    std::size_t ones = 0;
    for (const Index s : samples) {
      ASSERT_TRUE(s == 0 || s == allOnes)
          << "backend " << name << " sampled impossible outcome " << s;
      ones += s == allOnes ? 1 : 0;
    }
    // Both branches have probability 1/2; 500 shots never land all on one
    // side (probability 2^-499).
    EXPECT_GT(ones, 0u) << "backend " << name;
    EXPECT_LT(ones, 500u) << "backend " << name;
  }
}

TEST(EngineBackend, MemoryBytesIsNonZeroAfterRun) {
  for (const auto& name :
       engine::BackendFactory::instance().registeredNames()) {
    const engine::RunReport report =
        engine::simulate(name, circuits::ghz(6), {});
    EXPECT_GT(report.memoryBytes, 0u) << "backend " << name;
    EXPECT_GT(report.peakRssBytes, 0u) << "backend " << name;
  }
}

TEST(SimulationEngine, BackendAccessBeforeFirstRunThrows) {
  engine::SimulationEngine eng;
  EXPECT_FALSE(eng.hasBackend());
  EXPECT_THROW((void)eng.backend(), std::logic_error);
}

TEST(SimulationEngine, DotExportOnlyFromTheDdBackend) {
  const auto circuit = circuits::ghz(4);
  engine::SimulationEngine ddEng;
  ddEng.run("dd", circuit);
  EXPECT_FALSE(ddEng.backend().exportDot().empty());

  engine::SimulationEngine arrEng;
  arrEng.run("array", circuit);
  EXPECT_TRUE(arrEng.backend().exportDot().empty());
}

// ---------------------------------------------------------------------------
// Unified parallel threshold (satellite)
// ---------------------------------------------------------------------------

TEST(ParallelThreshold, SingleConstantSharedByAllDefaults) {
  EXPECT_EQ(sim::ArraySimOptions{}.parallelThresholdDim,
            kParallelThresholdDim);
  EXPECT_EQ(flat::FlatDDOptions{}.parallelThresholdDim,
            kParallelThresholdDim);
  EXPECT_EQ(engine::EngineOptions{}.parallelThresholdDim,
            kParallelThresholdDim);
}

}  // namespace
}  // namespace fdd
