// Unit tests for the thread pool: correctness of fork/join, parallelFor
// coverage, reuse across many regions, and concurrent writes.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace fdd::par {
namespace {

TEST(ThreadPool, RunsAllWorkerIndices) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(4);
  pool.run(4, [&](unsigned i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool{1};
  bool ran = false;
  pool.run(1, [&](unsigned i) {
    EXPECT_EQ(i, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, PartialWidthUsesOnlyRequestedWorkers) {
  ThreadPool pool{8};
  std::atomic<int> count{0};
  std::atomic<unsigned> maxIndex{0};
  pool.run(3, [&](unsigned i) {
    count.fetch_add(1);
    unsigned cur = maxIndex.load();
    while (i > cur && !maxIndex.compare_exchange_weak(cur, i)) {
    }
  });
  EXPECT_EQ(count.load(), 3);
  EXPECT_LT(maxIndex.load(), 3u);
}

TEST(ThreadPool, ManySequentialRegions) {
  ThreadPool pool{4};
  std::atomic<long> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.run(4, [&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 2000);
}

TEST(ThreadPool, AlternatingWidths) {
  ThreadPool pool{8};
  for (unsigned width = 1; width <= 8; ++width) {
    std::atomic<int> count{0};
    pool.run(width, [&](unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), static_cast<int>(width));
  }
  // And back down.
  for (unsigned width = 8; width >= 1; --width) {
    std::atomic<int> count{0};
    pool.run(width, [&](unsigned) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), static_cast<int>(width));
  }
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> touched(1000);
  pool.parallelFor(4, 0, touched.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      touched[i].fetch_add(1);
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool{4};
  bool called = false;
  pool.parallelFor(4, 10, 10, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForRangeSmallerThanThreads) {
  ThreadPool pool{8};
  std::atomic<int> total{0};
  pool.parallelFor(8, 0, 3, [&](std::size_t lo, std::size_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ParallelForNonZeroBegin) {
  ThreadPool pool{4};
  std::atomic<long> sum{0};
  pool.parallelFor(4, 100, 200, [&](std::size_t lo, std::size_t hi) {
    long s = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      s += static_cast<long>(i);
    }
    sum.fetch_add(s);
  });
  long expected = 0;
  for (long i = 100; i < 200; ++i) {
    expected += i;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, DisjointWritesNeedNoSynchronization) {
  ThreadPool pool{4};
  std::vector<int> data(4096, 0);
  pool.run(4, [&](unsigned i) {
    const std::size_t chunk = data.size() / 4;
    for (std::size_t j = i * chunk; j < (i + 1) * chunk; ++j) {
      data[j] = static_cast<int>(i) + 1;
    }
  });
  const long sum = std::accumulate(data.begin(), data.end(), 0L);
  EXPECT_EQ(sum, 4096 / 4 * (1 + 2 + 3 + 4));
}

TEST(ThreadPool, GlobalPoolExistsAndIsWideEnough) {
  EXPECT_GE(globalPool().size(), 16u);
}

TEST(ThreadPool, SizeClampedToAtLeastOne) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.size(), 1u);
}

}  // namespace
}  // namespace fdd::par
