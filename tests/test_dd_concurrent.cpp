// Concurrency suite for the parallel DD phase (ISSUE 7): randomized stress
// of the concurrent tables (unique, compute, complex), atomic refcounts,
// and parallel-vs-sequential equivalence of the mat-vec recursion. Runs
// under TSan in CI — the stress tests exist mostly to give the race
// detector schedules to chew on, so they favor contention (tiny tables,
// many workers) over realism.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <complex>
#include <cstdint>
#include <vector>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "common/prng.hpp"
#include "dd/compute_table.hpp"
#include "dd/complex_table.hpp"
#include "dd/package.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd {
namespace {

constexpr unsigned kWorkers = 8;

// ---------------------------------------------------------------------------
// Parallel-vs-sequential equivalence
// ---------------------------------------------------------------------------

qc::Circuit familyCircuit(int which) {
  switch (which) {
    case 0: return circuits::supremacy(10, 8, 46);
    case 1: return circuits::qft(10, 777);
    case 2: return circuits::grover(9);
    case 3: return circuits::randomUniversal(10, 150, 3);
    default: return circuits::quantumVolume(10, 4, 11);
  }
}

void expectStatesMatch(const AlignedVector<Complex>& a,
                       const AlignedVector<Complex>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i].real(), b[i].real(), 1e-9) << "amplitude " << i;
    ASSERT_NEAR(a[i].imag(), b[i].imag(), 1e-9) << "amplitude " << i;
  }
}

/// Runs `circuit` on `threads` workers with the parallel path forced on
/// (no min-size gate) and returns the dense final state.
AlignedVector<Complex> runParallel(const qc::Circuit& circuit,
                                   unsigned threads, int grain) {
  sim::DDSimulator sim{circuit.numQubits()};
  sim.setThreads(threads);
  sim.package().setDdParallelMinNodes(0);
  sim.package().setDdGrain(grain);
  sim.simulate(circuit);
  EXPECT_TRUE(sim.package().checkCanonical());
  return sim.stateVector();
}

TEST(DDConcurrent, ParallelMultiplyMatchesSequentialAcrossFamilies) {
  for (int which = 0; which < 5; ++which) {
    const qc::Circuit circuit = familyCircuit(which);
    sim::DDSimulator seq{circuit.numQubits()};
    seq.simulate(circuit);
    const AlignedVector<Complex> expected = seq.stateVector();
    for (const unsigned threads : {2u, 4u}) {
      SCOPED_TRACE("family " + std::to_string(which) + " threads " +
                   std::to_string(threads));
      expectStatesMatch(expected, runParallel(circuit, threads, -1));
    }
  }
}

TEST(DDConcurrent, GrainZeroMatchesAutoGrain) {
  // Grain 0 spawns a task at every recursion level — maximum scheduling
  // pressure, worst case for the fork/join protocol and the tables.
  const qc::Circuit circuit = circuits::supremacy(9, 6, 43);
  const AlignedVector<Complex> coarse = runParallel(circuit, 4, -1);
  const AlignedVector<Complex> fine = runParallel(circuit, 4, 0);
  expectStatesMatch(coarse, fine);
}

TEST(DDConcurrent, ParallelKeepsStateNormalized) {
  const qc::Circuit circuit = circuits::randomUniversal(11, 200, 29);
  sim::DDSimulator sim{circuit.numQubits()};
  sim.setThreads(kWorkers);
  sim.package().setDdParallelMinNodes(0);
  sim.package().setDdGrain(0);
  sim.simulate(circuit);
  EXPECT_TRUE(sim.package().checkCanonical());
  const Complex norm = sim.package().innerProduct(sim.state(), sim.state());
  EXPECT_NEAR(norm.real(), 1.0, 1e-9);
  EXPECT_NEAR(norm.imag(), 0.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Unique table: concurrent insertion stays canonical
// ---------------------------------------------------------------------------

TEST(DDConcurrent, UniqueTableConcurrentBasisStatesCanonical) {
  constexpr Qubit kQubits = 10;
  constexpr Index kDim = Index{1} << kQubits;
  dd::Package pkg{kQubits};
  // All workers build all basis states, so every node is racing to be
  // inserted by every worker; canonicity demands they all get the same
  // pointer per state.
  std::vector<std::vector<dd::vEdge>> built(kWorkers);
  par::globalPool().run(kWorkers, [&](unsigned w) {
    auto& mine = built[w];
    mine.reserve(kDim);
    for (Index i = 0; i < kDim; ++i) {
      // Stagger the order per worker so insert races hit different levels.
      mine.push_back(pkg.makeBasisState((i + w * 37) % kDim));
    }
  });
  EXPECT_TRUE(pkg.checkCanonical());
  for (unsigned w = 1; w < kWorkers; ++w) {
    for (Index i = 0; i < kDim; ++i) {
      const Index state = (i + w * 37) % kDim;
      // Worker 0 visits in natural order, so built[0][state] is `state`.
      ASSERT_EQ(built[w][i].n, built[0][state].n) << "basis state " << state;
    }
  }
}

TEST(DDConcurrent, ConcurrentAddsProduceCanonicalNodes) {
  constexpr Qubit kQubits = 8;
  dd::Package pkg{kQubits};
  // Each worker sums a deterministic batch of basis states; many of the
  // intermediate sums coincide across workers, racing the unique, compute
  // and complex tables at once.
  std::vector<dd::vEdge> sums(kWorkers);
  par::globalPool().run(kWorkers, [&](unsigned w) {
    Xoshiro256 rng{1234 + (w % 4)};  // pairs of workers share a seed
    dd::vEdge acc = pkg.makeBasisState(0);
    for (int step = 0; step < 64; ++step) {
      const auto bits = static_cast<Index>(rng() & 0xffu);
      acc = pkg.add(acc, pkg.makeBasisState(bits), kQubits - 1);
    }
    sums[w] = acc;
  });
  EXPECT_TRUE(pkg.checkCanonical());
  // Same seed -> bitwise identical DD (same canonical node pointers).
  for (unsigned w = 4; w < kWorkers; ++w) {
    EXPECT_EQ(sums[w].n, sums[w - 4].n) << "worker " << w;
    EXPECT_EQ(sums[w].w, sums[w - 4].w) << "worker " << w;
  }
}

// ---------------------------------------------------------------------------
// Compute table: torn reads must never surface
// ---------------------------------------------------------------------------

TEST(DDConcurrent, ComputeTableNeverReturnsMismatchedResult) {
  // Tiny table (256 slots) so kWorkers hammer the same slots; keys and
  // results both encode the same integer, so any torn read that survives
  // the seqlock validation shows up as a key/result mismatch.
  using Key = dd::MulKey<dd::mNode, dd::vNode>;
  dd::ComputeTable<Key, dd::vEdge, 8> table;
  std::atomic<std::size_t> validated{0};
  par::globalPool().run(kWorkers, [&](unsigned w) {
    Xoshiro256 rng{977 * (w + 1)};
    std::size_t mine = 0;
    for (int iter = 0; iter < 200'000; ++iter) {
      const std::uintptr_t id = (rng() % 4096) + 1;
      const Key key{reinterpret_cast<const dd::mNode*>(id << 4),
                    reinterpret_cast<const dd::vNode*>(id << 8)};
      if ((iter & 3) == 0) {
        const dd::vEdge result{reinterpret_cast<dd::vNode*>(id << 12),
                               Complex(static_cast<fp>(id), -1.0)};
        table.insert(key, result);
        continue;
      }
      if (dd::vEdge out; table.lookup(key, out)) {
        ASSERT_EQ(reinterpret_cast<std::uintptr_t>(out.n), id << 12)
            << "result does not match key: torn read escaped the seqlock";
        ASSERT_EQ(out.w, Complex(static_cast<fp>(id), -1.0));
        ++mine;
      }
    }
    validated.fetch_add(mine, std::memory_order_relaxed);
  });
  // Contended or not, a healthy cache serves plenty of hits.
  EXPECT_GT(validated.load(), 10'000u);
  EXPECT_EQ(table.hits(), validated.load());
}

// ---------------------------------------------------------------------------
// Complex table: concurrent lookups agree on one canonical representative
// ---------------------------------------------------------------------------

TEST(DDConcurrent, ComplexTableConcurrentLookupsAgree) {
  dd::ComplexTable table{1e-10};
  constexpr int kValues = 512;
  std::vector<std::vector<Complex>> reps(
      kWorkers, std::vector<Complex>(kValues));
  par::globalPool().run(kWorkers, [&](unsigned w) {
    for (int i = 0; i < kValues; ++i) {
      // Different per-worker visit order; identical value set.
      const int k = (i * 131 + static_cast<int>(w) * 31) % kValues;
      const Complex z{0.001 * k, -0.002 * k};
      reps[w][k] = table.lookup(z);
    }
  });
  for (int k = 0; k < kValues; ++k) {
    const Complex z{0.001 * k, -0.002 * k};
    const Complex canon = table.lookup(z);
    for (unsigned w = 0; w < kWorkers; ++w) {
      // Canonicity is bit-exact: every thread must have received the same
      // representative the table answers with now.
      ASSERT_EQ(std::bit_cast<std::uint64_t>(reps[w][k].real()),
                std::bit_cast<std::uint64_t>(canon.real()))
          << "value " << k << " worker " << w;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(reps[w][k].imag()),
                std::bit_cast<std::uint64_t>(canon.imag()))
          << "value " << k << " worker " << w;
    }
  }
}

// ---------------------------------------------------------------------------
// Refcounts: relaxed atomic RMWs balance out
// ---------------------------------------------------------------------------

TEST(DDConcurrent, AtomicRefcountsBalanceUnderContention) {
  dd::Package pkg{6};
  const dd::vEdge e = pkg.makeBasisState(13);
  pkg.incRef(e);  // pin once so the node's count is nonzero throughout
  const std::uint32_t before = e.n->ref.load();
  par::globalPool().run(kWorkers, [&](unsigned) {
    for (int i = 0; i < 50'000; ++i) {
      pkg.incRef(e);
    }
    for (int i = 0; i < 50'000; ++i) {
      pkg.decRef(e);
    }
  });
  EXPECT_EQ(e.n->ref.load(), before);
}

}  // namespace
}  // namespace fdd
