// Peephole optimizer: exactness of every rewrite, cascade behavior, wire
// interference rules, and statistics.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "helpers.hpp"
#include "qc/optimizer.hpp"

namespace fdd::qc {
namespace {

void expectSameUnitaryAction(const Circuit& a, const Circuit& b) {
  EXPECT_STATE_NEAR(test::denseSimulate(a), test::denseSimulate(b), 1e-9);
}

TEST(Optimizer, CancelsAdjacentInversePairs) {
  Circuit c{3};
  c.h(0).h(0).x(1).x(1).t(2).tdg(2).cx(0, 1).cx(0, 1);
  OptimizerStats stats;
  const Circuit opt = optimize(c, {}, &stats);
  EXPECT_EQ(opt.numGates(), 0u);
  EXPECT_EQ(stats.cancelledPairs, 4u);
}

TEST(Optimizer, CascadingCancellation) {
  // H X X H collapses completely through two cascaded cancellations.
  Circuit c{1};
  c.h(0).x(0).x(0).h(0);
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.numGates(), 0u);
}

TEST(Optimizer, MergesRotations) {
  Circuit c{2};
  c.rz(0.3, 0).rz(0.4, 0).rx(1.0, 1).rx(-1.0, 1);
  OptimizerStats stats;
  const Circuit opt = optimize(c, {}, &stats);
  ASSERT_EQ(opt.numGates(), 1u);
  EXPECT_EQ(opt[0].kind, GateKind::RZ);
  EXPECT_NEAR(opt[0].params[0], 0.7, 1e-12);
  // rz pair merges; the rx(1.0)/rx(-1.0) pair is an exact inverse pair and
  // is picked up by cancellation first.
  EXPECT_EQ(stats.mergedRotations, 1u);
  EXPECT_EQ(stats.cancelledPairs, 1u);
  expectSameUnitaryAction(c, opt);
}

TEST(Optimizer, RotationMergeRespectsControls) {
  // crz(a) and rz(b) on the same target are NOT mergeable.
  Circuit c{2};
  c.crz(0.3, 0, 1).rz(0.4, 1);
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.numGates(), 2u);
  // but two crz with the same control merge:
  Circuit c2{2};
  c2.crz(0.3, 0, 1).crz(0.4, 0, 1);
  const Circuit opt2 = optimize(c2);
  EXPECT_EQ(opt2.numGates(), 1u);
  expectSameUnitaryAction(c2, opt2);
}

TEST(Optimizer, InterposingGateBlocksRewrites) {
  // H(0) CX(0,1) H(0): the CX shares wire 0, so the H's must survive.
  Circuit c{2};
  c.h(0).cx(0, 1).h(0);
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.numGates(), 3u);
  // A gate on an unrelated wire does NOT block.
  Circuit c2{3};
  c2.h(0).x(2).h(0);
  const Circuit opt2 = optimize(c2);
  EXPECT_EQ(opt2.numGates(), 1u);  // the two H's cancel; x(2) stays
  expectSameUnitaryAction(c2, opt2);
}

TEST(Optimizer, DropsIdentities) {
  Circuit c{2};
  c.i(0).rz(0.0, 1).p(0.0, 0).h(1);
  OptimizerStats stats;
  const Circuit opt = optimize(c, {}, &stats);
  EXPECT_EQ(opt.numGates(), 1u);
  EXPECT_EQ(stats.droppedIdentities, 3u);
}

TEST(Optimizer, ControlledTwoPiRotationIsNotIdentity) {
  // CRZ(2*pi) == controlled(-I) which kicks a relative phase: must be kept.
  Circuit c{2};
  c.crz(2 * PI, 0, 1);
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.numGates(), 1u);
  // And the dense simulation confirms it is not the identity.
  Circuit withH{2};
  withH.h(0).crz(2 * PI, 0, 1).h(0);
  const auto state = test::denseSimulate(withH);
  EXPECT_GT(std::abs(state[1]), 0.1);  // phase kick visible
}

TEST(Optimizer, FourPiRotationIsIdentity) {
  Circuit c{2};
  c.crz(4 * PI, 0, 1);
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.numGates(), 0u);
}

TEST(Optimizer, CircuitPlusInverseCollapsesCompletely) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto c = test::randomCircuit(5, 40, seed);
    c.append(c.inverse());
    const Circuit opt = optimize(c);
    EXPECT_EQ(opt.numGates(), 0u) << "seed=" << seed;
  }
}

TEST(Optimizer, PreservesSemanticsOnRandomCircuits) {
  for (const std::uint64_t seed : {4ULL, 5ULL, 6ULL, 7ULL}) {
    const auto c = test::randomCircuit(5, 60, seed);
    const Circuit opt = optimize(c);
    EXPECT_LE(opt.numGates(), c.numGates());
    expectSameUnitaryAction(c, opt);
  }
}

TEST(Optimizer, PreservesSemanticsOnFamilies) {
  for (const auto& c :
       {circuits::qft(6, 11), circuits::grover(4), circuits::vqe(6, 2, 8),
        circuits::qaoa(6, 2, 9)}) {
    expectSameUnitaryAction(c, optimize(c));
  }
}

TEST(Optimizer, OptionsDisableIndividualPasses) {
  Circuit c{1};
  c.h(0).h(0).rz(0.2, 0).rz(-0.2, 0).i(0);
  OptimizerOptions noCancel;
  noCancel.cancelInversePairs = false;
  noCancel.mergeRotations = false;
  noCancel.dropIdentities = false;
  EXPECT_EQ(optimize(c, noCancel).numGates(), c.numGates());

  OptimizerOptions onlyIdentities;
  onlyIdentities.cancelInversePairs = false;
  onlyIdentities.mergeRotations = false;
  EXPECT_EQ(optimize(c, onlyIdentities).numGates(), c.numGates() - 1);
}

TEST(Optimizer, StatsAreConsistent) {
  const auto c = circuits::dnn(6, 3, 10);
  OptimizerStats stats;
  const Circuit opt = optimize(c, {}, &stats);
  EXPECT_EQ(stats.inputGates, c.numGates());
  EXPECT_EQ(stats.outputGates, opt.numGates());
  EXPECT_GE(stats.inputGates, stats.outputGates);
}

}  // namespace
}  // namespace fdd::qc
