// Property-based randomized sweeps across the whole stack: for random
// circuits and random seeds, all four execution engines (dense reference,
// array simulator, DD simulator, FlatDD) must agree; unitarity and DD
// canonicity invariants must hold throughout.

#include <gtest/gtest.h>

#include <set>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "dd/package.hpp"
#include "flatdd/conversion.hpp"
#include "flatdd/dmav.hpp"
#include "flatdd/dmav_cache.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "helpers.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd {
namespace {

class RandomCircuitSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomCircuitSweep, AllEnginesAgree) {
  const auto [nInt, seedInt] = GetParam();
  const Qubit n = static_cast<Qubit>(nInt);
  const auto seed = static_cast<std::uint64_t>(seedInt);
  const auto circuit = test::randomCircuit(n, 30 + 5 * n, seed);
  const auto ref = test::denseSimulate(circuit);

  sim::ArraySimulator arr{n, {.threads = 2}};
  arr.simulate(circuit);
  EXPECT_STATE_NEAR(arr.state(), ref, 1e-9);

  sim::DDSimulator ddsim{n};
  ddsim.simulate(circuit);
  EXPECT_STATE_NEAR(ddsim.stateVector(), ref, 1e-9);

  flat::FlatDDOptions opt;
  opt.threads = 4;
  opt.warmupGates = 2;
  flat::FlatDDSimulator flatSim{n, opt};
  flatSim.simulate(circuit);
  EXPECT_STATE_NEAR(flatSim.stateVector(), ref, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomCircuitSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5, 7),
                                            ::testing::Range(1, 6)));

class RandomStateConversions : public ::testing::TestWithParam<int> {};

TEST_P(RandomStateConversions, DDRoundTripAndParallelConversionAgree) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const Qubit n = 8;
  dd::Package p{n};
  const auto v = test::randomState(n, seed);
  const dd::vEdge e = p.fromArray(v);
  // Sequential and parallel conversions must agree with the original.
  EXPECT_STATE_NEAR(p.toArray(e), v, 1e-9);
  EXPECT_STATE_NEAR(flat::ddToArrayParallel(e, n, 8), v, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStateConversions,
                         ::testing::Range(1, 13));

class RandomGateDmav : public ::testing::TestWithParam<int> {};

TEST_P(RandomGateDmav, CachedAndUncachedAgreeWithDense) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Xoshiro256 rng{seed};
  const Qubit n = 7;
  // Random controlled-U3 gate.
  const Qubit target = static_cast<Qubit>(rng.below(n));
  std::vector<Qubit> controls;
  for (Qubit q = 0; q < n; ++q) {
    if (q != target && rng.uniform() < 0.3) {
      controls.push_back(q);
    }
  }
  const qc::Operation op{
      qc::GateKind::U3, target, controls,
      {rng.uniform(0, PI), rng.uniform(0, 2 * PI), rng.uniform(0, 2 * PI)}};

  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD(op);
  const auto v = test::randomState(n, seed + 1000);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> plain(v.size());
  AlignedVector<Complex> cached(v.size());
  flat::DmavWorkspace ws;
  flat::dmav(m, n, in, plain, 4);
  flat::dmavCached(m, n, in, cached, 4, ws);
  const auto ref = test::denseApply(test::denseOperator(op, n), v);
  EXPECT_STATE_NEAR(plain, ref, 1e-10);
  EXPECT_STATE_NEAR(cached, ref, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGateDmav, ::testing::Range(1, 17));

class FamilySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FamilySweep, FlatDDAgreesWithArrayAcrossSeeds) {
  const auto [family, seedInt] = GetParam();
  const auto seed = static_cast<std::uint64_t>(seedInt);
  qc::Circuit circuit{1};
  switch (family) {
    case 0: circuit = circuits::dnn(7, 2, seed); break;
    case 1: circuit = circuits::vqe(7, 2, seed); break;
    case 2: circuit = circuits::supremacy(6, 5, seed); break;
    default: circuit = circuits::knn(7, seed); break;
  }
  const Qubit n = circuit.numQubits();
  flat::FlatDDSimulator flatSim{n, {.threads = 4}};
  flatSim.simulate(circuit);
  sim::ArraySimulator ref{n};
  ref.simulate(circuit);
  EXPECT_STATE_NEAR(flatSim.stateVector(), ref.state(), 1e-9)
      << circuit.name() << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Families, FamilySweep,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(1, 5)));

TEST(Invariants, DDSimulationPreservesNormOnAllFamilies) {
  for (const auto& circuit :
       {circuits::qft(7, 3), circuits::grover(5), circuits::wState(7),
        circuits::supremacy(6, 4, 3)}) {
    sim::DDSimulator s{circuit.numQubits()};
    s.simulate(circuit);
    const Complex ip = s.package().innerProduct(s.state(), s.state());
    EXPECT_NEAR(ip.real(), 1.0, 1e-8) << circuit.name();
  }
}

TEST(Invariants, CanonicityUnderRandomOperations) {
  // Two structurally equal states reached by different gate orders on
  // commuting gates must share the identical root node.
  const Qubit n = 5;
  dd::Package p{n};
  {
    dd::vEdge a = p.makeZeroState();
    a = p.multiply(p.makeGateDD({qc::GateKind::X, 0, {}, {}}), a);
    a = p.multiply(p.makeGateDD({qc::GateKind::X, 3, {}, {}}), a);
    dd::vEdge b = p.makeZeroState();
    b = p.multiply(p.makeGateDD({qc::GateKind::X, 3, {}, {}}), b);
    b = p.multiply(p.makeGateDD({qc::GateKind::X, 0, {}, {}}), b);
    EXPECT_EQ(a.n, b.n);
    EXPECT_TRUE(dd::weightEqual(a.w, b.w));
  }
}

TEST(Invariants, NormalizedNodeWeightsNeverExceedOne) {
  // Normalization divides by the max-magnitude weight, so every stored edge
  // weight has |w| <= 1 (+ tolerance).
  const Qubit n = 6;
  dd::Package p{n};
  const auto circuit = circuits::supremacy(n, 4, 7);
  dd::vEdge s = p.makeZeroState();
  for (const auto& op : circuit) {
    s = p.multiply(p.makeGateDD(op), s);
    // Walk the DD and check all node weights.
    std::vector<const dd::vNode*> stack{s.n};
    std::set<const dd::vNode*> seen{s.n};
    while (!stack.empty()) {
      const dd::vNode* node = stack.back();
      stack.pop_back();
      if (node->isTerminal()) {
        continue;
      }
      for (const auto& child : node->e) {
        EXPECT_LE(norm2(child.w), 1.0 + 1e-9);
        if (!child.isZero() && seen.insert(child.n).second) {
          stack.push_back(child.n);
        }
      }
    }
  }
}

TEST(Invariants, FlatDDStateNormIsOne) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto circuit = circuits::supremacy(8, 6, seed);
    flat::FlatDDSimulator flatSim{8, {.threads = 4}};
    flatSim.simulate(circuit);
    const auto state = flatSim.stateVector();
    fp norm = 0;
    for (const auto& amp : state) {
      norm += norm2(amp);
    }
    EXPECT_NEAR(norm, 1.0, 1e-8) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace fdd
