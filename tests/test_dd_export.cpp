// DD <-> array conversion, inner products, node counting.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "dd/package.hpp"
#include "helpers.hpp"

namespace fdd::dd {
namespace {

TEST(Export, ToArrayOfBasisState) {
  Package p{4};
  const auto arr = p.toArray(p.makeBasisState(11));
  for (Index i = 0; i < arr.size(); ++i) {
    if (i == 11) {
      EXPECT_NEAR(std::abs(arr[i] - Complex{1.0}), 0.0, 1e-12);
    } else {
      EXPECT_EQ(arr[i], Complex{});
    }
  }
}

TEST(Export, FromArrayToArrayRoundTrip) {
  const Qubit n = 6;
  Package p{n};
  const auto v = test::randomState(n, 21);
  const vEdge e = p.fromArray(v);
  const auto back = p.toArray(e);
  EXPECT_STATE_NEAR(v, back, 1e-9);
}

TEST(Export, RoundTripSparseVector) {
  const Qubit n = 5;
  Package p{n};
  test::DenseVector v(Index{1} << n, Complex{});
  v[3] = Complex{0.6, 0.0};
  v[17] = Complex{0.0, 0.8};
  const vEdge e = p.fromArray(v);
  const auto back = p.toArray(e);
  EXPECT_STATE_NEAR(v, back, 1e-10);
  // A 2-sparse vector needs few nodes.
  EXPECT_LE(p.nodeCount(e), static_cast<std::size_t>(2 * n));
}

TEST(Export, FromArrayAllZeroGivesZeroEdge) {
  Package p{3};
  const test::DenseVector v(8, Complex{});
  EXPECT_TRUE(p.fromArray(v).isZero());
}

TEST(Export, FromArrayWrongSizeThrows) {
  Package p{3};
  const test::DenseVector v(4);
  EXPECT_THROW((void)p.fromArray(v), std::invalid_argument);
  AlignedVector<Complex> out(4);
  EXPECT_THROW(p.toArray(p.makeZeroState(), out), std::invalid_argument);
}

TEST(Export, ToArrayOverwritesStaleData) {
  Package p{3};
  AlignedVector<Complex> out(8, Complex{9.0, 9.0});
  p.toArray(p.makeBasisState(2), out);
  for (Index i = 0; i < 8; ++i) {
    if (i != 2) {
      EXPECT_EQ(out[i], Complex{});
    }
  }
}

TEST(Export, GhzRoundTrip) {
  const Qubit n = 8;
  Package p{n};
  vEdge s = p.makeZeroState();
  for (const auto& op : circuits::ghz(n)) {
    s = p.multiply(p.makeGateDD(op), s);
  }
  const auto arr = p.toArray(s);
  EXPECT_NEAR(std::abs(arr.front()), SQRT2_INV, 1e-10);
  EXPECT_NEAR(std::abs(arr.back()), SQRT2_INV, 1e-10);
  // GHZ has a compact DD: the |0...0> and |1...1> chains give 2n - 1 nodes.
  EXPECT_LE(p.nodeCount(s), static_cast<std::size_t>(2 * n));
}

TEST(Export, InnerProductOfNormalizedStateIsOne) {
  const Qubit n = 5;
  Package p{n};
  const vEdge e = p.fromArray(test::randomState(n, 31));
  const Complex ip = p.innerProduct(e, e);
  EXPECT_NEAR(ip.real(), 1.0, 1e-9);
  EXPECT_NEAR(ip.imag(), 0.0, 1e-9);
}

TEST(Export, InnerProductMatchesDense) {
  const Qubit n = 4;
  Package p{n};
  const auto va = test::randomState(n, 32);
  const auto vb = test::randomState(n, 33);
  Complex ref{};
  for (Index i = 0; i < va.size(); ++i) {
    ref += std::conj(va[i]) * vb[i];
  }
  const Complex ip = p.innerProduct(p.fromArray(va), p.fromArray(vb));
  EXPECT_NEAR(std::abs(ip - ref), 0.0, 1e-9);
}

TEST(Export, InnerProductOrthogonalBasisStates) {
  Package p{4};
  const Complex ip =
      p.innerProduct(p.makeBasisState(3), p.makeBasisState(12));
  EXPECT_EQ(ip, Complex{});
}

TEST(Export, NodeCountZeroEdge) {
  Package p{4};
  EXPECT_EQ(p.nodeCount(vEdge::zero()), 0u);
  EXPECT_EQ(p.nodeCount(mEdge::zero()), 0u);
}

TEST(Export, GetAmplitudeOutOfRangeThrows) {
  Package p{3};
  EXPECT_THROW((void)p.getAmplitude(p.makeZeroState(), 8), std::out_of_range);
}

TEST(Export, IrregularStateHasLargeDD) {
  // Sanity for the paper's core premise: an irregular random vector needs
  // close to 2^n - 1 nodes, while a product state needs n.
  const Qubit n = 8;
  Package p{n};
  const vEdge irregular = p.fromArray(test::randomState(n, 55));
  EXPECT_GT(p.nodeCount(irregular), (std::size_t{1} << (n - 1)));
  const vEdge product = p.makeBasisState(77);
  EXPECT_EQ(p.nodeCount(product), static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace fdd::dd
