// Metamorphic properties across the whole stack: algebraic identities that
// must hold regardless of the concrete circuit or state. These catch subtle
// errors that example-based tests miss (wrong operand order, missing
// conjugations, phase slips).

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "dd/package.hpp"
#include "flatdd/dmav.hpp"
#include "helpers.hpp"
#include "qc/optimizer.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd {
namespace {

class SeededMeta : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] std::uint64_t seed() const {
    return static_cast<std::uint64_t>(GetParam());
  }
};

TEST_P(SeededMeta, AddIsAssociativeOnDDs) {
  const Qubit n = 5;
  dd::Package p{n};
  const dd::vEdge a = p.fromArray(test::randomState(n, seed() * 10 + 1));
  const dd::vEdge b = p.fromArray(test::randomState(n, seed() * 10 + 2));
  const dd::vEdge c = p.fromArray(test::randomState(n, seed() * 10 + 3));
  const dd::vEdge lhs = p.add(p.add(a, b, n - 1), c, n - 1);
  const dd::vEdge rhs = p.add(a, p.add(b, c, n - 1), n - 1);
  for (Index i = 0; i < (Index{1} << n); ++i) {
    EXPECT_NEAR(std::abs(p.getAmplitude(lhs, i) - p.getAmplitude(rhs, i)),
                0.0, 1e-9);
  }
}

TEST_P(SeededMeta, MultiplyDistributesOverAdd) {
  // M (a + b) == M a + M b.
  const Qubit n = 4;
  dd::Package p{n};
  const auto circuit = test::randomCircuit(n, 3, seed() * 10 + 4);
  const dd::mEdge m = p.makeGateDD(circuit[0]);
  const dd::vEdge a = p.fromArray(test::randomState(n, seed() * 10 + 5));
  const dd::vEdge b = p.fromArray(test::randomState(n, seed() * 10 + 6));
  const dd::vEdge lhs = p.multiply(m, p.add(a, b, n - 1));
  const dd::vEdge rhs =
      p.add(p.multiply(m, a), p.multiply(m, b), n - 1);
  for (Index i = 0; i < (Index{1} << n); ++i) {
    EXPECT_NEAR(std::abs(p.getAmplitude(lhs, i) - p.getAmplitude(rhs, i)),
                0.0, 1e-9);
  }
}

TEST_P(SeededMeta, AdjointIsAntiHomomorphic) {
  // (A B)^dagger == B^dagger A^dagger.
  const Qubit n = 4;
  dd::Package p{n};
  const auto circuit = test::randomCircuit(n, 2, seed() * 10 + 7);
  const dd::mEdge a = p.makeGateDD(circuit[0]);
  const dd::mEdge b = p.makeGateDD(circuit[1]);
  const dd::mEdge lhs = p.adjoint(p.multiply(a, b));
  const dd::mEdge rhs = p.multiply(p.adjoint(b), p.adjoint(a));
  EXPECT_EQ(lhs.n, rhs.n);
  EXPECT_LT(std::abs(lhs.w - rhs.w), 1e-9);
}

TEST_P(SeededMeta, GlobalPhaseInvarianceOfProbabilities) {
  // Prepending P(phi) to every qubit changes amplitudes but no probability
  // of a Z-basis measurement on a basis-state input.
  const Qubit n = 4;
  auto c = test::randomCircuit(n, 20, seed() * 10 + 8);
  sim::ArraySimulator base{n};
  base.simulate(c);
  qc::Circuit shifted{n};
  // A uniform diagonal phase on the input |0...0> only multiplies the state
  // by a global phase.
  shifted.p(0.7, 0);
  shifted.append(c);
  // p on |0> is identity on the amplitude; to get a true global phase use
  // the fact that P acts as 1 on |0>: so instead compare |amplitudes|.
  sim::ArraySimulator other{n};
  other.simulate(shifted);
  for (Index i = 0; i < (Index{1} << n); ++i) {
    EXPECT_NEAR(norm2(base.amplitude(i)), norm2(other.amplitude(i)), 1e-9);
  }
}

TEST_P(SeededMeta, InverseCircuitReversesTheState) {
  const Qubit n = 5;
  const auto c = test::randomCircuit(n, 25, seed() * 10 + 9);
  sim::DDSimulator s{n};
  s.simulate(c);
  // Applying the inverse returns to |0...0> exactly.
  s.simulate(c.inverse());
  EXPECT_NEAR(std::abs(s.amplitude(0) - Complex{1.0}), 0.0, 1e-8);
}

TEST_P(SeededMeta, CommutingDisjointGatesOrderIrrelevant) {
  // Gates on disjoint wires commute: shuffle a layer, same state.
  const Qubit n = 6;
  Xoshiro256 rng{seed() + 500};
  std::vector<qc::Operation> layer;
  for (Qubit q = 0; q < n; ++q) {
    layer.push_back({qc::GateKind::U3,
                     q,
                     {},
                     {rng.uniform(0, PI), rng.uniform(0, 2 * PI),
                      rng.uniform(0, 2 * PI)}});
  }
  qc::Circuit forward{n};
  qc::Circuit backward{n};
  for (const auto& op : layer) {
    forward.append(op);
  }
  for (auto it = layer.rbegin(); it != layer.rend(); ++it) {
    backward.append(*it);
  }
  sim::ArraySimulator a{n};
  a.simulate(forward);
  sim::ArraySimulator b{n};
  b.simulate(backward);
  EXPECT_STATE_NEAR(a.state(), b.state(), 1e-10);
}

TEST_P(SeededMeta, DmavComposesLikeMatrixProduct) {
  // dmav(B, dmav(A, v)) == dmav(BA, v) for random gate pairs.
  const Qubit n = 5;
  dd::Package p{n};
  const auto circuit = test::randomCircuit(n, 2, seed() * 10 + 11);
  const dd::mEdge a = p.makeGateDD(circuit[0]);
  const dd::mEdge b = p.makeGateDD(circuit[1]);
  const dd::mEdge ba = p.multiply(b, a);
  const auto v = test::randomState(n, seed() * 10 + 12);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> mid(in.size());
  AlignedVector<Complex> seq(in.size());
  AlignedVector<Complex> fused(in.size());
  flat::dmav(a, n, in, mid, 2);
  flat::dmav(b, n, mid, seq, 2);
  flat::dmav(ba, n, in, fused, 2);
  EXPECT_STATE_NEAR(seq, fused, 1e-9);
}

TEST_P(SeededMeta, OptimizerIdempotent) {
  const auto c = test::randomCircuit(5, 40, seed() * 10 + 13);
  const auto once = qc::optimize(c);
  const auto twice = qc::optimize(once);
  // Compare operation streams (the name gains an "_opt" suffix per pass).
  EXPECT_EQ(once.operations(), twice.operations());
}

TEST_P(SeededMeta, SamplingNeverProducesZeroAmplitudeOutcomes) {
  const Qubit n = 6;
  sim::DDSimulator s{n};
  s.simulate(circuits::bernsteinVazirani(n - 1,
                                         static_cast<std::uint64_t>(seed())));
  Xoshiro256 rng{seed() + 900};
  const auto dense = s.stateVector();
  for (const Index smp : s.package().sample(s.state(), 100, rng)) {
    EXPECT_GT(norm2(dense[smp]), 1e-12) << smp;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededMeta, ::testing::Range(1, 9));

}  // namespace
}  // namespace fdd
