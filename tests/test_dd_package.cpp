// DD package core: node construction and normalization invariants, canonicity
// (structural sharing), basis states, amplitude queries, ref counting and
// garbage collection.

#include <gtest/gtest.h>

#include "dd/package.hpp"
#include "helpers.hpp"

namespace fdd::dd {
namespace {

TEST(Package, RejectsBadQubitCounts) {
  EXPECT_THROW(Package(0), std::invalid_argument);
  EXPECT_THROW(Package(41), std::invalid_argument);
  EXPECT_NO_THROW(Package(1));
}

TEST(Package, ZeroStateAmplitudes) {
  Package p{3};
  const vEdge s = p.makeZeroState();
  EXPECT_NEAR(std::abs(p.getAmplitude(s, 0) - Complex{1.0}), 0.0, 1e-12);
  for (Index i = 1; i < 8; ++i) {
    EXPECT_EQ(p.getAmplitude(s, i), Complex{});
  }
}

TEST(Package, BasisStateAmplitudes) {
  Package p{4};
  for (const Index basis : {0ULL, 1ULL, 5ULL, 15ULL}) {
    const vEdge s = p.makeBasisState(basis);
    for (Index i = 0; i < 16; ++i) {
      const Complex amp = p.getAmplitude(s, i);
      if (i == basis) {
        EXPECT_NEAR(std::abs(amp - Complex{1.0}), 0.0, 1e-12);
      } else {
        EXPECT_EQ(amp, Complex{});
      }
    }
  }
}

TEST(Package, BasisStateOutOfRangeThrows) {
  Package p{3};
  EXPECT_THROW((void)p.makeBasisState(8), std::out_of_range);
}

TEST(Package, BasisStatesShareStructure) {
  // |000> and |001> share the upper levels' zero branches; more importantly,
  // building the same state twice must return the identical root node.
  Package p{5};
  const vEdge a = p.makeBasisState(19);
  const vEdge b = p.makeBasisState(19);
  EXPECT_EQ(a.n, b.n);
  EXPECT_TRUE(weightEqual(a.w, b.w));
}

TEST(Package, NodeCountOfBasisStateIsN) {
  Package p{6};
  const vEdge s = p.makeBasisState(0b101010);
  EXPECT_EQ(p.nodeCount(s), 6u);
}

TEST(Package, NormalizationMakesLargestWeightOne) {
  Package p{1};
  const vEdge e = p.makeVectorNode(
      0, {vEdge{vNode::terminal(), p.canonical({0.6, 0.0})},
          vEdge{vNode::terminal(), p.canonical({0.8, 0.0})}});
  // Larger magnitude is the second child -> its normalized weight must be 1.
  EXPECT_TRUE(weightEqual(e.n->e[1].w, Complex{1.0}));
  EXPECT_NEAR(std::abs(e.w - Complex{0.8}), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(e.n->e[0].w - Complex{0.75}), 0.0, 1e-10);
}

TEST(Package, NormalizationLeftmostWinsOnTies) {
  Package p{1};
  const vEdge e = p.makeVectorNode(
      0, {vEdge{vNode::terminal(), p.canonical({SQRT2_INV, 0.0})},
          vEdge{vNode::terminal(), p.canonical({-SQRT2_INV, 0.0})}});
  EXPECT_TRUE(weightEqual(e.n->e[0].w, Complex{1.0}));
  EXPECT_NEAR(std::abs(e.n->e[1].w + Complex{1.0}), 0.0, 1e-10);
}

TEST(Package, AllZeroChildrenCollapseToZeroEdge) {
  Package p{2};
  const vEdge e = p.makeVectorNode(0, {vEdge::zero(), vEdge::zero()});
  EXPECT_TRUE(e.isZero());
  EXPECT_TRUE(e.isTerminal());
}

TEST(Package, IdenticalContentsShareOneNode) {
  Package p{2};
  auto mk = [&] {
    const vEdge lo = p.makeVectorNode(
        0, {vEdge::one(), vEdge{vNode::terminal(), p.canonical({0.5, 0.5})}});
    return p.makeVectorNode(1, {lo, lo});
  };
  const vEdge a = mk();
  const vEdge b = mk();
  EXPECT_EQ(a.n, b.n);
}

TEST(Package, JitteredWeightsStillShare) {
  // Weights differing by less than the tolerance must produce the same node.
  Package p{1, 1e-10};
  const vEdge a = p.makeVectorNode(
      0, {vEdge{vNode::terminal(), p.canonical({0.6, 0.0})},
          vEdge{vNode::terminal(), p.canonical({0.8, 0.0})}});
  const vEdge b = p.makeVectorNode(
      0, {vEdge{vNode::terminal(), p.canonical({0.6 + 1e-12, 0.0})},
          vEdge{vNode::terminal(), p.canonical({0.8 - 1e-12, 0.0})}});
  EXPECT_EQ(a.n, b.n);
}

TEST(Package, GarbageCollectionReclaimsUnreferencedNodes) {
  Package p{8};
  const vEdge keep = p.makeBasisState(17);
  p.incRef(keep);
  // Create garbage: many basis states never referenced.
  for (Index i = 0; i < 200; ++i) {
    (void)p.makeBasisState(i);
  }
  const std::size_t before = p.stats().vNodesLive;
  p.garbageCollect(true);
  const std::size_t after = p.stats().vNodesLive;
  EXPECT_LT(after, before);
  EXPECT_GE(after, 8u);  // the referenced state (8 nodes) must survive
  // And the kept state must still answer amplitude queries correctly.
  EXPECT_NEAR(std::abs(p.getAmplitude(keep, 17) - Complex{1.0}), 0.0, 1e-12);
}

TEST(Package, GcKeepsSharedInteriorNodes) {
  Package p{4};
  vEdge state = p.makeZeroState();
  p.incRef(state);
  const mEdge h = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 0);
  const vEdge next = p.multiply(h, state);
  p.incRef(next);
  p.decRef(state);
  p.garbageCollect(true);
  // next must be fully intact.
  EXPECT_NEAR(std::abs(p.getAmplitude(next, 0) - Complex{SQRT2_INV}), 0.0,
              1e-10);
  EXPECT_NEAR(std::abs(p.getAmplitude(next, 1) - Complex{SQRT2_INV}), 0.0,
              1e-10);
}

TEST(Package, StatsReportLiveCounts) {
  Package p{5};
  const vEdge s = p.makeBasisState(7);
  p.incRef(s);
  const PackageStats st = p.stats();
  EXPECT_GE(st.vNodesLive, 5u);
  EXPECT_GT(st.memoryBytes, 0u);
  EXPECT_GE(st.peakVNodes, st.vNodesLive);
}

TEST(Package, IdentityLeavesStatesUntouched) {
  Package p{4};
  const mEdge id = p.makeIdent(3);
  const vEdge s = p.makeBasisState(9);
  const vEdge r = p.multiply(id, s);
  EXPECT_EQ(r.n, s.n);
  EXPECT_NEAR(std::abs(r.w - s.w), 0.0, 1e-12);
}

TEST(Package, IdentityIsCached) {
  Package p{4};
  const mEdge a = p.makeIdent(3);
  const mEdge b = p.makeIdent(3);
  EXPECT_EQ(a.n, b.n);
  p.garbageCollect(true);  // pinned: must survive GC
  const mEdge c = p.makeIdent(3);
  EXPECT_EQ(a.n, c.n);
}

TEST(Package, IdentityNodeCountIsLinear) {
  Package p{10};
  const mEdge id = p.makeIdent(9);
  EXPECT_EQ(p.nodeCount(id), 10u);
}

}  // namespace
}  // namespace fdd::dd
