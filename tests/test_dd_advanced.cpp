// Advanced DD operations: kronecker products, dense-matrix import, state
// approximation, FlatDD sampling, and the per-gate CSV trace.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "dd/package.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "helpers.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd {
namespace {

TEST(Kronecker, ProductStateComposition) {
  // |psi> = |top> (x) |bottom> over 2 + 3 qubits.
  const Qubit n = 5;
  const Qubit bottomQ = 3;
  dd::Package p{n};
  const auto topAmps = test::randomState(2, 101);
  const auto botAmps = test::randomState(bottomQ, 102);

  // Build both parts as DDs over the package's *low* qubits (the kronecker
  // contract), amplitude by amplitude.
  auto buildLowQubitState = [&](std::span<const Complex> amps,
                                Qubit width) -> dd::vEdge {
    auto rec = [&](auto&& self, std::span<const Complex> a,
                   Qubit level) -> dd::vEdge {
      if (level < 0) {
        const Complex w = p.canonical(a[0]);
        return w == Complex{} ? dd::vEdge::zero()
                              : dd::vEdge{dd::vNode::terminal(), w};
      }
      const std::size_t half = a.size() / 2;
      return p.makeVectorNode(level, {self(self, a.first(half), level - 1),
                                      self(self, a.last(half), level - 1)});
    };
    return rec(rec, amps, width - 1);
  };
  const dd::vEdge top = buildLowQubitState(topAmps, 2);
  const dd::vEdge bottom = buildLowQubitState(botAmps, bottomQ);

  const dd::vEdge composed = p.kronecker(top, bottom, bottomQ);
  const auto dense = p.toArray(composed);
  for (Index t = 0; t < 4; ++t) {
    for (Index b = 0; b < (Index{1} << bottomQ); ++b) {
      const Index idx = (t << bottomQ) | b;
      EXPECT_NEAR(std::abs(dense[idx] - topAmps[t] * botAmps[b]), 0.0, 1e-10)
          << idx;
    }
  }
}

TEST(Kronecker, MatrixProductActsIndependently) {
  // (H on top qubit) (x) (X on bottom qubit) over 2 qubits.
  const Qubit n = 2;
  dd::Package p{n};
  // Build 1-qubit gate DDs at level 0.
  auto oneQubitDD = [&](qc::GateKind kind) {
    const auto u = qc::gateMatrix(kind, {});
    std::array<dd::mEdge, 4> leaves;
    for (int i = 0; i < 4; ++i) {
      const Complex w = p.canonical(u[static_cast<std::size_t>(i)]);
      leaves[static_cast<std::size_t>(i)] =
          w == Complex{} ? dd::mEdge::zero()
                         : dd::mEdge{dd::mNode::terminal(), w};
    }
    return p.makeMatrixNode(0, leaves);
  };
  const dd::mEdge kron =
      p.kronecker(oneQubitDD(qc::GateKind::H), oneQubitDD(qc::GateKind::X), 1);
  // Compare against gate application: H(q1) X(q0).
  const dd::mEdge ref = p.multiply(
      p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 1),
      p.makeGateDD(qc::gateMatrix(qc::GateKind::X, {}), 0));
  EXPECT_EQ(kron.n, ref.n);
  EXPECT_LT(std::abs(kron.w - ref.w), 1e-10);
}

TEST(Kronecker, Validates) {
  dd::Package p{3};
  EXPECT_THROW((void)p.kronecker(p.makeZeroState(), p.makeZeroState(), 3),
               std::out_of_range);
}

TEST(FromDenseMatrix, RoundTripsGateMatrices) {
  const Qubit n = 3;
  dd::Package p{n};
  for (const auto& op :
       {qc::Operation{qc::GateKind::H, 1, {}, {}},
        qc::Operation{qc::GateKind::X, 0, {2}, {}},
        qc::Operation{qc::GateKind::U3, 2, {}, {0.2, 0.4, 0.6}}}) {
    const auto dense = test::denseOperator(op, n);
    std::vector<Complex> flat;
    flat.reserve(64);
    for (const auto& row : dense) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    const dd::mEdge imported = p.fromDenseMatrix(flat);
    const dd::mEdge built = p.makeGateDD(op);
    EXPECT_EQ(imported.n, built.n) << op.toString();
    EXPECT_LT(std::abs(imported.w - built.w), 1e-10);
  }
}

TEST(FromDenseMatrix, Validates) {
  dd::Package p{2};
  const std::vector<Complex> bad(8);  // not 4^k
  EXPECT_THROW((void)p.fromDenseMatrix(bad), std::invalid_argument);
}

TEST(Approximate, ZeroBudgetIsIdentityTransform) {
  dd::Package p{6};
  const dd::vEdge s = p.fromArray(test::randomState(6, 103));
  const dd::vEdge a = p.approximate(s, 0.0);
  EXPECT_EQ(a.n, s.n);
}

TEST(Approximate, StaysNormalizedAndClose) {
  const Qubit n = 8;
  dd::Package p{n};
  const auto dense = test::randomState(n, 104);
  const dd::vEdge s = p.fromArray(dense);
  for (const fp budget : {0.01, 0.05, 0.2}) {
    const dd::vEdge a = p.approximate(s, budget);
    const Complex norm = p.innerProduct(a, a);
    EXPECT_NEAR(norm.real(), 1.0, 1e-9) << budget;
    // Fidelity must not drop below 1 - budget (up to numerical noise).
    const Complex overlap = p.innerProduct(s, a);
    EXPECT_GT(std::norm(overlap), 1.0 - budget - 1e-6) << budget;
  }
}

TEST(Approximate, ShrinksIrregularDDs) {
  const Qubit n = 10;
  dd::Package p{n};
  // A state with many tiny amplitudes: dominant basis + noise.
  AlignedVector<Complex> v(Index{1} << n);
  Xoshiro256 rng{105};
  for (auto& amp : v) {
    amp = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)} * 1e-3;
  }
  v[3] = Complex{1.0};
  fp norm = 0;
  for (const auto& amp : v) {
    norm += norm2(amp);
  }
  for (auto& amp : v) {
    amp /= std::sqrt(norm);
  }
  const dd::vEdge s = p.fromArray(v);
  const std::size_t before = p.nodeCount(s);
  const dd::vEdge a = p.approximate(s, 0.05);
  const std::size_t after = p.nodeCount(a);
  EXPECT_LT(after, before);
  EXPECT_GT(std::norm(p.innerProduct(s, a)), 0.9);
}

TEST(Approximate, Validates) {
  dd::Package p{3};
  EXPECT_THROW((void)p.approximate(p.makeZeroState(), -0.1),
               std::invalid_argument);
}

TEST(FlatDDSample, WorksInBothPhases) {
  // DD phase (GHZ never converts).
  {
    flat::FlatDDSimulator sim{8, {.threads = 2}};
    sim.simulate(circuits::ghz(8));
    Xoshiro256 rng{106};
    for (const Index s : sim.sample(200, rng)) {
      EXPECT_TRUE(s == 0 || s == 255) << s;
    }
  }
  // Flat phase (forced conversion).
  {
    flat::FlatDDOptions opt;
    opt.threads = 2;
    opt.forceConversionAtGate = 2;
    flat::FlatDDSimulator sim{8, opt};
    sim.simulate(circuits::ghz(8));
    Xoshiro256 rng{107};
    std::size_t zeros = 0;
    const auto samples = sim.sample(400, rng);
    for (const Index s : samples) {
      ASSERT_TRUE(s == 0 || s == 255) << s;
      zeros += (s == 0);
    }
    EXPECT_GT(zeros, 120u);
    EXPECT_LT(zeros, 280u);
  }
}

TEST(FlatDDSample, MatchesDistribution) {
  const auto circuit = circuits::vqe(6, 2, 108);
  flat::FlatDDSimulator sim{6, {.threads = 2}};
  sim.simulate(circuit);
  Xoshiro256 rng{109};
  const std::size_t shots = 30000;
  const auto samples = sim.sample(shots, rng);
  std::vector<std::size_t> counts(64, 0);
  for (const Index s : samples) {
    ++counts[s];
  }
  const auto state = sim.stateVector();
  for (Index i = 0; i < 64; ++i) {
    EXPECT_NEAR(static_cast<fp>(counts[i]) / shots, norm2(state[i]), 0.02);
  }
}

TEST(PerGateCsv, ContainsHeaderAndRows) {
  flat::FlatDDOptions opt;
  opt.threads = 2;
  opt.recordPerGate = true;
  flat::FlatDDSimulator sim{6, opt};
  sim.simulate(circuits::supremacy(6, 4, 110));
  const std::string csv = sim.stats().perGateCsv();
  EXPECT_NE(csv.find("gate,phase,seconds,dd_size"), std::string::npos);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, 1 + sim.stats().perGate.size());
}

}  // namespace
}  // namespace fdd
