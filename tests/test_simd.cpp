// SIMD kernels vs scalar references, across sizes that exercise both the
// vector body and the scalar tail, including unaligned counts.

#include <gtest/gtest.h>

#include <vector>

#include "common/prng.hpp"
#include "simd/kernels.hpp"

namespace fdd::simd {
namespace {

std::vector<Complex> randomVec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng{seed};
  std::vector<Complex> v(n);
  for (auto& z : v) {
    z = Complex{rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  return v;
}

class SimdSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimdSizes, ScaleMatchesScalar) {
  const std::size_t n = GetParam();
  const auto in = randomVec(n, 1);
  const Complex s{0.3, -0.7};
  std::vector<Complex> out(n);
  scale(out.data(), in.data(), s, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(out[i] - s * in[i]), 0.0, 1e-14) << "i=" << i;
  }
}

TEST_P(SimdSizes, ScaleInPlace) {
  const std::size_t n = GetParam();
  auto v = randomVec(n, 2);
  const auto ref = v;
  const Complex s{-1.25, 0.5};
  scale(v.data(), v.data(), s, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(v[i] - s * ref[i]), 0.0, 1e-14);
  }
}

TEST_P(SimdSizes, ScaleAccumulateMatchesScalar) {
  const std::size_t n = GetParam();
  const auto in = randomVec(n, 3);
  auto out = randomVec(n, 4);
  const auto base = out;
  const Complex s{0.9, 0.1};
  scaleAccumulate(out.data(), in.data(), s, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(out[i] - (base[i] + s * in[i])), 0.0, 1e-14);
  }
}

TEST_P(SimdSizes, AccumulateMatchesScalar) {
  const std::size_t n = GetParam();
  const auto in = randomVec(n, 5);
  auto out = randomVec(n, 6);
  const auto base = out;
  accumulate(out.data(), in.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(out[i] - (base[i] + in[i])), 0.0, 1e-14);
  }
}

TEST_P(SimdSizes, NormSquaredMatchesScalar) {
  const std::size_t n = GetParam();
  const auto v = randomVec(n, 7);
  fp ref = 0;
  for (const auto& z : v) {
    ref += norm2(z);
  }
  EXPECT_NEAR(normSquared(v.data(), n), ref, 1e-11 * (1 + ref));
}

TEST_P(SimdSizes, ZeroFill) {
  const std::size_t n = GetParam();
  auto v = randomVec(n, 8);
  zeroFill(v.data(), n);
  for (const auto& z : v) {
    EXPECT_EQ(z, Complex{});
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimdSizes,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 63,
                                           64, 100, 1023, 1024));

TEST(Simd, LanesConsistentWithBuildFlag) {
  EXPECT_EQ(lanes(), lanesOf(activeTier()));
  switch (activeTier()) {
    case DispatchTier::Avx512:
      EXPECT_EQ(lanes(), 8u);
      break;
    case DispatchTier::Avx2:
      EXPECT_EQ(lanes(), 4u);
      EXPECT_TRUE(avx2Enabled());
      break;
    case DispatchTier::Scalar:
      EXPECT_EQ(lanes(), 1u);
      break;
  }
}

TEST(Simd, ScaleByZeroGivesZero) {
  const auto in = randomVec(33, 9);
  std::vector<Complex> out(33, Complex{1, 1});
  scale(out.data(), in.data(), Complex{}, 33);
  for (const auto& z : out) {
    EXPECT_EQ(z, Complex{});
  }
}

TEST(Simd, ScaleByOneIsIdentity) {
  const auto in = randomVec(17, 10);
  std::vector<Complex> out(17);
  scale(out.data(), in.data(), Complex{1.0}, 17);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], in[i]);
  }
}

TEST(Simd, PureImaginaryScaleRotates) {
  // i * (a + bi) = -b + ai. Catches sign errors in the addsub trick.
  std::vector<Complex> in{{1, 2}, {3, -4}, {-5, 6}};
  std::vector<Complex> out(3);
  scale(out.data(), in.data(), Complex{0, 1}, 3);
  EXPECT_NEAR(std::abs(out[0] - Complex{-2, 1}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(out[1] - Complex{4, 3}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(out[2] - Complex{-6, -5}), 0.0, 1e-15);
}

}  // namespace
}  // namespace fdd::simd
