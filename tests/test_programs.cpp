// The QASM programs shipped in examples/programs/ must stay parseable and
// semantically correct.

#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "qasm/parser.hpp"
#include "sim/array_simulator.hpp"

#ifndef FLATDD_SOURCE_DIR
#define FLATDD_SOURCE_DIR "."
#endif

namespace fdd {
namespace {

std::string programPath(const char* name) {
  return std::string{FLATDD_SOURCE_DIR} + "/examples/programs/" + name;
}

TEST(Programs, BellPair) {
  const auto c = qasm::parseFile(programPath("bell.qasm"));
  EXPECT_EQ(c.numQubits(), 2);
  sim::ArraySimulator s{2};
  s.simulate(c);
  EXPECT_NEAR(norm2(s.amplitude(0)), 0.5, 1e-10);
  EXPECT_NEAR(norm2(s.amplitude(3)), 0.5, 1e-10);
}

TEST(Programs, TeleportationDeliversTheMessage) {
  const auto c = qasm::parseFile(programPath("teleport.qasm"));
  sim::ArraySimulator s{3};
  s.simulate(c);
  // The message ry(0.7)|0> must land on qubit 2: P(q2 = 1) = sin^2(0.35).
  fp p1 = 0;
  for (Index i = 0; i < 8; ++i) {
    if (testBit(i, 2)) {
      p1 += norm2(s.amplitude(i));
    }
  }
  EXPECT_NEAR(p1, std::sin(0.35) * std::sin(0.35), 1e-10);
}

TEST(Programs, GroverFindsTheMarkedState) {
  const auto c = qasm::parseFile(programPath("grover4.qasm"));
  sim::ArraySimulator s{4};
  s.simulate(c);
  EXPECT_GT(norm2(s.amplitude(15)), 0.9);
}

}  // namespace
}  // namespace fdd
