// Service core: job queue scheduling (priority across sessions, FIFO within
// one, cancellation, deadlines), session semantics (seeded sampling,
// checkpoint/restore, incremental apply), the shared plan cache's
// cross-package contract, concurrent sessions vs sequential replay, the
// line-delimited JSON protocol, and the observability surface (request-id
// propagation, timing fields, queue gauges, watchdog, slow log, admin
// listener).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "circuits/generators.hpp"
#include "common/json.hpp"
#include "common/prng.hpp"
#include "dd/package.hpp"
#include "engine/backend_factory.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "flatdd/plan_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "service/admin.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/session_manager.hpp"

namespace fdd::svc {
namespace {

using namespace std::chrono_literals;

JobOptions withPriority(int priority) {
  JobOptions opts;
  opts.priority = priority;
  return opts;
}

JobOptions withDeadline(par::CancelToken::Clock::time_point deadline) {
  JobOptions opts;
  opts.deadline = deadline;
  return opts;
}

ServiceConfig withWorkers(unsigned workers) {
  ServiceConfig cfg;
  cfg.workers = workers;
  return cfg;
}

/// Occupies a queue worker until release() — used to stage scheduling
/// scenarios deterministically with a single-worker queue.
class Blocker {
 public:
  explicit Blocker(JobQueue& queue) {
    handle_ = queue.submit([this](const par::CancelToken&) {
      started_.store(true);
      while (!release_.load()) {
        std::this_thread::sleep_for(1ms);
      }
    });
    while (!started_.load()) {
      std::this_thread::sleep_for(1ms);
    }
  }
  void release() { release_.store(true); }
  void join() {
    release();
    handle_->wait();
  }

 private:
  std::atomic<bool> started_{false};
  std::atomic<bool> release_{false};
  JobHandle handle_;
};

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

TEST(JobQueue, RunsJobsToDone) {
  JobQueue queue{2};
  std::atomic<int> ran{0};
  std::vector<JobHandle> handles;
  for (int i = 0; i < 16; ++i) {
    handles.push_back(
        queue.submit([&](const par::CancelToken&) { ++ran; }));
  }
  for (const JobHandle& h : handles) {
    h->wait();
    EXPECT_EQ(h->state(), JobState::Done);
    EXPECT_GT(h->latencySeconds(), 0.0);
  }
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(JobQueue, PriorityOrdersRunnableJobs) {
  JobQueue queue{1};
  Blocker blocker{queue};
  std::mutex mutex;
  std::vector<int> order;
  const auto record = [&](int tag) {
    return [&, tag](const par::CancelToken&) {
      const std::lock_guard lock{mutex};
      order.push_back(tag);
    };
  };
  const JobHandle low = queue.submit(record(0), withPriority(0));
  const JobHandle mid = queue.submit(record(1), withPriority(3));
  const JobHandle high = queue.submit(record(2), withPriority(9));
  EXPECT_EQ(queue.depth(), 3u);
  blocker.join();
  low->wait();
  mid->wait();
  high->wait();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(JobQueue, FifoWithinOrderKeyBeatsPriority) {
  JobQueue queue{1};
  Blocker blocker{queue};
  std::mutex mutex;
  std::vector<int> order;
  const auto record = [&](int tag) {
    return [&, tag](const par::CancelToken&) {
      const std::lock_guard lock{mutex};
      order.push_back(tag);
    };
  };
  // Same key: the later, higher-priority job must still run second.
  const JobHandle first =
      queue.submit(record(0), withPriority(0), /*orderKey=*/7);
  const JobHandle second =
      queue.submit(record(1), withPriority(100), /*orderKey=*/7);
  blocker.join();
  first->wait();
  second->wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(JobQueue, KeyedJobsInterleaveAcrossKeysUnderPriority) {
  JobQueue queue{1};
  Blocker blocker{queue};
  std::mutex mutex;
  std::vector<int> order;
  const auto record = [&](int tag) {
    return [&, tag](const par::CancelToken&) {
      const std::lock_guard lock{mutex};
      order.push_back(tag);
    };
  };
  std::vector<JobHandle> handles;
  handles.push_back(
      queue.submit(record(10), withPriority(1), 1));  // key 1 #0
  handles.push_back(
      queue.submit(record(11), withPriority(1), 1));  // key 1 #1
  handles.push_back(
      queue.submit(record(20), withPriority(5), 2));  // key 2 #0
  blocker.join();
  for (const JobHandle& h : handles) {
    h->wait();
  }
  // Key 2's head outranks key 1's head; key 1 stays internally ordered.
  EXPECT_EQ(order, (std::vector<int>{20, 10, 11}));
}

TEST(JobQueue, CancelQueuedJobNeverRuns) {
  JobQueue queue{1};
  Blocker blocker{queue};
  std::atomic<bool> ran{false};
  const JobHandle job =
      queue.submit([&](const par::CancelToken&) { ran.store(true); });
  EXPECT_TRUE(job->cancel());
  blocker.join();
  job->wait();
  EXPECT_EQ(job->state(), JobState::Cancelled);
  EXPECT_FALSE(ran.load());
}

TEST(JobQueue, CancelRunningJobCooperatively) {
  JobQueue queue{1};
  std::atomic<bool> inBody{false};
  const JobHandle job = queue.submit([&](const par::CancelToken& token) {
    inBody.store(true);
    while (!token.cancelled()) {
      std::this_thread::sleep_for(1ms);
    }
    throw CancelledError{};
  });
  while (!inBody.load()) {
    std::this_thread::sleep_for(1ms);
  }
  job->cancel();
  job->wait();
  EXPECT_EQ(job->state(), JobState::Cancelled);
}

TEST(JobQueue, DeadlineExpiresQueuedJob) {
  JobQueue queue{1};
  Blocker blocker{queue};
  std::atomic<bool> ran{false};
  const JobHandle job = queue.submit(
      [&](const par::CancelToken&) { ran.store(true); },
      withDeadline(par::CancelToken::Clock::now() + 5ms));
  std::this_thread::sleep_for(20ms);
  blocker.join();
  job->wait();
  EXPECT_EQ(job->state(), JobState::Expired);
  EXPECT_FALSE(ran.load());
}

TEST(JobQueue, DeadlineExpiresRunningJob) {
  JobQueue queue{1};
  const JobHandle job = queue.submit(
      [&](const par::CancelToken& token) {
        while (!token.cancelled()) {
          std::this_thread::sleep_for(1ms);
        }
        throw CancelledError{};
      },
      withDeadline(par::CancelToken::Clock::now() + 20ms));
  job->wait();
  EXPECT_EQ(job->state(), JobState::Expired);
}

TEST(JobQueue, FailedJobCarriesError) {
  JobQueue queue{1};
  const JobHandle job = queue.submit([](const par::CancelToken&) {
    throw std::runtime_error("boom");
  });
  job->wait();
  EXPECT_EQ(job->state(), JobState::Failed);
  EXPECT_EQ(job->error(), "boom");
}

TEST(JobQueue, ShutdownCancelsQueuedJobs) {
  JobQueue queue{1};
  Blocker blocker{queue};
  const JobHandle queued = queue.submit([](const par::CancelToken&) {});
  const JobHandle stashed =
      queue.submit([](const par::CancelToken&) {}, {}, /*orderKey=*/3);
  const JobHandle stashed2 =
      queue.submit([](const par::CancelToken&) {}, {}, /*orderKey=*/3);
  blocker.release();
  queue.shutdown();
  EXPECT_TRUE(isTerminal(queued->state()));
  EXPECT_TRUE(isTerminal(stashed->state()));
  EXPECT_TRUE(isTerminal(stashed2->state()));
  EXPECT_THROW(queue.submit([](const par::CancelToken&) {}),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// BackendFactory thread safety
// ---------------------------------------------------------------------------

TEST(BackendFactoryConcurrency, ConcurrentRegisterAndCreate) {
  auto& factory = engine::BackendFactory::instance();
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      try {
        for (int i = 0; i < 25; ++i) {
          factory.registerBackend(
              "svc-test-" + std::to_string(t) + "-" + std::to_string(i),
              "test backend",
              [](Qubit n, const engine::EngineOptions& o) {
                return engine::BackendFactory::instance().create("dd", n, o);
              });
          const auto backend = factory.create("dd", 3);
          if (backend == nullptr || factory.registeredNames().empty() ||
              !factory.contains("flatdd")) {
            failed.store(true);
          }
        }
      } catch (...) {
        failed.store(true);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(factory.contains("svc-test-0-0"));
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

SessionConfig makeConfig(Qubit qubits, std::uint64_t seed,
                         const std::string& backend = "flatdd") {
  SessionConfig cfg;
  cfg.backend = backend;
  cfg.qubits = qubits;
  cfg.seed = seed;
  return cfg;
}

TEST(SvcSession, SameSeedSameGatesSameSamples) {
  const qc::Circuit circuit = circuits::randomUniversal(6, 80, 11);
  Session a{1, makeConfig(6, 42), nullptr};
  Session b{2, makeConfig(6, 42), nullptr};
  a.apply(circuit);
  b.apply(circuit);
  EXPECT_EQ(a.sample(64), b.sample(64));
  // Further requests continue the identical stream.
  EXPECT_EQ(a.sample(64), b.sample(64));

  Session c{3, makeConfig(6, 43), nullptr};
  c.apply(circuit);
  EXPECT_NE(a.sample(256), c.sample(256));  // different seed, same state
}

TEST(SvcSession, SeedLandsInReport) {
  Session s{1, makeConfig(4, 0xdeadbeefcafef00dULL), nullptr};
  const engine::RunReport report = s.report();
  EXPECT_EQ(report.seed, 0xdeadbeefcafef00dULL);
  // And survives the JSON round trip (decimal-string serialization).
  const engine::RunReport back =
      engine::RunReport::fromJson(report.toJson());
  EXPECT_EQ(back.seed, 0xdeadbeefcafef00dULL);
}

TEST(SvcSession, CheckpointRestoreResumesExactTrajectory) {
  const qc::Circuit first = circuits::randomUniversal(6, 60, 21);
  const qc::Circuit second = circuits::randomUniversal(6, 60, 22);
  Session s{1, makeConfig(6, 7), nullptr};
  s.apply(first);
  const std::uint64_t cp = s.checkpoint();
  EXPECT_EQ(s.gatesApplied(), 60u);

  s.apply(second);
  EXPECT_EQ(s.gatesApplied(), 120u);
  const std::vector<Index> run1 = s.sample(128);
  const Complex amp1 = s.amplitude(5);

  s.restore(cp);
  EXPECT_EQ(s.gatesApplied(), 60u);
  s.apply(second);
  const std::vector<Index> run2 = s.sample(128);
  EXPECT_EQ(run1, run2);  // state AND rng stream were rewound
  EXPECT_EQ(s.amplitude(5), amp1);

  // Restoring twice is allowed (checkpoints are not consumed).
  s.restore(cp);
  EXPECT_EQ(s.gatesApplied(), 60u);
  EXPECT_THROW(s.restore(999), std::invalid_argument);
}

TEST(SvcSession, IncrementalApplyMatchesOneShot) {
  const qc::Circuit circuit = circuits::randomUniversal(7, 180, 31);
  Session incremental{1, makeConfig(7, 5), nullptr};
  // Apply in 3 uneven chunks.
  const auto& ops = circuit.operations();
  const std::size_t cuts[] = {50, 130, ops.size()};
  std::size_t begin = 0;
  for (const std::size_t end : cuts) {
    qc::Circuit chunk{7, "chunk"};
    for (std::size_t i = begin; i < end; ++i) {
      chunk.append(ops[i]);
    }
    incremental.apply(chunk);
    begin = end;
  }

  Session oneShot{2, makeConfig(7, 5), nullptr};
  oneShot.apply(circuit);
  for (const Index i : {Index{0}, Index{1}, Index{77}, Index{127}}) {
    const Complex a = incremental.amplitude(i);
    const Complex b = oneShot.amplitude(i);
    EXPECT_NEAR(a.real(), b.real(), 1e-9) << i;
    EXPECT_NEAR(a.imag(), b.imag(), 1e-9) << i;
  }
  EXPECT_EQ(incremental.sample(64), oneShot.sample(64));
}

TEST(SvcSession, ApplyChecksQubitCount) {
  Session s{1, makeConfig(4, 0), nullptr};
  EXPECT_THROW(s.apply(qc::Circuit{5, "wrong"}), std::invalid_argument);
}

TEST(SvcSession, CancelledApplyThrows) {
  Session s{1, makeConfig(5, 0), nullptr};
  par::CancelSource source;
  source.requestCancel();
  const qc::Circuit circuit = circuits::randomUniversal(5, 10, 3);
  EXPECT_THROW(s.apply(circuit, source.token()), CancelledError);
}

// ---------------------------------------------------------------------------
// Shared PlanCache
// ---------------------------------------------------------------------------

TEST(SharedPlanCache, ClearPackageDropsOnlyThatPackage) {
  const Qubit n = 5;
  dd::Package p1{n};
  dd::Package p2{n};
  flat::PlanCache cache{8};
  const dd::mEdge g1 = p1.makeGateDD({qc::GateKind::RZ, 0, {}, {0.3}});
  const dd::mEdge g2 = p2.makeGateDD({qc::GateKind::RZ, 0, {}, {0.3}});
  p1.incRef(g1);
  p2.incRef(g2);
  (void)cache.getShared(p1, g1, n, 1, flat::PlanMode::Row);
  (void)cache.getShared(p2, g2, n, 1, flat::PlanMode::Row);
  EXPECT_EQ(cache.size(), 2u);  // keys embed the package: no false sharing

  cache.clearPackage(p1);
  EXPECT_EQ(cache.size(), 1u);
  bool hit = false;
  (void)cache.getShared(p2, g2, n, 1, flat::PlanMode::Row, &hit);
  EXPECT_TRUE(hit);  // p2's entry untouched
  cache.clearPackage(p2);
  p1.decRef(g1);
  p2.decRef(g2);
}

TEST(SharedPlanCache, GenerationGuardRejectsStaleHits) {
  const Qubit n = 5;
  dd::Package p{n};
  flat::PlanCache cache{8};
  const dd::mEdge g = p.makeGateDD({qc::GateKind::RY, 1, {}, {0.4}});
  p.incRef(g);
  (void)cache.getShared(p, g, n, 1, flat::PlanMode::Row);
  EXPECT_EQ(cache.stats().staleHits, 0u);

  // Recycle unrelated matrix nodes: the generation advances, so the cached
  // entry — though its pinned root is intact — must be conservatively
  // recompiled rather than replayed against a changed arena.
  (void)p.makeGateDD({qc::GateKind::U3, 3, {}, {0.1, 0.2, 0.3}});
  p.garbageCollect(true);

  bool hit = true;
  const auto plan = cache.getShared(p, g, n, 1, flat::PlanMode::Row, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().staleHits, 1u);
  EXPECT_EQ(cache.stats().compiles, 2u);
  EXPECT_TRUE(plan->validFor(p));
  cache.clearPackage(p);
  p.decRef(g);
}

TEST(SharedPlanCache, HeldPlanSurvivesEviction) {
  const Qubit n = 4;
  dd::Package p{n};
  flat::PlanCache cache{1};
  const dd::mEdge a = p.makeGateDD({qc::GateKind::RZ, 0, {}, {0.1}});
  const dd::mEdge b = p.makeGateDD({qc::GateKind::RZ, 1, {}, {0.2}});
  p.incRef(a);
  p.incRef(b);
  const auto planA = cache.getShared(p, a, n, 1, flat::PlanMode::Row);
  const auto planB = cache.getShared(p, b, n, 1, flat::PlanMode::Row);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 1u);
  // planA was evicted from the cache but our shared_ptr keeps it alive and
  // replayable (plans are self-contained op streams).
  AlignedVector<Complex> v(Index{1} << n, Complex{0});
  v[0] = Complex{1, 0};
  AlignedVector<Complex> w(v.size());
  replayPlan(*planA, v, w);
  EXPECT_NEAR(std::abs(w[0]), 1.0, 1e-12);
  cache.clearPackage(p);
  p.decRef(a);
  p.decRef(b);
}

TEST(SharedPlanCache, CrossPackageEvictionParksThePin) {
  const Qubit n = 4;
  dd::Package p1{n};
  dd::Package p2{n};
  flat::PlanCache cache{1};
  const dd::mEdge g1 = p1.makeGateDD({qc::GateKind::RZ, 0, {}, {0.5}});
  const dd::mEdge g2 = p2.makeGateDD({qc::GateKind::RZ, 0, {}, {0.5}});
  p1.incRef(g1);
  p2.incRef(g2);
  (void)cache.getShared(p1, g1, n, 1, flat::PlanMode::Row);
  // p2's miss evicts p1's entry; the unpin of p1's root must be deferred
  // (parked), not performed on p2's calling thread.
  (void)cache.getShared(p2, g2, n, 1, flat::PlanMode::Row);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // p1's next call drains its parked pin; afterwards the root is collectable
  // once the external ref is dropped. No crash/leak is the contract here.
  (void)cache.getShared(p1, g1, n, 1, flat::PlanMode::Row);
  cache.clearPackage(p1);
  cache.clearPackage(p2);
  p1.decRef(g1);
  p2.decRef(g2);
  p1.garbageCollect(true);
  p2.garbageCollect(true);
}

TEST(SharedPlanCache, TwoSimulatorsShareOneCache) {
  flat::PlanCache cache{64};
  flat::FlatDDOptions options;
  options.threads = 1;
  options.forceConversionAtGate = 0;  // straight to the DMAV phase
  options.sharedPlanCache = &cache;
  const qc::Circuit circuit = circuits::randomUniversal(5, 60, 17);

  auto sim1 = std::make_unique<flat::FlatDDSimulator>(5, options);
  auto sim2 = std::make_unique<flat::FlatDDSimulator>(5, options);
  sim1->simulate(circuit);
  sim2->simulate(circuit);
  EXPECT_GT(cache.stats().compiles, 0u);
  EXPECT_GT(cache.size(), 0u);
  // Identical circuits still compile per package (keys embed the package) —
  // both simulators hit only within their own session stream.
  EXPECT_GT(sim1->stats().planCacheHits, 0u);
  EXPECT_GT(sim2->stats().planCacheHits, 0u);

  const Complex before = sim2->amplitude(3);
  sim1.reset();  // destructor must clear only sim1's entries
  EXPECT_GT(cache.size(), 0u);
  EXPECT_EQ(sim2->amplitude(3), before);
  sim2->simulate(circuits::randomUniversal(5, 20, 18));  // still usable
  sim2.reset();
  EXPECT_EQ(cache.size(), 0u);  // everything unpinned and dropped
}

// ---------------------------------------------------------------------------
// SessionManager: concurrent sessions vs sequential replay
// ---------------------------------------------------------------------------

TEST(SvcSessionManager, OpenFindClose) {
  SessionManager manager{withWorkers(2)};
  const auto s1 = manager.open(makeConfig(4, 1));
  const auto s2 = manager.open(makeConfig(5, 2));
  EXPECT_EQ(manager.sessionCount(), 2u);
  EXPECT_NE(s1->id(), s2->id());
  EXPECT_EQ(manager.find(s1->id()), s1);
  EXPECT_TRUE(manager.close(s1->id()));
  EXPECT_FALSE(manager.close(s1->id()));
  EXPECT_EQ(manager.find(s1->id()), nullptr);
  EXPECT_EQ(manager.sessionCount(), 1u);
}

TEST(SvcSessionManager, OpenClampsDdThreadsToPoolBudget) {
  SessionManager manager{withWorkers(2)};
  SessionConfig cfg = makeConfig(4, 7);
  cfg.engine.ddThreads = 100'000;  // far beyond any real pool
  const auto session = manager.open(std::move(cfg));
  const unsigned poolSize = par::globalPool().size();
  EXPECT_EQ(session->config().engine.ddThreads, poolSize);
  // A request within budget passes through untouched.
  SessionConfig modest = makeConfig(4, 8);
  modest.engine.ddThreads = 2;
  EXPECT_EQ(manager.open(std::move(modest))->config().engine.ddThreads, 2u);
}

TEST(SvcSessionManager, ConcurrentSessionsMatchSequentialReplay) {
  constexpr unsigned kSessions = 8;
  constexpr unsigned kBatches = 3;
  constexpr Qubit kQubits = 6;

  const auto batchFor = [](unsigned session, unsigned batch) {
    return circuits::randomUniversal(kQubits, 40,
                                     1000 + 100 * session + batch);
  };

  SessionManager manager{withWorkers(4)};
  std::vector<std::shared_ptr<Session>> sessions;
  for (unsigned i = 0; i < kSessions; ++i) {
    sessions.push_back(manager.open(makeConfig(kQubits, 500 + i)));
  }
  // Interleave submission round-robin so different sessions' jobs overlap
  // in the queue; per-session order is still batch 0, 1, 2.
  std::vector<JobHandle> handles;
  for (unsigned b = 0; b < kBatches; ++b) {
    for (unsigned i = 0; i < kSessions; ++i) {
      handles.push_back(manager.submit(
          sessions[i],
          [chunk = batchFor(i, b)](Session& s, const par::CancelToken& t) {
            s.apply(chunk, t);
          }));
    }
  }
  std::vector<std::vector<Index>> samples{kSessions};
  for (unsigned i = 0; i < kSessions; ++i) {
    handles.push_back(manager.submit(
        sessions[i], [&samples, i](Session& s, const par::CancelToken&) {
          samples[i] = s.sample(128);
        }));
  }
  for (const JobHandle& h : handles) {
    h->wait();
    ASSERT_EQ(h->state(), JobState::Done) << h->error();
  }

  // Sequential ground truth: same seeds, same batches, one at a time.
  for (unsigned i = 0; i < kSessions; ++i) {
    Session replay{9000 + i, makeConfig(kQubits, 500 + i), nullptr};
    for (unsigned b = 0; b < kBatches; ++b) {
      replay.apply(batchFor(i, b));
    }
    EXPECT_EQ(replay.sample(128), samples[i]) << "session " << i;
    for (const Index idx : {Index{0}, Index{13}, Index{63}}) {
      const Complex a = sessions[i]->amplitude(idx);
      const Complex e = replay.amplitude(idx);
      EXPECT_NEAR(a.real(), e.real(), 1e-9);
      EXPECT_NEAR(a.imag(), e.imag(), 1e-9);
    }
    EXPECT_EQ(sessions[i]->gatesApplied(), kBatches * 40u);
  }
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

const json::Object& asObject(const json::Value& v) {
  const json::Object* obj = v.object();
  EXPECT_NE(obj, nullptr);
  return *obj;
}

bool responseOk(const std::string& response) {
  const json::Value v = json::parse(response);
  const auto it = asObject(v).find("ok");
  return it != asObject(v).end() && it->second.boolean() != nullptr &&
         *it->second.boolean();
}

TEST(SvcProtocol, PingAndErrors) {
  Service service{withWorkers(1)};
  EXPECT_TRUE(responseOk(service.handleLine(R"({"op":"ping"})")));
  EXPECT_FALSE(responseOk(service.handleLine("not json")));
  EXPECT_FALSE(responseOk(service.handleLine(R"({"op":"frobnicate"})")));
  EXPECT_FALSE(
      responseOk(service.handleLine(R"({"op":"report","session":99})")));
  EXPECT_FALSE(responseOk(
      service.handleLine(R"({"op":"open","backend":"nope","qubits":3})")));
}

TEST(SvcProtocol, FullSessionRoundTrip) {
  Service service{withWorkers(2)};
  const std::string opened = service.handleLine(
      R"({"op":"open","backend":"flatdd","qubits":2,"seed":"12345678901234567890"})");
  ASSERT_TRUE(responseOk(opened)) << opened;
  const json::Value openedJson = json::parse(opened);
  const double sid = *asObject(openedJson).find("session")->second.number();
  const std::string sidStr = std::to_string(static_cast<int>(sid));

  // Bell pair.
  ASSERT_TRUE(responseOk(service.handleLine(
      R"({"op":"apply","session":)" + sidStr +
      R"(,"gates":[{"gate":"h","target":0},{"gate":"x","target":1,"controls":[0]}]})")));

  const std::string sampled = service.handleLine(
      R"({"op":"sample","session":)" + sidStr + R"(,"shots":200})");
  ASSERT_TRUE(responseOk(sampled));
  // Bell state: only outcomes 0 and 3.
  EXPECT_EQ(sampled.find("\"1\""), std::string::npos);
  EXPECT_EQ(sampled.find("\"2\""), std::string::npos);

  const std::string amp = service.handleLine(
      R"({"op":"amplitude","session":)" + sidStr + R"(,"index":0})");
  ASSERT_TRUE(responseOk(amp));
  EXPECT_NE(amp.find("0.7071"), std::string::npos);

  const std::string report = service.handleLine(
      R"({"op":"report","session":)" + sidStr + "}");
  ASSERT_TRUE(responseOk(report));
  // The 64-bit seed survives as a decimal string.
  EXPECT_NE(report.find("\"seed\":\"12345678901234567890\""),
            std::string::npos);

  // Checkpoint / diverge / restore.
  const std::string cp = service.handleLine(
      R"({"op":"checkpoint","session":)" + sidStr + "}");
  ASSERT_TRUE(responseOk(cp));
  ASSERT_TRUE(responseOk(service.handleLine(
      R"({"op":"apply","session":)" + sidStr +
      R"(,"gates":[{"gate":"x","target":0}]})")));
  const std::string restored = service.handleLine(
      R"({"op":"restore","session":)" + sidStr + R"(,"checkpoint":1})");
  ASSERT_TRUE(responseOk(restored));
  EXPECT_NE(restored.find("\"total_gates\":2"), std::string::npos);

  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"restore","session":)" + sidStr + R"(,"checkpoint":42})")));

  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"close","session":)" + sidStr + "}")));
  EXPECT_FALSE(responseOk(
      service.handleLine(R"({"op":"report","session":)" + sidStr + "}")));

  EXPECT_FALSE(service.shutdownRequested());
  EXPECT_TRUE(responseOk(service.handleLine(R"({"op":"shutdown"})")));
  EXPECT_TRUE(service.shutdownRequested());
}

TEST(SvcProtocol, QasmApplyAndGateValidation) {
  Service service{withWorkers(1)};
  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"open","qubits":3,"seed":1})")));
  ASSERT_TRUE(responseOk(service.handleLine(
      R"({"op":"apply","session":1,"qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n"})")));
  // GHZ over 3 qubits: amplitude(7) = 1/sqrt(2).
  const std::string amp =
      service.handleLine(R"({"op":"amplitude","session":1,"index":7})");
  EXPECT_NE(amp.find("0.7071"), std::string::npos);

  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"apply","session":1,"gates":[{"gate":"warp","target":0}]})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"apply","session":1,"gates":[{"gate":"rz","target":0}]})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"apply","session":1,"gates":[{"gate":"h","target":9}]})")));
}

TEST(SvcProtocol, AsyncApplyJobLifecycle) {
  Service service{withWorkers(1)};
  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"open","qubits":4,"seed":1})")));
  const std::string submitted = service.handleLine(
      R"({"op":"apply","session":1,"async":true,"gates":[{"gate":"h","target":0}]})");
  ASSERT_TRUE(responseOk(submitted)) << submitted;
  EXPECT_NE(submitted.find("\"job\":"), std::string::npos);

  // Poll with a generous wait: must end done with the gate applied.
  const std::string done = service.handleLine(
      R"({"op":"job","job":1,"wait_ms":10000})");
  ASSERT_TRUE(responseOk(done)) << done;
  EXPECT_NE(done.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(done.find("\"total_gates\":1"), std::string::npos);

  // The record is dropped once observed terminal.
  EXPECT_FALSE(responseOk(service.handleLine(R"({"op":"job","job":1})")));
  EXPECT_FALSE(responseOk(service.handleLine(R"({"op":"cancel","job":7})")));
}

TEST(SvcProtocol, DeadlinePropagates) {
  Service service{withWorkers(1)};
  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"open","qubits":4,"seed":1})")));
  // An already-expired deadline must reject the job, not run it.
  const std::string expired = service.handleLine(
      R"({"op":"apply","session":1,"deadline_ms":0.0001,"gates":[{"gate":"h","target":0}]})");
  // Either expired at pop or cancelled mid-run — never ok.
  EXPECT_FALSE(responseOk(expired)) << expired;
  EXPECT_NE(expired.find("expired"), std::string::npos) << expired;
}

TEST(SvcProtocol, JobPollRacesLaterApply) {
  // Regression for a data race: polling a finished async apply reads
  // total_gates (Session::gatesApplied) on the handler thread while a later
  // job for the same session is still incrementing it on a queue worker.
  // The counter is atomic; TSan guards this test.
  Service service{withWorkers(2)};
  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"open","qubits":10,"seed":1})")));
  ASSERT_TRUE(responseOk(service.handleLine(
      R"({"op":"apply","session":1,"async":true,"gates":[{"gate":"h","target":0}]})")));
  std::string bulk =
      R"({"op":"apply","session":1,"async":true,"gates":[)";
  for (int i = 0; i < 2000; ++i) {
    bulk += std::string{i == 0 ? "" : ","} + R"({"gate":"h","target":)" +
            std::to_string(i % 10) + "}";
  }
  bulk += "]}";
  ASSERT_TRUE(responseOk(service.handleLine(bulk)));

  // Job 1 finishes first (FIFO within the session); its poll reads the gate
  // counter while job 2 may still be applying.
  const std::string first =
      service.handleLine(R"({"op":"job","job":1,"wait_ms":10000})");
  ASSERT_TRUE(responseOk(first)) << first;
  const std::string second =
      service.handleLine(R"({"op":"job","job":2,"wait_ms":10000})");
  ASSERT_TRUE(responseOk(second)) << second;
  EXPECT_NE(second.find("\"total_gates\":2001"), std::string::npos)
      << second;
}

TEST(SvcProtocol, RejectsMalformedNumbers) {
  Service service{withWorkers(1)};
  // qubits: zero, negative, fractional, and absurd are all rejected.
  EXPECT_FALSE(responseOk(service.handleLine(R"({"op":"open","qubits":0})")));
  EXPECT_FALSE(
      responseOk(service.handleLine(R"({"op":"open","qubits":-3})")));
  EXPECT_FALSE(
      responseOk(service.handleLine(R"({"op":"open","qubits":2.5})")));
  EXPECT_FALSE(
      responseOk(service.handleLine(R"({"op":"open","qubits":400})")));

  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"open","qubits":3,"seed":1})")));

  // amplitude index must be an integer inside [0, 2^qubits).
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"amplitude","session":1,"index":8})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"amplitude","session":1,"index":-1})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"amplitude","session":1,"index":1.5})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"amplitude","session":1,"index":1e300})")));
  EXPECT_TRUE(responseOk(service.handleLine(
      R"({"op":"amplitude","session":1,"index":7})")));

  // shots: negative/fractional/huge are rejected.
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"sample","session":1,"shots":-5})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"sample","session":1,"shots":0.5})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"sample","session":1,"shots":1e12})")));

  // Gate targets/controls outside the register are rejected before any cast.
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"apply","session":1,"gates":[{"gate":"h","target":-1}]})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"apply","session":1,"gates":[{"gate":"x","target":0,"controls":[5]}]})")));

  // Priorities and durations are bounded integers / non-negative ms.
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"sample","session":1,"shots":1,"priority":1.5})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"sample","session":1,"shots":1,"deadline_ms":-1})")));
}

TEST(SvcProtocol, RejectsMalformedIdStrings) {
  Service service{withWorkers(1)};
  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"open","qubits":2,"seed":1})")));
  // A typo'd id must be a parse error, not a silent 0 routed elsewhere.
  EXPECT_FALSE(responseOk(
      service.handleLine(R"({"op":"report","session":"abc"})")));
  EXPECT_FALSE(responseOk(
      service.handleLine(R"({"op":"report","session":"1x"})")));
  EXPECT_FALSE(responseOk(
      service.handleLine(R"({"op":"report","session":""})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"open","qubits":2,"seed":"99999999999999999999999999"})")));
  // A well-formed decimal string still works.
  EXPECT_TRUE(responseOk(
      service.handleLine(R"({"op":"report","session":"1"})")));
}

TEST(SvcProtocol, CheckpointCapAndRelease) {
  Service service{withWorkers(1)};
  ASSERT_TRUE(responseOk(service.handleLine(
      R"({"op":"open","qubits":2,"seed":1,"max_checkpoints":2})")));
  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"checkpoint","session":1})")));
  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"checkpoint","session":1})")));
  // At the cap: a third checkpoint fails with a clear error.
  const std::string full =
      service.handleLine(R"({"op":"checkpoint","session":1})");
  EXPECT_FALSE(responseOk(full));
  EXPECT_NE(full.find("release"), std::string::npos) << full;

  // Releasing one frees the slot; releasing it again is an error.
  const std::string released = service.handleLine(
      R"({"op":"release","session":1,"checkpoint":1})");
  ASSERT_TRUE(responseOk(released)) << released;
  EXPECT_NE(released.find("\"checkpoints\":1"), std::string::npos);
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"release","session":1,"checkpoint":1})")));
  EXPECT_FALSE(responseOk(service.handleLine(
      R"({"op":"restore","session":1,"checkpoint":1})")));
  EXPECT_TRUE(responseOk(
      service.handleLine(R"({"op":"checkpoint","session":1})")));
  EXPECT_TRUE(responseOk(service.handleLine(
      R"({"op":"restore","session":1,"checkpoint":2})")));
}

TEST(SvcProtocol, UnpolledAsyncJobsExpire) {
  ServiceConfig cfg = withWorkers(1);
  cfg.asyncJobGraceMs = 0;  // expire terminal jobs on the next sweep
  Service service{cfg};
  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"open","qubits":3,"seed":1})")));
  ASSERT_TRUE(responseOk(service.handleLine(
      R"({"op":"apply","session":1,"async":true,"gates":[{"gate":"h","target":0}]})")));
  // A sync apply on the same session serializes after the async job, so by
  // the time it returns the async job is terminal.
  ASSERT_TRUE(responseOk(service.handleLine(
      R"({"op":"apply","session":1,"gates":[{"gate":"h","target":1}]})")));
  // First sweep stamps the (zero) grace deadline, second collects.
  EXPECT_TRUE(responseOk(service.handleLine(R"({"op":"ping"})")));
  EXPECT_TRUE(responseOk(service.handleLine(R"({"op":"ping"})")));
  const std::string gone = service.handleLine(R"({"op":"job","job":1})");
  EXPECT_FALSE(responseOk(gone));
  EXPECT_NE(gone.find("unknown job"), std::string::npos) << gone;
}

TEST(JobQueue, TerminalJobReleasesClosure) {
  JobQueue queue{1};
  auto marker = std::make_shared<int>(7);
  const JobHandle handle =
      queue.submit([marker](const par::CancelToken&) {});
  handle->wait();
  // The handle stays alive, but the closure (and anything it captured — in
  // the service, the Session) must be dropped at terminal state. finish()
  // releases it just before notifying, so poll briefly for the count.
  for (int i = 0; i < 2000 && marker.use_count() > 1; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(marker.use_count(), 1);

  // Jobs cancelled at shutdown (never run) release their closures too.
  JobQueue stalled{1};
  Blocker blocker{stalled};
  auto queued = std::make_shared<int>(8);
  const JobHandle orphan =
      stalled.submit([queued](const par::CancelToken&) {});
  blocker.release();
  stalled.shutdown();
  EXPECT_EQ(queued.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Request context: ids, timing fields, slow log
// ---------------------------------------------------------------------------

TEST(SvcRequestContext, RequestIdEchoedAndGenerated) {
  Service service{withWorkers(1)};
  // Client-supplied id (decimal string) comes back verbatim, as a string.
  const std::string pong =
      service.handleLine(R"({"op":"ping","request_id":"424242"})");
  EXPECT_TRUE(responseOk(pong));
  EXPECT_NE(pong.find("\"request_id\":\"424242\""), std::string::npos)
      << pong;
  // Numeric form works too.
  const std::string numeric =
      service.handleLine(R"({"op":"ping","request_id":7})");
  EXPECT_NE(numeric.find("\"request_id\":\"7\""), std::string::npos);
  // One is generated when absent.
  const std::string generated = service.handleLine(R"({"op":"ping"})");
  EXPECT_NE(generated.find("\"request_id\":\""), std::string::npos)
      << generated;
  // The id is echoed even on errors raised after it was assigned.
  const std::string err =
      service.handleLine(R"({"op":"frobnicate","request_id":"99"})");
  EXPECT_FALSE(responseOk(err));
  EXPECT_NE(err.find("\"request_id\":\"99\""), std::string::npos) << err;
  // A full u64 above 2^53 survives the round trip undamaged.
  const std::string big = service.handleLine(
      R"({"op":"ping","request_id":"11529215046068469760"})");
  EXPECT_NE(big.find("\"request_id\":\"11529215046068469760\""),
            std::string::npos)
      << big;
  // Responses stay parseable with the spliced field.
  EXPECT_NO_THROW((void)json::parse(pong));
  EXPECT_NO_THROW((void)json::parse(err));
}

TEST(SvcRequestContext, TimingFieldsOnQueueJobOps) {
  Service service{withWorkers(1)};
  ASSERT_TRUE(responseOk(
      service.handleLine(R"({"op":"open","qubits":2,"seed":1})")));
  const std::string applied = service.handleLine(
      R"({"op":"apply","session":1,"timing":true,"gates":[{"gate":"h","target":0}]})");
  ASSERT_TRUE(responseOk(applied)) << applied;
  EXPECT_NE(applied.find("\"queue_wait_us\":"), std::string::npos)
      << applied;
  EXPECT_NE(applied.find("\"exec_us\":"), std::string::npos) << applied;
  EXPECT_NO_THROW((void)json::parse(applied));

  const std::string sampled = service.handleLine(
      R"({"op":"sample","session":1,"shots":4,"timing":true,"request_id":"31337"})");
  ASSERT_TRUE(responseOk(sampled)) << sampled;
  EXPECT_NE(sampled.find("\"queue_wait_us\":"), std::string::npos);
  EXPECT_NE(sampled.find("\"request_id\":\"31337\""), std::string::npos);

  // Without timing:true the fields are absent.
  const std::string plain = service.handleLine(
      R"({"op":"sample","session":1,"shots":4})");
  EXPECT_EQ(plain.find("queue_wait_us"), std::string::npos) << plain;
}

TEST(SvcSlowLog, WritesJsonlRecordsWithRequestId) {
  const std::string path =
      ::testing::TempDir() + "flatdd_slow_log_test.jsonl";
  std::remove(path.c_str());
  {
    ServiceConfig cfg = withWorkers(1);
    cfg.slowLogPath = path;
    cfg.slowRequestMs = 0;  // log every request
    Service service{cfg};
    ASSERT_TRUE(responseOk(
        service.handleLine(R"({"op":"open","qubits":2,"seed":1})")));
    ASSERT_TRUE(responseOk(service.handleLine(
        R"({"op":"apply","session":1,"request_id":"8675309","gates":[{"gate":"h","target":0}]})")));
    ASSERT_TRUE(responseOk(service.handleLine(
        R"({"op":"sample","session":1,"shots":8})")));
    EXPECT_TRUE(service.sessions().slowLog().enabled());
    EXPECT_GE(service.sessions().slowLog().written(), 2u);
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.is_open());
  std::string line;
  int entries = 0;
  bool sawApply = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const json::Value v = json::parse(line);  // every line is valid JSON
    const json::Object& obj = asObject(v);
    EXPECT_EQ(*obj.find("event")->second.string(), "slow_request");
    ++entries;
    if (*obj.find("op")->second.string() == "apply") {
      sawApply = true;
      EXPECT_EQ(*obj.find("request_id")->second.string(), "8675309");
      EXPECT_EQ(*obj.find("session")->second.number(), 1);
      EXPECT_TRUE(obj.find("queue_wait_ms") != obj.end());
      EXPECT_TRUE(obj.find("exec_ms") != obj.end());
      EXPECT_TRUE(obj.find("simd_tier") != obj.end());
      EXPECT_EQ(*obj.find("gates")->second.number(), 1);
    }
  }
  EXPECT_GE(entries, 2);
  EXPECT_TRUE(sawApply);
  std::remove(path.c_str());
}

TEST(SvcSlowLog, ThresholdAndRateLimit) {
  const std::string path =
      ::testing::TempDir() + "flatdd_slow_log_limit.jsonl";
  std::remove(path.c_str());
  {
    // High threshold: a fast entry is skipped, a "stall" event bypasses it.
    SlowRequestLog log{path, 1e9, 2};
    SlowLogEntry fast;
    fast.op = "apply";
    fast.totalMs = 0.1;
    EXPECT_FALSE(log.record(fast));
    SlowLogEntry stall;
    stall.event = "stall";
    stall.op = "apply";
    stall.totalMs = 0.1;
    EXPECT_TRUE(log.record(stall));

    // Token bucket: burst of `maxPerSec` then suppression.
    SlowRequestLog limited{path + ".2", 0, 2};
    SlowLogEntry e;
    e.op = "sample";
    int written = 0;
    for (int i = 0; i < 10; ++i) {
      if (limited.record(e)) {
        ++written;
      }
    }
    EXPECT_LE(written, 3);  // burst cap ~= maxPerSec (+refill slop)
    EXPECT_GT(limited.suppressed(), 0u);
  }
  std::remove(path.c_str());
  std::remove((path + ".2").c_str());

  // Disabled (empty path): record is a no-op that reports false.
  SlowRequestLog off;
  EXPECT_FALSE(off.enabled());
  SlowLogEntry e;
  EXPECT_FALSE(off.record(e));
}

// ---------------------------------------------------------------------------
// Queue gauges, watchdog, healthz
// ---------------------------------------------------------------------------

#if FDD_OBS_ENABLED
TEST(JobQueue, DepthAndStashedGaugesSplit) {
  obs::setEnabled(true);
  obs::Registry::instance().reset();
  const auto gaugeValue = [](const char* name) {
    for (const auto& g : obs::Registry::instance().snapshot().gauges) {
      if (g.name == name) {
        return g.value;
      }
    }
    return 0.0;
  };
  {
    JobQueue queue{1};
    Blocker blocker{queue};
    // One schedulable job on key 9, one stashed behind it on the same key.
    const JobHandle first =
        queue.submit([](const par::CancelToken&) {}, {}, /*orderKey=*/9);
    const JobHandle second =
        queue.submit([](const par::CancelToken&) {}, {}, /*orderKey=*/9);
    EXPECT_EQ(gaugeValue("service.queue_depth"), 1.0);
    EXPECT_EQ(gaugeValue("service.queue_stashed"), 1.0);
    const JobQueue::Stats stats = queue.stats();
    EXPECT_EQ(stats.runnable, 1u);
    EXPECT_EQ(stats.stashed, 1u);
    blocker.join();
    first->wait();
    second->wait();
    EXPECT_EQ(gaugeValue("service.queue_depth"), 0.0);
    EXPECT_EQ(gaugeValue("service.queue_stashed"), 0.0);
  }
  obs::setEnabled(false);
  obs::Registry::instance().reset();
}
#endif  // FDD_OBS_ENABLED

TEST(SvcWatchdog, FlagsLongRunningJobOnce) {
  const std::string path = ::testing::TempDir() + "flatdd_stall_log.jsonl";
  std::remove(path.c_str());
  {
    JobQueue queue{1};
    SlowRequestLog log{path, 1e9, 100};  // threshold can't mask stalls
    Watchdog::Config cfg;
    cfg.intervalMs = 0;  // no thread; drive scans manually
    cfg.graceMs = 0;
    cfg.stallMs = 1;
    Watchdog watchdog{queue, &log, cfg};
    EXPECT_FALSE(watchdog.running());

    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    JobOptions opts;
    opts.requestId = 555;
    opts.label = "blocker";
    const JobHandle job = queue.submit(
        [&](const par::CancelToken&) {
          started.store(true);
          while (!release.load()) {
            std::this_thread::sleep_for(1ms);
          }
        },
        opts);
    while (!started.load()) {
      std::this_thread::sleep_for(1ms);
    }
    std::this_thread::sleep_for(5ms);  // cross the 1ms stall ceiling

    watchdog.scanOnce();
    EXPECT_EQ(watchdog.stalledNow(), 1u);
    EXPECT_EQ(watchdog.stalledTotal(), 1u);
    EXPECT_TRUE(job->stallFlagged());
    watchdog.scanOnce();  // one-shot: the total must not increment again
    EXPECT_EQ(watchdog.stalledTotal(), 1u);
    EXPECT_EQ(log.written(), 1u);

    release.store(true);
    job->wait();
    watchdog.scanOnce();
    EXPECT_EQ(watchdog.stalledNow(), 0u);  // gauge decays, counter stays
    EXPECT_EQ(watchdog.stalledTotal(), 1u);
    watchdog.stop();
  }
  // The stall record carries the request id and label, bypassing the
  // threshold.
  std::ifstream in{path};
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  const json::Object& obj = asObject(json::parse(line));
  EXPECT_EQ(*obj.find("event")->second.string(), "stall");
  EXPECT_EQ(*obj.find("request_id")->second.string(), "555");
  EXPECT_EQ(*obj.find("op")->second.string(), "blocker");
  EXPECT_EQ(*obj.find("state")->second.string(), "running");
  std::remove(path.c_str());
}

TEST(SvcWatchdog, ThreadScansWithoutManualDriving) {
  JobQueue queue{1};
  Watchdog::Config cfg;
  cfg.intervalMs = 5;
  cfg.graceMs = 0;
  cfg.stallMs = 1;
  Watchdog watchdog{queue, nullptr, cfg};
  EXPECT_TRUE(watchdog.running());

  std::atomic<bool> release{false};
  const JobHandle job = queue.submit([&](const par::CancelToken&) {
    while (!release.load()) {
      std::this_thread::sleep_for(1ms);
    }
  });
  // The watchdog thread must flag the job by itself within a few periods.
  for (int i = 0; i < 2000 && watchdog.stalledTotal() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(watchdog.stalledTotal(), 1u);
  release.store(true);
  job->wait();
  watchdog.stop();
  EXPECT_FALSE(watchdog.running());
  watchdog.stop();  // idempotent
}

TEST(SvcHealthz, ReportsQueueAndDegradesOnStall) {
  ServiceConfig cfg = withWorkers(1);
  cfg.watchdogIntervalMs = 0;  // drive scans manually
  cfg.watchdogGraceMs = 0;
  cfg.watchdogStallMs = 1;
  Service service{cfg};

  const json::Value healthy = json::parse(service.healthzJson());
  const json::Object& h = asObject(healthy);
  EXPECT_EQ(*h.find("status")->second.string(), "ok");
  EXPECT_TRUE(h.find("uptime_seconds") != h.end());
  EXPECT_TRUE(h.find("sessions") != h.end());
  const json::Object& q = *h.find("queue")->second.object();
  EXPECT_EQ(*q.find("workers")->second.number(), 1);
  EXPECT_TRUE(q.find("depth") != q.end());
  EXPECT_TRUE(q.find("stashed") != q.end());
  EXPECT_TRUE(h.find("worker_progress") != h.end());

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  const JobHandle job = service.sessions().queue().submit(
      [&](const par::CancelToken&) {
        started.store(true);
        while (!release.load()) {
          std::this_thread::sleep_for(1ms);
        }
      });
  while (!started.load()) {
    std::this_thread::sleep_for(1ms);
  }
  std::this_thread::sleep_for(5ms);
  service.sessions().watchdog().scanOnce();

  const std::string degraded = service.healthzJson();
  EXPECT_NE(degraded.find("\"status\":\"degraded\""), std::string::npos)
      << degraded;
  EXPECT_NE(degraded.find("\"jobs_stalled\":1"), std::string::npos)
      << degraded;

  release.store(true);
  job->wait();
  service.sessions().watchdog().scanOnce();
  const std::string recovered = service.healthzJson();
  EXPECT_NE(recovered.find("\"status\":\"ok\""), std::string::npos)
      << recovered;
  EXPECT_NE(recovered.find("\"jobs_stalled_total\":1"), std::string::npos)
      << recovered;
}

// ---------------------------------------------------------------------------
// Admin listener
// ---------------------------------------------------------------------------

std::string httpGet(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)::write(fd, req.data(), req.size());
  std::string out;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
    out.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string httpBody(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string{} : response.substr(pos + 4);
}

TEST(SvcAdmin, ServesMetricsHealthzAndTracez) {
  // obs on so /metrics and /tracez carry content — mirrors --metrics-port.
  obs::setEnabled(true);
  obs::clearTrace();
  obs::Registry::instance().reset();
  {
    Service service{withWorkers(1)};
    AdminServer admin{service, 0};  // ephemeral port
    ASSERT_NE(admin.port(), 0);

    ASSERT_TRUE(responseOk(
        service.handleLine(R"({"op":"open","qubits":2,"seed":1})")));
    ASSERT_TRUE(responseOk(service.handleLine(
        R"({"op":"apply","session":1,"gates":[{"gate":"h","target":0}]})")));

    const std::string metrics = httpGet(admin.port(), "/metrics");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
    EXPECT_NE(metrics.find("flatdd_uptime_seconds"), std::string::npos);
#if FDD_OBS_ENABLED
    // The sync apply ran as a queue job, so its latency histogram is live.
    EXPECT_NE(metrics.find("flatdd_service_job_latency_seconds"),
              std::string::npos)
        << metrics;
#endif

    const std::string healthz = httpGet(admin.port(), "/healthz");
    EXPECT_NE(healthz.find("200 OK"), std::string::npos);
    EXPECT_NE(healthz.find("application/json"), std::string::npos);
    const json::Value h = json::parse(httpBody(healthz));
    EXPECT_EQ(*asObject(h).find("status")->second.string(), "ok");
    EXPECT_EQ(*asObject(h).find("sessions")->second.number(), 1);

    const std::string tracez = httpGet(admin.port(), "/tracez");
    EXPECT_NE(tracez.find("200 OK"), std::string::npos);
    const json::Value t = json::parse(httpBody(tracez));
    EXPECT_TRUE(asObject(t).find("traceEvents") != asObject(t).end());

    const std::string missing = httpGet(admin.port(), "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos);

    admin.stop();
    admin.stop();  // idempotent
  }
  obs::setEnabled(false);
  obs::clearTrace();
  obs::Registry::instance().reset();
}

// ---------------------------------------------------------------------------
// PRNG checkpointing
// ---------------------------------------------------------------------------

TEST(PrngState, SaveRestoreResumesSequence) {
  Xoshiro256 rng{123};
  for (int i = 0; i < 10; ++i) {
    (void)rng();
  }
  const auto saved = rng.state();
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 16; ++i) {
    expect.push_back(rng());
  }
  Xoshiro256 resumed{999};  // different seed, then overwritten
  resumed.setState(saved);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(resumed(), expect[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace fdd::svc
