// OpenQASM 2.0 front end: lexer, expression evaluation, register broadcast,
// user gate expansion, error reporting, round-trips with Circuit::toQasm.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "qasm/lexer.hpp"
#include "qasm/parser.hpp"

namespace fdd::qasm {
namespace {

TEST(Lexer, BasicTokens) {
  const auto toks = tokenize("qreg q[5]; // comment\nh q[0];");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[0].text, "qreg");
  EXPECT_EQ(toks[2].kind, TokenKind::LBracket);
  EXPECT_EQ(toks[3].kind, TokenKind::Real);
  EXPECT_DOUBLE_EQ(toks[3].value, 5.0);
  EXPECT_EQ(toks.back().kind, TokenKind::Eof);
}

TEST(Lexer, NumbersAndPi) {
  const auto toks = tokenize("3.25 1e-3 pi 2.5e+2");
  EXPECT_DOUBLE_EQ(toks[0].value, 3.25);
  EXPECT_DOUBLE_EQ(toks[1].value, 1e-3);
  EXPECT_EQ(toks[2].kind, TokenKind::Pi);
  EXPECT_DOUBLE_EQ(toks[3].value, 250.0);
}

TEST(Lexer, StringsAndArrows) {
  const auto toks = tokenize("include \"qelib1.inc\"; measure q -> c;");
  EXPECT_EQ(toks[1].kind, TokenKind::String);
  EXPECT_EQ(toks[1].text, "qelib1.inc");
  bool sawArrow = false;
  for (const auto& t : toks) {
    sawArrow |= (t.kind == TokenKind::Arrow);
  }
  EXPECT_TRUE(sawArrow);
}

TEST(Lexer, LineNumbersInErrors) {
  try {
    (void)tokenize("ok;\nok;\n$bad");
    FAIL() << "expected QasmError";
  } catch (const QasmError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Lexer, UnterminatedString) {
  EXPECT_THROW((void)tokenize("include \"oops"), QasmError);
}

TEST(Parser, MinimalProgram) {
  const auto c = parse(R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[2];
    creg c[2];
    h q[0];
    cx q[0],q[1];
  )");
  EXPECT_EQ(c.numQubits(), 2);
  ASSERT_EQ(c.numGates(), 2u);
  EXPECT_EQ(c[0].kind, qc::GateKind::H);
  EXPECT_EQ(c[1].kind, qc::GateKind::X);
  EXPECT_EQ(c[1].controls, (std::vector<Qubit>{0}));
}

TEST(Parser, ParameterExpressions) {
  const auto c = parse(R"(
    qreg q[1];
    rz(pi/2) q[0];
    rz(-pi/4) q[0];
    rz(2*pi/8 + 1) q[0];
    rz(3^2) q[0];
    rz(cos(0)) q[0];
    rz(sqrt(4)) q[0];
  )");
  ASSERT_EQ(c.numGates(), 6u);
  EXPECT_NEAR(c[0].params[0], PI / 2, 1e-12);
  EXPECT_NEAR(c[1].params[0], -PI / 4, 1e-12);
  EXPECT_NEAR(c[2].params[0], PI / 4 + 1, 1e-12);
  EXPECT_NEAR(c[3].params[0], 9.0, 1e-12);
  EXPECT_NEAR(c[4].params[0], 1.0, 1e-12);
  EXPECT_NEAR(c[5].params[0], 2.0, 1e-12);
}

TEST(Parser, RegisterBroadcast) {
  const auto c = parse(R"(
    qreg q[3];
    h q;
  )");
  EXPECT_EQ(c.numGates(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c[i].kind, qc::GateKind::H);
    EXPECT_EQ(c[i].target, static_cast<Qubit>(i));
  }
}

TEST(Parser, TwoRegisterBroadcast) {
  const auto c = parse(R"(
    qreg a[2];
    qreg b[2];
    cx a,b;
  )");
  ASSERT_EQ(c.numGates(), 2u);
  EXPECT_EQ(c[0].controls, (std::vector<Qubit>{0}));
  EXPECT_EQ(c[0].target, 2);
  EXPECT_EQ(c[1].controls, (std::vector<Qubit>{1}));
  EXPECT_EQ(c[1].target, 3);
}

TEST(Parser, MixedBroadcastSingleAgainstRegister) {
  const auto c = parse(R"(
    qreg a[1];
    qreg b[3];
    cx a[0],b;
  )");
  ASSERT_EQ(c.numGates(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c[i].controls, (std::vector<Qubit>{0}));
    EXPECT_EQ(c[i].target, static_cast<Qubit>(1 + i));
  }
}

TEST(Parser, BroadcastSizeMismatchThrows) {
  EXPECT_THROW((void)parse("qreg a[2]; qreg b[3]; cx a,b;"), QasmError);
}

TEST(Parser, UserGateDefinition) {
  const auto c = parse(R"(
    qreg q[2];
    gate bell a, b { h a; cx a, b; }
    bell q[0], q[1];
  )");
  ASSERT_EQ(c.numGates(), 2u);
  EXPECT_EQ(c[0].kind, qc::GateKind::H);
  EXPECT_EQ(c[1].kind, qc::GateKind::X);
}

TEST(Parser, ParameterizedUserGate) {
  const auto c = parse(R"(
    qreg q[1];
    gate twist(t) a { rz(t/2) a; ry(-t) a; }
    twist(pi) q[0];
  )");
  ASSERT_EQ(c.numGates(), 2u);
  EXPECT_NEAR(c[0].params[0], PI / 2, 1e-12);
  EXPECT_NEAR(c[1].params[0], -PI, 1e-12);
}

TEST(Parser, NestedUserGates) {
  const auto c = parse(R"(
    qreg q[2];
    gate inner a { x a; }
    gate outer a, b { inner a; inner b; cz a, b; }
    outer q[0], q[1];
  )");
  ASSERT_EQ(c.numGates(), 3u);
  EXPECT_EQ(c[2].kind, qc::GateKind::Z);
}

TEST(Parser, QelibBuiltinsLower) {
  const auto c = parse(R"(
    qreg q[3];
    u3(0.1,0.2,0.3) q[0];
    u1(0.5) q[1];
    cu1(0.25) q[0],q[1];
    swap q[0],q[2];
    ccx q[0],q[1],q[2];
    cswap q[0],q[1],q[2];
  )");
  // swap -> 3 ops, cswap -> 3 ops.
  EXPECT_EQ(c.numGates(), 1u + 1 + 1 + 3 + 1 + 3);
}

TEST(Parser, SwapLoweringPreservesSemantics) {
  const auto c = parse("qreg q[2]; x q[0]; swap q[0],q[1];");
  const auto state = test::denseSimulate(c);
  EXPECT_NEAR(std::abs(state[2] - Complex{1.0}), 0.0, 1e-12);
}

TEST(Parser, MeasureAndBarrierIgnored) {
  const auto c = parse(R"(
    qreg q[2];
    creg c[2];
    h q[0];
    barrier q;
    measure q -> c;
  )");
  EXPECT_EQ(c.numGates(), 1u);
}

TEST(Parser, MultipleQregsConcatenate) {
  const auto c = parse("qreg a[2]; qreg b[3]; x b[0];");
  EXPECT_EQ(c.numQubits(), 5);
  EXPECT_EQ(c[0].target, 2);
}

TEST(Parser, Errors) {
  EXPECT_THROW((void)parse("h q[0];"), QasmError);            // unknown qreg
  EXPECT_THROW((void)parse("qreg q[2]; h q[5];"), QasmError); // out of range
  EXPECT_THROW((void)parse("qreg q[2]; frobnicate q[0];"), QasmError);
  EXPECT_THROW((void)parse("qreg q[0];"), QasmError);         // empty reg
  EXPECT_THROW((void)parse("qreg q[2]; qreg q[2];"), QasmError);
  EXPECT_THROW((void)parse("qreg q[1]; rz() q[0];"), QasmError);
  EXPECT_THROW((void)parse("qreg q[1]; rz(1/0) q[0];"), QasmError);
  EXPECT_THROW((void)parse("qreg q[1]; if (c==0) x q[0];"), QasmError);
  EXPECT_THROW((void)parse(""), QasmError);                   // no qreg
}

TEST(Parser, CircuitRoundTripThroughQasm) {
  qc::Circuit original{3, "rt"};
  original.h(0).cx(0, 1).rz(0.75, 2).cp(0.5, 0, 2).t(1).x(2);
  const auto reparsed = parse(original.toQasm());
  ASSERT_EQ(reparsed.numGates(), original.numGates());
  const auto a = test::denseSimulate(original);
  const auto b = test::denseSimulate(reparsed);
  EXPECT_STATE_NEAR(a, b, 1e-12);
}

TEST(Parser, FileNotFoundThrows) {
  EXPECT_THROW((void)parseFile("/nonexistent/file.qasm"), std::runtime_error);
}

}  // namespace
}  // namespace fdd::qasm
