// DMAV plan compiler: op-stream taxonomy (diagonal gates lower to DiagScale,
// permutations to PermuteCopy), replay equivalence with the recursive path,
// balanced block packing, the LRU plan cache, and generation-based
// invalidation against node recycling.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "dd/package.hpp"
#include "flatdd/dmav_plan.hpp"
#include "flatdd/plan_cache.hpp"
#include "helpers.hpp"
#include "parallel/thread_pool.hpp"

namespace fdd::flat {
namespace {

AlignedVector<Complex> replayRow(const DmavPlan& plan,
                                 const test::DenseVector& v) {
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  replayPlan(plan, in, out);
  return out;
}

// ---------------------------------------------------------------------------
// Op taxonomy
// ---------------------------------------------------------------------------

TEST(DmavPlan, DiagonalGatesLowerToDiagScale) {
  // RZ, T, CZ, CP are diagonal matrices: every output row depends on exactly
  // the same input row, so the compiler must prove exclusivity and emit only
  // DiagScale ops — no accumulating MacSpan and no zero-fill at all.
  const Qubit n = 6;
  const std::vector<qc::Operation> diagonalGates = {
      {qc::GateKind::RZ, 2, {}, {0.37}},
      {qc::GateKind::T, 0, {}, {}},
      {qc::GateKind::Z, 4, {1}, {}},          // CZ
      {qc::GateKind::P, 3, {5}, {1.1}},       // CP
  };
  for (const auto& op : diagonalGates) {
    dd::Package p{n};
    const dd::mEdge m = p.makeGateDD(op);
    for (const unsigned threads : {1u, 4u}) {
      const DmavPlan plan =
          compileDmavPlan(m, n, threads, PlanMode::Row, &p);
      EXPECT_GT(plan.opCount(SpanOpKind::DiagScale), 0u)
          << op.toString() << " t=" << threads;
      EXPECT_EQ(plan.opCount(SpanOpKind::MacSpan), 0u);
      EXPECT_EQ(plan.opCount(SpanOpKind::PermuteCopy), 0u);
      EXPECT_TRUE(plan.fullyExclusive());
      for (const PlanBlock& block : plan.blocks) {
        for (const SpanOp& sop : block.ops) {
          EXPECT_EQ(sop.iv, sop.iw);  // diagonal: input row == output row
        }
      }
      const auto v = test::randomState(n, 91);
      EXPECT_STATE_NEAR(replayRow(plan, v),
                        test::denseApply(test::denseOperator(op, n), v),
                        1e-12);
    }
  }
}

TEST(DmavPlan, PermutationGatesLowerToPermuteCopy) {
  const Qubit n = 6;
  const std::vector<qc::Operation> permutations = {
      {qc::GateKind::X, n - 1, {}, {}},  // X on the top qubit
      {qc::GateKind::X, 0, {}, {}},      // X on the bottom qubit
  };
  for (const auto& op : permutations) {
    dd::Package p{n};
    const dd::mEdge m = p.makeGateDD(op);
    const DmavPlan plan = compileDmavPlan(m, n, 2, PlanMode::Row, &p);
    EXPECT_GT(plan.opCount(SpanOpKind::PermuteCopy), 0u);
    EXPECT_EQ(plan.opCount(SpanOpKind::MacSpan), 0u);
    EXPECT_TRUE(plan.fullyExclusive());
    const auto v = test::randomState(n, 92);
    EXPECT_STATE_NEAR(replayRow(plan, v),
                      test::denseApply(test::denseOperator(op, n), v),
                      1e-12);
  }
}

TEST(DmavPlan, HadamardKeepsAccumulatingOps) {
  // H mixes two input rows into each output row: outputs overlap, so the
  // ops stay accumulating and the block is zero-filled before replay.
  const Qubit n = 6;
  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD({qc::GateKind::H, 0, {}, {}});
  const DmavPlan plan = compileDmavPlan(m, n, 2, PlanMode::Row, &p);
  EXPECT_FALSE(plan.fullyExclusive());
  EXPECT_GT(plan.opCount(SpanOpKind::MacSpan) +
                plan.opCount(SpanOpKind::IdentScale) +
                plan.opCount(SpanOpKind::Mac2Span),
            0u);
  for (const PlanBlock& block : plan.blocks) {
    ASSERT_FALSE(block.zeroSpans.empty());
    EXPECT_EQ(block.zeroSpans.front().begin, block.rowBegin);
    EXPECT_EQ(block.zeroSpans.front().len, block.rows);
  }
}

TEST(DmavPlan, LowQubitDiagonalCollapsesToStridedCombs) {
  // RZ(q0) alternates two coefficients per amplitude. Without the strided
  // collapse the plan would hold one len-1 DiagScale per row (O(2^n) ops);
  // with it every block is two comb ops of stride 2.
  const Qubit n = 10;
  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD({qc::GateKind::RZ, 0, {}, {0.41}});
  const DmavPlan plan = compileDmavPlan(m, n, 2, PlanMode::Row, &p);
  EXPECT_TRUE(plan.fullyExclusive());
  EXPECT_EQ(plan.opCount(), 2 * plan.blocks.size());
  for (const PlanBlock& block : plan.blocks) {
    for (const SpanOp& sop : block.ops) {
      EXPECT_EQ(sop.kind, SpanOpKind::DiagScale);
      EXPECT_GT(sop.count, 1u);
      EXPECT_EQ(sop.len, 1u);
      EXPECT_EQ(sop.stride, 2u);
    }
  }
  const auto v = test::randomState(n, 95);
  EXPECT_STATE_NEAR(
      replayRow(plan, v),
      test::denseApply(
          test::denseOperator({qc::GateKind::RZ, 0, {}, {0.41}}, n), v),
      1e-12);
}

TEST(DmavPlan, LowQubitHadamardFusesAndCollapsesToMac2Combs) {
  // H(q0): each output amplitude is a two-term MAC of the adjacent input
  // pair. The fuse pass pairs the per-output accumulates into Mac2Span and
  // the collapse pass turns the alternating combs into two strided ops per
  // block.
  const Qubit n = 10;
  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD({qc::GateKind::H, 0, {}, {}});
  const DmavPlan plan = compileDmavPlan(m, n, 2, PlanMode::Row, &p);
  EXPECT_GT(plan.opCount(SpanOpKind::Mac2Span), 0u);
  EXPECT_EQ(plan.opCount(), plan.opCount(SpanOpKind::Mac2Span));
  EXPECT_EQ(plan.opCount(), 2 * plan.blocks.size());
  const auto v = test::randomState(n, 96);
  EXPECT_STATE_NEAR(
      replayRow(plan, v),
      test::denseApply(test::denseOperator({qc::GateKind::H, 0, {}, {}}, n),
                       v),
      1e-12);
}

TEST(DmavPlan, HighQubitHadamardFusesToTwoMac2SpansPerBlock) {
  // H on the top qubit: e0/e1 (and e2/e3) subtrees write the same output
  // half, so after fusion each half is one giant Mac2Span reading both input
  // halves.
  const Qubit n = 8;
  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD({qc::GateKind::H, n - 1, {}, {}});
  const DmavPlan plan = compileDmavPlan(m, n, 1, PlanMode::Row, &p);
  EXPECT_GT(plan.opCount(SpanOpKind::Mac2Span), 0u);
  EXPECT_EQ(plan.opCount(SpanOpKind::MacSpan), 0u);
  EXPECT_EQ(plan.opCount(SpanOpKind::IdentScale), 0u);
  const auto v = test::randomState(n, 97);
  EXPECT_STATE_NEAR(
      replayRow(plan, v),
      test::denseApply(
          test::denseOperator({qc::GateKind::H, n - 1, {}, {}}, n), v),
      1e-12);
}

TEST(DmavPlan, LowQubitPermutationCollapsesToStridedCombs) {
  // X(q0) swaps adjacent amplitudes: two interleaved PermuteCopy combs per
  // block, input offset one off the output offset.
  const Qubit n = 10;
  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD({qc::GateKind::X, 0, {}, {}});
  const DmavPlan plan = compileDmavPlan(m, n, 2, PlanMode::Row, &p);
  EXPECT_TRUE(plan.fullyExclusive());
  EXPECT_EQ(plan.opCount(), 2 * plan.blocks.size());
  for (const PlanBlock& block : plan.blocks) {
    for (const SpanOp& sop : block.ops) {
      EXPECT_EQ(sop.kind, SpanOpKind::PermuteCopy);
      EXPECT_GT(sop.count, 1u);
      EXPECT_EQ(sop.stride, 2u);
    }
  }
  const auto v = test::randomState(n, 98);
  EXPECT_STATE_NEAR(
      replayRow(plan, v),
      test::denseApply(test::denseOperator({qc::GateKind::X, 0, {}, {}}, n),
                       v),
      1e-12);
}

TEST(DmavPlan, IdentFastPathFlagIsBakedIn) {
  const Qubit n = 6;
  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD({qc::GateKind::X, 0, {n - 1}, {}});  // CX
  const DmavPlan withIdent = compileDmavPlan(m, n, 1, PlanMode::Row, &p);
  setIdentFastPath(false);
  const DmavPlan without = compileDmavPlan(m, n, 1, PlanMode::Row, &p);
  setIdentFastPath(true);
  EXPECT_TRUE(withIdent.identFast);
  EXPECT_FALSE(without.identFast);
  // Without the fast path the identity subtree is expanded into per-row
  // ops, but merging rebuilds contiguous spans: both replays must agree.
  const auto v = test::randomState(n, 93);
  const auto a = replayRow(withIdent, v);
  const auto b = replayRow(without, v);
  EXPECT_STATE_NEAR(a, b, 1e-14);
}

// ---------------------------------------------------------------------------
// Balanced replay
// ---------------------------------------------------------------------------

TEST(DmavPlan, BlocksAreSplitFinerThanThreadsAndPackedOnce) {
  const Qubit n = 8;  // dim 256: t=4 -> split 2 (min block rows 32)
  dd::Package p{n};
  const auto circuit = circuits::supremacy(n, 4, 5);
  const dd::mEdge m = p.makeGateDD(circuit.operations().front());
  const DmavPlan plan = compileDmavPlan(m, n, 4, PlanMode::Row, &p);
  EXPECT_EQ(plan.threads, 4u);
  EXPECT_EQ(plan.blocks.size(), 8u);  // 4 threads x split 2
  // Every block is assigned to exactly one thread.
  std::vector<int> seen(plan.blocks.size(), 0);
  for (const auto& ids : plan.blocksOf) {
    for (const std::uint32_t id : ids) {
      ASSERT_LT(id, plan.blocks.size());
      ++seen[id];
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
  // Blocks tile the row space and ops (including comb repetitions) stay
  // inside their block.
  for (const PlanBlock& block : plan.blocks) {
    for (const SpanOp& sop : block.ops) {
      EXPECT_GE(sop.iw, block.rowBegin);
      EXPECT_LE(sop.extent(), block.rowBegin + block.rows);
    }
  }
}

TEST(DmavPlan, ReplayMatchesRecursiveOnIrregularCircuit) {
  const Qubit n = 7;
  dd::Package p{n};
  AlignedVector<Complex> v1(Index{1} << n, Complex{});
  v1[0] = Complex{1.0};
  AlignedVector<Complex> v2 = v1;
  AlignedVector<Complex> w1(v1.size());
  AlignedVector<Complex> w2(v1.size());
  for (const auto& op : circuits::supremacy(n, 6, 17)) {
    const dd::mEdge m = p.makeGateDD(op);
    const DmavPlan plan = compileDmavPlan(m, n, 4, PlanMode::Row, &p);
    replayPlan(plan, v1, w1);
    dmavRecursive(m, n, v2, w2, 4);
    std::swap(v1, w1);
    std::swap(v2, w2);
  }
  EXPECT_STATE_NEAR(v1, v2, 1e-12);
}

TEST(DmavPlan, ReplaySurvivesShrunkenPool) {
  // A plan compiled for 8 threads must still replay correctly when the pool
  // has fewer workers (oversubscribed run() distributes the indices).
  const Qubit n = 6;
  dd::Package p{n};
  const dd::mEdge m = p.makeGateDD({qc::GateKind::H, 3, {}, {}});
  const DmavPlan plan = compileDmavPlan(m, n, 8, PlanMode::Row, &p);
  EXPECT_EQ(plan.threads, 8u);
  par::resizePool(2);
  const auto v = test::randomState(n, 94);
  const auto out = replayRow(plan, v);
  par::resizePool(16);
  EXPECT_STATE_NEAR(
      out,
      test::denseApply(test::denseOperator({qc::GateKind::H, 3, {}, {}}, n),
                       v),
      1e-12);
}

// ---------------------------------------------------------------------------
// Cached (column-space) plans
// ---------------------------------------------------------------------------

TEST(DmavPlan, CachedPlanEmitsBlockScaleForRepeats) {
  // H on the top qubit: both tasks of a thread share the sub-matrix node, so
  // the compiled program must contain BlockScale ops (compile-time Alg. 2
  // hits) and replay must agree with the dense reference.
  const Qubit n = 8;
  dd::Package p{n};
  const qc::Operation op{qc::GateKind::H, n - 1, {}, {}};
  const dd::mEdge m = p.makeGateDD(op);
  const DmavPlan plan = compileDmavPlan(m, n, 4, PlanMode::Cached, &p);
  EXPECT_GT(plan.cacheHits, 0u);
  EXPECT_EQ(plan.opCount(SpanOpKind::BlockScale), plan.cacheHits);
  AlignedVector<Complex> in(Index{1} << n);
  const auto v = test::randomState(n, 95);
  std::copy(v.begin(), v.end(), in.begin());
  AlignedVector<Complex> out(in.size());
  DmavWorkspace ws;
  const DmavCacheStats s = replayPlanCached(plan, in, out, ws);
  EXPECT_EQ(s.cacheHits, plan.cacheHits);
  EXPECT_EQ(s.buffers, plan.numBuffers);
  EXPECT_STATE_NEAR(out, test::denseApply(test::denseOperator(op, n), v),
                    1e-12);
}

TEST(DmavPlan, CachedPlanMatchesRecursiveCachedPath) {
  const Qubit n = 7;
  dd::Package p{n};
  DmavWorkspace ws1;
  DmavWorkspace ws2;
  AlignedVector<Complex> v1(Index{1} << n, Complex{});
  v1[0] = Complex{1.0};
  AlignedVector<Complex> v2 = v1;
  AlignedVector<Complex> w1(v1.size());
  AlignedVector<Complex> w2(v1.size());
  for (const auto& op : circuits::qft(n, 3)) {
    const dd::mEdge m = p.makeGateDD(op);
    const DmavPlan plan = compileDmavPlan(m, n, 4, PlanMode::Cached, &p);
    const DmavCacheStats a = replayPlanCached(plan, v1, w1, ws1);
    const DmavCacheStats b = dmavCachedRecursive(m, n, v2, w2, 4, ws2);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.buffers, b.buffers);
    std::swap(v1, w1);
    std::swap(v2, w2);
  }
  EXPECT_STATE_NEAR(v1, v2, 1e-12);
}

// ---------------------------------------------------------------------------
// Fused diagonal runs (DiagRun)
// ---------------------------------------------------------------------------

std::vector<qc::Operation> randomDiagonalOps(Qubit n, std::size_t count,
                                             std::uint64_t seed) {
  Xoshiro256 rng{seed};
  std::vector<qc::Operation> ops;
  ops.reserve(count);
  for (std::size_t g = 0; g < count; ++g) {
    const Qubit q = static_cast<Qubit>(rng.below(n));
    switch (rng.below(5)) {
      case 0:
        ops.push_back({qc::GateKind::RZ, q, {}, {rng.uniform(-3, 3)}});
        break;
      case 1:
        ops.push_back({qc::GateKind::T, q, {}, {}});
        break;
      case 2:
        ops.push_back({qc::GateKind::S, q, {}, {}});
        break;
      case 3: {  // CZ
        const Qubit c = static_cast<Qubit>((q + 1 + rng.below(n - 1)) % n);
        ops.push_back({qc::GateKind::Z, q, {c}, {}});
        break;
      }
      default: {  // CP
        const Qubit c = static_cast<Qubit>((q + 1 + rng.below(n - 1)) % n);
        ops.push_back({qc::GateKind::P, q, {c}, {rng.uniform(-3, 3)}});
        break;
      }
    }
  }
  return ops;
}

TEST(DiagRunPlan, EveryGateIsDetectedDiagonal) {
  const Qubit n = 6;
  dd::Package p{n};
  for (const auto& op : randomDiagonalOps(n, 32, 41)) {
    EXPECT_TRUE(isDiagonalGateDD(p.makeGateDD(op))) << op.toString();
  }
  EXPECT_FALSE(isDiagonalGateDD(p.makeGateDD({qc::GateKind::H, 2, {}, {}})));
  EXPECT_FALSE(isDiagonalGateDD(p.makeGateDD({qc::GateKind::X, 0, {}, {}})));
  EXPECT_FALSE(
      isDiagonalGateDD(p.makeGateDD({qc::GateKind::X, 0, {3}, {}})));  // CX
}

TEST(DiagRunPlan, FusedRunMatchesSequentialRecursive) {
  // k diagonal gates collapse into one pointwise sweep; the fused replay
  // must match applying the gates one by one through dmavRecursive.
  const Qubit n = 7;
  for (const std::size_t k : {2u, 5u, 17u}) {
    for (const unsigned threads : {1u, 4u}) {
      dd::Package p{n};
      std::vector<dd::mEdge> run;
      for (const auto& op : randomDiagonalOps(n, k, 100 + k + threads)) {
        run.push_back(p.makeGateDD(op));
        p.incRef(run.back());
      }
      const DmavPlan plan = compileDiagRunPlan(run, n, threads, &p);
      EXPECT_EQ(plan.fusedGates, k);
      EXPECT_EQ(plan.extraRoots.size(), k - 1);
      EXPECT_EQ(plan.diag.size(), Index{1} << n);
      EXPECT_TRUE(plan.fullyExclusive());
      EXPECT_EQ(plan.opCount(), plan.opCount(SpanOpKind::DiagRun));
      EXPECT_GT(plan.opCount(SpanOpKind::DiagRun), 0u);

      const auto v = test::randomState(n, 200 + k);
      AlignedVector<Complex> v1(v.begin(), v.end());
      AlignedVector<Complex> w1(v1.size());
      replayPlan(plan, v1, w1);

      AlignedVector<Complex> v2(v.begin(), v.end());
      AlignedVector<Complex> w2(v2.size());
      for (const dd::mEdge& m : run) {
        dmavRecursive(m, n, v2, w2, threads);
        std::swap(v2, w2);
      }
      EXPECT_STATE_NEAR(w1, v2, 1e-12);
      for (const dd::mEdge& m : run) {
        p.decRef(m);
      }
    }
  }
}

TEST(PlanCacheTest, RunKeyedEntriesHitAndPinAllRoots) {
  const Qubit n = 6;
  dd::Package p{n};
  PlanCache cache{8};
  std::vector<dd::mEdge> run;
  for (const auto& op : randomDiagonalOps(n, 3, 7)) {
    run.push_back(p.makeGateDD(op));
    p.incRef(run.back());
  }
  bool hit = true;
  const auto plan = cache.getSharedRun(p, run, n, 2, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(plan->fusedGates, 3u);
  const auto again = cache.getSharedRun(p, run, n, 2, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(plan.get(), again.get());
  // A shorter prefix of the same run is a different plan, not a hit.
  (void)cache.getSharedRun(p, std::span{run.data(), 2}, n, 2, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);

  // The cache pinned every gate root of the fused run: after dropping our
  // own references and collecting, the entry must still replay correctly.
  for (const dd::mEdge& m : run) {
    p.decRef(m);
  }
  p.garbageCollect(true);
  const auto pinned = cache.getSharedRun(p, run, n, 2, &hit);
  EXPECT_TRUE(hit);
  const auto v = test::randomState(n, 77);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(in.size());
  replayPlan(*pinned, in, out);
  test::DenseVector want = v;
  for (const dd::mEdge& m : run) {
    AlignedVector<Complex> v2(want.begin(), want.end());
    AlignedVector<Complex> w2(v2.size());
    dmavRecursive(m, n, v2, w2, 1);
    want.assign(w2.begin(), w2.end());
  }
  EXPECT_STATE_NEAR(out, want, 1e-12);
  cache.clear();
}

// ---------------------------------------------------------------------------
// Cache-blocked dense gates (DenseBlock)
// ---------------------------------------------------------------------------

TEST(DenseBlockPlan, TwoQubitFusedGateMatchesRecursive) {
  // H(7)*CX(7->6)*H(6) fused into one DD: both top qubits active, every
  // level below passive, so the probe must fire with k=2 and the compiled
  // tile replay must match the recursive baseline.
  const Qubit n = 8;
  dd::Package p{n};
  dd::mEdge m = p.makeGateDD({qc::GateKind::H, 6, {}, {}});
  m = p.multiply(p.makeGateDD({qc::GateKind::X, 6, {7}, {}}), m);
  m = p.multiply(p.makeGateDD({qc::GateKind::H, 7, {}, {}}), m);
  p.incRef(m);
  const auto info = denseBlockProbe(m, n);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->k, 2u);
  EXPECT_EQ(info->qubits[0], 6);
  EXPECT_EQ(info->qubits[1], 7);
  for (const unsigned threads : {1u, 4u}) {
    const DmavPlan plan = compileDmavPlan(m, n, threads, PlanMode::Row, &p);
    EXPECT_EQ(plan.denseK, 2u);
    EXPECT_TRUE(plan.fullyExclusive());
    EXPECT_GT(plan.opCount(), 0u);
    const auto v = test::randomState(n, 300 + threads);
    AlignedVector<Complex> v1(v.begin(), v.end());
    AlignedVector<Complex> w1(v1.size());
    replayPlan(plan, v1, w1);
    AlignedVector<Complex> v2(v.begin(), v.end());
    AlignedVector<Complex> w2(v2.size());
    dmavRecursive(m, n, v2, w2, threads);
    EXPECT_STATE_NEAR(w1, w2, 1e-12);
  }
  p.decRef(m);
}

TEST(DenseBlockPlan, ThreeQubitFusedGateMatchesRecursive) {
  const Qubit n = 9;
  dd::Package p{n};
  dd::mEdge m = p.makeGateDD({qc::GateKind::H, 6, {}, {}});
  m = p.multiply(p.makeGateDD({qc::GateKind::RY, 7, {}, {0.8}}), m);
  m = p.multiply(p.makeGateDD({qc::GateKind::X, 6, {8}, {}}), m);
  m = p.multiply(p.makeGateDD({qc::GateKind::H, 8, {}, {}}), m);
  p.incRef(m);
  const auto info = denseBlockProbe(m, n);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->k, 3u);
  const DmavPlan plan = compileDmavPlan(m, n, 4, PlanMode::Row, &p);
  EXPECT_EQ(plan.denseK, 3u);
  const auto v = test::randomState(n, 301);
  AlignedVector<Complex> v1(v.begin(), v.end());
  AlignedVector<Complex> w1(v1.size());
  replayPlan(plan, v1, w1);
  AlignedVector<Complex> v2(v.begin(), v.end());
  AlignedVector<Complex> w2(v2.size());
  dmavRecursive(m, n, v2, w2, 4);
  EXPECT_STATE_NEAR(w1, w2, 1e-12);
  p.decRef(m);
}

TEST(DenseBlockPlan, ProbeRejectsUnsuitableGates) {
  const Qubit n = 8;
  dd::Package p{n};
  // Single-qubit dense gate: k=1 < 2.
  EXPECT_FALSE(
      denseBlockProbe(p.makeGateDD({qc::GateKind::H, 7, {}, {}}), n)
          .has_value());
  // Diagonal two-qubit gate: no row has two nonzeros, DiagScale wins.
  dd::mEdge diag = p.makeGateDD({qc::GateKind::RZ, 7, {}, {0.3}});
  diag = p.multiply(p.makeGateDD({qc::GateKind::RZ, 6, {}, {0.7}}), diag);
  EXPECT_FALSE(denseBlockProbe(diag, n).has_value());
  // Dense pair on low qubits: the contiguous run (2^q0) is shorter than
  // kMinDenseRunLen, so the tile sweep would be gather-bound.
  dd::mEdge low = p.makeGateDD({qc::GateKind::H, 1, {}, {}});
  low = p.multiply(p.makeGateDD({qc::GateKind::X, 1, {2}, {}}), low);
  low = p.multiply(p.makeGateDD({qc::GateKind::H, 2, {}, {}}), low);
  EXPECT_FALSE(denseBlockProbe(low, n).has_value());
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, HitsOnRepeatedGateMissesOnNew) {
  const Qubit n = 6;
  dd::Package p{n};
  PlanCache cache{8};
  const dd::mEdge rz = p.makeGateDD({qc::GateKind::RZ, 2, {}, {0.5}});
  const dd::mEdge h = p.makeGateDD({qc::GateKind::H, 2, {}, {}});
  p.incRef(rz);
  p.incRef(h);

  const DmavPlan& first = cache.get(p, rz, n, 4, PlanMode::Row);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  const DmavPlan& again = cache.get(p, rz, n, 4, PlanMode::Row);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(&first, &again);  // same cached object

  cache.get(p, h, n, 4, PlanMode::Row);
  EXPECT_EQ(cache.stats().misses, 2u);
  // Different thread count / mode / ident flag are different plans.
  cache.get(p, rz, n, 2, PlanMode::Row);
  cache.get(p, rz, n, 4, PlanMode::Cached);
  setIdentFastPath(false);
  cache.get(p, rz, n, 4, PlanMode::Row);
  setIdentFastPath(true);
  EXPECT_EQ(cache.stats().misses, 5u);
  EXPECT_EQ(cache.size(), 5u);
  cache.clear();
  p.decRef(rz);
  p.decRef(h);
}

TEST(PlanCacheTest, LruEvictsOldestAtCapacity) {
  const Qubit n = 5;
  dd::Package p{n};
  PlanCache cache{2};
  const dd::mEdge a = p.makeGateDD({qc::GateKind::RZ, 0, {}, {0.1}});
  const dd::mEdge b = p.makeGateDD({qc::GateKind::RZ, 1, {}, {0.2}});
  const dd::mEdge c = p.makeGateDD({qc::GateKind::RZ, 2, {}, {0.3}});
  p.incRef(a);
  p.incRef(b);
  p.incRef(c);
  cache.get(p, a, n, 1, PlanMode::Row);
  cache.get(p, b, n, 1, PlanMode::Row);
  cache.get(p, a, n, 1, PlanMode::Row);  // touch a: b becomes oldest
  cache.get(p, c, n, 1, PlanMode::Row);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  cache.get(p, a, n, 1, PlanMode::Row);  // still cached
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.get(p, b, n, 1, PlanMode::Row);  // recompiled
  EXPECT_EQ(cache.stats().compiles, 4u);
  cache.clear();
  p.decRef(a);
  p.decRef(b);
  p.decRef(c);
}

TEST(PlanCacheTest, PinnedRootsSurviveGarbageCollection) {
  const Qubit n = 6;
  dd::Package p{n};
  PlanCache cache{4};
  const dd::mEdge m = p.makeGateDD({qc::GateKind::RY, 3, {}, {0.7}});
  p.incRef(m);
  cache.get(p, m, n, 2, PlanMode::Row);
  p.decRef(m);  // the cache's pin is now the only reference
  p.garbageCollect(true);
  // The pinned root (and its subtree) must not have been recycled: a lookup
  // still hits and the plan still replays correctly.
  const DmavPlan& plan = cache.get(p, m, n, 2, PlanMode::Row);
  EXPECT_EQ(cache.stats().hits, 1u);
  const auto v = test::randomState(n, 96);
  EXPECT_STATE_NEAR(
      replayRow(plan, v),
      test::denseApply(
          test::denseOperator({qc::GateKind::RY, 3, {}, {0.7}}, n), v),
      1e-12);
  cache.clear();
}

TEST(PlanCacheTest, GenerationInvalidatesStandalonePlans) {
  const Qubit n = 6;
  dd::Package p{n};
  const dd::mEdge keep = p.makeGateDD({qc::GateKind::RZ, 1, {}, {0.4}});
  p.incRef(keep);
  const DmavPlan plan = compileDmavPlan(keep, n, 2, PlanMode::Row, &p);
  EXPECT_TRUE(plan.validFor(p));
  // Build an unreferenced gate DD and collect it: matrix nodes are released
  // back to the pool, so the generation advances and any standalone plan
  // keyed by raw pointers must report itself stale.
  (void)p.makeGateDD({qc::GateKind::U3, 4, {}, {0.3, 0.6, 0.9}});
  p.garbageCollect(true);
  EXPECT_FALSE(plan.validFor(p));
  p.decRef(keep);
}

TEST(PlanCacheTest, ZeroCapacityCompilesEveryTime) {
  const Qubit n = 5;
  dd::Package p{n};
  PlanCache cache{0};
  const dd::mEdge m = p.makeGateDD({qc::GateKind::H, 2, {}, {}});
  p.incRef(m);
  cache.get(p, m, n, 2, PlanMode::Row);
  cache.get(p, m, n, 2, PlanMode::Row);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().compiles, 2u);
  EXPECT_EQ(cache.size(), 0u);
  p.decRef(m);
}

}  // namespace
}  // namespace fdd::flat
