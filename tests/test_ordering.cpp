// Variable ordering: the scored static pass (engine/ordering), the
// adjacent-level swap primitive and greedy sifting (dd/reorder), the dynamic
// reorder trick inside FlatDD, and the plan-cache ordering-epoch guard.
// Equivalence is always judged in logical qubit labels — the whole point of
// the subsystem is that callers never see internal order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dd/package.hpp"
#include "dd/reorder.hpp"
#include "engine/ordering.hpp"
#include "engine/simulation_engine.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "flatdd/plan_cache.hpp"
#include "helpers.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd {
namespace {

using test::denseSimulate;

/// H on each of the first n/2 qubits, then CX(i, i+n/2): every interacting
/// pair sits exactly n/2 levels apart in the input labeling, so the identity
/// order pays ~2^(n/2) nodes while the paired order stays O(n).
qc::Circuit bellCrossed(Qubit n) {
  qc::Circuit c{n, "bell-crossed"};
  const Qubit half = n / 2;
  for (Qubit i = 0; i < half; ++i) {
    c.h(i);
    c.cx(i, static_cast<Qubit>(i + half));
  }
  return c;
}

// ---- QubitOrdering ---------------------------------------------------------

TEST(QubitOrdering, IdentityMapsEverythingToItself) {
  const auto ord = engine::QubitOrdering::identity(5);
  EXPECT_TRUE(ord.isIdentity());
  EXPECT_EQ(ord.numQubits(), 5);
  for (Index i = 0; i < 32; ++i) {
    EXPECT_EQ(ord.mapIndex(i), i);
    EXPECT_EQ(ord.unmapIndex(i), i);
  }
}

TEST(QubitOrdering, MapUnmapRoundTrips) {
  const auto ord =
      engine::QubitOrdering::fromQubitAtLevel({2, 0, 3, 1});  // level -> qubit
  EXPECT_FALSE(ord.isIdentity());
  for (Index i = 0; i < 16; ++i) {
    EXPECT_EQ(ord.unmapIndex(ord.mapIndex(i)), i);
    EXPECT_EQ(ord.mapIndex(ord.unmapIndex(i)), i);
  }
  // Qubit 2 lives at level 0: logical |..1.. on bit 2> -> internal bit 0.
  EXPECT_EQ(ord.mapIndex(Index{1} << 2), Index{1});
}

TEST(QubitOrdering, MapOperationRelabelsAndKeepsControlsSorted) {
  const auto ord = engine::QubitOrdering::fromQubitAtLevel({3, 2, 1, 0});
  const qc::Operation op{qc::GateKind::X, 0, {2, 3}, {}};
  const qc::Operation mapped = ord.mapOperation(op);
  EXPECT_EQ(mapped.target, 3);  // qubit 0 sits at level 3
  ASSERT_EQ(mapped.controls.size(), 2u);
  EXPECT_TRUE(std::is_sorted(mapped.controls.begin(), mapped.controls.end()));
  EXPECT_EQ(mapped.controls[0], 0);  // qubit 3 -> level 0
  EXPECT_EQ(mapped.controls[1], 1);  // qubit 2 -> level 1
}

// ---- scoreOrdering ---------------------------------------------------------

TEST(ScoreOrdering, BellCrossedPairsBecomeAdjacent) {
  const Qubit n = 8;
  const auto ord = engine::scoreOrdering(bellCrossed(n));
  ASSERT_EQ(ord.numQubits(), n);
  // Each (i, i+4) pair interacts only with itself — the scored order must
  // put the partners on adjacent levels.
  for (Qubit i = 0; i < n / 2; ++i) {
    const int a = ord.levelOfQubit[static_cast<std::size_t>(i)];
    const int b = ord.levelOfQubit[static_cast<std::size_t>(i + n / 2)];
    EXPECT_EQ(std::abs(a - b), 1) << "pair (" << int(i) << "," << int(i + n / 2)
                                  << ") split across levels " << a << "," << b;
  }
}

TEST(ScoreOrdering, GhzChainStaysConnected) {
  // GHZ couples q0-q1, q1-q2, ...: the chain must not be torn apart — every
  // qubit ends up adjacent to at least one chain neighbour.
  const Qubit n = 6;
  qc::Circuit c{n, "ghz"};
  c.h(0);
  for (Qubit i = 1; i < n; ++i) {
    c.cx(static_cast<Qubit>(i - 1), i);
  }
  const auto ord = engine::scoreOrdering(c);
  for (Qubit q = 0; q < n; ++q) {
    const int level = ord.levelOfQubit[static_cast<std::size_t>(q)];
    bool adjacentNeighbour = false;
    for (const int d : {-1, 1}) {
      const int neighbour = static_cast<int>(q) + d;
      if (neighbour < 0 || neighbour >= static_cast<int>(n)) {
        continue;
      }
      if (std::abs(ord.levelOfQubit[static_cast<std::size_t>(neighbour)] -
                   level) == 1) {
        adjacentNeighbour = true;
      }
    }
    EXPECT_TRUE(adjacentNeighbour) << "qubit " << int(q);
  }
}

TEST(ScoreOrdering, NoTwoQubitGatesMeansIdentity) {
  qc::Circuit c{4, "singles"};
  c.h(0);
  c.t(3);
  EXPECT_TRUE(engine::scoreOrdering(c).isIdentity());
}

// ---- adjacent-level swap primitive ----------------------------------------

TEST(SwapAdjacent, MatchesBitSwappedAmplitudes) {
  const Qubit n = 5;
  sim::DDSimulator sim{n};
  sim.simulate(test::randomCircuit(n, 40, 11));
  auto& pkg = sim.package();
  const auto before = pkg.toArray(sim.state());
  for (Qubit lower = 0; lower + 1 < n; ++lower) {
    const dd::vEdge swapped = pkg.swapAdjacent(sim.state(), lower);
    EXPECT_TRUE(pkg.checkCanonical());
    const auto after = pkg.toArray(swapped);
    for (Index i = 0; i < before.size(); ++i) {
      const Index lo = (i >> lower) & 1;
      const Index hi = (i >> (lower + 1)) & 1;
      const Index j = (i & ~((Index{3}) << lower)) | (hi << lower) |
                      (lo << (lower + 1));
      EXPECT_LT(std::abs(before[i] - after[j]), 1e-12)
          << "level " << int(lower) << " index " << i;
    }
  }
}

TEST(SwapAdjacent, IsAnInvolutionUnderParallelDDThreads) {
  const Qubit n = 6;
  sim::DDSimulator sim{n};
  sim.setThreads(8);  // swaps at a quiescent point over the concurrent tables
  sim.simulate(test::randomCircuit(n, 60, 23));
  auto& pkg = sim.package();
  const auto reference = pkg.toArray(sim.state());
  for (Qubit lower = 0; lower + 1 < n; ++lower) {
    const dd::vEdge once = pkg.swapAdjacent(sim.state(), lower);
    const dd::vEdge twice = pkg.swapAdjacent(once, lower);
    EXPECT_TRUE(pkg.checkCanonical());
    const auto roundTrip = pkg.toArray(twice);
    for (Index i = 0; i < reference.size(); ++i) {
      EXPECT_LT(std::abs(reference[i] - roundTrip[i]), 1e-12);
    }
  }
}

// ---- greedy sifting --------------------------------------------------------

TEST(ReorderGreedy, ShrinksBellCrossedAndPreservesTheState) {
  const Qubit n = 10;
  sim::DDSimulator sim{n};
  sim.simulate(bellCrossed(n));
  auto& pkg = sim.package();
  const auto before = pkg.toArray(sim.state());
  const std::size_t nodesBefore = pkg.nodeCount(sim.state());

  const dd::ReorderResult r = dd::reorderGreedy(pkg, sim.state());
  EXPECT_EQ(r.nodesBefore, nodesBefore);
  EXPECT_LT(r.nodesAfter, nodesBefore / 2) << "identity order should be far "
                                              "from optimal for bell-crossed";
  EXPECT_FALSE(r.swaps.empty());

  // Replay the accepted swap list on the qubit labels and check the
  // reordered DD holds exactly the bit-permuted amplitudes.
  std::vector<Qubit> qubitAtLevel(n);
  for (Qubit q = 0; q < n; ++q) {
    qubitAtLevel[static_cast<std::size_t>(q)] = q;
  }
  for (const Qubit lower : r.swaps) {
    std::swap(qubitAtLevel[static_cast<std::size_t>(lower)],
              qubitAtLevel[static_cast<std::size_t>(lower) + 1]);
  }
  std::vector<Qubit> levelOfQubit(n);
  for (std::size_t l = 0; l < qubitAtLevel.size(); ++l) {
    levelOfQubit[static_cast<std::size_t>(qubitAtLevel[l])] =
        static_cast<Qubit>(l);
  }
  const auto after = pkg.toArray(r.state);
  for (Index i = 0; i < before.size(); ++i) {
    Index mapped = 0;
    for (std::size_t q = 0; q < levelOfQubit.size(); ++q) {
      mapped |= ((i >> q) & 1) << levelOfQubit[q];
    }
    EXPECT_LT(std::abs(before[i] - after[mapped]), 1e-12) << "index " << i;
  }
  EXPECT_TRUE(pkg.checkCanonical());
}

// ---- static ordering pass, cross-backend equivalence -----------------------

TEST(OrderingPass, ReportsThePermutationAndKeepsAmplitudes) {
  const Qubit n = 8;
  const qc::Circuit circuit = bellCrossed(n);
  engine::EngineOptions plain;
  plain.recordPerGate = true;
  engine::EngineOptions ordered;
  ordered.passes = {"ordering"};
  ordered.recordPerGate = true;

  engine::SimulationEngine reference{plain};
  const engine::RunReport refReport = reference.run("dd", circuit);
  const auto refState = reference.backend().stateVector();

  engine::SimulationEngine scored{ordered};
  const engine::RunReport report = scored.run("dd", circuit);
  ASSERT_EQ(report.ordering.size(), static_cast<std::size_t>(n));
  std::set<Qubit> seen(report.ordering.begin(), report.ordering.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n)) << "not a permutation";
  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_EQ(report.passes[0].name, "ordering");
  EXPECT_FALSE(report.passes[0].note.empty());

  // The scored order must crush the peak *state* DD size on this family.
  // (report.peakDDSize is the package-wide vNode high-water mark, which also
  // counts gate DDs and multiply intermediates; the per-gate trace records the
  // state DD alone, which is what variable ordering actually shapes.)
  const auto peakStateNodes = [](const engine::RunReport& r) {
    std::size_t peak = 0;
    for (const auto& g : r.perGate) {
      peak = std::max(peak, g.ddSize);
    }
    return peak;
  };
  EXPECT_LT(peakStateNodes(report) * 3, peakStateNodes(refReport));
  // ...without changing anything the caller can observe.
  EXPECT_STATE_NEAR(scored.backend().stateVector(), refState, 1e-12);
  for (const Index probe : {Index{0}, Index{5}, (Index{1} << n) - 1}) {
    EXPECT_LT(std::abs(scored.backend().amplitude(probe) -
                       reference.backend().amplitude(probe)),
              1e-12);
  }
}

TEST(OrderingPass, RandomizedEquivalenceAcrossBackends) {
  const Qubit n = 6;
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    const qc::Circuit circuit = test::randomCircuit(n, 50, seed);
    const auto dense = denseSimulate(circuit);
    for (const char* backend : {"dd", "array", "flatdd"}) {
      engine::EngineOptions eo;
      eo.threads = 2;
      eo.passes = {"ordering"};
      // Make flatdd actually convert mid-circuit so the permuted flat phase
      // is exercised, not just the DD phase.
      eo.ewmaWarmupGates = 2;
      eo.ewmaMinDDSize = 1;
      engine::SimulationEngine engine{eo};
      engine.run(backend, circuit);
      EXPECT_STATE_NEAR(engine.backend().stateVector(), dense, 1e-10)
          << backend << " seed " << seed;
    }
  }
}

TEST(OrderingPass, SamplesLandOnLogicalSupport) {
  // GHZ support is |0...0> and |1...1> in *logical* labels; a missing
  // inverse mapping would scatter samples across permuted bit patterns.
  const Qubit n = 7;
  qc::Circuit c{n, "ghz"};
  c.h(0);
  for (Qubit i = 1; i < n; ++i) {
    c.cx(static_cast<Qubit>(i - 1), i);
  }
  engine::EngineOptions eo;
  eo.passes = {"ordering"};
  engine::SimulationEngine engine{eo};
  engine.run("dd", c);
  Xoshiro256 rng{42};
  const Index all = (Index{1} << n) - 1;
  for (const Index s : engine.backend().sample(256, rng)) {
    EXPECT_TRUE(s == 0 || s == all) << "sample " << s;
  }
}

// ---- dynamic reorder inside FlatDD ----------------------------------------

TEST(DynamicReorder, FlatDDStaysCorrectAndCountsReorders) {
  const Qubit n = 8;
  const qc::Circuit circuit = bellCrossed(n);
  const auto dense = denseSimulate(circuit);

  flat::FlatDDOptions o;
  o.threads = 2;
  o.ddReorder = true;
  o.reorderMinNodes = 4;   // tiny DDs still qualify
  o.warmupGates = 2;       // let the EWMA fire early
  o.minDDSize = 1;
  o.epsilon = 1.01;
  flat::FlatDDSimulator sim{n, o};
  sim.simulate(circuit);

  EXPECT_GE(sim.stats().reorderCount, 1u)
      << "bell-crossed growth should have triggered at least one reorder";
  EXPECT_GT(sim.stats().reorderSwaps, 0u);
  EXPECT_LT(sim.stats().ddSizePostReorder, sim.stats().ddSizePreReorder);
  EXPECT_STATE_NEAR(sim.stateVector(), dense, 1e-12);
  for (const Index probe : {Index{0}, Index{3}, (Index{1} << n) - 1}) {
    EXPECT_LT(std::abs(sim.amplitude(probe) - dense[probe]), 1e-12);
  }
}

TEST(DynamicReorder, StreamingAndRandomCircuitsMatchDenseReference) {
  const Qubit n = 6;
  for (const std::uint64_t seed : {5u, 31u}) {
    const qc::Circuit circuit = test::randomCircuit(n, 60, seed);
    const auto dense = denseSimulate(circuit);
    flat::FlatDDOptions o;
    o.threads = 2;
    o.ddReorder = true;
    o.reorderMinNodes = 2;
    o.warmupGates = 2;
    o.minDDSize = 1;
    flat::FlatDDSimulator sim{n, o};
    for (const auto& op : circuit) {
      sim.applyOperation(op);  // streaming path remaps per gate
    }
    EXPECT_STATE_NEAR(sim.stateVector(), dense, 1e-10) << "seed " << seed;
  }
}

TEST(DynamicReorder, SampleUnmapsToLogicalLabels) {
  const Qubit n = 8;
  flat::FlatDDOptions o;
  o.ddReorder = true;
  o.reorderMinNodes = 4;
  o.warmupGates = 2;
  o.minDDSize = 1;
  o.epsilon = 1.01;
  flat::FlatDDSimulator sim{n, o};
  const qc::Circuit circuit = bellCrossed(n);
  sim.simulate(circuit);
  const auto dense = denseSimulate(circuit);
  Xoshiro256 rng{7};
  for (const Index s : sim.sample(128, rng)) {
    EXPECT_GT(std::abs(dense[s]), 1e-9) << "sampled zero-amplitude state " << s;
  }
}

TEST(DynamicReorder, ForcedConversionPointDisablesTheTrick) {
  const Qubit n = 6;
  flat::FlatDDOptions o;
  o.ddReorder = true;
  o.reorderMinNodes = 1;
  o.forceConversionAtGate = 5;
  flat::FlatDDSimulator sim{n, o};
  sim.simulate(test::randomCircuit(n, 30, 9));
  EXPECT_EQ(sim.stats().reorderCount, 0u);
  EXPECT_TRUE(sim.stats().converted);
  EXPECT_EQ(sim.stats().conversionGateIndex, 5u);
}

// ---- plan-cache ordering epoch --------------------------------------------

TEST(PlanCacheEpoch, BumpingTheEpochForcesRecompile) {
  const Qubit n = 4;
  dd::Package pkg{n};
  const dd::mEdge gate = pkg.makeGateDD(qc::Operation{qc::GateKind::H, 1, {}, {}});
  pkg.incRef(gate);

  flat::PlanCache cache{8};
  bool wasHit = true;
  const auto first =
      cache.getShared(pkg, gate, n, 1, flat::PlanMode::Row, &wasHit);
  EXPECT_FALSE(wasHit);
  EXPECT_TRUE(first->validFor(pkg));

  (void)cache.getShared(pkg, gate, n, 1, flat::PlanMode::Row, &wasHit);
  EXPECT_TRUE(wasHit) << "same epoch must hit";

  pkg.bumpOrderingEpoch();
  EXPECT_FALSE(first->validFor(pkg))
      << "plans from an earlier ordering epoch must be invalid";
  const auto second =
      cache.getShared(pkg, gate, n, 1, flat::PlanMode::Row, &wasHit);
  EXPECT_FALSE(wasHit) << "new epoch must recompile, not alias the old key";
  EXPECT_TRUE(second->validFor(pkg));
  pkg.decRef(gate);
}

// ---- report round-trip -----------------------------------------------------

TEST(OrderingReport, JsonAndCsvCarryTheNewFields) {
  engine::RunReport r;
  r.backend = "flatdd";
  r.ordering = {2, 0, 1};
  r.reorderCount = 2;
  r.reorderSwaps = 5;
  r.ddSizePreReorder = 900;
  r.ddSizePostReorder = 120;
  r.reorderSeconds = 0.25;
  const engine::RunReport parsed = engine::RunReport::fromJson(r.toJson());
  EXPECT_EQ(parsed, r);
  const std::string csv = r.toCsv();
  EXPECT_NE(csv.find("reorder_count,2"), std::string::npos);
  EXPECT_NE(csv.find("dd_size_pre_reorder,900"), std::string::npos);
  EXPECT_NE(csv.find("ordering,2 0 1"), std::string::npos);
}

}  // namespace
}  // namespace fdd
