// Shared gtest main. The global pool defaults to the hardware concurrency
// (or FLATDD_THREADS), but the test suite exercises fixed thread counts up
// to 16 — clampDmavThreads caps at the pool size, so on small CI machines
// those paths would silently degrade to fewer threads. Provision 16 logical
// workers up front; the pool tolerates oversubscription.

#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  fdd::par::resizePool(16);
  return RUN_ALL_TESTS();
}
