// Unit tests for src/common: bit tricks, PRNG, aligned storage, RSS probes.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "common/aligned.hpp"
#include "common/bits.hpp"
#include "common/prng.hpp"
#include "common/rss.hpp"
#include "common/timing.hpp"
#include "common/types.hpp"

namespace fdd {
namespace {

TEST(Bits, IsPowerOfTwo) {
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
  EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(Bits, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(4), 2u);
  EXPECT_EQ(ilog2(1ULL << 33), 33u);
}

TEST(Bits, FloorPowerOfTwo) {
  EXPECT_EQ(floorPowerOfTwo(1), 1u);
  EXPECT_EQ(floorPowerOfTwo(5), 4u);
  EXPECT_EQ(floorPowerOfTwo(8), 8u);
  EXPECT_EQ(floorPowerOfTwo(1023), 512u);
}

TEST(Bits, InsertBitBasics) {
  EXPECT_EQ(insertBit(0b101, 1), 0b1001u);
  EXPECT_EQ(insertBit(0b11, 0), 0b110u);
  EXPECT_EQ(insertBit(0, 5), 0u);
}

TEST(Bits, InsertBitEnumeratesPairsExactlyOnce) {
  // For every qubit position, {insertBit(g,k), insertBit(g,k)|bit} must
  // partition [0, 2^n) into disjoint pairs.
  const Qubit n = 6;
  for (Qubit k = 0; k < n; ++k) {
    std::set<Index> seen;
    for (Index g = 0; g < (Index{1} << (n - 1)); ++g) {
      const Index i0 = insertBit(g, k);
      const Index i1 = i0 | (Index{1} << k);
      EXPECT_FALSE(testBit(i0, k));
      EXPECT_TRUE(testBit(i1, k));
      EXPECT_TRUE(seen.insert(i0).second);
      EXPECT_TRUE(seen.insert(i1).second);
    }
    EXPECT_EQ(seen.size(), Index{1} << n);
  }
}

TEST(Bits, InsertTwoBits) {
  const Qubit p0 = 1;
  const Qubit p1 = 3;
  std::set<Index> seen;
  for (Index g = 0; g < (1u << 4); ++g) {
    const Index i = insertTwoBits(g, p0, p1);
    EXPECT_FALSE(testBit(i, p0));
    EXPECT_FALSE(testBit(i, p1));
    EXPECT_TRUE(seen.insert(i).second);
  }
}

TEST(Bits, SetClearTest) {
  Index x = 0;
  x = setBit(x, 3);
  EXPECT_TRUE(testBit(x, 3));
  x = clearBit(x, 3);
  EXPECT_FALSE(testBit(x, 3));
}

TEST(Types, Norm2MatchesStdNorm) {
  const Complex z{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(z), 25.0);
}

TEST(Types, ApproxEqualRespectsTolerance) {
  EXPECT_TRUE(approxEqual({1.0, 0.0}, {1.0 + 1e-13, 0.0}));
  EXPECT_FALSE(approxEqual({1.0, 0.0}, {1.0 + 1e-9, 0.0}));
  EXPECT_TRUE(approxZero({1e-13, -1e-13}));
  EXPECT_TRUE(approxOne({1.0, 0.0}));
  EXPECT_FALSE(approxOne({0.0, 1.0}));
}

TEST(Prng, Deterministic) {
  Xoshiro256 a{42};
  Xoshiro256 b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a{1};
  Xoshiro256 b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a() == b());
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, UniformInRange) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 1000; ++i) {
    const fp u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const fp v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Prng, UniformMeanIsCentered) {
  Xoshiro256 rng{11};
  fp sum = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / samples, 0.5, 0.02);
}

TEST(Prng, WorksWithStdDistributions) {
  Xoshiro256 rng{3};
  std::uniform_int_distribution<int> dist{0, 9};
  std::set<int> values;
  for (int i = 0; i < 200; ++i) {
    values.insert(dist(rng));
  }
  EXPECT_EQ(values.size(), 10u);
}

TEST(Aligned, VectorIsAligned) {
  AlignedVector<Complex> v(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u);
}

TEST(Aligned, AllocatorEquality) {
  AlignedAllocator<double> a;
  AlignedAllocator<int> b;
  EXPECT_TRUE(a == b);
}

TEST(Aligned, ZeroSizedAllocation) {
  AlignedAllocator<double> a;
  EXPECT_EQ(a.allocate(0), nullptr);
}

TEST(Timing, StopwatchMonotone) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

TEST(Rss, ReportsPlausibleValues) {
  const std::size_t current = currentRSS();
  const std::size_t peak = peakRSS();
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak, current / 2);  // peak >= current modulo measurement jitter
}

TEST(Rss, GrowsAfterLargeAllocation) {
  const std::size_t before = currentRSS();
  std::vector<char> big(64 * 1024 * 1024, 1);
  // Touch every page so it becomes resident.
  std::size_t sum = 0;
  for (std::size_t i = 0; i < big.size(); i += 4096) {
    sum += static_cast<std::size_t>(big[i]);
  }
  ASSERT_GT(sum, 0u);
  EXPECT_GT(currentRSS(), before + 32 * 1024 * 1024);
}

}  // namespace
}  // namespace fdd
