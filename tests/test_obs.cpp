// Observability runtime (src/obs): trace-ring wraparound, concurrent
// writers through the thread pool, Chrome-trace JSON well-formedness,
// counter-registry atomicity, the EWMA decision log against an independent
// Eq. 4 recompute, and the disabled-mode no-op guarantees.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "flatdd/ewma.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace fdd {
namespace {

#if FDD_OBS_ENABLED

/// Every test starts recording from a clean slate and leaves obs off so the
/// runtime switch never leaks across tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::setEnabled(true);
    obs::clearTrace();
    obs::Registry::instance().reset();
  }
  void TearDown() override {
    obs::setEnabled(false);
    obs::clearTrace();
    obs::Registry::instance().reset();
  }
};

/// Parses an exported trace and returns the events (objects) named `name`.
std::vector<const json::Object*> eventsNamed(const json::Value& root,
                                             std::string_view name) {
  std::vector<const json::Object*> out;
  const json::Object* top = root.object();
  if (top == nullptr) {
    return out;
  }
  const auto it = top->find("traceEvents");
  const json::Array* events =
      it != top->end() ? it->second.array() : nullptr;
  if (events == nullptr) {
    return out;
  }
  for (const json::Value& entry : *events) {
    if (const json::Object* ev = entry.object()) {
      if (const auto nameIt = ev->find("name"); nameIt != ev->end()) {
        if (const std::string* s = nameIt->second.string(); s && *s == name) {
          out.push_back(ev);
        }
      }
    }
  }
  return out;
}

double num(const json::Object& o, const char* key) {
  const auto it = o.find(key);
  if (it == o.end()) {
    return -1;
  }
  const double* d = it->second.number();
  return d != nullptr ? *d : -1;
}

std::string str(const json::Object& o, const char* key) {
  const auto it = o.find(key);
  if (it == o.end()) {
    return {};
  }
  const std::string* s = it->second.string();
  return s != nullptr ? *s : std::string{};
}

// ---------------------------------------------------------------------------
// Trace rings
// ---------------------------------------------------------------------------

TEST_F(ObsTest, RingWraparoundKeepsNewestEvents) {
  constexpr std::size_t kCapacity = 64;
  constexpr std::size_t kWritten = 200;
  obs::setRingCapacity(kCapacity);
  // A fresh thread gets a fresh ring at the reduced capacity (existing rings
  // keep their size, so the main thread's ring is unaffected).
  std::thread writer([] {
    obs::setThreadName("obs.wrap-test");
    for (std::size_t i = 0; i < kWritten; ++i) {
      obs::recordSpan("wrap.span", i * 10, 5);
    }
  });
  writer.join();
  obs::setRingCapacity(16384);  // restore the default for later tests

  EXPECT_GE(obs::droppedEvents(), kWritten - kCapacity);

  const json::Value root = json::parse(obs::exportChromeTrace());
  const auto spans = eventsNamed(root, "wrap.span");
  ASSERT_EQ(spans.size(), kCapacity);
  // Flight-recorder semantics: the survivors are exactly the newest 64, so
  // the earliest exported start is event (kWritten - kCapacity). ts is µs.
  double minTs = 1e300;
  for (const json::Object* ev : spans) {
    minTs = std::min(minTs, num(*ev, "ts"));
  }
  EXPECT_DOUBLE_EQ(minTs,
                   static_cast<double>((kWritten - kCapacity) * 10) / 1e3);
}

TEST_F(ObsTest, ConcurrentPoolWritersProduceOneRingEach) {
  constexpr unsigned kWorkers = 8;
  constexpr int kPerWorker = 50;
  par::globalPool().run(kWorkers, [](unsigned) {
    for (int k = 0; k < kPerWorker; ++k) {
      obs::recordSpan("pool.span", obs::nowNs(), 1);
    }
  });

  const json::Value root = json::parse(obs::exportChromeTrace());
  const auto spans = eventsNamed(root, "pool.span");
  ASSERT_EQ(spans.size(), kWorkers * kPerWorker);  // nothing lost or torn
  std::set<double> tids;
  for (const json::Object* ev : spans) {
    tids.insert(num(*ev, "tid"));
  }
  EXPECT_GE(tids.size(), 2u);  // events really came from multiple threads
}

TEST_F(ObsTest, ExportIsValidChromeTraceJson) {
  obs::recordSpan("json.span", 1000, 500);
  obs::counterEvent("json.counter", 42.5);
  obs::instantEvent("json.instant", 1.5, 3.0, 7);

  const std::string text = obs::exportChromeTrace();
  const json::Value root = json::parse(text);  // throws on malformed output
  const json::Object* top = root.object();
  ASSERT_NE(top, nullptr);
  EXPECT_NE(top->find("traceEvents"), top->end());
  EXPECT_NE(top->find("displayTimeUnit"), top->end());

  const auto spans = eventsNamed(root, "json.span");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(str(*spans[0], "ph"), "X");
  EXPECT_DOUBLE_EQ(num(*spans[0], "ts"), 1.0);   // 1000 ns -> 1 µs
  EXPECT_DOUBLE_EQ(num(*spans[0], "dur"), 0.5);  // 500 ns -> 0.5 µs
  EXPECT_DOUBLE_EQ(num(*spans[0], "pid"), 1.0);

  const auto counters = eventsNamed(root, "json.counter");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(str(*counters[0], "ph"), "C");
  const json::Object* args = counters[0]->find("args")->second.object();
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(num(*args, "value"), 42.5);

  const auto instants = eventsNamed(root, "json.instant");
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(str(*instants[0], "ph"), "i");
  EXPECT_EQ(str(*instants[0], "s"), "t");
  args = instants[0]->find("args")->second.object();
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(num(*args, "value"), 1.5);
  EXPECT_DOUBLE_EQ(num(*args, "value2"), 3.0);
  EXPECT_DOUBLE_EQ(num(*args, "aux"), 7.0);

  // Thread-name metadata is present for the recording (main) thread.
  bool foundThreadName = false;
  for (const json::Object* ev : eventsNamed(root, "thread_name")) {
    foundThreadName |= str(*ev, "ph") == "M";
  }
  EXPECT_TRUE(foundThreadName);
}

TEST_F(ObsTest, ClearTraceDropsAllEvents) {
  obs::recordSpan("clear.span", 0, 1);
  obs::clearTrace();
  const json::Value root = json::parse(obs::exportChromeTrace());
  EXPECT_TRUE(eventsNamed(root, "clear.span").empty());
  EXPECT_EQ(obs::droppedEvents(), 0u);
}

// ---------------------------------------------------------------------------
// Counter / histogram registry
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterIsAtomicUnderParallelFor) {
  constexpr std::size_t kTotal = 100000;
  obs::Counter& c = obs::Registry::instance().counter("test.atomic");
  par::globalPool().parallelFor(8, 0, kTotal,
                                [&](std::size_t lo, std::size_t hi) {
                                  for (std::size_t i = lo; i < hi; ++i) {
                                    c.add(1);
                                  }
                                });
  EXPECT_EQ(c.value(), kTotal);  // no lost updates across 8 writers
}

TEST_F(ObsTest, HistogramCountsEveryConcurrentRecord) {
  constexpr int kPerWorker = 1000;
  constexpr unsigned kWorkers = 8;
  obs::Histogram& h = obs::Registry::instance().histogram("test.hist");
  par::globalPool().run(kWorkers, [&](unsigned w) {
    for (int i = 0; i < kPerWorker; ++i) {
      h.record(static_cast<std::uint64_t>(w) * 1000 + 1);
    }
  });
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kWorkers) * kPerWorker);
  EXPECT_EQ(h.minNs(), 1u);
  EXPECT_EQ(h.maxNs(), 7001u);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  obs::Counter& a = obs::Registry::instance().counter("test.stable");
  a.add(3);
  obs::Counter& b = obs::Registry::instance().counter("test.stable");
  EXPECT_EQ(&a, &b);  // find-or-create, never a second object
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(ObsTest, SnapshotContainsRecordedMetrics) {
  FDD_OBS_COUNT_N("test.snap.counter", 5);
  {
    FDD_TIMED_SCOPE("test.snap.scope");
  }
  const obs::ObsSnapshot snap = obs::Registry::instance().snapshot();
  bool counterFound = false;
  for (const auto& c : snap.counters) {
    counterFound |= c.name == "test.snap.counter" && c.value == 5;
  }
  EXPECT_TRUE(counterFound);
  bool histFound = false;
  for (const auto& h : snap.histograms) {
    histFound |= h.name == "test.snap.scope" && h.count == 1;
  }
  EXPECT_TRUE(histFound);
}

TEST_F(ObsTest, PoolRegionsAccountBusyTimePerPhase) {
  {
    obs::PoolPhaseScope phase{"test.phase"};
    par::globalPool().run(4, [](unsigned) {
      volatile double sink = 0;
      for (int i = 0; i < 50000; ++i) {
        sink = sink + static_cast<double>(i);
      }
    });
  }
  const obs::ObsSnapshot snap = obs::Registry::instance().snapshot();
  bool found = false;
  for (const auto& p : snap.poolPhases) {
    if (p.phase == "test.phase") {
      found = true;
      EXPECT_EQ(p.regions, 1u);
      EXPECT_GE(p.busySeconds.size(), 4u);
      EXPECT_GE(p.imbalance, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// EWMA decision log
// ---------------------------------------------------------------------------

TEST_F(ObsTest, EwmaDecisionLogMatchesIndependentRecompute) {
  // Same drive as test_ewma's SuddenSpikeTriggers: 50 flat observations,
  // then a 10x spike that must fire — and every logged tick must agree with
  // a from-scratch Eq. 4 recompute.
  flat::EwmaMonitor m{0.9, 2.0, 4, 16};
  std::vector<flat::EwmaDecision> log;
  m.attachLog(&log);
  std::vector<std::size_t> sizes(50, 100);
  sizes.push_back(1000);
  bool fired = false;
  for (const std::size_t s : sizes) {
    fired = m.observe(s);
  }
  EXPECT_TRUE(fired);
  ASSERT_EQ(log.size(), sizes.size());

  double v = 0;
  double betaPow = 1;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    v = 0.9 * v + 0.1 * static_cast<double>(sizes[i]);
    betaPow *= 0.9;
    const double corrected = v / (1 - betaPow);
    EXPECT_EQ(log[i].gate, i);
    EXPECT_EQ(log[i].ddSize, sizes[i]);
    EXPECT_NEAR(log[i].ewma, corrected, 1e-9);
    EXPECT_NEAR(log[i].threshold, 2.0 * corrected, 1e-9);
    EXPECT_EQ(log[i].triggered, i == sizes.size() - 1);
  }
  // Bias correction: the very first tick's EWMA equals the observed size.
  EXPECT_NEAR(log[0].ewma, 100.0, 1e-9);
}

TEST_F(ObsTest, EwmaLogRespectsWarmupAndMinSize) {
  flat::EwmaMonitor m{0.9, 2.0, 10, 1};
  std::vector<flat::EwmaDecision> log;
  m.attachLog(&log);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(m.observe(1 << 20));  // warmup suppresses the trigger...
  }
  ASSERT_EQ(log.size(), 10u);
  for (const auto& tick : log) {
    EXPECT_FALSE(tick.triggered);  // ...and the log records that suppression
  }
}

TEST_F(ObsTest, EwmaLogIsEmptyWhileObsDisabled) {
  obs::setEnabled(false);
  flat::EwmaMonitor m{0.9, 2.0, 4, 16};
  std::vector<flat::EwmaDecision> log;
  m.attachLog(&log);
  for (int i = 0; i < 50; ++i) {
    (void)m.observe(100);
  }
  EXPECT_TRUE(m.observe(1000));  // the decision itself is unaffected
  EXPECT_TRUE(log.empty());      // but nothing was recorded
}

// ---------------------------------------------------------------------------
// Runtime-disabled no-op guarantees
// ---------------------------------------------------------------------------

TEST_F(ObsTest, RuntimeDisabledRecordsNothing) {
  obs::setEnabled(false);
  obs::Counter& c = obs::Registry::instance().counter("test.off");
  c.add(5);
  EXPECT_EQ(c.value(), 0u);

  obs::Histogram& h = obs::Registry::instance().histogram("test.off.hist");
  h.record(123);
  EXPECT_EQ(h.count(), 0u);

  obs::recordSpan("off.span", 0, 1);
  obs::counterEvent("off.counter", 1);
  obs::instantEvent("off.instant", 1);
  {
    FDD_TIMED_SCOPE("off.scope");
    FDD_OBS_COUNT("off.count");
  }
  const json::Value root = json::parse(obs::exportChromeTrace());
  EXPECT_TRUE(eventsNamed(root, "off.span").empty());
  EXPECT_TRUE(eventsNamed(root, "off.counter").empty());
  EXPECT_TRUE(eventsNamed(root, "off.instant").empty());
  EXPECT_TRUE(eventsNamed(root, "off.scope").empty());
}

#else  // !FDD_OBS_ENABLED — the compiled-out stubs must stay inert.

TEST(ObsCompiledOut, StubsAreInertAndExportIsEmpty) {
  EXPECT_FALSE(obs::enabled());
  obs::setEnabled(true);
  EXPECT_FALSE(obs::enabled());  // the runtime switch has nothing to enable

  obs::Counter& c = obs::Registry::instance().counter("test.off");
  c.add(7);
  EXPECT_EQ(c.value(), 0u);

  FDD_OBS_COUNT("noop");
  FDD_TRACE_SCOPE("noop");

  const json::Value root = json::parse(obs::exportChromeTrace());
  const json::Object* top = root.object();
  ASSERT_NE(top, nullptr);
  const json::Array* events = top->find("traceEvents")->second.array();
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->empty());
}

#endif  // FDD_OBS_ENABLED

}  // namespace
}  // namespace fdd
