// Randomized DMAV-vs-array equivalence: random 1q/2q/controlled gates over
// 2-10 qubits, thread counts {1,2,4,8}, through the plain, cached, and
// plan-replay execution paths, with the ident fast path both on and off.
// The oracle is the dense reference (test::denseOperator/denseApply), which
// shares no code with the DD package or the DMAV kernels.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/prng.hpp"
#include "dd/package.hpp"
#include "flatdd/dmav.hpp"
#include "flatdd/dmav_cache.hpp"
#include "flatdd/dmav_plan.hpp"
#include "helpers.hpp"

namespace fdd::flat {
namespace {

constexpr fp kTol = 1e-12;

qc::Operation randomGate(Qubit n, Xoshiro256& rng) {
  const auto target = static_cast<Qubit>(rng.below(n));
  auto otherThan = [&](Qubit q) {
    Qubit o = q;
    while (o == q) {
      o = static_cast<Qubit>(rng.below(n));
    }
    return o;
  };
  switch (rng.below(10)) {
    case 0: return {qc::GateKind::H, target, {}, {}};
    case 1: return {qc::GateKind::X, target, {}, {}};
    case 2: return {qc::GateKind::T, target, {}, {}};
    case 3: return {qc::GateKind::RZ, target, {}, {rng.uniform(0, 2 * PI)}};
    case 4: return {qc::GateKind::RY, target, {}, {rng.uniform(0, 2 * PI)}};
    case 5:
      return {qc::GateKind::U3,
              target,
              {},
              {rng.uniform(0, PI), rng.uniform(0, 2 * PI),
               rng.uniform(0, 2 * PI)}};
    case 6:
      return n < 2 ? qc::Operation{qc::GateKind::X, target, {}, {}}
                   : qc::Operation{qc::GateKind::X, target,
                                   {otherThan(target)}, {}};
    case 7:
      return n < 2 ? qc::Operation{qc::GateKind::Z, target, {}, {}}
                   : qc::Operation{qc::GateKind::Z, target,
                                   {otherThan(target)}, {}};
    case 8:
      return n < 2 ? qc::Operation{qc::GateKind::P, target, {}, {0.9}}
                   : qc::Operation{qc::GateKind::P, target,
                                   {otherThan(target)},
                                   {rng.uniform(0, 2 * PI)}};
    default: {
      if (n < 3) {
        return {qc::GateKind::SX, target, {}, {}};
      }
      const Qubit c1 = otherThan(target);
      Qubit c2 = c1;
      while (c2 == c1 || c2 == target) {
        c2 = static_cast<Qubit>(rng.below(n));
      }
      // Operation::controls must be sorted.
      return {qc::GateKind::X, target,
              {std::min(c1, c2), std::max(c1, c2)}, {}};  // Toffoli
    }
  }
}

class DmavRandom
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {};

TEST_P(DmavRandom, AllPathsMatchDenseReference) {
  const auto [threads, identFast] = GetParam();
  setIdentFastPath(identFast);
  Xoshiro256 rng{0xd31a * (threads + 1) + (identFast ? 1 : 0)};
  for (Qubit n = 2; n <= 10; n += 2) {
    dd::Package p{n};
    DmavWorkspace ws;
    for (int trial = 0; trial < 3; ++trial) {
      const qc::Operation op = randomGate(n, rng);
      const dd::mEdge m = p.makeGateDD(op);
      const auto v = test::randomState(
          n, 0x5eed + static_cast<std::uint64_t>(n) * 17 +
                 static_cast<std::uint64_t>(trial));
      const auto ref = test::denseApply(test::denseOperator(op, n), v);
      AlignedVector<Complex> in(v.begin(), v.end());
      AlignedVector<Complex> out(v.size());

      // Path 1: plain row-space DMAV (compile + replay one-shot).
      dmav(m, n, in, out, threads);
      EXPECT_STATE_NEAR(out, ref, kTol) << op.toString() << " plain n=" << n;

      // Path 2: pre-plan recursive row-space path.
      dmavRecursive(m, n, in, out, threads);
      EXPECT_STATE_NEAR(out, ref, kTol)
          << op.toString() << " recursive n=" << n;

      // Path 3: cached column-space DMAV through a plan.
      dmavCached(m, n, in, out, threads, ws);
      EXPECT_STATE_NEAR(out, ref, kTol) << op.toString() << " cached n=" << n;

      // Path 4: pre-plan recursive cached path.
      dmavCachedRecursive(m, n, in, out, threads, ws);
      EXPECT_STATE_NEAR(out, ref, kTol)
          << op.toString() << " cachedRecursive n=" << n;

      // Path 5: explicit compile once, replay twice (plan reuse).
      const DmavPlan plan =
          compileDmavPlan(m, n, threads, PlanMode::Row, &p);
      replayPlan(plan, in, out);
      EXPECT_STATE_NEAR(out, ref, kTol) << op.toString() << " replay n=" << n;
      AlignedVector<Complex> out2(v.size());
      replayPlan(plan, in, out2);
      EXPECT_STATE_NEAR(out2, ref, kTol)
          << op.toString() << " replay2 n=" << n;
    }
  }
  setIdentFastPath(true);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsTimesIdentPath, DmavRandom,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(true, false)));

TEST(DmavRandomChain, LongRandomCircuitAllPathsAgree) {
  // Chain 40 random gates at 8 qubits, advancing four states in lockstep
  // through the four execution paths; they must stay bit-close throughout.
  const Qubit n = 8;
  dd::Package p{n};
  Xoshiro256 rng{777};
  DmavWorkspace ws1;
  DmavWorkspace ws2;
  const Index dim = Index{1} << n;
  AlignedVector<Complex> plain(dim, Complex{});
  plain[0] = Complex{1.0};
  AlignedVector<Complex> rec = plain;
  AlignedVector<Complex> cached = plain;
  AlignedVector<Complex> planned = plain;
  AlignedVector<Complex> scratch(dim);
  auto step = [&](AlignedVector<Complex>& state, auto&& apply) {
    apply(state, scratch);
    std::swap(state, scratch);
  };
  for (int g = 0; g < 40; ++g) {
    const qc::Operation op = randomGate(n, rng);
    const dd::mEdge m = p.makeGateDD(op);
    const unsigned t = 1u << rng.below(4);  // 1, 2, 4 or 8 threads
    step(plain, [&](auto& v, auto& w) { dmav(m, n, v, w, t); });
    step(rec, [&](auto& v, auto& w) { dmavRecursive(m, n, v, w, t); });
    step(cached, [&](auto& v, auto& w) { dmavCached(m, n, v, w, t, ws1); });
    step(planned, [&](auto& v, auto& w) {
      const DmavPlan plan = compileDmavPlan(m, n, t, PlanMode::Cached, &p);
      replayPlanCached(plan, v, w, ws2);
    });
  }
  EXPECT_STATE_NEAR(plain, rec, kTol);
  EXPECT_STATE_NEAR(plain, cached, kTol);
  EXPECT_STATE_NEAR(plain, planned, kTol);
}

}  // namespace
}  // namespace fdd::flat
