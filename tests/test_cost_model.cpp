// Cost model (Section 3.2.3): MAC counts on analytically known DDs
// (including the paper's worked examples), Eq. 5 / Eq. 6 relations, and the
// caching decision.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "dd/package.hpp"
#include "flatdd/cost_model.hpp"
#include "flatdd/dmav.hpp"
#include "helpers.hpp"
#include "simd/kernels.hpp"

namespace fdd::flat {
namespace {

TEST(MacCount, ZeroAndTerminalEdges) {
  EXPECT_EQ(macCount(dd::mEdge::zero()), 0u);
  EXPECT_EQ(macCount(dd::mEdge::one()), 1u);
}

TEST(MacCount, IdentityIsDiagonalOnly) {
  // Identity on n qubits: 2^n MACs (one per diagonal entry).
  dd::Package p{6};
  EXPECT_EQ(macCount(p.makeIdent(5)), 64u);
}

TEST(MacCount, DenseSingleQubitGate) {
  // H on one qubit of an n-qubit register: the H level contributes 4
  // paths, every identity level 2, so 4 * 2^(n-1) MACs.
  const Qubit n = 5;
  dd::Package p{n};
  for (Qubit target = 0; target < n; ++target) {
    const dd::mEdge h =
        p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), target);
    EXPECT_EQ(macCount(h), 4u << (n - 1)) << "target=" << target;
  }
}

TEST(MacCount, ControlledGate) {
  // CX: control level contributes 1 (control-0 diagonal) + 2 (X block) ...
  // analytically: paths(CX on 2 qubits) = |0><0| x I (2 paths) +
  // |1><1| x X (2 paths) = 4.
  dd::Package p{2};
  const Qubit ctrl[] = {1};
  const dd::mEdge cx = p.makeGateDD(qc::gateMatrix(qc::GateKind::X, {}), 0,
                                    std::span<const Qubit>{ctrl, 1});
  EXPECT_EQ(macCount(cx), 4u);
}

TEST(MacCount, MatchesPathCountOnRandomGates) {
  // The MAC count equals the number of nonzero entries of the gate matrix
  // for matrices whose DD has no accidental cancellations.
  const Qubit n = 4;
  dd::Package p{n};
  for (const auto& op :
       {qc::Operation{qc::GateKind::U3, 2, {}, {0.3, 0.4, 0.5}},
        qc::Operation{qc::GateKind::RY, 1, {3}, {0.9}},
        qc::Operation{qc::GateKind::Z, 0, {1, 2}, {}}}) {
    const dd::mEdge m = p.makeGateDD(op);
    const auto dense = test::denseOperator(op, n);
    std::uint64_t nonzeros = 0;
    for (const auto& row : dense) {
      for (const auto& x : row) {
        nonzeros += (std::abs(x) > 1e-14);
      }
    }
    EXPECT_EQ(macCount(m), nonzeros) << op.toString();
  }
}

TEST(MacCount, FusionExampleRelation) {
  // The paper's Fig. 9 premise: for gates whose product stays compact,
  // cost(fused) < cost(g1) + cost(g2). Two diagonal gates compose without
  // fill-in.
  const Qubit n = 6;
  dd::Package p{n};
  const dd::mEdge rz1 =
      p.makeGateDD(qc::gateMatrix(qc::GateKind::RZ, {0.3}), 1);
  const dd::mEdge rz2 =
      p.makeGateDD(qc::gateMatrix(qc::GateKind::RZ, {0.7}), 4);
  const dd::mEdge fused = p.multiply(rz2, rz1);
  EXPECT_LT(macCount(fused), macCount(rz1) + macCount(rz2));
}

TEST(MacCount, FusionCanIncreaseCost) {
  // Fig. 10: fusing dense non-overlapping gates multiplies their path
  // counts. Two disjoint Hadamards are cost-neutral (4+4 vs 2*2*... equal);
  // three make the fused matrix strictly costlier: 8*2^(n-3)*... i.e.
  // 2^3 * 2^n = 512 MACs vs 3 * 2 * 2^n = 384 for n = 6.
  const Qubit n = 6;
  dd::Package p{n};
  const dd::mEdge h1 = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 0);
  const dd::mEdge h2 = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 3);
  const dd::mEdge h3 = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 5);
  const dd::mEdge fused = p.multiply(h3, p.multiply(h2, h1));
  EXPECT_GT(macCount(fused),
            macCount(h1) + macCount(h2) + macCount(h3));
}

TEST(Cost, C1ScalesInverselyWithThreads) {
  dd::Package p{6};
  const dd::mEdge h = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 3);
  const fp c1 = costNoCache(h, 1);
  EXPECT_NEAR(costNoCache(h, 2), c1 / 2, 1e-12);
  EXPECT_NEAR(costNoCache(h, 16), c1 / 16, 1e-12);
}

TEST(Cost, DmavCostIsMin) {
  dd::Package p{8};
  const dd::mEdge h = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 7);
  const unsigned d = simd::lanes();
  const fp c1 = costNoCache(h, clampDmavThreads(8, 4));
  const fp c2 = costWithCache(h, 8, 4, d);
  EXPECT_DOUBLE_EQ(dmavCost(h, 8, 4, d), std::min(c1, c2));
  EXPECT_EQ(cachingBeneficial(h, 8, 4, d), c2 < c1);
}

TEST(Cost, SingleThreadNeverBenefitsFromCacheOnIdentityLike) {
  // With one thread there are no column splits, so caching adds buffer
  // traffic without reuse for gates with one task.
  dd::Package p{6};
  const dd::mEdge id = p.makeIdent(5);
  EXPECT_FALSE(cachingBeneficial(id, 6, 1, simd::lanes()));
}

TEST(Cost, CacheWinsWhenReuseIsMassive) {
  // A dense top-qubit gate at high thread counts reuses one sub-matrix node
  // H times; Eq. 6 must eventually undercut Eq. 5.
  const Qubit n = 12;
  dd::Package p{n};
  const dd::mEdge h =
      p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), n - 1);
  const fp c1 = costNoCache(h, 16);
  const fp c2 = costWithCache(h, n, 16, 4);
  EXPECT_LT(c2, c1);
}

TEST(Cost, CostWithCacheAccountsBuffersAndHits) {
  // Identity with t threads: one task per thread, zero hits, one shared
  // buffer -> C2 = 2^n/t + 2^n/(d*t) * 1.
  const Qubit n = 8;
  dd::Package p{n};
  const unsigned t = 4;
  const unsigned d = 4;
  const fp c2 = costWithCache(p.makeIdent(n - 1), n, t, d);
  const fp expected =
      256.0 / t + 256.0 / (d * t) * (0.0 / t + 1.0);
  EXPECT_NEAR(c2, expected, 1e-9);
}

TEST(Cost, DdPhaseSpeedupIsSqrtUpToTheCoreCap) {
  EXPECT_DOUBLE_EQ(ddPhaseSpeedup(1, 8), 1.0);
  EXPECT_DOUBLE_EQ(ddPhaseSpeedup(4, 8), 2.0);
  EXPECT_DOUBLE_EQ(ddPhaseSpeedup(16, 8), std::sqrt(8.0));
  // Oversubscription past the cap must not inflate the model: an assumed
  // speedup that never materializes delays conversion past the DD blow-up.
  EXPECT_DOUBLE_EQ(ddPhaseSpeedup(8, 1), 1.0);
  EXPECT_DOUBLE_EQ(ddPhaseSpeedup(8, 2), std::sqrt(2.0));
}

TEST(Cost, DdPhaseSpeedupHonorsAssumedCoreEnv) {
  setenv("FLATDD_DD_ASSUME_CORES", "4", 1);
  EXPECT_DOUBLE_EQ(ddPhaseSpeedup(16), 2.0);
  setenv("FLATDD_DD_ASSUME_CORES", "garbage", 1);
  const fp detected = ddPhaseSpeedup(16);  // falls back to detected cores
  unsetenv("FLATDD_DD_ASSUME_CORES");
  EXPECT_DOUBLE_EQ(detected, ddPhaseSpeedup(16));
}

}  // namespace
}  // namespace fdd::flat
