// Baseline simulators: the array simulator (Quantum++ stand-in) and the DD
// simulator (DDSIM stand-in), validated against the dense reference and
// against each other across circuit families and thread counts.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "helpers.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd::sim {
namespace {

TEST(ArraySim, InitialStateIsZeroKet) {
  ArraySimulator s{3};
  EXPECT_EQ(s.amplitude(0), Complex{1.0});
  for (Index i = 1; i < 8; ++i) {
    EXPECT_EQ(s.amplitude(i), Complex{});
  }
}

TEST(ArraySim, RejectsBadQubitCounts) {
  EXPECT_THROW(ArraySimulator{0}, std::invalid_argument);
  EXPECT_THROW(ArraySimulator{40}, std::invalid_argument);
}

TEST(ArraySim, SingleGateMatchesDense) {
  const Qubit n = 3;
  for (const auto& op :
       {qc::Operation{qc::GateKind::H, 1, {}, {}},
        qc::Operation{qc::GateKind::X, 0, {2}, {}},
        qc::Operation{qc::GateKind::RZ, 2, {}, {0.4}},
        qc::Operation{qc::GateKind::Z, 2, {0, 1}, {}}}) {
    ArraySimulator s{n};
    // Start from a random state to exercise all matrix entries.
    const auto init = test::randomState(n, 41);
    s.setState(init);
    s.applyOperation(op);
    const auto ref = test::denseApply(test::denseOperator(op, n), init);
    EXPECT_STATE_NEAR(s.state(), ref, 1e-12);
  }
}

TEST(ArraySim, RandomCircuitMatchesDense) {
  const Qubit n = 5;
  const auto c = test::randomCircuit(n, 60, 17);
  ArraySimulator s{n};
  s.simulate(c);
  EXPECT_STATE_NEAR(s.state(), test::denseSimulate(c), 1e-10);
}

TEST(ArraySim, ThreadedMatchesSequential) {
  const Qubit n = 8;
  const auto c = circuits::dnn(n, 4, 3);
  ArraySimulator seq{n, {.threads = 1}};
  seq.simulate(c);
  for (const unsigned t : {2u, 4u, 8u}) {
    ArraySimulator par{n, {.threads = t, .parallelThresholdDim = 1}};
    par.simulate(c);
    EXPECT_STATE_NEAR(par.state(), seq.state(), 1e-11) << "threads=" << t;
  }
}

TEST(ArraySim, NormPreservedThroughDeepCircuit) {
  const Qubit n = 6;
  ArraySimulator s{n, {.threads = 2}};
  s.simulate(circuits::supremacy(n, 10, 2));
  EXPECT_NEAR(s.norm(), 1.0, 1e-9);
}

TEST(ArraySim, SetStateValidatesSize) {
  ArraySimulator s{3};
  const std::vector<Complex> wrong(4);
  EXPECT_THROW(s.setState(wrong), std::invalid_argument);
}

TEST(ArraySim, MismatchedCircuitThrows) {
  ArraySimulator s{3};
  EXPECT_THROW(s.simulate(circuits::ghz(4)), std::invalid_argument);
}

TEST(ArraySim, SampleReturnsSupportedState) {
  const Qubit n = 4;
  ArraySimulator s{n};
  s.simulate(circuits::ghz(n));
  Xoshiro256 rng{5};
  for (int i = 0; i < 50; ++i) {
    const Index sample = s.sample(rng);
    EXPECT_TRUE(sample == 0 || sample == (Index{1} << n) - 1)
        << "GHZ must sample only the extremes, got " << sample;
  }
}

TEST(ArraySim, ResetRestoresZeroState) {
  ArraySimulator s{3};
  s.simulate(circuits::ghz(3));
  s.reset();
  EXPECT_EQ(s.amplitude(0), Complex{1.0});
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(DDSim, RandomCircuitMatchesDense) {
  const Qubit n = 5;
  const auto c = test::randomCircuit(n, 40, 19);
  DDSimulator s{n};
  s.simulate(c);
  const auto ref = test::denseSimulate(c);
  const auto got = s.stateVector();
  EXPECT_STATE_NEAR(got, ref, 1e-9);
}

TEST(DDSim, TracksGateCount) {
  DDSimulator s{4};
  s.simulate(circuits::ghz(4));
  EXPECT_EQ(s.gatesApplied(), 4u);
}

TEST(DDSim, GhzKeepsTinyDD) {
  const Qubit n = 16;
  DDSimulator s{n};
  s.simulate(circuits::ghz(n));
  // Two basis chains sharing a root: 2n - 1 nodes.
  EXPECT_LE(s.stateNodeCount(), static_cast<std::size_t>(2 * n));
  EXPECT_NEAR(std::abs(s.amplitude(0)), SQRT2_INV, 1e-10);
}

TEST(DDSim, AdderKeepsBasisState) {
  const auto c = circuits::adder(4, 9, 6);
  DDSimulator s{c.numQubits()};
  s.simulate(c);
  // Basis states have exactly n nodes.
  EXPECT_EQ(s.stateNodeCount(), static_cast<std::size_t>(c.numQubits()));
}

TEST(DDSim, IrregularCircuitGrowsDD) {
  const Qubit n = 10;
  DDSimulator s{n};
  s.simulate(circuits::dnn(n, 3, 7));
  // An irregular state needs a large chunk of the maximal 2^(n-1) nodes.
  EXPECT_GT(s.stateNodeCount(), std::size_t{1} << (n - 3));
}

TEST(DDSim, CrossValidatesWithArraySim) {
  for (const auto& circuit :
       {circuits::ghz(6), circuits::wState(6), circuits::qft(6, 3),
        circuits::vqe(6, 2, 5), circuits::dnn(6, 2, 5),
        circuits::supremacy(6, 4, 5), circuits::bernsteinVazirani(5, 0b1011)}) {
    DDSimulator ddSim{circuit.numQubits()};
    ddSim.simulate(circuit);
    ArraySimulator arrSim{circuit.numQubits(), {.threads = 2}};
    arrSim.simulate(circuit);
    EXPECT_STATE_NEAR(ddSim.stateVector(), arrSim.state(), 1e-9)
        << circuit.name();
  }
}

TEST(DDSim, ReleaseStateReclaimsNodes) {
  const Qubit n = 10;
  DDSimulator s{n};
  s.simulate(circuits::dnn(n, 3, 7));
  const std::size_t before = s.package().stats().vNodesLive;
  s.releaseState();
  EXPECT_LT(s.package().stats().vNodesLive, before);
  EXPECT_EQ(s.stateNodeCount(), static_cast<std::size_t>(n));
}

TEST(DDSim, ForcedGcMidSimulationKeepsResultsCorrect) {
  const Qubit n = 8;
  const auto c = circuits::supremacy(n, 12, 9);
  DDSimulator s{n};
  std::size_t applied = 0;
  for (const auto& op : c) {
    s.applyOperation(op);
    if (++applied % 25 == 0) {
      s.package().garbageCollect(true);
    }
  }
  ArraySimulator ref{n};
  ref.simulate(c);
  EXPECT_STATE_NEAR(s.stateVector(), ref.state(), 1e-9);
  EXPECT_GT(s.package().stats().gcRuns, 0u);
}

}  // namespace
}  // namespace fdd::sim
