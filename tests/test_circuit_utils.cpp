// Circuit utilities (inverse, depth, histograms) and the new circuit
// families (QPE, QAOA, hidden shift, quantum volume, randomUniversal).

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "helpers.hpp"
#include "qasm/parser.hpp"
#include "sim/array_simulator.hpp"

namespace fdd {
namespace {

TEST(InverseOperation, EveryKindInvertsItsMatrix) {
  Xoshiro256 rng{71};
  using K = qc::GateKind;
  for (const K kind :
       {K::I, K::H, K::X, K::Y, K::Z, K::S, K::Sdg, K::T, K::Tdg, K::SX,
        K::SXdg, K::SY, K::SYdg, K::SW, K::SWdg, K::RX, K::RY, K::RZ, K::P,
        K::U2, K::U3}) {
    std::vector<fp> params;
    for (unsigned i = 0; i < qc::gateParamCount(kind); ++i) {
      params.push_back(rng.uniform(0, 2 * PI));
    }
    const qc::Operation op{kind, 0, {}, params};
    const qc::Operation inv = qc::inverseOperation(op);
    const auto prod = qc::matMul2(inv.matrix(), op.matrix());
    const qc::Matrix2 id{Complex{1}, Complex{}, Complex{}, Complex{1}};
    EXPECT_LT(qc::matDistance(prod, id), 1e-12) << qc::gateName(kind);
  }
}

TEST(CircuitInverse, UndoesTheCircuit) {
  for (const auto& circuit :
       {test::randomCircuit(5, 30, 72), circuits::qft(5, 9),
        circuits::quantumVolume(5, 2, 73)}) {
    qc::Circuit roundTrip = circuit;
    roundTrip.append(circuit.inverse());
    const auto state = test::denseSimulate(roundTrip);
    EXPECT_NEAR(std::abs(state[0] - Complex{1.0}), 0.0, 1e-9)
        << circuit.name();
    for (Index i = 1; i < state.size(); ++i) {
      EXPECT_NEAR(std::abs(state[i]), 0.0, 1e-9);
    }
  }
}

TEST(CircuitInverse, PreservesControls) {
  qc::Circuit c{4};
  c.ccx(0, 1, 3).cp(0.7, 2, 0);
  const auto inv = c.inverse();
  ASSERT_EQ(inv.numGates(), 2u);
  EXPECT_EQ(inv[0].kind, qc::GateKind::P);
  EXPECT_DOUBLE_EQ(inv[0].params[0], -0.7);
  EXPECT_EQ(inv[1].controls, (std::vector<Qubit>{0, 1}));
}

TEST(CircuitDepth, CountsCriticalPath) {
  qc::Circuit c{3};
  EXPECT_EQ(c.depth(), 0u);
  c.h(0);         // depth 1
  c.h(1);         // parallel: still 1
  EXPECT_EQ(c.depth(), 1u);
  c.cx(0, 1);     // 2
  c.h(2);         // parallel: 2
  c.cx(1, 2);     // 3
  EXPECT_EQ(c.depth(), 3u);
}

TEST(CircuitStats, HistogramAndControlledCount) {
  qc::Circuit c{3};
  c.h(0).h(1).cx(0, 1).rz(0.1, 2).ccx(0, 1, 2);
  const auto hist = c.countByKind();
  EXPECT_EQ(hist.at(qc::GateKind::H), 2u);
  EXPECT_EQ(hist.at(qc::GateKind::X), 2u);  // cx + ccx
  EXPECT_EQ(hist.at(qc::GateKind::RZ), 1u);
  EXPECT_EQ(c.controlledGateCount(), 2u);
}

TEST(Qpe, RecoversDyadicPhaseExactly) {
  for (const std::uint64_t k : {0ULL, 1ULL, 5ULL, 10ULL, 15ULL}) {
    const Qubit bits = 4;
    const auto c = circuits::qpe(bits, static_cast<fp>(k) / 16.0);
    sim::ArraySimulator s{c.numQubits()};
    s.simulate(c);
    // Counting register (low 4 qubits) must hold |k> exactly; the
    // eigenstate qubit stays |1>.
    const Index expected = k | (Index{1} << bits);
    EXPECT_GT(norm2(s.amplitude(expected)), 0.99) << "k=" << k;
  }
}

TEST(Qpe, NonDyadicPhaseConcentratesNearTruth) {
  const Qubit bits = 5;
  const fp phase = 0.3;  // not dyadic: distribution peaks at round(0.3*32)=10
  const auto c = circuits::qpe(bits, phase);
  sim::ArraySimulator s{c.numQubits()};
  s.simulate(c);
  double best = 0;
  Index argmax = 0;
  for (Index k = 0; k < (Index{1} << bits); ++k) {
    const double p = norm2(s.amplitude(k | (Index{1} << bits)));
    if (p > best) {
      best = p;
      argmax = k;
    }
  }
  EXPECT_EQ(argmax, 10u);
  EXPECT_GT(best, 0.4);  // the main lobe of the sinc kernel
}

TEST(Qaoa, NormalizedAndDeterministic) {
  const auto a = circuits::qaoa(8, 2, 29);
  const auto b = circuits::qaoa(8, 2, 29);
  EXPECT_EQ(a, b);
  sim::ArraySimulator s{8};
  s.simulate(a);
  EXPECT_NEAR(s.norm(), 1.0, 1e-9);
}

TEST(HiddenShift, MeasuresTheShift) {
  for (const std::uint64_t shift : {0ULL, 0b101101ULL, 0b111111ULL}) {
    const Qubit n = 6;
    const auto c = circuits::hiddenShift(n, shift, 31);
    sim::ArraySimulator s{n};
    s.simulate(c);
    EXPECT_GT(norm2(s.amplitude(shift)), 0.99) << "shift=" << shift;
  }
}

TEST(HiddenShift, RequiresEvenQubitCount) {
  EXPECT_THROW((void)circuits::hiddenShift(5, 1), std::invalid_argument);
}

TEST(QuantumVolume, UnitaryAndIrregular) {
  const auto c = circuits::quantumVolume(7, 4, 37);
  sim::ArraySimulator s{7};
  s.simulate(c);
  EXPECT_NEAR(s.norm(), 1.0, 1e-9);
  std::size_t nonzero = 0;
  for (Index i = 0; i < (Index{1} << 7); ++i) {
    nonzero += norm2(s.amplitude(i)) > 1e-9;
  }
  EXPECT_GT(nonzero, 100u);  // QV circuits scramble thoroughly
}

TEST(RandomUniversal, MatchesDenseReference) {
  const auto c = circuits::randomUniversal(5, 50, 41);
  sim::ArraySimulator s{5};
  s.simulate(c);
  EXPECT_STATE_NEAR(s.state(), test::denseSimulate(c), 1e-10);
}

TEST(QasmExtensions, FullRoundTripForEveryFamily) {
  // toQasm must now serialize every circuit we can build, and qasm::parse
  // must reproduce it exactly (gate-for-gate after lowering).
  for (const auto& circuit :
       {circuits::grover(5),                // multi-controlled Z
        circuits::supremacy(6, 4, 23),      // sy / sw extension gates
        circuits::quantumVolume(5, 2, 37),  // u3-heavy
        circuits::qpe(4, 0.3125),           // cp ladders + swaps
        circuits::hiddenShift(6, 0b1011, 31),
        circuits::knn(7, 17)}) {
    const auto reparsed = qasm::parse(circuit.toQasm(), circuit.name());
    ASSERT_EQ(reparsed.numGates(), circuit.numGates()) << circuit.name();
    sim::ArraySimulator a{circuit.numQubits()};
    a.simulate(circuit);
    sim::ArraySimulator b{circuit.numQubits()};
    b.simulate(reparsed);
    EXPECT_STATE_NEAR(a.state(), b.state(), 1e-9) << circuit.name();
  }
}

TEST(QasmExtensions, McMnemonicsParse) {
  const auto c = qasm::parse(R"(
    qreg q[4];
    mcx q[0],q[1],q[2],q[3];
    mcz q[0],q[1],q[2];
    mcp(0.5) q[0],q[3],q[1];
    mcry(0.25) q[1],q[2];
  )");
  ASSERT_EQ(c.numGates(), 4u);
  EXPECT_EQ(c[0].kind, qc::GateKind::X);
  EXPECT_EQ(c[0].controls.size(), 3u);
  EXPECT_EQ(c[1].kind, qc::GateKind::Z);
  EXPECT_EQ(c[2].kind, qc::GateKind::P);
  EXPECT_EQ(c[2].controls, (std::vector<Qubit>{0, 3}));
  EXPECT_EQ(c[3].kind, qc::GateKind::RY);
  EXPECT_EQ(c[3].controls, (std::vector<Qubit>{1}));
}

TEST(QasmExtensions, SupremacyGatesParse) {
  const auto c = qasm::parse("qreg q[2]; sy q[0]; sw q[1]; swdg q[0];");
  ASSERT_EQ(c.numGates(), 3u);
  EXPECT_EQ(c[0].kind, qc::GateKind::SY);
  EXPECT_EQ(c[1].kind, qc::GateKind::SW);
  EXPECT_EQ(c[2].kind, qc::GateKind::SWdg);
}

TEST(Gates, SwDaggerInverts) {
  const auto sw = qc::gateMatrix(qc::GateKind::SW, {});
  const auto swdg = qc::gateMatrix(qc::GateKind::SWdg, {});
  const qc::Matrix2 id{Complex{1}, Complex{}, Complex{}, Complex{1}};
  EXPECT_LT(qc::matDistance(qc::matMul2(sw, swdg), id), 1e-12);
  EXPECT_LT(qc::matDistance(swdg, qc::adjoint2(sw)), 1e-12);
}

}  // namespace
}  // namespace fdd
