// Gate matrix definitions: unitarity, known algebraic identities, parameter
// validation, and 2x2 helper algebra.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "qc/gate.hpp"

namespace fdd::qc {
namespace {

const std::vector<GateKind> kAllKinds = {
    GateKind::I,  GateKind::H,    GateKind::X,  GateKind::Y,  GateKind::Z,
    GateKind::S,  GateKind::Sdg,  GateKind::T,  GateKind::Tdg, GateKind::SX,
    GateKind::SXdg, GateKind::SY, GateKind::SYdg, GateKind::SW, GateKind::RX,
    GateKind::RY, GateKind::RZ,   GateKind::P,  GateKind::U2, GateKind::U3};

std::vector<fp> paramsFor(GateKind kind, Xoshiro256& rng) {
  std::vector<fp> p;
  for (unsigned i = 0; i < gateParamCount(kind); ++i) {
    p.push_back(rng.uniform(0, 2 * PI));
  }
  return p;
}

class AllGates : public ::testing::TestWithParam<GateKind> {};

TEST_P(AllGates, IsUnitary) {
  Xoshiro256 rng{99};
  for (int trial = 0; trial < 5; ++trial) {
    const auto m = gateMatrix(GetParam(), paramsFor(GetParam(), rng));
    EXPECT_TRUE(isUnitary2(m)) << gateName(GetParam());
  }
}

TEST_P(AllGates, NameIsNonEmpty) {
  EXPECT_FALSE(gateName(GetParam()).empty());
  EXPECT_NE(gateName(GetParam()), "?");
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllGates, ::testing::ValuesIn(kAllKinds));

TEST(Gates, SquareRootsSquareToTheirBase) {
  const auto check = [](GateKind half, GateKind full) {
    const auto h = gateMatrix(half, {});
    const auto f = gateMatrix(full, {});
    // Squaring may differ by a global phase for these conventions; for SX
    // and SY the convention here squares exactly to X and Y.
    EXPECT_LT(matDistance(matMul2(h, h), f), 1e-12)
        << gateName(half) << "^2 != " << gateName(full);
  };
  check(GateKind::SX, GateKind::X);
  check(GateKind::SY, GateKind::Y);
}

TEST(Gates, SandTSquare) {
  const auto s = gateMatrix(GateKind::S, {});
  const auto z = gateMatrix(GateKind::Z, {});
  EXPECT_LT(matDistance(matMul2(s, s), z), 1e-12);
  const auto t = gateMatrix(GateKind::T, {});
  EXPECT_LT(matDistance(matMul2(t, t), s), 1e-12);
}

TEST(Gates, DaggersInvert) {
  const auto id = gateMatrix(GateKind::I, {});
  EXPECT_LT(matDistance(matMul2(gateMatrix(GateKind::S, {}),
                                gateMatrix(GateKind::Sdg, {})),
                        id),
            1e-12);
  EXPECT_LT(matDistance(matMul2(gateMatrix(GateKind::T, {}),
                                gateMatrix(GateKind::Tdg, {})),
                        id),
            1e-12);
  EXPECT_LT(matDistance(matMul2(gateMatrix(GateKind::SX, {}),
                                gateMatrix(GateKind::SXdg, {})),
                        id),
            1e-12);
}

TEST(Gates, HadamardIsInvolution) {
  const auto h = gateMatrix(GateKind::H, {});
  EXPECT_LT(matDistance(matMul2(h, h), gateMatrix(GateKind::I, {})), 1e-12);
}

TEST(Gates, HXHEqualsZ) {
  const auto h = gateMatrix(GateKind::H, {});
  const auto x = gateMatrix(GateKind::X, {});
  const auto z = gateMatrix(GateKind::Z, {});
  EXPECT_LT(matDistance(matMul2(matMul2(h, x), h), z), 1e-12);
}

TEST(Gates, RotationComposition) {
  Xoshiro256 rng{5};
  const fp a = rng.uniform(0, PI);
  const fp b = rng.uniform(0, PI);
  const auto ra = gateMatrix(GateKind::RZ, {a});
  const auto rb = gateMatrix(GateKind::RZ, {b});
  const auto rab = gateMatrix(GateKind::RZ, {a + b});
  EXPECT_LT(matDistance(matMul2(ra, rb), rab), 1e-12);
}

TEST(Gates, RyPiEqualsMinusIY) {
  // RY(pi) = [[0,-1],[1,0]]
  const auto r = gateMatrix(GateKind::RY, {PI});
  EXPECT_LT(std::abs(r[0]), 1e-12);
  EXPECT_LT(std::abs(r[1] + Complex{1.0}), 1e-12);
  EXPECT_LT(std::abs(r[2] - Complex{1.0}), 1e-12);
  EXPECT_LT(std::abs(r[3]), 1e-12);
}

TEST(Gates, U3Specializations) {
  // u3(0, 0, lambda) has diag(1, e^{i lambda}) — the phase gate.
  const fp lam = 0.7;
  const auto u = gateMatrix(GateKind::U3, {0, 0, lam});
  const auto p = gateMatrix(GateKind::P, {lam});
  EXPECT_LT(matDistance(u, p), 1e-12);
  // u3(pi/2, phi, lambda) == u2(phi, lambda).
  const auto u3 = gateMatrix(GateKind::U3, {PI / 2, 0.3, 0.9});
  const auto u2 = gateMatrix(GateKind::U2, {0.3, 0.9});
  EXPECT_LT(matDistance(u3, u2), 1e-12);
}

TEST(Gates, PhaseGateSpecialCases) {
  EXPECT_LT(matDistance(gateMatrix(GateKind::P, {PI}),
                        gateMatrix(GateKind::Z, {})),
            1e-12);
  EXPECT_LT(matDistance(gateMatrix(GateKind::P, {PI / 2}),
                        gateMatrix(GateKind::S, {})),
            1e-12);
}

TEST(Gates, MissingParametersThrow) {
  EXPECT_THROW((void)gateMatrix(GateKind::RX, {}), std::invalid_argument);
  EXPECT_THROW((void)gateMatrix(GateKind::U3, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)gateMatrix(GateKind::U3, {1.0, 2.0, 3.0}));
}

TEST(Gates, ParamCounts) {
  EXPECT_EQ(gateParamCount(GateKind::H), 0u);
  EXPECT_EQ(gateParamCount(GateKind::RZ), 1u);
  EXPECT_EQ(gateParamCount(GateKind::U2), 2u);
  EXPECT_EQ(gateParamCount(GateKind::U3), 3u);
}

TEST(Gates, AdjointIsConjugateTranspose) {
  const Matrix2 m{Complex{1, 2}, Complex{3, 4}, Complex{5, 6}, Complex{7, 8}};
  const Matrix2 a = adjoint2(m);
  EXPECT_EQ(a[0], std::conj(m[0]));
  EXPECT_EQ(a[1], std::conj(m[2]));
  EXPECT_EQ(a[2], std::conj(m[1]));
  EXPECT_EQ(a[3], std::conj(m[3]));
}

TEST(Gates, OperationToStringReadable) {
  Operation op{GateKind::RZ, 3, {1, 2}, {0.5}};
  const std::string s = op.toString();
  EXPECT_NE(s.find("ccrz"), std::string::npos);
  EXPECT_NE(s.find("q3"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(Gates, SupremacySqrtWUnitary) {
  const auto sw = gateMatrix(GateKind::SW, {});
  EXPECT_TRUE(isUnitary2(sw));
  // sw^2 equals W = (X + Y)/sqrt(2) up to the conventional -i global phase.
  const auto sq = matMul2(sw, sw);
  const Complex i{0, 1};
  const Matrix2 w{Complex{}, (Complex{1.0} - i) * SQRT2_INV,
                  (Complex{1.0} + i) * SQRT2_INV, Complex{}};
  const Matrix2 minusIW{-i * w[0], -i * w[1], -i * w[2], -i * w[3]};
  EXPECT_LT(matDistance(sq, minusIW), 1e-12);
}

}  // namespace
}  // namespace fdd::qc
