// Boundary conditions across the public API that no other suite pins down.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "flatdd/conversion.hpp"
#include "flatdd/dmav.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "helpers.hpp"
#include "qasm/lexer.hpp"
#include "qasm/parser.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/observables.hpp"

namespace fdd {
namespace {

TEST(FlatDDEdge, TriggerOnFinalGateStaysInDD) {
  // Forcing the conversion threshold at exactly the last gate leaves no
  // remaining work for DMAV; FlatDD must not convert.
  const auto circuit = circuits::ghz(6);  // 6 gates
  flat::FlatDDOptions opt;
  opt.threads = 2;
  opt.forceConversionAtGate = circuit.numGates();
  flat::FlatDDSimulator sim{6, opt};
  sim.simulate(circuit);
  EXPECT_FALSE(sim.stats().converted);
  EXPECT_EQ(sim.stats().ddGates, circuit.numGates());
}

TEST(FlatDDEdge, SingleGateCircuit) {
  qc::Circuit c{3};
  c.h(1);
  flat::FlatDDSimulator sim{3, {.threads = 2}};
  sim.simulate(c);
  EXPECT_NEAR(std::abs(sim.amplitude(0)), SQRT2_INV, 1e-10);
  EXPECT_NEAR(std::abs(sim.amplitude(2)), SQRT2_INV, 1e-10);
}

TEST(FlatDDEdge, EmptyCircuitIsZeroState) {
  const qc::Circuit c{4};
  flat::FlatDDSimulator sim{4, {.threads = 2}};
  sim.simulate(c);
  EXPECT_FALSE(sim.stats().converted);
  EXPECT_NEAR(std::abs(sim.amplitude(0) - Complex{1.0}), 0.0, 1e-12);
}

TEST(FlatDDEdge, FusionSecondsRecordedWhenFusing) {
  flat::FlatDDOptions opt;
  opt.threads = 2;
  opt.fusion = flat::FusionMode::DmavAware;
  opt.forceConversionAtGate = 1;
  flat::FlatDDSimulator sim{6, opt};
  sim.simulate(circuits::vqe(6, 2, 301));
  EXPECT_TRUE(sim.stats().converted);
  EXPECT_GT(sim.stats().fusionSeconds, 0.0);
  EXPECT_LT(sim.stats().dmavGates, circuits::vqe(6, 2, 301).numGates());
}

TEST(DmavEdge, ThreadCountBeyondPoolIsClamped) {
  const Qubit n = 5;
  dd::Package p{n};
  const auto v = test::randomState(n, 302);
  AlignedVector<Complex> in(v.begin(), v.end());
  AlignedVector<Complex> out(v.size());
  const dd::mEdge m = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 2);
  // 10000 threads clamps to the pool size (a power of two <= 2^n).
  flat::dmav(m, n, in, out, 10000);
  const qc::Operation op{qc::GateKind::H, 2, {}, {}};
  EXPECT_STATE_NEAR(out, test::denseApply(test::denseOperator(op, n), v),
                    1e-10);
}

TEST(ConversionEdge, SingleQubitStates) {
  dd::Package p{1};
  const dd::vEdge s = p.fromArray(test::randomState(1, 303));
  const auto out = flat::ddToArrayParallel(s, 1, 4);
  EXPECT_STATE_NEAR(out, p.toArray(s), 1e-12);
}

TEST(ConversionEdge, SupremacyStateHasNoZeroSkips) {
  // A fully dense random state has no zero edges anywhere.
  const Qubit n = 8;
  sim::DDSimulator s{n};
  s.simulate(circuits::supremacy(n, 8, 304));
  AlignedVector<Complex> out(Index{1} << n);
  const auto stats = flat::ddToArrayParallel(s.state(), n, out, 4);
  EXPECT_EQ(stats.zeroSkips, 0u);
}

TEST(GeneratorEdge, AdderValidatesWidth) {
  EXPECT_THROW((void)circuits::adder(0, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)circuits::adder(31, 0, 0), std::invalid_argument);
}

TEST(GeneratorEdge, QpeValidatesPrecision) {
  EXPECT_THROW((void)circuits::qpe(0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)circuits::qpe(31, 0.5), std::invalid_argument);
}

TEST(GeneratorEdge, GroverExplicitIterationCount) {
  const auto c1 = circuits::grover(4, 1);
  const auto c2 = circuits::grover(4, 2);
  EXPECT_LT(c1.numGates(), c2.numGates());
}

TEST(GeneratorEdge, WStateMinimumSize) {
  EXPECT_THROW((void)circuits::wState(1), std::invalid_argument);
  EXPECT_NO_THROW((void)circuits::wState(2));
}

TEST(QasmEdge, GateDefWithoutQubitArgsIsAnError) {
  EXPECT_THROW((void)qasm::parse("qreg q[1]; gate foo { }"),
               qasm::QasmError);
}

TEST(QasmEdge, EmptyParameterListAllowed) {
  const auto c = qasm::parse("qreg q[1]; gate foo() a { x a; } foo() q[0];");
  ASSERT_EQ(c.numGates(), 1u);
  EXPECT_EQ(c[0].kind, qc::GateKind::X);
}

TEST(QasmEdge, CrlfLineEndings) {
  const auto c =
      qasm::parse("qreg q[2];\r\nh q[0];\r\ncx q[0],q[1];\r\n");
  EXPECT_EQ(c.numGates(), 2u);
}

TEST(QasmEdge, CommentAtEndOfFileWithoutNewline) {
  const auto c = qasm::parse("qreg q[1]; h q[0]; // trailing comment");
  EXPECT_EQ(c.numGates(), 1u);
}

TEST(PauliEdge, IdentityExpectationIsNorm) {
  const auto v = test::randomState(4, 305);
  const auto e = sim::expectation(v, sim::PauliString{});
  EXPECT_NEAR(e.real(), 1.0, 1e-10);  // normalized state
}

TEST(ArraySimEdge, SingleQubitSimulator) {
  sim::ArraySimulator s{1};
  s.applyOperation({qc::GateKind::H, 0, {}, {}});
  s.applyOperation({qc::GateKind::Z, 0, {}, {}});
  s.applyOperation({qc::GateKind::H, 0, {}, {}});
  // HZH = X
  EXPECT_NEAR(std::abs(s.amplitude(1) - Complex{1.0}), 0.0, 1e-12);
}

TEST(DDSimEdge, ResetBetweenCircuits) {
  sim::DDSimulator s{4};
  s.simulate(circuits::ghz(4));
  s.reset();
  EXPECT_EQ(s.gatesApplied(), 0u);
  s.simulate(circuits::wState(4));
  // W state: P(exactly one |1>) == 1.
  fp total = 0;
  for (const Index i : {1u, 2u, 4u, 8u}) {
    total += norm2(s.amplitude(i));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PackageEdge, MaxSupportedQubitCountConstructs) {
  // Construction must not allocate 2^n anything (DD packages are lazy).
  dd::Package p{40};
  const dd::vEdge s = p.makeBasisState(0);
  EXPECT_EQ(p.nodeCount(s), 40u);
}

}  // namespace
}  // namespace fdd
