// DD operations vs dense references: gate DD construction, matrix-vector and
// matrix-matrix multiplication, vector addition, norm preservation.

#include <gtest/gtest.h>

#include "dd/package.hpp"
#include "helpers.hpp"

namespace fdd::dd {
namespace {

/// Dense matrix extracted column-by-column from a DD via multiply with basis
/// states — exercises getAmplitude + multiply together.
test::DenseMatrix extractDense(Package& p, const mEdge& m, Qubit n) {
  const Index dim = Index{1} << n;
  test::DenseMatrix out(dim, std::vector<Complex>(dim));
  for (Index col = 0; col < dim; ++col) {
    const vEdge basis = p.makeBasisState(col);
    const vEdge res = p.multiply(m, basis);
    for (Index row = 0; row < dim; ++row) {
      out[row][col] = p.getAmplitude(res, row);
    }
  }
  return out;
}

fp denseDistance(const test::DenseMatrix& a, const test::DenseMatrix& b) {
  fp d = 0;
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t c = 0; c < a.size(); ++c) {
      d = std::max(d, std::abs(a[r][c] - b[r][c]));
    }
  }
  return d;
}

struct GateCase {
  qc::Operation op;
  Qubit n;
  const char* label;
};

class GateDDs : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateDDs, MatchesDenseOperator) {
  const auto& [op, n, label] = GetParam();
  Package p{n};
  const mEdge m = p.makeGateDD(op);
  const auto dense = extractDense(p, m, n);
  const auto ref = test::denseOperator(op, n);
  EXPECT_LT(denseDistance(dense, ref), 1e-10) << label;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GateDDs,
    ::testing::Values(
        GateCase{{qc::GateKind::H, 0, {}, {}}, 1, "h_q0_n1"},
        GateCase{{qc::GateKind::H, 1, {}, {}}, 3, "h_q1_n3"},
        GateCase{{qc::GateKind::X, 2, {}, {}}, 3, "x_top"},
        GateCase{{qc::GateKind::X, 1, {0}, {}}, 2, "cx_ctrl_below"},
        GateCase{{qc::GateKind::X, 0, {1}, {}}, 2, "cx_ctrl_above"},
        GateCase{{qc::GateKind::X, 0, {3}, {}}, 4, "cx_far_ctrl_above"},
        GateCase{{qc::GateKind::X, 3, {0}, {}}, 4, "cx_far_ctrl_below"},
        GateCase{{qc::GateKind::Z, 1, {0, 2}, {}}, 3, "ccz_mixed"},
        GateCase{{qc::GateKind::X, 1, {0, 2, 3}, {}}, 4, "cccx"},
        GateCase{{qc::GateKind::RZ, 1, {}, {0.37}}, 2, "rz"},
        GateCase{{qc::GateKind::RY, 0, {2}, {1.1}}, 3, "cry_above"},
        GateCase{{qc::GateKind::P, 2, {0}, {0.9}}, 3, "cp"},
        GateCase{{qc::GateKind::U3, 1, {}, {0.3, 0.5, 0.7}}, 2, "u3"},
        GateCase{{qc::GateKind::SW, 0, {}, {}}, 2, "sqrtw"}));

TEST(DDOps, HadamardOnZeroGivesPlusState) {
  Package p{1};
  const mEdge h = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 0);
  const vEdge s = p.multiply(h, p.makeZeroState());
  EXPECT_NEAR(std::abs(p.getAmplitude(s, 0) - Complex{SQRT2_INV}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(p.getAmplitude(s, 1) - Complex{SQRT2_INV}), 0.0, 1e-12);
}

TEST(DDOps, BellStateViaTwoGates) {
  Package p{2};
  vEdge s = p.makeZeroState();
  s = p.multiply(p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), 0), s);
  const Qubit ctrl[] = {0};
  s = p.multiply(
      p.makeGateDD(qc::gateMatrix(qc::GateKind::X, {}), 1,
                   std::span<const Qubit>{ctrl, 1}),
      s);
  EXPECT_NEAR(std::abs(p.getAmplitude(s, 0) - Complex{SQRT2_INV}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(p.getAmplitude(s, 3) - Complex{SQRT2_INV}), 0.0, 1e-12);
  EXPECT_EQ(p.getAmplitude(s, 1), Complex{});
  EXPECT_EQ(p.getAmplitude(s, 2), Complex{});
}

TEST(DDOps, MultiplyPreservesNorm) {
  const Qubit n = 5;
  Package p{n};
  const auto circuit = test::randomCircuit(n, 40, 9);
  vEdge s = p.makeZeroState();
  p.incRef(s);
  for (const auto& op : circuit) {
    const vEdge next = p.multiply(p.makeGateDD(op), s);
    p.incRef(next);
    p.decRef(s);
    s = next;
    const Complex ip = p.innerProduct(s, s);
    EXPECT_NEAR(ip.real(), 1.0, 1e-9);
    EXPECT_NEAR(ip.imag(), 0.0, 1e-9);
  }
}

TEST(DDOps, RandomCircuitMatchesDenseReference) {
  const Qubit n = 4;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Package p{n};
    const auto circuit = test::randomCircuit(n, 25, seed);
    vEdge s = p.makeZeroState();
    for (const auto& op : circuit) {
      s = p.multiply(p.makeGateDD(op), s);
    }
    const auto ref = test::denseSimulate(circuit);
    for (Index i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(std::abs(p.getAmplitude(s, i) - ref[i]), 0.0, 1e-9);
    }
  }
}

TEST(DDOps, AddIsCommutativeAndMatchesDense) {
  const Qubit n = 3;
  Package p{n};
  const auto va = test::randomState(n, 4);
  const auto vb = test::randomState(n, 5);
  const vEdge a = p.fromArray(va);
  const vEdge b = p.fromArray(vb);
  const vEdge ab = p.add(a, b, n - 1);
  const vEdge ba = p.add(b, a, n - 1);
  for (Index i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(std::abs(p.getAmplitude(ab, i) - (va[i] + vb[i])), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(p.getAmplitude(ba, i) - (va[i] + vb[i])), 0.0, 1e-9);
  }
}

TEST(DDOps, AddWithZeroIsIdentity) {
  Package p{3};
  const vEdge a = p.makeBasisState(5);
  const vEdge r = p.add(a, vEdge::zero(), 2);
  EXPECT_EQ(r.n, a.n);
}

TEST(DDOps, AddOppositeVectorsGivesZero) {
  const Qubit n = 3;
  Package p{n};
  auto v = test::randomState(n, 6);
  const vEdge a = p.fromArray(v);
  for (auto& amp : v) {
    amp = -amp;
  }
  const vEdge b = p.fromArray(v);
  const vEdge r = p.add(a, b, n - 1);
  EXPECT_TRUE(r.isZero());
}

TEST(DDOps, MatrixMatrixMatchesComposition) {
  // DDMM(M2, M1) applied to |s> must equal M2 (M1 |s>).
  const Qubit n = 3;
  Package p{n};
  const auto c = test::randomCircuit(n, 2, 7);
  const mEdge m1 = p.makeGateDD(c[0]);
  const mEdge m2 = p.makeGateDD(c[1]);
  const mEdge fused = p.multiply(m2, m1);
  for (Index basis = 0; basis < (Index{1} << n); ++basis) {
    const vEdge s = p.makeBasisState(basis);
    const vEdge seq = p.multiply(m2, p.multiply(m1, s));
    const vEdge fus = p.multiply(fused, s);
    for (Index i = 0; i < (Index{1} << n); ++i) {
      EXPECT_NEAR(std::abs(p.getAmplitude(seq, i) - p.getAmplitude(fus, i)),
                  0.0, 1e-9);
    }
  }
}

TEST(DDOps, MatrixChainFusionMatchesDense) {
  const Qubit n = 3;
  Package p{n};
  const auto circuit = test::randomCircuit(n, 10, 8);
  mEdge acc = p.makeIdent(n - 1);
  for (const auto& op : circuit) {
    acc = p.multiply(p.makeGateDD(op), acc);
  }
  const vEdge s = p.multiply(acc, p.makeZeroState());
  const auto ref = test::denseSimulate(circuit);
  for (Index i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(std::abs(p.getAmplitude(s, i) - ref[i]), 0.0, 1e-9);
  }
}

TEST(DDOps, GateDDNodeCountIsCompact) {
  // Gate DDs stay O(n) nodes regardless of position — the property that
  // makes the DMAV hybrid attractive (Section 1).
  const Qubit n = 12;
  Package p{n};
  for (Qubit target = 0; target < n; ++target) {
    const mEdge m = p.makeGateDD(qc::gateMatrix(qc::GateKind::H, {}), target);
    EXPECT_LE(p.nodeCount(m), static_cast<std::size_t>(n));
  }
  // A controlled gate is also linear (controls add identity side chains).
  const Qubit ctrl[] = {0, 5};
  const mEdge cc = p.makeGateDD(qc::gateMatrix(qc::GateKind::X, {}), 9,
                                std::span<const Qubit>{ctrl, 2});
  EXPECT_LE(p.nodeCount(cc), static_cast<std::size_t>(3 * n));
}

TEST(DDOps, GateBuildErrors) {
  Package p{3};
  const auto h = qc::gateMatrix(qc::GateKind::H, {});
  EXPECT_THROW((void)p.makeGateDD(h, 3), std::out_of_range);
  const Qubit badCtrl[] = {7};
  EXPECT_THROW((void)p.makeGateDD(h, 0, std::span<const Qubit>{badCtrl, 1}),
               std::out_of_range);
  const Qubit selfCtrl[] = {1};
  EXPECT_THROW((void)p.makeGateDD(h, 1, std::span<const Qubit>{selfCtrl, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdd::dd
