// Canonical complex table: tolerance merging, bucket-boundary robustness,
// zero canonicalization, bit-hashability of representatives.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "dd/complex_table.hpp"

namespace fdd::dd {
namespace {

TEST(RealTable, ExactValuesAreStable) {
  RealTable t{1e-10};
  const fp a = t.lookup(0.123456);
  EXPECT_EQ(t.lookup(0.123456), a);
}

TEST(RealTable, NearbyValuesMerge) {
  RealTable t{1e-10};
  const fp a = t.lookup(0.5);
  const fp b = t.lookup(0.5 + 1e-12);
  const fp c = t.lookup(0.5 - 1e-12);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(RealTable, DistantValuesStaySeparate) {
  RealTable t{1e-10};
  EXPECT_NE(t.lookup(0.5), t.lookup(0.5 + 1e-6));
}

TEST(RealTable, NegativeZeroCanonicalizesToPositiveZero) {
  RealTable t{1e-10};
  const fp z = t.lookup(-0.0);
  EXPECT_EQ(z, 0.0);
  EXPECT_FALSE(std::signbit(z));
}

TEST(RealTable, BucketBoundaryStraddling) {
  // Two values within tolerance but potentially in adjacent buckets must
  // still merge — this is what the neighbor probing is for.
  const fp tol = 1e-10;
  RealTable t{tol};
  const fp width = 4 * tol;
  for (int k = 1; k < 50; ++k) {
    const fp boundary = k * width;
    const fp lo = boundary - tol / 4;
    const fp hi = boundary + tol / 4;
    const fp a = t.lookup(lo);
    const fp b = t.lookup(hi);
    EXPECT_EQ(a, b) << "k=" << k;
  }
}

TEST(RealTable, SeededConstantsAreRepresentatives) {
  RealTable t{1e-10};
  EXPECT_EQ(t.lookup(SQRT2_INV + 1e-13), SQRT2_INV);
  EXPECT_EQ(t.lookup(1.0 - 1e-13), 1.0);
  EXPECT_EQ(t.lookup(-0.5 + 1e-13), -0.5);
}

TEST(ComplexTable, ComponentsCanonicalizedIndependently) {
  ComplexTable t{1e-10};
  const Complex a = t.lookup({0.25, 0.75});
  const Complex b = t.lookup({0.25 + 1e-12, 0.75 - 1e-12});
  EXPECT_TRUE(weightEqual(a, b));
  EXPECT_EQ(weightHash(a), weightHash(b));
}

TEST(ComplexTable, ZeroSnapsExactly) {
  ComplexTable t{1e-10};
  const Complex z = t.lookup({1e-12, -1e-12});
  EXPECT_EQ(z, Complex{});
}

TEST(ComplexTable, HashDistinguishesDistinctValues) {
  ComplexTable t{1e-10};
  const Complex a = t.lookup({0.1, 0.2});
  const Complex b = t.lookup({0.2, 0.1});
  EXPECT_NE(weightHash(a), weightHash(b));
}

TEST(ComplexTable, RandomizedIdempotence) {
  ComplexTable t{1e-10};
  Xoshiro256 rng{123};
  for (int i = 0; i < 2000; ++i) {
    const Complex z{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Complex c1 = t.lookup(z);
    const Complex c2 = t.lookup(c1);
    EXPECT_TRUE(weightEqual(c1, c2));
    EXPECT_LT(std::abs(c1 - z), 2e-10);
  }
}

TEST(ComplexTable, SizeGrowsOnlyForNewValues) {
  ComplexTable t{1e-10};
  const std::size_t base = t.size();
  (void)t.lookup({0.33, 0.0});
  EXPECT_EQ(t.size(), base + 1);
  (void)t.lookup({0.33, 0.0});
  EXPECT_EQ(t.size(), base + 1);
  EXPECT_GT(t.memoryBytes(), 0u);
}

}  // namespace
}  // namespace fdd::dd
