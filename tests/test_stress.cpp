// Stress and failure-injection tests: tiny GC thresholds, aggressive
// complex-table rebuilds, tolerance sweeps, QASM fuzzing, and thread-pool
// hammering. These guard the failure modes that only appear under pressure.

#include <gtest/gtest.h>

#include <atomic>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "dd/package.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "helpers.hpp"
#include "parallel/thread_pool.hpp"
#include "qasm/lexer.hpp"
#include "qasm/parser.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd {
namespace {

TEST(GcStress, TinyThresholdKeepsSimulationCorrect) {
  // GC after nearly every gate: shared nodes must never be reclaimed while
  // reachable from the root.
  const Qubit n = 7;
  const auto circuit = circuits::supremacy(n, 8, 201);
  sim::DDSimulator s{n};
  s.package().setGcThreshold(1);  // collect at every opportunity
  s.simulate(circuit);
  sim::ArraySimulator ref{n};
  ref.simulate(circuit);
  EXPECT_STATE_NEAR(s.stateVector(), ref.state(), 1e-9);
  EXPECT_GT(s.package().stats().gcRuns, 10u);
}

TEST(GcStress, AggressiveComplexTableRebuilds) {
  const Qubit n = 7;
  const auto circuit = circuits::dnn(n, 5, 202);
  sim::DDSimulator s{n};
  s.package().setGcThreshold(1);
  s.package().setComplexTableRebuildThreshold(64);  // rebuild constantly
  s.simulate(circuit);
  sim::ArraySimulator ref{n};
  ref.simulate(circuit);
  EXPECT_STATE_NEAR(s.stateVector(), ref.state(), 1e-8);
}

TEST(GcStress, FlatDDSurvivesTinyThresholds) {
  const Qubit n = 8;
  const auto circuit = circuits::supremacy(n, 8, 203);
  flat::FlatDDSimulator sim{n, {.threads = 2}};
  // No direct access to the internal package's thresholds from options;
  // instead force extra pressure with per-gate forced conversion... the
  // point here is the default path under a deep circuit.
  sim.simulate(circuit);
  sim::ArraySimulator ref{n};
  ref.simulate(circuit);
  EXPECT_STATE_NEAR(sim.stateVector(), ref.state(), 1e-9);
}

class ToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceSweep, SimulationAccuracyTracksTolerance) {
  const fp tol = GetParam();
  const Qubit n = 6;
  const auto circuit = circuits::qft(n, 21);
  sim::DDSimulator s{n, tol};
  s.simulate(circuit);
  const auto ref = test::denseSimulate(circuit);
  // Error should be bounded by ~tolerance * gate count (generous factor).
  const fp bound = std::max(1e-9, tol * static_cast<fp>(
                                      circuit.numGates()) * 100);
  EXPECT_STATE_NEAR(s.stateVector(), ref, bound);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ToleranceSweep,
                         ::testing::Values(1e-13, 1e-10, 1e-8, 1e-6));

TEST(ToleranceSweep, CoarseToleranceMergesMoreNodes) {
  const Qubit n = 8;
  const auto circuit = circuits::dnn(n, 3, 204);
  sim::DDSimulator fine{n, 1e-12};
  fine.simulate(circuit);
  sim::DDSimulator coarse{n, 1e-4};
  coarse.simulate(circuit);
  EXPECT_LE(coarse.stateNodeCount(), fine.stateNodeCount());
}

TEST(QasmFuzz, GarbageNeverCrashes) {
  Xoshiro256 rng{205};
  const std::string alphabet =
      "qregcx hzabc()[]{};,1234567890.+-*/^\"\npi_";
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const std::size_t len = rng.below(120);
    for (std::size_t i = 0; i < len; ++i) {
      garbage += alphabet[rng.below(alphabet.size())];
    }
    try {
      (void)qasm::parse(garbage);
    } catch (const qasm::QasmError&) {
      // expected for almost all inputs
    } catch (const std::exception& e) {
      // Any other exception type would indicate an internal logic error
      // escaping as the wrong category.
      FAIL() << "non-QasmError escaped: " << e.what() << "\ninput: "
             << garbage;
    }
  }
}

TEST(QasmFuzz, TruncationsOfValidProgramNeverCrash) {
  const std::string program = circuits::qft(5, 3).toQasm();
  for (std::size_t cut = 0; cut < program.size(); cut += 3) {
    try {
      (void)qasm::parse(program.substr(0, cut));
    } catch (const qasm::QasmError&) {
    }
  }
  SUCCEED();
}

TEST(ThreadPoolStress, RapidFireSmallRegions) {
  par::ThreadPool pool{8};
  std::atomic<long> total{0};
  for (int i = 0; i < 20000; ++i) {
    pool.run(2 + (i % 7), [&](unsigned) { total.fetch_add(1); });
  }
  long expected = 0;
  for (int i = 0; i < 20000; ++i) {
    expected += 2 + (i % 7);
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPoolStress, NestedParallelForsFromMainOnly) {
  // parallelFor regions issued back-to-back with varying widths and sizes.
  par::ThreadPool pool{4};
  Xoshiro256 rng{206};
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = 1 + rng.below(1000);
    std::vector<std::atomic<int>> hits(size);
    pool.parallelFor(1 + static_cast<unsigned>(rng.below(4)), 0, size,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
    for (const auto& h : hits) {
      ASSERT_EQ(h.load(), 1);
    }
  }
}

TEST(DmavStress, RepeatedGateApplicationsWithForcedGc) {
  // Gate DDs must stay valid across GC while DMAV is between gates (the
  // FlatDD loop decRefs after use; here we stress the incRef contract).
  const Qubit n = 6;
  dd::Package p{n};
  p.setGcThreshold(1);
  AlignedVector<Complex> v(Index{1} << n, Complex{});
  v[0] = Complex{1.0};
  AlignedVector<Complex> w(v.size());
  const auto circuit = circuits::vqe(n, 3, 207);
  for (const auto& op : circuit) {
    const dd::mEdge m = p.makeGateDD(op);
    p.incRef(m);
    p.garbageCollect(true);  // m must survive
    flat::dmav(m, n, v, w, 2);
    std::swap(v, w);
    p.decRef(m);
  }
  fp norm = 0;
  for (const auto& amp : v) {
    norm += norm2(amp);
  }
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(DeepCircuitStress, ThousandsOfGatesStayUnitary) {
  const Qubit n = 6;
  const auto circuit = circuits::dnn(n, 120, 208);  // ~2.2k gates
  ASSERT_GT(circuit.numGates(), 2000u);
  flat::FlatDDSimulator sim{n, {.threads = 2}};
  sim.simulate(circuit);
  const auto state = sim.stateVector();
  fp norm = 0;
  for (const auto& amp : state) {
    norm += norm2(amp);
  }
  EXPECT_NEAR(norm, 1.0, 1e-7);
}

TEST(ApproximateStress, RepeatedApproximationNeverDiverges) {
  const Qubit n = 8;
  dd::Package p{n};
  dd::vEdge s = p.fromArray(test::randomState(n, 209));
  p.incRef(s);
  for (int round = 0; round < 10; ++round) {
    const dd::vEdge a = p.approximate(s, 0.02);
    const Complex norm = p.innerProduct(a, a);
    ASSERT_NEAR(norm.real(), 1.0, 1e-8) << "round " << round;
    p.incRef(a);
    p.decRef(s);
    s = a;
  }
}

}  // namespace
}  // namespace fdd
