// EWMA conversion trigger (Section 3.1.1).

#include <gtest/gtest.h>

#include "flatdd/ewma.hpp"

namespace fdd::flat {
namespace {

TEST(Ewma, ValidatesParameters) {
  EXPECT_THROW(EwmaMonitor(0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(EwmaMonitor(1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(EwmaMonitor(-0.5, 2.0), std::invalid_argument);
  EXPECT_THROW(EwmaMonitor(0.9, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(EwmaMonitor(0.9, 2.0));
}

TEST(Ewma, FlatSizesNeverTrigger) {
  EwmaMonitor m{0.9, 2.0, 4, 16};
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(m.observe(1000)) << "i=" << i;
  }
}

TEST(Ewma, SlowLinearGrowthDoesNotTrigger) {
  EwmaMonitor m{0.9, 2.0, 8, 16};
  std::size_t size = 100;
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(m.observe(size)) << "i=" << i;
    size += 2;  // ~2% per step, far below the 2x threshold
  }
}

TEST(Ewma, SuddenSpikeTriggers) {
  EwmaMonitor m{0.9, 2.0, 4, 16};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(m.observe(100));
  }
  EXPECT_TRUE(m.observe(1000));  // 10x the moving average
}

TEST(Ewma, ExponentialGrowthTriggersEventually) {
  EwmaMonitor m{0.9, 2.0, 4, 16};
  fp size = 32;
  bool triggered = false;
  int triggerStep = -1;
  for (int i = 0; i < 60 && !triggered; ++i) {
    triggered = m.observe(static_cast<std::size_t>(size));
    triggerStep = i;
    size *= 1.6;  // DD blow-up on irregular circuits is geometric
  }
  EXPECT_TRUE(triggered);
  EXPECT_GT(triggerStep, 3);  // not during warmup
}

TEST(Ewma, WarmupSuppressesEarlyTrigger) {
  EwmaMonitor m{0.9, 2.0, 10, 1};
  // A massive first observation would trigger a raw EWMA immediately.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(m.observe(1 << 20));
  }
}

TEST(Ewma, MinSizeSuppressesTinyDDs) {
  EwmaMonitor m{0.9, 2.0, 2, 1000};
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(m.observe(10));
  }
  EXPECT_FALSE(m.observe(500));  // 50x spike but below minSize
}

TEST(Ewma, BiasCorrectedValueTracksMean) {
  EwmaMonitor m{0.9, 2.0, 1, 1};
  for (int i = 0; i < 100; ++i) {
    (void)m.observe(250);
  }
  EXPECT_NEAR(m.value(), 250.0, 1e-6);
}

TEST(Ewma, BiasCorrectionAvoidsColdStartUnderestimate) {
  EwmaMonitor m{0.9, 2.0, 1, 1};
  (void)m.observe(100);
  // Raw EWMA would be 10; corrected must be 100.
  EXPECT_NEAR(m.value(), 100.0, 1e-9);
}

TEST(Ewma, ResetClearsHistory) {
  EwmaMonitor m{0.9, 2.0, 2, 1};
  (void)m.observe(100);
  (void)m.observe(100);
  m.reset();
  EXPECT_EQ(m.observations(), 0u);
  EXPECT_EQ(m.value(), 0.0);
}

TEST(Ewma, PaperDefaultsExposed) {
  EwmaMonitor m;
  EXPECT_DOUBLE_EQ(m.beta(), 0.9);
  EXPECT_DOUBLE_EQ(m.epsilon(), 2.0);
}

}  // namespace
}  // namespace fdd::flat
