// trace_summarize — offline reader for the Chrome trace-event JSON written
// by `flatdd --trace out.json` (src/obs/trace.hpp). Prints per-span
// aggregates (count, total, mean, p99), counter-track ranges, instants and
// per-thread event counts, so a trace is inspectable without a browser.
// Exits nonzero on malformed traces, which makes it double as the CI
// validator for the --trace artifact.
//
//   trace_summarize trace.json
//   trace_summarize --sort count --top 10 trace.json
//   trace_summarize --percentiles trace.json
//   trace_summarize --by-request serve_trace.json
//
// --percentiles widens the span table with p50/p90 columns. --by-request
// groups spans by the request_id arg the service stamps on them (see
// src/service/protocol.hpp) and prints one row per request with its
// queue-wait (service.queue_wait spans) vs execute (service.job spans)
// split — the server-side ledger for any request id a client holds.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace {

using fdd::json::Array;
using fdd::json::Object;
using fdd::json::Value;

struct SpanAgg {
  std::size_t count = 0;
  double totalUs = 0;
  std::vector<double> durationsUs;  // for exact quantiles
  std::map<double, std::size_t> perTid;
};

struct CounterAgg {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double last = 0;
};

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

double numberField(const Object& o, const char* key) {
  if (const auto it = o.find(key); it != o.end()) {
    if (const double* d = it->second.number()) {
      return *d;
    }
  }
  return 0;
}

std::string stringField(const Object& o, const char* key) {
  if (const auto it = o.find(key); it != o.end()) {
    if (const std::string* s = it->second.string()) {
      return *s;
    }
  }
  return {};
}

/// Per-request aggregate built from the request_id span args.
struct RequestAgg {
  std::size_t spanCount = 0;
  double queueWaitUs = 0;  // service.queue_wait spans
  double executeUs = 0;    // service.job spans
  double firstTsUs = 0;
  std::vector<std::string> ops;  // distinct top-level span names seen
};

int usage() {
  std::fprintf(stderr,
               "usage: trace_summarize [--sort total|count|mean|p99] "
               "[--top N] [--percentiles] [--by-request] trace.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string sortKey = "total";
  std::size_t top = 0;  // 0 = all
  bool percentiles = false;
  bool byRequest = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sort" && i + 1 < argc) {
      sortKey = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      top = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--percentiles") {
      percentiles = true;
    } else if (arg == "--by-request") {
      byRequest = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    return usage();
  }

  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  Value root;
  try {
    root = fdd::json::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }
  const Object* topObj = root.object();
  if (topObj == nullptr) {
    std::fprintf(stderr, "%s: top level is not an object\n", path.c_str());
    return 1;
  }
  const auto eventsIt = topObj->find("traceEvents");
  const Array* events =
      eventsIt != topObj->end() ? eventsIt->second.array() : nullptr;
  if (events == nullptr) {
    std::fprintf(stderr, "%s: missing traceEvents array\n", path.c_str());
    return 1;
  }

  std::map<std::string, SpanAgg> spans;
  std::map<std::string, CounterAgg> counters;
  std::map<std::string, std::size_t> instants;
  std::map<double, std::string> threadNames;
  std::map<double, std::size_t> perThreadEvents;
  std::map<std::string, RequestAgg> requests;  // request_id -> aggregate

  for (const Value& entry : *events) {
    const Object* ev = entry.object();
    if (ev == nullptr) {
      std::fprintf(stderr, "%s: non-object trace event\n", path.c_str());
      return 1;
    }
    const std::string ph = stringField(*ev, "ph");
    const std::string name = stringField(*ev, "name");
    const double tid = numberField(*ev, "tid");
    if (ph == "M") {
      if (name == "thread_name") {
        if (const auto it = ev->find("args"); it != ev->end()) {
          if (const Object* args = it->second.object()) {
            threadNames[tid] = stringField(*args, "name");
          }
        }
      }
      continue;
    }
    ++perThreadEvents[tid];
    if (ph == "X") {
      SpanAgg& agg = spans[name];
      const double dur = numberField(*ev, "dur");
      ++agg.count;
      agg.totalUs += dur;
      agg.durationsUs.push_back(dur);
      ++agg.perTid[tid];
      if (const auto it = ev->find("args"); it != ev->end()) {
        if (const Object* args = it->second.object()) {
          const std::string requestId = stringField(*args, "request_id");
          if (!requestId.empty()) {
            RequestAgg& req = requests[requestId];
            const double ts = numberField(*ev, "ts");
            if (req.spanCount == 0 || ts < req.firstTsUs) {
              req.firstTsUs = ts;
            }
            ++req.spanCount;
            if (name == "service.queue_wait") {
              req.queueWaitUs += dur;
            } else if (name == "service.job") {
              req.executeUs += dur;
            }
            if (std::find(req.ops.begin(), req.ops.end(), name) ==
                req.ops.end()) {
              req.ops.push_back(name);
            }
          }
        }
      }
    } else if (ph == "C") {
      CounterAgg& agg = counters[name];
      double value = 0;
      if (const auto it = ev->find("args"); it != ev->end()) {
        if (const Object* args = it->second.object()) {
          value = numberField(*args, "value");
        }
      }
      if (agg.count == 0) {
        agg.min = agg.max = value;
      }
      agg.min = std::min(agg.min, value);
      agg.max = std::max(agg.max, value);
      agg.last = value;
      ++agg.count;
    } else if (ph == "i") {
      ++instants[name];
    }
  }

  struct Row {
    std::string name;
    std::size_t count;
    double totalUs;
    double meanUs;
    double p50Us;
    double p90Us;
    double p99Us;
    std::size_t tids;
  };
  std::vector<Row> rows;
  rows.reserve(spans.size());
  for (auto& [name, agg] : spans) {
    std::sort(agg.durationsUs.begin(), agg.durationsUs.end());
    rows.push_back(Row{name, agg.count, agg.totalUs,
                       agg.totalUs / static_cast<double>(agg.count),
                       quantile(agg.durationsUs, 0.50),
                       quantile(agg.durationsUs, 0.90),
                       quantile(agg.durationsUs, 0.99), agg.perTid.size()});
  }
  std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    if (sortKey == "count") return a.count > b.count;
    if (sortKey == "mean") return a.meanUs > b.meanUs;
    if (sortKey == "p99") return a.p99Us > b.p99Us;
    return a.totalUs > b.totalUs;
  });

  std::printf("%s: %zu events, %zu span kinds, %zu counter tracks, "
              "%zu threads\n",
              path.c_str(), events->size(), spans.size(), counters.size(),
              perThreadEvents.size());

  if (!rows.empty()) {
    if (percentiles) {
      std::printf("\n%-24s %10s %12s %12s %12s %12s %12s %5s\n", "span",
                  "count", "total_ms", "mean_us", "p50_us", "p90_us",
                  "p99_us", "tids");
    } else {
      std::printf("\n%-24s %10s %12s %12s %12s %5s\n", "span", "count",
                  "total_ms", "mean_us", "p99_us", "tids");
    }
    std::size_t printed = 0;
    for (const Row& r : rows) {
      if (top != 0 && printed++ >= top) {
        break;
      }
      if (percentiles) {
        std::printf("%-24s %10zu %12.3f %12.3f %12.3f %12.3f %12.3f %5zu\n",
                    r.name.c_str(), r.count, r.totalUs / 1e3, r.meanUs,
                    r.p50Us, r.p90Us, r.p99Us, r.tids);
      } else {
        std::printf("%-24s %10zu %12.3f %12.3f %12.3f %5zu\n",
                    r.name.c_str(), r.count, r.totalUs / 1e3, r.meanUs,
                    r.p99Us, r.tids);
      }
    }
  }
  if (byRequest && !requests.empty()) {
    // Chronological by first span — the order requests actually hit the
    // service, not lexicographic id order.
    std::vector<std::pair<std::string, const RequestAgg*>> reqRows;
    reqRows.reserve(requests.size());
    for (const auto& [id, agg] : requests) {
      reqRows.emplace_back(id, &agg);
    }
    std::sort(reqRows.begin(), reqRows.end(),
              [](const auto& a, const auto& b) {
                return a.second->firstTsUs < b.second->firstTsUs;
              });
    std::printf("\n%-20s %6s %14s %14s %14s  %s\n", "request", "spans",
                "queue_wait_us", "execute_us", "total_us", "ops");
    std::size_t printed = 0;
    for (const auto& [id, agg] : reqRows) {
      if (top != 0 && printed++ >= top) {
        break;
      }
      std::string ops;
      for (const std::string& op : agg->ops) {
        if (!ops.empty()) {
          ops += ',';
        }
        ops += op;
      }
      std::printf("%-20s %6zu %14.3f %14.3f %14.3f  %s\n", id.c_str(),
                  agg->spanCount, agg->queueWaitUs, agg->executeUs,
                  agg->queueWaitUs + agg->executeUs, ops.c_str());
    }
    std::printf("%zu requests total\n", requests.size());
  }
  if (!counters.empty()) {
    std::printf("\n%-24s %10s %14s %14s %14s\n", "counter", "points", "min",
                "max", "last");
    for (const auto& [name, agg] : counters) {
      std::printf("%-24s %10zu %14.3f %14.3f %14.3f\n", name.c_str(),
                  agg.count, agg.min, agg.max, agg.last);
    }
  }
  if (!instants.empty()) {
    std::printf("\n%-24s %10s\n", "instant", "count");
    for (const auto& [name, count] : instants) {
      std::printf("%-24s %10zu\n", name.c_str(), count);
    }
  }
  std::printf("\n%-24s %10s\n", "thread", "events");
  for (const auto& [tid, count] : perThreadEvents) {
    const auto nameIt = threadNames.find(tid);
    std::printf("%-24s %10zu\n",
                nameIt != threadNames.end()
                    ? nameIt->second.c_str()
                    : ("tid " + std::to_string(static_cast<long>(tid))).c_str(),
                count);
  }
  return 0;
}
