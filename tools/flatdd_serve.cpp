// flatdd_serve — the simulation service front end. Speaks the line-delimited
// JSON protocol (see src/service/protocol.hpp) over stdin/stdout by default,
// or over a loopback TCP listener with --tcp PORT (one thread per
// connection; all connections share one Service, so sessions are reachable
// from any connection and per-session ordering holds across them).
//
//   echo '{"op":"ping"}' | flatdd_serve
//   flatdd_serve --tcp 7117 --workers 4 --trace serve_trace.json
//   flatdd_serve --tcp 7117 --metrics-port 7118 --slow-log slow.jsonl
//
// The process exits after a {"op":"shutdown"} request (or EOF on stdin in
// stdio mode). With --trace, the observability runtime is enabled and a
// Chrome trace (service.job / service.session_apply spans, queue-depth
// counters) is written on exit — feed it to trace_summarize.
//
// --metrics-port starts the admin HTTP listener (also implies obs): GET
// /metrics for Prometheus exposition, /healthz for liveness, /tracez for a
// live flight-recorder export, all without pausing workers. --slow-log
// appends structured JSONL records for requests slower than --slow-ms.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "obs/trace.hpp"
#include "service/admin.hpp"
#include "service/protocol.hpp"

namespace {

using fdd::svc::Service;
using fdd::svc::ServiceConfig;

struct Options {
  int tcpPort = -1;      // <0: stdio mode
  int metricsPort = -1;  // <0: no admin listener
  unsigned workers = 4;
  unsigned threads = 1;
  std::size_t planCacheCapacity = 256;
  std::string traceFile;
  std::string slowLogFile;
  double slowMs = 250;
  bool help = false;
};

void printUsage() {
  std::cout
      << "usage: flatdd_serve [options]\n"
         "  --tcp PORT          listen on 127.0.0.1:PORT instead of stdio\n"
         "  --metrics-port PORT admin listener on 127.0.0.1:PORT (implies\n"
         "                      obs): GET /metrics, /healthz, /tracez\n"
         "  --workers N         job-queue worker threads (default 4)\n"
         "  --threads N         default simulation threads per session "
         "(default 1)\n"
         "  --plan-cache N      shared DMAV plan cache capacity (default "
         "256)\n"
         "  --trace FILE        enable obs, write a Chrome trace on exit\n"
         "  --slow-log FILE     append JSONL records for slow requests\n"
         "  --slow-ms N         slow-request threshold in ms (default 250;\n"
         "                      0 logs every request)\n"
         "  --help              this text\n";
}

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(arg + " expects a value");
      }
      return argv[++i];
    };
    if (arg == "--tcp") {
      opt.tcpPort = std::stoi(value());
    } else if (arg == "--metrics-port") {
      opt.metricsPort = std::stoi(value());
    } else if (arg == "--slow-log") {
      opt.slowLogFile = value();
    } else if (arg == "--slow-ms") {
      opt.slowMs = std::stod(value());
    } else if (arg == "--workers") {
      opt.workers = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--plan-cache") {
      opt.planCacheCapacity = std::stoul(value());
    } else if (arg == "--trace") {
      opt.traceFile = value();
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else {
      throw std::invalid_argument("unknown option " + arg);
    }
  }
  return opt;
}

/// Tracks live connection fds so shutdown can unblock their reads.
class ConnectionRegistry {
 public:
  void add(int fd) {
    const std::lock_guard lock{mutex_};
    fds_.insert(fd);
  }
  void remove(int fd) {
    const std::lock_guard lock{mutex_};
    fds_.erase(fd);
  }
  void shutdownAll() {
    const std::lock_guard lock{mutex_};
    for (const int fd : fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }

 private:
  std::mutex mutex_;
  std::set<int> fds_;
};

void serveConnection(Service& service, int fd, ConnectionRegistry& registry,
                     std::atomic<bool>& stopping) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string_view line{buffer.data() + start, nl - start};
      start = nl + 1;
      if (line.empty()) {
        continue;
      }
      std::string response = service.handleLine(line);
      response += '\n';
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t w =
            ::write(fd, response.data() + sent, response.size() - sent);
        if (w <= 0) {
          break;
        }
        sent += static_cast<std::size_t>(w);
      }
      if (service.shutdownRequested()) {
        stopping.store(true);
        registry.shutdownAll();
      }
    }
    buffer.erase(0, start);
    if (stopping.load()) {
      break;
    }
  }
  registry.remove(fd);
  ::close(fd);
}

int runTcp(Service& service, int port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    std::perror("bind");
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 16) != 0) {
    std::perror("listen");
    ::close(listener);
    return 1;
  }
  // The ready banner CI and bench/serve wait for before connecting.
  std::cerr << "flatdd_serve listening on 127.0.0.1:" << port << "\n"
            << std::flush;

  ConnectionRegistry registry;
  std::atomic<bool> stopping{false};
  std::vector<std::thread> connections;

  // A shutdown request inside a connection thread cannot unblock accept()
  // by itself; poke the listener from a watcher.
  std::thread watcher{[&] {
    while (!stopping.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::shutdown(listener, SHUT_RDWR);
  }};

  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      break;  // listener shut down (or hard error): stop accepting
    }
    registry.add(fd);
    connections.emplace_back(serveConnection, std::ref(service), fd,
                             std::ref(registry), std::ref(stopping));
  }
  stopping.store(true);
  watcher.join();
  registry.shutdownAll();
  for (std::thread& t : connections) {
    t.join();
  }
  ::close(listener);
  return 0;
}

int runStdio(Service& service) {
  std::cerr << "flatdd_serve ready (stdio)\n" << std::flush;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    std::cout << service.handleLine(line) << "\n" << std::flush;
    if (service.shutdownRequested()) {
      break;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A dropped TCP connection must not kill the server mid-write.
  std::signal(SIGPIPE, SIG_IGN);

  Options opt;
  try {
    opt = parseArgs(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "flatdd_serve: " << e.what() << "\n";
    printUsage();
    return 2;
  }
  if (opt.help) {
    printUsage();
    return 0;
  }

  // The admin listener serves /tracez and request-id-stamped spans, so it
  // implies the obs runtime just like --trace does.
  if (!opt.traceFile.empty() || opt.metricsPort >= 0) {
    fdd::obs::setEnabled(true);
  }

  ServiceConfig config;
  config.workers = opt.workers;
  config.planCacheCapacity = opt.planCacheCapacity;
  config.engineDefaults.threads = opt.threads;
  config.slowLogPath = opt.slowLogFile;
  config.slowRequestMs = opt.slowMs;

  int rc = 0;
  {
    Service service{config};
    std::unique_ptr<fdd::svc::AdminServer> admin;
    if (opt.metricsPort >= 0) {
      try {
        admin = std::make_unique<fdd::svc::AdminServer>(
            service, static_cast<std::uint16_t>(opt.metricsPort));
      } catch (const std::exception& e) {
        std::cerr << "flatdd_serve: " << e.what() << "\n";
        return 1;
      }
      std::cerr << "flatdd_serve admin on 127.0.0.1:" << admin->port()
                << "\n"
                << std::flush;
    }
    rc = opt.tcpPort >= 0 ? runTcp(service, opt.tcpPort)
                          : runStdio(service);
    // Admin stops before the service: /healthz and /tracez must never race
    // worker teardown.
  }  // service (and its worker threads) down before the trace is exported

  if (!opt.traceFile.empty()) {
    if (!fdd::tools::writeTextFile(opt.traceFile,
                                   fdd::obs::exportChromeTrace())) {
      std::cerr << "flatdd_serve: failed to write " << opt.traceFile << "\n";
      return 1;
    }
    std::cerr << "trace written to " << opt.traceFile << "\n";
  }
  return rc;
}
