// flatdd — command-line quantum circuit simulator.
//
//   flatdd --circuit supremacy --qubits 14 --depth 10 --backend flatdd
//   flatdd --qasm program.qasm --shots 1000 --top 8
//   flatdd --circuit ghz --qubits 20 --backend dd --stats
//   flatdd --circuit qft --qubits 12 --report report.json
//
// Backend selection, circuit-preparation passes and statistics all go
// through the engine layer (engine::SimulationEngine + BackendFactory);
// run --list-backends for what is registered. See --help for everything.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "common/prng.hpp"
#include "common/rss.hpp"
#include "engine/simulation_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/rss_sampler.hpp"
#include "parallel/thread_pool.hpp"
#include "qasm/parser.hpp"
#include "simd/kernels.hpp"

namespace {

using namespace fdd;

struct CliOptions {
  std::string circuit;
  std::string qasmFile;
  Qubit qubits = 12;
  unsigned depth = 8;
  std::uint64_t seed = 7;
  std::string backend = "flatdd";
  unsigned threads = 0;  // 0 = hardware concurrency
  std::vector<std::string> passes;
  std::size_t shots = 0;
  std::size_t top = 8;
  bool stats = false;
  bool planCache = true;
  bool ddReorder = false;
  bool obs = false;  // metrics without trace export
  std::string reportJson;
  std::string reportCsv;
  std::string traceJson;  // Chrome trace-event JSON (Perfetto-loadable)
  std::string traceCsv;   // per-gate trace as CSV
  std::string dotFile;
  std::string exportQasm;
};

void printHelp() {
  std::printf(R"(flatdd — hybrid decision-diagram / flat-array quantum circuit simulator

usage: flatdd [options]

circuit selection (one of):
  --circuit NAME     generated family: ghz, wstate, adder, qft, grover, bv,
                     dnn, vqe, knn, swaptest, supremacy, qpe, qaoa,
                     hiddenshift, qv, random
  --qasm FILE        OpenQASM 2.0 file

circuit parameters:
  --qubits N         qubit count (default 12)
  --depth N          layers / cycles / rounds for parameterized families
  --seed N           PRNG seed for randomized families (default 7)

execution:
  --backend NAME     registered backend (default flatdd); --list-backends
  --threads N        worker threads (default: hardware concurrency)
  --pass LIST        comma-separated circuit-preparation passes, in order:
                     ordering, optimize, fusion-dmav, fusion-kops
  --optimize         shorthand for appending the "optimize" pass
  --fusion MODE      none | dmav | kops — shorthand for the fusion-* passes
  --dd-reorder       sift adjacent DD levels at the EWMA trigger (flatdd):
                     a good-enough shrink defers the conversion

output:
  --shots N          sample N measurements from the final state
  --top K            print the K most probable outcomes (default 8)
  --stats            print the run report as text
  --no-plan-cache    disable the DMAV plan compiler (pre-plan recursive path)
  --report FILE      write the machine-readable run report as JSON
  --report-csv FILE  write the run report as key,value CSV
  --trace FILE       write a Chrome trace-event JSON (open in Perfetto or
                     chrome://tracing): spans for DD apply / conversion /
                     plan compile / DMAV replay, per-worker busy counters,
                     DD-size and RSS tracks, EWMA decision instants.
                     Enables the observability runtime for the run.
  --trace-csv FILE   write the per-gate trace as CSV (enables recording)
  --obs              enable the observability runtime without a trace file
                     (folds counters/histograms into --report / --stats)
  --dot FILE         write the final state DD as graphviz (dd backend)
  --export-qasm FILE write the (lowered) circuit as OpenQASM 2.0
  --list-backends    list registered backends and exit
  --help             this text
)");
}

qc::Circuit buildCircuit(const CliOptions& opt) {
  if (!opt.qasmFile.empty()) {
    return qasm::parseFile(opt.qasmFile);
  }
  const Qubit n = opt.qubits;
  const unsigned d = opt.depth;
  const std::uint64_t s = opt.seed;
  if (opt.circuit == "ghz") return circuits::ghz(n);
  if (opt.circuit == "wstate") return circuits::wState(n);
  if (opt.circuit == "adder") {
    return circuits::adder((n - 2) / 2, s % 1000, (s / 7) % 1000);
  }
  if (opt.circuit == "qft") return circuits::qft(n, s);
  if (opt.circuit == "grover") return circuits::grover(n);
  if (opt.circuit == "bv") return circuits::bernsteinVazirani(n - 1, s);
  if (opt.circuit == "dnn") return circuits::dnn(n, d, s);
  if (opt.circuit == "vqe") return circuits::vqe(n, d, s);
  if (opt.circuit == "knn") return circuits::knn(n | 1, s);
  if (opt.circuit == "swaptest") return circuits::swapTest(n | 1, s);
  if (opt.circuit == "supremacy") return circuits::supremacy(n, d, s);
  if (opt.circuit == "qpe") {
    return circuits::qpe(n - 1, static_cast<fp>(s % 128) / 128.0);
  }
  if (opt.circuit == "qaoa") return circuits::qaoa(n, d, s);
  if (opt.circuit == "hiddenshift") {
    return circuits::hiddenShift(n & ~1, s, s + 1);
  }
  if (opt.circuit == "qv") return circuits::quantumVolume(n, d, s);
  if (opt.circuit == "random") return circuits::randomUniversal(n, 20 * d, s);
  throw std::invalid_argument("unknown circuit family: " + opt.circuit);
}

void printTopOutcomes(std::span<const Complex> state, Qubit n,
                      std::size_t top) {
  std::vector<std::pair<double, Index>> probs;
  probs.reserve(state.size());
  for (Index i = 0; i < state.size(); ++i) {
    const double p = std::norm(state[i]);
    if (p > 1e-12) {
      probs.emplace_back(p, i);
    }
  }
  std::sort(probs.rbegin(), probs.rend());
  std::printf("top outcomes (%zu of %zu nonzero):\n",
              std::min(top, probs.size()), probs.size());
  for (std::size_t k = 0; k < top && k < probs.size(); ++k) {
    std::printf("  |");
    for (Qubit q = n - 1; q >= 0; --q) {
      std::printf("%d", static_cast<int>((probs[k].second >> q) & 1));
    }
    std::printf(">  p = %.6f\n", probs[k].first);
  }
}

void printHistogram(const std::vector<Index>& samples, Qubit n,
                    std::size_t top) {
  std::map<Index, std::size_t> counts;
  for (const Index s : samples) {
    ++counts[s];
  }
  std::vector<std::pair<std::size_t, Index>> sorted;
  sorted.reserve(counts.size());
  for (const auto& [idx, cnt] : counts) {
    sorted.emplace_back(cnt, idx);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  std::printf("measurement histogram (%zu shots, %zu distinct):\n",
              samples.size(), counts.size());
  for (std::size_t k = 0; k < top && k < sorted.size(); ++k) {
    std::printf("  |");
    for (Qubit q = n - 1; q >= 0; --q) {
      std::printf("%d", static_cast<int>((sorted[k].second >> q) & 1));
    }
    std::printf(">  %zu\n", sorted[k].first);
  }
}

void printStats(const engine::RunReport& report) {
  for (const auto& pass : report.passes) {
    std::printf("pass %-12s %zu -> %zu gates%s%s\n", pass.name.c_str(),
                pass.gatesBefore, pass.gatesAfter,
                pass.note.empty() ? "" : ": ", pass.note.c_str());
  }
  std::printf("phase split: %zu DD gates, %zu DMAV matrices%s\n",
              report.ddGates, report.dmavGates,
              report.converted ? "" : " (never converted)");
  if (report.converted) {
    std::printf("conversion at gate %zu took %.3f ms\n",
                report.conversionGateIndex, report.conversionSeconds * 1e3);
    std::printf("cached DMAVs: %zu (%zu cache hits)\n", report.cachedGates,
                report.cacheHits);
    if (report.planCacheHits + report.planCacheMisses > 0) {
      std::printf(
          "plan cache: %zu hits / %zu misses (%zu compiles, %.3f ms "
          "compiling, %.3f ms replaying)\n",
          report.planCacheHits, report.planCacheMisses, report.planCompiles,
          report.planCompileSeconds * 1e3, report.dmavReplaySeconds * 1e3);
    }
  }
  if (report.peakDDSize > 0) {
    std::printf("peak DD size: %zu nodes", report.peakDDSize);
    if (report.dmavModelCost > 0) {
      std::printf("; model cost %.3e MACs", report.dmavModelCost);
    }
    std::printf("\n");
  }
  if (report.reorderCount > 0) {
    std::printf(
        "reorders: %zu (%zu swaps kept), DD %zu -> %zu nodes in %.3f ms\n",
        report.reorderCount, report.reorderSwaps, report.ddSizePreReorder,
        report.ddSizePostReorder, report.reorderSeconds * 1e3);
  }
  if (!report.ordering.empty()) {
    std::printf("ordering (top level first):");
    for (std::size_t l = report.ordering.size(); l-- > 0;) {
      std::printf(" q%d", static_cast<int>(report.ordering[l]));
    }
    std::printf("\n");
  }
  std::printf("memory: ~%.1f MB accounted, %.1f MB RSS\n",
              report.memoryBytes / 1048576.0, currentRSS() / 1048576.0);
  if (!report.metrics.empty()) {
    std::printf("obs: %zu counters, %zu histograms", report.metrics.counters.size(),
                report.metrics.histograms.size());
    if (report.metrics.loadImbalance > 0) {
      std::printf(", worst pool imbalance %.2fx", report.metrics.loadImbalance);
    }
    if (report.metrics.droppedTraceEvents > 0) {
      std::printf(", %zu trace events dropped",
                  report.metrics.droppedTraceEvents);
    }
    std::printf("\n");
    for (const auto& phase : report.metrics.poolPhases) {
      std::printf("  pool phase %-18s %zu regions, %.3f ms wall, "
                  "imbalance %.2fx\n",
                  phase.phase.c_str(), phase.regions, phase.wallSeconds * 1e3,
                  phase.imbalance);
    }
  }
}

bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

int runCli(const CliOptions& opt) {
  const qc::Circuit circuit = buildCircuit(opt);
  const Qubit n = circuit.numQubits();
  std::printf("circuit %s: %d qubits, %zu gates, depth %zu\n",
              circuit.name().c_str(), n, circuit.numGates(), circuit.depth());

  if (!opt.exportQasm.empty() && !writeFile(opt.exportQasm, circuit.toQasm())) {
    return 1;
  }

  engine::EngineOptions eo;
  eo.threads = opt.threads != 0
                   ? opt.threads
                   : std::max(1u, std::thread::hardware_concurrency());
  if (par::globalPool().size() < eo.threads) {
    // An explicit --threads N should actually provide N workers, even when
    // hardware_concurrency (or FLATDD_THREADS) reports fewer; safe here —
    // no parallel region has launched yet.
    par::resizePool(eo.threads);
  }
  eo.passes = opt.passes;
  eo.ddReorder = opt.ddReorder;
  eo.seed = opt.seed;  // stamped into the report; derives the sampling rng
  eo.recordPerGate = !opt.traceCsv.empty();
  eo.usePlanCache = opt.planCache;
  const bool tracing = !opt.traceJson.empty();
  eo.enableObs = tracing || opt.obs;

  // The RSS sampler runs for the whole simulation and is joined before the
  // trace export (the rings require a quiescent reader).
  obs::setThreadName("main");
  obs::RssSampler rssSampler;
  if (tracing) {
    rssSampler.start();
  }

  engine::SimulationEngine sim{eo};
  const engine::RunReport report = sim.run(opt.backend, circuit);
  rssSampler.stop();
  engine::Backend& backend = sim.backend();

  if (tracing && !writeFile(opt.traceJson, obs::exportChromeTrace())) {
    return 1;
  }

  printTopOutcomes(backend.stateVector(), n, opt.top);
  if (opt.shots > 0) {
    Xoshiro256 rng{opt.seed ^ 0xf1a7ddULL};
    printHistogram(backend.sample(opt.shots, rng), n, opt.top);
  }
  std::printf("runtime: %.3f s\n", report.totalSeconds);

  if (opt.stats) {
    printStats(report);
  }
  if (!opt.reportJson.empty() && !writeFile(opt.reportJson, report.toJson())) {
    return 1;
  }
  if (!opt.reportCsv.empty() && !writeFile(opt.reportCsv, report.toCsv())) {
    return 1;
  }
  if (!opt.traceCsv.empty() &&
      !writeFile(opt.traceCsv, report.perGateCsv())) {
    return 1;
  }
  if (!opt.dotFile.empty()) {
    const std::string dot = backend.exportDot();
    if (dot.empty()) {
      std::fprintf(stderr,
                   "--dot: backend %s has no DD state representation\n",
                   opt.backend.c_str());
      return 1;
    }
    if (!writeFile(opt.dotFile, dot)) {
      return 1;
    }
  }
  return 0;
}

std::vector<std::string> splitCommaList(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item =
        list.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) {
      out.push_back(item);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value after %s\n", argv[i]);
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printHelp();
      return 0;
    } else if (arg == "--list-backends") {
      const auto& factory = fdd::engine::BackendFactory::instance();
      for (const auto& name : factory.registeredNames()) {
        std::printf("%-10s %s\n", name.c_str(),
                    factory.describe(name).c_str());
      }
      std::printf("kernel dispatch: %s (d=%u lanes)\n",
                  fdd::simd::toString(fdd::simd::activeTier()),
                  fdd::simd::lanes());
      return 0;
    } else if (arg == "--circuit") {
      opt.circuit = need(i);
    } else if (arg == "--qasm") {
      opt.qasmFile = need(i);
    } else if (arg == "--qubits") {
      opt.qubits = static_cast<fdd::Qubit>(std::atoi(need(i)));
    } else if (arg == "--depth") {
      opt.depth = static_cast<unsigned>(std::atoi(need(i)));
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (arg == "--backend") {
      opt.backend = need(i);
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(std::atoi(need(i)));
    } else if (arg == "--pass") {
      for (auto& pass : splitCommaList(need(i))) {
        opt.passes.push_back(std::move(pass));
      }
    } else if (arg == "--optimize") {
      opt.passes.emplace_back("optimize");
    } else if (arg == "--dd-reorder") {
      opt.ddReorder = true;
    } else if (arg == "--fusion") {
      const std::string mode = need(i);
      if (mode == "dmav") {
        opt.passes.emplace_back("fusion-dmav");
      } else if (mode == "kops") {
        opt.passes.emplace_back("fusion-kops");
      } else if (mode != "none") {
        std::fprintf(stderr, "unknown fusion mode: %s\n", mode.c_str());
        return 1;
      }
    } else if (arg == "--shots") {
      opt.shots = static_cast<std::size_t>(std::atoll(need(i)));
    } else if (arg == "--top") {
      opt.top = static_cast<std::size_t>(std::atoll(need(i)));
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--no-plan-cache") {
      opt.planCache = false;
    } else if (arg == "--report") {
      opt.reportJson = need(i);
    } else if (arg == "--report-csv") {
      opt.reportCsv = need(i);
    } else if (arg == "--trace") {
      opt.traceJson = need(i);
    } else if (arg == "--trace-csv") {
      opt.traceCsv = need(i);
    } else if (arg == "--obs") {
      opt.obs = true;
    } else if (arg == "--dot") {
      opt.dotFile = need(i);
    } else if (arg == "--export-qasm") {
      opt.exportQasm = need(i);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (opt.circuit.empty() && opt.qasmFile.empty()) {
    opt.circuit = "supremacy";
  }
  try {
    return runCli(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
