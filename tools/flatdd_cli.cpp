// flatdd — command-line quantum circuit simulator.
//
//   flatdd --circuit supremacy --qubits 14 --depth 10 --backend flatdd
//   flatdd --qasm program.qasm --shots 1000 --top 8
//   flatdd --circuit ghz --qubits 20 --backend dd --stats
//
// Backends: flatdd (hybrid, default), dd (DDSIM-style), array (Quantum++-
// style). See --help for everything.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "circuits/generators.hpp"
#include "circuits/supremacy.hpp"
#include "common/prng.hpp"
#include "common/rss.hpp"
#include "common/timing.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "qasm/parser.hpp"
#include "qc/optimizer.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"

namespace {

using namespace fdd;

struct CliOptions {
  std::string circuit;
  std::string qasmFile;
  Qubit qubits = 12;
  unsigned depth = 8;
  std::uint64_t seed = 7;
  std::string backend = "flatdd";
  unsigned threads = 0;  // 0 = hardware concurrency
  std::string fusion = "none";
  std::size_t shots = 0;
  std::size_t top = 8;
  bool stats = false;
  bool optimizeCircuit = false;
  std::string dotFile;
  std::string exportQasm;
};

void printHelp() {
  std::printf(R"(flatdd — hybrid decision-diagram / flat-array quantum circuit simulator

usage: flatdd [options]

circuit selection (one of):
  --circuit NAME     generated family: ghz, wstate, adder, qft, grover, bv,
                     dnn, vqe, knn, swaptest, supremacy, qpe, qaoa,
                     hiddenshift, qv, random
  --qasm FILE        OpenQASM 2.0 file

circuit parameters:
  --qubits N         qubit count (default 12)
  --depth N          layers / cycles / rounds for parameterized families
  --seed N           PRNG seed for randomized families (default 7)

execution:
  --backend NAME     flatdd (default) | dd | array
  --threads N        worker threads (default: hardware concurrency)
  --fusion MODE      none (default) | dmav | kops   [flatdd backend only]

output:
  --shots N          sample N measurements from the final state
  --top K            print the K most probable outcomes (default 8)
  --optimize         run the peephole optimizer before simulation
  --stats            print simulator statistics
  --dot FILE         write the final state DD as graphviz (dd backend, small n)
  --export-qasm FILE write the (lowered) circuit as OpenQASM 2.0
  --help             this text
)");
}

qc::Circuit buildCircuit(const CliOptions& opt) {
  if (!opt.qasmFile.empty()) {
    return qasm::parseFile(opt.qasmFile);
  }
  const Qubit n = opt.qubits;
  const unsigned d = opt.depth;
  const std::uint64_t s = opt.seed;
  if (opt.circuit == "ghz") return circuits::ghz(n);
  if (opt.circuit == "wstate") return circuits::wState(n);
  if (opt.circuit == "adder") {
    return circuits::adder((n - 2) / 2, s % 1000, (s / 7) % 1000);
  }
  if (opt.circuit == "qft") return circuits::qft(n, s);
  if (opt.circuit == "grover") return circuits::grover(n);
  if (opt.circuit == "bv") return circuits::bernsteinVazirani(n - 1, s);
  if (opt.circuit == "dnn") return circuits::dnn(n, d, s);
  if (opt.circuit == "vqe") return circuits::vqe(n, d, s);
  if (opt.circuit == "knn") return circuits::knn(n | 1, s);
  if (opt.circuit == "swaptest") return circuits::swapTest(n | 1, s);
  if (opt.circuit == "supremacy") return circuits::supremacy(n, d, s);
  if (opt.circuit == "qpe") {
    return circuits::qpe(n - 1, static_cast<fp>(s % 128) / 128.0);
  }
  if (opt.circuit == "qaoa") return circuits::qaoa(n, d, s);
  if (opt.circuit == "hiddenshift") {
    return circuits::hiddenShift(n & ~1, s, s + 1);
  }
  if (opt.circuit == "qv") return circuits::quantumVolume(n, d, s);
  if (opt.circuit == "random") return circuits::randomUniversal(n, 20 * d, s);
  throw std::invalid_argument("unknown circuit family: " + opt.circuit);
}

void printTopOutcomes(std::span<const Complex> state, Qubit n,
                      std::size_t top) {
  std::vector<std::pair<double, Index>> probs;
  probs.reserve(state.size());
  for (Index i = 0; i < state.size(); ++i) {
    const double p = std::norm(state[i]);
    if (p > 1e-12) {
      probs.emplace_back(p, i);
    }
  }
  std::sort(probs.rbegin(), probs.rend());
  std::printf("top outcomes (%zu of %zu nonzero):\n",
              std::min(top, probs.size()), probs.size());
  for (std::size_t k = 0; k < top && k < probs.size(); ++k) {
    std::printf("  |");
    for (Qubit q = n - 1; q >= 0; --q) {
      std::printf("%d", static_cast<int>((probs[k].second >> q) & 1));
    }
    std::printf(">  p = %.6f\n", probs[k].first);
  }
}

void printHistogram(const std::vector<Index>& samples, Qubit n,
                    std::size_t top) {
  std::map<Index, std::size_t> counts;
  for (const Index s : samples) {
    ++counts[s];
  }
  std::vector<std::pair<std::size_t, Index>> sorted;
  sorted.reserve(counts.size());
  for (const auto& [idx, cnt] : counts) {
    sorted.emplace_back(cnt, idx);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  std::printf("measurement histogram (%zu shots, %zu distinct):\n",
              samples.size(), counts.size());
  for (std::size_t k = 0; k < top && k < sorted.size(); ++k) {
    std::printf("  |");
    for (Qubit q = n - 1; q >= 0; --q) {
      std::printf("%d", static_cast<int>((sorted[k].second >> q) & 1));
    }
    std::printf(">  %zu\n", sorted[k].first);
  }
}

int runCli(const CliOptions& opt) {
  qc::Circuit circuit = buildCircuit(opt);
  if (opt.optimizeCircuit) {
    qc::OptimizerStats ostats;
    circuit = qc::optimize(circuit, {}, &ostats);
    std::printf("optimizer: %zu -> %zu gates (%zu pairs cancelled, %zu "
                "rotations merged, %zu identities dropped)\n",
                ostats.inputGates, ostats.outputGates, ostats.cancelledPairs,
                ostats.mergedRotations, ostats.droppedIdentities);
  }
  const Qubit n = circuit.numQubits();
  std::printf("circuit %s: %d qubits, %zu gates, depth %zu\n",
              circuit.name().c_str(), n, circuit.numGates(),
              circuit.depth());

  if (!opt.exportQasm.empty()) {
    std::ofstream out{opt.exportQasm};
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.exportQasm.c_str());
      return 1;
    }
    out << circuit.toQasm();
    std::printf("wrote %s\n", opt.exportQasm.c_str());
  }

  const unsigned threads =
      opt.threads != 0 ? opt.threads
                       : std::max(1u, std::thread::hardware_concurrency());
  Xoshiro256 rng{opt.seed ^ 0xf1a7ddULL};
  Stopwatch clock;

  if (opt.backend == "flatdd") {
    flat::FlatDDOptions fo;
    fo.threads = threads;
    if (opt.fusion == "dmav") {
      fo.fusion = flat::FusionMode::DmavAware;
    } else if (opt.fusion == "kops") {
      fo.fusion = flat::FusionMode::KOperations;
    } else if (opt.fusion != "none") {
      std::fprintf(stderr, "unknown fusion mode: %s\n", opt.fusion.c_str());
      return 1;
    }
    flat::FlatDDSimulator sim{n, fo};
    sim.simulate(circuit);
    const double seconds = clock.seconds();
    const auto state = sim.stateVector();
    printTopOutcomes(state, n, opt.top);
    if (opt.shots > 0) {
      sim::ArraySimulator sampler{n};
      sampler.setState(state);
      std::vector<Index> samples;
      samples.reserve(opt.shots);
      for (std::size_t s = 0; s < opt.shots; ++s) {
        samples.push_back(sampler.sample(rng));
      }
      printHistogram(samples, n, opt.top);
    }
    std::printf("runtime: %.3f s\n", seconds);
    if (opt.stats) {
      const auto& st = sim.stats();
      std::printf("phase split: %zu DD gates, %zu DMAV matrices%s\n",
                  st.ddGates, st.dmavGates,
                  st.converted ? "" : " (never converted)");
      if (st.converted) {
        std::printf("conversion at gate %zu took %.3f ms\n",
                    st.conversionGateIndex, st.conversionSeconds * 1e3);
        std::printf("cached DMAVs: %zu (%zu cache hits)\n", st.cachedGates,
                    st.cacheHits);
      }
      std::printf("peak DD size: %zu nodes; model cost %.3e MACs\n",
                  st.peakDDSize, st.dmavModelCost);
      std::printf("memory: ~%.1f MB accounted, %.1f MB RSS\n",
                  sim.memoryBytes() / 1048576.0,
                  currentRSS() / 1048576.0);
    }
    return 0;
  }

  if (opt.backend == "dd") {
    sim::DDSimulator sim{n};
    sim.simulate(circuit);
    const double seconds = clock.seconds();
    if (opt.shots > 0) {
      printHistogram(sim.package().sample(sim.state(), opt.shots, rng), n,
                     opt.top);
    } else {
      const auto state = sim.stateVector();
      printTopOutcomes(state, n, opt.top);
    }
    std::printf("runtime: %.3f s\n", seconds);
    if (!opt.dotFile.empty()) {
      std::ofstream out{opt.dotFile};
      out << sim.package().toDot(sim.state());
      std::printf("wrote %s\n", opt.dotFile.c_str());
    }
    if (opt.stats) {
      const auto st = sim.package().stats();
      std::printf("state DD: %zu nodes (peak %zu); GC runs: %zu\n",
                  sim.stateNodeCount(), st.peakVNodes, st.gcRuns);
      std::printf("memory: ~%.1f MB accounted, %.1f MB RSS\n",
                  st.memoryBytes / 1048576.0, currentRSS() / 1048576.0);
    }
    return 0;
  }

  if (opt.backend == "array") {
    sim::ArraySimulator sim{n, {.threads = threads}};
    sim.simulate(circuit);
    const double seconds = clock.seconds();
    printTopOutcomes(sim.state(), n, opt.top);
    if (opt.shots > 0) {
      std::vector<Index> samples;
      samples.reserve(opt.shots);
      for (std::size_t s = 0; s < opt.shots; ++s) {
        samples.push_back(sim.sample(rng));
      }
      printHistogram(samples, n, opt.top);
    }
    std::printf("runtime: %.3f s\n", seconds);
    if (opt.stats) {
      std::printf("memory: ~%.1f MB state vector, %.1f MB RSS\n",
                  sim.memoryBytes() / 1048576.0, currentRSS() / 1048576.0);
    }
    return 0;
  }

  std::fprintf(stderr, "unknown backend: %s\n", opt.backend.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value after %s\n", argv[i]);
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printHelp();
      return 0;
    } else if (arg == "--circuit") {
      opt.circuit = need(i);
    } else if (arg == "--qasm") {
      opt.qasmFile = need(i);
    } else if (arg == "--qubits") {
      opt.qubits = static_cast<Qubit>(std::atoi(need(i)));
    } else if (arg == "--depth") {
      opt.depth = static_cast<unsigned>(std::atoi(need(i)));
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (arg == "--backend") {
      opt.backend = need(i);
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(std::atoi(need(i)));
    } else if (arg == "--fusion") {
      opt.fusion = need(i);
    } else if (arg == "--shots") {
      opt.shots = static_cast<std::size_t>(std::atoll(need(i)));
    } else if (arg == "--top") {
      opt.top = static_cast<std::size_t>(std::atoll(need(i)));
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--optimize") {
      opt.optimizeCircuit = true;
    } else if (arg == "--dot") {
      opt.dotFile = need(i);
    } else if (arg == "--export-qasm") {
      opt.exportQasm = need(i);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (opt.circuit.empty() && opt.qasmFile.empty()) {
    opt.circuit = "supremacy";
  }
  try {
    return runCli(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
