#include "bench_json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace fdd::tools {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::comma() {
  if (afterKey_) {
    afterKey_ = false;
    return;  // value completes a "key": pair, no comma
  }
  if (needComma_) {
    out_ += ",\n";
  } else if (!stack_.empty()) {
    out_ += "\n";
  }
  indent();
}

void JsonWriter::indent() {
  out_.append(2 * stack_.size(), ' ');
}

JsonWriter& JsonWriter::beginObject() {
  comma();
  out_.push_back('{');
  stack_.push_back('{');
  needComma_ = false;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  assert(!stack_.empty() && stack_.back() == '{');
  const bool hadMembers = needComma_;
  stack_.pop_back();
  if (hadMembers) {
    out_.push_back('\n');
    indent();
  }
  out_.push_back('}');
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  comma();
  out_.push_back('[');
  stack_.push_back('[');
  needComma_ = false;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  assert(!stack_.empty() && stack_.back() == '[');
  const bool hadMembers = needComma_;
  stack_.pop_back();
  if (hadMembers) {
    out_.push_back('\n');
    indent();
  }
  out_.push_back(']');
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  assert(!stack_.empty() && stack_.back() == '{');
  comma();
  out_ += jsonEscape(k);
  out_ += ": ";
  afterKey_ = true;
  needComma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += jsonEscape(v);
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string{v});
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  }
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  needComma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  needComma_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  assert(stack_.empty() && "unclosed object/array in JsonWriter");
  return out_;
}

bool writeTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace fdd::tools
