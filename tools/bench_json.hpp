#pragma once
// Tiny dependency-free JSON emitter for machine-readable benchmark results
// (the BENCH_*.json artifacts CI uploads). Write-only by design: benches
// build a document with push/pop calls and dump it to a file; parsing stays
// in the analysis scripts. Not a general serializer — no pretty-printing
// knobs, no streaming, documents are built in memory.

#include <cstdint>
#include <string>
#include <vector>

namespace fdd::tools {

/// Builds one JSON document. Keys are only legal inside objects; values
/// outside any container are only legal once (the root). Misuse (a key at
/// array level, two roots, unclosed containers at str()) trips an assert in
/// debug builds and yields well-formed-but-wrong JSON in release — callers
/// are our own benches, not untrusted input.
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Starts a "key": inside the current object; follow with a value or
  /// container. Returns *this so `w.key("x").value(1)` chains.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);     // finite -> shortest round-trip, else null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(bool v);

  /// Shorthand: key(k).value(v).
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    return key(k).value(v);
  }

  /// The finished document. All containers must be closed.
  [[nodiscard]] const std::string& str() const;

 private:
  void comma();
  void indent();

  std::string out_;
  std::vector<char> stack_;     // '{' or '['
  bool needComma_ = false;
  bool afterKey_ = false;
};

/// Escapes `s` as a JSON string literal, including the quotes.
[[nodiscard]] std::string jsonEscape(const std::string& s);

/// Writes `content` to `path` atomically enough for bench artifacts
/// (truncate + write + close). Returns false on any I/O error.
bool writeTextFile(const std::string& path, const std::string& content);

}  // namespace fdd::tools
