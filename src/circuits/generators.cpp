#include "circuits/generators.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bits.hpp"
#include "common/prng.hpp"

namespace fdd::circuits {

qc::Circuit ghz(Qubit n) {
  qc::Circuit c{n, "ghz_n" + std::to_string(n)};
  c.h(0);
  for (Qubit q = 0; q + 1 < n; ++q) {
    c.cx(q, q + 1);
  }
  return c;
}

qc::Circuit wState(Qubit n) {
  if (n < 2) {
    throw std::invalid_argument("wState: need at least 2 qubits");
  }
  qc::Circuit c{n, "wstate_n" + std::to_string(n)};
  // Cascade: qubit 0 gets the full excitation, then distribute rightward.
  c.x(0);
  for (Qubit q = 0; q + 1 < n; ++q) {
    // Rotate |10> -> cos|10> + sin|01> on (q, q+1) with the amplitude that
    // leaves 1/(n-q) of the excitation on qubit q.
    const fp theta = 2.0 * std::acos(std::sqrt(1.0 / static_cast<fp>(n - q)));
    c.gate(qc::GateKind::RY, {q}, q + 1, {theta});
    c.cx(q + 1, q);
  }
  return c;
}

qc::Circuit adder(Qubit k, std::uint64_t a, std::uint64_t b) {
  if (k < 1 || k > 30) {
    throw std::invalid_argument("adder: operand width out of range");
  }
  const Qubit n = 2 * k + 2;
  qc::Circuit c{n, "adder_n" + std::to_string(n)};
  // Layout (Cuccaro et al.): qubit 0 = carry-in c0, then for bit i:
  // a_i at 2i+1, b_i at 2i+2; the final qubit is the carry-out z.
  auto A = [&](Qubit i) { return static_cast<Qubit>(2 * i + 1); };
  auto B = [&](Qubit i) { return static_cast<Qubit>(2 * i + 2); };
  const Qubit carryIn = 0;
  const Qubit carryOut = n - 1;

  for (Qubit i = 0; i < k; ++i) {
    if (testBit(a, i)) {
      c.x(A(i));
    }
    if (testBit(b, i)) {
      c.x(B(i));
    }
  }

  auto maj = [&](Qubit x, Qubit y, Qubit z) {
    c.cx(z, y).cx(z, x).ccx(x, y, z);
  };
  auto uma = [&](Qubit x, Qubit y, Qubit z) {
    c.ccx(x, y, z).cx(z, x).cx(x, y);
  };

  maj(carryIn, B(0), A(0));
  for (Qubit i = 1; i < k; ++i) {
    maj(A(i - 1), B(i), A(i));
  }
  c.cx(A(k - 1), carryOut);
  for (Qubit i = k - 1; i >= 1; --i) {
    uma(A(i - 1), B(i), A(i));
  }
  uma(carryIn, B(0), A(0));
  return c;
}

qc::Circuit qft(Qubit n, std::uint64_t inputState) {
  qc::Circuit c{n, "qft_n" + std::to_string(n)};
  for (Qubit q = 0; q < n; ++q) {
    if (testBit(inputState, q)) {
      c.x(q);
    }
  }
  for (Qubit q = n - 1; q >= 0; --q) {
    c.h(q);
    for (Qubit j = q - 1; j >= 0; --j) {
      c.cp(PI / static_cast<fp>(Index{1} << (q - j)), j, q);
    }
  }
  for (Qubit q = 0; q < n / 2; ++q) {
    c.swap(q, n - 1 - q);
  }
  return c;
}

qc::Circuit grover(Qubit n, unsigned iterations) {
  if (n < 2) {
    throw std::invalid_argument("grover: need at least 2 qubits");
  }
  if (iterations == 0) {
    iterations = static_cast<unsigned>(
        std::floor(PI / 4.0 * std::sqrt(static_cast<fp>(Index{1} << n))));
    iterations = std::max(iterations, 1u);
  }
  qc::Circuit c{n, "grover_n" + std::to_string(n)};
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  std::vector<Qubit> allButLast;
  for (Qubit q = 0; q + 1 < n; ++q) {
    allButLast.push_back(q);
  }
  for (unsigned it = 0; it < iterations; ++it) {
    // Oracle: flip the phase of |1...1> via a multi-controlled Z.
    c.gate(qc::GateKind::Z, allButLast, n - 1);
    // Diffusion: H X (mcZ) X H.
    for (Qubit q = 0; q < n; ++q) {
      c.h(q).x(q);
    }
    c.gate(qc::GateKind::Z, allButLast, n - 1);
    for (Qubit q = 0; q < n; ++q) {
      c.x(q).h(q);
    }
  }
  return c;
}

qc::Circuit bernsteinVazirani(Qubit n, std::uint64_t secret) {
  const Qubit total = n + 1;
  qc::Circuit c{total, "bv_n" + std::to_string(total)};
  const Qubit anc = n;
  c.x(anc).h(anc);
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  for (Qubit q = 0; q < n; ++q) {
    if (testBit(secret, q)) {
      c.cx(q, anc);
    }
  }
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  return c;
}

qc::Circuit dnn(Qubit n, unsigned layers, std::uint64_t seed) {
  qc::Circuit c{n, "dnn_n" + std::to_string(n)};
  Xoshiro256 rng{seed};
  // Input encoding layer.
  for (Qubit q = 0; q < n; ++q) {
    c.ry(rng.uniform(0, 2 * PI), q);
  }
  for (unsigned l = 0; l < layers; ++l) {
    for (Qubit q = 0; q < n; ++q) {
      c.ry(rng.uniform(0, 2 * PI), q);
      c.rz(rng.uniform(0, 2 * PI), q);
    }
    // Entangling ring.
    for (Qubit q = 0; q < n; ++q) {
      c.cx(q, static_cast<Qubit>((q + 1) % n));
    }
  }
  // Readout rotations.
  for (Qubit q = 0; q < n; ++q) {
    c.rx(rng.uniform(0, 2 * PI), q);
  }
  return c;
}

qc::Circuit vqe(Qubit n, unsigned depth, std::uint64_t seed) {
  qc::Circuit c{n, "vqe_n" + std::to_string(n)};
  Xoshiro256 rng{seed};
  for (unsigned d = 0; d < depth; ++d) {
    for (Qubit q = 0; q < n; ++q) {
      c.ry(rng.uniform(0, 2 * PI), q);
      c.rz(rng.uniform(0, 2 * PI), q);
    }
    for (Qubit q = 0; q + 1 < n; ++q) {
      c.cz(q, q + 1);
    }
  }
  for (Qubit q = 0; q < n; ++q) {
    c.ry(rng.uniform(0, 2 * PI), q);
  }
  return c;
}

namespace {

/// Shared scaffold for swap-test style circuits: ancilla 0, register A at
/// [1, 1+k), register B at [1+k, 1+2k).
qc::Circuit swapTestScaffold(Qubit n, std::uint64_t seed, const char* name,
                             bool angleEncodeFeatures) {
  if (n < 3 || n % 2 == 0) {
    throw std::invalid_argument(
        "swap test: need an odd qubit count (ancilla + two equal registers)");
  }
  const Qubit k = (n - 1) / 2;
  qc::Circuit c{n, std::string{name} + "_n" + std::to_string(n)};
  Xoshiro256 rng{seed};
  // State preparation: random product states (angle-encoded features for
  // KNN; plain RY product states for the generic swap test).
  for (Qubit q = 1; q <= 2 * k; ++q) {
    c.ry(rng.uniform(0, PI), q);
    if (angleEncodeFeatures) {
      c.rz(rng.uniform(0, 2 * PI), q);
    }
  }
  c.h(0);
  for (Qubit i = 0; i < k; ++i) {
    c.cswap(0, static_cast<Qubit>(1 + i), static_cast<Qubit>(1 + k + i));
  }
  c.h(0);
  return c;
}

}  // namespace

qc::Circuit qpe(Qubit precisionBits, fp phase) {
  if (precisionBits < 1 || precisionBits > 30) {
    throw std::invalid_argument("qpe: precision bits out of range");
  }
  const Qubit n = precisionBits + 1;
  qc::Circuit c{n, "qpe_n" + std::to_string(n)};
  const Qubit eigen = precisionBits;  // topmost qubit holds the eigenstate
  c.x(eigen);                         // P's |1> eigenstate
  for (Qubit k = 0; k < precisionBits; ++k) {
    c.h(k);
  }
  // Controlled powers: counting qubit k picks up phase * 2^k turns.
  for (Qubit k = 0; k < precisionBits; ++k) {
    const fp angle = 2 * PI * phase * static_cast<fp>(Index{1} << k);
    c.cp(angle, k, eigen);
  }
  // Inverse QFT on the counting register (qubits [0, precisionBits)).
  for (Qubit q = 0; q < precisionBits / 2; ++q) {
    c.swap(q, precisionBits - 1 - q);
  }
  for (Qubit q = 0; q < precisionBits; ++q) {
    for (Qubit j = 0; j < q; ++j) {
      c.cp(-PI / static_cast<fp>(Index{1} << (q - j)), j, q);
    }
    c.h(q);
  }
  return c;
}

qc::Circuit qaoa(Qubit n, unsigned rounds, std::uint64_t seed, fp edgeFactor) {
  if (n < 2) {
    throw std::invalid_argument("qaoa: need at least 2 qubits");
  }
  qc::Circuit c{n, "qaoa_n" + std::to_string(n)};
  Xoshiro256 rng{seed};
  // Random graph: ring (connectivity) + extra random chords.
  std::vector<std::pair<Qubit, Qubit>> edges;
  for (Qubit q = 0; q < n; ++q) {
    edges.emplace_back(q, static_cast<Qubit>((q + 1) % n));
  }
  const auto extra = static_cast<std::size_t>(
      std::max<fp>(0, edgeFactor - 1.0) * static_cast<fp>(n));
  for (std::size_t e = 0; e < extra; ++e) {
    const auto a = static_cast<Qubit>(rng.below(n));
    auto b = static_cast<Qubit>(rng.below(n));
    while (b == a) {
      b = static_cast<Qubit>(rng.below(n));
    }
    edges.emplace_back(a, b);
  }
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  for (unsigned r = 0; r < rounds; ++r) {
    const fp gamma = rng.uniform(0, PI);
    const fp beta = rng.uniform(0, PI);
    for (const auto& [a, b] : edges) {
      c.cx(a, b).rz(2 * gamma, b).cx(a, b);  // e^{-i gamma Z_a Z_b}
    }
    for (Qubit q = 0; q < n; ++q) {
      c.rx(2 * beta, q);
    }
  }
  return c;
}

qc::Circuit hiddenShift(Qubit n, std::uint64_t shift, std::uint64_t seed) {
  if (n < 2 || n % 2 != 0) {
    throw std::invalid_argument("hiddenShift: need an even qubit count");
  }
  qc::Circuit c{n, "hiddenshift_n" + std::to_string(n)};
  Xoshiro256 rng{seed};
  // Bent function f(x) = prod CZ on a random perfect matching + T seasoning.
  std::vector<Qubit> perm(static_cast<std::size_t>(n));
  for (Qubit q = 0; q < n; ++q) {
    perm[static_cast<std::size_t>(q)] = q;
  }
  for (std::size_t i = perm.size() - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.below(i + 1)]);
  }
  auto applyFunction = [&] {
    for (std::size_t i = 0; i + 1 < perm.size(); i += 2) {
      c.cz(perm[i], perm[i + 1]);
    }
  };
  auto applyShift = [&] {
    for (Qubit q = 0; q < n; ++q) {
      if (testBit(shift, q)) {
        c.x(q);
      }
    }
  };
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  applyShift();
  applyFunction();
  applyShift();
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  applyFunction();
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }
  return c;
}

qc::Circuit quantumVolume(Qubit n, unsigned depth, std::uint64_t seed) {
  if (n < 2) {
    throw std::invalid_argument("quantumVolume: need at least 2 qubits");
  }
  qc::Circuit c{n, "qv_n" + std::to_string(n)};
  Xoshiro256 rng{seed};
  std::vector<Qubit> perm(static_cast<std::size_t>(n));
  for (Qubit q = 0; q < n; ++q) {
    perm[static_cast<std::size_t>(q)] = q;
  }
  auto randomU3 = [&](Qubit q) {
    c.u3(rng.uniform(0, PI), rng.uniform(0, 2 * PI), rng.uniform(0, 2 * PI),
         q);
  };
  for (unsigned d = 0; d < depth; ++d) {
    // Random pairing via a Fisher-Yates shuffle.
    for (std::size_t i = perm.size() - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.below(i + 1)]);
    }
    for (std::size_t i = 0; i + 1 < perm.size(); i += 2) {
      const Qubit a = perm[i];
      const Qubit b = perm[i + 1];
      // SU(4)-ish block: u3 pair, entangle, u3 pair, entangle, u3 pair.
      randomU3(a);
      randomU3(b);
      c.cx(a, b);
      randomU3(a);
      randomU3(b);
      c.cx(b, a);
      randomU3(a);
      randomU3(b);
    }
  }
  return c;
}

qc::Circuit randomUniversal(Qubit n, std::size_t gates, std::uint64_t seed) {
  qc::Circuit c{n, "random_n" + std::to_string(n)};
  Xoshiro256 rng{seed};
  for (std::size_t g = 0; g < gates; ++g) {
    const auto target = static_cast<Qubit>(rng.below(n));
    switch (rng.below(6)) {
      case 0:
        c.h(target);
        break;
      case 1:
        c.t(target);
        break;
      case 2:
        c.rz(rng.uniform(0, 2 * PI), target);
        break;
      case 3:
        c.ry(rng.uniform(0, 2 * PI), target);
        break;
      case 4: {
        if (n < 2) {
          c.x(target);
          break;
        }
        auto ctrl = static_cast<Qubit>(rng.below(n));
        while (ctrl == target) {
          ctrl = static_cast<Qubit>(rng.below(n));
        }
        c.cx(ctrl, target);
        break;
      }
      default: {
        if (n < 2) {
          c.sx(target);
          break;
        }
        auto ctrl = static_cast<Qubit>(rng.below(n));
        while (ctrl == target) {
          ctrl = static_cast<Qubit>(rng.below(n));
        }
        c.cp(rng.uniform(0, 2 * PI), ctrl, target);
        break;
      }
    }
  }
  return c;
}

qc::Circuit swapTest(Qubit n, std::uint64_t seed) {
  return swapTestScaffold(n, seed, "swaptest", false);
}

qc::Circuit knn(Qubit n, std::uint64_t seed) {
  return swapTestScaffold(n, seed, "knn", true);
}

}  // namespace fdd::circuits
