#pragma once
// Generators for the benchmark circuit families of the paper's evaluation
// (QASMBench [69], MQT-Bench [88]) plus a few classics used in tests and
// examples. All parameterized circuits take a seed so workloads reproduce
// bit-identically.
//
// Regularity character (drives which simulator wins, per Fig. 1 / Table 1):
//   regular   — ghz, wState, adder, bernsteinVazirani (basis-ish states)
//   irregular — dnn, vqe, qft on superpositions, knn/swapTest after H,
//               supremacy (see supremacy.hpp)

#include <cstdint>

#include "qc/circuit.hpp"

namespace fdd::circuits {

/// GHZ state on n qubits: H(0) then a CX chain. DD size stays O(n).
[[nodiscard]] qc::Circuit ghz(Qubit n);

/// W state on n qubits via the RY-cascade construction.
[[nodiscard]] qc::Circuit wState(Qubit n);

/// Cuccaro ripple-carry adder computing b <- a + b on two k-bit registers.
/// Uses 2k + 2 qubits (carry-in, a, b interleaved, carry-out). `a` and `b`
/// are loaded as computational-basis constants with X gates, so the state
/// stays a basis state throughout — the paper's canonical regular circuit.
[[nodiscard]] qc::Circuit adder(Qubit bitsPerOperand, std::uint64_t a,
                                std::uint64_t b);

/// Quantum Fourier transform on n qubits (with final reordering swaps).
/// `inputState` is loaded first with X gates.
[[nodiscard]] qc::Circuit qft(Qubit n, std::uint64_t inputState = 0);

/// Grover search marking |11...1>, `iterations` rounds (0 = use the optimal
/// floor(pi/4 * sqrt(2^n)) count).
[[nodiscard]] qc::Circuit grover(Qubit n, unsigned iterations = 0);

/// Bernstein-Vazirani with an n-bit secret (n data qubits + 1 ancilla).
[[nodiscard]] qc::Circuit bernsteinVazirani(Qubit n, std::uint64_t secret);

/// Quantum-DNN-style layered ansatz [10]: per layer, RY+RZ rotations on every
/// qubit followed by a CX entangling ring, with random angles. Produces the
/// paper's canonical irregular state-amplitude distribution.
[[nodiscard]] qc::Circuit dnn(Qubit n, unsigned layers,
                              std::uint64_t seed = 7);

/// VQE hardware-efficient ansatz: RY/RZ columns with a CZ chain, random
/// angles. `depth` repetitions.
[[nodiscard]] qc::Circuit vqe(Qubit n, unsigned depth,
                              std::uint64_t seed = 11);

/// Swap test between two (n-1)/2-qubit registers prepared in random product
/// states; qubit 0 is the ancilla. n must be odd.
[[nodiscard]] qc::Circuit swapTest(Qubit n, std::uint64_t seed = 13);

/// QASMBench-style quantum KNN kernel: a swap-test distance estimator over
/// two data registers prepared with angle-encoded features. n must be odd.
[[nodiscard]] qc::Circuit knn(Qubit n, std::uint64_t seed = 17);

/// Quantum phase estimation of the eigenphase `phase` (in turns, [0, 1)) of
/// a phase gate, using `precisionBits` counting qubits + 1 eigenstate qubit.
/// With a dyadic phase k/2^precisionBits the counting register ends in the
/// exact basis state |k>.
[[nodiscard]] qc::Circuit qpe(Qubit precisionBits, fp phase);

/// MaxCut QAOA ansatz on a random graph with `edgeFactor * n` edges:
/// per round, ZZ phase separators (cx-rz-cx) on the edges plus RX mixers.
[[nodiscard]] qc::Circuit qaoa(Qubit n, unsigned rounds,
                               std::uint64_t seed = 29, fp edgeFactor = 1.5);

/// Hidden-shift circuit for bent functions (H wall / shift / CZ product
/// function / shift / H wall / function / H wall). n must be even; the
/// output register measures the shift exactly.
[[nodiscard]] qc::Circuit hiddenShift(Qubit n, std::uint64_t shift,
                                      std::uint64_t seed = 31);

/// Quantum-volume style model circuit: `depth` layers of a random qubit
/// pairing, each pair receiving a Haar-ish SU(4) block (u3-cx-u3-cx-u3).
[[nodiscard]] qc::Circuit quantumVolume(Qubit n, unsigned depth,
                                        std::uint64_t seed = 37);

/// Uniformly random circuit over {H, T, RZ, RY, CX, CP} — the library's
/// general-purpose fuzz workload.
[[nodiscard]] qc::Circuit randomUniversal(Qubit n, std::size_t gates,
                                          std::uint64_t seed = 41);

}  // namespace fdd::circuits
