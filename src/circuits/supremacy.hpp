#pragma once
// Google quantum-supremacy-style random circuits [7]: a 2-D qubit grid,
// alternating layers of random single-qubit gates from {sqrt(X), sqrt(Y),
// sqrt(W)} (never repeating the previous choice on a qubit) and CZ layers
// cycling through four coupler orientations. These circuits have no
// exploitable regularity, which is the paper's canonical DD-hostile workload.

#include <cstdint>

#include "qc/circuit.hpp"

namespace fdd::circuits {

struct SupremacyOptions {
  Qubit rows = 4;
  Qubit cols = 5;
  unsigned cycles = 10;       // one cycle = 1q layer + CZ layer
  std::uint64_t seed = 23;
  bool finalHadamards = true; // Hadamard wall before measurement, as in [7]
};

/// Builds a rows*cols-qubit random circuit. Qubit (r, c) maps to index
/// r*cols + c.
[[nodiscard]] qc::Circuit supremacy(const SupremacyOptions& options);

/// Convenience overload picking a near-square grid for n qubits.
[[nodiscard]] qc::Circuit supremacy(Qubit n, unsigned cycles,
                                    std::uint64_t seed = 23);

}  // namespace fdd::circuits
