#include "circuits/supremacy.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/prng.hpp"

namespace fdd::circuits {

qc::Circuit supremacy(const SupremacyOptions& opt) {
  const Qubit rows = opt.rows;
  const Qubit cols = opt.cols;
  if (rows < 1 || cols < 1 || rows * cols < 2) {
    throw std::invalid_argument("supremacy: grid too small");
  }
  const Qubit n = rows * cols;
  qc::Circuit c{n, "supremacy_n" + std::to_string(n)};
  Xoshiro256 rng{opt.seed};
  auto at = [cols](Qubit r, Qubit col) {
    return static_cast<Qubit>(r * cols + col);
  };

  // Initial Hadamard wall.
  for (Qubit q = 0; q < n; ++q) {
    c.h(q);
  }

  // Track each qubit's previous 1q gate so we never repeat it (rule of [7]).
  constexpr int kNoGate = -1;
  std::vector<int> last(static_cast<std::size_t>(n), kNoGate);
  const qc::GateKind oneQ[3] = {qc::GateKind::SX, qc::GateKind::SY,
                                qc::GateKind::SW};

  for (unsigned cycle = 0; cycle < opt.cycles; ++cycle) {
    // Random single-qubit layer.
    for (Qubit q = 0; q < n; ++q) {
      int pick = static_cast<int>(rng.below(3));
      if (pick == last[static_cast<std::size_t>(q)]) {
        pick = (pick + 1 + static_cast<int>(rng.below(2))) % 3;
      }
      last[static_cast<std::size_t>(q)] = pick;
      c.gate(oneQ[pick], {}, q);
    }
    // CZ layer: cycle through 4 coupler orientations (horizontal even,
    // horizontal odd, vertical even, vertical odd).
    switch (cycle % 4) {
      case 0:
        for (Qubit r = 0; r < rows; ++r) {
          for (Qubit col = 0; col + 1 < cols; col += 2) {
            c.cz(at(r, col), at(r, col + 1));
          }
        }
        break;
      case 1:
        for (Qubit r = 0; r + 1 < rows; r += 2) {
          for (Qubit col = 0; col < cols; ++col) {
            c.cz(at(r, col), at(r + 1, col));
          }
        }
        break;
      case 2:
        for (Qubit r = 0; r < rows; ++r) {
          for (Qubit col = 1; col + 1 < cols; col += 2) {
            c.cz(at(r, col), at(r, col + 1));
          }
        }
        break;
      default:
        for (Qubit r = 1; r + 1 < rows; r += 2) {
          for (Qubit col = 0; col < cols; ++col) {
            c.cz(at(r, col), at(r + 1, col));
          }
        }
        break;
    }
  }

  if (opt.finalHadamards) {
    for (Qubit q = 0; q < n; ++q) {
      c.h(q);
    }
  }
  return c;
}

qc::Circuit supremacy(Qubit n, unsigned cycles, std::uint64_t seed) {
  // Near-square factorization of n.
  Qubit rows = static_cast<Qubit>(std::sqrt(static_cast<double>(n)));
  while (rows > 1 && n % rows != 0) {
    --rows;
  }
  SupremacyOptions opt;
  opt.rows = rows;
  opt.cols = n / rows;
  opt.cycles = cycles;
  opt.seed = seed;
  return supremacy(opt);
}

}  // namespace fdd::circuits
