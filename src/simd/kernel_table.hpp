#pragma once
// Internal kernel dispatch table. Each dispatch tier (scalar, AVX2+FMA,
// AVX-512) provides one immutable table of function pointers; the public API
// in kernels.hpp selects a table once at startup (cpuid +
// FLATDD_FORCE_SCALAR / FLATDD_FORCE_TIER) and forwards every call through
// it. Benchmarks and tests may switch the active table at runtime via
// setDispatchTier() to time every tier in one process.
//
// Strided kernels operate on a comb of `count` sub-spans of `len` complex
// amplitudes whose bases advance by `stride` elements: sub-span k covers
// [k*stride, k*stride + len). Callers guarantee len <= stride and that the
// combs of out/in never overlap except out == in (in-place).

#include <cstddef>

#include "common/types.hpp"

namespace fdd::simd::detail {

struct KernelTable {
  unsigned lanes;

  /// out[i] = s * in[i]
  void (*scale)(Complex* out, const Complex* in, Complex s,
                std::size_t n) noexcept;
  /// out[i] += s * in[i]
  void (*scaleAccumulate)(Complex* out, const Complex* in, Complex s,
                          std::size_t n) noexcept;
  /// out[i] += in[i]
  void (*accumulate)(Complex* out, const Complex* in, std::size_t n) noexcept;
  /// out[i] += a * x[i] + b * y[i]
  void (*mac2)(Complex* out, const Complex* x, Complex a, const Complex* y,
               Complex b, std::size_t n) noexcept;
  /// (a[i], b[i]) = (u[0]*a[i] + u[1]*b[i], u[2]*a[i] + u[3]*b[i])
  void (*butterfly)(Complex* a, Complex* b, const Complex* u,
                    std::size_t n) noexcept;
  /// (s[2i], s[2i+1]) = U * (s[2i], s[2i+1]) for i in [0, nPairs)
  void (*butterflyAdjacent)(Complex* s, const Complex* u,
                            std::size_t nPairs) noexcept;
  /// out[k*stride + j] = s * in[k*stride + j]
  void (*scaleStrided)(Complex* out, const Complex* in, Complex s,
                       std::size_t count, std::size_t len,
                       std::size_t stride) noexcept;
  /// out[k*stride + j] += s * in[k*stride + j]
  void (*macStrided)(Complex* out, const Complex* in, Complex s,
                     std::size_t count, std::size_t len,
                     std::size_t stride) noexcept;
  /// out[k*stride+j] += a * x[k*stride+j] + b * y[k*stride+j]
  void (*mac2Strided)(Complex* out, const Complex* x, Complex a,
                      const Complex* y, Complex b, std::size_t count,
                      std::size_t len, std::size_t stride) noexcept;
  /// sum of |v[i]|^2
  fp (*normSquared)(const Complex* v, std::size_t n) noexcept;
  /// out[i] = a[i] * b[i] — full complex pointwise product. The DiagRun op
  /// applies a precomputed per-index phase table in one sweep with this.
  void (*mulPointwise)(Complex* out, const Complex* a, const Complex* b,
                       std::size_t n) noexcept;
  /// out[j][i] = sum_l u[j*m + l] * in[l][i] for j, l in [0, m), i in
  /// [0, n) — an m x m dense matrix (row-major u) applied across m parallel
  /// spans: the generalized butterfly a DenseBlock tile executes. m is 4 or
  /// 8 (fused 2- or 3-qubit gate); out spans must not overlap in spans.
  void (*denseColumns)(Complex* const* out, const Complex* const* in,
                       const Complex* u, unsigned m, std::size_t n) noexcept;
};

[[nodiscard]] const KernelTable& scalarTable() noexcept;

/// The AVX2+FMA table; aliases scalarTable() when the AVX2 translation unit
/// was compiled without vector support.
[[nodiscard]] const KernelTable& avx2Table() noexcept;

/// True when avx2Table() really holds vector kernels.
[[nodiscard]] bool avx2Compiled() noexcept;

/// The AVX-512 table (8 complex lanes, masked-tail loads/stores); aliases
/// the best lower tier when the AVX-512 translation unit was compiled
/// without vector support.
[[nodiscard]] const KernelTable& avx512Table() noexcept;

/// True when avx512Table() really holds 512-bit kernels.
[[nodiscard]] bool avx512Compiled() noexcept;

}  // namespace fdd::simd::detail
