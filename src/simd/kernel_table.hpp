#pragma once
// Internal kernel dispatch table. Each dispatch tier (scalar, AVX2+FMA)
// provides one immutable table of function pointers; the public API in
// kernels.hpp selects a table once at startup (cpuid + FLATDD_FORCE_SCALAR)
// and forwards every call through it. Benchmarks and tests may switch the
// active table at runtime via setDispatchTier() to time both tiers in one
// process.
//
// Strided kernels operate on a comb of `count` sub-spans of `len` complex
// amplitudes whose bases advance by `stride` elements: sub-span k covers
// [k*stride, k*stride + len). Callers guarantee len <= stride and that the
// combs of out/in never overlap except out == in (in-place).

#include <cstddef>

#include "common/types.hpp"

namespace fdd::simd::detail {

struct KernelTable {
  unsigned lanes;

  /// out[i] = s * in[i]
  void (*scale)(Complex* out, const Complex* in, Complex s,
                std::size_t n) noexcept;
  /// out[i] += s * in[i]
  void (*scaleAccumulate)(Complex* out, const Complex* in, Complex s,
                          std::size_t n) noexcept;
  /// out[i] += in[i]
  void (*accumulate)(Complex* out, const Complex* in, std::size_t n) noexcept;
  /// out[i] += a * x[i] + b * y[i]
  void (*mac2)(Complex* out, const Complex* x, Complex a, const Complex* y,
               Complex b, std::size_t n) noexcept;
  /// (a[i], b[i]) = (u[0]*a[i] + u[1]*b[i], u[2]*a[i] + u[3]*b[i])
  void (*butterfly)(Complex* a, Complex* b, const Complex* u,
                    std::size_t n) noexcept;
  /// (s[2i], s[2i+1]) = U * (s[2i], s[2i+1]) for i in [0, nPairs)
  void (*butterflyAdjacent)(Complex* s, const Complex* u,
                            std::size_t nPairs) noexcept;
  /// out[k*stride + j] = s * in[k*stride + j]
  void (*scaleStrided)(Complex* out, const Complex* in, Complex s,
                       std::size_t count, std::size_t len,
                       std::size_t stride) noexcept;
  /// out[k*stride + j] += s * in[k*stride + j]
  void (*macStrided)(Complex* out, const Complex* in, Complex s,
                     std::size_t count, std::size_t len,
                     std::size_t stride) noexcept;
  /// out[k*stride+j] += a * x[k*stride+j] + b * y[k*stride+j]
  void (*mac2Strided)(Complex* out, const Complex* x, Complex a,
                      const Complex* y, Complex b, std::size_t count,
                      std::size_t len, std::size_t stride) noexcept;
  /// sum of |v[i]|^2
  fp (*normSquared)(const Complex* v, std::size_t n) noexcept;
};

[[nodiscard]] const KernelTable& scalarTable() noexcept;

/// The AVX2+FMA table; aliases scalarTable() when the AVX2 translation unit
/// was compiled without vector support.
[[nodiscard]] const KernelTable& avx2Table() noexcept;

/// True when avx2Table() really holds vector kernels.
[[nodiscard]] bool avx2Compiled() noexcept;

}  // namespace fdd::simd::detail
