// AVX-512 tier. This translation unit is the only one compiled with
// -mavx512f -mavx512dq (per-source property in src/CMakeLists.txt, signalled
// by FLATDD_AVX512_TU); the binary still starts on any x86-64 and the
// dispatcher only selects this table when cpuid reports avx512f+avx512dq.
//
// A 512-bit register holds four interleaved complex doubles
// [r0 i0 r1 i1 r2 i2 r3 i3]. The complex scalar product is the same
// fmaddsub pattern as the AVX2 tier, twice as wide.
//
// Tail policy: every kernel finishes with ONE masked iteration instead of a
// scalar epilogue. __mmask8 carries one bit per double, so a tail of r
// complexes is the mask (1 << 2r) - 1; masked loads of the dead lanes do
// not fault and masked stores never touch bytes outside the span, so tails
// are exact even when the span butts against another thread's rows. The
// same masks replace the AVX2 tier's blend-store workaround for the
// len == 1 stride == 2 comb: mask 0b00110011 writes complexes {0, 2} of a
// register and nothing else, so no comb needs a scalar fallback and stores
// stay strictly inside the comb extent.

#include "simd/kernel_table.hpp"

#if defined(FLATDD_AVX512_TU) && defined(__AVX512F__) && defined(__AVX512DQ__)
#define FLATDD_HAVE_AVX512_KERNELS 1
#include <immintrin.h>
#endif

namespace fdd::simd::detail {

#if defined(FLATDD_HAVE_AVX512_KERNELS)

namespace {

inline __m512d complexScale(__m512d v, __m512d sr, __m512d si) noexcept {
  const __m512d swapped = _mm512_permute_pd(v, 0x55);
  return _mm512_fmaddsub_pd(v, sr, _mm512_mul_pd(swapped, si));
}

/// Mask covering the first `remComplex` (< 4) complexes of a register.
inline __mmask8 tailMask(std::size_t remComplex) noexcept {
  return static_cast<__mmask8>((1u << (2 * remComplex)) - 1u);
}

void scaleK(Complex* out, const Complex* in, Complex s,
            std::size_t n) noexcept {
  const __m512d sr = _mm512_set1_pd(s.real());
  const __m512d si = _mm512_set1_pd(s.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m512d v = _mm512_loadu_pd(p + 2 * i);
    _mm512_storeu_pd(o + 2 * i, complexScale(v, sr, si));
  }
  if (i < n) {
    const __mmask8 m = tailMask(n - i);
    const __m512d v = _mm512_maskz_loadu_pd(m, p + 2 * i);
    _mm512_mask_storeu_pd(o + 2 * i, m, complexScale(v, sr, si));
  }
}

void scaleAccumulateK(Complex* out, const Complex* in, Complex s,
                      std::size_t n) noexcept {
  const __m512d sr = _mm512_set1_pd(s.real());
  const __m512d si = _mm512_set1_pd(s.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t i = 0;
  // Unrolled x2 with prefetch 512B ahead (same rationale as the AVX2 tier:
  // the accumulate target is cache-hot, the input streams).
  for (; i + 8 <= n; i += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(p + 2 * i) + 512, _MM_HINT_T0);
    const __m512d v0 = _mm512_loadu_pd(p + 2 * i);
    const __m512d v1 = _mm512_loadu_pd(p + 2 * i + 8);
    const __m512d a0 = _mm512_loadu_pd(o + 2 * i);
    const __m512d a1 = _mm512_loadu_pd(o + 2 * i + 8);
    _mm512_storeu_pd(o + 2 * i, _mm512_add_pd(a0, complexScale(v0, sr, si)));
    _mm512_storeu_pd(o + 2 * i + 8,
                     _mm512_add_pd(a1, complexScale(v1, sr, si)));
  }
  for (; i + 4 <= n; i += 4) {
    const __m512d v = _mm512_loadu_pd(p + 2 * i);
    const __m512d a = _mm512_loadu_pd(o + 2 * i);
    _mm512_storeu_pd(o + 2 * i, _mm512_add_pd(a, complexScale(v, sr, si)));
  }
  if (i < n) {
    const __mmask8 m = tailMask(n - i);
    const __m512d v = _mm512_maskz_loadu_pd(m, p + 2 * i);
    const __m512d a = _mm512_maskz_loadu_pd(m, o + 2 * i);
    _mm512_mask_storeu_pd(o + 2 * i, m,
                          _mm512_add_pd(a, complexScale(v, sr, si)));
  }
}

void accumulateK(Complex* out, const Complex* in, std::size_t n) noexcept {
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m512d a = _mm512_loadu_pd(o + 2 * i);
    const __m512d b = _mm512_loadu_pd(p + 2 * i);
    _mm512_storeu_pd(o + 2 * i, _mm512_add_pd(a, b));
  }
  if (i < n) {
    const __mmask8 m = tailMask(n - i);
    const __m512d a = _mm512_maskz_loadu_pd(m, o + 2 * i);
    const __m512d b = _mm512_maskz_loadu_pd(m, p + 2 * i);
    _mm512_mask_storeu_pd(o + 2 * i, m, _mm512_add_pd(a, b));
  }
}

void mac2K(Complex* out, const Complex* x, Complex a, const Complex* y,
           Complex b, std::size_t n) noexcept {
  const __m512d ar = _mm512_set1_pd(a.real());
  const __m512d ai = _mm512_set1_pd(a.imag());
  const __m512d br = _mm512_set1_pd(b.real());
  const __m512d bi = _mm512_set1_pd(b.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* px = reinterpret_cast<const double*>(x);
  const auto* py = reinterpret_cast<const double*>(y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_prefetch(reinterpret_cast<const char*>(px + 2 * i) + 256,
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(py + 2 * i) + 256,
                 _MM_HINT_T0);
    __m512d acc = _mm512_loadu_pd(o + 2 * i);
    acc = _mm512_add_pd(acc,
                        complexScale(_mm512_loadu_pd(px + 2 * i), ar, ai));
    acc = _mm512_add_pd(acc,
                        complexScale(_mm512_loadu_pd(py + 2 * i), br, bi));
    _mm512_storeu_pd(o + 2 * i, acc);
  }
  if (i < n) {
    const __mmask8 m = tailMask(n - i);
    __m512d acc = _mm512_maskz_loadu_pd(m, o + 2 * i);
    acc = _mm512_add_pd(
        acc, complexScale(_mm512_maskz_loadu_pd(m, px + 2 * i), ar, ai));
    acc = _mm512_add_pd(
        acc, complexScale(_mm512_maskz_loadu_pd(m, py + 2 * i), br, bi));
    _mm512_mask_storeu_pd(o + 2 * i, m, acc);
  }
}

void butterflyK(Complex* a, Complex* b, const Complex* u,
                std::size_t n) noexcept {
  const __m512d u0r = _mm512_set1_pd(u[0].real());
  const __m512d u0i = _mm512_set1_pd(u[0].imag());
  const __m512d u1r = _mm512_set1_pd(u[1].real());
  const __m512d u1i = _mm512_set1_pd(u[1].imag());
  const __m512d u2r = _mm512_set1_pd(u[2].real());
  const __m512d u2i = _mm512_set1_pd(u[2].imag());
  const __m512d u3r = _mm512_set1_pd(u[3].real());
  const __m512d u3i = _mm512_set1_pd(u[3].imag());
  auto* pa = reinterpret_cast<double*>(a);
  auto* pb = reinterpret_cast<double*>(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m512d va = _mm512_loadu_pd(pa + 2 * i);
    const __m512d vb = _mm512_loadu_pd(pb + 2 * i);
    const __m512d na =
        _mm512_add_pd(complexScale(va, u0r, u0i), complexScale(vb, u1r, u1i));
    const __m512d nb =
        _mm512_add_pd(complexScale(va, u2r, u2i), complexScale(vb, u3r, u3i));
    _mm512_storeu_pd(pa + 2 * i, na);
    _mm512_storeu_pd(pb + 2 * i, nb);
  }
  if (i < n) {
    const __mmask8 m = tailMask(n - i);
    const __m512d va = _mm512_maskz_loadu_pd(m, pa + 2 * i);
    const __m512d vb = _mm512_maskz_loadu_pd(m, pb + 2 * i);
    const __m512d na =
        _mm512_add_pd(complexScale(va, u0r, u0i), complexScale(vb, u1r, u1i));
    const __m512d nb =
        _mm512_add_pd(complexScale(va, u2r, u2i), complexScale(vb, u3r, u3i));
    _mm512_mask_storeu_pd(pa + 2 * i, m, na);
    _mm512_mask_storeu_pd(pb + 2 * i, m, nb);
  }
}

void butterflyAdjacentK(Complex* s, const Complex* u,
                        std::size_t nPairs) noexcept {
  const __m512d u0r = _mm512_set1_pd(u[0].real());
  const __m512d u0i = _mm512_set1_pd(u[0].imag());
  const __m512d u1r = _mm512_set1_pd(u[1].real());
  const __m512d u1i = _mm512_set1_pd(u[1].imag());
  const __m512d u2r = _mm512_set1_pd(u[2].real());
  const __m512d u2i = _mm512_set1_pd(u[2].imag());
  const __m512d u3r = _mm512_set1_pd(u[3].real());
  const __m512d u3i = _mm512_set1_pd(u[3].imag());
  // Four adjacent pairs per iteration: two registers hold
  // [a0 b0 a1 b1] / [a2 b2 a3 b3]; permutex2var deinterleaves into
  // [a0..a3] / [b0..b3], the 2x2 is applied, and the inverse permutes
  // reinterleave. Indices are double positions; bit 3 selects the second
  // source register.
  const __m512i idxA = _mm512_setr_epi64(0, 1, 4, 5, 8, 9, 12, 13);
  const __m512i idxB = _mm512_setr_epi64(2, 3, 6, 7, 10, 11, 14, 15);
  const __m512i idxLo = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
  const __m512i idxHi = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
  auto* p = reinterpret_cast<double*>(s);
  std::size_t i = 0;
  for (; i + 4 <= nPairs; i += 4) {
    const __m512d v0 = _mm512_loadu_pd(p + 4 * i);
    const __m512d v1 = _mm512_loadu_pd(p + 4 * i + 8);
    const __m512d va = _mm512_permutex2var_pd(v0, idxA, v1);
    const __m512d vb = _mm512_permutex2var_pd(v0, idxB, v1);
    const __m512d na =
        _mm512_add_pd(complexScale(va, u0r, u0i), complexScale(vb, u1r, u1i));
    const __m512d nb =
        _mm512_add_pd(complexScale(va, u2r, u2i), complexScale(vb, u3r, u3i));
    _mm512_storeu_pd(p + 4 * i, _mm512_permutex2var_pd(na, idxLo, nb));
    _mm512_storeu_pd(p + 4 * i + 8, _mm512_permutex2var_pd(na, idxHi, nb));
  }
  if (i < nPairs) {
    // 1-3 remaining pairs = 4, 8 or 12 live doubles across the two loads.
    const std::size_t d = 4 * (nPairs - i);
    const __mmask8 m0 =
        static_cast<__mmask8>(d >= 8 ? 0xFFu : (1u << d) - 1u);
    const __mmask8 m1 =
        static_cast<__mmask8>(d > 8 ? (1u << (d - 8)) - 1u : 0u);
    const __m512d v0 = _mm512_maskz_loadu_pd(m0, p + 4 * i);
    const __m512d v1 = _mm512_maskz_loadu_pd(m1, p + 4 * i + 8);
    const __m512d va = _mm512_permutex2var_pd(v0, idxA, v1);
    const __m512d vb = _mm512_permutex2var_pd(v0, idxB, v1);
    const __m512d na =
        _mm512_add_pd(complexScale(va, u0r, u0i), complexScale(vb, u1r, u1i));
    const __m512d nb =
        _mm512_add_pd(complexScale(va, u2r, u2i), complexScale(vb, u3r, u3i));
    _mm512_mask_storeu_pd(p + 4 * i, m0,
                          _mm512_permutex2var_pd(na, idxLo, nb));
    _mm512_mask_storeu_pd(p + 4 * i + 8, m1,
                          _mm512_permutex2var_pd(na, idxHi, nb));
  }
}

/// len == 1 stride == 2 comb: two combs per register via mask 0b00110011
/// (complexes {0, 2}). Unlike the AVX2 blend-store path, the masked store
/// writes only the comb's own bytes, so every comb — including the last —
/// runs vectorized.
template <bool Accumulate>
void scaleStride2Lane0(Complex* out, const Complex* in, Complex s,
                       std::size_t count) noexcept {
  const __m512d sr = _mm512_set1_pd(s.real());
  const __m512d si = _mm512_set1_pd(s.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  constexpr __mmask8 kPair = 0b00110011;
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const __m512d v = _mm512_maskz_loadu_pd(kPair, p + 4 * k);
    __m512d r = complexScale(v, sr, si);
    if constexpr (Accumulate) {
      r = _mm512_add_pd(_mm512_maskz_loadu_pd(kPair, o + 4 * k), r);
    }
    _mm512_mask_storeu_pd(o + 4 * k, kPair, r);
  }
  if (k < count) {
    constexpr __mmask8 kOne = 0b00000011;
    const __m512d v = _mm512_maskz_loadu_pd(kOne, p + 4 * k);
    __m512d r = complexScale(v, sr, si);
    if constexpr (Accumulate) {
      r = _mm512_add_pd(_mm512_maskz_loadu_pd(kOne, o + 4 * k), r);
    }
    _mm512_mask_storeu_pd(o + 4 * k, kOne, r);
  }
}

void scaleStridedK(Complex* out, const Complex* in, Complex s,
                   std::size_t count, std::size_t len,
                   std::size_t stride) noexcept {
  if (len == 1) {
    if (stride == 2) {
      scaleStride2Lane0<false>(out, in, s, count);
    } else {
      // Isolated elements at other strides: the scalar TU's indexed loop
      // beats gather codegen, same as the AVX2 tier.
      scalarTable().scaleStrided(out, in, s, count, len, stride);
    }
    return;
  }
  for (std::size_t k = 0; k < count; ++k) {
    scaleK(out + k * stride, in + k * stride, s, len);
  }
}

void macStridedK(Complex* out, const Complex* in, Complex s, std::size_t count,
                 std::size_t len, std::size_t stride) noexcept {
  if (len == 1) {
    if (stride == 2) {
      scaleStride2Lane0<true>(out, in, s, count);
    } else {
      scalarTable().macStrided(out, in, s, count, len, stride);
    }
    return;
  }
  for (std::size_t k = 0; k < count; ++k) {
    scaleAccumulateK(out + k * stride, in + k * stride, s, len);
  }
}

void mac2StridedK(Complex* out, const Complex* x, Complex a, const Complex* y,
                  Complex b, std::size_t count, std::size_t len,
                  std::size_t stride) noexcept {
  if (len == 1) {
    scalarTable().mac2Strided(out, x, a, y, b, count, len, stride);
    return;
  }
  for (std::size_t k = 0; k < count; ++k) {
    mac2K(out + k * stride, x + k * stride, a, y + k * stride, b, len);
  }
}

fp normSquaredK(const Complex* v, std::size_t n) noexcept {
  const auto* p = reinterpret_cast<const double*>(v);
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m512d x = _mm512_loadu_pd(p + 2 * i);
    acc = _mm512_fmadd_pd(x, x, acc);
  }
  if (i < n) {
    const __m512d x = _mm512_maskz_loadu_pd(tailMask(n - i), p + 2 * i);
    acc = _mm512_fmadd_pd(x, x, acc);
  }
  return _mm512_reduce_add_pd(acc);
}

void mulPointwiseK(Complex* out, const Complex* a, const Complex* b,
                   std::size_t n) noexcept {
  auto* o = reinterpret_cast<double*>(out);
  const auto* pa = reinterpret_cast<const double*>(a);
  const auto* pb = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m512d va = _mm512_loadu_pd(pa + 2 * i);
    const __m512d vb = _mm512_loadu_pd(pb + 2 * i);
    const __m512d br = _mm512_movedup_pd(vb);
    const __m512d bi = _mm512_permute_pd(vb, 0xFF);
    _mm512_storeu_pd(o + 2 * i, complexScale(va, br, bi));
  }
  if (i < n) {
    const __mmask8 m = tailMask(n - i);
    const __m512d va = _mm512_maskz_loadu_pd(m, pa + 2 * i);
    const __m512d vb = _mm512_maskz_loadu_pd(m, pb + 2 * i);
    const __m512d br = _mm512_movedup_pd(vb);
    const __m512d bi = _mm512_permute_pd(vb, 0xFF);
    _mm512_mask_storeu_pd(o + 2 * i, m, complexScale(va, br, bi));
  }
}

void denseColumnsK(Complex* const* out, const Complex* const* in,
                   const Complex* u, unsigned m, std::size_t n) noexcept {
  __m512d ur[64];
  __m512d ui[64];
  for (unsigned j = 0; j < m * m; ++j) {
    ur[j] = _mm512_set1_pd(u[j].real());
    ui[j] = _mm512_set1_pd(u[j].imag());
  }
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m512d acc[8];
    for (unsigned j = 0; j < m; ++j) {
      acc[j] = _mm512_setzero_pd();
    }
    for (unsigned l = 0; l < m; ++l) {
      const __m512d v =
          _mm512_loadu_pd(reinterpret_cast<const double*>(in[l] + i));
      for (unsigned j = 0; j < m; ++j) {
        acc[j] = _mm512_add_pd(acc[j],
                               complexScale(v, ur[j * m + l], ui[j * m + l]));
      }
    }
    for (unsigned j = 0; j < m; ++j) {
      _mm512_storeu_pd(reinterpret_cast<double*>(out[j] + i), acc[j]);
    }
  }
  if (i < n) {
    const __mmask8 mask = tailMask(n - i);
    __m512d acc[8];
    for (unsigned j = 0; j < m; ++j) {
      acc[j] = _mm512_setzero_pd();
    }
    for (unsigned l = 0; l < m; ++l) {
      const __m512d v = _mm512_maskz_loadu_pd(
          mask, reinterpret_cast<const double*>(in[l] + i));
      for (unsigned j = 0; j < m; ++j) {
        acc[j] = _mm512_add_pd(acc[j],
                               complexScale(v, ur[j * m + l], ui[j * m + l]));
      }
    }
    for (unsigned j = 0; j < m; ++j) {
      _mm512_mask_storeu_pd(reinterpret_cast<double*>(out[j] + i), mask,
                            acc[j]);
    }
  }
}

}  // namespace

bool avx512Compiled() noexcept { return true; }

const KernelTable& avx512Table() noexcept {
  static const KernelTable table{
      /*lanes=*/8,          &scaleK,      &scaleAccumulateK,
      &accumulateK,         &mac2K,       &butterflyK,
      &butterflyAdjacentK,  &scaleStridedK, &macStridedK,
      &mac2StridedK,        &normSquaredK,  &mulPointwiseK,
      &denseColumnsK,
  };
  return table;
}

#else  // no AVX-512 in this build: alias the best lower tier

bool avx512Compiled() noexcept { return false; }

const KernelTable& avx512Table() noexcept { return avx2Table(); }

#endif

}  // namespace fdd::simd::detail
