#include "simd/calibration.hpp"

#include <cmath>

namespace fdd::simd {

namespace {

/// kCalibration[tier][class]: measured scalarNs / tierNs at 2^20 amps,
/// refreshed from the "calibration" section of BENCH_kernels.json
/// (bench/kernels). Scalar is 1.0 by construction.
constexpr int kNumClasses = 6;
constexpr fp kCalibration[3][kNumClasses] = {
    // Mac, Mac2, Butterfly, Diag, Dense, Norm
    {1.0, 1.0, 1.0, 1.0, 1.0, 1.0},  // Scalar
    {2.2, 2.0, 3.1, 1.0, 4.1, 1.3},  // Avx2
    {2.0, 2.0, 2.9, 1.0, 6.5, 1.5},  // Avx512
};

}  // namespace

fp calibratedLanes(KernelClass cls, DispatchTier tier) noexcept {
  return kCalibration[static_cast<int>(tier)][static_cast<int>(cls)];
}

fp calibratedLanes(KernelClass cls) noexcept {
  return calibratedLanes(cls, activeTier());
}

fp arrayPhaseSpeedup() noexcept {
  const fp ref = calibratedLanes(KernelClass::Mac, DispatchTier::Avx2);
  const fp act = calibratedLanes(KernelClass::Mac, activeTier());
  return std::sqrt(act / ref);
}

}  // namespace fdd::simd
