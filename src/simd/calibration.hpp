#pragma once
// Measured per-tier kernel throughput for the cost model. Eq. 6 divides the
// sweep term by `d`, the SIMD width — but the *nominal* lane count (8/4/1)
// overstates what memory-bound kernels actually gain: at state-vector sizes
// the AVX2 MAC runs ~2x scalar, not 4x, because DRAM bandwidth, not issue
// width, is the ceiling. This table holds the measured effective widths so
// fusion decisions (Alg. 3 via dmavCost) and the cached-vs-uncached switch
// see the throughput that will really execute.
//
// The numbers are a static snapshot refreshed from bench/kernels: the bench
// emits a "calibration" section in BENCH_kernels.json with scalarNs/tierNs
// ratios at 2^20 amps per kernel class; when kernels or hardware class
// change materially, re-run the bench and update kCalibration below. Values
// are deliberately coarse (one digit) — the cost model compares costs that
// differ by integer factors, so ±20% calibration error never flips a
// decision that mattered.

#include "common/types.hpp"
#include "simd/kernels.hpp"

namespace fdd::simd {

/// Kernel families with distinct effective-width behavior.
enum class KernelClass : std::uint8_t {
  Mac,        // scale / scaleAccumulate / accumulate — Eq. 6's sweep term
  Mac2,       // two-term fused MAC
  Butterfly,  // strided / adjacent 2x2
  Diag,       // DiagScale sweeps and DiagRun pointwise products
  Dense,      // DenseBlock m x m column tiles
  Norm,       // reductions
};

/// Measured effective SIMD width (the `d` of Eq. 6) of `cls` kernels on
/// `tier`, in scalar-equivalents at memory-bound sizes (2^20 amps).
[[nodiscard]] fp calibratedLanes(KernelClass cls, DispatchTier tier) noexcept;

/// calibratedLanes for the tier kernels currently dispatch to.
[[nodiscard]] fp calibratedLanes(KernelClass cls) noexcept;

/// Array-phase speedup of the active tier relative to the AVX2 reference
/// tier on MAC-class kernels, sqrt-damped (same conservatism as
/// ddPhaseSpeedup): the EWMA conversion trigger scales its epsilon by
/// 1/this, so a faster array phase moves the DD-to-array switch earlier and
/// a scalar-only host moves it later. Exactly 1.0 on the AVX2 tier, so
/// calibrated hosts match the pre-calibration trigger behavior bit-for-bit.
[[nodiscard]] fp arrayPhaseSpeedup() noexcept;

}  // namespace fdd::simd
