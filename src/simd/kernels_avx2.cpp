// AVX2+FMA tier. This translation unit is the only one compiled with
// -mavx2 -mfma (per-source property in src/CMakeLists.txt, signalled by
// FLATDD_AVX2_TU); everything else stays at the base ISA so the binary runs
// on non-AVX2 hosts and merely dispatches to the scalar table there.
//
// A 256-bit register holds two interleaved complex doubles [r0 i0 r1 i1].
// Complex scalar product per register:
//   even slots:  sr*r - si*i
//   odd  slots:  sr*i + si*r
// which is exactly vaddsubpd(v*sr, swap(v)*si).

#include "simd/kernel_table.hpp"

#if defined(FLATDD_AVX2_TU) && defined(__AVX2__) && defined(__FMA__)
#define FLATDD_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace fdd::simd::detail {

#if defined(FLATDD_HAVE_AVX2_KERNELS)

namespace {

inline __m256d complexScale(__m256d v, __m256d sr, __m256d si) noexcept {
  const __m256d swapped = _mm256_permute_pd(v, 0b0101);
  // fmaddsub computes v*sr -/+ swapped*si in one op (even lanes subtract,
  // odd lanes add) — exactly the complex-product sign pattern.
  return _mm256_fmaddsub_pd(v, sr, _mm256_mul_pd(swapped, si));
}

void scaleK(Complex* out, const Complex* in, Complex s,
            std::size_t n) noexcept {
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d v = _mm256_loadu_pd(p + 2 * i);
    _mm256_storeu_pd(o + 2 * i, complexScale(v, sr, si));
  }
  for (; i < n; ++i) {
    out[i] = s * in[i];
  }
}

void scaleAccumulateK(Complex* out, const Complex* in, Complex s,
                      std::size_t n) noexcept {
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t i = 0;
  // Unrolled x4 with prefetch 512B ahead: the accumulate target is
  // typically cache-hot (DMAV partial-output buffer) while the input
  // streams from L3, so hiding the input load latency is what pays.
  for (; i + 8 <= n; i += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(p + 2 * i) + 512, _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(p + 2 * i) + 576, _MM_HINT_T0);
    const __m256d v0 = _mm256_loadu_pd(p + 2 * i);
    const __m256d v1 = _mm256_loadu_pd(p + 2 * i + 4);
    const __m256d v2 = _mm256_loadu_pd(p + 2 * i + 8);
    const __m256d v3 = _mm256_loadu_pd(p + 2 * i + 12);
    const __m256d a0 = _mm256_loadu_pd(o + 2 * i);
    const __m256d a1 = _mm256_loadu_pd(o + 2 * i + 4);
    const __m256d a2 = _mm256_loadu_pd(o + 2 * i + 8);
    const __m256d a3 = _mm256_loadu_pd(o + 2 * i + 12);
    _mm256_storeu_pd(o + 2 * i, _mm256_add_pd(a0, complexScale(v0, sr, si)));
    _mm256_storeu_pd(o + 2 * i + 4,
                     _mm256_add_pd(a1, complexScale(v1, sr, si)));
    _mm256_storeu_pd(o + 2 * i + 8,
                     _mm256_add_pd(a2, complexScale(v2, sr, si)));
    _mm256_storeu_pd(o + 2 * i + 12,
                     _mm256_add_pd(a3, complexScale(v3, sr, si)));
  }
  for (; i + 2 <= n; i += 2) {
    const __m256d v = _mm256_loadu_pd(p + 2 * i);
    const __m256d acc = _mm256_loadu_pd(o + 2 * i);
    _mm256_storeu_pd(o + 2 * i, _mm256_add_pd(acc, complexScale(v, sr, si)));
  }
  for (; i < n; ++i) {
    out[i] += s * in[i];
  }
}

void accumulateK(Complex* out, const Complex* in, std::size_t n) noexcept {
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d a = _mm256_loadu_pd(o + 2 * i);
    const __m256d b = _mm256_loadu_pd(p + 2 * i);
    _mm256_storeu_pd(o + 2 * i, _mm256_add_pd(a, b));
  }
  for (; i < n; ++i) {
    out[i] += in[i];
  }
}

void mac2K(Complex* out, const Complex* x, Complex a, const Complex* y,
           Complex b, std::size_t n) noexcept {
  const __m256d ar = _mm256_set1_pd(a.real());
  const __m256d ai = _mm256_set1_pd(a.imag());
  const __m256d br = _mm256_set1_pd(b.real());
  const __m256d bi = _mm256_set1_pd(b.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* px = reinterpret_cast<const double*>(x);
  const auto* py = reinterpret_cast<const double*>(y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_prefetch(reinterpret_cast<const char*>(px + 2 * i) + 256,
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(py + 2 * i) + 256,
                 _MM_HINT_T0);
    __m256d a0 = _mm256_loadu_pd(o + 2 * i);
    __m256d a1 = _mm256_loadu_pd(o + 2 * i + 4);
    a0 = _mm256_add_pd(a0,
                       complexScale(_mm256_loadu_pd(px + 2 * i), ar, ai));
    a1 = _mm256_add_pd(a1,
                       complexScale(_mm256_loadu_pd(px + 2 * i + 4), ar, ai));
    a0 = _mm256_add_pd(a0,
                       complexScale(_mm256_loadu_pd(py + 2 * i), br, bi));
    a1 = _mm256_add_pd(a1,
                       complexScale(_mm256_loadu_pd(py + 2 * i + 4), br, bi));
    _mm256_storeu_pd(o + 2 * i, a0);
    _mm256_storeu_pd(o + 2 * i + 4, a1);
  }
  for (; i + 2 <= n; i += 2) {
    __m256d acc = _mm256_loadu_pd(o + 2 * i);
    acc = _mm256_add_pd(acc,
                        complexScale(_mm256_loadu_pd(px + 2 * i), ar, ai));
    acc = _mm256_add_pd(acc,
                        complexScale(_mm256_loadu_pd(py + 2 * i), br, bi));
    _mm256_storeu_pd(o + 2 * i, acc);
  }
  for (; i < n; ++i) {
    out[i] += a * x[i] + b * y[i];
  }
}

void butterflyK(Complex* a, Complex* b, const Complex* u,
                std::size_t n) noexcept {
  const __m256d u0r = _mm256_set1_pd(u[0].real());
  const __m256d u0i = _mm256_set1_pd(u[0].imag());
  const __m256d u1r = _mm256_set1_pd(u[1].real());
  const __m256d u1i = _mm256_set1_pd(u[1].imag());
  const __m256d u2r = _mm256_set1_pd(u[2].real());
  const __m256d u2i = _mm256_set1_pd(u[2].imag());
  const __m256d u3r = _mm256_set1_pd(u[3].real());
  const __m256d u3i = _mm256_set1_pd(u[3].imag());
  auto* pa = reinterpret_cast<double*>(a);
  auto* pb = reinterpret_cast<double*>(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d va = _mm256_loadu_pd(pa + 2 * i);
    const __m256d vb = _mm256_loadu_pd(pb + 2 * i);
    const __m256d na =
        _mm256_add_pd(complexScale(va, u0r, u0i), complexScale(vb, u1r, u1i));
    const __m256d nb =
        _mm256_add_pd(complexScale(va, u2r, u2i), complexScale(vb, u3r, u3i));
    _mm256_storeu_pd(pa + 2 * i, na);
    _mm256_storeu_pd(pb + 2 * i, nb);
  }
  for (; i < n; ++i) {
    const Complex x = a[i];
    const Complex y = b[i];
    a[i] = u[0] * x + u[1] * y;
    b[i] = u[2] * x + u[3] * y;
  }
}

void butterflyAdjacentK(Complex* s, const Complex* u,
                        std::size_t nPairs) noexcept {
  const __m256d u0r = _mm256_set1_pd(u[0].real());
  const __m256d u0i = _mm256_set1_pd(u[0].imag());
  const __m256d u1r = _mm256_set1_pd(u[1].real());
  const __m256d u1i = _mm256_set1_pd(u[1].imag());
  const __m256d u2r = _mm256_set1_pd(u[2].real());
  const __m256d u2i = _mm256_set1_pd(u[2].imag());
  const __m256d u3r = _mm256_set1_pd(u[3].real());
  const __m256d u3i = _mm256_set1_pd(u[3].imag());
  auto* p = reinterpret_cast<double*>(s);
  std::size_t i = 0;
  // Two adjacent pairs per iteration: deinterleave [a0 b0][a1 b1] into
  // [a0 a1] / [b0 b1] with cross-lane permutes, apply the 2x2, reinterleave.
  for (; i + 2 <= nPairs; i += 2) {
    const __m256d v0 = _mm256_loadu_pd(p + 4 * i);
    const __m256d v1 = _mm256_loadu_pd(p + 4 * i + 4);
    const __m256d va = _mm256_permute2f128_pd(v0, v1, 0x20);
    const __m256d vb = _mm256_permute2f128_pd(v0, v1, 0x31);
    const __m256d na =
        _mm256_add_pd(complexScale(va, u0r, u0i), complexScale(vb, u1r, u1i));
    const __m256d nb =
        _mm256_add_pd(complexScale(va, u2r, u2i), complexScale(vb, u3r, u3i));
    _mm256_storeu_pd(p + 4 * i, _mm256_permute2f128_pd(na, nb, 0x20));
    _mm256_storeu_pd(p + 4 * i + 4, _mm256_permute2f128_pd(na, nb, 0x31));
  }
  for (; i < nPairs; ++i) {
    const Complex x = s[2 * i];
    const Complex y = s[2 * i + 1];
    s[2 * i] = u[0] * x + u[1] * y;
    s[2 * i + 1] = u[2] * x + u[3] * y;
  }
}

// Strided combs vectorize the inner span when len >= 2 (one register per two
// complexes). A len == 1 stride == 2 comb — the shape every low-qubit gate
// collapses to — is vectorized by blending: load two adjacent complexes,
// scale both, keep the untouched odd lane's original bits in the store. The
// blend rewrites odd-lane bytes with the values just loaded, which is safe
// because those bytes lie inside the comb extent minus one, i.e. inside the
// same plan block / ArraySimulator chunk and therefore the same thread; the
// final comb is done scalar so no store reaches the extent boundary. Other
// len == 1 shapes defer to the scalar table — the plain indexed loop
// auto-vectorizes badly under -mavx2 (gather/scatter), so reusing the
// scalar TU's codegen is strictly faster.
template <bool Accumulate>
void scaleStride2Lane0(Complex* out, const Complex* in, Complex s,
                       std::size_t count) noexcept {
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t k = 0;
  for (; k + 1 < count; ++k) {  // last comb scalar: keep stores < extent
    const __m256d v = _mm256_loadu_pd(p + 4 * k);
    __m256d r = complexScale(v, sr, si);
    if constexpr (Accumulate) {
      r = _mm256_add_pd(_mm256_loadu_pd(o + 4 * k), r);
    }
    const __m256d keep = _mm256_loadu_pd(o + 4 * k);
    _mm256_storeu_pd(o + 4 * k, _mm256_blend_pd(r, keep, 0b1100));
  }
  for (; k < count; ++k) {
    if constexpr (Accumulate) {
      out[2 * k] += s * in[2 * k];
    } else {
      out[2 * k] = s * in[2 * k];
    }
  }
}

void scaleStridedK(Complex* out, const Complex* in, Complex s,
                   std::size_t count, std::size_t len,
                   std::size_t stride) noexcept {
  if (len == 1) {
    if (stride == 2) {
      scaleStride2Lane0<false>(out, in, s, count);
    } else {
      scalarTable().scaleStrided(out, in, s, count, len, stride);
    }
    return;
  }
  for (std::size_t k = 0; k < count; ++k) {
    scaleK(out + k * stride, in + k * stride, s, len);
  }
}

void macStridedK(Complex* out, const Complex* in, Complex s, std::size_t count,
                 std::size_t len, std::size_t stride) noexcept {
  if (len == 1) {
    if (stride == 2) {
      scaleStride2Lane0<true>(out, in, s, count);
    } else {
      scalarTable().macStrided(out, in, s, count, len, stride);
    }
    return;
  }
  for (std::size_t k = 0; k < count; ++k) {
    scaleAccumulateK(out + k * stride, in + k * stride, s, len);
  }
}

void mac2StridedK(Complex* out, const Complex* x, Complex a, const Complex* y,
                  Complex b, std::size_t count, std::size_t len,
                  std::size_t stride) noexcept {
  if (len == 1) {
    scalarTable().mac2Strided(out, x, a, y, b, count, len, stride);
    return;
  }
  for (std::size_t k = 0; k < count; ++k) {
    mac2K(out + k * stride, x + k * stride, a, y + k * stride, b, len);
  }
}

fp normSquaredK(const Complex* v, std::size_t n) noexcept {
  const auto* p = reinterpret_cast<const double*>(v);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d x = _mm256_loadu_pd(p + 2 * i);
    acc = _mm256_fmadd_pd(x, x, acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  fp sum = lane[0] + lane[1] + lane[2] + lane[3];
  for (; i < n; ++i) {
    sum += norm2(v[i]);
  }
  return sum;
}

void mulPointwiseK(Complex* out, const Complex* a, const Complex* b,
                   std::size_t n) noexcept {
  auto* o = reinterpret_cast<double*>(out);
  const auto* pa = reinterpret_cast<const double*>(a);
  const auto* pb = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d va = _mm256_loadu_pd(pa + 2 * i);
    const __m256d vb = _mm256_loadu_pd(pb + 2 * i);
    // Per-element complexScale: the coefficient is a vector, so the real
    // parts come from movedup (even lanes) and the imaginaries from the odd
    // lanes duplicated.
    const __m256d br = _mm256_movedup_pd(vb);
    const __m256d bi = _mm256_permute_pd(vb, 0b1111);
    _mm256_storeu_pd(o + 2 * i, complexScale(va, br, bi));
  }
  for (; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

void denseColumnsK(Complex* const* out, const Complex* const* in,
                   const Complex* u, unsigned m, std::size_t n) noexcept {
  // Broadcast the matrix once; the spill to stack stays L1-hot across the
  // whole tile while the column loads stream.
  __m256d ur[64];
  __m256d ui[64];
  for (unsigned j = 0; j < m * m; ++j) {
    ur[j] = _mm256_set1_pd(u[j].real());
    ui[j] = _mm256_set1_pd(u[j].imag());
  }
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m256d acc[8];
    for (unsigned j = 0; j < m; ++j) {
      acc[j] = _mm256_setzero_pd();
    }
    for (unsigned l = 0; l < m; ++l) {
      const __m256d v =
          _mm256_loadu_pd(reinterpret_cast<const double*>(in[l] + i));
      for (unsigned j = 0; j < m; ++j) {
        acc[j] = _mm256_add_pd(acc[j],
                               complexScale(v, ur[j * m + l], ui[j * m + l]));
      }
    }
    for (unsigned j = 0; j < m; ++j) {
      _mm256_storeu_pd(reinterpret_cast<double*>(out[j] + i), acc[j]);
    }
  }
  for (; i < n; ++i) {
    Complex x[8];
    for (unsigned l = 0; l < m; ++l) {
      x[l] = in[l][i];
    }
    for (unsigned j = 0; j < m; ++j) {
      Complex acc{};
      for (unsigned l = 0; l < m; ++l) {
        acc += u[j * m + l] * x[l];
      }
      out[j][i] = acc;
    }
  }
}

}  // namespace

bool avx2Compiled() noexcept { return true; }

const KernelTable& avx2Table() noexcept {
  static const KernelTable table{
      /*lanes=*/4,          &scaleK,      &scaleAccumulateK,
      &accumulateK,         &mac2K,       &butterflyK,
      &butterflyAdjacentK,  &scaleStridedK, &macStridedK,
      &mac2StridedK,        &normSquaredK,  &mulPointwiseK,
      &denseColumnsK,
  };
  return table;
}

#else  // no AVX2 in this build: alias the scalar table

bool avx2Compiled() noexcept { return false; }

const KernelTable& avx2Table() noexcept { return scalarTable(); }

#endif

}  // namespace fdd::simd::detail
