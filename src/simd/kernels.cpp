#include "simd/kernels.hpp"

#include <cstring>

#if defined(FLATDD_AVX2)
#include <immintrin.h>
#endif

namespace fdd::simd {

#if defined(FLATDD_AVX2)

unsigned lanes() noexcept { return 4; }
bool avx2Enabled() noexcept { return true; }

namespace {

// A 256-bit lane holds two interleaved complex doubles [r0 i0 r1 i1].
// Complex scalar product per lane:
//   even slots:  sr*r - si*i
//   odd  slots:  sr*i + si*r
// which is exactly vaddsubpd(v*sr, swap(v)*si).
inline __m256d complexScale(__m256d v, __m256d sr, __m256d si) noexcept {
  const __m256d swapped = _mm256_permute_pd(v, 0b0101);
  return _mm256_addsub_pd(_mm256_mul_pd(v, sr), _mm256_mul_pd(swapped, si));
}

}  // namespace

void scale(Complex* out, const Complex* in, Complex s, std::size_t n) noexcept {
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d v = _mm256_loadu_pd(p + 2 * i);
    _mm256_storeu_pd(o + 2 * i, complexScale(v, sr, si));
  }
  for (; i < n; ++i) {
    out[i] = s * in[i];
  }
}

void scaleAccumulate(Complex* out, const Complex* in, Complex s,
                     std::size_t n) noexcept {
  const __m256d sr = _mm256_set1_pd(s.real());
  const __m256d si = _mm256_set1_pd(s.imag());
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d v = _mm256_loadu_pd(p + 2 * i);
    const __m256d acc = _mm256_loadu_pd(o + 2 * i);
    _mm256_storeu_pd(o + 2 * i, _mm256_add_pd(acc, complexScale(v, sr, si)));
  }
  for (; i < n; ++i) {
    out[i] += s * in[i];
  }
}

void accumulate(Complex* out, const Complex* in, std::size_t n) noexcept {
  auto* o = reinterpret_cast<double*>(out);
  const auto* p = reinterpret_cast<const double*>(in);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d a = _mm256_loadu_pd(o + 2 * i);
    const __m256d b = _mm256_loadu_pd(p + 2 * i);
    _mm256_storeu_pd(o + 2 * i, _mm256_add_pd(a, b));
  }
  for (; i < n; ++i) {
    out[i] += in[i];
  }
}

fp normSquared(const Complex* v, std::size_t n) noexcept {
  const auto* p = reinterpret_cast<const double*>(v);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d x = _mm256_loadu_pd(p + 2 * i);
    acc = _mm256_fmadd_pd(x, x, acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  fp sum = lane[0] + lane[1] + lane[2] + lane[3];
  for (; i < n; ++i) {
    sum += norm2(v[i]);
  }
  return sum;
}

#else  // scalar fallback

unsigned lanes() noexcept { return 1; }
bool avx2Enabled() noexcept { return false; }

void scale(Complex* out, const Complex* in, Complex s, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = s * in[i];
  }
}

void scaleAccumulate(Complex* out, const Complex* in, Complex s,
                     std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += s * in[i];
  }
}

void accumulate(Complex* out, const Complex* in, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += in[i];
  }
}

fp normSquared(const Complex* v, std::size_t n) noexcept {
  fp sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += norm2(v[i]);
  }
  return sum;
}

#endif

void zeroFill(Complex* out, std::size_t n) noexcept {
  std::memset(static_cast<void*>(out), 0, n * sizeof(Complex));
}

}  // namespace fdd::simd
