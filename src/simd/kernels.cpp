// Runtime kernel dispatch. The active tier is resolved once, lazily, from
// (a) which translation units were compiled with vector support, (b) the
// FLATDD_FORCE_SCALAR / FLATDD_FORCE_TIER environment variables, and (c)
// cpuid (avx2+fma, avx512f+avx512dq). setDispatchTier() lets benchmarks and
// tests flip tables mid-process to time every path in one binary.
//
// Env validation: both variables are checked against the accepted
// vocabulary. An unknown value, or a tier the build/CPU cannot run, prints
// one warning to stderr and resolution falls back to the best available
// tier — never a silent semantic change.

#include "simd/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/kernel_table.hpp"

namespace fdd::simd {
namespace {

bool cpuHasAvx2Fma() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpuHasAvx512() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

const detail::KernelTable& tableFor(DispatchTier tier) noexcept {
  switch (tier) {
    case DispatchTier::Avx512: return detail::avx512Table();
    case DispatchTier::Avx2: return detail::avx2Table();
    case DispatchTier::Scalar: break;
  }
  return detail::scalarTable();
}

void warnOnce(std::atomic<bool>& flag, const char* fmt,
              const char* value) noexcept {
  if (!flag.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr, fmt, value);
  }
}

/// FLATDD_FORCE_SCALAR: "" / "0" = unset, "1" = scalar. Any other value is
/// treated as set (historical behavior) but warns once.
bool forceScalarEnv() noexcept {
  const char* v = std::getenv("FLATDD_FORCE_SCALAR");
  if (v == nullptr || v[0] == '\0') {
    return false;
  }
  if (v[0] == '0' && v[1] == '\0') {
    return false;
  }
  if (!(v[0] == '1' && v[1] == '\0')) {
    static std::atomic<bool> warned{false};
    warnOnce(warned,
             "flatdd: FLATDD_FORCE_SCALAR=%s is not \"0\" or \"1\"; "
             "treating it as \"1\" (scalar kernels)\n",
             v);
  }
  return true;
}

const detail::KernelTable* resolveBest() noexcept {
  if (detail::avx512Compiled() && cpuHasAvx512()) {
    return &detail::avx512Table();
  }
  if (detail::avx2Compiled() && cpuHasAvx2Fma()) {
    return &detail::avx2Table();
  }
  return &detail::scalarTable();
}

const detail::KernelTable* resolveDefault() noexcept {
  // FLATDD_FORCE_SCALAR predates FLATDD_FORCE_TIER and wins when both are
  // set — scripts that exported it keep their meaning.
  if (forceScalarEnv()) {
    return &detail::scalarTable();
  }
  if (const char* v = std::getenv("FLATDD_FORCE_TIER");
      v != nullptr && v[0] != '\0') {
    const std::optional<DispatchTier> tier = parseTierName(v);
    if (!tier.has_value()) {
      static std::atomic<bool> warnedUnknown{false};
      warnOnce(warnedUnknown,
               "flatdd: FLATDD_FORCE_TIER=%s is not a known tier "
               "(scalar|avx2|avx512); using the best available tier\n",
               v);
    } else if (!tierAvailable(*tier)) {
      static std::atomic<bool> warnedUnavailable{false};
      warnOnce(warnedUnavailable,
               "flatdd: FLATDD_FORCE_TIER=%s is not available on this "
               "build/CPU; using the best available tier\n",
               v);
    } else {
      return &tableFor(*tier);
    }
  }
  return resolveBest();
}

std::atomic<const detail::KernelTable*> gActive{nullptr};

const detail::KernelTable& active() noexcept {
  const detail::KernelTable* t = gActive.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = resolveDefault();
    gActive.store(t, std::memory_order_release);
  }
  return *t;
}

}  // namespace

const char* toString(DispatchTier tier) noexcept {
  switch (tier) {
    case DispatchTier::Avx512: return "avx512";
    case DispatchTier::Avx2: return "avx2";
    case DispatchTier::Scalar: break;
  }
  return "scalar";
}

std::optional<DispatchTier> parseTierName(const char* name) noexcept {
  if (name == nullptr) {
    return std::nullopt;
  }
  if (std::strcmp(name, "scalar") == 0) {
    return DispatchTier::Scalar;
  }
  if (std::strcmp(name, "avx2") == 0) {
    return DispatchTier::Avx2;
  }
  if (std::strcmp(name, "avx512") == 0) {
    return DispatchTier::Avx512;
  }
  return std::nullopt;
}

DispatchTier activeTier() noexcept {
  const detail::KernelTable* t = &active();
  // Compare against the real vector tables first: when a vector TU was not
  // compiled, its accessor aliases a lower tier and must not claim the name.
  if (detail::avx512Compiled() && t == &detail::avx512Table()) {
    return DispatchTier::Avx512;
  }
  if (detail::avx2Compiled() && t == &detail::avx2Table()) {
    return DispatchTier::Avx2;
  }
  return DispatchTier::Scalar;
}

bool tierAvailable(DispatchTier tier) noexcept {
  switch (tier) {
    case DispatchTier::Scalar:
      return true;
    case DispatchTier::Avx2:
      return detail::avx2Compiled() && cpuHasAvx2Fma();
    case DispatchTier::Avx512:
      return detail::avx512Compiled() && cpuHasAvx512();
  }
  return false;
}

DispatchTier bestAvailableTier() noexcept {
  if (tierAvailable(DispatchTier::Avx512)) {
    return DispatchTier::Avx512;
  }
  if (tierAvailable(DispatchTier::Avx2)) {
    return DispatchTier::Avx2;
  }
  return DispatchTier::Scalar;
}

bool setDispatchTier(DispatchTier tier) noexcept {
  if (!tierAvailable(tier)) {
    return false;
  }
  gActive.store(&tableFor(tier), std::memory_order_release);
  return true;
}

unsigned lanes() noexcept { return active().lanes; }

unsigned lanesOf(DispatchTier tier) noexcept {
  switch (tier) {
    case DispatchTier::Avx512: return 8;
    case DispatchTier::Avx2: return 4;
    case DispatchTier::Scalar: break;
  }
  return 1;
}

bool avx2Enabled() noexcept { return activeTier() == DispatchTier::Avx2; }

bool vectorEnabled() noexcept { return active().lanes > 1; }

void scale(Complex* out, const Complex* in, Complex s, std::size_t n) noexcept {
  active().scale(out, in, s, n);
}

void scaleAccumulate(Complex* out, const Complex* in, Complex s,
                     std::size_t n) noexcept {
  active().scaleAccumulate(out, in, s, n);
}

void accumulate(Complex* out, const Complex* in, std::size_t n) noexcept {
  active().accumulate(out, in, n);
}

void mac2(Complex* out, const Complex* x, Complex a, const Complex* y,
          Complex b, std::size_t n) noexcept {
  active().mac2(out, x, a, y, b, n);
}

void butterfly(Complex* a, Complex* b, const Complex* u,
               std::size_t n) noexcept {
  active().butterfly(a, b, u, n);
}

void butterflyAdjacent(Complex* s, const Complex* u,
                       std::size_t nPairs) noexcept {
  active().butterflyAdjacent(s, u, nPairs);
}

void scaleStrided(Complex* out, const Complex* in, Complex s,
                  std::size_t count, std::size_t len,
                  std::size_t stride) noexcept {
  active().scaleStrided(out, in, s, count, len, stride);
}

void macStrided(Complex* out, const Complex* in, Complex s, std::size_t count,
                std::size_t len, std::size_t stride) noexcept {
  active().macStrided(out, in, s, count, len, stride);
}

void mac2Strided(Complex* out, const Complex* x, Complex a, const Complex* y,
                 Complex b, std::size_t count, std::size_t len,
                 std::size_t stride) noexcept {
  active().mac2Strided(out, x, a, y, b, count, len, stride);
}

fp normSquared(const Complex* v, std::size_t n) noexcept {
  return active().normSquared(v, n);
}

void mulPointwise(Complex* out, const Complex* a, const Complex* b,
                  std::size_t n) noexcept {
  active().mulPointwise(out, a, b, n);
}

void denseColumns(Complex* const* out, const Complex* const* in,
                  const Complex* u, unsigned m, std::size_t n) noexcept {
  active().denseColumns(out, in, u, m, n);
}

void zeroFill(Complex* out, std::size_t n) noexcept {
  std::memset(static_cast<void*>(out), 0, n * sizeof(Complex));
}

}  // namespace fdd::simd
