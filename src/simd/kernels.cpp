// Runtime kernel dispatch. The active tier is resolved once, lazily, from
// (a) whether the AVX2 translation unit was compiled with vector support,
// (b) the FLATDD_FORCE_SCALAR environment variable, and (c) cpuid
// (avx2 + fma). setDispatchTier() lets benchmarks and tests flip tables
// mid-process to time both paths in one binary.

#include "simd/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/kernel_table.hpp"

namespace fdd::simd {
namespace {

bool forceScalarEnv() noexcept {
  const char* v = std::getenv("FLATDD_FORCE_SCALAR");
  if (v == nullptr || v[0] == '\0') {
    return false;
  }
  return !(v[0] == '0' && v[1] == '\0');
}

bool cpuHasAvx2Fma() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const detail::KernelTable* resolveDefault() noexcept {
  if (!detail::avx2Compiled() || forceScalarEnv() || !cpuHasAvx2Fma()) {
    return &detail::scalarTable();
  }
  return &detail::avx2Table();
}

std::atomic<const detail::KernelTable*> gActive{nullptr};

const detail::KernelTable& active() noexcept {
  const detail::KernelTable* t = gActive.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = resolveDefault();
    gActive.store(t, std::memory_order_release);
  }
  return *t;
}

}  // namespace

const char* toString(DispatchTier tier) noexcept {
  return tier == DispatchTier::Avx2 ? "avx2" : "scalar";
}

DispatchTier activeTier() noexcept {
  return &active() == &detail::scalarTable() ? DispatchTier::Scalar
                                             : DispatchTier::Avx2;
}

bool tierAvailable(DispatchTier tier) noexcept {
  if (tier == DispatchTier::Scalar) {
    return true;
  }
  return detail::avx2Compiled() && cpuHasAvx2Fma();
}

bool setDispatchTier(DispatchTier tier) noexcept {
  if (!tierAvailable(tier)) {
    return false;
  }
  gActive.store(tier == DispatchTier::Avx2 ? &detail::avx2Table()
                                           : &detail::scalarTable(),
                std::memory_order_release);
  return true;
}

unsigned lanes() noexcept { return active().lanes; }

bool avx2Enabled() noexcept { return activeTier() == DispatchTier::Avx2; }

void scale(Complex* out, const Complex* in, Complex s, std::size_t n) noexcept {
  active().scale(out, in, s, n);
}

void scaleAccumulate(Complex* out, const Complex* in, Complex s,
                     std::size_t n) noexcept {
  active().scaleAccumulate(out, in, s, n);
}

void accumulate(Complex* out, const Complex* in, std::size_t n) noexcept {
  active().accumulate(out, in, n);
}

void mac2(Complex* out, const Complex* x, Complex a, const Complex* y,
          Complex b, std::size_t n) noexcept {
  active().mac2(out, x, a, y, b, n);
}

void butterfly(Complex* a, Complex* b, const Complex* u,
               std::size_t n) noexcept {
  active().butterfly(a, b, u, n);
}

void butterflyAdjacent(Complex* s, const Complex* u,
                       std::size_t nPairs) noexcept {
  active().butterflyAdjacent(s, u, nPairs);
}

void scaleStrided(Complex* out, const Complex* in, Complex s,
                  std::size_t count, std::size_t len,
                  std::size_t stride) noexcept {
  active().scaleStrided(out, in, s, count, len, stride);
}

void macStrided(Complex* out, const Complex* in, Complex s, std::size_t count,
                std::size_t len, std::size_t stride) noexcept {
  active().macStrided(out, in, s, count, len, stride);
}

void mac2Strided(Complex* out, const Complex* x, Complex a, const Complex* y,
                 Complex b, std::size_t count, std::size_t len,
                 std::size_t stride) noexcept {
  active().mac2Strided(out, x, a, y, b, count, len, stride);
}

fp normSquared(const Complex* v, std::size_t n) noexcept {
  return active().normSquared(v, n);
}

void zeroFill(Complex* out, std::size_t n) noexcept {
  std::memset(static_cast<void*>(out), 0, n * sizeof(Complex));
}

}  // namespace fdd::simd
