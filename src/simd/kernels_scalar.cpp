// Scalar reference tier: straight std::complex loops. This is both the
// portable fallback and the baseline the randomized equivalence tests and
// bench/kernels compare the vector tier against.

#include "simd/kernel_table.hpp"

namespace fdd::simd::detail {
namespace {

void scaleK(Complex* out, const Complex* in, Complex s,
            std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = s * in[i];
  }
}

void scaleAccumulateK(Complex* out, const Complex* in, Complex s,
                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += s * in[i];
  }
}

void accumulateK(Complex* out, const Complex* in, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += in[i];
  }
}

void mac2K(Complex* out, const Complex* x, Complex a, const Complex* y,
           Complex b, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += a * x[i] + b * y[i];
  }
}

void butterflyK(Complex* a, Complex* b, const Complex* u,
                std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const Complex x = a[i];
    const Complex y = b[i];
    a[i] = u[0] * x + u[1] * y;
    b[i] = u[2] * x + u[3] * y;
  }
}

void butterflyAdjacentK(Complex* s, const Complex* u,
                        std::size_t nPairs) noexcept {
  for (std::size_t i = 0; i < nPairs; ++i) {
    const Complex x = s[2 * i];
    const Complex y = s[2 * i + 1];
    s[2 * i] = u[0] * x + u[1] * y;
    s[2 * i + 1] = u[2] * x + u[3] * y;
  }
}

void scaleStridedK(Complex* out, const Complex* in, Complex s,
                   std::size_t count, std::size_t len,
                   std::size_t stride) noexcept {
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t base = k * stride;
    for (std::size_t j = 0; j < len; ++j) {
      out[base + j] = s * in[base + j];
    }
  }
}

void macStridedK(Complex* out, const Complex* in, Complex s, std::size_t count,
                 std::size_t len, std::size_t stride) noexcept {
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t base = k * stride;
    for (std::size_t j = 0; j < len; ++j) {
      out[base + j] += s * in[base + j];
    }
  }
}

void mac2StridedK(Complex* out, const Complex* x, Complex a, const Complex* y,
                  Complex b, std::size_t count, std::size_t len,
                  std::size_t stride) noexcept {
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t base = k * stride;
    for (std::size_t j = 0; j < len; ++j) {
      out[base + j] += a * x[base + j] + b * y[base + j];
    }
  }
}

fp normSquaredK(const Complex* v, std::size_t n) noexcept {
  fp sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += norm2(v[i]);
  }
  return sum;
}

void mulPointwiseK(Complex* out, const Complex* a, const Complex* b,
                   std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

void denseColumnsK(Complex* const* out, const Complex* const* in,
                   const Complex* u, unsigned m, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    Complex x[8];
    for (unsigned l = 0; l < m; ++l) {
      x[l] = in[l][i];
    }
    for (unsigned j = 0; j < m; ++j) {
      Complex acc{};
      for (unsigned l = 0; l < m; ++l) {
        acc += u[j * m + l] * x[l];
      }
      out[j][i] = acc;
    }
  }
}

}  // namespace

const KernelTable& scalarTable() noexcept {
  static const KernelTable table{
      /*lanes=*/1,          &scaleK,      &scaleAccumulateK,
      &accumulateK,         &mac2K,       &butterflyK,
      &butterflyAdjacentK,  &scaleStridedK, &macStridedK,
      &mac2StridedK,        &normSquaredK,  &mulPointwiseK,
      &denseColumnsK,
  };
  return table;
}

}  // namespace fdd::simd::detail
