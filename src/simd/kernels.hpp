#pragma once
// SIMD kernels over contiguous and bit-strided complex arrays. These
// implement the paper's "SIMD-enabled scalar multiplication" (used by both
// the parallel DD-to-array conversion, Fig. 4b, and the DMAV cache, Alg. 2
// line 7), the buffer summation of Alg. 2 lines 11-13, and the fused/strided
// shapes the DmavPlan replay and ArraySimulator hot loops emit.
//
// Dispatch is resolved at runtime: the widest tier the build AND the
// executing CPU support wins (avx512 > avx2 > scalar). FLATDD_FORCE_SCALAR
// pins the scalar table; FLATDD_FORCE_TIER=<scalar|avx2|avx512> pins any
// tier. Both are validated — an unknown value or a tier this build/CPU
// cannot run warns once on stderr and falls back to the best available
// tier instead of silently changing meaning. Benchmarks and tests may
// switch tiers mid-process with setDispatchTier().

#include <cstddef>
#include <optional>

#include "common/types.hpp"

namespace fdd::simd {

enum class DispatchTier { Scalar, Avx2, Avx512 };

/// Human-readable tier name: "scalar", "avx2" or "avx512".
[[nodiscard]] const char* toString(DispatchTier tier) noexcept;

/// Inverse of toString (case-sensitive); nullopt for unknown names. This is
/// the FLATDD_FORCE_TIER parser, exposed so tests can cover the accepted
/// vocabulary without spawning processes.
[[nodiscard]] std::optional<DispatchTier> parseTierName(
    const char* name) noexcept;

/// The tier every kernel below currently dispatches to.
[[nodiscard]] DispatchTier activeTier() noexcept;

/// True when `tier` can be selected on this build + CPU.
[[nodiscard]] bool tierAvailable(DispatchTier tier) noexcept;

/// The widest tier this build + CPU can run (what dispatch resolves to when
/// no force override is set).
[[nodiscard]] DispatchTier bestAvailableTier() noexcept;

/// Force the active tier (for benchmarking / testing all paths in one
/// process). Returns false and leaves the tier unchanged when `tier` is not
/// available. Not thread-safe against concurrently running kernels; switch
/// only from the main thread between simulations.
bool setDispatchTier(DispatchTier tier) noexcept;

/// Number of double-precision MACs one vector instruction retires; this is
/// the `d` of the paper's cost model (Eq. 6). 8 on the AVX-512 tier, 4 on
/// AVX2, 1 on scalar. Runtime-resolved, so cost-model callers always see
/// the width that will actually execute.
[[nodiscard]] unsigned lanes() noexcept;

/// Lanes of an arbitrary tier (8 / 4 / 1), independent of what is active.
[[nodiscard]] unsigned lanesOf(DispatchTier tier) noexcept;

/// True when the active tier is exactly the AVX2 path (not AVX-512).
[[nodiscard]] bool avx2Enabled() noexcept;

/// True when the active tier is any vector path (lanes > 1).
[[nodiscard]] bool vectorEnabled() noexcept;

/// out[i] = s * in[i] for i in [0, n). out and in may not overlap, except
/// out == in (in-place scaling) which is allowed.
void scale(Complex* out, const Complex* in, Complex s, std::size_t n) noexcept;

/// out[i] += s * in[i] for i in [0, n). No overlap.
void scaleAccumulate(Complex* out, const Complex* in, Complex s,
                     std::size_t n) noexcept;

/// out[i] += in[i] for i in [0, n). No overlap.
void accumulate(Complex* out, const Complex* in, std::size_t n) noexcept;

/// Two-term fused MAC: out[i] += a * x[i] + b * y[i] for i in [0, n).
/// out may not overlap x or y; x and y may alias each other.
void mac2(Complex* out, const Complex* x, Complex a, const Complex* y,
          Complex b, std::size_t n) noexcept;

/// In-place 2x2 butterfly over two parallel spans: for i in [0, n),
///   (a[i], b[i]) = (u[0]*a[i] + u[1]*b[i], u[2]*a[i] + u[3]*b[i]).
/// u is the row-major 2x2 gate matrix. a and b may not overlap.
void butterfly(Complex* a, Complex* b, const Complex* u,
               std::size_t n) noexcept;

/// In-place 2x2 butterfly over adjacent pairs (target qubit 0): for i in
/// [0, nPairs), (s[2i], s[2i+1]) = U * (s[2i], s[2i+1]).
void butterflyAdjacent(Complex* s, const Complex* u,
                       std::size_t nPairs) noexcept;

/// Strided comb scale: out[k*stride + j] = s * in[k*stride + j] for
/// k in [0, count), j in [0, len). Requires len <= stride. Stores stay
/// strictly within the comb (no neighbouring element is touched), so combs
/// may butt against spans owned by other threads.
void scaleStrided(Complex* out, const Complex* in, Complex s,
                  std::size_t count, std::size_t len,
                  std::size_t stride) noexcept;

/// Strided comb MAC: out[k*stride + j] += s * in[k*stride + j].
void macStrided(Complex* out, const Complex* in, Complex s, std::size_t count,
                std::size_t len, std::size_t stride) noexcept;

/// Strided comb two-term MAC:
/// out[k*stride+j] += a * x[k*stride+j] + b * y[k*stride+j].
void mac2Strided(Complex* out, const Complex* x, Complex a, const Complex* y,
                 Complex b, std::size_t count, std::size_t len,
                 std::size_t stride) noexcept;

/// Sum of |v[i]|^2 — used for normalization checks.
[[nodiscard]] fp normSquared(const Complex* v, std::size_t n) noexcept;

/// Full complex pointwise product: out[i] = a[i] * b[i]. out may alias a or
/// b (element i only reads index i). The DiagRun op applies a fused
/// diagonal-gate-run's phase table with this in one sweep.
void mulPointwise(Complex* out, const Complex* a, const Complex* b,
                  std::size_t n) noexcept;

/// Dense m x m matrix (row-major u, m in {4, 8}) across m parallel spans:
/// out[j][i] = sum_l u[j*m+l] * in[l][i]. Output spans must not overlap the
/// input spans — the DenseBlock tile writes W from V.
void denseColumns(Complex* const* out, const Complex* const* in,
                  const Complex* u, unsigned m, std::size_t n) noexcept;

/// out[i] = 0 for i in [0, n).
void zeroFill(Complex* out, std::size_t n) noexcept;

}  // namespace fdd::simd
