#pragma once
// SIMD kernels over contiguous complex arrays. These implement the paper's
// "SIMD-enabled scalar multiplication" (used by both the parallel DD-to-array
// conversion, Fig. 4b, and the DMAV cache, Alg. 2 line 7) and the buffer
// summation of Alg. 2 lines 11-13. Compiled with AVX2+FMA when available;
// a scalar fallback keeps the library portable.

#include <cstddef>

#include "common/types.hpp"

namespace fdd::simd {

/// Number of double-precision MACs one vector instruction retires; this is
/// the `d` of the paper's cost model (Eq. 6). 4 with AVX2, 1 in fallback.
[[nodiscard]] unsigned lanes() noexcept;

/// True when the AVX2 path is compiled in.
[[nodiscard]] bool avx2Enabled() noexcept;

/// out[i] = s * in[i] for i in [0, n). out and in may not overlap, except
/// out == in (in-place scaling) which is allowed.
void scale(Complex* out, const Complex* in, Complex s, std::size_t n) noexcept;

/// out[i] += s * in[i] for i in [0, n). No overlap.
void scaleAccumulate(Complex* out, const Complex* in, Complex s,
                     std::size_t n) noexcept;

/// out[i] += in[i] for i in [0, n). No overlap.
void accumulate(Complex* out, const Complex* in, std::size_t n) noexcept;

/// Sum of |v[i]|^2 — used for normalization checks.
[[nodiscard]] fp normSquared(const Complex* v, std::size_t n) noexcept;

/// out[i] = 0 for i in [0, n).
void zeroFill(Complex* out, std::size_t n) noexcept;

}  // namespace fdd::simd
