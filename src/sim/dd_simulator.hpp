#pragma once
// DD-based simulator — the DDSIM [99] baseline: one DD matrix-vector
// multiplication per gate. Sequential by default (DDSIM does not support
// multi-threading; Table 1 runs it on one thread for the same reason), but
// setThreads(t > 1) fans the per-gate mat-vec recursion out over the global
// thread pool once the state DD is large enough to amortize fork/join —
// that is FlatDD's parallel DD phase (ISSUE 7), not part of the baseline.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/prng.hpp"
#include "dd/package.hpp"
#include "qc/circuit.hpp"

namespace fdd::sim {

class DDSimulator {
 public:
  explicit DDSimulator(Qubit nQubits, fp tolerance = 1e-10);

  [[nodiscard]] Qubit numQubits() const noexcept { return pkg_->numQubits(); }

  /// Workers for the parallel DD mat-vec recursion (1 = sequential DDSIM
  /// baseline). Forwards to Package::setDdThreads; takes effect at the next
  /// applyOperation.
  void setThreads(unsigned threads) noexcept { pkg_->setDdThreads(threads); }
  [[nodiscard]] unsigned threads() const noexcept { return pkg_->ddThreads(); }

  /// Resets to |0...0>.
  void reset();
  /// Loads an arbitrary state (must have size 2^n) by building its DD.
  void setState(std::span<const Complex> amplitudes);

  void applyOperation(const qc::Operation& op);
  void simulate(const qc::Circuit& circuit);

  /// Drops the current state DD back to |0...0> and reclaims its nodes.
  /// FlatDD calls this right after converting the state to a flat array so
  /// the (potentially huge) irregular DD stops occupying memory.
  void releaseState();

  /// Swaps the root for an equivalent state produced outside the simulator
  /// (e.g. dd::reorderGreedy): references the new edge, releases the old
  /// one, and lets the package collect the difference. Does not count as a
  /// gate.
  void replaceState(const dd::vEdge& next);

  [[nodiscard]] const dd::vEdge& state() const noexcept { return root_; }
  [[nodiscard]] dd::Package& package() noexcept { return *pkg_; }
  [[nodiscard]] const dd::Package& package() const noexcept { return *pkg_; }

  /// Current DD size of the state vector — the s_i the EWMA trigger watches.
  [[nodiscard]] std::size_t stateNodeCount() const {
    return pkg_->nodeCount(root_);
  }

  [[nodiscard]] Complex amplitude(Index i) const {
    return pkg_->getAmplitude(root_, i);
  }
  /// Dense readout via the *sequential* DD-to-array conversion.
  [[nodiscard]] AlignedVector<Complex> stateVector() const {
    return pkg_->toArray(root_);
  }

  /// Samples `shots` outcomes by weak-simulation DD descent (no conversion
  /// to an array) — same signature as FlatDDSimulator::sample.
  [[nodiscard]] std::vector<Index> sample(std::size_t shots,
                                          Xoshiro256& rng) const {
    return pkg_->sample(root_, shots, rng);
  }

  /// Bytes held by the DD package (arenas + tables), for memory columns.
  [[nodiscard]] std::size_t memoryBytes() const {
    return pkg_->stats().memoryBytes;
  }

  [[nodiscard]] std::size_t gatesApplied() const noexcept { return gates_; }

 private:
  std::unique_ptr<dd::Package> pkg_;
  dd::vEdge root_;
  std::size_t gates_ = 0;
};

}  // namespace fdd::sim
