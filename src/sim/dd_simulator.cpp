#include "sim/dd_simulator.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace fdd::sim {

DDSimulator::DDSimulator(Qubit nQubits, fp tolerance)
    : pkg_{std::make_unique<dd::Package>(nQubits, tolerance)} {
  reset();
}

void DDSimulator::reset() {
  pkg_->decRef(root_);  // no-op on the default terminal edge (saturated ref)
  root_ = pkg_->makeZeroState();
  pkg_->incRef(root_);
  gates_ = 0;
  pkg_->garbageCollect();
}

void DDSimulator::setState(std::span<const Complex> amplitudes) {
  if (amplitudes.size() != (Index{1} << numQubits())) {
    throw std::invalid_argument("setState: wrong amplitude count");
  }
  const dd::vEdge next = pkg_->fromArray(amplitudes);
  pkg_->incRef(next);
  pkg_->decRef(root_);
  root_ = next;
  pkg_->garbageCollect();
}

void DDSimulator::applyOperation(const qc::Operation& op) {
  FDD_TIMED_SCOPE("dd.apply");
  const dd::mEdge gate = pkg_->makeGateDD(op);
  const dd::vEdge next = pkg_->multiply(gate, root_);
  pkg_->incRef(next);
  pkg_->decRef(root_);
  root_ = next;
  ++gates_;
  pkg_->garbageCollect();
}

void DDSimulator::replaceState(const dd::vEdge& next) {
  pkg_->incRef(next);
  pkg_->decRef(root_);
  root_ = next;
  pkg_->garbageCollect();
}

void DDSimulator::releaseState() {
  pkg_->decRef(root_);
  root_ = pkg_->makeZeroState();
  pkg_->incRef(root_);
  pkg_->garbageCollect(true);
}

void DDSimulator::simulate(const qc::Circuit& circuit) {
  if (circuit.numQubits() != numQubits()) {
    throw std::invalid_argument("simulate: circuit qubit count mismatch");
  }
  for (const auto& op : circuit) {
    applyOperation(op);
  }
}

}  // namespace fdd::sim
