#include "sim/array_simulator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/bits.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/kernels.hpp"

namespace fdd::sim {

ArraySimulator::ArraySimulator(Qubit nQubits, Options options)
    : nQubits_{nQubits}, options_{options} {
  if (nQubits < 1 || nQubits > 34) {
    throw std::invalid_argument("ArraySimulator: qubit count out of range");
  }
  state_.resize(Index{1} << nQubits_);
  reset();
}

void ArraySimulator::reset() {
  simd::zeroFill(state_.data(), state_.size());
  state_[0] = Complex{1.0};
}

void ArraySimulator::setState(std::span<const Complex> amplitudes) {
  if (amplitudes.size() != state_.size()) {
    throw std::invalid_argument("setState: wrong amplitude count");
  }
  std::copy(amplitudes.begin(), amplitudes.end(), state_.begin());
}

void ArraySimulator::applyOperation(const qc::Operation& op) {
  Index controlMask = 0;
  for (const Qubit c : op.controls) {
    controlMask |= Index{1} << c;
  }
  applyControlledSingleQubit(op.matrix(), op.target, controlMask);
}

void ArraySimulator::applyControlledSingleQubit(const qc::Matrix2& u,
                                                Qubit target,
                                                Index controlMask) {
  const Index dim = Index{1} << nQubits_;
  const Index pairs = dim >> 1;
  const Index targetBit = Index{1} << target;
  const Complex u00 = u[0];
  const Complex u01 = u[1];
  const Complex u10 = u[2];
  const Complex u11 = u[3];
  Complex* s = state_.data();
  const bool threaded =
      options_.threads > 1 && dim >= options_.parallelThresholdDim;

  if (options_.indexing == ArrayIndexing::MultiIndex) {
    // Quantum++-style faithful baseline: rebuild the amplitude index one
    // qubit digit at a time (O(n) work per pair), skipping the target
    // position. Kept scalar on purpose — the paper's DMAV-vs-Quantum++
    // speedup is measured against exactly this indexing scheme.
    const Qubit nq = nQubits_;
    auto kernel = [&](std::size_t lo, std::size_t hi) {
      for (Index g = lo; g < hi; ++g) {
        Index i0 = 0;
        Index rem = g;
        for (Qubit b = 0; b < nq; ++b) {
          if (b == target) {
            continue;
          }
          i0 |= (rem & 1u) << b;
          rem >>= 1;
        }
        if ((i0 & controlMask) != controlMask) {
          continue;  // controls not all |1> -> amplitudes untouched (Eq. 3)
        }
        const Index i1 = i0 | targetBit;
        const Complex a0 = s[i0];
        const Complex a1 = s[i1];
        s[i0] = u00 * a0 + u01 * a1;
        s[i1] = u10 * a0 + u11 * a1;
      }
    };
    if (threaded) {
      par::globalPool().parallelFor(options_.threads, 0, pairs, kernel);
    } else {
      kernel(0, pairs);
    }
    return;
  }

  // Optimized mode: control-run decomposition. The valid pair bases (target
  // bit 0, all control bits 1) form contiguous runs whose length is the
  // lowest constrained bit; enumerating run bases with a masked counter
  // turns the per-element insertBit/mask loop into span kernels that execute
  // at vector width for low and high targets alike.
  const bool diagonal = u01 == Complex{} && u10 == Complex{};

  if (target == 0) {
    // Adjacent pairs: work in pair space g (amplitudes 2g, 2g+1). Controls
    // all sit above the target, so in pair space they are controlMask >> 1.
    const Index cg = controlMask >> 1;
    const Index runPairs = cg != 0 ? (cg & (~cg + 1)) : pairs;
    const Index freeMask = (pairs - 1) & ~(cg | (runPairs - 1));
    const Index carry = cg | (runPairs - 1);
    const Index validPairs = pairs >> std::popcount(controlMask);
    auto kernel = [&](std::size_t lo, std::size_t hi) {
      Index g = scatterBits(lo / runPairs, freeMask) | cg;
      Index off = lo % runPairs;
      for (std::size_t p = lo; p < hi;) {
        const Index chunk = std::min<Index>(runPairs - off, hi - p);
        Complex* base = s + 2 * (g + off);
        if (diagonal) {
          simd::scaleStrided(base, base, u00, chunk, 1, 2);
          simd::scaleStrided(base + 1, base + 1, u11, chunk, 1, 2);
        } else {
          simd::butterflyAdjacent(base, u.data(), chunk);
        }
        p += chunk;
        off = 0;
        g = (((g | carry) + 1) & ~carry) | cg;
      }
    };
    if (threaded) {
      par::globalPool().parallelFor(options_.threads, 0, validPairs, kernel);
    } else {
      kernel(0, validPairs);
    }
    return;
  }

  // target > 0: runs live in amplitude space. Run length is the lowest
  // control bit below the target, or 2^target when none exists; each run of
  // bases b pairs with b + targetBit.
  const Index lowC = controlMask & (targetBit - 1);
  const Index run = lowC != 0 ? (lowC & (~lowC + 1)) : targetBit;
  const Index constrained = controlMask | targetBit;
  const Index freeMask = (dim - 1) & ~(constrained | (run - 1));
  const Index carry = constrained | (run - 1);
  const Index validPairs = pairs >> std::popcount(controlMask);
  auto kernel = [&](std::size_t lo, std::size_t hi) {
    Index b = scatterBits(lo / run, freeMask) | controlMask;
    Index off = lo % run;
    for (std::size_t p = lo; p < hi;) {
      const Index chunk = std::min<Index>(run - off, hi - p);
      Complex* b0 = s + b + off;
      Complex* b1 = b0 + targetBit;
      if (diagonal) {
        simd::scale(b0, b0, u00, chunk);
        simd::scale(b1, b1, u11, chunk);
      } else {
        simd::butterfly(b0, b1, u.data(), chunk);
      }
      p += chunk;
      off = 0;
      b = (((b | carry) + 1) & ~carry) | controlMask;
    }
  };
  if (threaded) {
    par::globalPool().parallelFor(options_.threads, 0, validPairs, kernel);
  } else {
    kernel(0, validPairs);
  }
}

void ArraySimulator::simulate(const qc::Circuit& circuit) {
  if (circuit.numQubits() != nQubits_) {
    throw std::invalid_argument("simulate: circuit qubit count mismatch");
  }
  for (const auto& op : circuit) {
    applyOperation(op);
  }
}

fp ArraySimulator::norm() const {
  return simd::normSquared(state_.data(), state_.size());
}

Index ArraySimulator::sample(Xoshiro256& rng) const {
  return sample(rng, norm());
}

Index ArraySimulator::sample(Xoshiro256& rng, fp totalNorm) const {
  // `totalNorm` lets callers drawing many shots compute the full-state norm
  // once instead of rescanning 2^n amplitudes per shot. Clamping keeps the
  // draw inside the accumulated mass even for unnormalized states (or a
  // slightly stale norm), so the scan cannot fall off the end spuriously.
  const fp r = std::clamp(rng.uniform() * totalNorm, fp{0}, totalNorm);
  fp acc = 0;
  for (Index i = 0; i < state_.size(); ++i) {
    acc += norm2(state_[i]);
    if (acc >= r) {
      return i;
    }
  }
  return state_.size() - 1;
}

}  // namespace fdd::sim
