#include "sim/array_simulator.hpp"

#include <stdexcept>

#include "common/bits.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/kernels.hpp"

namespace fdd::sim {

ArraySimulator::ArraySimulator(Qubit nQubits, Options options)
    : nQubits_{nQubits}, options_{options} {
  if (nQubits < 1 || nQubits > 34) {
    throw std::invalid_argument("ArraySimulator: qubit count out of range");
  }
  state_.resize(Index{1} << nQubits_);
  reset();
}

void ArraySimulator::reset() {
  simd::zeroFill(state_.data(), state_.size());
  state_[0] = Complex{1.0};
}

void ArraySimulator::setState(std::span<const Complex> amplitudes) {
  if (amplitudes.size() != state_.size()) {
    throw std::invalid_argument("setState: wrong amplitude count");
  }
  std::copy(amplitudes.begin(), amplitudes.end(), state_.begin());
}

void ArraySimulator::applyOperation(const qc::Operation& op) {
  Index controlMask = 0;
  for (const Qubit c : op.controls) {
    controlMask |= Index{1} << c;
  }
  applyControlledSingleQubit(op.matrix(), op.target, controlMask);
}

void ArraySimulator::applyControlledSingleQubit(const qc::Matrix2& u,
                                                Qubit target,
                                                Index controlMask) {
  const Index pairs = Index{1} << (nQubits_ - 1);
  const Index targetBit = Index{1} << target;
  const Complex u00 = u[0];
  const Complex u01 = u[1];
  const Complex u10 = u[2];
  const Complex u11 = u[3];
  Complex* s = state_.data();

  const Qubit nq = nQubits_;
  const bool multiIndex = options_.indexing == ArrayIndexing::MultiIndex;

  // Specialized kernels for the two sparse 2x2 shapes that dominate real
  // circuits. Only taken in the optimized (bit-tricks) mode — the faithful
  // Quantum++ baseline keeps its general O(n)-indexing path for every gate.
  const bool diagonal = !multiIndex && u01 == Complex{} && u10 == Complex{};
  const bool antiDiagonal =
      !multiIndex && u00 == Complex{} && u11 == Complex{};

  auto diagonalKernel = [&](std::size_t lo, std::size_t hi) {
    for (Index g = lo; g < hi; ++g) {
      const Index i0 = insertBit(g, target);
      if ((i0 & controlMask) != controlMask) {
        continue;
      }
      const Index i1 = i0 | targetBit;
      s[i0] *= u00;
      s[i1] *= u11;
    }
  };
  auto antiDiagonalKernel = [&](std::size_t lo, std::size_t hi) {
    for (Index g = lo; g < hi; ++g) {
      const Index i0 = insertBit(g, target);
      if ((i0 & controlMask) != controlMask) {
        continue;
      }
      const Index i1 = i0 | targetBit;
      const Complex a0 = s[i0];
      s[i0] = u01 * s[i1];
      s[i1] = u10 * a0;
    }
  };
  auto kernel = [&](std::size_t lo, std::size_t hi) {
    if (diagonal) {
      diagonalKernel(lo, hi);
      return;
    }
    if (antiDiagonal) {
      antiDiagonalKernel(lo, hi);
      return;
    }
    for (Index g = lo; g < hi; ++g) {
      Index i0;
      if (multiIndex) {
        // Quantum++-style: rebuild the amplitude index one qubit digit at a
        // time (O(n) work per pair), skipping the target position.
        i0 = 0;
        Index rem = g;
        for (Qubit b = 0; b < nq; ++b) {
          if (b == target) {
            continue;
          }
          i0 |= (rem & 1u) << b;
          rem >>= 1;
        }
      } else {
        i0 = insertBit(g, target);
      }
      if ((i0 & controlMask) != controlMask) {
        continue;  // controls not all |1> -> amplitudes untouched (Eq. 3)
      }
      const Index i1 = i0 | targetBit;
      const Complex a0 = s[i0];
      const Complex a1 = s[i1];
      s[i0] = u00 * a0 + u01 * a1;
      s[i1] = u10 * a0 + u11 * a1;
    }
  };

  const Index dim = Index{1} << nQubits_;
  if (options_.threads > 1 && dim >= options_.parallelThresholdDim) {
    par::globalPool().parallelFor(options_.threads, 0, pairs, kernel);
  } else {
    kernel(0, pairs);
  }
}

void ArraySimulator::simulate(const qc::Circuit& circuit) {
  if (circuit.numQubits() != nQubits_) {
    throw std::invalid_argument("simulate: circuit qubit count mismatch");
  }
  for (const auto& op : circuit) {
    applyOperation(op);
  }
}

fp ArraySimulator::norm() const {
  return simd::normSquared(state_.data(), state_.size());
}

Index ArraySimulator::sample(Xoshiro256& rng) const {
  const fp r = rng.uniform() * norm();
  fp acc = 0;
  for (Index i = 0; i < state_.size(); ++i) {
    acc += norm2(state_[i]);
    if (acc >= r) {
      return i;
    }
  }
  return state_.size() - 1;
}

}  // namespace fdd::sim
