#pragma once
// Array-based state-vector simulator — the Quantum++ [19] baseline. Gate
// matrices never materialize beyond 2x2: amplitudes are updated in place in
// pairs (Eq. 2 of the paper), with controlled gates masking the pair index
// (Eq. 3). Multi-threaded over amplitude pairs via the shared thread pool.

#include <span>

#include "common/aligned.hpp"
#include "common/prng.hpp"
#include "common/types.hpp"
#include "qc/circuit.hpp"

namespace fdd::sim {

/// How amplitude-pair indices are computed.
///  * BitTricks — O(1) per pair via bit insertion (an optimized kernel).
///  * MultiIndex — O(n) per pair, rebuilding the index digit by digit the
///    way Quantum++ [19] manipulates Eigen multi-indices. This is the
///    faithful stand-in for the paper's Quantum++ baseline: the paper's
///    DMAV-vs-Quantum++ speedup specifically comes from replacing this O(n)
///    indexing with the DD's O(1) amortized recursion (Section 3.2.1).
enum class ArrayIndexing : std::uint8_t { BitTricks, MultiIndex };

struct ArraySimOptions {
  unsigned threads = 1;
  /// Below this state-vector size the per-gate fork/join overhead exceeds
  /// the kernel cost, so gates run single-threaded (see common/types.hpp).
  Index parallelThresholdDim = kParallelThresholdDim;
  ArrayIndexing indexing = ArrayIndexing::BitTricks;
};

class ArraySimulator {
 public:
  using Options = ArraySimOptions;

  explicit ArraySimulator(Qubit nQubits, Options options = {});

  [[nodiscard]] Qubit numQubits() const noexcept { return nQubits_; }

  /// Resets to |0...0>.
  void reset();
  /// Loads an arbitrary state (must have size 2^n; not normalized for you).
  void setState(std::span<const Complex> amplitudes);

  void applyOperation(const qc::Operation& op);
  void simulate(const qc::Circuit& circuit);

  [[nodiscard]] const AlignedVector<Complex>& state() const noexcept {
    return state_;
  }
  [[nodiscard]] AlignedVector<Complex>& mutableState() noexcept {
    return state_;
  }

  [[nodiscard]] Complex amplitude(Index i) const { return state_[i]; }
  [[nodiscard]] fp norm() const;

  /// Samples one basis state from |amplitude|^2 (strong-simulation readout).
  [[nodiscard]] Index sample(Xoshiro256& rng) const;
  /// Same, with the state norm precomputed by the caller — multi-shot
  /// readout computes the norm once instead of rescanning 2^n amplitudes
  /// per shot. `r` is clamped to the available mass for unnormalized states.
  [[nodiscard]] Index sample(Xoshiro256& rng, fp totalNorm) const;

  /// Bytes held by the state vector (for the memory columns of Table 1).
  [[nodiscard]] std::size_t memoryBytes() const noexcept {
    return state_.size() * sizeof(Complex);
  }

 private:
  void applyControlledSingleQubit(const qc::Matrix2& u, Qubit target,
                                  Index controlMask);

  Qubit nQubits_;
  Options options_;
  AlignedVector<Complex> state_;
};

}  // namespace fdd::sim
