#include "sim/observables.hpp"

#include <bit>
#include <stdexcept>

#include "common/bits.hpp"

namespace fdd::sim {

PauliString PauliString::parse(const std::string& text) {
  PauliString p;
  const auto n = static_cast<Qubit>(text.size());
  for (Qubit i = 0; i < n; ++i) {
    // Leftmost character = highest qubit.
    p.set(n - 1 - i, text[static_cast<std::size_t>(i)]);
  }
  return p;
}

PauliString& PauliString::set(Qubit qubit, char axis) {
  if (qubit < 0 || qubit > 62) {
    throw std::out_of_range("PauliString: qubit out of range");
  }
  const Index bit = Index{1} << qubit;
  x_ &= ~bit;
  z_ &= ~bit;
  switch (axis) {
    case 'I':
    case 'i':
      break;
    case 'X':
    case 'x':
      x_ |= bit;
      break;
    case 'Y':
    case 'y':
      x_ |= bit;
      z_ |= bit;
      break;
    case 'Z':
    case 'z':
      z_ |= bit;
      break;
    default:
      throw std::invalid_argument("PauliString: axis must be one of IXYZ");
  }
  return *this;
}

unsigned PauliString::weight() const noexcept {
  return static_cast<unsigned>(std::popcount(x_ | z_));
}

std::string PauliString::toString(Qubit nQubits) const {
  std::string out;
  for (Qubit q = nQubits - 1; q >= 0; --q) {
    const bool x = testBit(x_, q);
    const bool z = testBit(z_, q);
    out += x && z ? 'Y' : x ? 'X' : z ? 'Z' : 'I';
  }
  return out;
}

Complex expectation(std::span<const Complex> state, const PauliString& p) {
  if (!isPowerOfTwo(state.size())) {
    throw std::invalid_argument("expectation: state size must be 2^n");
  }
  // P|i> = phase(i) |i ^ xMask> with
  //   phase(i) = (-1)^{popcount(i & zMask)} * (+i)^{#Y on |1>...}
  // Concretely, for each Y qubit: Y|0> = i|1>, Y|1> = -i|0>;
  // for each Z qubit: Z|b> = (-1)^b |b>; X flips with no phase.
  const Index xm = p.xMask();
  const Index zm = p.zMask();
  const Index ym = xm & zm;
  const unsigned yCount = static_cast<unsigned>(std::popcount(ym));
  Complex sum{};
  for (Index i = 0; i < state.size(); ++i) {
    const Index j = i ^ xm;
    // Phase from Z-type action on the *input* bits (Y contributes its Z
    // part and an extra i per Y acting on |0>, -i on |1> -> net factor
    // i^{yCount} * (-1)^{popcount(i & zm)} with zm including Y's z-bit:
    int minusCount = std::popcount(i & zm) & 1;
    Complex phase = minusCount != 0 ? Complex{-1.0} : Complex{1.0};
    // i^yCount cycle
    switch (yCount & 3u) {
      case 1: phase *= Complex{0, 1}; break;
      case 2: phase *= Complex{-1, 0}; break;
      case 3: phase *= Complex{0, -1}; break;
      default: break;
    }
    sum += std::conj(state[j]) * phase * state[i];
  }
  return sum;
}

Complex expectation(dd::Package& pkg, const dd::vEdge& state,
                    const PauliString& p) {
  const Qubit n = pkg.numQubits();
  dd::vEdge transformed = state;
  for (Qubit q = 0; q < n; ++q) {
    const bool x = testBit(p.xMask(), q);
    const bool z = testBit(p.zMask(), q);
    if (!x && !z) {
      continue;
    }
    const qc::GateKind kind = x && z   ? qc::GateKind::Y
                              : x      ? qc::GateKind::X
                                       : qc::GateKind::Z;
    transformed =
        pkg.multiply(pkg.makeGateDD(qc::gateMatrix(kind, {}), q), transformed);
  }
  return pkg.innerProduct(state, transformed);
}

fp Hamiltonian::expectation(std::span<const Complex> state) const {
  fp total = 0;
  for (const auto& [weight, pauli] : terms) {
    total += weight * sim::expectation(state, pauli).real();
  }
  return total;
}

fp Hamiltonian::expectation(dd::Package& pkg, const dd::vEdge& state) const {
  fp total = 0;
  for (const auto& [weight, pauli] : terms) {
    total += weight * sim::expectation(pkg, state, pauli).real();
  }
  return total;
}

Hamiltonian tfim(Qubit n, fp j, fp h) {
  Hamiltonian ham;
  for (Qubit q = 0; q + 1 < n; ++q) {
    PauliString zz;
    zz.set(q, 'Z');
    zz.set(q + 1, 'Z');
    ham.terms.emplace_back(-j, zz);
  }
  for (Qubit q = 0; q < n; ++q) {
    PauliString x;
    x.set(q, 'X');
    ham.terms.emplace_back(-h, x);
  }
  return ham;
}

}  // namespace fdd::sim
