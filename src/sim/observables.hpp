#pragma once
// Pauli-string observables: <psi|P|psi> for P a tensor product of I/X/Y/Z,
// evaluated directly on flat state vectors (one pass, no operator matrix)
// or on DD states (via a gate-DD product). Used by the VQE example and by
// cross-representation consistency tests.

#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/prng.hpp"
#include "common/types.hpp"
#include "dd/package.hpp"

namespace fdd::sim {

/// A Pauli string over n qubits, stored as X/Y/Z bit masks.
/// Qubit k's letter: Y if x&y bits... encoded as xMask/zMask pairs:
///   I: neither, X: x only, Z: z only, Y: both.
class PauliString {
 public:
  PauliString() = default;

  /// Parses "XIZY..." with the leftmost letter on the highest qubit
  /// (mirroring ket notation); length fixes the qubit count.
  [[nodiscard]] static PauliString parse(const std::string& text);

  /// Programmatic construction: axis in {'I','X','Y','Z'} per qubit.
  PauliString& set(Qubit qubit, char axis);

  [[nodiscard]] Index xMask() const noexcept { return x_; }
  [[nodiscard]] Index zMask() const noexcept { return z_; }
  [[nodiscard]] bool isIdentity() const noexcept { return x_ == 0 && z_ == 0; }

  /// The string's weight (number of non-identity letters).
  [[nodiscard]] unsigned weight() const noexcept;

  [[nodiscard]] std::string toString(Qubit nQubits) const;

 private:
  Index x_ = 0;
  Index z_ = 0;
};

/// <state|P|state> on a flat vector; `state` must have power-of-two size.
[[nodiscard]] Complex expectation(std::span<const Complex> state,
                                  const PauliString& p);

/// <state|P|state> on a DD state (builds P's gate DDs once).
[[nodiscard]] Complex expectation(dd::Package& pkg, const dd::vEdge& state,
                                  const PauliString& p);

/// A weighted sum of Pauli strings; real weights (Hermitian observables).
struct Hamiltonian {
  std::vector<std::pair<fp, PauliString>> terms;

  [[nodiscard]] fp expectation(std::span<const Complex> state) const;
  [[nodiscard]] fp expectation(dd::Package& pkg,
                               const dd::vEdge& state) const;
};

/// Transverse-field Ising chain: -J sum Z_i Z_{i+1} - h sum X_i.
[[nodiscard]] Hamiltonian tfim(Qubit n, fp j, fp h);

}  // namespace fdd::sim
