#include "engine/ordering.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <limits>
#include <utility>

namespace fdd::engine {

QubitOrdering QubitOrdering::identity(Qubit n) {
  QubitOrdering ord;
  ord.levelOfQubit.resize(static_cast<std::size_t>(n));
  ord.qubitAtLevel.resize(static_cast<std::size_t>(n));
  for (Qubit q = 0; q < n; ++q) {
    ord.levelOfQubit[static_cast<std::size_t>(q)] = q;
    ord.qubitAtLevel[static_cast<std::size_t>(q)] = q;
  }
  return ord;
}

QubitOrdering QubitOrdering::fromQubitAtLevel(std::vector<Qubit> qubitAtLevel) {
  QubitOrdering ord;
  ord.qubitAtLevel = std::move(qubitAtLevel);
  ord.levelOfQubit.resize(ord.qubitAtLevel.size());
  for (std::size_t level = 0; level < ord.qubitAtLevel.size(); ++level) {
    ord.levelOfQubit[static_cast<std::size_t>(ord.qubitAtLevel[level])] =
        static_cast<Qubit>(level);
  }
  return ord;
}

bool QubitOrdering::isIdentity() const noexcept {
  for (std::size_t q = 0; q < levelOfQubit.size(); ++q) {
    if (levelOfQubit[q] != static_cast<Qubit>(q)) {
      return false;
    }
  }
  return true;
}

Index QubitOrdering::mapIndex(Index logical) const noexcept {
  Index internal = 0;
  for (std::size_t q = 0; q < levelOfQubit.size(); ++q) {
    internal |= ((logical >> q) & 1) << levelOfQubit[q];
  }
  return internal;
}

Index QubitOrdering::unmapIndex(Index internal) const noexcept {
  Index logical = 0;
  for (std::size_t level = 0; level < qubitAtLevel.size(); ++level) {
    logical |= ((internal >> level) & 1) << qubitAtLevel[level];
  }
  return logical;
}

qc::Operation QubitOrdering::mapOperation(const qc::Operation& op) const {
  qc::Operation mapped = op;
  mapped.target = levelOfQubit[static_cast<std::size_t>(op.target)];
  for (Qubit& c : mapped.controls) {
    c = levelOfQubit[static_cast<std::size_t>(c)];
  }
  std::sort(mapped.controls.begin(), mapped.controls.end());
  return mapped;
}

qc::Circuit QubitOrdering::mapCircuit(const qc::Circuit& circuit) const {
  qc::Circuit mapped{circuit.numQubits(), circuit.name()};
  for (const auto& op : circuit) {
    mapped.append(mapOperation(op));
  }
  return mapped;
}

std::string QubitOrdering::toString() const {
  std::string s;
  for (std::size_t level = qubitAtLevel.size(); level-- > 0;) {
    s += 'q';
    s += std::to_string(qubitAtLevel[level]);
    if (level != 0) {
      s += ' ';
    }
  }
  return s;
}

QubitOrdering scoreOrdering(const qc::Circuit& circuit) {
  const auto n = static_cast<std::size_t>(circuit.numQubits());
  if (n < 2) {
    return QubitOrdering::identity(circuit.numQubits());
  }

  // Symmetric interaction weights: a control-target pair is the strongest
  // signal (their subtrees couple directly in the gate DD), control-control
  // pairs half as strong.
  std::vector<double> weight(n * n, 0.0);
  std::vector<std::size_t> firstUse(n, std::numeric_limits<std::size_t>::max());
  const auto touch = [&](Qubit q, std::size_t gate) {
    auto& first = firstUse[static_cast<std::size_t>(q)];
    first = std::min(first, gate);
  };
  std::size_t gateIndex = 0;
  for (const auto& op : circuit) {
    touch(op.target, gateIndex);
    for (const Qubit c : op.controls) {
      touch(c, gateIndex);
      weight[static_cast<std::size_t>(c) * n +
             static_cast<std::size_t>(op.target)] += 1.0;
      weight[static_cast<std::size_t>(op.target) * n +
             static_cast<std::size_t>(c)] += 1.0;
    }
    for (std::size_t i = 0; i < op.controls.size(); ++i) {
      for (std::size_t j = i + 1; j < op.controls.size(); ++j) {
        const auto a = static_cast<std::size_t>(op.controls[i]);
        const auto b = static_cast<std::size_t>(op.controls[j]);
        weight[a * n + b] += 0.5;
        weight[b * n + a] += 0.5;
      }
    }
    ++gateIndex;
  }

  std::vector<double> totalWeight(n, 0.0);
  for (std::size_t q = 0; q < n; ++q) {
    for (std::size_t r = 0; r < n; ++r) {
      totalWeight[q] += weight[q * n + r];
    }
  }

  // `a` is preferred over `b` on equal scores: earlier first use, then the
  // smaller label (keeps the result deterministic and close to the input
  // order when the score is indifferent).
  const auto prefer = [&](std::size_t a, std::size_t b) {
    return firstUse[a] != firstUse[b] ? firstUse[a] < firstUse[b] : a < b;
  };

  std::size_t seed = n;  // invalid until an interacting qubit is found
  for (std::size_t q = 0; q < n; ++q) {
    if (totalWeight[q] <= 0.0) {
      continue;
    }
    if (seed == n || totalWeight[q] > totalWeight[seed] ||
        (totalWeight[q] == totalWeight[seed] && prefer(q, seed))) {
      seed = q;
    }
  }
  if (seed == n) {
    return QubitOrdering::identity(circuit.numQubits());  // no 2-qubit gates
  }

  // Double-ended greedy placement: each step appends the unplaced qubit
  // with the highest proximity-discounted affinity (2^-distance to each
  // placed qubit) to whichever end attracts it more — heavy pairs end up
  // adjacent, chains unroll into paths.
  std::deque<std::size_t> placed;
  std::vector<bool> done(n, false);
  placed.push_back(seed);
  done[seed] = true;
  std::size_t interacting = 0;
  for (std::size_t q = 0; q < n; ++q) {
    interacting += totalWeight[q] > 0.0 ? 1 : 0;
  }
  while (placed.size() < interacting) {
    std::size_t bestQ = n;
    bool bestFront = false;
    double bestScore = -1.0;
    for (std::size_t q = 0; q < n; ++q) {
      if (done[q] || totalWeight[q] <= 0.0) {
        continue;
      }
      double front = 0.0;
      double back = 0.0;
      double scale = 1.0;
      for (std::size_t p = 0; p < placed.size(); ++p) {
        scale *= 0.5;  // 2^-(p+1)
        front += weight[q * n + placed[p]] * scale;
        back += weight[q * n + placed[placed.size() - 1 - p]] * scale;
      }
      const double score = std::max(front, back);
      if (score > bestScore ||
          (score == bestScore && (bestQ == n || prefer(q, bestQ)))) {
        bestScore = score;
        bestQ = q;
        bestFront = front > back;
      }
    }
    if (bestFront) {
      placed.push_front(bestQ);
    } else {
      placed.push_back(bestQ);
    }
    done[bestQ] = true;
  }
  // Non-interacting qubits keep their input order at the back (their single
  // chain node is order-insensitive).
  for (std::size_t q = 0; q < n; ++q) {
    if (!done[q]) {
      placed.push_back(q);
    }
  }

  // The deque's head goes to the top DD level; any consistent assignment
  // works (DD size only depends on relative order), this one keeps the seed
  // where most of the weight is.
  std::vector<Qubit> qubitAtLevel(n);
  for (std::size_t k = 0; k < n; ++k) {
    qubitAtLevel[n - 1 - k] = static_cast<Qubit>(placed[k]);
  }

  // Adopt the scored order only if it clearly beats identity on the weighted
  // interaction-distance objective. On all-to-all families (Grover, QAOA on
  // complete graphs) every order costs the same, and remapping anyway would
  // perturb the flat-phase kernel strides for zero DD benefit.
  const auto distanceCost = [&](const std::vector<Qubit>& levels) {
    double cost = 0.0;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (weight[a * n + b] > 0.0) {
          const int la = static_cast<int>(levels[a]);
          const int lb = static_cast<int>(levels[b]);
          cost += weight[a * n + b] * std::abs(la - lb);
        }
      }
    }
    return cost;
  };
  std::vector<Qubit> scoredLevelOf(n);
  std::vector<Qubit> identityLevelOf(n);
  for (std::size_t l = 0; l < n; ++l) {
    scoredLevelOf[static_cast<std::size_t>(qubitAtLevel[l])] =
        static_cast<Qubit>(l);
    identityLevelOf[l] = static_cast<Qubit>(l);
  }
  if (distanceCost(scoredLevelOf) >= 0.9 * distanceCost(identityLevelOf)) {
    return QubitOrdering::identity(circuit.numQubits());
  }
  return QubitOrdering::fromQubitAtLevel(std::move(qubitAtLevel));
}

namespace {

class OrderedBackend final : public Backend {
 public:
  OrderedBackend(std::unique_ptr<Backend> inner, QubitOrdering ordering)
      : inner_{std::move(inner)}, ord_{std::move(ordering)} {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] Qubit numQubits() const override {
    return inner_->numQubits();
  }

  void reset() override { inner_->reset(); }

  void setState(std::span<const Complex> amplitudes) override {
    AlignedVector<Complex> permuted(amplitudes.size());
    for (Index i = 0; i < amplitudes.size(); ++i) {
      permuted[ord_.mapIndex(i)] = amplitudes[i];
    }
    inner_->setState(permuted);
  }

  void applyOperation(const qc::Operation& op) override {
    inner_->applyOperation(ord_.mapOperation(op));
  }
  void simulate(const qc::Circuit& circuit) override {
    inner_->simulate(ord_.mapCircuit(circuit));
  }

  [[nodiscard]] Complex amplitude(Index i) const override {
    return inner_->amplitude(ord_.mapIndex(i));
  }
  [[nodiscard]] AlignedVector<Complex> stateVector() const override {
    const AlignedVector<Complex> internal = inner_->stateVector();
    AlignedVector<Complex> logical(internal.size());
    for (Index i = 0; i < internal.size(); ++i) {
      logical[i] = internal[ord_.mapIndex(i)];
    }
    return logical;
  }
  [[nodiscard]] std::vector<Index> sample(std::size_t shots,
                                          Xoshiro256& rng) const override {
    std::vector<Index> samples = inner_->sample(shots, rng);
    for (Index& s : samples) {
      s = ord_.unmapIndex(s);
    }
    return samples;
  }

  [[nodiscard]] std::size_t memoryBytes() const override {
    return inner_->memoryBytes();
  }

  void fillReport(RunReport& report) const override {
    inner_->fillReport(report);
    if (report.ordering.empty()) {
      report.ordering = ord_.qubitAtLevel;
    } else {
      // The inner backend reordered dynamically over *its* labels, which
      // are this decorator's internal levels: compose static after dynamic
      // so the report speaks logical qubits.
      for (Qubit& q : report.ordering) {
        q = ord_.qubitAtLevel[static_cast<std::size_t>(q)];
      }
    }
  }

  [[nodiscard]] std::string exportDot() const override {
    return inner_->exportDot();
  }

 private:
  std::unique_ptr<Backend> inner_;
  QubitOrdering ord_;
};

}  // namespace

std::unique_ptr<Backend> makeOrderedBackend(std::unique_ptr<Backend> inner,
                                            QubitOrdering ordering) {
  return std::make_unique<OrderedBackend>(std::move(inner),
                                          std::move(ordering));
}

}  // namespace fdd::engine
