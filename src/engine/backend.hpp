#pragma once
// The polymorphic simulation-backend interface. Every representation the
// repo knows — DD state (DDSIM-style), dense array (Quantum++-style, both
// indexing modes), and the hybrid FlatDD — sits behind this one API, so the
// CLI, the bench harness, the examples and any future scheduler dispatch on
// a backend name instead of hard-coding simulator classes.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/prng.hpp"
#include "engine/run_report.hpp"
#include "qc/circuit.hpp"

namespace fdd::engine {

class Backend {
 public:
  virtual ~Backend() = default;

  /// The factory key this backend was registered under.
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Qubit numQubits() const = 0;

  /// Resets state (and any run statistics) to |0...0>.
  virtual void reset() = 0;
  /// Loads an arbitrary state of size 2^n (not normalized for you).
  virtual void setState(std::span<const Complex> amplitudes) = 0;

  /// Streams one gate into the current state.
  virtual void applyOperation(const qc::Operation& op) = 0;
  /// Runs a whole circuit from the current state; batch-only stages (e.g.
  /// FlatDD's conversion-point fusion) apply here but not when streaming.
  virtual void simulate(const qc::Circuit& circuit) = 0;

  [[nodiscard]] virtual Complex amplitude(Index i) const = 0;
  /// Dense readout of the full state (converts on demand where needed).
  [[nodiscard]] virtual AlignedVector<Complex> stateVector() const = 0;
  /// Samples `shots` basis states from |amplitude|^2.
  [[nodiscard]] virtual std::vector<Index> sample(std::size_t shots,
                                                  Xoshiro256& rng) const = 0;

  /// Backend-accounted working-set bytes (state + tables + workspace).
  [[nodiscard]] virtual std::size_t memoryBytes() const = 0;

  /// Copies backend-specific counters, phase timings and the per-gate trace
  /// into the normalized report. Fields a backend cannot produce are left
  /// untouched.
  virtual void fillReport(RunReport& report) const = 0;

  /// Graphviz dump of the backend's native state representation, or "" when
  /// the representation has no meaningful graph form (dense arrays).
  [[nodiscard]] virtual std::string exportDot() const { return {}; }
};

}  // namespace fdd::engine
