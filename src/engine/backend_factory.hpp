#pragma once
// String-keyed backend registry. Built-in backends self-register on first
// use; out-of-tree backends call registerBackend() once (e.g. from a static
// initializer) and every front end — CLI, benches, examples — can name them
// immediately. This is the single place backend dispatch lives.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/backend.hpp"
#include "engine/options.hpp"

namespace fdd::engine {

/// All members are thread-safe: the registry map is guarded by a mutex so
/// concurrent session creation (service jobs calling create() while another
/// translation unit registers an out-of-tree backend) cannot race. Creators
/// run outside the lock — a slow constructor never blocks other lookups.
class BackendFactory {
 public:
  using Creator =
      std::function<std::unique_ptr<Backend>(Qubit, const EngineOptions&)>;

  /// The process-wide registry, with the built-ins ("dd", "array",
  /// "array-mi", "flatdd") already registered.
  [[nodiscard]] static BackendFactory& instance();

  /// Registers (or replaces) a backend under `name`.
  void registerBackend(std::string name, std::string description,
                       Creator creator);

  /// Instantiates `name`; throws std::invalid_argument for unknown names
  /// (the message lists what is registered).
  [[nodiscard]] std::unique_ptr<Backend> create(
      std::string_view name, Qubit nQubits,
      const EngineOptions& options = {}) const;

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> registeredNames() const;
  /// One-line description of a registered backend ("" if unknown).
  [[nodiscard]] std::string describe(std::string_view name) const;

 private:
  BackendFactory();

  struct Entry {
    std::string description;
    Creator creator;
  };
  mutable std::mutex mutex_;  // guards entries_
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace fdd::engine
