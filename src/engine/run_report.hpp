#pragma once
// Machine-readable simulation report, normalized across backends: phase
// timings, per-gate trace, conversion/cache/fusion counters and memory are
// the same fields whether the run went through the DD, array or FlatDD
// backend (fields a backend cannot produce stay at their zero values).
// Exported as JSON (round-trippable via fromJson) and key,value CSV so the
// bench drivers and external plotting stop scraping printf output.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace fdd::obs {
struct ObsSnapshot;
}

namespace fdd::engine {

/// One entry per configured circuit-preparation pass, in execution order.
struct PassReport {
  std::string name;
  /// True when the pass rewrote the circuit here; false when it only armed a
  /// backend-side stage (e.g. fusion runs at FlatDD's conversion point).
  bool circuitTransform = true;
  double seconds = 0;
  std::size_t gatesBefore = 0;
  std::size_t gatesAfter = 0;
  std::string note;

  [[nodiscard]] bool operator==(const PassReport&) const = default;
};

/// One simulated gate of the per-gate trace (recordPerGate option).
struct GateReport {
  std::size_t gateIndex = 0;
  std::string phase;  // "dd", "dmav", "array" — backend execution phase
  double seconds = 0;
  std::size_t ddSize = 0;  // state-DD node count, 0 outside a DD phase

  [[nodiscard]] bool operator==(const GateReport&) const = default;
};

/// One named monotonic counter from the observability registry.
struct MetricCounter {
  std::string name;
  double value = 0;

  [[nodiscard]] bool operator==(const MetricCounter&) const = default;
};

/// One log2-bucketed latency histogram (times converted ns -> seconds).
struct MetricHistogram {
  std::string name;
  std::size_t count = 0;
  double sumSeconds = 0;
  double minSeconds = 0;
  double maxSeconds = 0;
  double p50Seconds = 0;  // log-bucket upper bound
  double p99Seconds = 0;
  std::vector<double> buckets;  // counts per log2-ns bucket, zeros trimmed

  [[nodiscard]] bool operator==(const MetricHistogram&) const = default;
};

/// Thread-pool load accounting for one phase label ("dmav.replay", ...).
struct PoolPhaseMetrics {
  std::string phase;
  std::size_t regions = 0;           // fork/join regions under this label
  double wallSeconds = 0;            // summed region wall time
  std::vector<double> busySeconds;   // per worker (index = worker id)
  double imbalance = 0;              // max busy / mean busy, 1.0 = perfect

  [[nodiscard]] bool operator==(const PoolPhaseMetrics&) const = default;
};

/// The observability registry snapshot folded into a report ("metrics" in
/// the JSON). Empty (and omitted from CSV) when obs was disabled.
struct MetricsReport {
  std::vector<MetricCounter> counters;
  std::vector<MetricHistogram> histograms;
  std::vector<PoolPhaseMetrics> poolPhases;
  double loadImbalance = 0;  // worst per-phase imbalance across poolPhases
  std::size_t droppedTraceEvents = 0;

  [[nodiscard]] bool empty() const {
    return counters.empty() && histograms.empty() && poolPhases.empty() &&
           droppedTraceEvents == 0;
  }

  [[nodiscard]] bool operator==(const MetricsReport&) const = default;
};

/// Converts an obs::Registry snapshot into report form (ns -> seconds).
[[nodiscard]] MetricsReport metricsFromSnapshot(const obs::ObsSnapshot& snap);

/// One EWMA monitor observation (Eq. 4): the decision instant record that
/// makes the DD->array switch auditable after the run.
struct EwmaTickReport {
  std::size_t gate = 0;     // gate index at the observation
  std::size_t ddSize = 0;   // state-DD node count observed
  double ewma = 0;          // bias-corrected EWMA of the DD size
  double threshold = 0;     // epsilon * ewma; triggered when ddSize exceeds
  bool triggered = false;   // this tick fired the conversion

  [[nodiscard]] bool operator==(const EwmaTickReport&) const = default;
};

struct RunReport {
  // ---- identity ---------------------------------------------------------
  std::string backend;
  std::string circuit;
  Qubit qubits = 0;
  std::size_t gates = 0;  // gates simulated (after the pass pipeline)
  std::size_t depth = 0;
  unsigned threads = 1;
  /// PRNG seed of the run/session (EngineOptions::seed): every sampling
  /// stream derives from it, so the report pins down reproducibility.
  /// Serialized as a decimal string in JSON — 64-bit seeds don't fit a
  /// double exactly.
  std::uint64_t seed = 0;
  std::string simdTier;  // kernel dispatch tier: "avx512", "avx2", "scalar"
  unsigned simdLanes = 1;    // Eq. 6's d — doubles per vector instruction

  // ---- phase timings (seconds) ------------------------------------------
  double totalSeconds = 0;      // pipeline + simulate
  double pipelineSeconds = 0;   // all circuit-preparation passes
  double simulateSeconds = 0;   // backend simulate() wall time
  double ddPhaseSeconds = 0;    // DD phase (flatdd) / whole run (dd)
  double dmavPhaseSeconds = 0;  // DMAV phase (flatdd only)
  double conversionSeconds = 0; // DD-to-array conversion (flatdd only)
  double fusionSeconds = 0;     // gate fusion at the conversion point
  double planCompileSeconds = 0; // DD-to-plan lowering (flatdd only)
  double dmavReplaySeconds = 0;  // compiled-plan replay (flatdd only)

  // ---- counters ---------------------------------------------------------
  bool converted = false;             // flatdd switched representation
  std::size_t conversionGateIndex = 0;
  std::size_t ddGates = 0;            // gates executed on the DD state
  std::size_t dmavGates = 0;          // matrices applied by DMAV post-fusion
  std::size_t cachedGates = 0;        // DMAVs that ran with the cache
  std::size_t cacheHits = 0;
  std::size_t planCacheHits = 0;      // DMAV plans reused from the LRU cache
  std::size_t planCacheMisses = 0;
  std::size_t planCompiles = 0;       // plan-cache misses that compiled
  std::size_t diagRuns = 0;           // fused diagonal-gate runs executed
  std::size_t diagRunGates = 0;       // gates collapsed into those runs
  std::size_t denseBlockGates = 0;    // DMAVs via the DenseBlock lowering
  std::size_t peakDDSize = 0;         // peak state-DD node count
  double dmavModelCost = 0;           // summed Eq. 5/6 MAC estimate

  // ---- variable ordering ------------------------------------------------
  /// Logical qubit at each internal level (static pass composed with any
  /// dynamic reorders); empty when the run used the identity order.
  std::vector<Qubit> ordering;
  std::size_t reorderCount = 0;       // accepted dynamic reorders (flatdd)
  std::size_t reorderSwaps = 0;       // adjacent-level swaps kept in total
  std::size_t ddSizePreReorder = 0;   // nodes before the first reorder
  std::size_t ddSizePostReorder = 0;  // nodes after the last reorder
  double reorderSeconds = 0;          // time inside the sifting passes

  // ---- memory (bytes) ---------------------------------------------------
  std::size_t memoryBytes = 0;        // backend-accounted working set
  std::size_t peakRssBytes = 0;       // process peak RSS after the run

  std::vector<PassReport> passes;
  std::vector<GateReport> perGate;

  // ---- observability ----------------------------------------------------
  MetricsReport metrics;               // counter/histogram/pool snapshot
  std::vector<EwmaTickReport> ewmaLog; // EWMA monitor decision log (flatdd)

  [[nodiscard]] bool operator==(const RunReport&) const = default;

  /// Serializes every field (including passes and perGate) as one JSON
  /// object; fromJson(toJson()) == *this.
  [[nodiscard]] std::string toJson() const;

  /// Parses a report previously produced by toJson(). Unknown keys are
  /// ignored; missing keys keep their defaults. Throws std::invalid_argument
  /// on malformed JSON.
  [[nodiscard]] static RunReport fromJson(std::string_view json);

  /// Flat "key,value" CSV of the scalar fields (one row per field).
  [[nodiscard]] std::string toCsv() const;

  /// The per-gate trace as CSV ("gate,phase,seconds,dd_size").
  [[nodiscard]] std::string perGateCsv() const;
};

}  // namespace fdd::engine
