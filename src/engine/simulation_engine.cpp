#include "engine/simulation_engine.hpp"

#include <stdexcept>

#include "common/rss.hpp"
#include "common/timing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/kernels.hpp"

namespace fdd::engine {

SimulationEngine::SimulationEngine(EngineOptions options)
    : options_{std::move(options)} {}

RunReport SimulationEngine::run(const std::string& backendName,
                                const qc::Circuit& circuit) {
  RunReport report;
  report.backend = backendName;
  report.circuit = circuit.name();
  report.qubits = circuit.numQubits();
  report.threads = options_.threads;
  report.simdTier = simd::toString(simd::activeTier());
  report.simdLanes = simd::lanes();

  // Each run starts its observability window from zero so the snapshot
  // reflects this run only; the caller owns trace export (and may keep
  // obs enabled across runs by setting it before — enableObs only turns
  // the runtime on, never off, so a tracing CLI wrapping several runs
  // composes with it).
  if (options_.enableObs) {
    obs::setEnabled(true);
    obs::Registry::instance().reset();
  }

  Stopwatch total;

  Stopwatch pipeline;
  const qc::Circuit prepared = PassPipeline::run(circuit, options_, report);
  report.pipelineSeconds = pipeline.seconds();
  report.gates = prepared.numGates();
  report.depth = prepared.depth();

  backend_ = BackendFactory::instance().create(backendName,
                                               prepared.numQubits(), options_);

  Stopwatch simulate;
  backend_->simulate(prepared);
  report.simulateSeconds = simulate.seconds();
  report.totalSeconds = total.seconds();

  backend_->fillReport(report);
  report.memoryBytes = backend_->memoryBytes();
  report.peakRssBytes = peakRSS();
  if (obs::enabled()) {
    report.metrics = metricsFromSnapshot(obs::Registry::instance().snapshot());
  }
  return report;
}

Backend& SimulationEngine::backend() {
  if (backend_ == nullptr) {
    throw std::logic_error("SimulationEngine::backend: no run yet");
  }
  return *backend_;
}

const Backend& SimulationEngine::backend() const {
  if (backend_ == nullptr) {
    throw std::logic_error("SimulationEngine::backend: no run yet");
  }
  return *backend_;
}

RunReport simulate(const std::string& backendName, const qc::Circuit& circuit,
                   const EngineOptions& options) {
  SimulationEngine engine{options};
  return engine.run(backendName, circuit);
}

}  // namespace fdd::engine
