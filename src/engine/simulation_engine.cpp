#include "engine/simulation_engine.hpp"

#include <stdexcept>

#include <algorithm>

#include "common/rss.hpp"
#include "common/timing.hpp"
#include "engine/ordering.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/kernels.hpp"

namespace fdd::engine {

SimulationEngine::SimulationEngine(EngineOptions options)
    : options_{std::move(options)} {}

RunReport SimulationEngine::run(const std::string& backendName,
                                const qc::Circuit& circuit) {
  // Each run starts its observability window from zero so the snapshot
  // reflects this run only; the caller owns trace export (and may keep
  // obs enabled across runs by setting it before — enableObs only turns
  // the runtime on, never off, so a tracing CLI wrapping several runs
  // composes with it).
  if (options_.enableObs) {
    obs::setEnabled(true);
    obs::Registry::instance().reset();
  }

  Stopwatch total;
  begin(backendName, circuit.numQubits());
  cumulative_.circuit = circuit.name();
  apply(circuit);
  cumulative_.totalSeconds = total.seconds();
  return report();
}

void SimulationEngine::begin(const std::string& backendName, Qubit nQubits) {
  if (options_.enableObs) {
    obs::setEnabled(true);
  }
  cumulative_ = RunReport{};
  cumulative_.backend = backendName;
  cumulative_.qubits = nQubits;
  cumulative_.threads = options_.threads;
  cumulative_.seed = options_.seed;
  cumulative_.simdTier = simd::toString(simd::activeTier());
  cumulative_.simdLanes = simd::lanes();
  backend_ = BackendFactory::instance().create(backendName, nQubits, options_);
  orderingApplied_ = false;
}

std::size_t SimulationEngine::apply(const qc::Circuit& chunk) {
  if (backend_ == nullptr) {
    throw std::logic_error("SimulationEngine::apply: no begin()/run() yet");
  }
  Stopwatch total;

  Stopwatch pipeline;
  const qc::Circuit prepared = PassPipeline::run(chunk, options_, cumulative_);

  // The "ordering" pass scores on the first non-empty batch, while the
  // backend is still on |0...0> (permuting |0...0> is a no-op, so wrapping
  // at this point is exact). Later batches stream through the same wrapper.
  if (!orderingApplied_ && cumulative_.gates == 0 && prepared.numGates() > 0 &&
      std::find(options_.passes.begin(), options_.passes.end(), "ordering") !=
          options_.passes.end()) {
    QubitOrdering ord = scoreOrdering(prepared);
    const auto entry = std::find_if(
        cumulative_.passes.rbegin(), cumulative_.passes.rend(),
        [](const PassReport& p) { return p.name == "ordering"; });
    if (entry != cumulative_.passes.rend()) {
      entry->note = ord.isIdentity() ? "identity (no 2-qubit interaction)"
                                     : ord.toString();
    }
    if (!ord.isIdentity()) {
      backend_ = makeOrderedBackend(std::move(backend_), std::move(ord));
    }
    orderingApplied_ = true;
  }

  cumulative_.pipelineSeconds += pipeline.seconds();
  cumulative_.gates += prepared.numGates();
  cumulative_.depth += prepared.depth();

  Stopwatch simulate;
  backend_->simulate(prepared);
  cumulative_.simulateSeconds += simulate.seconds();
  cumulative_.totalSeconds += total.seconds();
  return prepared.numGates();
}

RunReport SimulationEngine::report() const {
  RunReport out = cumulative_;
  if (backend_ != nullptr) {
    backend_->fillReport(out);
    out.memoryBytes = backend_->memoryBytes();
  }
  out.peakRssBytes = peakRSS();
  if (obs::enabled()) {
    out.metrics = metricsFromSnapshot(obs::Registry::instance().snapshot());
  }
  return out;
}

Backend& SimulationEngine::backend() {
  if (backend_ == nullptr) {
    throw std::logic_error("SimulationEngine::backend: no run yet");
  }
  return *backend_;
}

const Backend& SimulationEngine::backend() const {
  if (backend_ == nullptr) {
    throw std::logic_error("SimulationEngine::backend: no run yet");
  }
  return *backend_;
}

RunReport simulate(const std::string& backendName, const qc::Circuit& circuit,
                   const EngineOptions& options) {
  SimulationEngine engine{options};
  return engine.run(backendName, circuit);
}

}  // namespace fdd::engine
