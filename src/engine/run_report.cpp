#include "engine/run_report.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <variant>

namespace fdd::engine {

namespace {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void escapeTo(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string numberToString(double v) {
  // Shortest representation that round-trips a double exactly.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

/// Tiny append-only JSON object/array writer (keys are emitted in call
/// order; no pretty-printing beyond one level of newlines).
class JsonWriter {
 public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray(std::string_view key) { keyTo(key); open('['); }
  void endArray() { close(']'); }
  void beginObjectIn(std::string_view key) { keyTo(key); open('{'); }
  void beginObjectEntry() { open('{'); }

  void field(std::string_view key, std::string_view v) {
    keyTo(key);
    escapeTo(out_, v);
    valueDone();
  }
  void field(std::string_view key, double v) {
    keyTo(key);
    out_ += numberToString(v);
    valueDone();
  }
  void field(std::string_view key, std::size_t v) {
    keyTo(key);
    out_ += std::to_string(v);
    valueDone();
  }
  void field(std::string_view key, unsigned v) {
    keyTo(key);
    out_ += std::to_string(v);
    valueDone();
  }
  void field(std::string_view key, int v) {
    keyTo(key);
    out_ += std::to_string(v);
    valueDone();
  }
  void field(std::string_view key, bool v) {
    keyTo(key);
    out_ += v ? "true" : "false";
    valueDone();
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void open(char c) {
    separate();
    out_ += c;
    first_ = true;
  }
  void close(char c) {
    out_ += c;
    valueDone();  // the closed container is a completed value
  }
  /// Emit the "," before a new key or array element — unless this value
  /// directly follows its own key, or is the first in its container.
  void separate() {
    if (afterKey_) {
      afterKey_ = false;
      return;
    }
    if (!first_) {
      out_ += ',';
    }
    first_ = false;
  }
  void valueDone() {
    afterKey_ = false;
    first_ = false;
  }
  void keyTo(std::string_view key) {
    separate();
    escapeTo(out_, key);
    out_ += ':';
    afterKey_ = true;
  }

  std::string out_;
  bool first_ = true;
  bool afterKey_ = false;
};

// ---------------------------------------------------------------------------
// Parser — the subset toJson() emits (objects, arrays, strings, numbers,
// booleans, null), enough for the round trip and for external tools that
// hand-edit reports.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonObject>, std::shared_ptr<JsonArray>>
      v = nullptr;

  [[nodiscard]] const JsonObject* object() const {
    const auto* p = std::get_if<std::shared_ptr<JsonObject>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const JsonArray* array() const {
    const auto* p = std::get_if<std::shared_ptr<JsonArray>>(&v);
    return p ? p->get() : nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  JsonValue parse() {
    const JsonValue value = parseValue();
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("RunReport::fromJson: " + std::string(what) +
                                " at offset " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skipWs();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail("unexpected character");
    }
    ++pos_;
  }

  bool consumeIf(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return JsonValue{parseString()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return parseNumber();
    }
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad literal");
    }
    pos_ += word.size();
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("bad \\u escape");
          }
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
          }
          pos_ += 4;
          // toJson only escapes control characters; anything else is kept
          // as a replacement since reports never contain non-ASCII.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parseNumber() {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    double value = 0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (pos_ == start || res.ec != std::errc{} ||
        res.ptr != text_.data() + pos_) {
      fail("bad number");
    }
    return JsonValue{value};
  }

  JsonValue parseObject() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (!consumeIf('}')) {
      do {
        std::string key = parseString();
        expect(':');
        obj->emplace(std::move(key), parseValue());
      } while (consumeIf(','));
      expect('}');
    }
    return JsonValue{std::move(obj)};
  }

  JsonValue parseArray() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (!consumeIf(']')) {
      do {
        arr->push_back(parseValue());
      } while (consumeIf(','));
      expect(']');
    }
    return JsonValue{std::move(arr)};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// Typed field extraction (missing/mistyped keys keep the default).
void get(const JsonObject& o, std::string_view key, std::string& out) {
  if (const auto it = o.find(key); it != o.end()) {
    if (const auto* s = std::get_if<std::string>(&it->second.v)) {
      out = *s;
    }
  }
}
void get(const JsonObject& o, std::string_view key, double& out) {
  if (const auto it = o.find(key); it != o.end()) {
    if (const auto* d = std::get_if<double>(&it->second.v)) {
      out = *d;
    }
  }
}
void get(const JsonObject& o, std::string_view key, bool& out) {
  if (const auto it = o.find(key); it != o.end()) {
    if (const auto* b = std::get_if<bool>(&it->second.v)) {
      out = *b;
    }
  }
}
void get(const JsonObject& o, std::string_view key, std::size_t& out) {
  double d = static_cast<double>(out);
  get(o, key, d);
  out = static_cast<std::size_t>(d);
}
void get(const JsonObject& o, std::string_view key, unsigned& out) {
  double d = out;
  get(o, key, d);
  out = static_cast<unsigned>(d);
}
void get(const JsonObject& o, std::string_view key, Qubit& out) {
  double d = out;
  get(o, key, d);
  out = static_cast<Qubit>(d);
}

}  // namespace

std::string RunReport::toJson() const {
  JsonWriter w;
  w.beginObject();
  w.field("backend", backend);
  w.field("circuit", circuit);
  w.field("qubits", qubits);
  w.field("gates", gates);
  w.field("depth", depth);
  w.field("threads", threads);
  w.field("simdTier", simdTier);
  w.field("simdLanes", simdLanes);

  w.beginObjectIn("timings");
  w.field("total", totalSeconds);
  w.field("pipeline", pipelineSeconds);
  w.field("simulate", simulateSeconds);
  w.field("ddPhase", ddPhaseSeconds);
  w.field("dmavPhase", dmavPhaseSeconds);
  w.field("conversion", conversionSeconds);
  w.field("fusion", fusionSeconds);
  w.field("planCompile", planCompileSeconds);
  w.field("dmavReplay", dmavReplaySeconds);
  w.endObject();

  w.beginObjectIn("counters");
  w.field("converted", converted);
  w.field("conversionGateIndex", conversionGateIndex);
  w.field("ddGates", ddGates);
  w.field("dmavGates", dmavGates);
  w.field("cachedGates", cachedGates);
  w.field("cacheHits", cacheHits);
  w.field("planCacheHits", planCacheHits);
  w.field("planCacheMisses", planCacheMisses);
  w.field("planCompiles", planCompiles);
  w.field("peakDDSize", peakDDSize);
  w.field("dmavModelCost", dmavModelCost);
  w.endObject();

  w.beginObjectIn("memory");
  w.field("accountedBytes", memoryBytes);
  w.field("peakRssBytes", peakRssBytes);
  w.endObject();

  w.beginArray("passes");
  for (const auto& p : passes) {
    w.beginObjectEntry();
    w.field("name", p.name);
    w.field("circuitTransform", p.circuitTransform);
    w.field("seconds", p.seconds);
    w.field("gatesBefore", p.gatesBefore);
    w.field("gatesAfter", p.gatesAfter);
    w.field("note", p.note);
    w.endObject();
  }
  w.endArray();

  w.beginArray("perGate");
  for (const auto& g : perGate) {
    w.beginObjectEntry();
    w.field("gate", g.gateIndex);
    w.field("phase", g.phase);
    w.field("seconds", g.seconds);
    w.field("ddSize", g.ddSize);
    w.endObject();
  }
  w.endArray();

  w.endObject();
  return w.take();
}

RunReport RunReport::fromJson(std::string_view json) {
  const JsonValue root = JsonParser{json}.parse();
  const JsonObject* top = root.object();
  if (top == nullptr) {
    throw std::invalid_argument("RunReport::fromJson: top level not an object");
  }

  RunReport r;
  get(*top, "backend", r.backend);
  get(*top, "circuit", r.circuit);
  get(*top, "qubits", r.qubits);
  get(*top, "gates", r.gates);
  get(*top, "depth", r.depth);
  get(*top, "threads", r.threads);
  get(*top, "simdTier", r.simdTier);
  get(*top, "simdLanes", r.simdLanes);

  if (const auto it = top->find("timings"); it != top->end()) {
    if (const JsonObject* t = it->second.object()) {
      get(*t, "total", r.totalSeconds);
      get(*t, "pipeline", r.pipelineSeconds);
      get(*t, "simulate", r.simulateSeconds);
      get(*t, "ddPhase", r.ddPhaseSeconds);
      get(*t, "dmavPhase", r.dmavPhaseSeconds);
      get(*t, "conversion", r.conversionSeconds);
      get(*t, "fusion", r.fusionSeconds);
      get(*t, "planCompile", r.planCompileSeconds);
      get(*t, "dmavReplay", r.dmavReplaySeconds);
    }
  }
  if (const auto it = top->find("counters"); it != top->end()) {
    if (const JsonObject* c = it->second.object()) {
      get(*c, "converted", r.converted);
      get(*c, "conversionGateIndex", r.conversionGateIndex);
      get(*c, "ddGates", r.ddGates);
      get(*c, "dmavGates", r.dmavGates);
      get(*c, "cachedGates", r.cachedGates);
      get(*c, "cacheHits", r.cacheHits);
      get(*c, "planCacheHits", r.planCacheHits);
      get(*c, "planCacheMisses", r.planCacheMisses);
      get(*c, "planCompiles", r.planCompiles);
      get(*c, "peakDDSize", r.peakDDSize);
      get(*c, "dmavModelCost", r.dmavModelCost);
    }
  }
  if (const auto it = top->find("memory"); it != top->end()) {
    if (const JsonObject* m = it->second.object()) {
      get(*m, "accountedBytes", r.memoryBytes);
      get(*m, "peakRssBytes", r.peakRssBytes);
    }
  }
  if (const auto it = top->find("passes"); it != top->end()) {
    if (const JsonArray* arr = it->second.array()) {
      for (const auto& entry : *arr) {
        if (const JsonObject* p = entry.object()) {
          PassReport pass;
          get(*p, "name", pass.name);
          get(*p, "circuitTransform", pass.circuitTransform);
          get(*p, "seconds", pass.seconds);
          get(*p, "gatesBefore", pass.gatesBefore);
          get(*p, "gatesAfter", pass.gatesAfter);
          get(*p, "note", pass.note);
          r.passes.push_back(std::move(pass));
        }
      }
    }
  }
  if (const auto it = top->find("perGate"); it != top->end()) {
    if (const JsonArray* arr = it->second.array()) {
      for (const auto& entry : *arr) {
        if (const JsonObject* g = entry.object()) {
          GateReport gate;
          get(*g, "gate", gate.gateIndex);
          get(*g, "phase", gate.phase);
          get(*g, "seconds", gate.seconds);
          get(*g, "ddSize", gate.ddSize);
          r.perGate.push_back(std::move(gate));
        }
      }
    }
  }
  return r;
}

std::string RunReport::toCsv() const {
  std::string csv = "key,value\n";
  auto row = [&csv](std::string_view key, const std::string& value) {
    csv += key;
    csv += ',';
    csv += value;
    csv += '\n';
  };
  row("backend", backend);
  row("circuit", circuit);
  row("qubits", std::to_string(qubits));
  row("gates", std::to_string(gates));
  row("depth", std::to_string(depth));
  row("threads", std::to_string(threads));
  row("simd_tier", simdTier);
  row("simd_lanes", std::to_string(simdLanes));
  row("total_seconds", numberToString(totalSeconds));
  row("pipeline_seconds", numberToString(pipelineSeconds));
  row("simulate_seconds", numberToString(simulateSeconds));
  row("dd_phase_seconds", numberToString(ddPhaseSeconds));
  row("dmav_phase_seconds", numberToString(dmavPhaseSeconds));
  row("conversion_seconds", numberToString(conversionSeconds));
  row("fusion_seconds", numberToString(fusionSeconds));
  row("plan_compile_ms", numberToString(planCompileSeconds * 1e3));
  row("dmav_replay_ms", numberToString(dmavReplaySeconds * 1e3));
  row("converted", converted ? "1" : "0");
  row("conversion_gate_index", std::to_string(conversionGateIndex));
  row("dd_gates", std::to_string(ddGates));
  row("dmav_gates", std::to_string(dmavGates));
  row("cached_gates", std::to_string(cachedGates));
  row("cache_hits", std::to_string(cacheHits));
  row("plan_cache_hits", std::to_string(planCacheHits));
  row("plan_cache_misses", std::to_string(planCacheMisses));
  row("peak_dd_size", std::to_string(peakDDSize));
  row("dmav_model_cost", numberToString(dmavModelCost));
  row("memory_bytes", std::to_string(memoryBytes));
  row("peak_rss_bytes", std::to_string(peakRssBytes));
  return csv;
}

std::string RunReport::perGateCsv() const {
  std::string csv = "gate,phase,seconds,dd_size\n";
  for (const auto& g : perGate) {
    csv += std::to_string(g.gateIndex);
    csv += ',';
    csv += g.phase;
    csv += ',';
    csv += numberToString(g.seconds);
    csv += ',';
    csv += std::to_string(g.ddSize);
    csv += '\n';
  }
  return csv;
}

}  // namespace fdd::engine
