#include "engine/run_report.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace fdd::engine {

namespace {

using json::numberToString;
using JsonObject = json::Object;
using JsonArray = json::Array;
using JsonValue = json::Value;

// Typed field extraction (missing/mistyped keys keep the default).
void get(const JsonObject& o, std::string_view key, std::string& out) {
  if (const auto it = o.find(key); it != o.end()) {
    if (const auto* s = it->second.string()) {
      out = *s;
    }
  }
}
void get(const JsonObject& o, std::string_view key, double& out) {
  if (const auto it = o.find(key); it != o.end()) {
    if (const auto* d = it->second.number()) {
      out = *d;
    }
  }
}
void get(const JsonObject& o, std::string_view key, bool& out) {
  if (const auto it = o.find(key); it != o.end()) {
    if (const auto* b = it->second.boolean()) {
      out = *b;
    }
  }
}
void get(const JsonObject& o, std::string_view key, std::size_t& out) {
  double d = static_cast<double>(out);
  get(o, key, d);
  out = static_cast<std::size_t>(d);
}
// 64-bit values that must round-trip exactly travel as decimal strings (a
// JSON double only holds 53 mantissa bits); a plain number is accepted too
// for hand-edited reports.
void getU64(const JsonObject& o, std::string_view key, std::uint64_t& out) {
  const auto it = o.find(key);
  if (it == o.end()) {
    return;
  }
  if (const auto* s = it->second.string()) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(s->c_str(), &end, 10);
    if (end != s->c_str() && *end == '\0') {
      out = parsed;
    }
  } else if (const auto* d = it->second.number()) {
    out = static_cast<std::uint64_t>(*d);
  }
}
void get(const JsonObject& o, std::string_view key, unsigned& out) {
  double d = out;
  get(o, key, d);
  out = static_cast<unsigned>(d);
}
void get(const JsonObject& o, std::string_view key, Qubit& out) {
  double d = out;
  get(o, key, d);
  out = static_cast<Qubit>(d);
}
void get(const JsonObject& o, std::string_view key, std::vector<double>& out) {
  if (const auto it = o.find(key); it != o.end()) {
    if (const JsonArray* arr = it->second.array()) {
      out.clear();
      out.reserve(arr->size());
      for (const auto& entry : *arr) {
        out.push_back(entry.number() != nullptr ? *entry.number() : 0.0);
      }
    }
  }
}

void writeMetrics(json::Writer& w, const MetricsReport& m) {
  w.beginObjectIn("metrics");
  w.beginArray("counters");
  for (const auto& c : m.counters) {
    w.beginObjectEntry();
    w.field("name", c.name);
    w.field("value", c.value);
    w.endObject();
  }
  w.endArray();
  w.beginArray("histograms");
  for (const auto& h : m.histograms) {
    w.beginObjectEntry();
    w.field("name", h.name);
    w.field("count", h.count);
    w.field("sumSeconds", h.sumSeconds);
    w.field("minSeconds", h.minSeconds);
    w.field("maxSeconds", h.maxSeconds);
    w.field("p50Seconds", h.p50Seconds);
    w.field("p99Seconds", h.p99Seconds);
    w.beginArray("buckets");
    for (const double b : h.buckets) {
      w.element(b);
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.beginArray("poolPhases");
  for (const auto& p : m.poolPhases) {
    w.beginObjectEntry();
    w.field("phase", p.phase);
    w.field("regions", p.regions);
    w.field("wallSeconds", p.wallSeconds);
    w.beginArray("busySeconds");
    for (const double b : p.busySeconds) {
      w.element(b);
    }
    w.endArray();
    w.field("imbalance", p.imbalance);
    w.endObject();
  }
  w.endArray();
  w.field("loadImbalance", m.loadImbalance);
  w.field("droppedTraceEvents", m.droppedTraceEvents);
  w.endObject();
}

MetricsReport readMetrics(const JsonObject& o) {
  MetricsReport m;
  if (const auto it = o.find("counters"); it != o.end()) {
    if (const JsonArray* arr = it->second.array()) {
      for (const auto& entry : *arr) {
        if (const JsonObject* c = entry.object()) {
          MetricCounter counter;
          get(*c, "name", counter.name);
          get(*c, "value", counter.value);
          m.counters.push_back(std::move(counter));
        }
      }
    }
  }
  if (const auto it = o.find("histograms"); it != o.end()) {
    if (const JsonArray* arr = it->second.array()) {
      for (const auto& entry : *arr) {
        if (const JsonObject* h = entry.object()) {
          MetricHistogram hist;
          get(*h, "name", hist.name);
          get(*h, "count", hist.count);
          get(*h, "sumSeconds", hist.sumSeconds);
          get(*h, "minSeconds", hist.minSeconds);
          get(*h, "maxSeconds", hist.maxSeconds);
          get(*h, "p50Seconds", hist.p50Seconds);
          get(*h, "p99Seconds", hist.p99Seconds);
          get(*h, "buckets", hist.buckets);
          m.histograms.push_back(std::move(hist));
        }
      }
    }
  }
  if (const auto it = o.find("poolPhases"); it != o.end()) {
    if (const JsonArray* arr = it->second.array()) {
      for (const auto& entry : *arr) {
        if (const JsonObject* p = entry.object()) {
          PoolPhaseMetrics phase;
          get(*p, "phase", phase.phase);
          get(*p, "regions", phase.regions);
          get(*p, "wallSeconds", phase.wallSeconds);
          get(*p, "busySeconds", phase.busySeconds);
          get(*p, "imbalance", phase.imbalance);
          m.poolPhases.push_back(std::move(phase));
        }
      }
    }
  }
  get(o, "loadImbalance", m.loadImbalance);
  get(o, "droppedTraceEvents", m.droppedTraceEvents);
  return m;
}

}  // namespace

MetricsReport metricsFromSnapshot(const obs::ObsSnapshot& snap) {
  MetricsReport m;
  m.counters.reserve(snap.counters.size() + snap.gauges.size());
  for (const auto& c : snap.counters) {
    m.counters.push_back(
        MetricCounter{c.name, static_cast<double>(c.value)});
  }
  // Gauges fold into the same flat list: their last value is a point-in-time
  // reading, which is all the report needs (the trace has the full track).
  for (const auto& g : snap.gauges) {
    m.counters.push_back(MetricCounter{g.name, g.value});
  }
  m.histograms.reserve(snap.histograms.size());
  for (const auto& h : snap.histograms) {
    MetricHistogram hist;
    hist.name = h.name;
    hist.count = h.count;
    hist.sumSeconds = static_cast<double>(h.sumNs) / 1e9;
    hist.minSeconds = static_cast<double>(h.minNs) / 1e9;
    hist.maxSeconds = static_cast<double>(h.maxNs) / 1e9;
    hist.p50Seconds = static_cast<double>(h.p50Ns) / 1e9;
    hist.p99Seconds = static_cast<double>(h.p99Ns) / 1e9;
    hist.buckets.reserve(h.buckets.size());
    for (const auto b : h.buckets) {
      hist.buckets.push_back(static_cast<double>(b));
    }
    m.histograms.push_back(std::move(hist));
  }
  m.poolPhases.reserve(snap.poolPhases.size());
  for (const auto& p : snap.poolPhases) {
    PoolPhaseMetrics phase;
    phase.phase = p.phase;
    phase.regions = p.regions;
    phase.wallSeconds = p.wallSeconds;
    phase.busySeconds = p.busySeconds;
    phase.imbalance = p.imbalance;
    m.poolPhases.push_back(std::move(phase));
  }
  m.loadImbalance = snap.worstImbalance();
  m.droppedTraceEvents = snap.droppedTraceEvents;
  return m;
}

std::string RunReport::toJson() const {
  json::Writer w;
  w.beginObject();
  w.field("backend", backend);
  w.field("circuit", circuit);
  w.field("qubits", qubits);
  w.field("gates", gates);
  w.field("depth", depth);
  w.field("threads", threads);
  w.field("seed", std::to_string(seed));
  w.field("simdTier", simdTier);
  w.field("simdLanes", simdLanes);

  w.beginObjectIn("timings");
  w.field("total", totalSeconds);
  w.field("pipeline", pipelineSeconds);
  w.field("simulate", simulateSeconds);
  w.field("ddPhase", ddPhaseSeconds);
  w.field("dmavPhase", dmavPhaseSeconds);
  w.field("conversion", conversionSeconds);
  w.field("fusion", fusionSeconds);
  w.field("planCompile", planCompileSeconds);
  w.field("dmavReplay", dmavReplaySeconds);
  w.endObject();

  w.beginObjectIn("counters");
  w.field("converted", converted);
  w.field("conversionGateIndex", conversionGateIndex);
  w.field("ddGates", ddGates);
  w.field("dmavGates", dmavGates);
  w.field("cachedGates", cachedGates);
  w.field("cacheHits", cacheHits);
  w.field("planCacheHits", planCacheHits);
  w.field("planCacheMisses", planCacheMisses);
  w.field("planCompiles", planCompiles);
  w.field("diagRuns", diagRuns);
  w.field("diagRunGates", diagRunGates);
  w.field("denseBlockGates", denseBlockGates);
  w.field("peakDDSize", peakDDSize);
  w.field("dmavModelCost", dmavModelCost);
  w.field("reorderCount", reorderCount);
  w.field("reorderSwaps", reorderSwaps);
  w.field("ddSizePreReorder", ddSizePreReorder);
  w.field("ddSizePostReorder", ddSizePostReorder);
  w.field("reorderSeconds", reorderSeconds);
  w.endObject();

  w.beginArray("ordering");
  for (const Qubit q : ordering) {
    w.element(static_cast<double>(q));
  }
  w.endArray();

  w.beginObjectIn("memory");
  w.field("accountedBytes", memoryBytes);
  w.field("peakRssBytes", peakRssBytes);
  w.endObject();

  w.beginArray("passes");
  for (const auto& p : passes) {
    w.beginObjectEntry();
    w.field("name", p.name);
    w.field("circuitTransform", p.circuitTransform);
    w.field("seconds", p.seconds);
    w.field("gatesBefore", p.gatesBefore);
    w.field("gatesAfter", p.gatesAfter);
    w.field("note", p.note);
    w.endObject();
  }
  w.endArray();

  w.beginArray("perGate");
  for (const auto& g : perGate) {
    w.beginObjectEntry();
    w.field("gate", g.gateIndex);
    w.field("phase", g.phase);
    w.field("seconds", g.seconds);
    w.field("ddSize", g.ddSize);
    w.endObject();
  }
  w.endArray();

  writeMetrics(w, metrics);

  w.beginArray("ewmaLog");
  for (const auto& t : ewmaLog) {
    w.beginObjectEntry();
    w.field("gate", t.gate);
    w.field("ddSize", t.ddSize);
    w.field("ewma", t.ewma);
    w.field("threshold", t.threshold);
    w.field("triggered", t.triggered);
    w.endObject();
  }
  w.endArray();

  w.endObject();
  return w.take();
}

RunReport RunReport::fromJson(std::string_view text) {
  JsonValue root;
  try {
    root = json::parse(text);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string{"RunReport::fromJson: "} +
                                e.what());
  }
  const JsonObject* top = root.object();
  if (top == nullptr) {
    throw std::invalid_argument("RunReport::fromJson: top level not an object");
  }

  RunReport r;
  get(*top, "backend", r.backend);
  get(*top, "circuit", r.circuit);
  get(*top, "qubits", r.qubits);
  get(*top, "gates", r.gates);
  get(*top, "depth", r.depth);
  get(*top, "threads", r.threads);
  getU64(*top, "seed", r.seed);
  get(*top, "simdTier", r.simdTier);
  get(*top, "simdLanes", r.simdLanes);

  if (const auto it = top->find("timings"); it != top->end()) {
    if (const JsonObject* t = it->second.object()) {
      get(*t, "total", r.totalSeconds);
      get(*t, "pipeline", r.pipelineSeconds);
      get(*t, "simulate", r.simulateSeconds);
      get(*t, "ddPhase", r.ddPhaseSeconds);
      get(*t, "dmavPhase", r.dmavPhaseSeconds);
      get(*t, "conversion", r.conversionSeconds);
      get(*t, "fusion", r.fusionSeconds);
      get(*t, "planCompile", r.planCompileSeconds);
      get(*t, "dmavReplay", r.dmavReplaySeconds);
    }
  }
  if (const auto it = top->find("counters"); it != top->end()) {
    if (const JsonObject* c = it->second.object()) {
      get(*c, "converted", r.converted);
      get(*c, "conversionGateIndex", r.conversionGateIndex);
      get(*c, "ddGates", r.ddGates);
      get(*c, "dmavGates", r.dmavGates);
      get(*c, "cachedGates", r.cachedGates);
      get(*c, "cacheHits", r.cacheHits);
      get(*c, "planCacheHits", r.planCacheHits);
      get(*c, "planCacheMisses", r.planCacheMisses);
      get(*c, "planCompiles", r.planCompiles);
      get(*c, "diagRuns", r.diagRuns);
      get(*c, "diagRunGates", r.diagRunGates);
      get(*c, "denseBlockGates", r.denseBlockGates);
      get(*c, "peakDDSize", r.peakDDSize);
      get(*c, "dmavModelCost", r.dmavModelCost);
      get(*c, "reorderCount", r.reorderCount);
      get(*c, "reorderSwaps", r.reorderSwaps);
      get(*c, "ddSizePreReorder", r.ddSizePreReorder);
      get(*c, "ddSizePostReorder", r.ddSizePostReorder);
      get(*c, "reorderSeconds", r.reorderSeconds);
    }
  }
  if (const auto it = top->find("ordering"); it != top->end()) {
    if (const JsonArray* arr = it->second.array()) {
      for (const auto& entry : *arr) {
        r.ordering.push_back(entry.number() != nullptr
                                 ? static_cast<Qubit>(*entry.number())
                                 : Qubit{0});
      }
    }
  }
  if (const auto it = top->find("memory"); it != top->end()) {
    if (const JsonObject* m = it->second.object()) {
      get(*m, "accountedBytes", r.memoryBytes);
      get(*m, "peakRssBytes", r.peakRssBytes);
    }
  }
  if (const auto it = top->find("passes"); it != top->end()) {
    if (const JsonArray* arr = it->second.array()) {
      for (const auto& entry : *arr) {
        if (const JsonObject* p = entry.object()) {
          PassReport pass;
          get(*p, "name", pass.name);
          get(*p, "circuitTransform", pass.circuitTransform);
          get(*p, "seconds", pass.seconds);
          get(*p, "gatesBefore", pass.gatesBefore);
          get(*p, "gatesAfter", pass.gatesAfter);
          get(*p, "note", pass.note);
          r.passes.push_back(std::move(pass));
        }
      }
    }
  }
  if (const auto it = top->find("perGate"); it != top->end()) {
    if (const JsonArray* arr = it->second.array()) {
      for (const auto& entry : *arr) {
        if (const JsonObject* g = entry.object()) {
          GateReport gate;
          get(*g, "gate", gate.gateIndex);
          get(*g, "phase", gate.phase);
          get(*g, "seconds", gate.seconds);
          get(*g, "ddSize", gate.ddSize);
          r.perGate.push_back(std::move(gate));
        }
      }
    }
  }
  if (const auto it = top->find("metrics"); it != top->end()) {
    if (const JsonObject* m = it->second.object()) {
      r.metrics = readMetrics(*m);
    }
  }
  if (const auto it = top->find("ewmaLog"); it != top->end()) {
    if (const JsonArray* arr = it->second.array()) {
      for (const auto& entry : *arr) {
        if (const JsonObject* t = entry.object()) {
          EwmaTickReport tick;
          get(*t, "gate", tick.gate);
          get(*t, "ddSize", tick.ddSize);
          get(*t, "ewma", tick.ewma);
          get(*t, "threshold", tick.threshold);
          get(*t, "triggered", tick.triggered);
          r.ewmaLog.push_back(tick);
        }
      }
    }
  }
  return r;
}

std::string RunReport::toCsv() const {
  std::string csv = "key,value\n";
  auto row = [&csv](std::string_view key, const std::string& value) {
    csv += key;
    csv += ',';
    csv += value;
    csv += '\n';
  };
  row("backend", backend);
  row("circuit", circuit);
  row("qubits", std::to_string(qubits));
  row("gates", std::to_string(gates));
  row("depth", std::to_string(depth));
  row("threads", std::to_string(threads));
  row("seed", std::to_string(seed));
  row("simd_tier", simdTier);
  row("simd_lanes", std::to_string(simdLanes));
  row("total_seconds", numberToString(totalSeconds));
  row("pipeline_seconds", numberToString(pipelineSeconds));
  row("simulate_seconds", numberToString(simulateSeconds));
  row("dd_phase_seconds", numberToString(ddPhaseSeconds));
  row("dmav_phase_seconds", numberToString(dmavPhaseSeconds));
  row("conversion_seconds", numberToString(conversionSeconds));
  row("fusion_seconds", numberToString(fusionSeconds));
  row("plan_compile_ms", numberToString(planCompileSeconds * 1e3));
  row("dmav_replay_ms", numberToString(dmavReplaySeconds * 1e3));
  row("converted", converted ? "1" : "0");
  row("conversion_gate_index", std::to_string(conversionGateIndex));
  row("dd_gates", std::to_string(ddGates));
  row("dmav_gates", std::to_string(dmavGates));
  row("cached_gates", std::to_string(cachedGates));
  row("cache_hits", std::to_string(cacheHits));
  row("plan_cache_hits", std::to_string(planCacheHits));
  row("plan_cache_misses", std::to_string(planCacheMisses));
  row("diag_runs", std::to_string(diagRuns));
  row("diag_run_gates", std::to_string(diagRunGates));
  row("dense_block_gates", std::to_string(denseBlockGates));
  row("peak_dd_size", std::to_string(peakDDSize));
  row("dmav_model_cost", numberToString(dmavModelCost));
  row("reorder_count", std::to_string(reorderCount));
  row("reorder_swaps", std::to_string(reorderSwaps));
  row("dd_size_pre_reorder", std::to_string(ddSizePreReorder));
  row("dd_size_post_reorder", std::to_string(ddSizePostReorder));
  row("reorder_seconds", numberToString(reorderSeconds));
  if (!ordering.empty()) {
    std::string levels;
    for (const Qubit q : ordering) {
      if (!levels.empty()) {
        levels += ' ';
      }
      levels += std::to_string(q);
    }
    row("ordering", levels);
  }
  row("memory_bytes", std::to_string(memoryBytes));
  row("peak_rss_bytes", std::to_string(peakRssBytes));
  if (!metrics.empty()) {
    row("load_imbalance", numberToString(metrics.loadImbalance));
    row("dropped_trace_events", std::to_string(metrics.droppedTraceEvents));
  }
  return csv;
}

std::string RunReport::perGateCsv() const {
  std::string csv = "gate,phase,seconds,dd_size\n";
  for (const auto& g : perGate) {
    csv += std::to_string(g.gateIndex);
    csv += ',';
    csv += g.phase;
    csv += ',';
    csv += numberToString(g.seconds);
    csv += ',';
    csv += std::to_string(g.ddSize);
    csv += '\n';
  }
  return csv;
}

}  // namespace fdd::engine
