#pragma once
// The unified simulation engine: one call runs the circuit-preparation pass
// pipeline, instantiates the requested backend through the factory,
// simulates, and returns a normalized machine-readable RunReport. The
// backend stays alive after run() for amplitude queries, sampling and state
// readout, so front ends never touch a concrete simulator class.

#include <memory>
#include <string>

#include "engine/backend.hpp"
#include "engine/backend_factory.hpp"
#include "engine/options.hpp"
#include "engine/pass_pipeline.hpp"
#include "engine/run_report.hpp"
#include "qc/circuit.hpp"

namespace fdd::engine {

class SimulationEngine {
 public:
  explicit SimulationEngine(EngineOptions options = {});

  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

  /// Prepares `circuit` through the pass pipeline, creates backend
  /// `backendName` via the BackendFactory, simulates, and returns the
  /// report. Throws std::invalid_argument on unknown backend/pass names.
  RunReport run(const std::string& backendName, const qc::Circuit& circuit);

  /// The backend of the most recent run(); throws std::logic_error before
  /// the first run.
  [[nodiscard]] Backend& backend();
  [[nodiscard]] const Backend& backend() const;
  [[nodiscard]] bool hasBackend() const noexcept {
    return backend_ != nullptr;
  }

 private:
  EngineOptions options_;
  std::unique_ptr<Backend> backend_;
};

/// Convenience wrapper: one-shot run, discarding the backend afterwards.
[[nodiscard]] RunReport simulate(const std::string& backendName,
                                 const qc::Circuit& circuit,
                                 const EngineOptions& options = {});

}  // namespace fdd::engine
