#pragma once
// The unified simulation engine. Two modes share one backend instance:
//
//   * One-shot: run() prepares a circuit through the pass pipeline,
//     instantiates the backend, simulates, and returns a RunReport — the
//     original CLI/bench entry point.
//   * Incremental (service sessions): begin() creates the backend on |0..0>
//     with no circuit; apply() streams a gate batch through the pass
//     pipeline into the backend, any number of times, accumulating phase
//     timings; report() snapshots the cumulative RunReport at any point.
//     This is what lets a session apply more gates across requests instead
//     of rebuilding state per call.
//
// In both modes the backend stays alive afterwards for amplitude queries,
// sampling and state readout, so front ends never touch a concrete
// simulator class. Circuit-rewriting passes ("optimize") see one batch at a
// time in incremental mode — cross-batch peephole windows are not fused.

#include <memory>
#include <string>

#include "engine/backend.hpp"
#include "engine/backend_factory.hpp"
#include "engine/options.hpp"
#include "engine/pass_pipeline.hpp"
#include "engine/run_report.hpp"
#include "qc/circuit.hpp"

namespace fdd::engine {

class SimulationEngine {
 public:
  explicit SimulationEngine(EngineOptions options = {});

  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

  /// Prepares `circuit` through the pass pipeline, creates backend
  /// `backendName` via the BackendFactory, simulates, and returns the
  /// report. Throws std::invalid_argument on unknown backend/pass names.
  /// Equivalent to begin() + apply() + report() with an obs-registry reset
  /// first (one-shot runs own the whole observability window).
  RunReport run(const std::string& backendName, const qc::Circuit& circuit);

  /// Starts an incremental session: creates backend `backendName` on
  /// |0...0> with `nQubits` qubits and resets the cumulative report.
  /// Unlike run(), the shared obs registry is left untouched — concurrent
  /// sessions share one observability window owned by the service.
  void begin(const std::string& backendName, Qubit nQubits);

  /// Applies one gate batch from the current state: runs the pass pipeline
  /// on `chunk`, streams it into the backend via Backend::simulate (so
  /// batch-only stages like conversion-point fusion still apply within the
  /// batch), and folds timings/pass records into the cumulative report.
  /// Returns the number of gates applied after the pipeline. Requires
  /// begin() (or a prior run()) — throws std::logic_error otherwise.
  std::size_t apply(const qc::Circuit& chunk);

  /// Snapshot of the cumulative report: identity + accumulated timings plus
  /// the backend's current counters and memory accounting. Cheap enough to
  /// call per request; does not touch the obs registry unless enableObs.
  [[nodiscard]] RunReport report() const;

  /// Total gates applied since begin() (post-pipeline count).
  [[nodiscard]] std::size_t gatesApplied() const noexcept {
    return cumulative_.gates;
  }

  /// The backend of the most recent run()/begin(); throws std::logic_error
  /// before the first one.
  [[nodiscard]] Backend& backend();
  [[nodiscard]] const Backend& backend() const;
  [[nodiscard]] bool hasBackend() const noexcept {
    return backend_ != nullptr;
  }

 private:
  EngineOptions options_;
  std::unique_ptr<Backend> backend_;
  RunReport cumulative_;  // identity + accumulated timings across apply()s
  /// The "ordering" pass scores on the first non-empty gate batch, then
  /// wraps backend_ in an OrderedBackend once; later batches reuse it.
  bool orderingApplied_ = false;
};

/// Convenience wrapper: one-shot run, discarding the backend afterwards.
[[nodiscard]] RunReport simulate(const std::string& backendName,
                                 const qc::Circuit& circuit,
                                 const EngineOptions& options = {});

}  // namespace fdd::engine
