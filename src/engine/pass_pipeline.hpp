#pragma once
// Declarative circuit-preparation pipeline. The passes that used to be
// ad-hoc call sites (the qc peephole optimizer before simulation, the
// conversion-point gate fusion inside FlatDD) are named, ordered and
// toggleable through EngineOptions::passes; each executed pass leaves one
// PassReport entry in the run report.

#include <string>
#include <vector>

#include "engine/options.hpp"
#include "engine/run_report.hpp"
#include "qc/circuit.hpp"

namespace fdd::engine {

class PassPipeline {
 public:
  /// The pass names the pipeline understands, in their canonical order.
  [[nodiscard]] static const std::vector<std::string>& knownPasses();

  [[nodiscard]] static bool isKnownPass(const std::string& name);

  /// Runs options.passes over `circuit` in the given order. Circuit-
  /// rewriting passes ("optimize") transform here; backend-delegated passes
  /// ("fusion-dmav", "fusion-kops") only record that they are armed — the
  /// flatdd backend executes them at its conversion point, other backends
  /// ignore them. Throws std::invalid_argument on an unknown pass name.
  [[nodiscard]] static qc::Circuit run(const qc::Circuit& circuit,
                                       const EngineOptions& options,
                                       RunReport& report);
};

}  // namespace fdd::engine
