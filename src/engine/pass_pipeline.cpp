#include "engine/pass_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/timing.hpp"
#include "qc/optimizer.hpp"

namespace fdd::engine {

const std::vector<std::string>& PassPipeline::knownPasses() {
  static const std::vector<std::string> names{"ordering", "optimize",
                                              "fusion-dmav", "fusion-kops"};
  return names;
}

bool PassPipeline::isKnownPass(const std::string& name) {
  const auto& known = knownPasses();
  return std::find(known.begin(), known.end(), name) != known.end();
}

qc::Circuit PassPipeline::run(const qc::Circuit& circuit,
                              const EngineOptions& options,
                              RunReport& report) {
  qc::Circuit prepared = circuit;
  for (const auto& name : options.passes) {
    if (!isKnownPass(name)) {
      std::string msg = "unknown pass: " + name + " (known:";
      for (const auto& known : knownPasses()) {
        msg += ' ';
        msg += known;
      }
      msg += ')';
      throw std::invalid_argument(msg);
    }

    PassReport entry;
    entry.name = name;
    entry.gatesBefore = prepared.numGates();

    if (name == "optimize") {
      Stopwatch sw;
      qc::OptimizerStats stats;
      prepared = qc::optimize(prepared, {}, &stats);
      entry.seconds = sw.seconds();
      entry.gatesAfter = prepared.numGates();
      entry.note = std::to_string(stats.cancelledPairs) +
                   " pairs cancelled, " +
                   std::to_string(stats.mergedRotations) +
                   " rotations merged, " +
                   std::to_string(stats.droppedIdentities) +
                   " identities dropped";
    } else if (name == "ordering") {
      // Scored at the first gate batch by the engine, which then wraps the
      // backend so inputs/outputs are permuted transparently (the circuit
      // text itself is untouched — relabeling happens inside the wrapper).
      entry.circuitTransform = false;
      entry.gatesAfter = prepared.numGates();
      entry.note = "armed; backend inputs/outputs permuted by the engine";
    } else {
      // fusion-dmav / fusion-kops: armed here, executed by the flatdd
      // backend where the remaining gates are known (its conversion point).
      entry.circuitTransform = false;
      entry.gatesAfter = prepared.numGates();
      entry.note = "armed; executed at the flatdd conversion point";
    }
    report.passes.push_back(std::move(entry));
  }
  return prepared;
}

}  // namespace fdd::engine
