#pragma once
// Scored static qubit ordering (arXiv:2512.01186) and the ordered-backend
// decorator that makes it invisible to callers.
//
// DD size is hostage to variable order: two qubits that interact want to
// sit on adjacent DD levels, and the input circuit's labeling rarely puts
// them there. scoreOrdering() builds a gate-adjacency interaction score at
// circuit-load time and greedily grows a placement that keeps strongly
// interacting qubits close. The engine arms this as the "ordering" pass:
// on the first gate batch it wraps the backend in an OrderedBackend that
// relabels gate targets/controls into the scored order on the way in and
// maps amplitudes, state vectors and samples back through the inverse
// permutation on the way out — so the CLI, service sessions and benches
// never see internal order.

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "engine/backend.hpp"
#include "qc/circuit.hpp"

namespace fdd::engine {

/// A bijection between logical qubits (the circuit's labels) and internal
/// levels (the backend's labels; for every backend here, internal qubit i
/// lives on DD level / index bit i).
struct QubitOrdering {
  std::vector<Qubit> levelOfQubit;  // logical qubit -> internal level
  std::vector<Qubit> qubitAtLevel;  // internal level -> logical qubit

  [[nodiscard]] static QubitOrdering identity(Qubit n);
  /// Builds the inverse array from `qubitAtLevel` (which must be a
  /// permutation of [0, n)).
  [[nodiscard]] static QubitOrdering fromQubitAtLevel(
      std::vector<Qubit> qubitAtLevel);

  [[nodiscard]] Qubit numQubits() const noexcept {
    return static_cast<Qubit>(levelOfQubit.size());
  }
  [[nodiscard]] bool isIdentity() const noexcept;

  /// Basis-state index maps: bit q of a logical index becomes bit
  /// levelOfQubit[q] of the internal index (and back).
  [[nodiscard]] Index mapIndex(Index logical) const noexcept;
  [[nodiscard]] Index unmapIndex(Index internal) const noexcept;

  /// Relabels target and controls into internal order (controls re-sorted —
  /// the Operation invariant).
  [[nodiscard]] qc::Operation mapOperation(const qc::Operation& op) const;
  [[nodiscard]] qc::Circuit mapCircuit(const qc::Circuit& circuit) const;

  /// "q3 q0 q2 q1" — qubitAtLevel from the top level down, for pass notes
  /// and reports.
  [[nodiscard]] std::string toString() const;
};

/// Scores qubit interaction over `circuit` (control-target pairs weigh 1,
/// control-control pairs 0.5) and greedily grows a double-ended placement
/// that keeps heavy pairs on adjacent levels. Deterministic: ties break on
/// first gate use, then on qubit index. Qubits that never interact keep
/// their relative input order at the back.
[[nodiscard]] QubitOrdering scoreOrdering(const qc::Circuit& circuit);

/// Wraps `inner` so callers keep speaking logical qubit labels while the
/// backend simulates in `ordering`'s internal order. fillReport() composes
/// the static permutation with any dynamic reordering the inner backend
/// reports (RunReport::ordering is always logical-qubit-at-internal-level).
[[nodiscard]] std::unique_ptr<Backend> makeOrderedBackend(
    std::unique_ptr<Backend> inner, QubitOrdering ordering);

}  // namespace fdd::engine
