#pragma once
// One options struct for every backend and the circuit-preparation pass
// pipeline. Subsumes the per-simulator option structs: the engine translates
// into ArraySimOptions / FlatDDOptions when it instantiates an adapter, so
// front ends (CLI, benches, examples) configure exactly one thing.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "sim/array_simulator.hpp"

namespace fdd::engine {

/// Pass names understood by the pipeline (see pass_pipeline.hpp):
///   "optimize"     — qc peephole optimizer (inverse cancellation, rotation
///                    merging, identity dropping); rewrites the circuit.
///   "ordering"     — scored static qubit ordering (engine/ordering.hpp);
///                    armed here, the engine wraps the backend in an
///                    OrderedBackend at the first gate batch.
///   "fusion-dmav"  — DMAV-aware gate fusion (Algorithm 3); armed here,
///                    executed by the flatdd backend at its conversion point.
///   "fusion-kops"  — k-operations fusion baseline; armed like fusion-dmav.
struct EngineOptions {
  unsigned threads = 1;
  /// Workers for the parallel DD-phase mat-vec recursion (ISSUE 7). The
  /// flatdd backend treats 0 as "follow `threads`"; the dd backend treats 0
  /// as sequential, preserving the single-threaded DDSIM baseline that
  /// Table 1 compares against. Set explicitly to parallelize the dd backend.
  unsigned ddThreads = 0;
  /// Below this state-vector size per-gate kernels run single-threaded.
  Index parallelThresholdDim = kParallelThresholdDim;
  /// DD package complex-table tolerance (node-merging epsilon).
  fp tolerance = 1e-10;
  /// Seed stamped into the RunReport and used to derive every PRNG tied to
  /// this run (service sessions derive their sampling stream from it), so
  /// sampled shots are reproducible per run/session.
  std::uint64_t seed = 0;

  // ---- EWMA conversion trigger (flatdd backend) -------------------------
  fp ewmaBeta = 0.9;
  fp ewmaEpsilon = 2.0;
  std::size_t ewmaWarmupGates = 8;
  std::size_t ewmaMinDDSize = 64;
  std::optional<std::size_t> forceConversionAtGate;  // override the EWMA

  // ---- dynamic variable reordering (flatdd backend, arXiv:2211.07110) ----
  /// When the EWMA fires, first try a greedy adjacent-level reorder of the
  /// state DD; if it shrinks the DD below `ddReorderKeepRatio` of its size,
  /// stay in the DD phase (conversion deferred) — otherwise convert the
  /// (possibly still smaller) DD.
  bool ddReorder = false;
  /// Cap on accepted reorders per run (each one relabels internal qubits
  /// and invalidates compiled plans via the ordering epoch).
  std::size_t ddMaxReorders = 4;
  /// Conversion is cancelled when nodesAfter <= keepRatio * nodesBefore.
  fp ddReorderKeepRatio = 0.7;

  // ---- DMAV caching (flatdd backend) ------------------------------------
  bool useCostModel = true;
  bool forceCaching = false;
  unsigned kOperations = 4;  // k for the "fusion-kops" pass

  // ---- DMAV plan compiler (flatdd backend) ------------------------------
  /// Execute DMAV through compiled plans from a bounded LRU cache; off
  /// selects the pre-plan recursive path (for ablation benchmarks).
  bool usePlanCache = true;
  std::size_t planCacheCapacity = 64;
  /// Collapse runs of consecutive diagonal gates into one fused DiagRun
  /// sweep during the DMAV phase (simulate() only; requires usePlanCache).
  bool fuseDiagonalRuns = true;
  /// When set, the flatdd backend compiles/replays through this externally
  /// owned PlanCache instead of a private one — the service shares one cache
  /// (and one capacity budget) across all sessions. Must outlive the
  /// backend; see plan_cache.hpp for the sharing contract.
  flat::PlanCache* sharedPlanCache = nullptr;

  // ---- reporting --------------------------------------------------------
  /// Record a per-gate (index, phase, seconds, DD size) trace in the
  /// RunReport. Supported by every backend (normalized trace).
  bool recordPerGate = false;

  /// Enable the observability runtime for this run: the engine turns
  /// obs::setEnabled on, resets the metric registry and trace rings, and
  /// folds the resulting registry snapshot into RunReport.metrics. Requires
  /// the FLATDD_OBS build (silently inert otherwise).
  bool enableObs = false;

  /// Ordered circuit-preparation passes, applied before simulation.
  std::vector<std::string> passes;

  /// The per-simulator views of these options.
  [[nodiscard]] sim::ArraySimOptions toArrayOptions(
      sim::ArrayIndexing indexing) const {
    return sim::ArraySimOptions{.threads = threads,
                                .parallelThresholdDim = parallelThresholdDim,
                                .indexing = indexing};
  }

  [[nodiscard]] flat::FlatDDOptions toFlatOptions() const {
    flat::FlatDDOptions o;
    o.threads = threads;
    o.ddThreads = ddThreads;
    o.beta = ewmaBeta;
    o.epsilon = ewmaEpsilon;
    o.warmupGates = ewmaWarmupGates;
    o.minDDSize = ewmaMinDDSize;
    o.useCostModel = useCostModel;
    o.forceCaching = forceCaching;
    o.kOperations = kOperations;
    o.parallelThresholdDim = parallelThresholdDim;
    o.tolerance = tolerance;
    o.recordPerGate = recordPerGate;
    o.forceConversionAtGate = forceConversionAtGate;
    o.ddReorder = ddReorder;
    o.maxReorders = ddMaxReorders;
    o.reorderKeepRatio = ddReorderKeepRatio;
    o.usePlanCache = usePlanCache;
    o.planCacheCapacity = planCacheCapacity;
    o.fuseDiagonalRuns = fuseDiagonalRuns;
    o.sharedPlanCache = sharedPlanCache;
    // The fusion stage is declared as a pipeline pass; the last fusion-*
    // entry wins (they configure the same conversion-point stage).
    o.fusion = flat::FusionMode::None;
    for (const auto& pass : passes) {
      if (pass == "fusion-dmav") {
        o.fusion = flat::FusionMode::DmavAware;
      } else if (pass == "fusion-kops") {
        o.fusion = flat::FusionMode::KOperations;
      }
    }
    return o;
  }
};

}  // namespace fdd::engine
