// The built-in Backend adapters — thin wrappers translating the uniform
// engine API onto sim::DDSimulator, sim::ArraySimulator (both indexing
// modes) and flat::FlatDDSimulator — plus the BackendFactory registry.

#include <stdexcept>
#include <utility>

#include "common/timing.hpp"
#include "engine/backend_factory.hpp"
#include "flatdd/flatdd_simulator.hpp"
#include "sim/array_simulator.hpp"
#include "sim/dd_simulator.hpp"

namespace fdd::engine {

namespace {

class DDBackend final : public Backend {
 public:
  DDBackend(Qubit nQubits, const EngineOptions& options)
      : sim_{nQubits, options.tolerance}, record_{options.recordPerGate} {
    // Unlike flatdd, ddThreads == 0 stays sequential here: the dd backend is
    // the single-threaded DDSIM baseline and must not silently inherit the
    // run-wide `threads` knob.
    if (options.ddThreads > 1) {
      sim_.setThreads(options.ddThreads);
    }
  }

  [[nodiscard]] std::string name() const override { return "dd"; }
  [[nodiscard]] Qubit numQubits() const override { return sim_.numQubits(); }

  void reset() override {
    sim_.reset();
    trace_.clear();
    seconds_ = 0;
  }
  void setState(std::span<const Complex> amplitudes) override {
    sim_.setState(amplitudes);
  }

  void applyOperation(const qc::Operation& op) override {
    if (!record_) {
      sim_.applyOperation(op);
      return;
    }
    Stopwatch sw;
    sim_.applyOperation(op);
    const double s = sw.seconds();
    seconds_ += s;
    trace_.push_back(GateReport{sim_.gatesApplied() - 1, "dd", s,
                                sim_.stateNodeCount()});
  }

  void simulate(const qc::Circuit& circuit) override {
    if (!record_) {
      sim_.simulate(circuit);
      return;
    }
    for (const auto& op : circuit) {
      applyOperation(op);
    }
  }

  [[nodiscard]] Complex amplitude(Index i) const override {
    return sim_.amplitude(i);
  }
  [[nodiscard]] AlignedVector<Complex> stateVector() const override {
    return sim_.stateVector();
  }
  [[nodiscard]] std::vector<Index> sample(std::size_t shots,
                                          Xoshiro256& rng) const override {
    return sim_.sample(shots, rng);
  }
  [[nodiscard]] std::size_t memoryBytes() const override {
    return sim_.memoryBytes();
  }

  void fillReport(RunReport& report) const override {
    report.ddGates = sim_.gatesApplied();
    report.peakDDSize = sim_.package().stats().peakVNodes;
    if (record_) {
      report.ddPhaseSeconds = seconds_;
      report.perGate = trace_;
    }
  }

  [[nodiscard]] std::string exportDot() const override {
    return sim_.package().toDot(sim_.state());
  }

 private:
  sim::DDSimulator sim_;
  bool record_;
  std::vector<GateReport> trace_;
  double seconds_ = 0;
};

class ArrayBackend final : public Backend {
 public:
  ArrayBackend(Qubit nQubits, const EngineOptions& options,
               sim::ArrayIndexing indexing, std::string name)
      : sim_{nQubits, options.toArrayOptions(indexing)},
        name_{std::move(name)},
        record_{options.recordPerGate} {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] Qubit numQubits() const override { return sim_.numQubits(); }

  void reset() override {
    sim_.reset();
    trace_.clear();
    gates_ = 0;
  }
  void setState(std::span<const Complex> amplitudes) override {
    sim_.setState(amplitudes);
  }

  void applyOperation(const qc::Operation& op) override {
    if (!record_) {
      sim_.applyOperation(op);
      ++gates_;
      return;
    }
    Stopwatch sw;
    sim_.applyOperation(op);
    trace_.push_back(GateReport{gates_++, "array", sw.seconds(), 0});
  }

  void simulate(const qc::Circuit& circuit) override {
    for (const auto& op : circuit) {
      applyOperation(op);
    }
  }

  [[nodiscard]] Complex amplitude(Index i) const override {
    return sim_.amplitude(i);
  }
  [[nodiscard]] AlignedVector<Complex> stateVector() const override {
    return sim_.state();
  }
  [[nodiscard]] std::vector<Index> sample(std::size_t shots,
                                          Xoshiro256& rng) const override {
    std::vector<Index> out;
    out.reserve(shots);
    const fp totalNorm = sim_.norm();  // one scan for all shots
    for (std::size_t s = 0; s < shots; ++s) {
      out.push_back(sim_.sample(rng, totalNorm));
    }
    return out;
  }
  [[nodiscard]] std::size_t memoryBytes() const override {
    return sim_.memoryBytes();
  }

  void fillReport(RunReport& report) const override {
    if (record_) {
      report.perGate = trace_;
    }
  }

 private:
  sim::ArraySimulator sim_;
  std::string name_;
  bool record_;
  std::vector<GateReport> trace_;
  std::size_t gates_ = 0;
};

class FlatDDBackend final : public Backend {
 public:
  FlatDDBackend(Qubit nQubits, const EngineOptions& options)
      : sim_{nQubits, options.toFlatOptions()} {}

  [[nodiscard]] std::string name() const override { return "flatdd"; }
  [[nodiscard]] Qubit numQubits() const override { return sim_.numQubits(); }

  void reset() override { sim_.reset(); }
  void setState(std::span<const Complex> amplitudes) override {
    sim_.setState(amplitudes);
  }

  void applyOperation(const qc::Operation& op) override {
    sim_.applyOperation(op);
  }
  void simulate(const qc::Circuit& circuit) override {
    sim_.simulate(circuit);
  }

  [[nodiscard]] Complex amplitude(Index i) const override {
    return sim_.amplitude(i);
  }
  [[nodiscard]] AlignedVector<Complex> stateVector() const override {
    return sim_.stateVector();
  }
  [[nodiscard]] std::vector<Index> sample(std::size_t shots,
                                          Xoshiro256& rng) const override {
    return sim_.sample(shots, rng);
  }
  [[nodiscard]] std::size_t memoryBytes() const override {
    return sim_.memoryBytes();
  }

  void fillReport(RunReport& report) const override {
    const flat::FlatDDStats& st = sim_.stats();
    report.converted = st.converted;
    report.conversionGateIndex = st.conversionGateIndex;
    report.conversionSeconds = st.conversionSeconds;
    report.ddPhaseSeconds = st.ddPhaseSeconds;
    report.dmavPhaseSeconds = st.dmavPhaseSeconds;
    report.fusionSeconds = st.fusionSeconds;
    report.ddGates = st.ddGates;
    report.dmavGates = st.dmavGates;
    report.cachedGates = st.cachedGates;
    report.cacheHits = st.cacheHits;
    report.planCacheHits = st.planCacheHits;
    report.planCacheMisses = st.planCacheMisses;
    report.planCompiles = st.planCompiles;
    report.diagRuns = st.diagRuns;
    report.diagRunGates = st.diagRunGates;
    report.denseBlockGates = st.denseBlockGates;
    report.planCompileSeconds = st.planCompileSeconds;
    report.dmavReplaySeconds = st.dmavReplaySeconds;
    report.peakDDSize = st.peakDDSize;
    report.reorderCount = st.reorderCount;
    report.reorderSwaps = st.reorderSwaps;
    report.ddSizePreReorder = st.ddSizePreReorder;
    report.ddSizePostReorder = st.ddSizePostReorder;
    report.reorderSeconds = st.reorderSeconds;
    if (st.reorderCount > 0) {
      report.ordering = sim_.qubitAtLevel();
    }
    report.dmavModelCost = st.dmavModelCost;
    report.perGate.clear();
    report.perGate.reserve(st.perGate.size());
    for (const auto& rec : st.perGate) {
      report.perGate.push_back(GateReport{
          rec.gateIndex, rec.inDDPhase ? "dd" : "dmav", rec.seconds,
          rec.ddSize});
    }
    report.ewmaLog.clear();
    report.ewmaLog.reserve(st.ewmaLog.size());
    for (const auto& tick : st.ewmaLog) {
      report.ewmaLog.push_back(EwmaTickReport{tick.gate, tick.ddSize,
                                              tick.ewma, tick.threshold,
                                              tick.triggered});
    }
  }

 private:
  flat::FlatDDSimulator sim_;
};

}  // namespace

BackendFactory& BackendFactory::instance() {
  static BackendFactory factory;
  return factory;
}

BackendFactory::BackendFactory() {
  registerBackend(
      "flatdd",
      "hybrid DD / flat-array simulator (the paper's contribution)",
      [](Qubit n, const EngineOptions& o) {
        return std::make_unique<FlatDDBackend>(n, o);
      });
  registerBackend(
      "dd", "sequential decision-diagram simulator (DDSIM-style baseline)",
      [](Qubit n, const EngineOptions& o) {
        return std::make_unique<DDBackend>(n, o);
      });
  registerBackend(
      "array",
      "threaded array state-vector simulator, O(1) bit-trick indexing",
      [](Qubit n, const EngineOptions& o) {
        return std::make_unique<ArrayBackend>(
            n, o, sim::ArrayIndexing::BitTricks, "array");
      });
  registerBackend(
      "array-mi",
      "array simulator with O(n) multi-index kernels (Quantum++-faithful)",
      [](Qubit n, const EngineOptions& o) {
        return std::make_unique<ArrayBackend>(
            n, o, sim::ArrayIndexing::MultiIndex, "array-mi");
      });
}

void BackendFactory::registerBackend(std::string name, std::string description,
                                     Creator creator) {
  const std::lock_guard lock{mutex_};
  entries_[std::move(name)] =
      Entry{std::move(description), std::move(creator)};
}

std::unique_ptr<Backend> BackendFactory::create(
    std::string_view name, Qubit nQubits, const EngineOptions& options) const {
  // Copy the creator out so backend construction (which may allocate a full
  // state vector) runs without the registry lock.
  Creator creator;
  {
    const std::lock_guard lock{mutex_};
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::string msg = "unknown backend: ";
      msg += name;
      msg += " (registered:";
      for (const auto& [key, entry] : entries_) {
        msg += ' ';
        msg += key;
      }
      msg += ')';
      throw std::invalid_argument(msg);
    }
    creator = it->second.creator;
  }
  return creator(nQubits, options);
}

bool BackendFactory::contains(std::string_view name) const {
  const std::lock_guard lock{mutex_};
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> BackendFactory::registeredNames() const {
  const std::lock_guard lock{mutex_};
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    names.push_back(key);
  }
  return names;
}

std::string BackendFactory::describe(std::string_view name) const {
  const std::lock_guard lock{mutex_};
  const auto it = entries_.find(name);
  return it == entries_.end() ? std::string{} : it->second.description;
}

}  // namespace fdd::engine
