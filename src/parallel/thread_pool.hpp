#pragma once
// A fixed-size thread pool with fork/join semantics. DMAV repeatedly launches
// short parallel regions (one per gate), so two properties matter:
//   * worker threads persist across regions (no thread creation per gate);
//   * region entry/exit latency is minimal — each worker has its own wake
//     slot (only participating workers are signalled) and spins briefly
//     before sleeping, so back-to-back regions avoid the condvar round trip.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fdd::par {

class ThreadPool {
 public:
  /// Creates `threads` logical workers (>= 1). Worker index 0 is the calling
  /// thread itself: run(t, f) executes f(0) on the caller and f(1..t-1) on
  /// pool workers, so a pool of size t uses t OS threads total.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of logical workers (including the caller slot).
  [[nodiscard]] unsigned size() const noexcept { return threads_; }

  /// Runs f(i) for i in [0, t) across the pool and blocks until all finish.
  /// f must be callable concurrently. When t exceeds size(), all t indices
  /// still execute: they are distributed over the available workers (so f
  /// must not rely on all indices running simultaneously, e.g. barriers).
  ///
  /// run() may be called concurrently from multiple threads (e.g. service
  /// jobs executing independent sessions): multi-worker regions serialize on
  /// an internal mutex, so at most one fork/join region is in flight at a
  /// time. Single-worker regions (t == 1) bypass the mutex and stay
  /// wait-free. Nested regions (calling run() from inside f) deadlock — as
  /// they always have (the single job slot) — and remain unsupported.
  ///
  /// While obs::enabled(), every multi-worker region is instrumented: each
  /// worker's busy interval becomes a trace span and accumulates into the
  /// PoolPhaseStats of the phase label active on the launching thread
  /// (obs::PoolPhaseScope), from which per-phase load imbalance is derived.
  void run(unsigned t, const std::function<void(unsigned)>& f);

  /// Splits [begin, end) into contiguous chunks over `t` workers and calls
  /// f(lo, hi) on each nonempty chunk.
  void parallelFor(unsigned t, std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t)>& f);

 private:
  /// Per-worker wake slot: workers wait on their own epoch so launching a
  /// width-t region signals exactly t-1 threads.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
    std::mutex m;
    std::condition_variable cv;
    std::atomic<bool> sleeping{false};
  };

  void workerLoop(unsigned index);
  /// The uninstrumented fork/join core (also the oversubscription recursion
  /// target, so distributed indices are not double-counted).
  void runImpl(unsigned t, const std::function<void(unsigned)>& f);
  /// run() with per-worker busy accounting; only called while obs::enabled().
  void runInstrumented(unsigned t, const std::function<void(unsigned)>& f);

  unsigned threads_;
  std::vector<std::unique_ptr<Slot>> slots_;  // [1, threads_)
  std::vector<std::thread> workers_;
  std::mutex regionMutex_;  // serializes concurrent multi-worker regions

  const std::function<void(unsigned)>* job_ = nullptr;  // valid during a run
  std::atomic<unsigned> pending_{0};
  std::mutex doneMutex_;
  std::condition_variable doneCv_;
  std::atomic<bool> stop_{false};
};

/// Process-wide pool. Default size is the hardware concurrency, overridable
/// with the FLATDD_THREADS environment variable (checked once, on first
/// use). Thread-safe lazy construction; resizePool() is not thread-safe and
/// must be called from a single-threaded context (e.g. the start of main()).
ThreadPool& globalPool();

/// Recreates the global pool with `threads` workers.
void resizePool(unsigned threads);

}  // namespace fdd::par
