#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace fdd::par {

namespace {

inline void cpuRelax() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#endif
}

// Spin iterations before falling back to the condition variable. Short
// enough that a fully loaded machine degrades gracefully, long enough that
// back-to-back gate regions (microseconds apart) never sleep. Spinners
// yield periodically so oversubscribed pools don't starve the workers that
// actually hold work.
constexpr int kSpinIterations = 2048;
constexpr int kSpinsPerYield = 64;

template <typename Pred>
bool spinUntil(Pred&& pred) noexcept {
  for (int spin = 0; spin < kSpinIterations; ++spin) {
    if (pred()) {
      return true;
    }
    if (spin % kSpinsPerYield == kSpinsPerYield - 1) {
      std::this_thread::yield();
    } else {
      cpuRelax();
    }
  }
  return false;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) : threads_{std::max(threads, 1u)} {
  slots_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  for (auto& slot : slots_) {
    {
      std::lock_guard lock{slot->m};
      slot->epoch.fetch_add(1, std::memory_order_release);
    }
    slot->cv.notify_one();
  }
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::run(unsigned t, const std::function<void(unsigned)>& f) {
  assert(t >= 1);
  if (t == 1) {
    f(0);  // single-worker regions run inline, never instrumented
    return;
  }
  // Concurrent callers (independent service jobs) take turns: the pool has
  // one job slot, so a second multi-worker region must wait for the first.
  std::lock_guard regionLock{regionMutex_};
#if FDD_OBS_ENABLED
  if (obs::enabled()) {
    runInstrumented(t, f);
    return;
  }
#endif
  runImpl(t, f);
}

#if FDD_OBS_ENABLED
namespace {
// Cumulative per-worker busy time across all phases; feeds the per-worker
// "pool.busy_us.w<i>" counter tracks in the trace.
std::array<std::atomic<std::uint64_t>, 256> gWorkerBusyNs{};
}  // namespace

void ThreadPool::runInstrumented(unsigned t,
                                 const std::function<void(unsigned)>& f) {
  auto& phase =
      obs::Registry::instance().poolPhase(obs::currentPoolPhase());
  const std::uint64_t regionStart = obs::nowNs();
  const std::function<void(unsigned)> wrapped = [&](unsigned i) {
    const std::uint64_t start = obs::nowNs();
    f(i);
    const std::uint64_t busy = obs::nowNs() - start;
    phase.addBusy(i, busy);
    // The span lands on the executing thread's own ring, so the trace shows
    // which physical worker ran which logical index.
    obs::recordSpan(phase.name(), start, busy);
    if (i < gWorkerBusyNs.size()) {
      const std::uint64_t total =
          gWorkerBusyNs[i].fetch_add(busy, std::memory_order_relaxed) + busy;
      obs::counterEvent(obs::workerBusyCounterName(i),
                        static_cast<double>(total) / 1e3);
    }
  };
  runImpl(t, wrapped);
  phase.addRegion(obs::nowNs() - regionStart, t);
}
#else
void ThreadPool::runInstrumented(unsigned t,
                                 const std::function<void(unsigned)>& f) {
  runImpl(t, f);
}
#endif  // FDD_OBS_ENABLED

void ThreadPool::runImpl(unsigned t, const std::function<void(unsigned)>& f) {
  if (t == 1) {
    f(0);
    return;
  }
  if (t > threads_) {
    // Oversubscribed region (e.g. a caller tuned for more workers than the
    // pool provides): all t logical indices still execute, distributed over
    // the available workers by an atomic work counter.
    std::atomic<unsigned> next{0};
    const std::function<void(unsigned)> distribute = [&](unsigned) {
      for (unsigned i = next.fetch_add(1, std::memory_order_relaxed); i < t;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        f(i);
      }
    };
    runImpl(threads_, distribute);
    return;
  }
  job_ = &f;
  pending_.store(t - 1, std::memory_order_release);
  for (unsigned i = 1; i < t; ++i) {
    Slot& slot = *slots_[i - 1];
    // seq_cst pairs with the worker's seq_cst sleeping-store / epoch-load:
    // either the worker sees the new epoch and skips sleeping, or we see
    // sleeping == true and notify. Weaker orders would allow both sides to
    // read stale values (Dekker) and deadlock.
    slot.epoch.fetch_add(1, std::memory_order_seq_cst);
    if (slot.sleeping.load(std::memory_order_seq_cst)) {
      {
        std::lock_guard lock{slot.m};  // pair with the sleeper's re-check
      }
      slot.cv.notify_one();
    }
  }

  f(0);  // the caller is worker 0

  // Join: spin briefly, then sleep.
  if (spinUntil(
          [this] { return pending_.load(std::memory_order_acquire) == 0; })) {
    job_ = nullptr;
    return;
  }
  std::unique_lock lock{doneMutex_};
  doneCv_.wait(lock,
               [this] { return pending_.load(std::memory_order_acquire) == 0; });
  job_ = nullptr;
}

void ThreadPool::parallelFor(
    unsigned t, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& f) {
  const std::size_t total = end - begin;
  if (total == 0) {
    return;
  }
  t = static_cast<unsigned>(std::min<std::size_t>(std::max(t, 1u), total));
  const std::size_t chunk = (total + t - 1) / t;
  run(t, [&](unsigned i) {
    const std::size_t lo = begin + i * chunk;
    const std::size_t hi = std::min(lo + chunk, end);
    if (lo < hi) {
      f(lo, hi);
    }
  });
}

void ThreadPool::workerLoop(unsigned index) {
  // Deferred label: the trace ring (if one is ever created on this thread)
  // shows up in Perfetto as "pool.worker-<i>".
  obs::setThreadName(
      obs::internName("pool.worker-" + std::to_string(index)));
  Slot& slot = *slots_[index - 1];
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for our epoch to advance: spin first, then sleep.
    const bool advanced = spinUntil([&] {
      return slot.epoch.load(std::memory_order_acquire) != seen;
    });
    if (!advanced) {
      slot.sleeping.store(true, std::memory_order_seq_cst);
      std::unique_lock lock{slot.m};
      slot.cv.wait(lock, [&] {
        return slot.epoch.load(std::memory_order_seq_cst) != seen;
      });
      slot.sleeping.store(false, std::memory_order_seq_cst);
    }
    seen = slot.epoch.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    (*job_)(index);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      {
        std::lock_guard lock{doneMutex_};  // pair with the joiner's wait
      }
      doneCv_.notify_one();
    }
  }
}

namespace {
std::unique_ptr<ThreadPool>& poolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

ThreadPool& globalPool() {
  auto& slot = poolSlot();
  if (!slot) {
    unsigned threads = std::max(1u, std::thread::hardware_concurrency());
    // FLATDD_THREADS overrides the hardware default (benchmark sweeps, CI
    // runners where hardware_concurrency lies about the usable cores).
    if (const char* env = std::getenv("FLATDD_THREADS"); env != nullptr) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0 && parsed <= 4096) {
        threads = static_cast<unsigned>(parsed);
      }
    }
    slot = std::make_unique<ThreadPool>(threads);
  }
  return *slot;
}

void resizePool(unsigned threads) {
  poolSlot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace fdd::par
