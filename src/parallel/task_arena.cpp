#include "parallel/task_arena.hpp"

#include <algorithm>
#include <thread>

namespace fdd::par {

namespace {

inline void cpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Help-recursion depth of the calling thread across all arenas (at most one
/// arena is active per thread under the structured fork/join discipline).
thread_local int tHelpDepth = 0;

}  // namespace

void TaskArena::run(ThreadPool& pool, unsigned threads,
                    const std::function<void()>& root) {
  rootDone_.store(false, std::memory_order_relaxed);
  pool.run(threads, [&](unsigned worker) {
    if (worker == 0) {
      root();
      // Root has joined every spawn transitively, so the queue is empty and
      // no task is in flight; release the helper workers.
      rootDone_.store(true, std::memory_order_release);
      return;
    }
    // Helpers drain the queue until the root retires. Spin briefly between
    // polls: regions last one gate application, so sleeping is not worth it
    // (the pool itself parks workers between regions).
    while (!rootDone_.load(std::memory_order_acquire)) {
      if (Task* task = pop()) {
        execute(*task);
      } else {
        cpuRelax();
      }
    }
  });
}

void TaskArena::spawn(Task& task) {
  const std::lock_guard<std::mutex> lock{mutex_};
  queue_.push_back(&task);
}

void TaskArena::join(Task& task) {
  if (task.done_.load(std::memory_order_acquire)) {
    return;
  }
  if (popSpecific(task)) {
    // Nobody claimed it: run inline, exactly as sequential recursion would.
    execute(task);
    return;
  }
  // Another worker owns it. Help with unrelated tasks while waiting, but cap
  // the extra stack frames so maximal fan-out cannot overflow the stack.
  while (!task.done_.load(std::memory_order_acquire)) {
    Task* other = tHelpDepth < kMaxHelpDepth ? pop() : nullptr;
    if (other != nullptr) {
      ++tHelpDepth;
      execute(*other);
      --tHelpDepth;
    } else {
      cpuRelax();
    }
  }
}

void TaskArena::execute(Task& task) {
  task.invoke_(task.ctx_);
  task.done_.store(true, std::memory_order_release);
}

TaskArena::Task* TaskArena::pop() {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (queue_.empty()) {
    return nullptr;
  }
  Task* task = queue_.back();
  queue_.pop_back();
  return task;
}

bool TaskArena::popSpecific(Task& task) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = std::find(queue_.begin(), queue_.end(), &task);
  if (it == queue_.end()) {
    return false;
  }
  // LIFO order is a heuristic, not a contract — swap-remove is fine.
  *it = queue_.back();
  queue_.pop_back();
  return true;
}

}  // namespace fdd::par
