#pragma once
// Structured fork/join task arena layered on the ThreadPool, built for the
// DD phase's irregular recursion: DMAV's parallelFor splits an index range
// statically, but mat-vec recursion over a DD spawns work whose shape is
// only discovered while descending. A TaskArena turns one pool region into
// a shared LIFO task queue that every participating worker drains.
//
// Usage (inside one gate application):
//
//   TaskArena arena;
//   arena.run(globalPool(), threads, [&] {
//     LambdaTask left{[&] { l = recurse(...); }};
//     arena.spawn(left.task());
//     r = recurse(...);              // other half inline
//     arena.join(left.task());      // run-inline / help / wait
//   });
//
// Properties:
//  * Tasks live on the spawner's stack (LambdaTask); spawn/join cost is one
//    mutex push/pop — no allocation on the fork path.
//  * join() first tries to pop the awaited task and run it inline (the
//    common case: nobody stole it yet, so fork/join degrades to plain
//    recursion). If another worker claimed it, the joiner helps by running
//    *other* queued tasks while it waits, bounded by kMaxHelpDepth so
//    helping cannot grow the stack without bound at maximal fan-out
//    (FLATDD_DD_GRAIN=0).
//  * Deadlock-free: a task is executed only by whoever pops it from the
//    queue (pop under the mutex is exclusive ownership), so every chain of
//    waiting joiners terminates at a worker that is making progress inside
//    a task body.
//  * One arena is single-use per run(); run() may be called repeatedly.
//    Nested run() (from inside a task) is unsupported, like ThreadPool.

#include <atomic>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace fdd::par {

class TaskArena {
 public:
  /// A unit of work. Stack-allocated by the spawner (see LambdaTask); must
  /// outlive its join(), which the structured fork/join discipline ensures.
  class Task {
   public:
    Task(void (*invoke)(void*), void* ctx) noexcept
        : invoke_{invoke}, ctx_{ctx} {}

   private:
    friend class TaskArena;
    void (*invoke_)(void*);
    void* ctx_;
    std::atomic<bool> done_{false};
  };

  /// How many other-task frames a blocked join() may stack while helping.
  static constexpr int kMaxHelpDepth = 64;

  /// Executes `root` on the calling thread with `threads - 1` pool workers
  /// draining spawned tasks alongside it; returns when root has returned
  /// (all spawns joined) and the queue is empty.
  void run(ThreadPool& pool, unsigned threads,
           const std::function<void()>& root);

  /// Publishes a task for any participating worker. Only valid inside run().
  void spawn(Task& task);

  /// Blocks until `task` has executed; runs it inline when still queued.
  void join(Task& task);

 private:
  void execute(Task& task);
  /// Pops the most recently spawned task (LIFO: children before parents,
  /// which keeps the queue shallow and the working set hot).
  Task* pop();
  /// Removes `task` from the queue if still there (exclusive claim).
  bool popSpecific(Task& task);

  std::mutex mutex_;
  std::vector<Task*> queue_;          // guarded by mutex_
  std::atomic<bool> rootDone_{false};
};

/// Wraps a callable into a stack Task: `LambdaTask t{[&]{ ... }};`.
template <typename F>
class LambdaTask {
 public:
  explicit LambdaTask(F f) : f_{std::move(f)}, task_{&LambdaTask::call, this} {}

  LambdaTask(const LambdaTask&) = delete;
  LambdaTask& operator=(const LambdaTask&) = delete;

  [[nodiscard]] TaskArena::Task& task() noexcept { return task_; }

 private:
  static void call(void* self) { static_cast<LambdaTask*>(self)->f_(); }
  F f_;
  TaskArena::Task task_;
};

template <typename F>
LambdaTask(F) -> LambdaTask<F>;

}  // namespace fdd::par
