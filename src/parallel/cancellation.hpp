#pragma once
// Cooperative cancellation for asynchronously submitted work. A CancelSource
// owns the request flag; the CancelTokens it hands out are cheap copyable
// views that job bodies poll at safe points (between gates, between sample
// batches). A token can also carry a deadline, so "cancelled" uniformly
// means "stop as soon as convenient" whether the client asked for it or the
// job ran out of budget. Nothing here preempts running code — cancellation
// is only as prompt as the polling granularity of the job body.

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

namespace fdd::par {

namespace detail {
struct CancelFlag {
  std::atomic<bool> requested{false};
};
}  // namespace detail

/// View over a CancelSource's flag, optionally bounded by a deadline.
/// Default-constructed tokens are never cancelled (for synchronous paths).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(std::shared_ptr<const detail::CancelFlag> flag,
              std::optional<Clock::time_point> deadline)
      : flag_{std::move(flag)}, deadline_{deadline} {}

  /// True once cancellation was requested or the deadline has passed.
  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_ != nullptr && flag_->requested.load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline_.has_value() && Clock::now() >= *deadline_;
  }

  /// True when cancellation was explicitly requested (deadline not counted).
  [[nodiscard]] bool cancelRequested() const noexcept {
    return flag_ != nullptr &&
           flag_->requested.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::optional<Clock::time_point> deadline() const noexcept {
    return deadline_;
  }

 private:
  std::shared_ptr<const detail::CancelFlag> flag_;
  std::optional<Clock::time_point> deadline_;
};

/// The requesting side. Copies share the same flag.
class CancelSource {
 public:
  CancelSource() : flag_{std::make_shared<detail::CancelFlag>()} {}

  void requestCancel() noexcept {
    flag_->requested.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelRequested() const noexcept {
    return flag_->requested.load(std::memory_order_relaxed);
  }

  [[nodiscard]] CancelToken token(
      std::optional<CancelToken::Clock::time_point> deadline =
          std::nullopt) const {
    return CancelToken{flag_, deadline};
  }

 private:
  std::shared_ptr<detail::CancelFlag> flag_;
};

}  // namespace fdd::par
