#pragma once
// Periodic resident-set-size sampler: a lightweight thread that reads
// /proc/self/status every `intervalMs` and publishes the value as (a) an
// "rss.bytes" counter track in the trace and (b) the "rss.bytes" gauge in
// the metrics registry. Replaces the single end-of-run peakRssBytes as the
// only memory signal — the trace shows *when* memory moved (DD blow-up,
// conversion's 2^n allocation, workspace growth), not just how high.
//
// stop() joins the thread; call it before exportChromeTrace() so the export
// sees a quiescent ring (the sampler records on its own ring).

#include <cstdint>
#include <thread>

#include "obs/trace.hpp"

namespace fdd::obs {

class RssSampler {
 public:
  RssSampler() = default;
  ~RssSampler() { stop(); }

  RssSampler(const RssSampler&) = delete;
  RssSampler& operator=(const RssSampler&) = delete;

  /// Starts sampling every `intervalMs` (no-op if already running, if the
  /// interval is 0, or when FDD_OBS_ENABLED is off).
  void start(std::uint64_t intervalMs = 10);

  /// Stops and joins the sampler thread (idempotent). Takes one final
  /// sample first so short runs still get an end-of-run data point.
  void stop();

  [[nodiscard]] bool running() const noexcept { return thread_.joinable(); }

 private:
#if FDD_OBS_ENABLED
  void loop(std::uint64_t intervalMs);
  std::atomic<bool> stop_{false};
#endif
  std::thread thread_;
};

}  // namespace fdd::obs
