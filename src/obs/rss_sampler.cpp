#include "obs/rss_sampler.hpp"

#if FDD_OBS_ENABLED

#include <chrono>

#include "common/rss.hpp"
#include "obs/metrics.hpp"

namespace fdd::obs {

namespace {

void sampleOnce() {
  const double bytes = static_cast<double>(currentRSS());
  counterEvent("rss.bytes", bytes);
  static Gauge& gauge = Registry::instance().gauge("rss.bytes");
  gauge.set(bytes);
}

}  // namespace

void RssSampler::start(std::uint64_t intervalMs) {
  if (thread_.joinable() || intervalMs == 0) {
    return;
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this, intervalMs] { loop(intervalMs); });
}

void RssSampler::loop(std::uint64_t intervalMs) {
  setThreadName("obs.rss-sampler");
  while (!stop_.load(std::memory_order_relaxed)) {
    sampleOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
  }
  sampleOnce();  // final end-of-run data point
}

void RssSampler::stop() {
  if (!thread_.joinable()) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
}

}  // namespace fdd::obs

#else

namespace fdd::obs {

void RssSampler::start(std::uint64_t) {}
void RssSampler::stop() {}

}  // namespace fdd::obs

#endif  // FDD_OBS_ENABLED
