#include "obs/trace.hpp"

#if FDD_OBS_ENABLED

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace fdd::obs {

namespace detail {
std::atomic<bool> gEnabled{false};
}

namespace {

std::atomic<std::size_t> gRingCapacity{16384};

/// Single-writer event ring. The owning thread is the only writer; readers
/// (export/clear) run at quiescent points, so `head` alone orders access.
struct TraceRing {
  TraceRing(std::uint32_t tid, std::size_t capacity)
      : tid{tid}, events(capacity > 0 ? capacity : 1) {}

  void push(const TraceEvent& e) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    events[h % events.size()] = e;
    head.store(h + 1, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    return h > events.size() ? h - events.size() : 0;
  }

  const std::uint32_t tid;
  const char* label = nullptr;
  std::vector<TraceEvent> events;
  std::atomic<std::uint64_t> head{0};  // total events ever written
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceRing>> rings;  // never removed
  std::uint32_t nextTid = 0;
};

TraceRegistry& registry() {
  static TraceRegistry reg;
  return reg;
}

thread_local std::shared_ptr<TraceRing> tlsRing;
thread_local const char* tlsPendingName = nullptr;
thread_local std::uint64_t tlsRequestId = 0;

TraceRing& ring() {
  if (!tlsRing) {
    auto& reg = registry();
    std::lock_guard lock{reg.mutex};
    auto r = std::make_shared<TraceRing>(
        ++reg.nextTid, gRingCapacity.load(std::memory_order_relaxed));
    r->label = tlsPendingName;
    reg.rings.push_back(r);
    tlsRing = std::move(r);
  }
  return *tlsRing;
}

}  // namespace

void setEnabled(bool on) noexcept {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

std::uint64_t nowNs() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

std::uint32_t currentThreadId() { return ring().tid; }

void setThreadName(const char* name) noexcept {
  if (tlsRing) {
    tlsRing->label = name;
  } else {
    // Defer — creating the ring here would allocate its event buffer for
    // threads that may never record anything (e.g. idle pool workers).
    tlsPendingName = name;
  }
}

const char* internName(const std::string& name) {
  // Deliberately leaked: pool/service worker threads can intern names while
  // main's static destructors run, so the table must outlive every thread,
  // not just main.
  static auto* mutex = new std::mutex;
  static auto* storage = new std::unordered_set<std::string>;
  std::lock_guard lock{*mutex};
  return storage->insert(name).first->c_str();
}

std::uint64_t currentRequestId() noexcept { return tlsRequestId; }

void setCurrentRequestId(std::uint64_t id) noexcept { tlsRequestId = id; }

void recordSpan(const char* name, std::uint64_t startNs,
                std::uint64_t durNs) noexcept {
  recordSpan(name, startNs, durNs, tlsRequestId);
}

void recordSpan(const char* name, std::uint64_t startNs, std::uint64_t durNs,
                std::uint64_t requestId) noexcept {
  if (!enabled()) {
    return;
  }
  TraceRing& r = ring();
  r.push(TraceEvent{name, startNs, durNs, 0, 0, requestId, r.tid,
                    EventType::Span});
}

void counterEvent(const char* name, double value) noexcept {
  if (!enabled()) {
    return;
  }
  TraceRing& r = ring();
  r.push(TraceEvent{name, nowNs(), 0, value, 0, 0, r.tid, EventType::Counter});
}

void instantEvent(const char* name, double value, double value2,
                  std::uint64_t aux) noexcept {
  if (!enabled()) {
    return;
  }
  TraceRing& r = ring();
  r.push(TraceEvent{name, nowNs(), 0, value, value2, aux, r.tid,
                    EventType::Instant});
}

void setRingCapacity(std::size_t events) noexcept {
  gRingCapacity.store(events > 0 ? events : 1, std::memory_order_relaxed);
}

std::size_t droppedEvents() noexcept {
  auto& reg = registry();
  std::lock_guard lock{reg.mutex};
  std::size_t total = 0;
  for (const auto& r : reg.rings) {
    total += r->dropped();
  }
  return total;
}

void clearTrace() noexcept {
  auto& reg = registry();
  std::lock_guard lock{reg.mutex};
  for (const auto& r : reg.rings) {
    r->head.store(0, std::memory_order_release);
  }
}

void TraceScope::finish() noexcept {
  const std::uint64_t dur = nowNs() - start_;
  recordSpan(name_, start_, dur);
  if (hist_ != nullptr) {
    hist_->record(dur);
  }
}

namespace {

std::string exportChromeTraceImpl(bool live) {
  // Snapshot the ring list under the lock; the events themselves are read
  // lock-free (quiescence is the caller's contract — except in live mode,
  // where overwritten-during-copy events are detected and dropped below).
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    auto& reg = registry();
    std::lock_guard lock{reg.mutex};
    rings = reg.rings;
  }

  json::Writer w;
  w.beginObject();
  w.beginArray("traceEvents");

  std::size_t dropped = 0;
  for (const auto& r : rings) {
    // Thread-name metadata event so Perfetto labels the track.
    w.beginObjectEntry();
    w.field("name", "thread_name");
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", r->tid);
    w.beginObjectIn("args");
    w.field("name", r->label != nullptr
                        ? std::string_view{r->label}
                        : std::string_view{"thread-" +
                                           std::to_string(r->tid)});
    w.endObject();
    w.endObject();

    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t cap = r->events.size();
    std::uint64_t first = head > cap ? head - cap : 0;
    std::vector<TraceEvent> copied;
    if (live) {
      // Copy the window, then re-read the head: any slot the writer
      // advanced over during the copy belongs to an event index below the
      // new head-minus-capacity line and is discarded as torn.
      copied.assign(r->events.begin(), r->events.end());
      const std::uint64_t head2 = r->head.load(std::memory_order_acquire);
      const std::uint64_t safeFirst = head2 > cap ? head2 - cap : 0;
      first = std::max(first, safeFirst);
    }
    dropped += first;
    for (std::uint64_t i = first; i < head; ++i) {
      const TraceEvent& e = live ? copied[i % cap] : r->events[i % cap];
      w.beginObjectEntry();
      w.field("name", e.name != nullptr ? e.name : "?");
      switch (e.type) {
        case EventType::Span:
          w.field("ph", "X");
          w.field("ts", static_cast<double>(e.startNs) / 1e3);
          w.field("dur", static_cast<double>(e.durNs) / 1e3);
          break;
        case EventType::Counter:
          w.field("ph", "C");
          w.field("ts", static_cast<double>(e.startNs) / 1e3);
          break;
        case EventType::Instant:
          w.field("ph", "i");
          w.field("ts", static_cast<double>(e.startNs) / 1e3);
          w.field("s", "t");  // thread-scoped instant
          break;
      }
      w.field("pid", 1);
      w.field("tid", e.tid);
      if (e.type == EventType::Span) {
        // Spans carry the request context in aux; emit it as a span arg so
        // Perfetto shows it and trace_summarize can group by request. The
        // id is written as a decimal string — JSON numbers are doubles and
        // drop bits above 2^53.
        if (e.aux != 0) {
          w.beginObjectIn("args");
          w.field("request_id", std::to_string(e.aux));
          w.endObject();
        }
      } else {
        w.beginObjectIn("args");
        w.field("value", e.value);
        if (e.type == EventType::Instant) {
          w.field("value2", e.value2);
          w.field("aux", e.aux);
        }
        w.endObject();
      }
      w.endObject();
    }
  }
  w.endArray();
  w.field("displayTimeUnit", "ms");
  w.beginObjectIn("otherData");
  w.field("droppedEvents", dropped);
  w.endObject();
  w.endObject();
  return w.take();
}

}  // namespace

std::string exportChromeTrace() { return exportChromeTraceImpl(false); }

std::string exportChromeTraceLive() { return exportChromeTraceImpl(true); }

}  // namespace fdd::obs

#endif  // FDD_OBS_ENABLED
