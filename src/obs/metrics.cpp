#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace fdd::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::uint64_t Histogram::quantileNs(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  const std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total - 1));  // 0-based
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen > rank) {
      // Upper bound of bucket b: values v with bit_width(v) == b.
      return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
    }
  }
  return maxNs();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sumNs_.store(0, std::memory_order_relaxed);
  minNs_.store(kNoMin, std::memory_order_relaxed);
  maxNs_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Pool phase bookkeeping
// ---------------------------------------------------------------------------

void PoolPhaseStats::reset() noexcept {
  for (auto& b : busyNs_) {
    b.store(0, std::memory_order_relaxed);
  }
  regions_.store(0, std::memory_order_relaxed);
  wallNs_.store(0, std::memory_order_relaxed);
  maxWorkers_.store(0, std::memory_order_relaxed);
}

namespace {
constexpr const char* kDefaultPoolPhase = "pool";
thread_local const char* tlsPoolPhase = kDefaultPoolPhase;
}  // namespace

PoolPhaseScope::PoolPhaseScope(const char* phase) noexcept
    : previous_{tlsPoolPhase} {
  tlsPoolPhase = phase;
}

PoolPhaseScope::~PoolPhaseScope() { tlsPoolPhase = previous_; }

const char* currentPoolPhase() noexcept { return tlsPoolPhase; }

const char* workerBusyCounterName(unsigned worker) {
  static std::mutex mutex;
  static std::vector<const char*> names;
  std::lock_guard lock{mutex};
  while (names.size() <= worker) {
    names.push_back(
        internName("pool.busy_us.w" + std::to_string(names.size())));
  }
  return names[worker];
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mutex;
  // Node-based maps: element addresses are stable across inserts, which is
  // what lets call sites cache references in function-local statics.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<PoolPhaseStats>, std::less<>> phases;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  // Deliberately leaked: worker threads may bump a cached Counter& while
  // main's static destructors run, so the instruments must never die.
  static auto* impl = new Impl;
  return *impl;
}

namespace {

template <typename Map, typename... Args>
auto& findOrCreate(std::mutex& mutex, Map& map, std::string_view name,
                   Args&&... args) {
  std::lock_guard lock{mutex};
  if (const auto it = map.find(name); it != map.end()) {
    return *it->second;
  }
  auto& slot = map[std::string{name}];
  slot = std::make_unique<typename Map::mapped_type::element_type>(
      std::forward<Args>(args)...);
  return *slot;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  auto& i = impl();
  return findOrCreate(i.mutex, i.counters, name);
}

Gauge& Registry::gauge(std::string_view name) {
  auto& i = impl();
  return findOrCreate(i.mutex, i.gauges, name);
}

Histogram& Registry::histogram(std::string_view name) {
  auto& i = impl();
  return findOrCreate(i.mutex, i.histograms, name);
}

PoolPhaseStats& Registry::poolPhase(std::string_view name) {
  auto& i = impl();
  return findOrCreate(i.mutex, i.phases, name, std::string{name});
}

ObsSnapshot Registry::snapshot() const {
  auto& i = impl();
  std::lock_guard lock{i.mutex};
  ObsSnapshot snap;
  for (const auto& [name, c] : i.counters) {
    if (c->value() != 0) {
      snap.counters.push_back(CounterSnapshot{name, c->value()});
    }
  }
  for (const auto& [name, g] : i.gauges) {
    if (g->value() != 0) {
      snap.gauges.push_back(GaugeSnapshot{name, g->value()});
    }
  }
  for (const auto& [name, h] : i.histograms) {
    if (h->count() == 0) {
      continue;
    }
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sumNs = h->sumNs();
    hs.minNs = h->minNs();
    hs.maxNs = h->maxNs();
    hs.p50Ns = h->quantileNs(0.50);
    hs.p99Ns = h->quantileNs(0.99);
    std::size_t top = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h->bucket(b) != 0) {
        top = b + 1;
      }
    }
    hs.buckets.reserve(top);
    for (std::size_t b = 0; b < top; ++b) {
      hs.buckets.push_back(h->bucket(b));
    }
    snap.histograms.push_back(std::move(hs));
  }
  for (const auto& [name, p] : i.phases) {
    if (p->regions() == 0) {
      continue;
    }
    PoolPhaseSnapshot ps;
    ps.phase = name;
    ps.regions = p->regions();
    ps.wallSeconds = static_cast<double>(p->wallNs()) / 1e9;
    const unsigned workers = std::min(p->workers(),
                                      PoolPhaseStats::kMaxWorkers);
    double maxBusy = 0;
    double sumBusy = 0;
    ps.busySeconds.reserve(workers);
    for (unsigned wkr = 0; wkr < workers; ++wkr) {
      const double busy = static_cast<double>(p->busyNs(wkr)) / 1e9;
      ps.busySeconds.push_back(busy);
      maxBusy = std::max(maxBusy, busy);
      sumBusy += busy;
    }
    const double meanBusy =
        workers > 0 ? sumBusy / static_cast<double>(workers) : 0;
    ps.imbalance = meanBusy > 0 ? maxBusy / meanBusy : 0;
    snap.poolPhases.push_back(std::move(ps));
  }
  snap.droppedTraceEvents = droppedEvents();
  return snap;
}

void Registry::reset() noexcept {
  auto& i = impl();
  std::lock_guard lock{i.mutex};
  for (const auto& [name, c] : i.counters) {
    c->reset();
  }
  for (const auto& [name, g] : i.gauges) {
    g->reset();
  }
  for (const auto& [name, h] : i.histograms) {
    h->reset();
  }
  for (const auto& [name, p] : i.phases) {
    p->reset();
  }
}

double ObsSnapshot::worstImbalance() const noexcept {
  double worst = 0;
  for (const auto& p : poolPhases) {
    worst = std::max(worst, p.imbalance);
  }
  return worst;
}

}  // namespace fdd::obs
