#pragma once
// Process-wide counter/gauge/histogram registry and thread-pool load
// accounting (the metrics half of the observability runtime; see
// obs/trace.hpp for the trace rings and the compile/runtime switches).
//
// Metric objects are registered once by name (node-stable references, so
// call sites cache them in a function-local static) and mutated with single
// relaxed atomics on the hot path. While obs::enabled() is false every
// mutator is a load+branch no-op, so instrumentation can stay compiled in.
//
// PoolPhaseStats is fed by par::ThreadPool: every instrumented fork/join
// region accumulates per-worker busy nanoseconds and region wall time under
// the phase label active on the launching thread (PoolPhaseScope). The
// snapshot derives the per-phase load-imbalance ratio (max worker busy /
// mean worker busy) that the paper's Fig. 12 analysis needs.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace fdd::obs {

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) {
      v_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins gauge (doubles stored bit-cast in an atomic word).
class Gauge {
 public:
  void set(double v) noexcept {
    if (enabled()) {
      bits_.store(std::bit_cast<std::uint64_t>(v),
                  std::memory_order_relaxed);
    }
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { bits_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> bits_{0};  // bit pattern of +0.0
};

/// Log2-bucketed latency histogram over nanoseconds: bucket b counts values
/// with bit_width(v) == b (bucket 0: v == 0; bucket b: [2^(b-1), 2^b)).
/// Tracks count / sum / min / max exactly; quantiles are estimated from the
/// bucket boundaries (good to a factor of 2, which is what a log-scale
/// latency distribution needs).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t ns) noexcept {
    if (!enabled()) {
      return;
    }
    const unsigned b = static_cast<unsigned>(std::bit_width(ns));  // 0..64
    buckets_[b < kBuckets ? b : kBuckets - 1].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumNs_.fetch_add(ns, std::memory_order_relaxed);
    atomicMin(minNs_, ns);
    atomicMax(maxNs_, ns);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sumNs() const noexcept {
    return sumNs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t minNs() const noexcept {
    const std::uint64_t v = minNs_.load(std::memory_order_relaxed);
    return v == kNoMin ? 0 : v;
  }
  [[nodiscard]] std::uint64_t maxNs() const noexcept {
    return maxNs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Upper bound of the bucket holding quantile q (0 < q <= 1), in ns.
  [[nodiscard]] std::uint64_t quantileNs(double q) const noexcept;

  void reset() noexcept;

 private:
  static constexpr std::uint64_t kNoMin = ~std::uint64_t{0};

  static void atomicMin(std::atomic<std::uint64_t>& a,
                        std::uint64_t v) noexcept {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomicMax(std::atomic<std::uint64_t>& a,
                        std::uint64_t v) noexcept {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sumNs_{0};
  std::atomic<std::uint64_t> minNs_{kNoMin};
  std::atomic<std::uint64_t> maxNs_{0};
};

// ---------------------------------------------------------------------------
// Thread-pool load accounting
// ---------------------------------------------------------------------------

/// Per-phase accumulator of fork/join regions: per-worker busy time, region
/// count and summed wall time. Workers write their own slot concurrently;
/// region bookkeeping happens on the launching thread between regions.
class PoolPhaseStats {
 public:
  static constexpr unsigned kMaxWorkers = 256;

  explicit PoolPhaseStats(std::string name) : name_{std::move(name)} {}

  /// Stable for the registry's lifetime — usable as a TraceEvent name.
  [[nodiscard]] const char* name() const noexcept { return name_.c_str(); }

  void addBusy(unsigned worker, std::uint64_t ns) noexcept {
    if (worker < kMaxWorkers) {
      busyNs_[worker].fetch_add(ns, std::memory_order_relaxed);
    }
  }
  void addRegion(std::uint64_t wallNs, unsigned workers) noexcept {
    regions_.fetch_add(1, std::memory_order_relaxed);
    wallNs_.fetch_add(wallNs, std::memory_order_relaxed);
    unsigned cur = maxWorkers_.load(std::memory_order_relaxed);
    while (workers > cur && !maxWorkers_.compare_exchange_weak(
                                cur, workers, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t regions() const noexcept {
    return regions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wallNs() const noexcept {
    return wallNs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] unsigned workers() const noexcept {
    return maxWorkers_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t busyNs(unsigned worker) const noexcept {
    return worker < kMaxWorkers
               ? busyNs_[worker].load(std::memory_order_relaxed)
               : 0;
  }

  void reset() noexcept;

 private:
  std::string name_;
  std::array<std::atomic<std::uint64_t>, kMaxWorkers> busyNs_{};
  std::atomic<std::uint64_t> regions_{0};
  std::atomic<std::uint64_t> wallNs_{0};
  std::atomic<unsigned> maxWorkers_{0};
};

/// Phase label for pool regions launched by the calling thread ("dmav.
/// replay", "conversion", ...). Scoped; restores the previous label (default
/// "pool") on destruction. The pointer must be a literal or interned.
class PoolPhaseScope {
 public:
  explicit PoolPhaseScope(const char* phase) noexcept;
  ~PoolPhaseScope();
  PoolPhaseScope(const PoolPhaseScope&) = delete;
  PoolPhaseScope& operator=(const PoolPhaseScope&) = delete;

 private:
  const char* previous_;
};

[[nodiscard]] const char* currentPoolPhase() noexcept;

/// Interned "pool.busy_us.w<i>" — the per-worker busy counter track name.
[[nodiscard]] const char* workerBusyCounterName(unsigned worker);

// ---------------------------------------------------------------------------
// Snapshot (what the engine folds into RunReport.metrics)
// ---------------------------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sumNs = 0;
  std::uint64_t minNs = 0;
  std::uint64_t maxNs = 0;
  std::uint64_t p50Ns = 0;  // log-bucket upper bounds
  std::uint64_t p99Ns = 0;
  std::vector<std::uint64_t> buckets;  // log2 buckets, trailing zeros trimmed
};

struct PoolPhaseSnapshot {
  std::string phase;
  std::uint64_t regions = 0;
  double wallSeconds = 0;
  std::vector<double> busySeconds;  // one per worker (index = worker id)
  double imbalance = 0;             // max busy / mean busy (1.0 = perfect)
};

struct ObsSnapshot {
  std::vector<CounterSnapshot> counters;    // non-zero only
  std::vector<GaugeSnapshot> gauges;        // non-zero only
  std::vector<HistogramSnapshot> histograms;  // count > 0 only
  std::vector<PoolPhaseSnapshot> poolPhases;  // regions > 0 only
  std::size_t droppedTraceEvents = 0;

  /// Worst (largest) per-phase load-imbalance ratio, 0 when no phases ran.
  [[nodiscard]] double worstImbalance() const noexcept;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create by name. References stay valid for the process lifetime;
  /// cache them in a function-local static on hot paths.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  PoolPhaseStats& poolPhase(std::string_view name);

  [[nodiscard]] ObsSnapshot snapshot() const;

  /// Zeroes every registered metric (objects and references survive).
  void reset() noexcept;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace fdd::obs

#if FDD_OBS_ENABLED
/// Bumps the named monotonic counter by 1 (registered once, then one relaxed
/// atomic per hit; no-op while obs is runtime-disabled).
#define FDD_OBS_COUNT(name)                                              \
  do {                                                                   \
    static ::fdd::obs::Counter& FDD_OBS_CONCAT(fddObsCounter_,           \
                                               __LINE__) =              \
        ::fdd::obs::Registry::instance().counter(name);                  \
    FDD_OBS_CONCAT(fddObsCounter_, __LINE__).add(1);                     \
  } while (0)
#define FDD_OBS_COUNT_N(name, n)                                         \
  do {                                                                   \
    static ::fdd::obs::Counter& FDD_OBS_CONCAT(fddObsCounter_,           \
                                               __LINE__) =              \
        ::fdd::obs::Registry::instance().counter(name);                  \
    FDD_OBS_CONCAT(fddObsCounter_, __LINE__).add(n);                     \
  } while (0)
/// Scoped span that additionally records its duration into the log-bucketed
/// latency histogram of the same name.
#define FDD_TIMED_SCOPE(name)                                            \
  static ::fdd::obs::Histogram& FDD_OBS_CONCAT(fddObsHist_, __LINE__) = \
      ::fdd::obs::Registry::instance().histogram(name);                  \
  ::fdd::obs::TraceScope FDD_OBS_CONCAT(fddTraceScope_, __LINE__) {      \
    name, &FDD_OBS_CONCAT(fddObsHist_, __LINE__)                         \
  }
#else
#define FDD_OBS_COUNT(name) ((void)0)
#define FDD_OBS_COUNT_N(name, n) ((void)(n))
#define FDD_TIMED_SCOPE(name) ((void)0)
#endif
