#pragma once
// Per-thread lock-free trace rings (the tracing half of the observability
// runtime; see obs/metrics.hpp for the counter/histogram registry).
//
// Each thread that records an event owns a fixed-capacity ring of POD
// TraceEvents: the write path is one relaxed-load enabled check, a steady-
// clock read, and a store into the thread's own ring — no locks, no
// allocation, no sharing. Overflow overwrites the oldest events (flight-
// recorder semantics) and counts the drops. A global registry keeps every
// ring alive past thread exit so exportChromeTrace() can serialize the whole
// process into Chrome trace-event JSON (loadable by Perfetto / chrome://
// tracing).
//
// Two switches gate the cost:
//   * FDD_OBS_ENABLED — compile-time master switch (CMake option FLATDD_OBS,
//     default ON). When 0, the FDD_TRACE_* macros compile to nothing and the
//     entry points collapse to inline no-ops.
//   * obs::setEnabled(true) — runtime switch. While off, an instrumented
//     call site costs one relaxed atomic load and a predictable branch
//     (benchmarked in bench/kernels.cpp, "obs" section: < 2% on a 4096-
//     amplitude kernel, i.e. noise).
//
// Export must be called from a quiescent point (no concurrent writers): the
// rings are single-writer/single-reader without event-level synchronization.
// The engine and CLI flush after simulate() returns and after stopping the
// RSS sampler, which satisfies this by construction.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#ifndef FDD_OBS_ENABLED
#define FDD_OBS_ENABLED 1
#endif

namespace fdd::obs {

enum class EventType : std::uint8_t {
  Span,     // Chrome "X": name + start + duration
  Counter,  // Chrome "C": name + value at a time point
  Instant,  // Chrome "i": name + up to (value, value2, aux) args
};

/// One recorded event. POD; `name` must be a string literal or a pointer
/// obtained from internName() (the ring stores the pointer, not a copy).
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t startNs = 0;  // ns since the process trace epoch
  std::uint64_t durNs = 0;    // Span only
  double value = 0;           // Counter value / first Instant arg
  double value2 = 0;          // second Instant arg
  std::uint64_t aux = 0;      // third Instant arg (e.g. a gate index)
  std::uint32_t tid = 0;      // small sequential logical thread id
  EventType type = EventType::Span;
};

class Histogram;  // obs/metrics.hpp

#if FDD_OBS_ENABLED

namespace detail {
extern std::atomic<bool> gEnabled;
}

/// Runtime master switch for both tracing and metrics recording.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::gEnabled.load(std::memory_order_relaxed);
}
void setEnabled(bool on) noexcept;

/// Nanoseconds since the process trace epoch (first clock use).
[[nodiscard]] std::uint64_t nowNs() noexcept;

/// Logical id of the calling thread (assigned lazily, 1-based).
[[nodiscard]] std::uint32_t currentThreadId();

/// Labels the calling thread in the exported trace ("main", "pool.worker-3").
/// The pointer must stay valid forever (literal or internName()).
void setThreadName(const char* name) noexcept;

/// Copies `name` into process-lifetime storage and returns a stable pointer;
/// repeated calls with the same string return the same pointer. Use for
/// dynamically built event names (e.g. per-worker counter tracks).
[[nodiscard]] const char* internName(const std::string& name);

/// Request context: a thread-local id stamped onto every span the thread
/// records while the scope is alive, so one service request is followable
/// end-to-end (protocol -> queue -> session -> DD/DMAV spans) in Perfetto
/// and groupable by `trace_summarize --by-request`. 0 means "no request".
[[nodiscard]] std::uint64_t currentRequestId() noexcept;
void setCurrentRequestId(std::uint64_t id) noexcept;

/// RAII request-context scope: sets the calling thread's request id and
/// restores the previous one on destruction (scopes nest).
class RequestIdScope {
 public:
  explicit RequestIdScope(std::uint64_t id) noexcept
      : previous_{currentRequestId()} {
    setCurrentRequestId(id);
  }
  ~RequestIdScope() { setCurrentRequestId(previous_); }
  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;

 private:
  std::uint64_t previous_;
};

/// Raw event entry points. All are no-ops while !enabled().
/// `requestId` defaults to the calling thread's current request context;
/// pass an explicit id to attribute a span recorded on another thread's
/// behalf (e.g. the queue-wait span recorded by the worker that dequeues).
void recordSpan(const char* name, std::uint64_t startNs,
                std::uint64_t durNs) noexcept;
void recordSpan(const char* name, std::uint64_t startNs, std::uint64_t durNs,
                std::uint64_t requestId) noexcept;
void counterEvent(const char* name, double value) noexcept;
void instantEvent(const char* name, double value, double value2 = 0,
                  std::uint64_t aux = 0) noexcept;

/// Capacity (in events) of rings created after this call; existing rings
/// keep their size. Default 16384 (~0.9 MB per recording thread).
void setRingCapacity(std::size_t events) noexcept;

/// Total events overwritten by ring wraparound, across all rings.
[[nodiscard]] std::size_t droppedEvents() noexcept;

/// Drops all recorded events (rings stay registered). Quiescence required.
void clearTrace() noexcept;

/// Serializes every ring into one Chrome trace-event JSON document
/// ({"traceEvents":[...], ...}); Perfetto and chrome://tracing load it
/// directly. Quiescence required.
[[nodiscard]] std::string exportChromeTrace();

/// Flight-recorder export for a *live* process (GET /tracez): reads the
/// rings while writers keep recording, without pausing them. Events that
/// could have been overwritten during the copy are dropped (the ring head
/// is re-read after the copy and the overtaken prefix discarded), so the
/// result is a consistent recent window rather than an exact snapshot.
/// Reading a slot concurrently with its single writer is a benign torn
/// read by design — do not call this under TSan with active writers.
[[nodiscard]] std::string exportChromeTraceLive();

/// RAII span: measures from construction to destruction and records a Span
/// event on the calling thread's ring (plus, optionally, the duration into a
/// log-bucketed latency histogram). Inactive and free when !enabled() at
/// construction.
class TraceScope {
 public:
  explicit TraceScope(const char* name, Histogram* hist = nullptr) noexcept {
    if (enabled()) {
      name_ = name;
      hist_ = hist;
      start_ = nowNs();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) {
      finish();
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void finish() noexcept;

  const char* name_ = nullptr;
  Histogram* hist_ = nullptr;
  std::uint64_t start_ = 0;
};

#else  // !FDD_OBS_ENABLED — every entry point collapses to an inline no-op.

[[nodiscard]] constexpr bool enabled() noexcept { return false; }
inline void setEnabled(bool) noexcept {}
[[nodiscard]] inline std::uint64_t nowNs() noexcept { return 0; }
[[nodiscard]] inline std::uint32_t currentThreadId() { return 0; }
inline void setThreadName(const char*) noexcept {}
[[nodiscard]] inline const char* internName(const std::string&) {
  return "";
}
[[nodiscard]] inline std::uint64_t currentRequestId() noexcept { return 0; }
inline void setCurrentRequestId(std::uint64_t) noexcept {}

class RequestIdScope {
 public:
  explicit RequestIdScope(std::uint64_t) noexcept {}
  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;
};

inline void recordSpan(const char*, std::uint64_t, std::uint64_t) noexcept {}
inline void recordSpan(const char*, std::uint64_t, std::uint64_t,
                       std::uint64_t) noexcept {}
inline void counterEvent(const char*, double) noexcept {}
inline void instantEvent(const char*, double, double = 0,
                         std::uint64_t = 0) noexcept {}
inline void setRingCapacity(std::size_t) noexcept {}
[[nodiscard]] inline std::size_t droppedEvents() noexcept { return 0; }
inline void clearTrace() noexcept {}
[[nodiscard]] inline std::string exportChromeTrace() {
  return R"({"traceEvents":[]})";
}
[[nodiscard]] inline std::string exportChromeTraceLive() {
  return R"({"traceEvents":[]})";
}

class TraceScope {
 public:
  explicit TraceScope(const char*, Histogram* = nullptr) noexcept {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

#endif  // FDD_OBS_ENABLED

}  // namespace fdd::obs

#define FDD_OBS_CONCAT_(a, b) a##b
#define FDD_OBS_CONCAT(a, b) FDD_OBS_CONCAT_(a, b)

#if FDD_OBS_ENABLED
/// Scoped trace span: FDD_TRACE_SCOPE("dmav.replay"); records a Span event
/// covering the enclosing scope when tracing is enabled.
#define FDD_TRACE_SCOPE(name) \
  ::fdd::obs::TraceScope FDD_OBS_CONCAT(fddTraceScope_, __LINE__) { name }
#else
#define FDD_TRACE_SCOPE(name) ((void)0)
#endif
