#include "obs/exposition.hpp"

#include "common/json.hpp"

namespace fdd::obs {

namespace {

constexpr std::string_view kPrefix = "flatdd_";

bool validNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void appendMangled(std::string& out, std::string_view name) {
  out += kPrefix;
  for (const char c : name) {
    out += validNameChar(c) ? c : '_';
  }
}

void appendLabelValue(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void appendHeader(std::string& out, std::string_view mangledFamily,
                  std::string_view type, std::string_view help) {
  out += "# HELP ";
  out += mangledFamily;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += mangledFamily;
  out += ' ';
  out += type;
  out += '\n';
}

void appendDouble(std::string& out, double v) {
  out += json::numberToString(v);
}

/// Upper bound (inclusive) of log2 histogram bucket `b`, in nanoseconds:
/// bucket 0 holds exactly 0, bucket b holds [2^(b-1), 2^b).
std::uint64_t bucketUpperNs(std::size_t b) {
  return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
}

}  // namespace

std::string prometheusName(std::string_view name) {
  std::string out;
  out.reserve(kPrefix.size() + name.size());
  appendMangled(out, name);
  return out;
}

void writePrometheusText(const ObsSnapshot& snap, std::string& out) {
  // One reservation up front; everything below is plain appends. The
  // estimate deliberately overshoots a little so a serving loop reusing
  // the buffer settles after the first scrape.
  std::size_t estimate = 256;
  estimate += snap.counters.size() * 160;
  estimate += snap.gauges.size() * 160;
  for (const auto& h : snap.histograms) {
    estimate += 320 + h.buckets.size() * 96;
  }
  estimate += snap.poolPhases.size() * 420;
  out.reserve(out.size() + estimate);

  std::string family;  // reused mangled-name scratch
  family.reserve(96);

  for (const auto& c : snap.counters) {
    family.clear();
    appendMangled(family, c.name);
    family += "_total";
    appendHeader(out, family, "counter", "FlatDD counter");
    out += family;
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }

  for (const auto& g : snap.gauges) {
    family.clear();
    appendMangled(family, g.name);
    appendHeader(out, family, "gauge", "FlatDD gauge");
    out += family;
    out += ' ';
    appendDouble(out, g.value);
    out += '\n';
  }

  for (const auto& h : snap.histograms) {
    family.clear();
    appendMangled(family, h.name);
    family += "_seconds";
    appendHeader(out, family, "histogram",
                 "FlatDD log2-bucketed latency histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      out += family;
      out += "_bucket{le=\"";
      appendDouble(out, static_cast<double>(bucketUpperNs(b)) / 1e9);
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += family;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(h.count);
    out += '\n';
    out += family;
    out += "_sum ";
    appendDouble(out, static_cast<double>(h.sumNs) / 1e9);
    out += '\n';
    out += family;
    out += "_count ";
    out += std::to_string(h.count);
    out += '\n';
  }

  if (!snap.poolPhases.empty()) {
    appendHeader(out, "flatdd_pool_phase_imbalance", "gauge",
                 "Per-phase load imbalance (max worker busy / mean)");
    for (const auto& p : snap.poolPhases) {
      out += "flatdd_pool_phase_imbalance{phase=\"";
      appendLabelValue(out, p.phase);
      out += "\"} ";
      appendDouble(out, p.imbalance);
      out += '\n';
    }
    appendHeader(out, "flatdd_pool_phase_regions_total", "counter",
                 "Fork/join regions executed per pool phase");
    for (const auto& p : snap.poolPhases) {
      out += "flatdd_pool_phase_regions_total{phase=\"";
      appendLabelValue(out, p.phase);
      out += "\"} ";
      out += std::to_string(p.regions);
      out += '\n';
    }
    appendHeader(out, "flatdd_pool_phase_wall_seconds_total", "counter",
                 "Summed region wall time per pool phase");
    for (const auto& p : snap.poolPhases) {
      out += "flatdd_pool_phase_wall_seconds_total{phase=\"";
      appendLabelValue(out, p.phase);
      out += "\"} ";
      appendDouble(out, p.wallSeconds);
      out += '\n';
    }
  }

  appendHeader(out, "flatdd_trace_dropped_events", "gauge",
               "Trace events overwritten by ring wraparound");
  out += "flatdd_trace_dropped_events ";
  out += std::to_string(snap.droppedTraceEvents);
  out += '\n';
}

std::string prometheusText() {
  std::string out;
  writePrometheusText(Registry::instance().snapshot(), out);
  return out;
}

}  // namespace fdd::obs
