#pragma once
// Prometheus text-exposition writer over Registry::snapshot() (format
// 0.0.4, what `GET /metrics` serves). The renderer never touches live
// metric objects: it works off an ObsSnapshot, so the only lock taken is
// the registry mutex for the duration of the snapshot copy — workers keep
// recording through relaxed atomics the whole time.
//
// Mapping:
//   Counter   -> `flatdd_<name>_total` (counter)
//   Gauge     -> `flatdd_<name>` (gauge)
//   Histogram -> `flatdd_<name>_seconds` (histogram): cumulative
//                `_bucket{le="..."}` rows from the log2 ns buckets (upper
//                bound of bucket b is (2^b - 1) ns, rendered in seconds),
//                a `+Inf` bucket equal to `_count`, and `_sum` in seconds.
//   PoolPhase -> `flatdd_pool_phase_{imbalance,regions_total,
//                wall_seconds_total}{phase="..."}` per phase.
//
// Metric names are mangled to the Prometheus grammar (every character
// outside [a-zA-Z0-9_:] becomes '_'); label values are escaped. Rendering
// appends into a caller-owned string so a serving loop can reuse one
// buffer — the writer reserves an estimate up front and allocates nothing
// else beyond what the buffer needs to grow.

#include <string>

#include "obs/metrics.hpp"

namespace fdd::obs {

/// Appends the snapshot rendered as Prometheus text exposition to `out`.
void writePrometheusText(const ObsSnapshot& snap, std::string& out);

/// Convenience: snapshot the registry and render it.
[[nodiscard]] std::string prometheusText();

/// `name` with the `flatdd_` prefix, mangled to the Prometheus grammar.
[[nodiscard]] std::string prometheusName(std::string_view name);

}  // namespace fdd::obs
