#pragma once
// One live simulation in the service. A session wraps an incremental
// SimulationEngine (begin()/apply() — see simulation_engine.hpp) plus the
// per-session state the one-shot engine never needed:
//
//   * A seeded PRNG stream: the session's Xoshiro256 is derived from the
//     configured seed, so a session's sampled shots are reproducible and two
//     sessions with the same seed and gates return identical samples.
//   * An amortized sampling distribution: the first sample() after a state
//     change pays one stateVector() readout + one prefix-sum pass; every
//     further sample request is binary search per shot. Applying gates or
//     restoring a checkpoint invalidates it (stateVersion_).
//   * Checkpoints: dense state snapshot + RNG state + gate count, stored in
//     the session; restore() resumes the exact trajectory, including the
//     sampling stream.
//
// Sessions are NOT internally synchronized. The service serializes all
// access to one session by submitting every operation to the JobQueue with
// the session id as orderKey (per-key FIFO); direct calls are only safe
// single-threaded (tests, sequential replay verification).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/prng.hpp"
#include "engine/simulation_engine.hpp"
#include "parallel/cancellation.hpp"
#include "qc/circuit.hpp"

namespace fdd::flat {
class PlanCache;
}

namespace fdd::svc {

struct SessionConfig {
  std::string backend = "flatdd";
  Qubit qubits = 1;
  std::uint64_t seed = 0;
  /// Checkpoints a session may hold at once — each stores a dense 2^n
  /// state, so an unbounded map is a client-driven OOM. checkpoint()
  /// fails at the cap until release() frees a slot.
  std::size_t maxCheckpoints = 32;
  engine::EngineOptions engine;  // seed/sharedPlanCache are overwritten
};

class Session {
 public:
  /// `sharedPlanCache` may be null (session compiles into a private cache).
  Session(std::uint64_t id, SessionConfig config,
          flat::PlanCache* sharedPlanCache);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const SessionConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] Qubit numQubits() const noexcept { return config_.qubits; }

  /// Applies a gate batch on top of the current state. The token is polled
  /// every kCancelCheckGates gates; on cancellation a CancelledError is
  /// thrown with the batch partially applied (gatesApplied() stays accurate
  /// per slice) — restore a checkpoint to recover a known state.
  /// Returns the number of gates applied (post pass pipeline).
  std::size_t apply(const qc::Circuit& chunk,
                    const par::CancelToken& token = {});

  /// Samples `shots` basis-state indices from |amplitude|^2 using the
  /// session's PRNG stream and the cached distribution.
  std::vector<Index> sample(std::size_t shots);

  [[nodiscard]] Complex amplitude(Index i) const;

  /// Cumulative report; the session seed is stamped in.
  [[nodiscard]] engine::RunReport report() const;

  /// Gates live in the current state (rewound by restore(), unlike the
  /// engine's cumulative counter which only grows). Atomic so protocol
  /// threads may read it while a queued job is still applying gates —
  /// the only Session member with that exemption from the
  /// "serialize via the queue" rule.
  [[nodiscard]] std::size_t gatesApplied() const noexcept {
    return gates_.load(std::memory_order_relaxed);
  }

  /// Saves the dense state + RNG stream + gate count under a fresh id.
  /// Throws std::runtime_error once maxCheckpoints are held (see
  /// SessionConfig) — release() one first.
  std::uint64_t checkpoint();
  /// Rewinds to checkpoint `id`; throws std::invalid_argument on unknown id.
  /// The checkpoint stays stored (restore is repeatable).
  void restore(std::uint64_t checkpointId);
  /// Frees checkpoint `id`; throws std::invalid_argument on unknown id.
  void release(std::uint64_t checkpointId);
  [[nodiscard]] std::size_t checkpointCount() const noexcept {
    return checkpoints_.size();
  }

  /// Gates between cancellation-token polls in apply(). Batches are sliced
  /// at this granularity, which bounds cancellation latency by the cost of
  /// one slice; slicing only narrows batch-local fusion windows, never
  /// changes the simulated unitary.
  static constexpr std::size_t kCancelCheckGates = 64;

 private:
  struct Checkpoint {
    AlignedVector<Complex> state;
    std::array<std::uint64_t, 4> rng{};
    std::size_t gatesApplied = 0;
  };

  void ensureDistribution();

  std::uint64_t id_;
  SessionConfig config_;
  engine::SimulationEngine engine_;
  Xoshiro256 rng_;

  // Sampling distribution cache: prefix sums of |amplitude|^2, rebuilt only
  // after the state changed since the last sample().
  std::vector<fp> cdf_;
  std::uint64_t stateVersion_ = 0;   // bumped by apply()/restore()
  std::uint64_t cdfVersion_ = ~std::uint64_t{0};

  std::map<std::uint64_t, Checkpoint> checkpoints_;
  std::uint64_t nextCheckpointId_ = 1;
  // Gates in the current state (see gatesApplied for why it's atomic).
  std::atomic<std::size_t> gates_{0};
};

}  // namespace fdd::svc
