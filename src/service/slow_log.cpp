#include "service/slow_log.hpp"

#include <chrono>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace fdd::svc {

namespace {

std::uint64_t monotonicNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t wallMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SlowRequestLog::SlowRequestLog(std::string path, double thresholdMs,
                               double maxPerSec)
    : path_{std::move(path)},
      thresholdMs_{thresholdMs},
      maxPerSec_{maxPerSec > 0 ? maxPerSec : 1} {
  if (!path_.empty()) {
    out_.open(path_, std::ios::app);
    if (!out_) {
      path_.clear();  // unwritable path -> disabled, not a crash loop
    }
  }
  tokens_ = maxPerSec_;  // full initial burst
  lastRefillNs_ = monotonicNs();
}

bool SlowRequestLog::record(const SlowLogEntry& entry) {
  if (path_.empty()) {
    return false;
  }
  if (entry.event == "slow_request" && entry.totalMs < thresholdMs_) {
    return false;
  }

  // Serialize outside the lock; only the token check and the write are
  // mutually exclusive.
  json::Writer w;
  w.beginObject();
  w.field("event", entry.event);
  w.field("ts_us", wallMicros());
  w.field("op", entry.op);
  // Decimal string: request ids are u64 and JSON numbers are doubles.
  w.field("request_id", std::to_string(entry.requestId));
  w.field("session", entry.sessionId);
  w.field("queue_wait_ms", entry.queueWaitMs);
  w.field("exec_ms", entry.executeMs);
  w.field("total_ms", entry.totalMs);
  w.field("gates", entry.gatesApplied);
  w.field("plan_cache_hits", entry.planCacheHits);
  w.field("simd_tier", entry.simdTier);
  w.field("state", entry.state);
  w.endObject();
  const std::string line = w.take();

  {
    const std::lock_guard lock{mutex_};
    const std::uint64_t now = monotonicNs();
    tokens_ += static_cast<double>(now - lastRefillNs_) * 1e-9 * maxPerSec_;
    if (tokens_ > maxPerSec_) {
      tokens_ = maxPerSec_;  // burst cap == one second of budget
    }
    lastRefillNs_ = now;
    if (tokens_ < 1.0) {
      ++suppressed_;
      obs::Registry::instance().counter("service.slow_log_suppressed").add(1);
      return false;
    }
    tokens_ -= 1.0;
    out_ << line << '\n';
    out_.flush();
    ++written_;
  }
  obs::Registry::instance().counter("service.slow_log_written").add(1);
  return true;
}

std::uint64_t SlowRequestLog::written() const noexcept {
  const std::lock_guard lock{mutex_};
  return written_;
}

std::uint64_t SlowRequestLog::suppressed() const noexcept {
  const std::lock_guard lock{mutex_};
  return suppressed_;
}

}  // namespace fdd::svc
