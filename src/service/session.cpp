#include "service/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "service/job_queue.hpp"

namespace fdd::svc {

Session::Session(std::uint64_t id, SessionConfig config,
                 flat::PlanCache* sharedPlanCache)
    : id_{id},
      config_{[&] {
        config.engine.seed = config.seed;
        config.engine.sharedPlanCache = sharedPlanCache;
        // Sessions share the service's observability window; a per-apply
        // registry reset would clobber concurrent sessions' metrics.
        config.engine.enableObs = false;
        return std::move(config);
      }()},
      engine_{config_.engine},
      // Derive the sampling stream from the session seed through SplitMix64
      // so seed 0 still yields a well-mixed state.
      rng_{SplitMix64{config_.seed}.next()} {
  engine_.begin(config_.backend, config_.qubits);
}

std::size_t Session::apply(const qc::Circuit& chunk,
                           const par::CancelToken& token) {
  FDD_TIMED_SCOPE("service.session_apply");
  if (chunk.numQubits() != config_.qubits) {
    throw std::invalid_argument("Session::apply: qubit count mismatch");
  }
  std::size_t applied = 0;
  const auto& ops = chunk.operations();
  for (std::size_t begin = 0; begin < ops.size();
       begin += kCancelCheckGates) {
    if (token.cancelled()) {
      throw CancelledError{};
    }
    const std::size_t end =
        std::min(begin + kCancelCheckGates, ops.size());
    qc::Circuit slice{config_.qubits, chunk.name()};
    for (std::size_t i = begin; i < end; ++i) {
      slice.append(ops[i]);
    }
    applied += engine_.apply(slice);
    gates_.fetch_add(end - begin, std::memory_order_relaxed);
    ++stateVersion_;
  }
  if (ops.empty() && token.cancelled()) {
    throw CancelledError{};
  }
  return applied;
}

void Session::ensureDistribution() {
  if (cdfVersion_ == stateVersion_) {
    return;
  }
  const AlignedVector<Complex> state = engine_.backend().stateVector();
  cdf_.resize(state.size());
  fp acc = 0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    acc += state[i].real() * state[i].real() +
           state[i].imag() * state[i].imag();
    cdf_[i] = acc;
  }
  cdfVersion_ = stateVersion_;
}

std::vector<Index> Session::sample(std::size_t shots) {
  FDD_TIMED_SCOPE("service.session_sample");
  ensureDistribution();
  const fp norm = cdf_.empty() ? fp{0} : cdf_.back();
  std::vector<Index> outcomes;
  outcomes.reserve(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const fp r = rng_.uniform() * norm;
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), r);
    outcomes.push_back(static_cast<Index>(
        it == cdf_.end() ? cdf_.size() - 1 : it - cdf_.begin()));
  }
  return outcomes;
}

Complex Session::amplitude(Index i) const {
  return engine_.backend().amplitude(i);
}

engine::RunReport Session::report() const {
  engine::RunReport r = engine_.report();
  if (r.circuit.empty() || r.circuit == "circuit") {
    r.circuit = "session-" + std::to_string(id_);
  }
  return r;
}

std::uint64_t Session::checkpoint() {
  if (checkpoints_.size() >= config_.maxCheckpoints) {
    throw std::runtime_error(
        "Session::checkpoint: limit of " +
        std::to_string(config_.maxCheckpoints) +
        " checkpoints reached; release one first");
  }
  Checkpoint cp;
  cp.state = engine_.backend().stateVector();
  cp.rng = rng_.state();
  cp.gatesApplied = gates_.load(std::memory_order_relaxed);
  const std::uint64_t id = nextCheckpointId_++;
  checkpoints_.emplace(id, std::move(cp));
  return id;
}

void Session::restore(std::uint64_t checkpointId) {
  const auto it = checkpoints_.find(checkpointId);
  if (it == checkpoints_.end()) {
    throw std::invalid_argument("Session::restore: unknown checkpoint " +
                                std::to_string(checkpointId));
  }
  const Checkpoint& cp = it->second;
  engine_.backend().setState(cp.state);
  rng_.setState(cp.rng);
  gates_.store(cp.gatesApplied, std::memory_order_relaxed);
  ++stateVersion_;  // the cached distribution is for the pre-restore state
}

void Session::release(std::uint64_t checkpointId) {
  if (checkpoints_.erase(checkpointId) == 0) {
    throw std::invalid_argument("Session::release: unknown checkpoint " +
                                std::to_string(checkpointId));
  }
}

}  // namespace fdd::svc
