#pragma once
// Watchdog thread over the JobQueue: every `intervalMs` it scans the
// currently running jobs and flags the ones that overstayed. A job is
// stalled when
//   * it has a deadline and `now > deadline + graceMs`, or
//   * it has no deadline and has been executing longer than `stallMs`.
//
// Flagging is one-shot per job (Job::markStalled latch): the first scan that
// catches a job bumps `service.jobs_stalled_total`, emits an obs instant
// event, and writes a "stall" record to the slow-request log (bypassing the
// latency threshold). Every scan also refreshes the `service.jobs_stalled`
// gauge with the number of jobs stalled *right now*, so the gauge decays
// back to zero when offenders finish — the counter keeps the history.
//
// The watchdog only observes: it never cancels a job (deadline expiry is
// already enforced cooperatively by the job's own CancelToken) and never
// touches session state, so a scan is a handful of atomic loads per running
// job. Worker heartbeat freshness is surfaced separately via /healthz from
// JobQueue::workerProgress.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "service/job_queue.hpp"
#include "service/slow_log.hpp"

namespace fdd::svc {

class Watchdog {
 public:
  struct Config {
    std::uint64_t intervalMs = 500;  // 0 disables the thread entirely
    std::uint64_t graceMs = 1000;    // slack past an explicit deadline
    std::uint64_t stallMs = 30000;   // ceiling for deadline-less jobs
  };

  /// `slowLog` may be null (stalls still count, just aren't logged).
  Watchdog(JobQueue& queue, SlowRequestLog* slowLog, Config config);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Jobs currently past their stall boundary (refreshed each scan).
  [[nodiscard]] std::size_t stalledNow() const noexcept {
    return stalledNow_.load(std::memory_order_relaxed);
  }
  /// Total stall flags raised since construction.
  [[nodiscard]] std::uint64_t stalledTotal() const noexcept {
    return stalledTotal_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool running() const noexcept { return thread_.joinable(); }

  /// Runs one scan synchronously (test hook; also what the thread calls).
  void scanOnce();

  /// Stops the thread. Idempotent; the destructor calls it. Must be called
  /// before the JobQueue it observes shuts down.
  void stop();

 private:
  void loop();

  JobQueue& queue_;
  SlowRequestLog* slowLog_;
  Config config_;

  std::atomic<std::size_t> stalledNow_{0};
  std::atomic<std::uint64_t> stalledTotal_{0};

  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace fdd::svc
