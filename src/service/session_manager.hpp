#pragma once
// Owns everything long-lived in the service: the session table, the shared
// DMAV plan cache, and the job queue. The manager enforces the concurrency
// contract the lower layers rely on:
//
//   * Every operation that touches a session's state is submitted through
//     submit() with the session id as the queue's orderKey, so one session's
//     jobs run strictly FIFO (sessions need no internal locks) while
//     different sessions' jobs interleave across workers under priority.
//   * The shared PlanCache outlives every session, and a session's backend
//     clears its own package's entries out of it on destruction — closing a
//     session never invalidates another session's cached plans.
//
// close() removes the session from the table; jobs already queued for it
// hold the Session shared_ptr and complete normally, after which the session
// (and its backend) is destroyed on the last release.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "flatdd/plan_cache.hpp"
#include "service/job_queue.hpp"
#include "service/session.hpp"
#include "service/slow_log.hpp"
#include "service/watchdog.hpp"

namespace fdd::svc {

struct ServiceConfig {
  /// Dedicated job-queue worker threads (concurrent sessions in flight).
  unsigned workers = 4;
  /// Capacity of the plan cache shared by all sessions (0 = per-session
  /// private caches, no sharing).
  std::size_t planCacheCapacity = 256;
  /// How long a finished async job's result stays pollable after completion
  /// before the service drops it (releasing its session reference).
  std::int64_t asyncJobGraceMs = 60'000;
  /// Requests whose total latency crosses this go to the slow-request log
  /// (<= 0 logs everything when the log is enabled).
  double slowRequestMs = 250;
  /// JSONL slow-request log path ("" = disabled).
  std::string slowLogPath;
  /// Rate limit for slow-log writes (token bucket, burst == one second).
  double slowLogMaxPerSec = 100;
  /// Watchdog scan period (0 = no watchdog thread).
  std::uint64_t watchdogIntervalMs = 500;
  /// Slack past a job's explicit deadline before it's flagged stalled.
  std::uint64_t watchdogGraceMs = 1000;
  /// Execution ceiling for deadline-less jobs before they're flagged.
  std::uint64_t watchdogStallMs = 30'000;
  /// Defaults for sessions that don't override engine options.
  engine::EngineOptions engineDefaults;
};

class SessionManager {
 public:
  explicit SessionManager(ServiceConfig config = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session. `config.engine` is taken as given — callers wanting
  /// the service-wide defaults copy config().engineDefaults in first (the
  /// protocol layer does).
  std::shared_ptr<Session> open(SessionConfig config);
  /// nullptr when the id is unknown (or already closed).
  [[nodiscard]] std::shared_ptr<Session> find(std::uint64_t id) const;
  /// True if the session existed. Queued jobs still holding the session
  /// finish first; the backend dies with the last reference.
  bool close(std::uint64_t id);
  [[nodiscard]] std::size_t sessionCount() const;

  /// Submits a job serialized after every earlier job of `session`.
  JobHandle submit(const std::shared_ptr<Session>& session,
                   std::function<void(Session&, const par::CancelToken&)> fn,
                   JobOptions opts = {});

  [[nodiscard]] JobQueue& queue() noexcept { return queue_; }
  [[nodiscard]] flat::PlanCache* sharedPlanCache() noexcept {
    return config_.planCacheCapacity == 0 ? nullptr : &planCache_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] SlowRequestLog& slowLog() noexcept { return slowLog_; }
  [[nodiscard]] Watchdog& watchdog() noexcept { return watchdog_; }

 private:
  ServiceConfig config_;
  flat::PlanCache planCache_;
  SlowRequestLog slowLog_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t nextId_ = 1;

  // Declared after the caches/sessions it must outlive shut down: the queue
  // must drain (jobs reference sessions and the plan cache) before either
  // is destroyed, and the watchdog — which observes the queue — is declared
  // after it so it stops first.
  JobQueue queue_;
  Watchdog watchdog_;
};

}  // namespace fdd::svc
