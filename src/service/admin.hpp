#pragma once
// Admin/observability listener: a tiny HTTP/1.0 server on a dedicated
// loopback port, separate from the protocol listener so scrapes never
// compete with protocol traffic for a connection slot and never speak the
// line-JSON protocol. One thread accepts and serves requests sequentially —
// every endpoint renders in microseconds off snapshots, so a serial loop is
// plenty for a scraper cadence, and it keeps the server to a handful of
// syscalls with no connection bookkeeping.
//
// Endpoints (GET only, Connection: close):
//   /metrics  Prometheus text exposition (format 0.0.4) of the obs registry
//             plus a `flatdd_uptime_seconds` gauge. Rendering works off
//             Registry::snapshot(), so workers are never paused.
//   /healthz  Service::healthzJson(): status, uptime, sessions, queue depth
//             split, stall counts, per-worker progress.
//   /tracez   Live Chrome-trace export of the flight recorder
//             (obs::exportChromeTraceLive()) — torn events are dropped,
//             workers keep recording.
//
// Anything else is a 404; non-GET methods are a 405.

#include <atomic>
#include <cstdint>
#include <thread>

namespace fdd::svc {

class Service;

class AdminServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the serving thread. Throws std::runtime_error when the bind
  /// fails — an admin endpoint that silently isn't there is worse than a
  /// startup error.
  AdminServer(Service& service, std::uint16_t port);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// The bound port (resolves port 0 to the actual ephemeral port).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops the listener and joins the thread. Idempotent.
  void stop();

 private:
  void loop();
  void serveClient(int fd);

  Service& service_;
  int listener_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace fdd::svc
