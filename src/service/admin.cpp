#include "service/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"

namespace fdd::svc {

namespace {

const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

void writeAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w = ::write(fd, data.data() + sent, data.size() - sent);
    if (w <= 0) {
      return;  // client went away; nothing to clean up
    }
    sent += static_cast<std::size_t>(w);
  }
}

void respond(int fd, int status, std::string_view reason,
             std::string_view contentType, std::string_view body) {
  std::string head;
  head.reserve(160);
  head += "HTTP/1.0 ";
  head += std::to_string(status);
  head += ' ';
  head += reason;
  head += "\r\nContent-Type: ";
  head += contentType;
  head += "\r\nContent-Length: ";
  head += std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  writeAll(fd, head);
  writeAll(fd, body);
}

}  // namespace

AdminServer::AdminServer(Service& service, std::uint16_t port)
    : service_{service} {
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) {
    throw std::runtime_error("AdminServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listener_, 8) != 0) {
    ::close(listener_);
    listener_ = -1;
    throw std::runtime_error("AdminServer: cannot listen on 127.0.0.1:" +
                             std::to_string(port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread{[this] { loop(); }};
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listener_ >= 0) {
    ::shutdown(listener_, SHUT_RDWR);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listener_ >= 0) {
    ::close(listener_);
    listener_ = -1;
  }
}

void AdminServer::loop() {
  for (;;) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      return;  // listener shut down
    }
    serveClient(fd);
    ::close(fd);
  }
}

void AdminServer::serveClient(int fd) {
  // Read just the request line; headers (if any) are irrelevant and the
  // connection closes after one response, so partial header reads are fine.
  char buf[1024];
  const ssize_t n = ::read(fd, buf, sizeof buf - 1);
  if (n <= 0) {
    return;
  }
  buf[n] = '\0';
  std::string_view request{buf, static_cast<std::size_t>(n)};
  const std::size_t eol = request.find("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? request : request.substr(0, eol);

  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    respond(fd, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    target = target.substr(0, q);
  }
  if (method != "GET") {
    respond(fd, 405, "Method Not Allowed", "text/plain",
            "GET only\n");
    return;
  }

  if (target == "/metrics") {
    std::string body = obs::prometheusText();
    body += "# HELP flatdd_uptime_seconds Process uptime\n";
    body += "# TYPE flatdd_uptime_seconds gauge\n";
    body += "flatdd_uptime_seconds ";
    body += json::numberToString(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      kProcessStart)
            .count());
    body += '\n';
    respond(fd, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            body);
  } else if (target == "/healthz") {
    respond(fd, 200, "OK", "application/json", service_.healthzJson());
  } else if (target == "/tracez") {
    respond(fd, 200, "OK", "application/json",
            obs::exportChromeTraceLive());
  } else {
    respond(fd, 404, "Not Found", "text/plain",
            "endpoints: /metrics /healthz /tracez\n");
  }
}

}  // namespace fdd::svc
