#include "service/session_manager.hpp"

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace fdd::svc {

namespace {

obs::Gauge& sessionsGauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge("service.sessions");
  return g;
}

}  // namespace

SessionManager::SessionManager(ServiceConfig config)
    : config_{std::move(config)},
      planCache_{config_.planCacheCapacity},
      slowLog_{config_.slowLogPath, config_.slowRequestMs,
               config_.slowLogMaxPerSec},
      queue_{config_.workers},
      watchdog_{queue_, &slowLog_,
                Watchdog::Config{config_.watchdogIntervalMs,
                                 config_.watchdogGraceMs,
                                 config_.watchdogStallMs}} {}

SessionManager::~SessionManager() {
  // The watchdog reads the queue's running set; stop it before the workers
  // so shutdown never races a scan.
  watchdog_.stop();
  // Stop the workers next: no job may touch a session or the shared plan
  // cache while the table below is torn down.
  queue_.shutdown();
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions;
  {
    const std::lock_guard lock{mutex_};
    sessions = std::move(sessions_);
  }
  // Session backends unpin their plan-cache entries in their destructors,
  // which must run before planCache_ dies — hence explicitly here.
  sessions.clear();
}

std::shared_ptr<Session> SessionManager::open(SessionConfig config) {
  // DD-phase workers execute on the global data-parallel pool, which every
  // session (and every DMAV kernel) shares. A session asking for more DD
  // threads than the pool has would only queue fork/join tasks it can never
  // run concurrently, so clamp the request to the real budget here — the one
  // place every open path funnels through.
  const auto poolSize = static_cast<unsigned>(par::globalPool().size());
  if (config.engine.ddThreads > poolSize) {
    config.engine.ddThreads = poolSize;
  }
  std::uint64_t id = 0;
  {
    const std::lock_guard lock{mutex_};
    id = nextId_++;
  }
  // Construct outside the lock — backend creation can be expensive.
  auto session =
      std::make_shared<Session>(id, std::move(config), sharedPlanCache());
  {
    const std::lock_guard lock{mutex_};
    sessions_.emplace(id, session);
    sessionsGauge().set(static_cast<double>(sessions_.size()));
  }
  FDD_OBS_COUNT("service.sessions_opened");
  return session;
}

std::shared_ptr<Session> SessionManager::find(std::uint64_t id) const {
  const std::lock_guard lock{mutex_};
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionManager::close(std::uint64_t id) {
  std::shared_ptr<Session> victim;
  {
    const std::lock_guard lock{mutex_};
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return false;
    }
    victim = std::move(it->second);
    sessions_.erase(it);
    sessionsGauge().set(static_cast<double>(sessions_.size()));
  }
  FDD_OBS_COUNT("service.sessions_closed");
  // If no queued job holds another reference this destroys the backend now,
  // on the caller's thread; otherwise the last finishing job does it.
  victim.reset();
  return true;
}

std::size_t SessionManager::sessionCount() const {
  const std::lock_guard lock{mutex_};
  return sessions_.size();
}

JobHandle SessionManager::submit(
    const std::shared_ptr<Session>& session,
    std::function<void(Session&, const par::CancelToken&)> fn,
    JobOptions opts) {
  return queue_.submit(
      [session, fn = std::move(fn)](const par::CancelToken& token) {
        fn(*session, token);
      },
      opts, session->id());
}

}  // namespace fdd::svc
