#include "service/job_queue.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fdd::svc {

namespace {

std::uint64_t monotonicNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::Gauge& depthGauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("service.queue_depth");
  return g;
}

obs::Histogram& latencyHistogram() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("service.job_latency");
  return h;
}

}  // namespace

const char* toString(JobState s) noexcept {
  switch (s) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Done:
      return "done";
    case JobState::Failed:
      return "failed";
    case JobState::Cancelled:
      return "cancelled";
    case JobState::Expired:
      return "expired";
  }
  return "?";
}

JobState Job::state() const {
  const std::lock_guard lock{mutex_};
  return state_;
}

std::string Job::error() const {
  const std::lock_guard lock{mutex_};
  return error_;
}

bool Job::cancel() {
  cancel_.requestCancel();
  const std::lock_guard lock{mutex_};
  return !isTerminal(state_);
}

void Job::wait() const {
  std::unique_lock lock{mutex_};
  done_.wait(lock, [&] { return isTerminal(state_); });
}

bool Job::waitFor(std::chrono::nanoseconds timeout) const {
  std::unique_lock lock{mutex_};
  return done_.wait_for(lock, timeout, [&] { return isTerminal(state_); });
}

double Job::latencySeconds() const {
  const std::lock_guard lock{mutex_};
  return latencySeconds_;
}

JobQueue::JobQueue(unsigned workers) {
  if (workers == 0) {
    workers = 1;
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

JobQueue::~JobQueue() { shutdown(); }

JobHandle JobQueue::submit(std::function<void(const par::CancelToken&)> fn,
                           JobOptions opts, std::uint64_t orderKey) {
  auto job = std::make_shared<Job>();
  job->fn_ = std::move(fn);
  job->deadline_ = opts.deadline;
  job->token_ = job->cancel_.token(opts.deadline);
  job->orderKey_ = orderKey;
  job->submitNs_ = monotonicNs();

  {
    const std::lock_guard lock{mutex_};
    if (shutdown_) {
      throw std::runtime_error("JobQueue::submit: queue is shut down");
    }
    Item item{opts.priority, nextSeq_++, job};
    if (orderKey == 0) {
      runnable_.push(std::move(item));
    } else {
      KeyLane& lane = lanes_[orderKey];
      job->orderSeq_ = lane.nextTicket++;
      if (job->orderSeq_ == lane.servingTicket) {
        runnable_.push(std::move(item));
      } else {
        // A predecessor with this key is still pending; park the job so no
        // worker blocks on it. advanceKeyLocked() promotes it later.
        lane.stash.emplace(job->orderSeq_, std::move(item));
        ++stashed_;
      }
    }
    updateDepthGaugeLocked();
  }
  ready_.notify_one();
  return job;
}

std::size_t JobQueue::depth() const {
  const std::lock_guard lock{mutex_};
  return runnable_.size() + stashed_;
}

void JobQueue::shutdown() {
  std::vector<JobHandle> orphans;
  {
    const std::lock_guard lock{mutex_};
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    while (!runnable_.empty()) {
      orphans.push_back(runnable_.top().job);
      runnable_.pop();
    }
    for (auto& [key, lane] : lanes_) {
      for (auto& [ticket, item] : lane.stash) {
        orphans.push_back(item.job);
      }
      lane.stash.clear();
    }
    stashed_ = 0;
    updateDepthGaugeLocked();
  }
  ready_.notify_all();
  for (const JobHandle& job : orphans) {
    finish(job, JobState::Cancelled, {});
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void JobQueue::workerLoop() {
  obs::setThreadName("svc-worker");
  for (;;) {
    JobHandle job;
    {
      std::unique_lock lock{mutex_};
      ready_.wait(lock, [&] { return shutdown_ || !runnable_.empty(); });
      if (shutdown_) {
        return;
      }
      job = runnable_.top().job;
      runnable_.pop();
      updateDepthGaugeLocked();
    }

    // Lazy cancellation/expiry: queued jobs are not removed eagerly, they
    // are skipped here when popped.
    if (job->token_.cancelRequested()) {
      finish(job, JobState::Cancelled, {});
      continue;
    }
    if (job->deadline_.has_value() &&
        par::CancelToken::Clock::now() >= *job->deadline_) {
      finish(job, JobState::Expired, {});
      continue;
    }

    {
      const std::lock_guard lock{job->mutex_};
      job->state_ = JobState::Running;
    }
    try {
      FDD_TIMED_SCOPE("service.job");
      job->fn_(job->token_);
      finish(job, JobState::Done, {});
    } catch (const CancelledError&) {
      const bool expired =
          !job->token_.cancelRequested() && job->deadline_.has_value() &&
          par::CancelToken::Clock::now() >= *job->deadline_;
      finish(job, expired ? JobState::Expired : JobState::Cancelled, {});
    } catch (const std::exception& e) {
      finish(job, JobState::Failed, e.what());
    } catch (...) {
      finish(job, JobState::Failed, "unknown exception");
    }
  }
}

void JobQueue::finish(const JobHandle& job, JobState state,
                      const std::string& error) {
  const std::uint64_t latencyNs = monotonicNs() - job->submitNs_;
  std::function<void(const par::CancelToken&)> fn;
  {
    const std::lock_guard lock{job->mutex_};
    job->state_ = state;
    job->error_ = error;
    job->latencySeconds_ = static_cast<double>(latencyNs) * 1e-9;
    fn = std::move(job->fn_);
    job->fn_ = nullptr;
  }
  // A terminal Job must not retain its closure: handles can outlive the
  // queue slot indefinitely (Service::jobs_), and the closure holds the
  // Session shared_ptr — i.e. a full 2^n state. Destroy it here, outside
  // the job mutex (releasing a Session can be arbitrarily heavy).
  fn = nullptr;
  latencyHistogram().record(latencyNs);
  job->done_.notify_all();
  if (job->orderKey_ != 0) {
    bool promoted = false;
    {
      const std::lock_guard lock{mutex_};
      if (!shutdown_) {
        advanceKeyLocked(job);
        promoted = true;
      }
    }
    if (promoted) {
      ready_.notify_one();
    }
  }
}

void JobQueue::advanceKeyLocked(const JobHandle& job) {
  const auto laneIt = lanes_.find(job->orderKey_);
  if (laneIt == lanes_.end()) {
    return;
  }
  KeyLane& lane = laneIt->second;
  lane.servingTicket = job->orderSeq_ + 1;
  if (const auto it = lane.stash.find(lane.servingTicket);
      it != lane.stash.end()) {
    runnable_.push(std::move(it->second));
    lane.stash.erase(it);
    --stashed_;
    updateDepthGaugeLocked();
  } else if (lane.nextTicket == lane.servingTicket && lane.stash.empty()) {
    // Lane fully drained; drop it so idle sessions don't accumulate state.
    lanes_.erase(laneIt);
  }
}

void JobQueue::updateDepthGaugeLocked() const {
  depthGauge().set(static_cast<double>(runnable_.size() + stashed_));
}

}  // namespace fdd::svc
