#include "service/job_queue.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fdd::svc {

namespace {

std::uint64_t monotonicNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::Gauge& depthGauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("service.queue_depth");
  return g;
}

obs::Gauge& stashedGauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("service.queue_stashed");
  return g;
}

obs::Histogram& latencyHistogram() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("service.job_latency");
  return h;
}

obs::Histogram& queueWaitHistogram() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("service.queue_wait");
  return h;
}

}  // namespace

const char* toString(JobState s) noexcept {
  switch (s) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Done:
      return "done";
    case JobState::Failed:
      return "failed";
    case JobState::Cancelled:
      return "cancelled";
    case JobState::Expired:
      return "expired";
  }
  return "?";
}

JobState Job::state() const {
  const std::lock_guard lock{mutex_};
  return state_;
}

std::string Job::error() const {
  const std::lock_guard lock{mutex_};
  return error_;
}

bool Job::cancel() {
  cancel_.requestCancel();
  const std::lock_guard lock{mutex_};
  return !isTerminal(state_);
}

void Job::wait() const {
  std::unique_lock lock{mutex_};
  done_.wait(lock, [&] { return isTerminal(state_); });
}

bool Job::waitFor(std::chrono::nanoseconds timeout) const {
  std::unique_lock lock{mutex_};
  return done_.wait_for(lock, timeout, [&] { return isTerminal(state_); });
}

double Job::latencySeconds() const {
  const std::lock_guard lock{mutex_};
  return latencySeconds_;
}

double Job::queueWaitSeconds() const {
  const std::lock_guard lock{mutex_};
  return queueWaitSeconds_;
}

double Job::executeSeconds() const {
  const std::lock_guard lock{mutex_};
  return executeSeconds_;
}

JobQueue::JobQueue(unsigned workers) {
  if (workers == 0) {
    workers = 1;
  }
  workerSlots_ = std::make_unique<WorkerSlot[]>(workers);
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
}

JobQueue::~JobQueue() { shutdown(); }

JobHandle JobQueue::submit(std::function<void(const par::CancelToken&)> fn,
                           JobOptions opts, std::uint64_t orderKey) {
  auto job = std::make_shared<Job>();
  job->fn_ = std::move(fn);
  job->deadline_ = opts.deadline;
  job->token_ = job->cancel_.token(opts.deadline);
  job->orderKey_ = orderKey;
  job->requestId_ = opts.requestId;
  job->label_ = opts.label;
  job->submitNs_ = monotonicNs();
  job->submitTraceNs_ = obs::nowNs();

  {
    const std::lock_guard lock{mutex_};
    if (shutdown_) {
      throw std::runtime_error("JobQueue::submit: queue is shut down");
    }
    Item item{opts.priority, nextSeq_++, job};
    if (orderKey == 0) {
      runnable_.push(std::move(item));
    } else {
      KeyLane& lane = lanes_[orderKey];
      job->orderSeq_ = lane.nextTicket++;
      if (job->orderSeq_ == lane.servingTicket) {
        runnable_.push(std::move(item));
      } else {
        // A predecessor with this key is still pending; park the job so no
        // worker blocks on it. advanceKeyLocked() promotes it later.
        lane.stash.emplace(job->orderSeq_, std::move(item));
        ++stashed_;
      }
    }
    updateDepthGaugesLocked();
  }
  ready_.notify_one();
  return job;
}

std::size_t JobQueue::depth() const {
  const std::lock_guard lock{mutex_};
  return runnable_.size() + stashed_;
}

JobQueue::Stats JobQueue::stats() const {
  const std::lock_guard lock{mutex_};
  return Stats{runnable_.size(), stashed_, running_.size()};
}

std::vector<JobHandle> JobQueue::runningJobs() const {
  const std::lock_guard lock{mutex_};
  std::vector<JobHandle> jobs;
  jobs.reserve(running_.size());
  for (const auto& [ptr, handle] : running_) {
    jobs.push_back(handle);
  }
  return jobs;
}

JobQueue::WorkerProgress JobQueue::workerProgress(unsigned worker) const {
  WorkerProgress p;
  if (worker >= threads_.size()) {
    return p;
  }
  const WorkerSlot& slot = workerSlots_[worker];
  p.lastBeatNs = slot.lastBeatNs.load(std::memory_order_relaxed);
  p.requestId = slot.requestId.load(std::memory_order_relaxed);
  p.busy = slot.busy.load(std::memory_order_relaxed);
  return p;
}

void JobQueue::shutdown() {
  std::vector<JobHandle> orphans;
  {
    const std::lock_guard lock{mutex_};
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    while (!runnable_.empty()) {
      orphans.push_back(runnable_.top().job);
      runnable_.pop();
    }
    for (auto& [key, lane] : lanes_) {
      for (auto& [ticket, item] : lane.stash) {
        orphans.push_back(item.job);
      }
      lane.stash.clear();
    }
    stashed_ = 0;
    updateDepthGaugesLocked();
  }
  ready_.notify_all();
  for (const JobHandle& job : orphans) {
    finish(job, JobState::Cancelled, {});
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void JobQueue::workerLoop(unsigned worker) {
  obs::setThreadName("svc-worker");
  WorkerSlot& slot = workerSlots_[worker];
  for (;;) {
    JobHandle job;
    {
      std::unique_lock lock{mutex_};
      ready_.wait(lock, [&] { return shutdown_ || !runnable_.empty(); });
      if (shutdown_) {
        return;
      }
      job = runnable_.top().job;
      runnable_.pop();
      running_.emplace(job.get(), job);
      updateDepthGaugesLocked();
    }
    slot.lastBeatNs.store(monotonicNs(), std::memory_order_relaxed);
    slot.requestId.store(job->requestId_, std::memory_order_relaxed);
    slot.busy.store(true, std::memory_order_relaxed);

    // Lazy cancellation/expiry: queued jobs are not removed eagerly, they
    // are skipped here when popped.
    if (job->token_.cancelRequested()) {
      finish(job, JobState::Cancelled, {});
    } else if (job->deadline_.has_value() &&
               par::CancelToken::Clock::now() >= *job->deadline_) {
      finish(job, JobState::Expired, {});
    } else {
      const std::uint64_t startNs = monotonicNs();
      job->startNs_.store(startNs, std::memory_order_relaxed);
      {
        const std::lock_guard lock{job->mutex_};
        job->state_ = JobState::Running;
      }
      // Request-context scope: every span the body records (service.job,
      // session_apply, dd.apply, dmav.replay, ...) carries this job's
      // request id. The queue-wait span covers submit→start and is
      // attributed to the same request.
      obs::RequestIdScope requestScope{job->requestId_};
      obs::recordSpan("service.queue_wait", job->submitTraceNs_,
                      obs::nowNs() - job->submitTraceNs_, job->requestId_);
      queueWaitHistogram().record(startNs - job->submitNs_);
      try {
        FDD_TIMED_SCOPE("service.job");
        job->fn_(job->token_);
        finish(job, JobState::Done, {});
      } catch (const CancelledError&) {
        const bool expired =
            !job->token_.cancelRequested() && job->deadline_.has_value() &&
            par::CancelToken::Clock::now() >= *job->deadline_;
        finish(job, expired ? JobState::Expired : JobState::Cancelled, {});
      } catch (const std::exception& e) {
        finish(job, JobState::Failed, e.what());
      } catch (...) {
        finish(job, JobState::Failed, "unknown exception");
      }
    }

    slot.busy.store(false, std::memory_order_relaxed);
    slot.requestId.store(0, std::memory_order_relaxed);
    slot.lastBeatNs.store(monotonicNs(), std::memory_order_relaxed);
  }
}

void JobQueue::finish(const JobHandle& job, JobState state,
                      const std::string& error) {
  const std::uint64_t endNs = monotonicNs();
  const std::uint64_t latencyNs = endNs - job->submitNs_;
  const std::uint64_t startNs = job->startNs_.load(std::memory_order_relaxed);
  std::function<void(const par::CancelToken&)> fn;
  {
    const std::lock_guard lock{job->mutex_};
    job->state_ = state;
    job->error_ = error;
    job->latencySeconds_ = static_cast<double>(latencyNs) * 1e-9;
    // Jobs skipped at pop time (cancelled/expired before running) spent
    // their whole life queued: wait == latency, execute == 0.
    job->queueWaitSeconds_ =
        static_cast<double>(startNs != 0 ? startNs - job->submitNs_
                                         : latencyNs) *
        1e-9;
    job->executeSeconds_ =
        startNs != 0 ? static_cast<double>(endNs - startNs) * 1e-9 : 0;
    fn = std::move(job->fn_);
    job->fn_ = nullptr;
  }
  // A terminal Job must not retain its closure: handles can outlive the
  // queue slot indefinitely (Service::jobs_), and the closure holds the
  // Session shared_ptr — i.e. a full 2^n state. Destroy it here, outside
  // the job mutex (releasing a Session can be arbitrarily heavy).
  fn = nullptr;
  latencyHistogram().record(latencyNs);
  job->done_.notify_all();
  {
    const std::lock_guard lock{mutex_};
    running_.erase(job.get());
  }
  if (job->orderKey_ != 0) {
    bool promoted = false;
    {
      const std::lock_guard lock{mutex_};
      if (!shutdown_) {
        advanceKeyLocked(job);
        promoted = true;
      }
    }
    if (promoted) {
      ready_.notify_one();
    }
  }
}

void JobQueue::advanceKeyLocked(const JobHandle& job) {
  const auto laneIt = lanes_.find(job->orderKey_);
  if (laneIt == lanes_.end()) {
    return;
  }
  KeyLane& lane = laneIt->second;
  lane.servingTicket = job->orderSeq_ + 1;
  if (const auto it = lane.stash.find(lane.servingTicket);
      it != lane.stash.end()) {
    runnable_.push(std::move(it->second));
    lane.stash.erase(it);
    --stashed_;
    updateDepthGaugesLocked();
  } else if (lane.nextTicket == lane.servingTicket && lane.stash.empty()) {
    // Lane fully drained; drop it so idle sessions don't accumulate state.
    lanes_.erase(laneIt);
  }
}

void JobQueue::updateDepthGaugesLocked() const {
  // Split on purpose: `queue_depth` is the schedulable backlog a worker
  // could pick up right now; stashed jobs are blocked behind a per-key
  // predecessor and would mask real starvation if folded in.
  depthGauge().set(static_cast<double>(runnable_.size()));
  stashedGauge().set(static_cast<double>(stashed_));
}

}  // namespace fdd::svc
