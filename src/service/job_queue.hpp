#pragma once
// Asynchronous job queue for the simulation service. Protocol handlers (and
// in-process clients) submit closures; a small set of dedicated worker
// threads drains them. The workers themselves do no data-parallel compute —
// job bodies fan out through the global par::ThreadPool, whose region mutex
// serializes the actual multi-worker kernels — so the queue's job is
// scheduling policy, not parallelism:
//
//   * Priority across sessions: the runnable set is a max-priority queue
//     (ties broken by submission order), so an interactive session's small
//     jobs overtake a bulk session's backlog.
//   * FIFO within a session: a job submitted with a nonzero `orderKey` only
//     becomes runnable once every earlier job with the same key reached a
//     terminal state. Out-of-order arrivals are stashed (never block a
//     worker) and promoted when their predecessor finishes. Sessions use
//     their id as the key, which is what makes per-session state mutation
//     safe without per-session locks.
//   * Cooperative cancellation and deadlines: each job carries a CancelToken
//     (flag + optional deadline). Cancellation/expiry is observed lazily —
//     at pop time for queued jobs, at the body's polling points once
//     running. A body that observes its token and throws CancelledError
//     lands in Cancelled/Expired, not Failed.
//
// Terminal states and what they mean:
//   Done       body returned normally
//   Failed     body threw (error() has the message)
//   Cancelled  cancel() was requested before/while it ran
//   Expired    the deadline passed before/while it ran
//
// Observability: `service.queue_depth` gauge (queued, not yet running),
// `service.job` timed scope around each body (span + histogram), and
// `service.job_latency` histogram over submit→terminal time.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "parallel/cancellation.hpp"

namespace fdd::svc {

enum class JobState : std::uint8_t {
  Queued,
  Running,
  Done,
  Failed,
  Cancelled,
  Expired,
};

[[nodiscard]] const char* toString(JobState s) noexcept;
[[nodiscard]] constexpr bool isTerminal(JobState s) noexcept {
  return s != JobState::Queued && s != JobState::Running;
}

/// Thrown by job bodies at a polling point to acknowledge cancellation; the
/// queue maps it to Cancelled/Expired instead of Failed.
struct CancelledError : std::runtime_error {
  CancelledError() : std::runtime_error("job cancelled") {}
};

struct JobOptions {
  int priority = 0;  // higher runs first across sessions
  std::optional<par::CancelToken::Clock::time_point> deadline;
};

/// Shared completion state of one submitted job. Handles are shared_ptr, so
/// a handle outlives both the queue slot and the session it targets. The
/// closure (and whatever it captures — typically the Session) is released
/// the moment the job reaches a terminal state, so a lingering handle pins
/// only this small completion block.
class Job {
 public:
  [[nodiscard]] JobState state() const;
  /// Error message after Failed ("" otherwise).
  [[nodiscard]] std::string error() const;

  /// Requests cooperative cancellation. Returns false if the job had
  /// already reached a terminal state (too late to matter).
  bool cancel();

  void wait() const;
  /// False on timeout (job still pending).
  bool waitFor(std::chrono::nanoseconds timeout) const;

  /// submit→terminal wall time; 0 until terminal.
  [[nodiscard]] double latencySeconds() const;

  [[nodiscard]] const par::CancelToken& token() const noexcept {
    return token_;
  }

 private:
  friend class JobQueue;

  std::function<void(const par::CancelToken&)> fn_;
  par::CancelSource cancel_;
  par::CancelToken token_;
  std::optional<par::CancelToken::Clock::time_point> deadline_;
  std::uint64_t orderKey_ = 0;
  std::uint64_t orderSeq_ = 0;  // FIFO ticket within orderKey_
  std::uint64_t submitNs_ = 0;

  mutable std::mutex mutex_;
  mutable std::condition_variable done_;
  JobState state_ = JobState::Queued;
  std::string error_;
  double latencySeconds_ = 0;
};

using JobHandle = std::shared_ptr<Job>;

class JobQueue {
 public:
  /// Spawns `workers` dedicated job threads (>= 1).
  explicit JobQueue(unsigned workers = 2);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues `fn`. `orderKey` == 0 means unordered; a nonzero key serializes
  /// this job after every previously submitted job with the same key.
  /// Throws std::runtime_error after shutdown().
  JobHandle submit(std::function<void(const par::CancelToken&)> fn,
                   JobOptions opts = {}, std::uint64_t orderKey = 0);

  /// Jobs submitted but not yet started (stashed out-of-order jobs count).
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Marks every queued job Cancelled, waits for running jobs to finish,
  /// and joins the workers. Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Item {
    int priority = 0;
    std::uint64_t seq = 0;  // global submission order, breaks priority ties
    JobHandle job;
  };
  struct ItemOrder {
    // std::priority_queue is a max-heap on this "less than": prefer higher
    // priority, then earlier submission.
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.priority != b.priority) {
        return a.priority < b.priority;
      }
      return a.seq > b.seq;
    }
  };
  struct KeyLane {
    std::uint64_t nextTicket = 0;     // assigned at submit
    std::uint64_t servingTicket = 0;  // advanced at terminal
    std::map<std::uint64_t, Item> stash;  // ticket -> not-yet-runnable job
  };

  void workerLoop();
  void finish(const JobHandle& job, JobState state, const std::string& error);
  /// Advances the job's key lane and promotes its successor, if stashed.
  void advanceKeyLocked(const JobHandle& job);
  void updateDepthGaugeLocked() const;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::priority_queue<Item, std::vector<Item>, ItemOrder> runnable_;
  std::unordered_map<std::uint64_t, KeyLane> lanes_;
  std::size_t stashed_ = 0;
  std::uint64_t nextSeq_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace fdd::svc
