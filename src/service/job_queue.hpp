#pragma once
// Asynchronous job queue for the simulation service. Protocol handlers (and
// in-process clients) submit closures; a small set of dedicated worker
// threads drains them. The workers themselves do no data-parallel compute —
// job bodies fan out through the global par::ThreadPool, whose region mutex
// serializes the actual multi-worker kernels — so the queue's job is
// scheduling policy, not parallelism:
//
//   * Priority across sessions: the runnable set is a max-priority queue
//     (ties broken by submission order), so an interactive session's small
//     jobs overtake a bulk session's backlog.
//   * FIFO within a session: a job submitted with a nonzero `orderKey` only
//     becomes runnable once every earlier job with the same key reached a
//     terminal state. Out-of-order arrivals are stashed (never block a
//     worker) and promoted when their predecessor finishes. Sessions use
//     their id as the key, which is what makes per-session state mutation
//     safe without per-session locks.
//   * Cooperative cancellation and deadlines: each job carries a CancelToken
//     (flag + optional deadline). Cancellation/expiry is observed lazily —
//     at pop time for queued jobs, at the body's polling points once
//     running. A body that observes its token and throws CancelledError
//     lands in Cancelled/Expired, not Failed.
//
// Terminal states and what they mean:
//   Done       body returned normally
//   Failed     body threw (error() has the message)
//   Cancelled  cancel() was requested before/while it ran
//   Expired    the deadline passed before/while it ran
//
// Observability: `service.queue_depth` gauge (runnable backlog only) and
// `service.queue_stashed` gauge (parked out-of-order jobs), `service.job`
// timed scope around each body (span + histogram, stamped with the job's
// request id), a `service.queue_wait` span covering submit→start, and
// `service.job_latency` histogram over submit→terminal time. Workers
// heartbeat per-slot progress timestamps the watchdog and /healthz read.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "parallel/cancellation.hpp"

namespace fdd::svc {

enum class JobState : std::uint8_t {
  Queued,
  Running,
  Done,
  Failed,
  Cancelled,
  Expired,
};

[[nodiscard]] const char* toString(JobState s) noexcept;
[[nodiscard]] constexpr bool isTerminal(JobState s) noexcept {
  return s != JobState::Queued && s != JobState::Running;
}

/// Thrown by job bodies at a polling point to acknowledge cancellation; the
/// queue maps it to Cancelled/Expired instead of Failed.
struct CancelledError : std::runtime_error {
  CancelledError() : std::runtime_error("job cancelled") {}
};

struct JobOptions {
  int priority = 0;  // higher runs first across sessions
  std::optional<par::CancelToken::Clock::time_point> deadline;
  /// Request-context id stamped onto the job's trace spans and surfaced in
  /// /healthz and stall logs (0 = no request context).
  std::uint64_t requestId = 0;
  /// Short operation label for diagnostics ("apply", "sample"). Must be a
  /// string literal or interned pointer; may be null.
  const char* label = nullptr;
};

/// Shared completion state of one submitted job. Handles are shared_ptr, so
/// a handle outlives both the queue slot and the session it targets. The
/// closure (and whatever it captures — typically the Session) is released
/// the moment the job reaches a terminal state, so a lingering handle pins
/// only this small completion block.
class Job {
 public:
  [[nodiscard]] JobState state() const;
  /// Error message after Failed ("" otherwise).
  [[nodiscard]] std::string error() const;

  /// Requests cooperative cancellation. Returns false if the job had
  /// already reached a terminal state (too late to matter).
  bool cancel();

  void wait() const;
  /// False on timeout (job still pending).
  bool waitFor(std::chrono::nanoseconds timeout) const;

  /// submit→terminal wall time; 0 until terminal.
  [[nodiscard]] double latencySeconds() const;
  /// submit→execution-start wall time; set at terminal (equals the full
  /// latency for jobs cancelled/expired before they ran).
  [[nodiscard]] double queueWaitSeconds() const;
  /// Execution-start→terminal wall time; 0 for jobs that never ran.
  [[nodiscard]] double executeSeconds() const;

  [[nodiscard]] std::uint64_t requestId() const noexcept {
    return requestId_;
  }
  /// Operation label from JobOptions ("" when none was given).
  [[nodiscard]] const char* label() const noexcept {
    return label_ != nullptr ? label_ : "";
  }
  /// Monotonic ns timestamp of execution start (0 until Running).
  [[nodiscard]] std::uint64_t startedAtNs() const noexcept {
    return startNs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::optional<par::CancelToken::Clock::time_point> deadline()
      const noexcept {
    return deadline_;
  }
  /// One-shot stall latch for the watchdog: returns true exactly once.
  bool markStalled() noexcept {
    return !stallFlagged_.exchange(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool stallFlagged() const noexcept {
    return stallFlagged_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const par::CancelToken& token() const noexcept {
    return token_;
  }

 private:
  friend class JobQueue;

  std::function<void(const par::CancelToken&)> fn_;
  par::CancelSource cancel_;
  par::CancelToken token_;
  std::optional<par::CancelToken::Clock::time_point> deadline_;
  std::uint64_t orderKey_ = 0;
  std::uint64_t orderSeq_ = 0;  // FIFO ticket within orderKey_
  std::uint64_t submitNs_ = 0;
  std::uint64_t submitTraceNs_ = 0;  // trace-epoch twin of submitNs_
  std::uint64_t requestId_ = 0;
  const char* label_ = nullptr;
  // Written by the executing worker, read by the watchdog while Running —
  // hence atomic, unlike the mutex-guarded terminal timings below.
  std::atomic<std::uint64_t> startNs_{0};
  std::atomic<bool> stallFlagged_{false};

  mutable std::mutex mutex_;
  mutable std::condition_variable done_;
  JobState state_ = JobState::Queued;
  std::string error_;
  double latencySeconds_ = 0;
  double queueWaitSeconds_ = 0;
  double executeSeconds_ = 0;
};

using JobHandle = std::shared_ptr<Job>;

class JobQueue {
 public:
  /// Spawns `workers` dedicated job threads (>= 1).
  explicit JobQueue(unsigned workers = 2);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues `fn`. `orderKey` == 0 means unordered; a nonzero key serializes
  /// this job after every previously submitted job with the same key.
  /// Throws std::runtime_error after shutdown().
  JobHandle submit(std::function<void(const par::CancelToken&)> fn,
                   JobOptions opts = {}, std::uint64_t orderKey = 0);

  /// Jobs submitted but not yet started (stashed out-of-order jobs count).
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  struct Stats {
    std::size_t runnable = 0;  // schedulable now
    std::size_t stashed = 0;   // parked behind a per-key predecessor
    std::size_t running = 0;   // bodies currently executing
  };
  [[nodiscard]] Stats stats() const;

  /// Handles of the jobs currently executing (watchdog / healthz input).
  [[nodiscard]] std::vector<JobHandle> runningJobs() const;

  /// Per-worker progress view for /healthz and the watchdog: last heartbeat
  /// (monotonic ns; workers beat at pop/finish boundaries) and the request
  /// id of the job being executed (0 = idle).
  struct WorkerProgress {
    std::uint64_t lastBeatNs = 0;
    std::uint64_t requestId = 0;
    bool busy = false;
  };
  [[nodiscard]] WorkerProgress workerProgress(unsigned worker) const;

  /// Marks every queued job Cancelled, waits for running jobs to finish,
  /// and joins the workers. Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Item {
    int priority = 0;
    std::uint64_t seq = 0;  // global submission order, breaks priority ties
    JobHandle job;
  };
  struct ItemOrder {
    // std::priority_queue is a max-heap on this "less than": prefer higher
    // priority, then earlier submission.
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.priority != b.priority) {
        return a.priority < b.priority;
      }
      return a.seq > b.seq;
    }
  };
  struct KeyLane {
    std::uint64_t nextTicket = 0;     // assigned at submit
    std::uint64_t servingTicket = 0;  // advanced at terminal
    std::map<std::uint64_t, Item> stash;  // ticket -> not-yet-runnable job
  };

  struct WorkerSlot {
    std::atomic<std::uint64_t> lastBeatNs{0};
    std::atomic<std::uint64_t> requestId{0};
    std::atomic<bool> busy{false};
  };

  void workerLoop(unsigned worker);
  void finish(const JobHandle& job, JobState state, const std::string& error);
  /// Advances the job's key lane and promotes its successor, if stashed.
  void advanceKeyLocked(const JobHandle& job);
  void updateDepthGaugesLocked() const;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::priority_queue<Item, std::vector<Item>, ItemOrder> runnable_;
  std::unordered_map<std::uint64_t, KeyLane> lanes_;
  std::unordered_map<const Job*, JobHandle> running_;
  std::size_t stashed_ = 0;
  std::uint64_t nextSeq_ = 0;
  bool shutdown_ = false;
  std::unique_ptr<WorkerSlot[]> workerSlots_;
  std::vector<std::thread> threads_;
};

}  // namespace fdd::svc
