#include "service/watchdog.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fdd::svc {

namespace {

std::uint64_t monotonicNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::Gauge& stalledGauge() {
  static obs::Gauge& g =
      obs::Registry::instance().gauge("service.jobs_stalled");
  return g;
}

obs::Counter& stalledCounter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("service.jobs_stalled_total");
  return c;
}

}  // namespace

Watchdog::Watchdog(JobQueue& queue, SlowRequestLog* slowLog, Config config)
    : queue_{queue}, slowLog_{slowLog}, config_{config} {
  if (config_.intervalMs > 0) {
    thread_ = std::thread{[this] { loop(); }};
  }
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  {
    const std::lock_guard lock{mutex_};
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Watchdog::loop() {
  obs::setThreadName("svc-watchdog");
  std::unique_lock lock{mutex_};
  while (!stop_) {
    wake_.wait_for(lock, std::chrono::milliseconds{config_.intervalMs},
                   [&] { return stop_; });
    if (stop_) {
      return;
    }
    lock.unlock();
    scanOnce();
    lock.lock();
  }
}

void Watchdog::scanOnce() {
  const auto nowClock = par::CancelToken::Clock::now();
  const std::uint64_t nowNs = monotonicNs();
  std::size_t stalledNow = 0;

  for (const JobHandle& job : queue_.runningJobs()) {
    const std::uint64_t startNs = job->startedAtNs();
    if (startNs == 0) {
      continue;  // popped but not yet executing
    }
    bool stalled = false;
    if (const auto deadline = job->deadline(); deadline.has_value()) {
      stalled = nowClock > *deadline + std::chrono::milliseconds{
                                           config_.graceMs};
    } else {
      stalled = nowNs - startNs > config_.stallMs * 1'000'000ULL;
    }
    if (!stalled) {
      continue;
    }
    ++stalledNow;
    if (!job->markStalled()) {
      continue;  // already flagged on an earlier scan
    }
    stalledTotal_.fetch_add(1, std::memory_order_relaxed);
    stalledCounter().add(1);
    const double runningMs = static_cast<double>(nowNs - startNs) * 1e-6;
    obs::instantEvent("service.job_stalled", runningMs, 0, job->requestId());
    if (slowLog_ != nullptr) {
      SlowLogEntry entry;
      entry.event = "stall";
      entry.op = job->label();
      entry.requestId = job->requestId();
      entry.executeMs = runningMs;
      entry.totalMs = runningMs;
      entry.state = "running";
      slowLog_->record(entry);
    }
  }

  stalledNow_.store(stalledNow, std::memory_order_relaxed);
  stalledGauge().set(static_cast<double>(stalledNow));
}

}  // namespace fdd::svc
