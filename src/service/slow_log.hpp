#pragma once
// Structured slow-request log: one JSON object per line (JSONL), appended to
// a configured file whenever a request's total latency crosses
// ServiceConfig::slowRequestMs, plus out-of-band "stall" events from the
// watchdog (those bypass the threshold — a stalled job is interesting no
// matter how long it has run so far).
//
// Each entry carries enough to diagnose a slow request without a trace:
// the op, session, request id (joinable against trace spans and the
// protocol response), the queue-wait vs execute split, gates applied so
// far, plan-cache hit count and SIMD dispatch tier at the time of logging.
//
// Writes are rate-limited by a token bucket (`maxPerSec`, refilled
// continuously) so a pathological burst — every request slow — degrades to
// a bounded log instead of an unbounded disk write amplifier. Suppressed
// and written entries are counted in the obs registry
// (`service.slow_log_written` / `service.slow_log_suppressed`).
//
// A default-constructed or unconfigured log (empty path) is disabled:
// record() is a cheap early-out, so call sites don't need their own guard.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

namespace fdd::svc {

struct SlowLogEntry {
  std::string event = "slow_request";  // or "stall"
  std::string op;                      // protocol op ("apply", "sample", ...)
  std::uint64_t requestId = 0;
  std::uint64_t sessionId = 0;
  double queueWaitMs = 0;
  double executeMs = 0;
  double totalMs = 0;
  std::uint64_t gatesApplied = 0;
  std::uint64_t planCacheHits = 0;
  std::string simdTier;
  std::string state;  // job terminal state, or "running" for stalls
};

class SlowRequestLog {
 public:
  SlowRequestLog() = default;
  /// `path` empty disables the log entirely. `thresholdMs` <= 0 logs every
  /// request (useful in CI smoke tests). `maxPerSec` bounds the write rate.
  SlowRequestLog(std::string path, double thresholdMs, double maxPerSec);

  SlowRequestLog(const SlowRequestLog&) = delete;
  SlowRequestLog& operator=(const SlowRequestLog&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }
  [[nodiscard]] double thresholdMs() const noexcept { return thresholdMs_; }

  /// Appends the entry if the log is enabled, the entry qualifies (total
  /// latency over threshold, or a non-"slow_request" event type), and the
  /// rate limiter has budget. Thread-safe. Returns true when written.
  bool record(const SlowLogEntry& entry);

  [[nodiscard]] std::uint64_t written() const noexcept;
  [[nodiscard]] std::uint64_t suppressed() const noexcept;

 private:
  std::string path_;
  double thresholdMs_ = 0;
  double maxPerSec_ = 0;

  mutable std::mutex mutex_;
  std::ofstream out_;
  double tokens_ = 0;
  std::uint64_t lastRefillNs_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace fdd::svc
