#pragma once
// Line-delimited JSON protocol over the session manager. One request object
// per line in, one response object per line out; transport (stdio pipe, TCP
// socket, in-process call) is the caller's concern — flatdd_serve wires
// both stdin/stdout and a TCP listener to handleLine(), and bench/serve
// calls it in-process.
//
// Requests: {"op": "...", ...}. Operations:
//   ping       -> {"ok":true,"op":"ping"}
//   open       backend?, qubits, seed? (decimal string or number), threads?
//              -> {"ok":true,"session":ID}
//   apply      session, gates:[{"gate":"h","target":0,"controls":[],
//              "params":[]}...] and/or qasm:"...", priority?, deadline_ms?,
//              async?  -> {"ok":true,"applied":N,"total_gates":M}
//              (async:true -> {"ok":true,"job":ID} immediately)
//   sample     session, shots, priority?, deadline_ms?
//              -> {"ok":true,"shots":N,"counts":{"<basis index>":count,...}}
//   amplitude  session, index -> {"ok":true,"re":x,"im":y}
//   report     session -> {"ok":true,"report":{<RunReport JSON>}}
//   checkpoint session -> {"ok":true,"checkpoint":ID}
//   restore    session, checkpoint -> {"ok":true}
//   close      session -> {"ok":true}
//   job        job, wait_ms? -> {"ok":true,"state":"done","applied":N,...}
//   cancel     job -> {"ok":true,"state":"cancelled"|...}
//   shutdown   -> {"ok":true}; shutdownRequested() turns true
//
// Every error is {"ok":false,"error":"..."} (plus "state" when a job ended
// cancelled/expired/failed). Gate/state-mutating ops run as queue jobs keyed
// by the session id, so concurrent connections hitting one session are
// serialized in arrival order while different sessions proceed in parallel.
// handleLine() itself is thread-safe.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "service/session_manager.hpp"

namespace fdd::svc {

class Service {
 public:
  explicit Service(ServiceConfig config = {});

  /// Handles one request line, returns one response line (no trailing \n).
  /// Never throws: malformed input becomes an {"ok":false,...} response.
  std::string handleLine(std::string_view line);

  [[nodiscard]] bool shutdownRequested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  [[nodiscard]] SessionManager& sessions() noexcept { return manager_; }

 private:
  struct AsyncJob {
    JobHandle handle;
    std::shared_ptr<Session> session;
    std::shared_ptr<std::size_t> applied;  // written by the job body
  };

  std::string dispatch(std::string_view line);

  SessionManager manager_;
  std::atomic<bool> shutdown_{false};

  std::mutex jobsMutex_;
  std::unordered_map<std::uint64_t, AsyncJob> jobs_;
  std::uint64_t nextJobId_ = 1;
};

}  // namespace fdd::svc
