#pragma once
// Line-delimited JSON protocol over the session manager. One request object
// per line in, one response object per line out; transport (stdio pipe, TCP
// socket, in-process call) is the caller's concern — flatdd_serve wires
// both stdin/stdout and a TCP listener to handleLine(), and bench/serve
// calls it in-process.
//
// Requests: {"op": "...", ...}. Operations:
//   ping       -> {"ok":true,"op":"ping"}
//   open       backend?, qubits, seed? (decimal string or number), threads?,
//              dd_threads? (DD-phase mat-vec workers, clamped to the pool)
//              -> {"ok":true,"session":ID}
//   apply      session, gates:[{"gate":"h","target":0,"controls":[],
//              "params":[]}...] and/or qasm:"...", priority?, deadline_ms?,
//              async?  -> {"ok":true,"applied":N,"total_gates":M}
//              (async:true -> {"ok":true,"job":ID} immediately)
//   sample     session, shots, priority?, deadline_ms?
//              -> {"ok":true,"shots":N,"counts":{"<basis index>":count,...}}
//   amplitude  session, index (< 2^qubits) -> {"ok":true,"re":x,"im":y}
//   report     session -> {"ok":true,"report":{<RunReport JSON>}}
//   checkpoint session -> {"ok":true,"checkpoint":ID}; fails once the
//              session holds max_checkpoints (open option, default 32)
//   restore    session, checkpoint -> {"ok":true}
//   release    session, checkpoint -> {"ok":true,"checkpoints":N} (frees it)
//   close      session -> {"ok":true}
//   job        job, wait_ms? -> {"ok":true,"state":"done","applied":N,...}
//   cancel     job -> {"ok":true,"state":"cancelled"|...}
//   shutdown   -> {"ok":true}; shutdownRequested() turns true
//
// Request context: every request may carry "request_id" (decimal string or
// number; one is generated when absent). The id is echoed in the response
// as a decimal string, stamped onto every trace span the request produces
// (queue wait, job body, session apply/sample, DD/DMAV internals — follow
// it in Perfetto or `trace_summarize --by-request`), and written to the
// slow-request log, so one id joins the client's view to the server's.
// Requests with "timing":true additionally get `queue_wait_us`/`exec_us`
// response fields for ops that ran as queue jobs.
//
// Every error is {"ok":false,"error":"..."} (plus "state" when a job ended
// cancelled/expired/failed). The protocol layer is the trust boundary: every
// numeric field is validated here (integral, non-negative, bounded — e.g.
// qubits <= 63, amplitude index < 2^qubits, shots <= 1e7) before anything is
// cast for the backend, and id strings must parse exactly. Gate/state-
// mutating ops run as queue jobs keyed by the session id, so concurrent
// connections hitting one session are serialized in arrival order while
// different sessions proceed in parallel. handleLine() itself is
// thread-safe. Async job results a client never polls are dropped
// ServiceConfig::asyncJobGraceMs after completion so they don't pin their
// session forever.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "service/session_manager.hpp"

namespace fdd::svc {

class Service {
 public:
  explicit Service(ServiceConfig config = {});

  /// Handles one request line, returns one response line (no trailing \n).
  /// Never throws: malformed input becomes an {"ok":false,...} response.
  std::string handleLine(std::string_view line);

  /// Liveness/readiness snapshot served by the admin listener's /healthz:
  /// status ("ok" / "degraded" when jobs are stalled), uptime, session
  /// count, queue depth split, stall count, and per-worker progress
  /// (busy flag, request id being executed, ms since last heartbeat).
  [[nodiscard]] std::string healthzJson();

  [[nodiscard]] bool shutdownRequested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  [[nodiscard]] SessionManager& sessions() noexcept { return manager_; }

 private:
  struct AsyncJob {
    JobHandle handle;
    std::shared_ptr<Session> session;
    std::shared_ptr<std::size_t> applied;  // written by the job body
    // Set on the first sweep that sees the job terminal; the entry is
    // dropped once this passes so unpolled jobs can't pin sessions.
    std::optional<std::chrono::steady_clock::time_point> expireAt;
  };

  /// `requestId` is an out-param so handleLine can echo it even when
  /// dispatch throws after assigning it.
  std::string dispatch(std::string_view line, std::uint64_t& requestId);
  /// Records a completed synchronous job in the slow-request log.
  void logRequest(const char* op, std::uint64_t requestId,
                  std::uint64_t sessionId, const Job& job,
                  std::uint64_t gates);
  /// Drops terminal async jobs the client stopped polling (grace period
  /// ServiceConfig::asyncJobGraceMs). Called on every dispatch.
  void sweepExpiredJobs();

  SessionManager manager_;
  std::atomic<bool> shutdown_{false};
  const std::chrono::steady_clock::time_point startTime_ =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> nextRequestId_{1};

  std::mutex jobsMutex_;
  std::unordered_map<std::uint64_t, AsyncJob> jobs_;
  std::uint64_t nextJobId_ = 1;
};

}  // namespace fdd::svc
