#include "service/protocol.hpp"

#include <charconv>
#include <chrono>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qasm/parser.hpp"
#include "qc/gate.hpp"
#include "simd/kernels.hpp"

namespace fdd::svc {

namespace {

// ---- request field extraction ---------------------------------------------

const json::Object& asObject(const json::Value& v) {
  const json::Object* obj = v.object();
  if (obj == nullptr) {
    throw std::invalid_argument("request must be a JSON object");
  }
  return *obj;
}

const json::Value* findField(const json::Object& obj, std::string_view key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string getString(const json::Object& obj, std::string_view key,
                      std::string fallback = {}) {
  if (const json::Value* v = findField(obj, key)) {
    if (const std::string* s = v->string()) {
      return *s;
    }
    throw std::invalid_argument("field '" + std::string{key} +
                                "' must be a string");
  }
  return fallback;
}

double requireNumber(const json::Object& obj, std::string_view key) {
  const json::Value* v = findField(obj, key);
  if (v == nullptr || v->number() == nullptr) {
    throw std::invalid_argument("field '" + std::string{key} +
                                "' must be a number");
  }
  return *v->number();
}

double getNumber(const json::Object& obj, std::string_view key,
                 double fallback) {
  const json::Value* v = findField(obj, key);
  if (v == nullptr) {
    return fallback;
  }
  if (v->number() == nullptr) {
    throw std::invalid_argument("field '" + std::string{key} +
                                "' must be a number");
  }
  return *v->number();
}

/// Rejects everything a float-to-unsigned cast would silently corrupt or
/// turn into UB: NaN/inf, negatives, fractions, and values above `max`.
std::uint64_t checkedUInt(double d, std::string_view key, std::uint64_t max) {
  if (!std::isfinite(d) || d < 0 || std::floor(d) != d) {
    throw std::invalid_argument("field '" + std::string{key} +
                                "' must be a non-negative integer");
  }
  if (d > static_cast<double>(max)) {
    throw std::invalid_argument("field '" + std::string{key} +
                                "' must be <= " + std::to_string(max));
  }
  return static_cast<std::uint64_t>(d);
}

std::uint64_t requireUInt(const json::Object& obj, std::string_view key,
                          std::uint64_t max) {
  return checkedUInt(requireNumber(obj, key), key, max);
}

std::uint64_t getUInt(const json::Object& obj, std::string_view key,
                      std::uint64_t fallback, std::uint64_t max) {
  const json::Value* v = findField(obj, key);
  if (v == nullptr) {
    return fallback;
  }
  if (v->number() == nullptr) {
    throw std::invalid_argument("field '" + std::string{key} +
                                "' must be a number");
  }
  return checkedUInt(*v->number(), key, max);
}

/// 64-bit integers (seeds) arrive as decimal strings — a JSON number is a
/// double and only carries 53 mantissa bits — but plain numbers are accepted
/// for convenience. Malformed strings are an error, never a silent 0: a
/// typo'd session/job/checkpoint id must not route to a different entity.
std::uint64_t getU64(const json::Object& obj, std::string_view key,
                     std::uint64_t fallback) {
  const json::Value* v = findField(obj, key);
  if (v == nullptr) {
    return fallback;
  }
  if (const std::string* s = v->string()) {
    std::uint64_t out = 0;
    const char* const last = s->data() + s->size();
    const auto [ptr, ec] = std::from_chars(s->data(), last, out, 10);
    if (ec != std::errc{} || ptr != last || s->empty()) {
      throw std::invalid_argument("field '" + std::string{key} +
                                  "' is not an unsigned decimal: '" + *s +
                                  "'");
    }
    return out;
  }
  if (const double* d = v->number()) {
    // Doubles above 2^53 no longer hit every integer — demand a string.
    return checkedUInt(*d, key, std::uint64_t{1} << 53);
  }
  throw std::invalid_argument("field '" + std::string{key} +
                              "' must be a decimal string or number");
}

/// Millisecond duration field (0 = absent/none), bounded to one day so the
/// microsecond conversion at the call sites cannot overflow. Sub-microsecond
/// positives stay positive for the caller's `> 0` check.
double getDurationMs(const json::Object& obj, std::string_view key) {
  const double ms = getNumber(obj, key, 0);
  if (!std::isfinite(ms) || ms < 0 || ms > 86'400'000.0) {
    throw std::invalid_argument("field '" + std::string{key} +
                                "' must be in [0, 86400000] ms");
  }
  return ms;
}

std::chrono::microseconds toMicros(double ms) {
  return std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000.0));
}

bool getBool(const json::Object& obj, std::string_view key) {
  const json::Value* v = findField(obj, key);
  return v != nullptr && v->boolean() != nullptr && *v->boolean();
}

JobOptions jobOptions(const json::Object& obj, std::uint64_t requestId,
                      const char* label) {
  JobOptions opts;
  opts.requestId = requestId;
  opts.label = label;
  const double priority = getNumber(obj, "priority", 0);
  if (!std::isfinite(priority) || std::floor(priority) != priority ||
      std::abs(priority) > 1'000'000.0) {
    throw std::invalid_argument(
        "field 'priority' must be an integer in [-1000000, 1000000]");
  }
  opts.priority = static_cast<int>(priority);
  const double deadlineMs = getDurationMs(obj, "deadline_ms");
  if (deadlineMs > 0) {
    opts.deadline = par::CancelToken::Clock::now() + toMicros(deadlineMs);
  }
  return opts;
}

// ---- circuit construction -------------------------------------------------

qc::GateKind gateKindFromName(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(qc::GateKind::U3); ++k) {
    const auto kind = static_cast<qc::GateKind>(k);
    if (qc::gateName(kind) == name) {
      return kind;
    }
  }
  throw std::invalid_argument("unknown gate '" + name + "'");
}

qc::Circuit circuitFromRequest(const json::Object& obj, Qubit nQubits) {
  qc::Circuit circuit{nQubits, "request"};
  if (const json::Value* qasmField = findField(obj, "qasm")) {
    const std::string* src = qasmField->string();
    if (src == nullptr) {
      throw std::invalid_argument("field 'qasm' must be a string");
    }
    const qc::Circuit parsed = qasm::parse(*src, "request");
    if (parsed.numQubits() > nQubits) {
      throw std::invalid_argument("qasm circuit uses more qubits (" +
                                  std::to_string(parsed.numQubits()) +
                                  ") than the session has");
    }
    for (const qc::Operation& op : parsed) {
      circuit.append(op);
    }
  }
  if (const json::Value* gatesField = findField(obj, "gates")) {
    const json::Array* gates = gatesField->array();
    if (gates == nullptr) {
      throw std::invalid_argument("field 'gates' must be an array");
    }
    for (const json::Value& g : *gates) {
      const json::Object* gate = g.object();
      if (gate == nullptr) {
        throw std::invalid_argument("gate entries must be objects");
      }
      const auto maxQubit = static_cast<std::uint64_t>(nQubits) - 1;
      qc::Operation op;
      op.kind = gateKindFromName(getString(*gate, "gate"));
      op.target = static_cast<Qubit>(requireUInt(*gate, "target", maxQubit));
      if (const json::Value* controls = findField(*gate, "controls")) {
        const json::Array* arr = controls->array();
        if (arr == nullptr) {
          throw std::invalid_argument("'controls' must be an array");
        }
        for (const json::Value& c : *arr) {
          if (c.number() == nullptr) {
            throw std::invalid_argument("control qubits must be numbers");
          }
          op.controls.push_back(static_cast<Qubit>(
              checkedUInt(*c.number(), "controls", maxQubit)));
        }
      }
      if (const json::Value* params = findField(*gate, "params")) {
        const json::Array* arr = params->array();
        if (arr == nullptr) {
          throw std::invalid_argument("'params' must be an array");
        }
        for (const json::Value& p : *arr) {
          if (p.number() == nullptr || !std::isfinite(*p.number())) {
            throw std::invalid_argument("gate params must be finite numbers");
          }
          op.params.push_back(static_cast<fp>(*p.number()));
        }
      }
      if (op.params.size() != qc::gateParamCount(op.kind)) {
        throw std::invalid_argument(
            "gate '" + qc::gateName(op.kind) + "' expects " +
            std::to_string(qc::gateParamCount(op.kind)) + " params");
      }
      circuit.append(std::move(op));
    }
  }
  return circuit;
}

// ---- responses ------------------------------------------------------------

std::string errorResponse(const std::string& message) {
  json::Writer w;
  w.beginObject();
  w.field("ok", false);
  w.field("error", message);
  w.endObject();
  return w.take();
}

std::string jobFailureResponse(const Job& job) {
  json::Writer w;
  w.beginObject();
  w.field("ok", false);
  w.field("state", toString(job.state()));
  const std::string error = job.error();
  w.field("error", error.empty() ? std::string{toString(job.state())}
                                 : error);
  w.endObject();
  return w.take();
}

/// Splices `,<raw>` before the final '}' of a finished one-object response.
/// Works on Writer output and spliced report responses alike — every
/// response is exactly one JSON object.
void spliceRaw(std::string& response, std::string_view raw) {
  if (response.empty() || response.back() != '}') {
    return;
  }
  response.pop_back();
  response += ',';
  response += raw;
  response += '}';
}

void appendRequestId(std::string& response, std::uint64_t requestId) {
  // Decimal string, not a number: u64 ids don't survive a double round-trip.
  spliceRaw(response, "\"request_id\":\"" + std::to_string(requestId) + "\"");
}

void appendJobTiming(std::string& response, const Job& job) {
  spliceRaw(response,
            "\"queue_wait_us\":" +
                json::numberToString(job.queueWaitSeconds() * 1e6) +
                ",\"exec_us\":" +
                json::numberToString(job.executeSeconds() * 1e6));
}

}  // namespace

Service::Service(ServiceConfig config) : manager_{std::move(config)} {}

std::string Service::handleLine(std::string_view line) {
  std::uint64_t requestId = 0;
  std::string response;
  try {
    response = dispatch(line, requestId);
  } catch (const std::exception& e) {
    response = errorResponse(e.what());
  } catch (...) {
    response = errorResponse("unknown error");
  }
  // Echo the id even on errors thrown after it was assigned — the client
  // needs it to correlate the failure with its own records. Appended last
  // so `ok` stays the response's first field for every op.
  if (requestId != 0) {
    appendRequestId(response, requestId);
  }
  return response;
}

void Service::logRequest(const char* op, std::uint64_t requestId,
                         std::uint64_t sessionId, const Job& job,
                         std::uint64_t gates) {
  SlowRequestLog& log = manager_.slowLog();
  if (!log.enabled()) {
    return;
  }
  SlowLogEntry entry;
  entry.op = op;
  entry.requestId = requestId;
  entry.sessionId = sessionId;
  entry.queueWaitMs = job.queueWaitSeconds() * 1e3;
  entry.executeMs = job.executeSeconds() * 1e3;
  entry.totalMs = job.latencySeconds() * 1e3;
  entry.gatesApplied = gates;
  if (const flat::PlanCache* cache = manager_.sharedPlanCache()) {
    entry.planCacheHits = cache->stats().hits;
  }
  entry.simdTier = simd::toString(simd::activeTier());
  entry.state = toString(job.state());
  log.record(entry);
}

std::string Service::healthzJson() {
  JobQueue& queue = manager_.queue();
  const JobQueue::Stats stats = queue.stats();
  const std::size_t stalled = manager_.watchdog().stalledNow();
  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t nowNs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());

  json::Writer w;
  w.beginObject();
  w.field("status", stalled == 0 ? "ok" : "degraded");
  w.field("uptime_seconds",
          std::chrono::duration<double>(now - startTime_).count());
  w.field("sessions", manager_.sessionCount());
  w.beginObjectIn("queue");
  w.field("depth", stats.runnable);
  w.field("stashed", stats.stashed);
  w.field("running", stats.running);
  w.field("workers", static_cast<std::size_t>(queue.workers()));
  w.endObject();
  w.field("jobs_stalled", stalled);
  w.field("jobs_stalled_total",
          static_cast<std::size_t>(manager_.watchdog().stalledTotal()));
  w.beginArray("worker_progress");
  for (unsigned i = 0; i < queue.workers(); ++i) {
    const JobQueue::WorkerProgress p = queue.workerProgress(i);
    w.beginObjectEntry();
    w.field("busy", p.busy);
    w.field("request_id", std::to_string(p.requestId));
    // -1: this worker has not picked up a job yet (no heartbeat written).
    w.field("last_progress_ms",
            p.lastBeatNs == 0
                ? -1.0
                : static_cast<double>(nowNs - p.lastBeatNs) * 1e-6);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.take();
}

void Service::sweepExpiredJobs() {
  const auto now = std::chrono::steady_clock::now();
  const auto grace =
      std::chrono::milliseconds{manager_.config().asyncJobGraceMs};
  const std::lock_guard lock{jobsMutex_};
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    AsyncJob& job = it->second;
    if (!isTerminal(job.handle->state())) {
      ++it;
    } else if (!job.expireAt.has_value()) {
      // First time we see it terminal: start the grace clock so a client
      // that polls promptly still gets the result.
      job.expireAt = now + grace;
      ++it;
    } else if (now >= *job.expireAt) {
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string Service::dispatch(std::string_view line,
                              std::uint64_t& requestId) {
  // Terminal async jobs a client never polls would otherwise pin their
  // session (and its 2^n state) forever via jobs_.
  sweepExpiredJobs();

  const json::Value request = json::parse(line);
  const json::Object& obj = asObject(request);
  const std::string op = getString(obj, "op");

  // Every request gets an id: the client's if supplied, a generated one
  // otherwise. The TLS scope makes every span recorded on this thread (and,
  // via JobOptions, on the worker executing this request's job) carry it.
  requestId = getU64(obj, "request_id", 0);
  if (requestId == 0) {
    requestId = nextRequestId_.fetch_add(1, std::memory_order_relaxed);
  }
  const obs::RequestIdScope requestScope{requestId};
  FDD_TIMED_SCOPE("service.request");
  const bool wantTiming = getBool(obj, "timing");

  if (op == "ping") {
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("op", "ping");
    w.endObject();
    return w.take();
  }

  if (op == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("op", "shutdown");
    w.endObject();
    return w.take();
  }

  if (op == "open") {
    SessionConfig cfg;
    cfg.backend = getString(obj, "backend", "flatdd");
    // 63 keeps `Index{1} << qubits` defined; dense backends run out of
    // memory (a clean error) long before the protocol bound matters.
    cfg.qubits = static_cast<Qubit>(requireUInt(obj, "qubits", 63));
    if (cfg.qubits < 1) {
      throw std::invalid_argument("field 'qubits' must be >= 1");
    }
    cfg.seed = getU64(obj, "seed", 0);
    cfg.maxCheckpoints = getUInt(obj, "max_checkpoints",
                                 cfg.maxCheckpoints, 4096);
    cfg.engine = manager_.config().engineDefaults;
    const auto threads = getUInt(obj, "threads", 0, 1024);
    if (threads > 0) {
      cfg.engine.threads = static_cast<unsigned>(threads);
    }
    // DD-phase worker count (0 = backend default). SessionManager::open
    // clamps it against the global pool, so over-asking is harmless.
    const auto ddThreads = getUInt(obj, "dd_threads", 0, 1024);
    if (ddThreads > 0) {
      cfg.engine.ddThreads = static_cast<unsigned>(ddThreads);
    }
    // "ordering": true arms the scored static-ordering pass; the engine
    // scores the session's first gate batch and permutes transparently.
    if (getBool(obj, "ordering")) {
      cfg.engine.passes.emplace_back("ordering");
    }
    // "dd_reorder": true enables the dynamic reorder trick at the flatdd
    // backend's EWMA trigger (no-op on other backends).
    if (getBool(obj, "dd_reorder")) {
      cfg.engine.ddReorder = true;
    }
    const std::shared_ptr<Session> session = manager_.open(std::move(cfg));
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("session", static_cast<std::size_t>(session->id()));
    w.field("backend", session->config().backend);
    w.field("qubits", static_cast<int>(session->numQubits()));
    w.field("seed", std::to_string(session->config().seed));
    w.endObject();
    return w.take();
  }

  if (op == "job" || op == "cancel") {
    const std::uint64_t jobId = getU64(obj, "job", 0);
    AsyncJob async;
    {
      const std::lock_guard lock{jobsMutex_};
      const auto it = jobs_.find(jobId);
      if (it == jobs_.end()) {
        throw std::invalid_argument("unknown job " + std::to_string(jobId));
      }
      async = it->second;
    }
    if (op == "cancel") {
      async.handle->cancel();
    } else {
      const double waitMs = getDurationMs(obj, "wait_ms");
      if (waitMs > 0) {
        async.handle->waitFor(toMicros(waitMs));
      }
    }
    const JobState state = async.handle->state();
    if (isTerminal(state)) {
      bool firstObservation = false;
      {
        const std::lock_guard lock{jobsMutex_};
        firstObservation = jobs_.erase(jobId) > 0;
      }
      // Async applies are invisible to the per-op slow-log path (the
      // submitting dispatch returned immediately); log them under their
      // original request id when their result is first collected.
      if (firstObservation) {
        logRequest("apply_async", async.handle->requestId(),
                   async.session->id(), *async.handle,
                   async.session->gatesApplied());
      }
    }
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("state", toString(state));
    if (state == JobState::Done) {
      w.field("applied", *async.applied);
      w.field("total_gates", async.session->gatesApplied());
    }
    if (state == JobState::Failed) {
      w.field("error", async.handle->error());
    }
    w.endObject();
    return w.take();
  }

  // Everything below addresses a session.
  if (op != "close" && op != "apply" && op != "sample" &&
      op != "amplitude" && op != "report" && op != "checkpoint" &&
      op != "restore" && op != "release") {
    throw std::invalid_argument("unknown op '" + op + "'");
  }
  const std::uint64_t sessionId = getU64(obj, "session", 0);
  const std::shared_ptr<Session> session = manager_.find(sessionId);
  if (session == nullptr) {
    throw std::invalid_argument("unknown session " +
                                std::to_string(sessionId));
  }

  if (op == "close") {
    manager_.close(sessionId);
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.endObject();
    return w.take();
  }

  if (op == "apply") {
    qc::Circuit chunk = circuitFromRequest(obj, session->numQubits());
    auto applied = std::make_shared<std::size_t>(0);
    const JobHandle handle = manager_.submit(
        session,
        [chunk = std::move(chunk), applied](Session& s,
                                            const par::CancelToken& token) {
          *applied = s.apply(chunk, token);
        },
        jobOptions(obj, requestId, "apply"));
    const json::Value* async = findField(obj, "async");
    if (async != nullptr && async->boolean() != nullptr &&
        *async->boolean()) {
      std::uint64_t jobId = 0;
      {
        const std::lock_guard lock{jobsMutex_};
        jobId = nextJobId_++;
        jobs_.emplace(jobId, AsyncJob{handle, session, applied, {}});
      }
      json::Writer w;
      w.beginObject();
      w.field("ok", true);
      w.field("job", static_cast<std::size_t>(jobId));
      w.endObject();
      return w.take();
    }
    handle->wait();
    logRequest("apply", requestId, sessionId, *handle,
               session->gatesApplied());
    if (handle->state() != JobState::Done) {
      return jobFailureResponse(*handle);
    }
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("applied", *applied);
    w.field("total_gates", session->gatesApplied());
    w.endObject();
    std::string response = w.take();
    if (wantTiming) {
      appendJobTiming(response, *handle);
    }
    return response;
  }

  if (op == "sample") {
    const auto shots =
        static_cast<std::size_t>(requireUInt(obj, "shots", 10'000'000));
    auto outcomes = std::make_shared<std::vector<Index>>();
    const JobHandle handle = manager_.submit(
        session,
        [shots, outcomes](Session& s, const par::CancelToken&) {
          *outcomes = s.sample(shots);
        },
        jobOptions(obj, requestId, "sample"));
    handle->wait();
    logRequest("sample", requestId, sessionId, *handle,
               session->gatesApplied());
    if (handle->state() != JobState::Done) {
      return jobFailureResponse(*handle);
    }
    std::map<Index, std::size_t> counts;
    for (const Index i : *outcomes) {
      ++counts[i];
    }
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("shots", shots);
    w.beginObjectIn("counts");
    for (const auto& [index, count] : counts) {
      w.field(std::to_string(index), count);
    }
    w.endObject();
    w.endObject();
    std::string response = w.take();
    if (wantTiming) {
      appendJobTiming(response, *handle);
    }
    return response;
  }

  if (op == "amplitude") {
    // Backends index the state array directly — an unchecked index would be
    // an out-of-bounds read on behalf of the client.
    const double raw = requireNumber(obj, "index");
    if (!std::isfinite(raw) || raw < 0 || std::floor(raw) != raw ||
        raw >= std::ldexp(1.0, session->numQubits())) {
      throw std::invalid_argument(
          "field 'index' must be an integer in [0, 2^" +
          std::to_string(session->numQubits()) + ")");
    }
    const auto index = static_cast<Index>(raw);
    auto value = std::make_shared<Complex>();
    const JobHandle handle = manager_.submit(
        session,
        [index, value](Session& s, const par::CancelToken&) {
          *value = s.amplitude(index);
        },
        jobOptions(obj, requestId, "amplitude"));
    handle->wait();
    logRequest("amplitude", requestId, sessionId, *handle,
               session->gatesApplied());
    if (handle->state() != JobState::Done) {
      return jobFailureResponse(*handle);
    }
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("re", value->real());
    w.field("im", value->imag());
    w.endObject();
    std::string response = w.take();
    if (wantTiming) {
      appendJobTiming(response, *handle);
    }
    return response;
  }

  if (op == "report") {
    auto report = std::make_shared<engine::RunReport>();
    const JobHandle handle = manager_.submit(
        session,
        [report](Session& s, const par::CancelToken&) {
          *report = s.report();
        },
        jobOptions(obj, requestId, "report"));
    handle->wait();
    if (handle->state() != JobState::Done) {
      return jobFailureResponse(*handle);
    }
    // RunReport::toJson() is already a JSON object — splice it verbatim.
    return std::string{"{\"ok\":true,\"report\":"} + report->toJson() + "}";
  }

  if (op == "checkpoint") {
    auto id = std::make_shared<std::uint64_t>(0);
    const JobHandle handle = manager_.submit(
        session,
        [id](Session& s, const par::CancelToken&) { *id = s.checkpoint(); },
        jobOptions(obj, requestId, "checkpoint"));
    handle->wait();
    if (handle->state() != JobState::Done) {
      return jobFailureResponse(*handle);
    }
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("checkpoint", static_cast<std::size_t>(*id));
    w.endObject();
    return w.take();
  }

  if (op == "restore") {
    const std::uint64_t checkpointId = getU64(obj, "checkpoint", 0);
    const JobHandle handle = manager_.submit(
        session,
        [checkpointId](Session& s, const par::CancelToken&) {
          s.restore(checkpointId);
        },
        jobOptions(obj, requestId, "restore"));
    handle->wait();
    if (handle->state() != JobState::Done) {
      return jobFailureResponse(*handle);
    }
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("total_gates", session->gatesApplied());
    w.endObject();
    return w.take();
  }

  if (op == "release") {
    const std::uint64_t checkpointId = getU64(obj, "checkpoint", 0);
    // Read the count inside the serialized job — checkpoints_ is not safe
    // to inspect from the handler thread.
    auto remaining = std::make_shared<std::size_t>(0);
    const JobHandle handle = manager_.submit(
        session,
        [checkpointId, remaining](Session& s, const par::CancelToken&) {
          s.release(checkpointId);
          *remaining = s.checkpointCount();
        },
        jobOptions(obj, requestId, "release"));
    handle->wait();
    if (handle->state() != JobState::Done) {
      return jobFailureResponse(*handle);
    }
    json::Writer w;
    w.beginObject();
    w.field("ok", true);
    w.field("checkpoints", *remaining);
    w.endObject();
    return w.take();
  }

  throw std::invalid_argument("unknown op '" + op + "'");
}

}  // namespace fdd::svc
