#include "qasm/parser.hpp"

#include <cmath>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "qasm/lexer.hpp"

namespace fdd::qasm {
namespace {

// ---------------------------------------------------------------------------
// Parameter-expression AST. Gate bodies are stored unevaluated; parameters
// bind at expansion time.
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { Number, Param, Unary, Binary, Call } kind;
  fp number = 0;
  std::string name;      // Param: parameter name; Call: function name
  char op = 0;           // Binary: + - * / ^ ; Unary: -
  ExprPtr lhs;
  ExprPtr rhs;           // Binary only
};

using Env = std::map<std::string, fp>;

fp evalExpr(const Expr& e, const Env& env, std::size_t line) {
  switch (e.kind) {
    case Expr::Kind::Number:
      return e.number;
    case Expr::Kind::Param: {
      const auto it = env.find(e.name);
      if (it == env.end()) {
        throw QasmError("unbound parameter '" + e.name + "'", line);
      }
      return it->second;
    }
    case Expr::Kind::Unary:
      return -evalExpr(*e.lhs, env, line);
    case Expr::Kind::Binary: {
      const fp a = evalExpr(*e.lhs, env, line);
      const fp b = evalExpr(*e.rhs, env, line);
      switch (e.op) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/':
          if (b == 0) {
            throw QasmError("division by zero in parameter expression", line);
          }
          return a / b;
        case '^': return std::pow(a, b);
        default: break;
      }
      throw QasmError("bad operator in expression", line);
    }
    case Expr::Kind::Call: {
      const fp a = evalExpr(*e.lhs, env, line);
      if (e.name == "sin") return std::sin(a);
      if (e.name == "cos") return std::cos(a);
      if (e.name == "tan") return std::tan(a);
      if (e.name == "exp") return std::exp(a);
      if (e.name == "ln") return std::log(a);
      if (e.name == "sqrt") return std::sqrt(a);
      throw QasmError("unknown function '" + e.name + "'", line);
    }
  }
  throw QasmError("bad expression", line);
}

// ---------------------------------------------------------------------------
// User-defined gates (macros).
// ---------------------------------------------------------------------------

/// One statement inside a gate body: a call to another gate.
struct BodyCall {
  std::string name;
  std::vector<ExprPtr> params;
  std::vector<std::string> qargs;  // names of the enclosing gate's qubit args
  std::size_t line = 0;
};

struct GateDef {
  std::vector<std::string> paramNames;
  std::vector<std::string> qargNames;
  std::vector<BodyCall> body;
};

/// Argument of a top-level statement: whole register or one element.
struct QArg {
  std::string reg;
  std::optional<Index> index;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(std::string_view src, std::string name)
      : tokens_{tokenize(src)}, circuitName_{std::move(name)} {}

  qc::Circuit run() {
    parseHeader();
    // First pass: find total qubit count so the Circuit can be constructed.
    // We parse statements in order; qregs must precede their first use, as
    // OpenQASM requires, so we build incrementally into a staging list.
    while (peek().kind != TokenKind::Eof) {
      statement();
    }
    if (totalQubits_ == 0) {
      throw QasmError("no qreg declared", 1);
    }
    qc::Circuit c{static_cast<Qubit>(totalQubits_), circuitName_};
    for (auto& op : staged_) {
      c.append(std::move(op));
    }
    return c;
  }

 private:
  // ---- token helpers ----
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool match(TokenKind k) {
    if (peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(TokenKind k, const char* what) {
    if (peek().kind != k) {
      throw QasmError(std::string("expected ") + what, peek().line);
    }
    return tokens_[pos_++];
  }
  std::string expectIdentifier(const char* what) {
    return expect(TokenKind::Identifier, what).text;
  }

  // ---- grammar ----
  void parseHeader() {
    // OPENQASM <real>; — optional to accept bare gate files.
    if (peek().kind == TokenKind::Identifier && peek().text == "OPENQASM") {
      advance();
      expect(TokenKind::Real, "version number");
      expect(TokenKind::Semicolon, "';'");
    }
  }

  void statement() {
    const Token& tok = peek();
    if (tok.kind != TokenKind::Identifier) {
      throw QasmError("expected statement", tok.line);
    }
    const std::string& kw = tok.text;
    if (kw == "include") {
      advance();
      expect(TokenKind::String, "include path");
      expect(TokenKind::Semicolon, "';'");
      return;  // qelib1 built-ins are always available
    }
    if (kw == "qreg") {
      advance();
      const std::string name = expectIdentifier("register name");
      expect(TokenKind::LBracket, "'['");
      const auto size = static_cast<Index>(
          expect(TokenKind::Real, "register size").value);
      expect(TokenKind::RBracket, "']'");
      expect(TokenKind::Semicolon, "';'");
      if (size == 0) {
        throw QasmError("zero-sized qreg '" + name + "'", tok.line);
      }
      if (qregs_.count(name) != 0) {
        throw QasmError("redefinition of qreg '" + name + "'", tok.line);
      }
      qregs_[name] = {totalQubits_, size};
      totalQubits_ += size;
      return;
    }
    if (kw == "creg") {
      advance();
      expectIdentifier("register name");
      expect(TokenKind::LBracket, "'['");
      expect(TokenKind::Real, "register size");
      expect(TokenKind::RBracket, "']'");
      expect(TokenKind::Semicolon, "';'");
      return;  // classical registers are irrelevant to strong simulation
    }
    if (kw == "gate") {
      parseGateDef();
      return;
    }
    if (kw == "opaque") {
      // opaque name(params) qargs; — skip to semicolon.
      skipToSemicolon();
      return;
    }
    if (kw == "barrier") {
      skipToSemicolon();
      return;
    }
    if (kw == "measure" || kw == "reset") {
      skipToSemicolon();
      return;
    }
    if (kw == "if") {
      throw QasmError("classically controlled operations are not supported",
                      tok.line);
    }
    parseGateCallStatement();
  }

  void skipToSemicolon() {
    while (peek().kind != TokenKind::Semicolon &&
           peek().kind != TokenKind::Eof) {
      advance();
    }
    match(TokenKind::Semicolon);
  }

  void parseGateDef() {
    const std::size_t line = peek().line;
    advance();  // 'gate'
    const std::string name = expectIdentifier("gate name");
    GateDef def;
    if (match(TokenKind::LParen)) {
      if (peek().kind != TokenKind::RParen) {
        do {
          def.paramNames.push_back(expectIdentifier("parameter name"));
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "')'");
    }
    do {
      def.qargNames.push_back(expectIdentifier("qubit argument"));
    } while (match(TokenKind::Comma));
    expect(TokenKind::LBrace, "'{'");
    while (!match(TokenKind::RBrace)) {
      if (peek().kind == TokenKind::Eof) {
        throw QasmError("unterminated gate body", line);
      }
      if (peek().kind == TokenKind::Identifier && peek().text == "barrier") {
        skipToSemicolon();
        continue;
      }
      def.body.push_back(parseBodyCall(def));
    }
    gateDefs_[name] = std::move(def);
  }

  BodyCall parseBodyCall(const GateDef& enclosing) {
    BodyCall call;
    call.line = peek().line;
    call.name = expectIdentifier("gate name");
    if (match(TokenKind::LParen)) {
      if (peek().kind != TokenKind::RParen) {
        do {
          call.params.push_back(parseExpr(enclosing.paramNames));
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "')'");
    }
    do {
      const std::string q = expectIdentifier("qubit argument");
      bool known = false;
      for (const auto& a : enclosing.qargNames) {
        known |= (a == q);
      }
      if (!known) {
        throw QasmError("unknown qubit argument '" + q + "' in gate body",
                        call.line);
      }
      call.qargs.push_back(q);
    } while (match(TokenKind::Comma));
    expect(TokenKind::Semicolon, "';'");
    return call;
  }

  // expr := term (('+'|'-') term)*
  // term := factor (('*'|'/') factor)*
  // factor := unary ('^' factor)?      (right-associative power)
  // unary := '-' unary | primary
  // primary := number | pi | ident | ident '(' expr ')' | '(' expr ')'
  ExprPtr parseExpr(const std::vector<std::string>& params) {
    ExprPtr lhs = parseTerm(params);
    while (peek().kind == TokenKind::Plus || peek().kind == TokenKind::Minus) {
      const char op = peek().kind == TokenKind::Plus ? '+' : '-';
      advance();
      ExprPtr rhs = parseTerm(params);
      lhs = std::make_shared<Expr>(
          Expr{Expr::Kind::Binary, 0, {}, op, lhs, rhs});
    }
    return lhs;
  }

  ExprPtr parseTerm(const std::vector<std::string>& params) {
    ExprPtr lhs = parseFactor(params);
    while (peek().kind == TokenKind::Star || peek().kind == TokenKind::Slash) {
      const char op = peek().kind == TokenKind::Star ? '*' : '/';
      advance();
      ExprPtr rhs = parseFactor(params);
      lhs = std::make_shared<Expr>(
          Expr{Expr::Kind::Binary, 0, {}, op, lhs, rhs});
    }
    return lhs;
  }

  ExprPtr parseFactor(const std::vector<std::string>& params) {
    ExprPtr base = parseUnary(params);
    if (match(TokenKind::Caret)) {
      ExprPtr exp = parseFactor(params);
      return std::make_shared<Expr>(
          Expr{Expr::Kind::Binary, 0, {}, '^', base, exp});
    }
    return base;
  }

  ExprPtr parseUnary(const std::vector<std::string>& params) {
    if (match(TokenKind::Minus)) {
      ExprPtr inner = parseUnary(params);
      return std::make_shared<Expr>(
          Expr{Expr::Kind::Unary, 0, {}, '-', inner, nullptr});
    }
    return parsePrimary(params);
  }

  ExprPtr parsePrimary(const std::vector<std::string>& params) {
    const Token& tok = peek();
    if (tok.kind == TokenKind::Real) {
      advance();
      return std::make_shared<Expr>(
          Expr{Expr::Kind::Number, tok.value, {}, 0, nullptr, nullptr});
    }
    if (tok.kind == TokenKind::Pi) {
      advance();
      return std::make_shared<Expr>(
          Expr{Expr::Kind::Number, PI, {}, 0, nullptr, nullptr});
    }
    if (tok.kind == TokenKind::LParen) {
      advance();
      ExprPtr inner = parseExpr(params);
      expect(TokenKind::RParen, "')'");
      return inner;
    }
    if (tok.kind == TokenKind::Identifier) {
      advance();
      if (peek().kind == TokenKind::LParen) {  // function call
        advance();
        ExprPtr arg = parseExpr(params);
        expect(TokenKind::RParen, "')'");
        return std::make_shared<Expr>(
            Expr{Expr::Kind::Call, 0, tok.text, 0, arg, nullptr});
      }
      for (const auto& p : params) {
        if (p == tok.text) {
          return std::make_shared<Expr>(
              Expr{Expr::Kind::Param, 0, tok.text, 0, nullptr, nullptr});
        }
      }
      throw QasmError("unknown identifier '" + tok.text + "' in expression",
                      tok.line);
    }
    throw QasmError("expected expression", tok.line);
  }

  // ---- top-level gate applications ----

  void parseGateCallStatement() {
    const std::size_t line = peek().line;
    const std::string name = expectIdentifier("gate name");
    std::vector<fp> params;
    if (match(TokenKind::LParen)) {
      if (peek().kind != TokenKind::RParen) {
        do {
          // Top-level parameters are closed expressions.
          params.push_back(evalExpr(*parseExpr({}), {}, line));
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "')'");
    }
    std::vector<QArg> args;
    do {
      QArg a;
      a.reg = expectIdentifier("qubit operand");
      if (match(TokenKind::LBracket)) {
        a.index = static_cast<Index>(
            expect(TokenKind::Real, "qubit index").value);
        expect(TokenKind::RBracket, "']'");
      }
      args.push_back(std::move(a));
    } while (match(TokenKind::Comma));
    expect(TokenKind::Semicolon, "';'");
    broadcast(name, params, args, line);
  }

  /// Resolves register broadcasting: whole-register operands apply the gate
  /// elementwise; sizes of all whole registers in one statement must agree.
  void broadcast(const std::string& name, const std::vector<fp>& params,
                 const std::vector<QArg>& args, std::size_t line) {
    Index width = 1;
    for (const auto& a : args) {
      if (!a.index) {
        const Index size = regSize(a.reg, line);
        if (width != 1 && size != width) {
          throw QasmError("register size mismatch in broadcast", line);
        }
        width = std::max(width, size);
      }
    }
    for (Index k = 0; k < width; ++k) {
      std::vector<Qubit> qubits;
      qubits.reserve(args.size());
      for (const auto& a : args) {
        qubits.push_back(resolve(a, k, line));
      }
      applyGate(name, params, qubits, line, 0);
    }
  }

  Index regSize(const std::string& reg, std::size_t line) const {
    const auto it = qregs_.find(reg);
    if (it == qregs_.end()) {
      throw QasmError("unknown qreg '" + reg + "'", line);
    }
    return it->second.second;
  }

  Qubit resolve(const QArg& a, Index k, std::size_t line) const {
    const auto it = qregs_.find(a.reg);
    if (it == qregs_.end()) {
      throw QasmError("unknown qreg '" + a.reg + "'", line);
    }
    const auto [offset, size] = it->second;
    const Index idx = a.index.value_or(k);
    if (idx >= size) {
      throw QasmError("qubit index out of range for '" + a.reg + "'", line);
    }
    return static_cast<Qubit>(offset + idx);
  }

  /// Applies a (possibly user-defined) gate to concrete qubits.
  void applyGate(const std::string& name, const std::vector<fp>& params,
                 const std::vector<Qubit>& qubits, std::size_t line,
                 unsigned depth) {
    if (depth > 64) {
      throw QasmError("gate expansion too deep (recursive definition?)", line);
    }
    if (emitBuiltin(name, params, qubits, line)) {
      return;
    }
    const auto it = gateDefs_.find(name);
    if (it == gateDefs_.end()) {
      throw QasmError("unknown gate '" + name + "'", line);
    }
    const GateDef& def = it->second;
    if (params.size() != def.paramNames.size()) {
      throw QasmError("gate '" + name + "' parameter count mismatch", line);
    }
    if (qubits.size() != def.qargNames.size()) {
      throw QasmError("gate '" + name + "' qubit count mismatch", line);
    }
    Env env;
    for (std::size_t i = 0; i < params.size(); ++i) {
      env[def.paramNames[i]] = params[i];
    }
    std::map<std::string, Qubit> qmap;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      qmap[def.qargNames[i]] = qubits[i];
    }
    for (const auto& call : def.body) {
      std::vector<fp> callParams;
      callParams.reserve(call.params.size());
      for (const auto& e : call.params) {
        callParams.push_back(evalExpr(*e, env, call.line));
      }
      std::vector<Qubit> callQubits;
      callQubits.reserve(call.qargs.size());
      for (const auto& q : call.qargs) {
        callQubits.push_back(qmap.at(q));
      }
      applyGate(call.name, callParams, callQubits, call.line, depth + 1);
    }
  }

  /// qelib1 + OpenQASM built-ins. Returns false if `name` is not built in.
  bool emitBuiltin(const std::string& name, const std::vector<fp>& p,
                   const std::vector<Qubit>& q, std::size_t line) {
    using K = qc::GateKind;
    auto emit = [&](K kind, std::vector<Qubit> controls, Qubit target,
                    std::vector<fp> params = {}) {
      staged_.push_back(qc::Operation{kind, target, std::move(controls),
                                      std::move(params)});
    };
    auto need = [&](std::size_t nq, std::size_t np) {
      if (q.size() != nq || p.size() != np) {
        throw QasmError("gate '" + name + "' arity mismatch", line);
      }
    };
    if (name == "U" || name == "u3" || name == "u") {
      need(1, 3);
      emit(K::U3, {}, q[0], {p[0], p[1], p[2]});
    } else if (name == "u2") {
      need(1, 2);
      emit(K::U2, {}, q[0], {p[0], p[1]});
    } else if (name == "u1" || name == "p") {
      need(1, 1);
      emit(K::P, {}, q[0], {p[0]});
    } else if (name == "CX" || name == "cx") {
      need(2, 0);
      emit(K::X, {q[0]}, q[1]);
    } else if (name == "id") {
      need(1, 0);
      emit(K::I, {}, q[0]);
    } else if (name == "h") {
      need(1, 0);
      emit(K::H, {}, q[0]);
    } else if (name == "x") {
      need(1, 0);
      emit(K::X, {}, q[0]);
    } else if (name == "y") {
      need(1, 0);
      emit(K::Y, {}, q[0]);
    } else if (name == "z") {
      need(1, 0);
      emit(K::Z, {}, q[0]);
    } else if (name == "s") {
      need(1, 0);
      emit(K::S, {}, q[0]);
    } else if (name == "sdg") {
      need(1, 0);
      emit(K::Sdg, {}, q[0]);
    } else if (name == "t") {
      need(1, 0);
      emit(K::T, {}, q[0]);
    } else if (name == "tdg") {
      need(1, 0);
      emit(K::Tdg, {}, q[0]);
    } else if (name == "sx") {
      need(1, 0);
      emit(K::SX, {}, q[0]);
    } else if (name == "sxdg") {
      need(1, 0);
      emit(K::SXdg, {}, q[0]);
    } else if (name == "rx") {
      need(1, 1);
      emit(K::RX, {}, q[0], {p[0]});
    } else if (name == "ry") {
      need(1, 1);
      emit(K::RY, {}, q[0], {p[0]});
    } else if (name == "rz") {
      need(1, 1);
      emit(K::RZ, {}, q[0], {p[0]});
    } else if (name == "cy") {
      need(2, 0);
      emit(K::Y, {q[0]}, q[1]);
    } else if (name == "cz") {
      need(2, 0);
      emit(K::Z, {q[0]}, q[1]);
    } else if (name == "ch") {
      need(2, 0);
      emit(K::H, {q[0]}, q[1]);
    } else if (name == "cp" || name == "cu1") {
      need(2, 1);
      emit(K::P, {q[0]}, q[1], {p[0]});
    } else if (name == "crx") {
      need(2, 1);
      emit(K::RX, {q[0]}, q[1], {p[0]});
    } else if (name == "cry") {
      need(2, 1);
      emit(K::RY, {q[0]}, q[1], {p[0]});
    } else if (name == "crz") {
      need(2, 1);
      emit(K::RZ, {q[0]}, q[1], {p[0]});
    } else if (name == "ccx") {
      need(3, 0);
      emit(K::X, {q[0], q[1]}, q[2]);
    } else if (name == "ccz") {
      need(3, 0);
      emit(K::Z, {q[0], q[1]}, q[2]);
    } else if (name == "swap") {
      need(2, 0);
      emit(K::X, {q[0]}, q[1]);
      emit(K::X, {q[1]}, q[0]);
      emit(K::X, {q[0]}, q[1]);
    } else if (name == "cswap") {
      need(3, 0);
      emit(K::X, {q[2]}, q[1]);
      emit(K::X, {q[0], q[1]}, q[2]);
      emit(K::X, {q[2]}, q[1]);
    } else if (name == "sy") {
      need(1, 0);
      emit(K::SY, {}, q[0]);
    } else if (name == "sydg") {
      need(1, 0);
      emit(K::SYdg, {}, q[0]);
    } else if (name == "sw") {
      need(1, 0);
      emit(K::SW, {}, q[0]);
    } else if (name == "swdg") {
      need(1, 0);
      emit(K::SWdg, {}, q[0]);
    } else if (name.size() > 2 && name.rfind("mc", 0) == 0) {
      // Extension mnemonics (written by Circuit::toQasm): mc<gate> applies
      // <gate> to the last operand under all preceding operands as controls.
      const std::string inner = name.substr(2);
      static const std::map<std::string, std::pair<K, unsigned>> kInnerGates{
          {"x", {K::X, 0}},   {"y", {K::Y, 0}},     {"z", {K::Z, 0}},
          {"h", {K::H, 0}},   {"p", {K::P, 1}},     {"rx", {K::RX, 1}},
          {"ry", {K::RY, 1}}, {"rz", {K::RZ, 1}},   {"u2", {K::U2, 2}},
          {"u3", {K::U3, 3}}, {"s", {K::S, 0}},     {"sdg", {K::Sdg, 0}},
          {"t", {K::T, 0}},   {"tdg", {K::Tdg, 0}}, {"sx", {K::SX, 0}},
          {"sxdg", {K::SXdg, 0}}, {"sy", {K::SY, 0}}, {"sydg", {K::SYdg, 0}},
          {"sw", {K::SW, 0}}, {"swdg", {K::SWdg, 0}}, {"id", {K::I, 0}}};
      const auto it = kInnerGates.find(inner);
      if (it == kInnerGates.end()) {
        return false;
      }
      if (q.size() < 2 || p.size() != it->second.second) {
        throw QasmError("gate '" + name + "' arity mismatch", line);
      }
      const std::vector<Qubit> controls(q.begin(), q.end() - 1);
      emit(it->second.first, controls, q.back(), p);
    } else {
      return false;
    }
    return true;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string circuitName_;
  std::map<std::string, std::pair<Index, Index>> qregs_;  // name->(offset,size)
  Index totalQubits_ = 0;
  std::map<std::string, GateDef> gateDefs_;
  std::vector<qc::Operation> staged_;
};

}  // namespace

qc::Circuit parse(std::string_view source, std::string name) {
  return Parser{source, std::move(name)}.run();
}

qc::Circuit parseFile(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error("cannot open QASM file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string base = path;
  if (const auto slash = base.find_last_of('/'); slash != std::string::npos) {
    base = base.substr(slash + 1);
  }
  return parse(buf.str(), base);
}

}  // namespace fdd::qasm
