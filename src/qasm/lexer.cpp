#include "qasm/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace fdd::qasm {

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = src.size();

  auto push = [&](TokenKind k, std::string text = {}, fp value = 0) {
    out.push_back(Token{k, std::move(text), value, line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) != 0 ||
                       src[j] == '_')) {
        ++j;
      }
      std::string word{src.substr(i, j - i)};
      if (word == "pi") {
        push(TokenKind::Pi);
      } else {
        push(TokenKind::Identifier, std::move(word));
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(src[j])) != 0 ||
                       src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      const std::string num{src.substr(i, j - i)};
      char* end = nullptr;
      const fp value = std::strtod(num.c_str(), &end);
      if (end != num.c_str() + num.size()) {
        throw QasmError("malformed number '" + num + "'", line);
      }
      push(TokenKind::Real, num, value);
      i = j;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') {
        if (src[j] == '\n') {
          throw QasmError("unterminated string literal", line);
        }
        ++j;
      }
      if (j >= n) {
        throw QasmError("unterminated string literal", line);
      }
      push(TokenKind::String, std::string{src.substr(i + 1, j - i - 1)});
      i = j + 1;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      push(TokenKind::Arrow);
      i += 2;
      continue;
    }
    if (c == '=' && i + 1 < n && src[i + 1] == '=') {
      push(TokenKind::Equals);
      i += 2;
      continue;
    }
    switch (c) {
      case ';': push(TokenKind::Semicolon); break;
      case ',': push(TokenKind::Comma); break;
      case '(': push(TokenKind::LParen); break;
      case ')': push(TokenKind::RParen); break;
      case '{': push(TokenKind::LBrace); break;
      case '}': push(TokenKind::RBrace); break;
      case '[': push(TokenKind::LBracket); break;
      case ']': push(TokenKind::RBracket); break;
      case '+': push(TokenKind::Plus); break;
      case '-': push(TokenKind::Minus); break;
      case '*': push(TokenKind::Star); break;
      case '/': push(TokenKind::Slash); break;
      case '^': push(TokenKind::Caret); break;
      default:
        throw QasmError(std::string("unexpected character '") + c + "'", line);
    }
    ++i;
  }
  push(TokenKind::Eof);
  return out;
}

}  // namespace fdd::qasm
