#pragma once
// Tokenizer for the OpenQASM 2.0 subset accepted by qasm::parse.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace fdd::qasm {

enum class TokenKind {
  Identifier,
  Real,       // numeric literal (integer or real); value in Token::value
  Pi,
  String,     // quoted, quotes stripped
  Semicolon,
  Comma,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Plus,
  Minus,
  Star,
  Slash,
  Caret,
  Arrow,      // ->
  Equals,     // ==
  Eof,
};

struct Token {
  TokenKind kind = TokenKind::Eof;
  std::string text;   // identifier / string spelling
  fp value = 0;       // numeric literals
  std::size_t line = 0;
};

/// Exception raised on malformed input, carrying the offending line number.
class QasmError : public std::runtime_error {
 public:
  QasmError(const std::string& message, std::size_t line)
      : std::runtime_error("qasm:" + std::to_string(line) + ": " + message),
        line_{line} {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Tokenizes `source`; strips // comments; throws QasmError on bad input.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace fdd::qasm
