#pragma once
// Recursive-descent parser for an OpenQASM 2.0 subset sufficient for
// QASMBench / MQT-Bench style circuit files:
//   - OPENQASM 2.0; include "...";          (includes resolved as qelib1)
//   - qreg / creg declarations               (qregs concatenated LSB-first)
//   - built-in U / CX plus the qelib1 gate set
//   - user `gate` definitions with parameter expressions (macro-expanded)
//   - barrier (ignored), measure / reset (ignored: strong simulation)
//   - parameter expressions over + - * / ^, unary -, pi, and the functions
//     sin cos tan exp ln sqrt

#include <string>
#include <string_view>

#include "qc/circuit.hpp"

namespace fdd::qasm {

/// Parses QASM source text into a lowered Circuit. Throws QasmError.
[[nodiscard]] qc::Circuit parse(std::string_view source,
                                std::string name = "qasm");

/// Reads and parses a .qasm file. Throws std::runtime_error if unreadable.
[[nodiscard]] qc::Circuit parseFile(const std::string& path);

}  // namespace fdd::qasm
