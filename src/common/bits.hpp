#pragma once
// Bit-manipulation helpers used by the simulators' index arithmetic.

#include <bit>
#include <cassert>
#include <cstdint>

#include "common/types.hpp"

namespace fdd {

[[nodiscard]] constexpr bool isPowerOfTwo(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); x must be nonzero.
[[nodiscard]] constexpr std::uint32_t ilog2(std::uint64_t x) noexcept {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// Largest power of two <= x; x must be nonzero.
[[nodiscard]] constexpr std::uint64_t floorPowerOfTwo(std::uint64_t x) noexcept {
  return std::uint64_t{1} << ilog2(x);
}

/// Inserts a zero bit at position `pos`, shifting higher bits left.
/// insertBit(0b101, 1) == 0b1001. Used to enumerate amplitude pairs that a
/// single-qubit gate on qubit `pos` acts on (Eq. 2 of the paper).
[[nodiscard]] constexpr Index insertBit(Index x, Qubit pos) noexcept {
  const Index low = x & ((Index{1} << pos) - 1);
  const Index high = (x >> pos) << (pos + 1);
  return high | low;
}

/// Inserts two zero bits at distinct positions p0 < p1 (post-insertion
/// positions). Enumerates the 4-amplitude groups of a two-qubit gate.
[[nodiscard]] constexpr Index insertTwoBits(Index x, Qubit p0, Qubit p1) noexcept {
  assert(p0 < p1);
  return insertBit(insertBit(x, p0), p1);
}

/// Scatters the low bits of `value` into the set positions of `mask`
/// (software PDEP): bit i of `value` lands at the position of the i-th
/// lowest set bit of `mask`. Used to seed masked-counter enumerations at an
/// arbitrary start index (parallel chunking of control-run decompositions).
[[nodiscard]] constexpr Index scatterBits(Index value, Index mask) noexcept {
  Index out = 0;
  while (value != 0 && mask != 0) {
    const Index pos = mask & (~mask + 1);
    if ((value & 1u) != 0) {
      out |= pos;
    }
    value >>= 1;
    mask &= mask - 1;
  }
  return out;
}

[[nodiscard]] constexpr bool testBit(Index x, Qubit pos) noexcept {
  return ((x >> pos) & 1u) != 0;
}

[[nodiscard]] constexpr Index setBit(Index x, Qubit pos) noexcept {
  return x | (Index{1} << pos);
}

[[nodiscard]] constexpr Index clearBit(Index x, Qubit pos) noexcept {
  return x & ~(Index{1} << pos);
}

}  // namespace fdd
