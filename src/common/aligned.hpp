#pragma once
// Cache-line / SIMD-lane aligned storage for flat state vectors. AVX2 loads
// are fastest on 32-byte-aligned data; we align to 64 to also avoid false
// sharing between per-thread output segments.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace fdd {

inline constexpr std::size_t kAlignment = 64;

template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) {
      return nullptr;
    }
    void* p = std::aligned_alloc(kAlignment, roundUp(n * sizeof(T)));
    if (p == nullptr) {
      throw std::bad_alloc{};
    }
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }

 private:
  static std::size_t roundUp(std::size_t bytes) noexcept {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }
};

/// A 64-byte aligned vector; the canonical flat state-vector storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace fdd
