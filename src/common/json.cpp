#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace fdd::json {

void escapeTo(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string numberToString(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  Value parse() {
    const Value value = parseValue();
    skipWs();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("json::parse: " + std::string(what) +
                                " at offset " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skipWs();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail("unexpected character");
    }
    ++pos_;
  }

  bool consumeIf(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value parseValue() {
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Value{parseString()};
      case 't': literal("true"); return Value{true};
      case 'f': literal("false"); return Value{false};
      case 'n': literal("null"); return Value{nullptr};
      default: return parseNumber();
    }
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad literal");
    }
    pos_ += word.size();
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("bad \\u escape");
          }
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
          }
          pos_ += 4;
          // Our writers only escape control characters; anything else is
          // kept as a replacement since reports never contain non-ASCII.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parseNumber() {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    double value = 0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (pos_ == start || res.ec != std::errc{} ||
        res.ptr != text_.data() + pos_) {
      fail("bad number");
    }
    return Value{value};
  }

  Value parseObject() {
    expect('{');
    auto obj = std::make_shared<Object>();
    if (!consumeIf('}')) {
      do {
        std::string key = parseString();
        expect(':');
        obj->emplace(std::move(key), parseValue());
      } while (consumeIf(','));
      expect('}');
    }
    return Value{std::move(obj)};
  }

  Value parseArray() {
    expect('[');
    auto arr = std::make_shared<Array>();
    if (!consumeIf(']')) {
      do {
        arr->push_back(parseValue());
      } while (consumeIf(','));
      expect(']');
    }
    return Value{std::move(arr)};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser{text}.parse(); }

}  // namespace fdd::json
