#include "common/rss.hpp"

#include <cstdio>
#include <cstring>

namespace fdd {
namespace {

// Scans /proc/self/status for a "Key:   <n> kB" line and returns n in bytes.
std::size_t readStatusField(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  std::size_t bytes = 0;
  const std::size_t keyLen = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, keyLen) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + keyLen, ": %llu kB", &kb) == 1) {
        bytes = static_cast<std::size_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

std::size_t currentRSS() { return readStatusField("VmRSS"); }

std::size_t peakRSS() {
  // Some container kernels do not expose VmHWM; fall back to the current
  // RSS so callers always get a usable lower bound.
  const std::size_t hwm = readStatusField("VmHWM");
  return hwm != 0 ? hwm : currentRSS();
}

}  // namespace fdd
