#pragma once
// Fundamental scalar types and numeric constants shared by every subsystem.

#include <complex>
#include <cstddef>
#include <cstdint>

namespace fdd {

/// Floating-point precision used for all amplitudes and edge weights.
using fp = double;

/// A complex amplitude.
using Complex = std::complex<fp>;

/// Index into a flat state vector (supports up to 63 qubits).
using Index = std::uint64_t;

/// Qubit label. Qubit 0 is the least-significant bit of a basis-state index.
using Qubit = std::int32_t;

inline constexpr fp SQRT2 = 1.4142135623730950488016887242096980786;
inline constexpr fp SQRT2_INV = 0.7071067811865475244008443621048490393;
inline constexpr fp PI = 3.1415926535897932384626433832795028842;

/// Tolerance under which two amplitudes are considered equal. This is the
/// same role as DDSIM's complex-table tolerance: it controls when decision
/// diagram nodes merge.
inline constexpr fp EPS = 1e-12;

/// State-vector dimension below which per-gate kernels run single-threaded.
/// Waking the pool and joining it costs tens of microseconds per gate, while
/// an amplitude-pair update costs a few nanoseconds; below ~2^13 amplitudes
/// the fork/join latency dominates the kernel itself, so threading loses.
/// Shared by the array simulator and the DMAV phase of FlatDD (historically
/// two divergent defaults, 2^12 and 2^13; benchmarked on both kernels, the
/// crossover sits at the larger value).
inline constexpr Index kParallelThresholdDim = Index{1} << 13;

/// |z| squared without the sqrt of std::abs.
[[nodiscard]] inline fp norm2(const Complex& z) noexcept {
  return z.real() * z.real() + z.imag() * z.imag();
}

/// Approximate equality under EPS, component-wise.
[[nodiscard]] inline bool approxEqual(const Complex& a, const Complex& b,
                                      fp tol = EPS) noexcept {
  const fp dr = a.real() - b.real();
  const fp di = a.imag() - b.imag();
  return dr < tol && dr > -tol && di < tol && di > -tol;
}

[[nodiscard]] inline bool approxZero(const Complex& z, fp tol = EPS) noexcept {
  return approxEqual(z, Complex{0.0, 0.0}, tol);
}

[[nodiscard]] inline bool approxOne(const Complex& z, fp tol = EPS) noexcept {
  return approxEqual(z, Complex{1.0, 0.0}, tol);
}

}  // namespace fdd
