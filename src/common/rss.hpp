#pragma once
// Resident-set-size probes. The paper measures memory as the maximum RSS
// reported by /bin/time; we read the same counters from /proc.

#include <cstddef>

namespace fdd {

/// Current resident set size in bytes (VmRSS), or 0 if unavailable.
[[nodiscard]] std::size_t currentRSS();

/// Peak resident set size in bytes (VmHWM), or 0 if unavailable.
[[nodiscard]] std::size_t peakRSS();

}  // namespace fdd
