#pragma once
// Minimal JSON reader/writer shared by RunReport serialization, the Chrome
// trace exporter and the trace summarizer. The parser accepts the subset our
// writers emit (objects, arrays, strings, numbers, booleans, null) plus
// hand-edited variants of it; the writer is append-only with keys emitted in
// call order. Neither allocates beyond the value tree / output string.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace fdd::json {

struct Value;
using Object = std::map<std::string, Value, std::less<>>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      v = nullptr;

  [[nodiscard]] const Object* object() const {
    const auto* p = std::get_if<std::shared_ptr<Object>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const Array* array() const {
    const auto* p = std::get_if<std::shared_ptr<Array>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const std::string* string() const {
    return std::get_if<std::string>(&v);
  }
  [[nodiscard]] const double* number() const {
    return std::get_if<double>(&v);
  }
  [[nodiscard]] const bool* boolean() const { return std::get_if<bool>(&v); }
};

/// Parses one JSON document. Throws std::invalid_argument (message includes
/// the byte offset) on malformed input or trailing characters.
[[nodiscard]] Value parse(std::string_view text);

/// Appends `s` as a quoted JSON string (control characters escaped).
void escapeTo(std::string& out, std::string_view s);

/// Shortest decimal representation that round-trips the double exactly.
[[nodiscard]] std::string numberToString(double v);

/// Tiny append-only JSON object/array writer (keys are emitted in call
/// order; no pretty-printing).
class Writer {
 public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray(std::string_view key) {
    keyTo(key);
    open('[');
  }
  void beginArrayEntry() { open('['); }
  void endArray() { close(']'); }
  void beginObjectIn(std::string_view key) {
    keyTo(key);
    open('{');
  }
  void beginObjectEntry() { open('{'); }

  void field(std::string_view key, std::string_view v) {
    keyTo(key);
    escapeTo(out_, v);
    valueDone();
  }
  // Without this overload a string-literal value resolves to field(..., bool)
  // — pointer-to-bool is a standard conversion, string_view's converting
  // constructor is not.
  void field(std::string_view key, const char* v) {
    field(key, std::string_view{v});
  }
  void field(std::string_view key, double v) {
    keyTo(key);
    out_ += numberToString(v);
    valueDone();
  }
  void field(std::string_view key, std::size_t v) {
    keyTo(key);
    out_ += std::to_string(v);
    valueDone();
  }
  void field(std::string_view key, unsigned v) {
    keyTo(key);
    out_ += std::to_string(v);
    valueDone();
  }
  void field(std::string_view key, int v) {
    keyTo(key);
    out_ += std::to_string(v);
    valueDone();
  }
  void field(std::string_view key, bool v) {
    keyTo(key);
    out_ += v ? "true" : "false";
    valueDone();
  }

  /// A bare array element (inside beginArray/beginArrayEntry).
  void element(double v) {
    separate();
    out_ += numberToString(v);
    valueDone();
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void open(char c) {
    separate();
    out_ += c;
    first_ = true;
  }
  void close(char c) {
    out_ += c;
    valueDone();  // the closed container is a completed value
  }
  /// Emit the "," before a new key or array element — unless this value
  /// directly follows its own key, or is the first in its container.
  void separate() {
    if (afterKey_) {
      afterKey_ = false;
      return;
    }
    if (!first_) {
      out_ += ',';
    }
    first_ = false;
  }
  void valueDone() {
    afterKey_ = false;
    first_ = false;
  }
  void keyTo(std::string_view key) {
    separate();
    escapeTo(out_, key);
    out_ += ':';
    afterKey_ = true;
  }

  std::string out_;
  bool first_ = true;
  bool afterKey_ = false;
};

}  // namespace fdd::json
