#pragma once
// Monotonic wall-clock stopwatch for benchmarks and the per-gate profiler.

#include <chrono>

namespace fdd {

class Stopwatch {
 public:
  Stopwatch() : start_{Clock::now()} {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fdd
