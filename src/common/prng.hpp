#pragma once
// Deterministic, seedable PRNGs. Benchmark workloads must be reproducible
// across runs, so we do not use std::random_device anywhere.

#include <array>
#include <cstdint>
#include <limits>

#include "common/types.hpp"

namespace fdd {

/// SplitMix64 — used to seed Xoshiro and for cheap one-off hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality generator for workload synthesis.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm{seed};
    for (auto& s : s_) {
      s = sm.next();
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  fp uniform() noexcept {
    return static_cast<fp>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  fp uniform(fp lo, fp hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return (*this)() % n; }

  /// Raw generator state, for checkpoint/restore of a live stream. A
  /// restored state resumes the exact sequence — required for session
  /// checkpointing (restoring state + RNG must replay identically).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void setState(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) {
      s_[i] = s[i];
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace fdd
