#include "qc/circuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fdd::qc {

Circuit::Circuit(Qubit nQubits, std::string name)
    : nQubits_{nQubits}, name_{std::move(name)} {
  if (nQubits < 1 || nQubits > 62) {
    throw std::invalid_argument("Circuit: qubit count must be in [1, 62]");
  }
}

void Circuit::validate(const Operation& op) const {
  if (op.target < 0 || op.target >= nQubits_) {
    throw std::out_of_range("Circuit: target qubit out of range");
  }
  for (const auto c : op.controls) {
    if (c < 0 || c >= nQubits_) {
      throw std::out_of_range("Circuit: control qubit out of range");
    }
    if (c == op.target) {
      throw std::invalid_argument("Circuit: control equals target");
    }
  }
  if (op.params.size() < gateParamCount(op.kind)) {
    throw std::invalid_argument("Circuit: missing gate parameters");
  }
}

Circuit& Circuit::append(Operation op) {
  std::sort(op.controls.begin(), op.controls.end());
  if (std::adjacent_find(op.controls.begin(), op.controls.end()) !=
      op.controls.end()) {
    throw std::invalid_argument("Circuit: duplicate control qubit");
  }
  validate(op);
  ops_.push_back(std::move(op));
  return *this;
}

Circuit& Circuit::gate(GateKind kind, std::vector<Qubit> controls,
                       Qubit target, std::vector<fp> params) {
  return append(Operation{kind, target, std::move(controls),
                          std::move(params)});
}

Circuit& Circuit::swap(Qubit a, Qubit b) {
  if (a == b) {
    throw std::invalid_argument("Circuit: swap on identical qubits");
  }
  return cx(a, b).cx(b, a).cx(a, b);
}

Circuit& Circuit::cswap(Qubit c, Qubit a, Qubit b) {
  if (a == b) {
    throw std::invalid_argument("Circuit: cswap on identical targets");
  }
  return cx(b, a).ccx(c, a, b).cx(b, a);
}

Circuit& Circuit::append(const Circuit& other) {
  if (other.numQubits() != nQubits_) {
    throw std::invalid_argument("Circuit: qubit count mismatch on append");
  }
  ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
  return *this;
}

Circuit Circuit::inverse() const {
  Circuit inv{nQubits_, name_ + "_inv"};
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    inv.append(inverseOperation(*it));
  }
  return inv;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> level(static_cast<std::size_t>(nQubits_), 0);
  std::size_t depth = 0;
  for (const auto& op : ops_) {
    std::size_t lvl = level[static_cast<std::size_t>(op.target)];
    for (const Qubit c : op.controls) {
      lvl = std::max(lvl, level[static_cast<std::size_t>(c)]);
    }
    ++lvl;
    level[static_cast<std::size_t>(op.target)] = lvl;
    for (const Qubit c : op.controls) {
      level[static_cast<std::size_t>(c)] = lvl;
    }
    depth = std::max(depth, lvl);
  }
  return depth;
}

std::map<GateKind, std::size_t> Circuit::countByKind() const {
  std::map<GateKind, std::size_t> counts;
  for (const auto& op : ops_) {
    ++counts[op.kind];
  }
  return counts;
}

std::size_t Circuit::controlledGateCount() const {
  std::size_t count = 0;
  for (const auto& op : ops_) {
    count += !op.controls.empty();
  }
  return count;
}

std::string Circuit::toString() const {
  std::ostringstream os;
  os << name_ << ": " << nQubits_ << " qubits, " << ops_.size() << " gates\n";
  for (const auto& op : ops_) {
    os << "  " << op.toString() << '\n';
  }
  return os.str();
}

std::string Circuit::toQasm() const {
  std::ostringstream os;
  os.precision(17);
  os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  os << "qreg q[" << nQubits_ << "];\n";
  for (const auto& op : ops_) {
    const std::string base = gateName(op.kind);
    std::string mnemonic;
    if (op.controls.empty()) {
      mnemonic = base;  // sy / sw / swdg etc. are parser extensions
    } else if (op.controls.size() == 1 &&
               (op.kind == GateKind::X || op.kind == GateKind::Y ||
                op.kind == GateKind::Z || op.kind == GateKind::H ||
                op.kind == GateKind::P || op.kind == GateKind::RX ||
                op.kind == GateKind::RY || op.kind == GateKind::RZ)) {
      mnemonic = "c" + base;
    } else if (op.controls.size() == 2 && op.kind == GateKind::X) {
      mnemonic = "ccx";
    } else if (op.kind == GateKind::X) {
      mnemonic = "mcx";  // extension: N-controlled X
    } else if (op.kind == GateKind::Z) {
      mnemonic = "mcz";  // extension: N-controlled Z
    } else if (op.kind == GateKind::P) {
      mnemonic = "mcp";  // extension: N-controlled phase
    } else {
      // Generic fallback: our parser accepts mc<name> with any controls.
      mnemonic = "mc" + base;
    }
    os << mnemonic;
    if (!op.params.empty()) {
      os << '(';
      for (std::size_t i = 0; i < op.params.size(); ++i) {
        os << (i ? "," : "") << op.params[i];
      }
      os << ')';
    }
    os << ' ';
    for (const auto c : op.controls) {
      os << "q[" << c << "],";
    }
    os << "q[" << op.target << "];\n";
  }
  return os.str();
}

}  // namespace fdd::qc
