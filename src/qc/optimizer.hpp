#pragma once
// Peephole circuit optimizer: cancels adjacent inverse pairs, merges
// adjacent rotations on the same wires, and drops identity operations.
// Useful as a preprocessing pass before simulation — it composes with (and
// is independent of) FlatDD's DMAV-aware gate fusion, which operates on
// gate-matrix DDs after the conversion point.

#include <cstddef>

#include "qc/circuit.hpp"

namespace fdd::qc {

struct OptimizerOptions {
  bool cancelInversePairs = true;
  bool mergeRotations = true;
  bool dropIdentities = true;
  /// Rotation angles within this of 0 (mod 2*pi) are treated as identity.
  fp angleEpsilon = 1e-12;
};

struct OptimizerStats {
  std::size_t inputGates = 0;
  std::size_t outputGates = 0;
  std::size_t cancelledPairs = 0;
  std::size_t mergedRotations = 0;
  std::size_t droppedIdentities = 0;
};

/// Returns the optimized circuit (same unitary up to nothing — all rewrites
/// are exact, no global-phase changes).
[[nodiscard]] Circuit optimize(const Circuit& circuit,
                               const OptimizerOptions& options = {},
                               OptimizerStats* stats = nullptr);

}  // namespace fdd::qc
