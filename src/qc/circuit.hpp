#pragma once
// Circuit container and fluent builder. Multi-target gates (SWAP, Fredkin)
// are decomposed into the canonical controlled-single-qubit form on append,
// so every downstream consumer sees one uniform operation stream.

#include <map>
#include <string>
#include <vector>

#include "qc/gate.hpp"

namespace fdd::qc {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(Qubit nQubits, std::string name = "circuit");

  [[nodiscard]] Qubit numQubits() const noexcept { return nQubits_; }
  [[nodiscard]] std::size_t numGates() const noexcept { return ops_.size(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::vector<Operation>& operations() const noexcept {
    return ops_;
  }
  [[nodiscard]] const Operation& operator[](std::size_t i) const {
    return ops_[i];
  }
  [[nodiscard]] auto begin() const noexcept { return ops_.begin(); }
  [[nodiscard]] auto end() const noexcept { return ops_.end(); }

  /// Appends a validated operation (throws std::out_of_range /
  /// std::invalid_argument on bad qubits).
  Circuit& append(Operation op);

  /// Generic controlled gate; `controls` may be empty.
  Circuit& gate(GateKind kind, std::vector<Qubit> controls, Qubit target,
                std::vector<fp> params = {});

  // -- single-qubit shorthands ------------------------------------------
  Circuit& i(Qubit q) { return gate(GateKind::I, {}, q); }
  Circuit& h(Qubit q) { return gate(GateKind::H, {}, q); }
  Circuit& x(Qubit q) { return gate(GateKind::X, {}, q); }
  Circuit& y(Qubit q) { return gate(GateKind::Y, {}, q); }
  Circuit& z(Qubit q) { return gate(GateKind::Z, {}, q); }
  Circuit& s(Qubit q) { return gate(GateKind::S, {}, q); }
  Circuit& sdg(Qubit q) { return gate(GateKind::Sdg, {}, q); }
  Circuit& t(Qubit q) { return gate(GateKind::T, {}, q); }
  Circuit& tdg(Qubit q) { return gate(GateKind::Tdg, {}, q); }
  Circuit& sx(Qubit q) { return gate(GateKind::SX, {}, q); }
  Circuit& sy(Qubit q) { return gate(GateKind::SY, {}, q); }
  Circuit& sw(Qubit q) { return gate(GateKind::SW, {}, q); }
  Circuit& rx(fp theta, Qubit q) { return gate(GateKind::RX, {}, q, {theta}); }
  Circuit& ry(fp theta, Qubit q) { return gate(GateKind::RY, {}, q, {theta}); }
  Circuit& rz(fp theta, Qubit q) { return gate(GateKind::RZ, {}, q, {theta}); }
  Circuit& p(fp lambda, Qubit q) { return gate(GateKind::P, {}, q, {lambda}); }
  Circuit& u2(fp phi, fp lam, Qubit q) {
    return gate(GateKind::U2, {}, q, {phi, lam});
  }
  Circuit& u3(fp theta, fp phi, fp lam, Qubit q) {
    return gate(GateKind::U3, {}, q, {theta, phi, lam});
  }

  // -- controlled shorthands --------------------------------------------
  Circuit& cx(Qubit c, Qubit t) { return gate(GateKind::X, {c}, t); }
  Circuit& cy(Qubit c, Qubit t) { return gate(GateKind::Y, {c}, t); }
  Circuit& cz(Qubit c, Qubit t) { return gate(GateKind::Z, {c}, t); }
  Circuit& ch(Qubit c, Qubit t) { return gate(GateKind::H, {c}, t); }
  Circuit& cp(fp lambda, Qubit c, Qubit t) {
    return gate(GateKind::P, {c}, t, {lambda});
  }
  Circuit& crz(fp theta, Qubit c, Qubit t) {
    return gate(GateKind::RZ, {c}, t, {theta});
  }
  Circuit& ccx(Qubit c0, Qubit c1, Qubit t) {
    return gate(GateKind::X, {c0, c1}, t);
  }

  // -- decomposed multi-target gates -------------------------------------
  /// SWAP(a, b) = CX(a,b) CX(b,a) CX(a,b); appends three operations.
  Circuit& swap(Qubit a, Qubit b);
  /// Fredkin / controlled-SWAP; appends CX(b,a) CCX(c,a,b) CX(b,a).
  Circuit& cswap(Qubit c, Qubit a, Qubit b);

  /// Concatenates another circuit over the same qubit count.
  Circuit& append(const Circuit& other);

  /// The adjoint circuit: gates reversed and individually inverted.
  /// inverse().append-ed after *this yields the identity.
  [[nodiscard]] Circuit inverse() const;

  /// Circuit depth: the longest chain of operations sharing qubits (each
  /// lowered operation counts as one layer on target + controls).
  [[nodiscard]] std::size_t depth() const;

  /// Gate-count histogram by kind (post-lowering).
  [[nodiscard]] std::map<GateKind, std::size_t> countByKind() const;

  /// Number of operations with at least one control.
  [[nodiscard]] std::size_t controlledGateCount() const;

  /// Multi-line human-readable listing.
  [[nodiscard]] std::string toString() const;

  /// OpenQASM 2.0 serialization. Gates outside qelib1 (sy, sw, multi-
  /// controlled x/z/p) are emitted with this library's extension mnemonics,
  /// which qasm::parse accepts, so every circuit round-trips exactly.
  [[nodiscard]] std::string toQasm() const;

  [[nodiscard]] bool operator==(const Circuit&) const = default;

 private:
  void validate(const Operation& op) const;

  Qubit nQubits_ = 0;
  std::string name_ = "circuit";
  std::vector<Operation> ops_;
};

}  // namespace fdd::qc
