#include "qc/optimizer.hpp"

#include <cmath>
#include <vector>

namespace fdd::qc {

namespace {

/// All wires an operation touches (target + controls).
std::vector<Qubit> wiresOf(const Operation& op) {
  std::vector<Qubit> wires = op.controls;
  wires.push_back(op.target);
  return wires;
}

bool sameWires(const Operation& a, const Operation& b) {
  return a.target == b.target && a.controls == b.controls;
}

bool isRotationKind(GateKind k) {
  return k == GateKind::RX || k == GateKind::RY || k == GateKind::RZ ||
         k == GateKind::P;
}

/// theta reduced to (-pi, pi] — identity iff ~0 for RX/RY/RZ; P is identity
/// iff its angle is ~0 mod 2*pi (same test).
fp reduceAngle(fp theta) {
  theta = std::fmod(theta, 2 * PI);
  if (theta > PI) {
    theta -= 2 * PI;
  }
  if (theta <= -PI) {
    theta += 2 * PI;
  }
  return theta;
}

bool isIdentityOp(const Operation& op, fp angleEpsilon) {
  if (op.kind == GateKind::I) {
    return true;
  }
  if (isRotationKind(op.kind)) {
    const fp reduced = reduceAngle(op.params[0]);
    // RX/RY/RZ(2*pi) == -I (a global phase on the controlled subspace!),
    // so only treat an exact multiple of 4*pi — or, for P, 2*pi — as the
    // identity. Controlled rotations by 2*pi are NOT identity.
    if (op.kind == GateKind::P) {
      return std::abs(reduced) <= angleEpsilon;
    }
    const fp mod4pi = std::fmod(std::abs(op.params[0]), 4 * PI);
    return mod4pi <= angleEpsilon || (4 * PI - mod4pi) <= angleEpsilon;
  }
  return false;
}

/// True if b == a^-1 structurally (cheap kinds only; rotation pairs are
/// handled by merging instead).
bool areInversePair(const Operation& a, const Operation& b) {
  if (!sameWires(a, b)) {
    return false;
  }
  const Operation inv = inverseOperation(a);
  return inv.kind == b.kind && inv.params == b.params;
}

}  // namespace

Circuit optimize(const Circuit& circuit, const OptimizerOptions& options,
                 OptimizerStats* stats) {
  OptimizerStats local;
  local.inputGates = circuit.numGates();

  // Stack of emitted operations plus, per qubit, the index of the last
  // emitted operation touching it (SIZE_MAX = none). Cancelling or merging
  // pops the stack, which naturally re-exposes earlier gates.
  std::vector<Operation> out;
  out.reserve(circuit.numGates());
  std::vector<std::size_t> lastOnWire(
      static_cast<std::size_t>(circuit.numQubits()), SIZE_MAX);

  auto rebuildWireIndex = [&] {
    std::fill(lastOnWire.begin(), lastOnWire.end(), SIZE_MAX);
    for (std::size_t i = 0; i < out.size(); ++i) {
      for (const Qubit q : wiresOf(out[i])) {
        lastOnWire[static_cast<std::size_t>(q)] = i;
      }
    }
  };

  for (const Operation& incoming : circuit) {
    Operation op = incoming;

    if (options.dropIdentities && isIdentityOp(op, options.angleEpsilon)) {
      ++local.droppedIdentities;
      continue;
    }

    // The candidate predecessor: the most recent emitted op on any of our
    // wires. A rewrite is only sound if that op sits on *exactly* our wires
    // (otherwise another gate interposes on a shared wire).
    std::size_t prev = SIZE_MAX;
    bool prevIsLatestOnAllWires = true;
    for (const Qubit q : wiresOf(op)) {
      const std::size_t idx = lastOnWire[static_cast<std::size_t>(q)];
      if (prev == SIZE_MAX) {
        prev = idx;
      } else if (idx != prev) {
        prevIsLatestOnAllWires = false;
      }
    }
    // `prev` does not have to be the absolute last emitted gate — only the
    // last on every wire we share — for the rewrite to commute soundly.
    const bool rewritable =
        prev != SIZE_MAX && prevIsLatestOnAllWires && sameWires(out[prev], op);

    if (rewritable && options.cancelInversePairs &&
        areInversePair(out[prev], op)) {
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(prev));
      ++local.cancelledPairs;
      rebuildWireIndex();
      continue;
    }

    if (rewritable && options.mergeRotations && isRotationKind(op.kind) &&
        out[prev].kind == op.kind) {
      const fp merged = out[prev].params[0] + op.params[0];
      Operation mergedOp = op;
      mergedOp.params[0] = merged;
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(prev));
      ++local.mergedRotations;
      rebuildWireIndex();
      if (options.dropIdentities &&
          isIdentityOp(mergedOp, options.angleEpsilon)) {
        ++local.droppedIdentities;
        continue;
      }
      op = std::move(mergedOp);
      // fall through to emit the merged rotation
    }

    for (const Qubit q : wiresOf(op)) {
      lastOnWire[static_cast<std::size_t>(q)] = out.size();
    }
    out.push_back(std::move(op));
  }

  Circuit result{circuit.numQubits(), circuit.name() + "_opt"};
  for (auto& op : out) {
    result.append(std::move(op));
  }
  local.outputGates = result.numGates();
  if (stats != nullptr) {
    *stats = local;
  }
  return result;
}

}  // namespace fdd::qc
