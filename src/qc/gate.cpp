#include "qc/gate.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fdd::qc {

namespace {

Complex expi(fp theta) { return {std::cos(theta), std::sin(theta)}; }

}  // namespace

Matrix2 gateMatrix(GateKind kind, const std::vector<fp>& params) {
  if (params.size() < gateParamCount(kind)) {
    throw std::invalid_argument("gateMatrix: missing parameters for " +
                                gateName(kind));
  }
  const Complex i{0.0, 1.0};
  switch (kind) {
    case GateKind::I:
      return {Complex{1}, Complex{}, Complex{}, Complex{1}};
    case GateKind::H:
      return {Complex{SQRT2_INV}, Complex{SQRT2_INV}, Complex{SQRT2_INV},
              Complex{-SQRT2_INV}};
    case GateKind::X:
      return {Complex{}, Complex{1}, Complex{1}, Complex{}};
    case GateKind::Y:
      return {Complex{}, -i, i, Complex{}};
    case GateKind::Z:
      return {Complex{1}, Complex{}, Complex{}, Complex{-1}};
    case GateKind::S:
      return {Complex{1}, Complex{}, Complex{}, i};
    case GateKind::Sdg:
      return {Complex{1}, Complex{}, Complex{}, -i};
    case GateKind::T:
      return {Complex{1}, Complex{}, Complex{}, expi(PI / 4)};
    case GateKind::Tdg:
      return {Complex{1}, Complex{}, Complex{}, expi(-PI / 4)};
    case GateKind::SX: {
      const Complex p{0.5, 0.5};
      const Complex m{0.5, -0.5};
      return {p, m, m, p};
    }
    case GateKind::SXdg: {
      const Complex p{0.5, 0.5};
      const Complex m{0.5, -0.5};
      return {m, p, p, m};
    }
    case GateKind::SY: {
      // sqrt(Y) = 1/2 [[1+i, -1-i], [1+i, 1+i]]
      const Complex p{0.5, 0.5};
      return {p, -p, p, p};
    }
    case GateKind::SYdg: {
      const Complex m{0.5, -0.5};
      return {m, m, -m, m};
    }
    case GateKind::SW: {
      // sqrt(W) with W = (X + Y)/sqrt(2), per the supremacy gate set [7]:
      // [[1, -sqrt(i)], [sqrt(-i), 1]] / sqrt(2), sqrt(i) = e^{i pi/4}.
      const Complex sqrtI = expi(PI / 4);
      const Complex sqrtMinusI = expi(-PI / 4);
      return {Complex{SQRT2_INV}, -sqrtI * SQRT2_INV, sqrtMinusI * SQRT2_INV,
              Complex{SQRT2_INV}};
    }
    case GateKind::SWdg: {
      // Conjugate transpose of SW: [[1, sqrt(i)], [-sqrt(-i), 1]] / sqrt(2).
      const Complex sqrtI = expi(PI / 4);
      const Complex sqrtMinusI = expi(-PI / 4);
      return {Complex{SQRT2_INV}, sqrtI * SQRT2_INV, -sqrtMinusI * SQRT2_INV,
              Complex{SQRT2_INV}};
    }
    case GateKind::RX: {
      const fp t = params[0] / 2;
      return {Complex{std::cos(t)}, -i * std::sin(t), -i * std::sin(t),
              Complex{std::cos(t)}};
    }
    case GateKind::RY: {
      const fp t = params[0] / 2;
      return {Complex{std::cos(t)}, Complex{-std::sin(t)},
              Complex{std::sin(t)}, Complex{std::cos(t)}};
    }
    case GateKind::RZ: {
      const fp t = params[0] / 2;
      return {expi(-t), Complex{}, Complex{}, expi(t)};
    }
    case GateKind::P:
      return {Complex{1}, Complex{}, Complex{}, expi(params[0])};
    case GateKind::U2: {
      const fp phi = params[0];
      const fp lam = params[1];
      return {Complex{SQRT2_INV}, -expi(lam) * SQRT2_INV,
              expi(phi) * SQRT2_INV, expi(phi + lam) * SQRT2_INV};
    }
    case GateKind::U3: {
      const fp t = params[0] / 2;
      const fp phi = params[1];
      const fp lam = params[2];
      return {Complex{std::cos(t)}, -expi(lam) * std::sin(t),
              expi(phi) * std::sin(t), expi(phi + lam) * std::cos(t)};
    }
  }
  throw std::logic_error("gateMatrix: unknown gate kind");
}

unsigned gateParamCount(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
      return 1;
    case GateKind::U2:
      return 2;
    case GateKind::U3:
      return 3;
    default:
      return 0;
  }
}

std::string gateName(GateKind kind) {
  switch (kind) {
    case GateKind::I: return "id";
    case GateKind::H: return "h";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::SX: return "sx";
    case GateKind::SXdg: return "sxdg";
    case GateKind::SY: return "sy";
    case GateKind::SYdg: return "sydg";
    case GateKind::SW: return "sw";
    case GateKind::SWdg: return "swdg";
    case GateKind::RX: return "rx";
    case GateKind::RY: return "ry";
    case GateKind::RZ: return "rz";
    case GateKind::P: return "p";
    case GateKind::U2: return "u2";
    case GateKind::U3: return "u3";
  }
  return "?";
}

std::string Operation::toString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < controls.size(); ++i) {
    os << 'c';
  }
  os << gateName(kind);
  if (!params.empty()) {
    os << '(';
    for (std::size_t i = 0; i < params.size(); ++i) {
      os << (i ? "," : "") << params[i];
    }
    os << ')';
  }
  os << ' ';
  for (const auto c : controls) {
    os << 'q' << c << ',';
  }
  os << 'q' << target;
  return os.str();
}

Operation inverseOperation(const Operation& op) {
  Operation inv = op;
  switch (op.kind) {
    case GateKind::I:
    case GateKind::H:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
      break;  // self-inverse
    case GateKind::S: inv.kind = GateKind::Sdg; break;
    case GateKind::Sdg: inv.kind = GateKind::S; break;
    case GateKind::T: inv.kind = GateKind::Tdg; break;
    case GateKind::Tdg: inv.kind = GateKind::T; break;
    case GateKind::SX: inv.kind = GateKind::SXdg; break;
    case GateKind::SXdg: inv.kind = GateKind::SX; break;
    case GateKind::SY: inv.kind = GateKind::SYdg; break;
    case GateKind::SYdg: inv.kind = GateKind::SY; break;
    case GateKind::SW: inv.kind = GateKind::SWdg; break;
    case GateKind::SWdg: inv.kind = GateKind::SW; break;
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
      inv.params[0] = -op.params[0];
      break;
    case GateKind::U2:
      // u2(phi, lambda)^-1 = u3(-pi/2, -lambda, -phi)
      inv.kind = GateKind::U3;
      inv.params = {-PI / 2, -op.params[1], -op.params[0]};
      break;
    case GateKind::U3:
      inv.params = {-op.params[0], -op.params[2], -op.params[1]};
      break;
  }
  return inv;
}

Matrix2 matMul2(const Matrix2& a, const Matrix2& b) noexcept {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

Matrix2 adjoint2(const Matrix2& m) noexcept {
  return {std::conj(m[0]), std::conj(m[2]), std::conj(m[1]), std::conj(m[3])};
}

fp matDistance(const Matrix2& a, const Matrix2& b) noexcept {
  fp d = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

bool isUnitary2(const Matrix2& m, fp tol) noexcept {
  const Matrix2 prod = matMul2(m, adjoint2(m));
  const Matrix2 id{Complex{1}, {}, {}, Complex{1}};
  return matDistance(prod, id) < tol;
}

}  // namespace fdd::qc
