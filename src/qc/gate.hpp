#pragma once
// Gate definitions. After lowering, every operation in the IR is a 2x2
// unitary applied to one target qubit under zero or more positive controls;
// SWAP-like gates are decomposed at circuit-construction time. This single
// canonical form is what both the array kernels (Eq. 2-3 of the paper) and
// the DD gate constructor consume.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fdd::qc {

enum class GateKind : std::uint8_t {
  I,
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  T,
  Tdg,
  SX,    // sqrt(X), used by supremacy circuits
  SXdg,
  SY,    // sqrt(Y)
  SYdg,
  SW,    // sqrt(W), W = (X+Y)/sqrt(2), used by supremacy circuits [7]
  SWdg,
  RX,    // params: theta
  RY,    // params: theta
  RZ,    // params: theta
  P,     // phase gate diag(1, e^{i*lambda}); params: lambda
  U2,    // params: phi, lambda
  U3,    // params: theta, phi, lambda
};

/// 2x2 unitary in row-major order {u00, u01, u10, u11}.
using Matrix2 = std::array<Complex, 4>;

/// The 2x2 matrix of `kind` with the given parameters (unused ones ignored).
[[nodiscard]] Matrix2 gateMatrix(GateKind kind, const std::vector<fp>& params);

/// Number of parameters `kind` expects.
[[nodiscard]] unsigned gateParamCount(GateKind kind) noexcept;

/// Lower-case mnemonic ("h", "rz", ...).
[[nodiscard]] std::string gateName(GateKind kind);

/// The inverse (adjoint) of an operation: same target/controls, inverted
/// gate kind / negated parameters.
struct Operation;
[[nodiscard]] Operation inverseOperation(const Operation& op);

/// One lowered operation: controls (all positive) + single target.
struct Operation {
  GateKind kind = GateKind::I;
  Qubit target = 0;
  std::vector<Qubit> controls;  // sorted, duplicate-free, excludes target
  std::vector<fp> params;

  [[nodiscard]] Matrix2 matrix() const { return gateMatrix(kind, params); }
  [[nodiscard]] std::string toString() const;
  [[nodiscard]] bool operator==(const Operation&) const = default;
};

/// 2x2 complex matrix product a*b.
[[nodiscard]] Matrix2 matMul2(const Matrix2& a, const Matrix2& b) noexcept;

/// Conjugate transpose.
[[nodiscard]] Matrix2 adjoint2(const Matrix2& m) noexcept;

/// Max-norm distance between two 2x2 matrices.
[[nodiscard]] fp matDistance(const Matrix2& a, const Matrix2& b) noexcept;

/// True if m is unitary within tolerance.
[[nodiscard]] bool isUnitary2(const Matrix2& m, fp tol = 1e-9) noexcept;

}  // namespace fdd::qc
