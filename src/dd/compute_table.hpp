#pragma once
// Direct-mapped operation cache ("compute table"). DD operations are
// memoized on their operands; a collision simply overwrites the slot, which
// bounds memory and needs no eviction policy. Flushed on garbage collection
// because results may reference reclaimed nodes.
//
// Concurrency: each slot is a seqlock — a sequence word plus the entry
// payload stored as relaxed atomic words. Readers copy the payload out and
// validate the sequence (retrying is pointless for a cache, so a torn read
// is just a miss); writers claim a slot with one CAS and *drop* the insert
// if another writer holds it ("lossy insert"). Losing an insert only costs
// a future recomputation of a value that is canonical anyway — the classic
// DD compute-cache trade (Q-Sylvan makes the same one).
//
// Pointer-stability audit (history): lookup() used to return `const
// ResultT*` pointing into the slot. That was only safe single-threaded and
// only until the next insert() hashing to the same slot — a latent aliasing
// hazard even before concurrency (callers held the pointer across recursive
// calls that could overwrite the slot). The API is now copy-out
// (`lookup(key, out)`), which is unconditionally safe and costs one small
// struct copy.

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "dd/edge.hpp"

namespace fdd::dd {

template <typename KeyT, typename ResultT, std::size_t BitsV = 14>
class ComputeTable {
 public:
  static constexpr std::size_t kSlots = std::size_t{1} << BitsV;

  ComputeTable() : slots_(kSlots) {}

  /// Copies the cached result for `key` into `out`; returns false on miss.
  [[nodiscard]] bool lookup(const KeyT& key, ResultT& out) noexcept {
    const Slot& s = slots_[key.hash() & (kSlots - 1)];
    // Sequence protocol: 0 = never written, odd = writer in flight, even > 0
    // = published. The acquire load pairs with the writer's final release
    // store; the fence orders the payload loads before the re-check.
    const std::uint32_t s0 = s.seq.load(std::memory_order_acquire);
    if (s0 == 0 || (s0 & 1u) != 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    std::array<std::uint64_t, kWords> words;
    for (std::size_t i = 0; i < kWords; ++i) {
      words[i] = s.data[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;  // torn by a concurrent insert — treat as a miss
    }
    Entry entry;
    // void* cast: Entry is trivially copyable (asserted below) but not
    // trivial (defaulted members), which alone would trip -Wclass-memaccess.
    std::memcpy(static_cast<void*>(&entry), words.data(), sizeof(Entry));
    if (!(entry.key == key)) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    out = entry.result;
    return true;
  }

  void insert(const KeyT& key, const ResultT& result) noexcept {
    Slot& s = slots_[key.hash() & (kSlots - 1)];
    std::uint32_t s0 = s.seq.load(std::memory_order_relaxed);
    if ((s0 & 1u) != 0 ||
        !s.seq.compare_exchange_strong(s0, s0 + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      // Another writer owns the slot right now; drop this insert.
      lostInserts_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const Entry entry{key, result};
    std::array<std::uint64_t, kWords> words{};
    std::memcpy(words.data(), static_cast<const void*>(&entry),
                sizeof(Entry));
    for (std::size_t i = 0; i < kWords; ++i) {
      s.data[i].store(words[i], std::memory_order_relaxed);
    }
    s.seq.store(s0 + 2, std::memory_order_release);
  }

  /// Quiescent-point only (GC): no concurrent lookup/insert.
  void flush() noexcept {
    for (auto& s : slots_) {
      s.seq.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Inserts dropped because another writer held the slot concurrently.
  [[nodiscard]] std::size_t lostInserts() const noexcept {
    return lostInserts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t memoryBytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

 private:
  struct Entry {
    KeyT key{};
    ResultT result{};
  };
  static_assert(std::is_trivially_copyable_v<KeyT> &&
                    std::is_trivially_copyable_v<ResultT>,
                "seqlock slots copy entries as raw words");
  static constexpr std::size_t kWords = (sizeof(Entry) + 7) / 8;

  struct Slot {
    std::atomic<std::uint32_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kWords> data{};
  };

  std::vector<Slot> slots_;
  alignas(64) std::atomic<std::size_t> hits_{0};
  alignas(64) std::atomic<std::size_t> misses_{0};
  alignas(64) std::atomic<std::size_t> lostInserts_{0};
};

/// Key for multiply(left, right) with weights factored out of the cache.
template <typename LeftT, typename RightT>
struct MulKey {
  const LeftT* left = nullptr;
  const RightT* right = nullptr;

  [[nodiscard]] bool operator==(const MulKey&) const noexcept = default;
  [[nodiscard]] std::uint64_t hash() const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(left);
    const auto b = reinterpret_cast<std::uintptr_t>(right);
    std::uint64_t h = a * 0xff51afd7ed558ccdULL;
    h ^= b * 0xc4ceb9fe1a85ec53ULL + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
  }
};

/// Key for add(a, b); weights participate because addition does not factor.
template <typename NodeT>
struct AddKey {
  Edge<NodeT> a{};
  Edge<NodeT> b{};

  [[nodiscard]] bool operator==(const AddKey& o) const noexcept {
    return a == o.a && b == o.b;
  }
  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = reinterpret_cast<std::uintptr_t>(a.n) *
                      0xff51afd7ed558ccdULL;
    h ^= weightHash(a.w) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= reinterpret_cast<std::uintptr_t>(b.n) * 0xc4ceb9fe1a85ec53ULL +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= weightHash(b.w) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
};

}  // namespace fdd::dd
