#pragma once
// Direct-mapped operation cache ("compute table"). DD operations are
// memoized on their operands; a collision simply overwrites the slot, which
// bounds memory and needs no eviction policy. Flushed on garbage collection
// because results may reference reclaimed nodes.

#include <array>
#include <cstdint>
#include <vector>

#include "dd/edge.hpp"

namespace fdd::dd {

template <typename KeyT, typename ResultT, std::size_t BitsV = 14>
class ComputeTable {
 public:
  static constexpr std::size_t kSlots = std::size_t{1} << BitsV;

  ComputeTable() : slots_(kSlots) {}

  /// Returns the cached result for `key`, or nullptr on miss.
  [[nodiscard]] const ResultT* lookup(const KeyT& key) noexcept {
    const Slot& s = slots_[key.hash() & (kSlots - 1)];
    if (s.valid && s.key == key) {
      ++hits_;
      return &s.result;
    }
    ++misses_;
    return nullptr;
  }

  void insert(const KeyT& key, const ResultT& result) noexcept {
    Slot& s = slots_[key.hash() & (kSlots - 1)];
    s.key = key;
    s.result = result;
    s.valid = true;
  }

  void flush() noexcept {
    for (auto& s : slots_) {
      s.valid = false;
    }
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t memoryBytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

 private:
  struct Slot {
    KeyT key{};
    ResultT result{};
    bool valid = false;
  };
  std::vector<Slot> slots_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Key for multiply(left, right) with weights factored out of the cache.
template <typename LeftT, typename RightT>
struct MulKey {
  const LeftT* left = nullptr;
  const RightT* right = nullptr;

  [[nodiscard]] bool operator==(const MulKey&) const noexcept = default;
  [[nodiscard]] std::uint64_t hash() const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(left);
    const auto b = reinterpret_cast<std::uintptr_t>(right);
    std::uint64_t h = a * 0xff51afd7ed558ccdULL;
    h ^= b * 0xc4ceb9fe1a85ec53ULL + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
  }
};

/// Key for add(a, b); weights participate because addition does not factor.
template <typename NodeT>
struct AddKey {
  Edge<NodeT> a{};
  Edge<NodeT> b{};

  [[nodiscard]] bool operator==(const AddKey& o) const noexcept {
    return a == o.a && b == o.b;
  }
  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = reinterpret_cast<std::uintptr_t>(a.n) *
                      0xff51afd7ed558ccdULL;
    h ^= weightHash(a.w) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= reinterpret_cast<std::uintptr_t>(b.n) * 0xc4ceb9fe1a85ec53ULL +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= weightHash(b.w) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
};

}  // namespace fdd::dd
