#include "dd/reorder.hpp"

#include <cstddef>

#include "dd/package.hpp"
#include "obs/metrics.hpp"

namespace fdd::dd {

ReorderResult reorderGreedy(Package& pkg, const vEdge& state,
                            const ReorderOptions& options) {
  FDD_TIMED_SCOPE("dd.reorder");
  ReorderResult result;
  result.state = state;
  result.nodesBefore = pkg.nodeCount(state);
  result.nodesAfter = result.nodesBefore;
  if (state.isZero() || state.isTerminal() || pkg.numQubits() < 2) {
    return result;
  }

  std::size_t current = result.nodesBefore;
  for (std::size_t round = 0; round < options.maxRounds; ++round) {
    bool improvedThisRound = false;
    for (Qubit lower = 0; lower + 1 < pkg.numQubits(); ++lower) {
      const vEdge trial = pkg.swapAdjacent(result.state, lower);
      const std::size_t trialNodes = pkg.nodeCount(trial);
      const fp required =
          static_cast<fp>(current) * (1.0 - options.minGainFraction);
      if (static_cast<fp>(trialNodes) < required) {
        result.state = trial;
        result.swaps.push_back(lower);
        current = trialNodes;
        improvedThisRound = true;
      }
      // Rejected trials leave unreferenced nodes behind; the caller's next
      // garbageCollect() reclaims them.
    }
    if (!improvedThisRound) {
      break;
    }
  }
  result.nodesAfter = current;
  return result;
}

}  // namespace fdd::dd
