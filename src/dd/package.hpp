#pragma once
// The DD package: the single owner of all decision-diagram state (complex
// table, node pools, unique tables, compute tables, identity cache) and the
// home of every DD operation. This is our from-scratch re-implementation of
// the QMDD substrate that DDSIM [99] builds on; FlatDD's DMAV reads matrix
// DDs produced here.
//
// Thread-safety: the node-producing substrate (complex table, node pools,
// unique tables, compute tables, reference counts) is concurrent, so DD
// operations may run from multiple workers at once — the parallel mat-vec
// recursion (setDdThreads) relies on exactly that. Garbage collection,
// table flushes and complex-table rebuilds remain quiescent-point
// operations: the Package only runs them between gate applications, never
// concurrently with operations. Concurrent *reads* of finished DDs (what
// DMAV and the parallel DD-to-array conversion do) are safe because nodes
// are immutable after insertion.

#include <atomic>
#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "dd/compute_table.hpp"
#include "dd/edge.hpp"
#include "dd/node_manager.hpp"
#include "qc/gate.hpp"

namespace fdd::par {
class TaskArena;
}  // namespace fdd::par

namespace fdd::dd {

struct PackageStats {
  std::size_t vNodesLive = 0;
  std::size_t mNodesLive = 0;
  std::size_t peakVNodes = 0;
  std::size_t peakMNodes = 0;
  std::size_t gcRuns = 0;
  std::size_t gcCollected = 0;
  std::size_t memoryBytes = 0;  // arenas + tables, approximate
  // Compute-table health, summed over the four memo tables. lostInserts
  // counts results recomputed because a concurrent writer held the slot —
  // the price of the lossy lock-free insert (see compute_table.hpp).
  std::size_t computeHits = 0;
  std::size_t computeMisses = 0;
  std::size_t computeLostInserts = 0;
};

class Package {
 public:
  /// A package simulates circuits of exactly `nQubits` qubits. `tolerance`
  /// is the complex-table merging tolerance.
  explicit Package(Qubit nQubits, fp tolerance = 1e-10);

  [[nodiscard]] Qubit numQubits() const noexcept { return nQubits_; }

  // ---- canonical weights -------------------------------------------------
  [[nodiscard]] Complex canonical(Complex z) { return ctable_.lookup(z); }

  // ---- node construction (normalizing) ------------------------------------
  /// Builds (or finds) the canonical vector node at `level` with the given
  /// children, returning a normalized edge. Children must satisfy the edge
  /// invariants already.
  [[nodiscard]] vEdge makeVectorNode(Qubit level, std::array<vEdge, 2> e);
  [[nodiscard]] mEdge makeMatrixNode(Qubit level, std::array<mEdge, 4> e);

  // ---- states --------------------------------------------------------------
  /// |0...0>.
  [[nodiscard]] vEdge makeZeroState();
  /// Computational basis state |bits>.
  [[nodiscard]] vEdge makeBasisState(Index bits);

  // ---- gates ---------------------------------------------------------------
  /// Identity operator on qubits [0, level]; cached and GC-protected.
  [[nodiscard]] mEdge makeIdent(Qubit level);
  /// DD for a (multi-)controlled single-qubit gate on the full register.
  [[nodiscard]] mEdge makeGateDD(const qc::Matrix2& u, Qubit target,
                                 std::span<const Qubit> controls = {});
  [[nodiscard]] mEdge makeGateDD(const qc::Operation& op);

  // ---- operations -----------------------------------------------------------
  [[nodiscard]] vEdge add(const vEdge& a, const vEdge& b, Qubit level);
  [[nodiscard]] mEdge add(const mEdge& a, const mEdge& b, Qubit level);
  /// Matrix-vector product over the full register (DD-based simulation step).
  [[nodiscard]] vEdge multiply(const mEdge& m, const vEdge& v);
  /// Matrix-matrix product (DDMM; used by gate fusion).
  [[nodiscard]] mEdge multiply(const mEdge& a, const mEdge& b);
  /// Conjugate transpose M^dagger (used for uncomputation and equivalence
  /// checking: U unitary iff U^dagger U == I).
  [[nodiscard]] mEdge adjoint(const mEdge& m);

  /// Kronecker product: `top` acts on the qubits above `bottomQubits`
  /// (result level = top's levels shifted up), `bottom` on the low qubits.
  /// Both for states (|top> (x) |bottom>) and operators.
  [[nodiscard]] vEdge kronecker(const vEdge& top, const vEdge& bottom,
                                Qubit bottomQubits);
  [[nodiscard]] mEdge kronecker(const mEdge& top, const mEdge& bottom,
                                Qubit bottomQubits);

  /// Builds a matrix DD from a dense row-major 2^k x 2^k matrix acting on
  /// the k lowest qubits (identity elsewhere is NOT appended; k must equal
  /// numQubits() unless you kronecker it yourself).
  [[nodiscard]] mEdge fromDenseMatrix(std::span<const Complex> rowMajor);

  /// State approximation [97]: removes the lowest-contribution subtrees
  /// until at most `budget` of squared norm is lost, then renormalizes.
  /// Returns the approximated state; useful to cap DD growth at a known
  /// fidelity cost. The input edge is not modified.
  [[nodiscard]] vEdge approximate(const vEdge& state, fp budget);

  // ---- variable reordering (the "reorder trick", arXiv:2211.07110) ---------
  /// Exchanges the DD variables at levels `lower` and `lower + 1` of `state`
  /// by a local node rewrite: every level-(lower+1) node is rebuilt with its
  /// two index bits transposed, and ancestors are rebuilt (memoized) because
  /// their children changed identity. Semantically this applies a SWAP gate
  /// — the returned state represents the same amplitudes with the two index
  /// bits exchanged — but costs O(live nodes at/above `lower`) instead of a
  /// full mat-vec. The input edge is not modified and the result is
  /// unreferenced; the caller incRefs it before the next garbageCollect().
  /// Quiescent-point only: the rewrite allocates through the (concurrent)
  /// unique/complex tables but must not race a GC or table rebuild, so call
  /// it between gate applications like any other structural operation.
  /// `lower` must be in [0, numQubits() - 2].
  [[nodiscard]] vEdge swapAdjacent(const vEdge& state, Qubit lower);

  /// Monotonic count of accepted level reorderings on states of this
  /// package. Any structure that bakes a qubit -> level mapping into flat
  /// indices (compiled DMAV plans, span-op caches) must treat a changed
  /// epoch as a hard invalidation: the same gate DD lowers to different
  /// strided offsets under a different level order. Bumped by the reorder
  /// driver (see dd/reorder.hpp), not by swapAdjacent itself — trial swaps
  /// that are rolled back do not invalidate anything.
  [[nodiscard]] std::uint64_t orderingEpoch() const noexcept {
    return orderingEpoch_;
  }
  void bumpOrderingEpoch() noexcept { ++orderingEpoch_; }

  // ---- reference counting & GC ----------------------------------------------
  void incRef(const vEdge& e) noexcept { incRefNode(e.n); }
  void decRef(const vEdge& e) noexcept { decRefNode(e.n); }
  void incRef(const mEdge& e) noexcept { incRefNode(e.n); }
  void decRef(const mEdge& e) noexcept { decRefNode(e.n); }

  /// Reclaims unreferenced nodes when the tables are crowded (always when
  /// `force`). Never call while operation intermediates are unprotected.
  void garbageCollect(bool force = false);

  /// Incremented every time garbageCollect() actually releases matrix nodes
  /// back to the pool. Released mNode addresses are recycled, so any
  /// structure keyed by a raw mNode* (e.g. a compiled DmavPlan) is only
  /// trustworthy while this counter is unchanged — unless the node is pinned
  /// with incRef, which makes it ineligible for collection.
  [[nodiscard]] std::uint64_t mNodeGeneration() const noexcept {
    return mNodeGeneration_;
  }

  // ---- export / import -------------------------------------------------------
  /// Sequential DD-to-array conversion (the DDSIM baseline of Fig. 13).
  /// `out` must have size 2^numQubits().
  void toArray(const vEdge& state, std::span<Complex> out) const;
  [[nodiscard]] AlignedVector<Complex> toArray(const vEdge& state) const;

  /// Builds a DD from a dense amplitude vector of size 2^numQubits().
  [[nodiscard]] vEdge fromArray(std::span<const Complex> amplitudes);

  /// Amplitude of basis state `i` via one root-to-terminal walk.
  [[nodiscard]] Complex getAmplitude(const vEdge& state, Index i) const;

  /// <a|b>; both edges must be states of this package.
  [[nodiscard]] Complex innerProduct(const vEdge& a, const vEdge& b);

  /// <dd|flat>: inner product between a DD state and a flat array without
  /// materializing either in the other representation. Used to validate
  /// FlatDD's phase handoff.
  [[nodiscard]] Complex innerProduct(const vEdge& a,
                                     std::span<const Complex> flat) const;

  /// Probability that qubit `q` measures |1> in `state` (sum over the
  /// corresponding subtrees; no conversion).
  [[nodiscard]] fp probabilityOfOne(const vEdge& state, Qubit q) const;

  /// Graphviz dot rendering of a vector DD (small states; debugging aid).
  [[nodiscard]] std::string toDot(const vEdge& state) const;

  /// Samples `shots` basis states from |amplitude|^2 by descending the DD
  /// (weak simulation [36]: no conversion to an array, cost O(shots * n)
  /// after one norm-annotation pass). The state should be normalized.
  template <typename Rng>
  [[nodiscard]] std::vector<Index> sample(const vEdge& state,
                                          std::size_t shots, Rng& rng) const {
    std::vector<Index> out;
    out.reserve(shots);
    const auto norms = annotateSubtreeNorms(state);
    for (std::size_t s = 0; s < shots; ++s) {
      out.push_back(sampleOnce(state, norms, rng));
    }
    return out;
  }

  // ---- introspection ----------------------------------------------------------
  /// Number of unique nodes reachable from `e` (excluding the terminal);
  /// the paper's "DD size" s_i monitored by the EWMA trigger.
  [[nodiscard]] std::size_t nodeCount(const vEdge& e) const;
  [[nodiscard]] std::size_t nodeCount(const mEdge& e) const;

  [[nodiscard]] PackageStats stats() const;

  /// Overrides (and pins) the automatic GC trigger (tests /
  /// memory-constrained runs); disables the adaptive back-off.
  void setGcThreshold(std::size_t nodes) noexcept {
    gcThreshold_ = nodes;
    gcThresholdPinned_ = true;
  }
  /// Overrides the complex-table rebuild trigger.
  void setComplexTableRebuildThreshold(std::size_t entries) noexcept {
    ctableRebuildThreshold_ = entries;
  }

  // ---- DD-phase parallelism ----------------------------------------------
  /// Workers the mat-vec recursion may fan out onto (clamped to the global
  /// pool size at use). 1 (the default) keeps multiply() fully sequential —
  /// the DDSIM-baseline semantics.
  void setDdThreads(unsigned threads) noexcept {
    ddThreads_ = threads == 0 ? 1 : threads;
  }
  [[nodiscard]] unsigned ddThreads() const noexcept { return ddThreads_; }

  /// Grain cutoff override: the recursion spawns tasks only at DD levels
  /// >= the cutoff (0 = spawn everywhere, >= numQubits() = never spawn).
  /// -1 restores the automatic cutoff derived from the thread count. The
  /// FLATDD_DD_GRAIN environment variable provides the same override
  /// process-wide (an explicit call here wins).
  void setDdGrain(int cutoffLevel) noexcept { ddGrain_ = cutoffLevel; }

  /// The parallel path only engages once the state DD holds at least this
  /// many nodes — below it fork/join overhead dominates (tests set 0 to
  /// force the parallel path deterministically).
  void setDdParallelMinNodes(std::size_t nodes) noexcept {
    ddParallelMinNodes_ = nodes;
  }

  /// Debug/test invariant scan over both unique tables: no duplicate
  /// (level, children) pairs and every node's weights normalized (largest-
  /// magnitude weight exactly 1, zeros canonical). O(live nodes); intended
  /// for tests (the concurrent stress suite calls it after joining).
  [[nodiscard]] bool checkCanonical() const;

 private:
  template <typename NodeT>
  [[nodiscard]] Edge<NodeT> normalize(Qubit level,
                                      std::array<Edge<NodeT>, NodeT::kRadix> e,
                                      NodePool<NodeT>& pool,
                                      UniqueTable<NodeT>& table);

  static void incRefNode(vNode* n) noexcept;
  static void incRefNode(mNode* n) noexcept;
  static void decRefNode(vNode* n) noexcept;
  static void decRefNode(mNode* n) noexcept;

  [[nodiscard]] vEdge addRec(const vEdge& a, const vEdge& b, Qubit level);
  [[nodiscard]] mEdge addRec(const mEdge& a, const mEdge& b, Qubit level);
  [[nodiscard]] vEdge mulRec(const mEdge& m, const vEdge& v, Qubit level);
  [[nodiscard]] mEdge mulRec(const mEdge& a, const mEdge& b, Qubit level);

  /// Fork/join mat-vec over a TaskArena (operations.cpp). The *Par variants
  /// spawn subproblems at levels >= spawnCutoff_ and fall through to the
  /// sequential recursions below it (every table is thread-safe, so the
  /// sequential code runs unchanged inside tasks).
  [[nodiscard]] vEdge multiplyParallel(const mEdge& m, const vEdge& v,
                                       unsigned threads);
  [[nodiscard]] vEdge mulRecPar(const mEdge& m, const vEdge& v, Qubit level);
  [[nodiscard]] vEdge addRecPar(const vEdge& a, const vEdge& b, Qubit level);
  [[nodiscard]] Qubit spawnCutoffFor(unsigned threads) const noexcept;

  [[nodiscard]] vEdge swapAdjacentRec(
      const vEdge& e, Qubit lower,
      std::unordered_map<const vNode*, vEdge>& memo);

  void toArrayRec(const vEdge& e, Qubit level, Index offset, Complex factor,
                  std::span<Complex> out) const;
  [[nodiscard]] vEdge fromArrayRec(std::span<const Complex> amps, Qubit level);

  /// Squared norm of every subtree reachable from `state` (keyed by node).
  [[nodiscard]] std::unordered_map<const vNode*, fp> annotateSubtreeNorms(
      const vEdge& state) const;

  template <typename Rng>
  [[nodiscard]] Index sampleOnce(
      const vEdge& state, const std::unordered_map<const vNode*, fp>& norms,
      Rng& rng) const {
    Index result = 0;
    vEdge e = state;
    for (Qubit level = nQubits_ - 1; level >= 0; --level) {
      if (e.isZero()) {
        break;  // degenerate (zero state): report |0...0>
      }
      const vEdge& lo = e.n->e[0];
      const vEdge& hi = e.n->e[1];
      auto branchWeight = [&](const vEdge& child) -> fp {
        if (child.isZero()) {
          return 0;
        }
        const fp sub = child.isTerminal() ? 1.0 : norms.at(child.n);
        return norm2(child.w) * sub;
      };
      const fp w0 = branchWeight(lo);
      const fp w1 = branchWeight(hi);
      const fp total = w0 + w1;
      const bool takeOne =
          total > 0 && rng.uniform() * total >= w0;
      if (takeOne) {
        result |= Index{1} << level;
        e = hi;
      } else {
        e = lo;
      }
    }
    return result;
  }

  Qubit nQubits_;
  ComplexTable ctable_;

  NodePool<vNode> vPool_;
  NodePool<mNode> mPool_;
  UniqueTable<vNode> vUnique_;
  UniqueTable<mNode> mUnique_;

  ComputeTable<AddKey<vNode>, vEdge> vAddTable_;
  ComputeTable<AddKey<mNode>, mEdge> mAddTable_;
  ComputeTable<MulKey<mNode, vNode>, vEdge> mvTable_;
  ComputeTable<MulKey<mNode, mNode>, mEdge> mmTable_;

  std::vector<mEdge> identCache_;  // [level] -> identity on qubits [0..level]

  // ---- DD-phase parallelism state ---------------------------------------
  unsigned ddThreads_ = 1;
  int ddGrain_;  // level cutoff override; -1 = auto (set from env in ctor)
  std::size_t ddParallelMinNodes_ = 128;
  Qubit spawnCutoff_ = 0;          // valid during multiplyParallel
  par::TaskArena* arena_ = nullptr;  // non-null during multiplyParallel

  std::atomic<std::size_t> peakVNodes_{0};
  std::atomic<std::size_t> peakMNodes_{0};
  std::size_t gcRuns_ = 0;
  std::size_t gcCollected_ = 0;
  std::size_t gcThreshold_ = 1u << 16;
  std::uint64_t mNodeGeneration_ = 0;
  std::uint64_t orderingEpoch_ = 0;
  bool gcThresholdPinned_ = false;
  std::size_t ctableRebuildThreshold_ = 1u << 18;
};

}  // namespace fdd::dd
