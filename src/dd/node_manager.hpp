#pragma once
// Node allocation (chunked arena + free list) and per-level unique tables.

#include <cstddef>
#include <memory>
#include <vector>

#include "dd/edge.hpp"

namespace fdd::dd {

/// Chunked arena with a free list. Nodes are recycled by the garbage
/// collector; chunks are only released when the pool is destroyed, so node
/// pointers stay stable for the Package's lifetime.
template <typename NodeT>
class NodePool {
 public:
  static constexpr std::size_t kChunkSize = 4096;

  NodeT* allocate() {
    if (free_ != nullptr) {
      NodeT* node = free_;
      free_ = node->next;
      ++liveCount_;
      return node;
    }
    if (chunkPos_ == kChunkSize) {
      chunks_.push_back(std::make_unique<NodeT[]>(kChunkSize));
      chunkPos_ = 0;
    }
    ++liveCount_;
    return &chunks_.back()[chunkPos_++];
  }

  void release(NodeT* node) noexcept {
    node->next = free_;
    node->ref = 0;
    free_ = node;
    --liveCount_;
  }

  [[nodiscard]] std::size_t liveCount() const noexcept { return liveCount_; }
  [[nodiscard]] std::size_t allocatedBytes() const noexcept {
    return chunks_.size() * kChunkSize * sizeof(NodeT);
  }

 private:
  std::vector<std::unique_ptr<NodeT[]>> chunks_;
  std::size_t chunkPos_ = kChunkSize;
  NodeT* free_ = nullptr;
  std::size_t liveCount_ = 0;
};

/// Open-hashing unique table, one bucket array per level. getOrInsert is the
/// single gateway through which nodes come into existence, which is what
/// guarantees DD canonicity (identical sub-DDs share one node).
template <typename NodeT>
class UniqueTable {
 public:
  static constexpr std::size_t kBucketBits = 13;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;

  explicit UniqueTable(Qubit levels)
      : levels_(static_cast<std::size_t>(levels)),
        buckets_(levels_ * kBuckets, nullptr) {}

  /// Finds a node with the given level/children or creates one. `created`
  /// reports whether a new node was inserted (callers then take ownership of
  /// the children references).
  NodeT* getOrInsert(Qubit level,
                     const std::array<Edge<NodeT>, NodeT::kRadix>& e,
                     NodePool<NodeT>& pool, bool& created) {
    const std::uint64_t h = nodeHash(level, e);
    NodeT*& head = bucketAt(level, h);
    for (NodeT* cur = head; cur != nullptr; cur = cur->next) {
      if (cur->e == e) {
        created = false;
        return cur;
      }
    }
    NodeT* node = pool.allocate();
    node->e = e;
    node->v = level;
    node->ref = 0;
    node->next = head;
    head = node;
    ++count_;
    created = true;
    return node;
  }

  /// Removes dead nodes (ref == 0), returning them to the pool and
  /// decrementing children references via `decRefChild`. Runs passes until a
  /// fixpoint so chains of dead parents collapse in one call.
  template <typename DecRefChild>
  std::size_t collect(NodePool<NodeT>& pool, DecRefChild&& decRefChild) {
    std::size_t collected = 0;
    bool removedAny = true;
    while (removedAny) {
      removedAny = false;
      for (auto& head : buckets_) {
        NodeT** link = &head;
        while (*link != nullptr) {
          NodeT* cur = *link;
          if (cur->ref == 0) {
            *link = cur->next;
            for (const auto& child : cur->e) {
              decRefChild(child);
            }
            pool.release(cur);
            --count_;
            ++collected;
            removedAny = true;
          } else {
            link = &cur->next;
          }
        }
      }
    }
    return collected;
  }

  /// Visits every live node.
  template <typename F>
  void forEach(F&& fn) const {
    for (const auto& head : buckets_) {
      for (NodeT* cur = head; cur != nullptr; cur = cur->next) {
        fn(cur);
      }
    }
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t memoryBytes() const noexcept {
    return buckets_.size() * sizeof(NodeT*);
  }

 private:
  NodeT*& bucketAt(Qubit level, std::uint64_t hash) {
    const std::size_t slot = hash & (kBuckets - 1);
    return buckets_[static_cast<std::size_t>(level) * kBuckets + slot];
  }

  std::size_t levels_;
  std::vector<NodeT*> buckets_;
  std::size_t count_ = 0;
};

}  // namespace fdd::dd
