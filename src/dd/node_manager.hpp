#pragma once
// Node allocation (sharded chunked arenas + free lists) and per-level unique
// tables. Both are safe for concurrent use by the parallel DD recursion:
//
//  * NodePool shards its arena/free-list by a thread-hashed index, so
//    concurrent allocations from different workers rarely contend on the
//    same mutex. release() may run from any thread (a worker that loses a
//    unique-table insertion race returns its speculative node here).
//  * UniqueTable buckets are lock-free Treiber-style chains: lookup walks
//    the chain from an acquire-loaded head (every interior `next` pointer
//    was written before its node's release-CAS publication, so the walk
//    observes fully initialized nodes); insertion CAS-publishes a new head
//    and, on failure, re-scans only the freshly prepended prefix.
//
// garbageCollect() remains a quiescent-point operation: collect() and
// forEach() assume no concurrent mutators (the Package only runs them
// between gate applications).

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "dd/edge.hpp"
#include "obs/metrics.hpp"

namespace fdd::dd {

/// Shard index of the calling thread: threads get a small dense id on first
/// use and keep it for life, so a worker always allocates from "its" shard.
[[nodiscard]] inline std::size_t poolShardOfThread() noexcept {
  static std::atomic<unsigned> nextId{0};
  thread_local const unsigned id =
      nextId.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Sharded chunked arena with per-shard free lists. Nodes are recycled by
/// the garbage collector (and by losers of unique-table insertion races);
/// chunks are only released when the pool is destroyed, so node pointers
/// stay stable for the Package's lifetime.
template <typename NodeT>
class NodePool {
 public:
  static constexpr std::size_t kChunkSize = 4096;
  static constexpr std::size_t kShards = 16;

  NodeT* allocate() {
    Shard& s = shards_[poolShardOfThread() % kShards];
    const std::lock_guard<std::mutex> lock{s.m};
    live_.fetch_add(1, std::memory_order_relaxed);
    if (s.free != nullptr) {
      NodeT* node = s.free;
      s.free = node->next;
      return node;
    }
    if (s.chunkPos == kChunkSize) {
      s.chunks.push_back(std::make_unique<NodeT[]>(kChunkSize));
      s.chunkPos = 0;
    }
    return &s.chunks.back()[s.chunkPos++];
  }

  void release(NodeT* node) noexcept {
    Shard& s = shards_[poolShardOfThread() % kShards];
    const std::lock_guard<std::mutex> lock{s.m};
    node->next = s.free;
    node->ref.store(0, std::memory_order_relaxed);
    s.free = node;
    live_.fetch_sub(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t liveCount() const noexcept {
    return live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t allocatedBytes() const noexcept {
    std::size_t chunks = 0;
    for (const Shard& s : shards_) {
      const std::lock_guard<std::mutex> lock{s.m};
      chunks += s.chunks.size();
    }
    return chunks * kChunkSize * sizeof(NodeT);
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex m;
    std::vector<std::unique_ptr<NodeT[]>> chunks;
    std::size_t chunkPos = kChunkSize;
    NodeT* free = nullptr;
  };

  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> live_{0};
};

/// Open-hashing unique table, one bucket array per level. getOrInsert is the
/// single gateway through which nodes come into existence, which is what
/// guarantees DD canonicity (identical sub-DDs share one node) — including
/// under concurrency: when two workers race to insert the same node, exactly
/// one CAS publishes it and the loser's speculative copy goes back to the
/// pool, so canonicity is preserved without locks.
template <typename NodeT>
class UniqueTable {
 public:
  static constexpr std::size_t kBucketBits = 13;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;

  explicit UniqueTable(Qubit levels)
      : levels_(static_cast<std::size_t>(levels)),
        buckets_(levels_ * kBuckets) {}

  /// Finds a node with the given level/children or creates one. `created`
  /// reports whether a new node was inserted (callers then take ownership of
  /// the children references). Thread-safe against concurrent getOrInsert.
  NodeT* getOrInsert(Qubit level,
                     const std::array<Edge<NodeT>, NodeT::kRadix>& e,
                     NodePool<NodeT>& pool, bool& created) {
    const std::uint64_t h = nodeHash(level, e);
    std::atomic<NodeT*>& head = bucketAt(level, h);
    NodeT* first = head.load(std::memory_order_acquire);
    std::size_t probes = 0;
    for (NodeT* cur = first; cur != nullptr; cur = cur->next) {
      ++probes;
      if (cur->e == e) {
        recordProbes(probes);
        created = false;
        return cur;
      }
    }
    recordProbes(probes);
    NodeT* node = pool.allocate();
    node->e = e;
    node->v = level;
    node->ref.store(0, std::memory_order_relaxed);
    NodeT* scanned = first;  // chain already searched up to here
    for (;;) {
      node->next = first;
      if (head.compare_exchange_weak(first, node, std::memory_order_release,
                                     std::memory_order_acquire)) {
        count_.fetch_add(1, std::memory_order_relaxed);
        created = true;
        return node;
      }
      // Lost the head to a concurrent insert: someone may have published
      // this very node. Re-scan only the prefix that is new since our scan.
      FDD_OBS_COUNT("dd.unique.insert_races");
      for (NodeT* cur = first; cur != scanned; cur = cur->next) {
        if (cur->e == e) {
          pool.release(node);
          created = false;
          return cur;
        }
      }
      scanned = first;
    }
  }

  /// Removes dead nodes (ref == 0), returning them to the pool and
  /// decrementing children references via `decRefChild`. Runs passes until a
  /// fixpoint so chains of dead parents collapse in one call. Quiescent-point
  /// only: assumes no concurrent getOrInsert.
  template <typename DecRefChild>
  std::size_t collect(NodePool<NodeT>& pool, DecRefChild&& decRefChild) {
    std::size_t collected = 0;
    bool removedAny = true;
    while (removedAny) {
      removedAny = false;
      for (auto& head : buckets_) {
        // Unlink dead nodes by rebuilding the chain in place. Plain `next`
        // rewrites are fine at a quiescent point; the final head store is a
        // release so post-GC readers see the rebuilt chain.
        NodeT* cur = head.load(std::memory_order_relaxed);
        NodeT* newHead = nullptr;
        NodeT** tail = &newHead;
        while (cur != nullptr) {
          NodeT* next = cur->next;
          if (cur->ref.load(std::memory_order_relaxed) == 0) {
            for (const auto& child : cur->e) {
              decRefChild(child);
            }
            pool.release(cur);
            count_.fetch_sub(1, std::memory_order_relaxed);
            ++collected;
            removedAny = true;
          } else {
            *tail = cur;
            tail = &cur->next;
          }
          cur = next;
        }
        *tail = nullptr;
        head.store(newHead, std::memory_order_release);
      }
    }
    return collected;
  }

  /// Visits every live node. Quiescent-point only.
  template <typename F>
  void forEach(F&& fn) const {
    for (const auto& head : buckets_) {
      for (NodeT* cur = head.load(std::memory_order_acquire); cur != nullptr;
           cur = cur->next) {
        fn(cur);
      }
    }
  }

  [[nodiscard]] std::size_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t memoryBytes() const noexcept {
    return buckets_.size() * sizeof(std::atomic<NodeT*>);
  }

 private:
  std::atomic<NodeT*>& bucketAt(Qubit level, std::uint64_t hash) {
    const std::size_t slot = hash & (kBuckets - 1);
    return buckets_[static_cast<std::size_t>(level) * kBuckets + slot];
  }

  static void recordProbes(std::size_t probes) noexcept {
#if FDD_OBS_ENABLED
    static obs::Histogram& hist =
        obs::Registry::instance().histogram("dd.unique.probe_len");
    hist.record(probes);
#else
    (void)probes;
#endif
  }

  std::size_t levels_;
  std::vector<std::atomic<NodeT*>> buckets_;
  std::atomic<std::size_t> count_{0};
};

}  // namespace fdd::dd
