// DD <-> flat-array conversion, amplitude queries, inner products, and node
// counting. toArray here is the *sequential* conversion used by DDSIM — the
// baseline of Fig. 13; FlatDD's parallel conversion lives in
// flatdd/conversion.cpp.

#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/bits.hpp"
#include "dd/package.hpp"
#include "qc/gate.hpp"

namespace fdd::dd {

void Package::toArray(const vEdge& state, std::span<Complex> out) const {
  const Index dim = Index{1} << nQubits_;
  if (out.size() != dim) {
    throw std::invalid_argument("toArray: output span has wrong size");
  }
  for (auto& amp : out) {
    amp = Complex{};
  }
  toArrayRec(state, nQubits_ - 1, 0, Complex{1.0}, out);
}

AlignedVector<Complex> Package::toArray(const vEdge& state) const {
  AlignedVector<Complex> out(Index{1} << nQubits_);
  toArray(state, out);
  return out;
}

void Package::toArrayRec(const vEdge& e, Qubit level, Index offset,
                         Complex factor, std::span<Complex> out) const {
  if (e.isZero()) {
    return;  // output is pre-zeroed
  }
  const Complex f = factor * e.w;
  if (level < 0) {
    out[offset] = f;
    return;
  }
  assert(!e.isTerminal() && e.n->v == level);
  toArrayRec(e.n->e[0], level - 1, offset, f, out);
  toArrayRec(e.n->e[1], level - 1, offset + (Index{1} << level), f, out);
}

vEdge Package::fromArray(std::span<const Complex> amplitudes) {
  const Index dim = Index{1} << nQubits_;
  if (amplitudes.size() != dim) {
    throw std::invalid_argument("fromArray: input span has wrong size");
  }
  return fromArrayRec(amplitudes, nQubits_ - 1);
}

vEdge Package::fromArrayRec(std::span<const Complex> amps, Qubit level) {
  if (level < 0) {
    const Complex w = ctable_.lookup(amps[0]);
    return w == Complex{} ? vEdge::zero() : vEdge{vNode::terminal(), w};
  }
  const std::size_t half = amps.size() / 2;
  const vEdge lo = fromArrayRec(amps.first(half), level - 1);
  const vEdge hi = fromArrayRec(amps.last(half), level - 1);
  return makeVectorNode(level, {lo, hi});
}

Complex Package::getAmplitude(const vEdge& state, Index i) const {
  if (nQubits_ < 62 && i >= (Index{1} << nQubits_)) {
    throw std::out_of_range("getAmplitude: basis index out of range");
  }
  vEdge e = state;
  Complex amp = Complex{1.0};
  for (Qubit l = nQubits_ - 1; l >= 0; --l) {
    if (e.isZero()) {
      return Complex{};
    }
    amp *= e.w;
    e = e.n->e[testBit(i, l) ? 1 : 0];
  }
  if (e.isZero()) {
    return Complex{};
  }
  return amp * e.w;
}

Complex Package::innerProduct(const vEdge& a, const vEdge& b) {
  // <a|b>, memoized per node pair (weights factored out; a's side conjugated).
  std::unordered_map<std::uint64_t, Complex> memo;
  auto keyOf = [](const vNode* x, const vNode* y) {
    return (reinterpret_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL) ^
           reinterpret_cast<std::uint64_t>(y);
  };
  auto rec = [&](auto&& self, const vEdge& x, const vEdge& y,
                 Qubit level) -> Complex {
    if (x.isZero() || y.isZero()) {
      return Complex{};
    }
    const Complex w = std::conj(x.w) * y.w;
    if (level < 0) {
      return w;
    }
    const std::uint64_t key = keyOf(x.n, y.n);
    const auto it = memo.find(key);
    if (it != memo.end()) {
      return w * it->second;
    }
    Complex sum{};
    for (std::size_t i = 0; i < 2; ++i) {
      sum += self(self, x.n->e[i], y.n->e[i], level - 1);
    }
    memo.emplace(key, sum);
    return w * sum;
  };
  return rec(rec, a, b, nQubits_ - 1);
}

namespace {

template <typename NodeT>
std::size_t countNodes(const Edge<NodeT>& root) {
  if (root.isZero() || root.isTerminal()) {
    return 0;
  }
  std::unordered_set<const NodeT*> seen;
  std::vector<const NodeT*> stack{root.n};
  seen.insert(root.n);
  while (!stack.empty()) {
    const NodeT* n = stack.back();
    stack.pop_back();
    for (const auto& child : n->e) {
      if (!child.isZero() && !child.isTerminal() &&
          seen.insert(child.n).second) {
        stack.push_back(child.n);
      }
    }
  }
  return seen.size();
}

}  // namespace

std::size_t Package::nodeCount(const vEdge& e) const { return countNodes(e); }
std::size_t Package::nodeCount(const mEdge& e) const { return countNodes(e); }

}  // namespace fdd::dd
