// DD arithmetic: addition, matrix-vector multiplication (the DD simulation
// step), and matrix-matrix multiplication (DDMM, used by gate fusion).
// All three are memoized in compute tables; multiplication factors operand
// weights out of the cache key so one cached entry serves every scaled pair.

#include <cassert>

#include "dd/package.hpp"

namespace fdd::dd {

namespace {

/// Commutative operand ordering so add(a, b) and add(b, a) share a slot.
template <typename NodeT>
void orderOperands(Edge<NodeT>& a, Edge<NodeT>& b) noexcept {
  const auto pa = reinterpret_cast<std::uintptr_t>(a.n);
  const auto pb = reinterpret_cast<std::uintptr_t>(b.n);
  if (pb < pa || (pa == pb && weightHash(b.w) < weightHash(a.w))) {
    std::swap(a, b);
  }
}

/// Child edge of `parent` scaled by the parent edge's weight.
template <typename NodeT>
Edge<NodeT> scaledChild(const Edge<NodeT>& parent, std::size_t i,
                        ComplexTable& ct) {
  Edge<NodeT> child = parent.n->e[i];
  if (child.isZero()) {
    return Edge<NodeT>::zero();
  }
  child.w = ct.lookup(child.w * parent.w);
  if (child.isZero()) {
    return Edge<NodeT>::zero();
  }
  return child;
}

}  // namespace

// ---------------------------------------------------------------------------
// Addition
// ---------------------------------------------------------------------------

vEdge Package::add(const vEdge& a, const vEdge& b, Qubit level) {
  assert(level < nQubits_);
  return addRec(a, b, level);
}

mEdge Package::add(const mEdge& a, const mEdge& b, Qubit level) {
  assert(level < nQubits_);
  return addRec(a, b, level);
}

vEdge Package::addRec(const vEdge& a0, const vEdge& b0, Qubit level) {
  if (a0.isZero()) {
    return b0;
  }
  if (b0.isZero()) {
    return a0;
  }
  if (level < 0) {
    const Complex sum = ctable_.lookup(a0.w + b0.w);
    return sum == Complex{} ? vEdge::zero() : vEdge{vNode::terminal(), sum};
  }
  vEdge a = a0;
  vEdge b = b0;
  orderOperands(a, b);
  const AddKey<vNode> key{a, b};
  if (const vEdge* hit = vAddTable_.lookup(key)) {
    return *hit;
  }
  assert(a.n->v == level && b.n->v == level);
  std::array<vEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    r[i] = addRec(scaledChild(a, i, ctable_), scaledChild(b, i, ctable_),
                  level - 1);
  }
  const vEdge res = makeVectorNode(level, r);
  vAddTable_.insert(key, res);
  return res;
}

mEdge Package::addRec(const mEdge& a0, const mEdge& b0, Qubit level) {
  if (a0.isZero()) {
    return b0;
  }
  if (b0.isZero()) {
    return a0;
  }
  if (level < 0) {
    const Complex sum = ctable_.lookup(a0.w + b0.w);
    return sum == Complex{} ? mEdge::zero() : mEdge{mNode::terminal(), sum};
  }
  mEdge a = a0;
  mEdge b = b0;
  orderOperands(a, b);
  const AddKey<mNode> key{a, b};
  if (const mEdge* hit = mAddTable_.lookup(key)) {
    return *hit;
  }
  assert(a.n->v == level && b.n->v == level);
  std::array<mEdge, 4> r;
  for (std::size_t i = 0; i < 4; ++i) {
    r[i] = addRec(scaledChild(a, i, ctable_), scaledChild(b, i, ctable_),
                  level - 1);
  }
  const mEdge res = makeMatrixNode(level, r);
  mAddTable_.insert(key, res);
  return res;
}

// ---------------------------------------------------------------------------
// Matrix-vector multiplication
// ---------------------------------------------------------------------------

vEdge Package::multiply(const mEdge& m, const vEdge& v) {
  return mulRec(m, v, nQubits_ - 1);
}

vEdge Package::mulRec(const mEdge& m, const vEdge& v, Qubit level) {
  if (m.isZero() || v.isZero()) {
    return vEdge::zero();
  }
  const Complex w = ctable_.lookup(m.w * v.w);
  if (w == Complex{}) {
    return vEdge::zero();
  }
  if (level < 0) {
    return {vNode::terminal(), w};
  }
  assert(m.n->v == level && v.n->v == level);
  const MulKey<mNode, vNode> key{m.n, v.n};
  if (const vEdge* hit = mvTable_.lookup(key)) {
    if (hit->isZero()) {
      return vEdge::zero();
    }
    const Complex scaled = ctable_.lookup(hit->w * w);
    return scaled == Complex{} ? vEdge::zero() : vEdge{hit->n, scaled};
  }
  // Compute the weight-1 product of the two nodes:
  //   r[i] = sum_j M[i][j] * V[j]
  std::array<vEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    const vEdge p = mulRec(m.n->e[2 * i + 0], v.n->e[0], level - 1);
    const vEdge q = mulRec(m.n->e[2 * i + 1], v.n->e[1], level - 1);
    r[i] = addRec(p, q, level - 1);
  }
  const vEdge res = makeVectorNode(level, r);
  mvTable_.insert(key, res);
  if (res.isZero()) {
    return vEdge::zero();
  }
  const Complex scaled = ctable_.lookup(res.w * w);
  return scaled == Complex{} ? vEdge::zero() : vEdge{res.n, scaled};
}

// ---------------------------------------------------------------------------
// Matrix-matrix multiplication (DDMM)
// ---------------------------------------------------------------------------

mEdge Package::multiply(const mEdge& a, const mEdge& b) {
  return mulRec(a, b, nQubits_ - 1);
}

mEdge Package::mulRec(const mEdge& a, const mEdge& b, Qubit level) {
  if (a.isZero() || b.isZero()) {
    return mEdge::zero();
  }
  const Complex w = ctable_.lookup(a.w * b.w);
  if (w == Complex{}) {
    return mEdge::zero();
  }
  if (level < 0) {
    return {mNode::terminal(), w};
  }
  assert(a.n->v == level && b.n->v == level);
  const MulKey<mNode, mNode> key{a.n, b.n};
  if (const mEdge* hit = mmTable_.lookup(key)) {
    if (hit->isZero()) {
      return mEdge::zero();
    }
    const Complex scaled = ctable_.lookup(hit->w * w);
    return scaled == Complex{} ? mEdge::zero() : mEdge{hit->n, scaled};
  }
  // r[i][j] = sum_k A[i][k] * B[k][j]
  std::array<mEdge, 4> r;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      const mEdge p = mulRec(a.n->e[2 * i + 0], b.n->e[0 + j], level - 1);
      const mEdge q = mulRec(a.n->e[2 * i + 1], b.n->e[2 + j], level - 1);
      r[2 * i + j] = addRec(p, q, level - 1);
    }
  }
  const mEdge res = makeMatrixNode(level, r);
  mmTable_.insert(key, res);
  if (res.isZero()) {
    return mEdge::zero();
  }
  const Complex scaled = ctable_.lookup(res.w * w);
  return scaled == Complex{} ? mEdge::zero() : mEdge{res.n, scaled};
}

}  // namespace fdd::dd
