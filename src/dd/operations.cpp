// DD arithmetic: addition, matrix-vector multiplication (the DD simulation
// step), and matrix-matrix multiplication (DDMM, used by gate fusion).
// All three are memoized in compute tables; multiplication factors operand
// weights out of the cache key so one cached entry serves every scaled pair.
//
// The mat-vec recursion — the per-gate hot path of DD simulation — also has
// a fork/join variant (multiplyParallel): above a depth-based grain cutoff
// each of the four weight-1 subproducts becomes a TaskArena task; below it
// the unchanged sequential recursion runs inside the task. Every table the
// recursion touches (unique, compute, complex) is thread-safe, so the
// sequential and parallel variants are free to interleave; duplicated work
// from concurrent cache misses is benign because results are canonical.

#include <algorithm>
#include <cassert>

#include "dd/package.hpp"
#include "obs/metrics.hpp"
#include "parallel/task_arena.hpp"

namespace fdd::dd {

namespace {

/// Commutative operand ordering so add(a, b) and add(b, a) share a slot.
template <typename NodeT>
void orderOperands(Edge<NodeT>& a, Edge<NodeT>& b) noexcept {
  const auto pa = reinterpret_cast<std::uintptr_t>(a.n);
  const auto pb = reinterpret_cast<std::uintptr_t>(b.n);
  if (pb < pa || (pa == pb && weightHash(b.w) < weightHash(a.w))) {
    std::swap(a, b);
  }
}

/// Child edge of `parent` scaled by the parent edge's weight.
template <typename NodeT>
Edge<NodeT> scaledChild(const Edge<NodeT>& parent, std::size_t i,
                        ComplexTable& ct) {
  Edge<NodeT> child = parent.n->e[i];
  if (child.isZero()) {
    return Edge<NodeT>::zero();
  }
  child.w = ct.lookup(child.w * parent.w);
  if (child.isZero()) {
    return Edge<NodeT>::zero();
  }
  return child;
}

}  // namespace

// ---------------------------------------------------------------------------
// Addition
// ---------------------------------------------------------------------------

vEdge Package::add(const vEdge& a, const vEdge& b, Qubit level) {
  assert(level < nQubits_);
  return addRec(a, b, level);
}

mEdge Package::add(const mEdge& a, const mEdge& b, Qubit level) {
  assert(level < nQubits_);
  return addRec(a, b, level);
}

vEdge Package::addRec(const vEdge& a0, const vEdge& b0, Qubit level) {
  if (a0.isZero()) {
    return b0;
  }
  if (b0.isZero()) {
    return a0;
  }
  if (level < 0) {
    const Complex sum = ctable_.lookup(a0.w + b0.w);
    return sum == Complex{} ? vEdge::zero() : vEdge{vNode::terminal(), sum};
  }
  vEdge a = a0;
  vEdge b = b0;
  orderOperands(a, b);
  const AddKey<vNode> key{a, b};
  if (vEdge hit; vAddTable_.lookup(key, hit)) {
    return hit;
  }
  assert(a.n->v == level && b.n->v == level);
  std::array<vEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    r[i] = addRec(scaledChild(a, i, ctable_), scaledChild(b, i, ctable_),
                  level - 1);
  }
  const vEdge res = makeVectorNode(level, r);
  vAddTable_.insert(key, res);
  return res;
}

mEdge Package::addRec(const mEdge& a0, const mEdge& b0, Qubit level) {
  if (a0.isZero()) {
    return b0;
  }
  if (b0.isZero()) {
    return a0;
  }
  if (level < 0) {
    const Complex sum = ctable_.lookup(a0.w + b0.w);
    return sum == Complex{} ? mEdge::zero() : mEdge{mNode::terminal(), sum};
  }
  mEdge a = a0;
  mEdge b = b0;
  orderOperands(a, b);
  const AddKey<mNode> key{a, b};
  if (mEdge hit; mAddTable_.lookup(key, hit)) {
    return hit;
  }
  assert(a.n->v == level && b.n->v == level);
  std::array<mEdge, 4> r;
  for (std::size_t i = 0; i < 4; ++i) {
    r[i] = addRec(scaledChild(a, i, ctable_), scaledChild(b, i, ctable_),
                  level - 1);
  }
  const mEdge res = makeMatrixNode(level, r);
  mAddTable_.insert(key, res);
  return res;
}

// ---------------------------------------------------------------------------
// Matrix-vector multiplication
// ---------------------------------------------------------------------------

vEdge Package::multiply(const mEdge& m, const vEdge& v) {
  const unsigned threads =
      std::min<unsigned>(ddThreads_, par::globalPool().size());
  if (threads > 1 && vUnique_.count() >= ddParallelMinNodes_) {
    return multiplyParallel(m, v, threads);
  }
  return mulRec(m, v, nQubits_ - 1);
}

vEdge Package::mulRec(const mEdge& m, const vEdge& v, Qubit level) {
  if (m.isZero() || v.isZero()) {
    return vEdge::zero();
  }
  const Complex w = ctable_.lookup(m.w * v.w);
  if (w == Complex{}) {
    return vEdge::zero();
  }
  if (level < 0) {
    return {vNode::terminal(), w};
  }
  assert(m.n->v == level && v.n->v == level);
  const MulKey<mNode, vNode> key{m.n, v.n};
  if (vEdge hit; mvTable_.lookup(key, hit)) {
    if (hit.isZero()) {
      return vEdge::zero();
    }
    const Complex scaled = ctable_.lookup(hit.w * w);
    return scaled == Complex{} ? vEdge::zero() : vEdge{hit.n, scaled};
  }
  // Compute the weight-1 product of the two nodes:
  //   r[i] = sum_j M[i][j] * V[j]
  std::array<vEdge, 2> r;
  for (std::size_t i = 0; i < 2; ++i) {
    const vEdge p = mulRec(m.n->e[2 * i + 0], v.n->e[0], level - 1);
    const vEdge q = mulRec(m.n->e[2 * i + 1], v.n->e[1], level - 1);
    r[i] = addRec(p, q, level - 1);
  }
  const vEdge res = makeVectorNode(level, r);
  mvTable_.insert(key, res);
  if (res.isZero()) {
    return vEdge::zero();
  }
  const Complex scaled = ctable_.lookup(res.w * w);
  return scaled == Complex{} ? vEdge::zero() : vEdge{res.n, scaled};
}

// ---------------------------------------------------------------------------
// Parallel matrix-vector multiplication (fork/join over the TaskArena)
// ---------------------------------------------------------------------------

Qubit Package::spawnCutoffFor(unsigned threads) const noexcept {
  if (ddGrain_ >= 0) {
    return static_cast<Qubit>(std::min<int>(ddGrain_, nQubits_));
  }
  // Spawn through the top D levels so the fan-out (up to 4^D mul tasks plus
  // the adds) comfortably oversubscribes the workers for load balance:
  // smallest D with 4^D >= 8 * threads, capped well below any real register.
  int depth = 1;
  while ((std::uint64_t{1} << (2 * depth)) < 8ull * threads && depth < 8) {
    ++depth;
  }
  return static_cast<Qubit>(std::max(0, static_cast<int>(nQubits_) - depth));
}

vEdge Package::multiplyParallel(const mEdge& m, const vEdge& v,
                                unsigned threads) {
  spawnCutoff_ = spawnCutoffFor(threads);
  obs::PoolPhaseScope phase{"dd.multiply"};
  par::TaskArena arena;
  arena_ = &arena;
  vEdge result = vEdge::zero();
  arena.run(par::globalPool(), threads,
            [&] { result = mulRecPar(m, v, nQubits_ - 1); });
  arena_ = nullptr;
  if (obs::enabled()) {
    // One point per parallel gate: cumulative compute-table health for the
    // mat-vec path, as counter tracks next to dd.size in trace_summarize.
    const auto hits = static_cast<double>(mvTable_.hits() + vAddTable_.hits());
    const auto misses =
        static_cast<double>(mvTable_.misses() + vAddTable_.misses());
    obs::counterEvent("dd.compute.hit_rate",
                      hits + misses == 0 ? 0 : hits / (hits + misses));
    obs::counterEvent(
        "dd.compute.lost_inserts",
        static_cast<double>(mvTable_.lostInserts() + vAddTable_.lostInserts()));
  }
  return result;
}

vEdge Package::mulRecPar(const mEdge& m, const vEdge& v, Qubit level) {
  if (level < spawnCutoff_) {
    return mulRec(m, v, level);  // below the grain: plain recursion
  }
  if (m.isZero() || v.isZero()) {
    return vEdge::zero();
  }
  const Complex w = ctable_.lookup(m.w * v.w);
  if (w == Complex{}) {
    return vEdge::zero();
  }
  assert(m.n->v == level && v.n->v == level);
  const MulKey<mNode, vNode> key{m.n, v.n};
  if (vEdge hit; mvTable_.lookup(key, hit)) {
    if (hit.isZero()) {
      return vEdge::zero();
    }
    const Complex scaled = ctable_.lookup(hit.w * w);
    return scaled == Complex{} ? vEdge::zero() : vEdge{hit.n, scaled};
  }
  // Fork the four weight-1 subproducts (three spawned, one inline), then
  // the two pairwise adds (one spawned, one inline). Joins run LIFO so an
  // unstolen task executes inline exactly like sequential recursion.
  vEdge p00, p01, p10, p11;
  par::LambdaTask t00{[&] { p00 = mulRecPar(m.n->e[0], v.n->e[0], level - 1); }};
  par::LambdaTask t01{[&] { p01 = mulRecPar(m.n->e[1], v.n->e[1], level - 1); }};
  par::LambdaTask t10{[&] { p10 = mulRecPar(m.n->e[2], v.n->e[0], level - 1); }};
  arena_->spawn(t00.task());
  arena_->spawn(t01.task());
  arena_->spawn(t10.task());
  p11 = mulRecPar(m.n->e[3], v.n->e[1], level - 1);
  arena_->join(t10.task());
  arena_->join(t01.task());
  arena_->join(t00.task());
  std::array<vEdge, 2> r;
  par::LambdaTask tAdd{[&] { r[0] = addRecPar(p00, p01, level - 1); }};
  arena_->spawn(tAdd.task());
  r[1] = addRecPar(p10, p11, level - 1);
  arena_->join(tAdd.task());
  const vEdge res = makeVectorNode(level, r);
  mvTable_.insert(key, res);
  if (res.isZero()) {
    return vEdge::zero();
  }
  const Complex scaled = ctable_.lookup(res.w * w);
  return scaled == Complex{} ? vEdge::zero() : vEdge{res.n, scaled};
}

vEdge Package::addRecPar(const vEdge& a0, const vEdge& b0, Qubit level) {
  if (level < spawnCutoff_) {
    return addRec(a0, b0, level);
  }
  if (a0.isZero()) {
    return b0;
  }
  if (b0.isZero()) {
    return a0;
  }
  vEdge a = a0;
  vEdge b = b0;
  orderOperands(a, b);
  const AddKey<vNode> key{a, b};
  if (vEdge hit; vAddTable_.lookup(key, hit)) {
    return hit;
  }
  assert(a.n->v == level && b.n->v == level);
  std::array<vEdge, 2> r;
  par::LambdaTask t0{[&] {
    r[0] = addRecPar(scaledChild(a, 0, ctable_), scaledChild(b, 0, ctable_),
                     level - 1);
  }};
  arena_->spawn(t0.task());
  r[1] = addRecPar(scaledChild(a, 1, ctable_), scaledChild(b, 1, ctable_),
                   level - 1);
  arena_->join(t0.task());
  const vEdge res = makeVectorNode(level, r);
  vAddTable_.insert(key, res);
  return res;
}

// ---------------------------------------------------------------------------
// Matrix-matrix multiplication (DDMM)
// ---------------------------------------------------------------------------

mEdge Package::multiply(const mEdge& a, const mEdge& b) {
  return mulRec(a, b, nQubits_ - 1);
}

mEdge Package::mulRec(const mEdge& a, const mEdge& b, Qubit level) {
  if (a.isZero() || b.isZero()) {
    return mEdge::zero();
  }
  const Complex w = ctable_.lookup(a.w * b.w);
  if (w == Complex{}) {
    return mEdge::zero();
  }
  if (level < 0) {
    return {mNode::terminal(), w};
  }
  assert(a.n->v == level && b.n->v == level);
  const MulKey<mNode, mNode> key{a.n, b.n};
  if (mEdge hit; mmTable_.lookup(key, hit)) {
    if (hit.isZero()) {
      return mEdge::zero();
    }
    const Complex scaled = ctable_.lookup(hit.w * w);
    return scaled == Complex{} ? mEdge::zero() : mEdge{hit.n, scaled};
  }
  // r[i][j] = sum_k A[i][k] * B[k][j]
  std::array<mEdge, 4> r;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      const mEdge p = mulRec(a.n->e[2 * i + 0], b.n->e[0 + j], level - 1);
      const mEdge q = mulRec(a.n->e[2 * i + 1], b.n->e[2 + j], level - 1);
      r[2 * i + j] = addRec(p, q, level - 1);
    }
  }
  const mEdge res = makeMatrixNode(level, r);
  mmTable_.insert(key, res);
  if (res.isZero()) {
    return mEdge::zero();
  }
  const Complex scaled = ctable_.lookup(res.w * w);
  return scaled == Complex{} ? mEdge::zero() : mEdge{res.n, scaled};
}

}  // namespace fdd::dd
