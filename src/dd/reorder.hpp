#pragma once
// Greedy dynamic variable reordering for vector DDs (the "reorder trick",
// arXiv:2211.07110): sweeps of trial adjacent-level swaps that keep only the
// swaps shrinking the state's node count. Intended to run at a quiescent
// point between gate applications — FlatDD invokes it when the EWMA monitor
// is about to trigger a conversion, so the flat array is materialized from
// the smallest DD the sweep can find ("reorder before converting").
//
// The caller owns the bookkeeping that makes a reorder observable:
// replacing the simulator's root reference, updating its qubit <-> level
// permutation by the returned swap list, and bumping the package's
// orderingEpoch so plan caches keyed on flat indices invalidate.

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "dd/edge.hpp"

namespace fdd::dd {

class Package;

struct ReorderOptions {
  /// Full bubble sweeps over the levels per call. Each sweep trials every
  /// adjacent pair once; a second sweep catches variables that want to
  /// travel more than one level. More rounds rarely pay within one call —
  /// the driver can always reorder again at the next trigger.
  std::size_t maxRounds = 2;
  /// A trial swap is kept only when it shrinks the node count by at least
  /// this fraction (0 keeps any strict improvement). Guards against churn
  /// on plateaus where a swap saves one node.
  fp minGainFraction = 0.0;
};

struct ReorderResult {
  /// The reordered state (== the input edge when no swap was kept). The
  /// edge is unreferenced; the caller incRefs it (and decRefs the old root)
  /// before the next garbage collection.
  vEdge state;
  /// Accepted swaps in application order; each entry is the lower level of
  /// the exchanged pair. Replaying these on a level -> qubit array yields
  /// the new ordering.
  std::vector<Qubit> swaps;
  std::size_t nodesBefore = 0;
  std::size_t nodesAfter = 0;
};

/// Greedy sifting over `state`. Rejected trial nodes stay in the unique
/// table as garbage until the caller's next garbageCollect(); the function
/// itself never collects (the input and every trial root are unreferenced).
[[nodiscard]] ReorderResult reorderGreedy(Package& pkg, const vEdge& state,
                                          const ReorderOptions& options = {});

}  // namespace fdd::dd
