// Additional DD operations beyond the core simulation loop: adjoints (for
// uncomputation / equivalence checking), mixed DD-array inner products,
// single-qubit measurement probabilities, and graphviz export.

#include <sstream>
#include <unordered_map>

#include "common/bits.hpp"
#include "dd/package.hpp"

namespace fdd::dd {

namespace {

/// Recursive adjoint with per-call memoization: transpose the 2x2 block
/// structure (swap the off-diagonal children) and conjugate every weight.
mEdge adjointRec(Package& pkg, const mEdge& m, Qubit level,
                 std::unordered_map<const mNode*, mEdge>& memo) {
  if (m.isZero()) {
    return mEdge::zero();
  }
  const Complex w = pkg.canonical(std::conj(m.w));
  if (level < 0) {
    return {mNode::terminal(), w};
  }
  const auto it = memo.find(m.n);
  if (it != memo.end()) {
    const mEdge& cached = it->second;
    if (cached.isZero()) {
      return mEdge::zero();
    }
    const Complex scaled = pkg.canonical(cached.w * w);
    return scaled == Complex{} ? mEdge::zero() : mEdge{cached.n, scaled};
  }
  const std::array<mEdge, 4> children{
      adjointRec(pkg, m.n->e[0], level - 1, memo),
      adjointRec(pkg, m.n->e[2], level - 1, memo),  // transposed
      adjointRec(pkg, m.n->e[1], level - 1, memo),
      adjointRec(pkg, m.n->e[3], level - 1, memo)};
  const mEdge res = pkg.makeMatrixNode(level, children);
  memo.emplace(m.n, res);
  if (res.isZero()) {
    return mEdge::zero();
  }
  const Complex scaled = pkg.canonical(res.w * w);
  return scaled == Complex{} ? mEdge::zero() : mEdge{res.n, scaled};
}

}  // namespace

mEdge Package::adjoint(const mEdge& m) {
  std::unordered_map<const mNode*, mEdge> memo;
  return adjointRec(*this, m, nQubits_ - 1, memo);
}

Complex Package::innerProduct(const vEdge& a,
                              std::span<const Complex> flat) const {
  const Index dim = Index{1} << nQubits_;
  if (flat.size() != dim) {
    throw std::invalid_argument("innerProduct: flat vector size mismatch");
  }
  // <a|flat> = sum_i conj(a_i) flat_i; traverse the DD so zero subtrees are
  // skipped in O(1) and shared nodes are still walked per position (the
  // flat side differs, so no memoization applies).
  auto rec = [&](auto&& self, const vEdge& e, Qubit level, Index offset,
                 Complex factor) -> Complex {
    if (e.isZero()) {
      return Complex{};
    }
    const Complex f = factor * std::conj(e.w);
    if (level < 0) {
      return f * flat[offset];
    }
    return self(self, e.n->e[0], level - 1, offset, f) +
           self(self, e.n->e[1], level - 1, offset + (Index{1} << level), f);
  };
  return rec(rec, a, nQubits_ - 1, 0, Complex{1.0});
}

fp Package::probabilityOfOne(const vEdge& state, Qubit q) const {
  if (q < 0 || q >= nQubits_) {
    throw std::out_of_range("probabilityOfOne: qubit out of range");
  }
  // Sum |amplitude|^2 over the |1>_q branches. Memoize the squared norm of
  // whole subtrees (keyed by node) for the levels below q.
  std::unordered_map<const vNode*, fp> normMemo;
  auto subtreeNorm = [&](auto&& self, const vEdge& e, Qubit level) -> fp {
    if (e.isZero()) {
      return 0;
    }
    const fp w2 = norm2(e.w);
    if (level < 0) {
      return w2;
    }
    const auto it = normMemo.find(e.n);
    if (it != normMemo.end()) {
      return w2 * it->second;
    }
    const fp below = self(self, e.n->e[0], level - 1) +
                     self(self, e.n->e[1], level - 1);
    normMemo.emplace(e.n, below);
    return w2 * below;
  };
  auto rec = [&](auto&& self, const vEdge& e, Qubit level,
                 fp factor) -> fp {
    if (e.isZero()) {
      return 0;
    }
    const fp f = factor * norm2(e.w);
    if (level == q) {
      return f * subtreeNorm(subtreeNorm, e.n->e[1], level - 1);
    }
    return self(self, e.n->e[0], level - 1, f) +
           self(self, e.n->e[1], level - 1, f);
  };
  return rec(rec, state, nQubits_ - 1, 1.0);
}

std::unordered_map<const vNode*, fp> Package::annotateSubtreeNorms(
    const vEdge& state) const {
  std::unordered_map<const vNode*, fp> norms;
  auto rec = [&](auto&& self, const vNode* n) -> fp {
    if (n->isTerminal()) {
      return 1.0;
    }
    const auto it = norms.find(n);
    if (it != norms.end()) {
      return it->second;
    }
    fp total = 0;
    for (const auto& child : n->e) {
      if (!child.isZero()) {
        total += norm2(child.w) *
                 (child.isTerminal() ? 1.0 : self(self, child.n));
      }
    }
    norms.emplace(n, total);
    return total;
  };
  if (!state.isZero() && !state.isTerminal()) {
    (void)rec(rec, state.n);
  }
  return norms;
}

std::string Package::toDot(const vEdge& state) const {
  std::ostringstream os;
  os << "digraph dd {\n  rankdir=TB;\n  node [shape=circle];\n";
  os << "  root [shape=point];\n";
  std::unordered_map<const vNode*, int> ids;
  auto idOf = [&](const vNode* n) {
    const auto [it, inserted] = ids.emplace(n, static_cast<int>(ids.size()));
    return it->second;
  };
  auto fmtW = [](const Complex& w) {
    std::ostringstream ws;
    ws.precision(4);
    ws << '(' << w.real() << (w.imag() < 0 ? "" : "+") << w.imag() << "i)";
    return ws.str();
  };
  os << "  terminal [shape=box,label=\"1\"];\n";
  if (state.isZero()) {
    os << "  root -> terminal [label=\"0\"];\n}\n";
    return os.str();
  }
  // Collect reachable nodes first, then emit declarations and edges.
  std::vector<const vNode*> order;
  std::vector<const vNode*> stack{state.n};
  ids.emplace(state.n, 0);
  order.push_back(state.n);
  while (!stack.empty()) {
    const vNode* n = stack.back();
    stack.pop_back();
    for (const auto& child : n->e) {
      if (!child.isZero() && !child.isTerminal() &&
          ids.emplace(child.n, static_cast<int>(ids.size())).second) {
        order.push_back(child.n);
        stack.push_back(child.n);
      }
    }
  }
  auto emitEdge = [&](const std::string& from, const vEdge& e,
                      const char* style) {
    if (e.isZero()) {
      return;
    }
    const std::string to =
        e.isTerminal() ? "terminal" : "n" + std::to_string(idOf(e.n));
    os << "  " << from << " -> " << to << " [label=\"" << fmtW(e.w) << "\""
       << style << "];\n";
  };
  for (const vNode* n : order) {
    os << "  n" << idOf(n) << " [label=\"q" << n->v << "\"];\n";
  }
  emitEdge("root", state, "");
  for (const vNode* n : order) {
    const std::string name = "n" + std::to_string(idOf(n));
    emitEdge(name, n->e[0], ",style=dashed");  // |0> branch dashed
    emitEdge(name, n->e[1], "");
  }
  os << "}\n";
  return os.str();
}

}  // namespace fdd::dd
