#pragma once
// Canonical storage for edge weights, following DDSIM's complex-number
// handling [98]: every weight that appears on a DD edge is snapped to a
// canonical representative so that (a) weights equal up to the numerical
// tolerance become *bit-identical*, letting the unique table hash and compare
// weights by their raw bits, and (b) decision-diagram node sharing is immune
// to floating-point jitter accumulated over long gate sequences.
//
// We canonicalize the real and imaginary components independently through a
// bucketed table of doubles. Lookup probes the value's bucket and both
// neighbors, so two values within the tolerance always map to the same
// representative even when they straddle a bucket boundary.
//
// Concurrency: reads are lock-free (bucket and value chains are only ever
// prepended to, with release publication), inserts serialize on one mutex
// and re-probe under it — so two workers racing to canonicalize values
// within tolerance of each other still agree on a single representative,
// which is what keeps concurrent node construction canonical. clear() and
// insertExact() are quiescent-point operations (GC only).

#include <cstdint>
#include <deque>
#include <atomic>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace fdd::dd {

class RealTable {
 public:
  explicit RealTable(fp tolerance);

  RealTable(const RealTable&) = delete;
  RealTable& operator=(const RealTable&) = delete;

  /// Returns the canonical representative for x (inserting x if no existing
  /// entry lies within the tolerance). Canonical zero is +0.0. Thread-safe.
  [[nodiscard]] fp lookup(fp x);

  /// Inserts x verbatim as a representative unless the identical bits are
  /// already present. Used when rebuilding the table from live edge weights
  /// during garbage collection: live weights must survive bit-exactly.
  /// Quiescent-point only.
  void insertExact(fp x);

  /// Drops every entry and re-seeds the standard constants. Quiescent-point
  /// only.
  void clear();

  [[nodiscard]] fp tolerance() const noexcept { return tol_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Bytes of heap the table currently holds (for memory accounting).
  [[nodiscard]] std::size_t memoryBytes() const noexcept;

 private:
  /// One canonical representative; chains are prepend-only between clears.
  struct ValueNode {
    fp value;
    ValueNode* next;  // immutable after publication
  };
  /// One tolerance-width bucket (keyed by floor(x / bucketWidth)).
  struct BucketNode {
    BucketNode(std::int64_t i, BucketNode* n) noexcept : id{i}, next{n} {}
    std::int64_t id;
    BucketNode* next;  // immutable after publication
    std::atomic<ValueNode*> values{nullptr};
  };

  static constexpr std::size_t kSlotBits = 15;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;

  [[nodiscard]] std::int64_t bucketOf(fp x) const noexcept;
  [[nodiscard]] static std::size_t slotOf(std::int64_t id) noexcept;
  /// Lock-free walk of the bucket's value chain; false when absent.
  [[nodiscard]] bool findIn(std::int64_t id, fp x, fp& out) const noexcept;
  /// Chain append; callers hold writeMutex_.
  BucketNode* findOrCreateBucketLocked(std::int64_t id);
  void resetLocked();

  fp tol_;
  fp bucketWidth_;
  std::vector<std::atomic<BucketNode*>> slots_;
  std::mutex writeMutex_;
  // Node storage (stable addresses); mutated only under writeMutex_.
  std::deque<BucketNode> bucketArena_;
  std::deque<ValueNode> valueArena_;
  std::atomic<std::size_t> count_{0};
};

class ComplexTable {
 public:
  explicit ComplexTable(fp tolerance = 1e-10);

  /// Canonicalizes both components. Values within tolerance of 0 snap to
  /// exactly +0.0, of 1 to exactly 1.0, etc. (0, ±1, ±1/sqrt(2), ±0.5 are
  /// pre-seeded since they dominate quantum gate sets). Thread-safe.
  [[nodiscard]] Complex lookup(Complex z);

  /// See RealTable::insertExact / clear (quiescent-point only).
  void insertExact(Complex z) {
    table_.insertExact(z.real());
    table_.insertExact(z.imag());
  }
  void clear() { table_.clear(); }

  [[nodiscard]] fp tolerance() const noexcept { return table_.tolerance(); }
  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  [[nodiscard]] std::size_t memoryBytes() const noexcept {
    return table_.memoryBytes();
  }

 private:
  RealTable table_;
};

/// Bitwise equality of canonicalized weights. Only valid on values returned
/// by ComplexTable::lookup.
[[nodiscard]] inline bool weightEqual(const Complex& a,
                                      const Complex& b) noexcept {
  return a.real() == b.real() && a.imag() == b.imag();
}

/// Hash of a canonical weight's raw bits.
[[nodiscard]] std::uint64_t weightHash(const Complex& w) noexcept;

}  // namespace fdd::dd
