// Construction of gate-matrix DDs: identity operators and (multi-)controlled
// single-qubit gates positioned anywhere in the register. This is the "DD-
// based gate matrix" half of the paper's DMAV hybrid — gate DDs stay tiny
// (O(n) nodes) regardless of circuit irregularity because gate matrices
// decompose through the Kronecker product (Section 1 of the paper).

#include <algorithm>
#include <stdexcept>

#include "dd/package.hpp"

namespace fdd::dd {

mEdge Package::makeIdent(Qubit level) {
  if (level < 0) {
    return mEdge::one();
  }
  if (level >= nQubits_) {
    throw std::out_of_range("makeIdent: level out of range");
  }
  while (static_cast<Qubit>(identCache_.size()) <= level) {
    const Qubit l = static_cast<Qubit>(identCache_.size());
    const mEdge below = l == 0 ? mEdge::one() : identCache_[l - 1];
    const mEdge id =
        makeMatrixNode(l, {below, mEdge::zero(), mEdge::zero(), below});
    incRef(id);  // pin: the identity cache must survive garbage collection
    identCache_.push_back(id);
  }
  return identCache_[static_cast<std::size_t>(level)];
}

mEdge Package::makeGateDD(const qc::Matrix2& u, Qubit target,
                          std::span<const Qubit> controls) {
  if (target < 0 || target >= nQubits_) {
    throw std::out_of_range("makeGateDD: target out of range");
  }
  for (const Qubit c : controls) {
    if (c < 0 || c >= nQubits_) {
      throw std::out_of_range("makeGateDD: control out of range");
    }
    if (c == target) {
      throw std::invalid_argument("makeGateDD: control equals target");
    }
  }
  auto isControl = [&](Qubit l) {
    return std::find(controls.begin(), controls.end(), l) != controls.end();
  };

  // em[k] accumulates the operator block for gate-matrix entry k in {00, 01,
  // 10, 11}, built bottom-up over the levels below the target.
  std::array<mEdge, 4> em;
  for (std::size_t k = 0; k < 4; ++k) {
    const Complex w = ctable_.lookup(u[k]);
    em[k] = w == Complex{} ? mEdge::zero() : mEdge{mNode::terminal(), w};
  }

  for (Qubit l = 0; l < target; ++l) {
    for (std::size_t k = 0; k < 4; ++k) {
      if (isControl(l)) {
        // Control below the target: when the control reads 0 the whole
        // operator must behave as identity, which contributes the identity
        // block on the diagonal entries (k == 00 or k == 11) even when the
        // gate-matrix entry itself is zero (think CX: u00 = 0 but the
        // control-0 branch still passes |0> through).
        const mEdge ctrlOff =
            (k == 0 || k == 3) ? makeIdent(l - 1) : mEdge::zero();
        if (ctrlOff.isZero() && em[k].isZero()) {
          continue;
        }
        em[k] =
            makeMatrixNode(l, {ctrlOff, mEdge::zero(), mEdge::zero(), em[k]});
      } else if (!em[k].isZero()) {
        em[k] = makeMatrixNode(l, {em[k], mEdge::zero(), mEdge::zero(), em[k]});
      }
    }
  }

  mEdge e = makeMatrixNode(target, em);

  for (Qubit l = target + 1; l < nQubits_; ++l) {
    if (isControl(l)) {
      // Control above the target: the control-0 block is the identity on
      // everything below (gate not applied), control-1 applies the gate.
      e = makeMatrixNode(l,
                         {makeIdent(l - 1), mEdge::zero(), mEdge::zero(), e});
    } else {
      e = makeMatrixNode(l, {e, mEdge::zero(), mEdge::zero(), e});
    }
  }
  return e;
}

mEdge Package::makeGateDD(const qc::Operation& op) {
  return makeGateDD(op.matrix(), op.target,
                    std::span<const Qubit>{op.controls});
}

}  // namespace fdd::dd
