// Advanced DD-package operations: kronecker products, dense-matrix import,
// and state approximation [97] (the technique DDSIM uses to cap DD growth
// at a bounded fidelity cost).

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/bits.hpp"
#include "dd/package.hpp"

namespace fdd::dd {

namespace {

template <typename EdgeT, typename MakeNode>
EdgeT kronImpl(Package& pkg, const EdgeT& top, const EdgeT& bottom,
               Qubit bottomQubits, MakeNode&& makeNode) {
  using NodeT = std::remove_pointer_t<decltype(top.n)>;
  std::unordered_map<const NodeT*, EdgeT> memo;
  auto rec = [&](auto&& self, const EdgeT& t) -> EdgeT {
    if (t.isZero()) {
      return EdgeT::zero();
    }
    if (t.isTerminal()) {
      // Attach the bottom DD, scaled by the path weight into this terminal.
      if (bottom.isZero()) {
        return EdgeT::zero();
      }
      const Complex w = pkg.canonical(t.w * bottom.w);
      return w == Complex{} ? EdgeT::zero() : EdgeT{bottom.n, w};
    }
    const auto it = memo.find(t.n);
    if (it != memo.end()) {
      const EdgeT& cached = it->second;
      if (cached.isZero()) {
        return EdgeT::zero();
      }
      const Complex w = pkg.canonical(cached.w * t.w);
      return w == Complex{} ? EdgeT::zero() : EdgeT{cached.n, w};
    }
    std::array<EdgeT, NodeT::kRadix> children;
    for (std::size_t i = 0; i < NodeT::kRadix; ++i) {
      children[i] = self(self, t.n->e[i]);
    }
    const EdgeT res =
        makeNode(static_cast<Qubit>(t.n->v + bottomQubits), children);
    memo.emplace(t.n, res);
    if (res.isZero()) {
      return EdgeT::zero();
    }
    const Complex w = pkg.canonical(res.w * t.w);
    return w == Complex{} ? EdgeT::zero() : EdgeT{res.n, w};
  };
  return rec(rec, top);
}

}  // namespace

vEdge Package::kronecker(const vEdge& top, const vEdge& bottom,
                         Qubit bottomQubits) {
  if (bottomQubits < 0 || bottomQubits >= nQubits_) {
    throw std::out_of_range("kronecker: bottom qubit count out of range");
  }
  return kronImpl(*this, top, bottom, bottomQubits,
                  [this](Qubit level, const std::array<vEdge, 2>& e) {
                    return makeVectorNode(level, e);
                  });
}

mEdge Package::kronecker(const mEdge& top, const mEdge& bottom,
                         Qubit bottomQubits) {
  if (bottomQubits < 0 || bottomQubits >= nQubits_) {
    throw std::out_of_range("kronecker: bottom qubit count out of range");
  }
  return kronImpl(*this, top, bottom, bottomQubits,
                  [this](Qubit level, const std::array<mEdge, 4>& e) {
                    return makeMatrixNode(level, e);
                  });
}

mEdge Package::fromDenseMatrix(std::span<const Complex> rowMajor) {
  // Infer the dimension: size must be 4^k.
  Index dim = 1;
  while (dim * dim < rowMajor.size()) {
    dim *= 2;
  }
  if (dim * dim != rowMajor.size()) {
    throw std::invalid_argument("fromDenseMatrix: size must be 4^k");
  }
  const Qubit levels = dim == 1 ? 0 : static_cast<Qubit>(ilog2(dim));
  if (levels > nQubits_) {
    throw std::invalid_argument("fromDenseMatrix: matrix larger than package");
  }
  auto rec = [&](auto&& self, Index rowOff, Index colOff,
                 Index size) -> mEdge {
    if (size == 1) {
      const Complex w = canonical(rowMajor[rowOff * dim + colOff]);
      return w == Complex{} ? mEdge::zero() : mEdge{mNode::terminal(), w};
    }
    const Index half = size / 2;
    const std::array<mEdge, 4> children{
        self(self, rowOff, colOff, half),
        self(self, rowOff, colOff + half, half),
        self(self, rowOff + half, colOff, half),
        self(self, rowOff + half, colOff + half, half)};
    return makeMatrixNode(static_cast<Qubit>(ilog2(size) - 1), children);
  };
  if (dim == 1) {
    const Complex w = canonical(rowMajor[0]);
    return w == Complex{} ? mEdge::zero() : mEdge{mNode::terminal(), w};
  }
  return rec(rec, 0, 0, dim);
}

vEdge Package::approximate(const vEdge& state, fp budget) {
  if (budget < 0) {
    throw std::invalid_argument("approximate: budget must be >= 0");
  }
  if (state.isZero() || state.isTerminal() || budget == 0) {
    return state;
  }

  // 1. Downward mass: U(node) = sum over root paths of |prefix|^2.
  const auto norms = annotateSubtreeNorms(state);
  std::unordered_map<const vNode*, fp> upstream;
  {
    // Collect nodes in descending level order (children strictly below).
    std::vector<const vNode*> order;
    std::unordered_map<const vNode*, bool> seen;
    std::vector<const vNode*> stack{state.n};
    seen[state.n] = true;
    while (!stack.empty()) {
      const vNode* n = stack.back();
      stack.pop_back();
      order.push_back(n);
      for (const auto& child : n->e) {
        if (!child.isZero() && !child.isTerminal() && !seen[child.n]) {
          seen[child.n] = true;
          stack.push_back(child.n);
        }
      }
    }
    std::sort(order.begin(), order.end(),
              [](const vNode* a, const vNode* b) { return a->v > b->v; });
    upstream[state.n] = norm2(state.w);
    for (const vNode* n : order) {
      const fp u = upstream[n];
      for (const auto& child : n->e) {
        if (!child.isZero() && !child.isTerminal()) {
          upstream[child.n] += u * norm2(child.w);
        }
      }
    }
  }

  // 2. Score every (node, childIndex) edge by the squared-norm mass that
  //    flows through it, and greedily mark the cheapest for removal.
  struct Cut {
    const vNode* parent;
    int childIndex;
    fp mass;
  };
  std::vector<Cut> cuts;
  for (const auto& [node, u] : upstream) {
    for (int i = 0; i < 2; ++i) {
      const vEdge& child = node->e[static_cast<std::size_t>(i)];
      if (child.isZero()) {
        continue;
      }
      const fp sub = child.isTerminal() ? 1.0 : norms.at(child.n);
      cuts.push_back(Cut{node, i, u * norm2(child.w) * sub});
    }
  }
  std::sort(cuts.begin(), cuts.end(),
            [](const Cut& a, const Cut& b) { return a.mass < b.mass; });
  std::unordered_map<const vNode*, unsigned> removeMask;
  fp spent = 0;
  for (const Cut& cut : cuts) {
    if (spent + cut.mass > budget) {
      break;
    }
    // Never cut a node's last surviving edge (that would zero whole paths
    // beyond the accounted mass when the sibling was already cut).
    const unsigned mask = removeMask[cut.parent];
    if (mask != 0) {
      continue;
    }
    removeMask[cut.parent] = 1u << cut.childIndex;
    spent += cut.mass;
  }
  if (spent == 0) {
    return state;
  }

  // 3. Rebuild with the marked edges zeroed, then renormalize.
  std::unordered_map<const vNode*, vEdge> memo;
  auto rebuild = [&](auto&& self, const vEdge& e, Qubit level) -> vEdge {
    if (e.isZero()) {
      return vEdge::zero();
    }
    if (level < 0) {
      return e;
    }
    const auto it = memo.find(e.n);
    if (it != memo.end()) {
      const vEdge& cached = it->second;
      if (cached.isZero()) {
        return vEdge::zero();
      }
      const Complex w = canonical(cached.w * e.w);
      return w == Complex{} ? vEdge::zero() : vEdge{cached.n, w};
    }
    const unsigned mask = removeMask.count(e.n) ? removeMask.at(e.n) : 0;
    std::array<vEdge, 2> children;
    for (int i = 0; i < 2; ++i) {
      if ((mask & (1u << i)) != 0) {
        children[static_cast<std::size_t>(i)] = vEdge::zero();
      } else {
        children[static_cast<std::size_t>(i)] =
            self(self, e.n->e[static_cast<std::size_t>(i)], level - 1);
      }
    }
    const vEdge res = makeVectorNode(level, children);
    memo.emplace(e.n, res);
    if (res.isZero()) {
      return vEdge::zero();
    }
    const Complex w = canonical(res.w * e.w);
    return w == Complex{} ? vEdge::zero() : vEdge{res.n, w};
  };
  vEdge approx = rebuild(rebuild, state, nQubits_ - 1);
  if (approx.isZero()) {
    return state;  // refuse to approximate everything away
  }
  const Complex ip = innerProduct(approx, approx);
  const fp norm = std::sqrt(ip.real());
  if (norm > 0) {
    approx.w = canonical(approx.w / norm);
  }
  return approx;
}

}  // namespace fdd::dd
