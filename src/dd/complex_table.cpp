#include "dd/complex_table.hpp"

#include <bit>
#include <cmath>

namespace fdd::dd {

RealTable::RealTable(fp tolerance) : tol_{tolerance}, bucketWidth_{4 * tolerance} {
  // Pre-seed the values virtually every gate set produces, so they become
  // the representatives rather than whatever jittered variant shows up first.
  for (const fp v : {0.0, 1.0, -1.0, 0.5, -0.5, SQRT2_INV, -SQRT2_INV}) {
    (void)lookup(v);
  }
}

std::int64_t RealTable::bucketOf(fp x) const noexcept {
  return static_cast<std::int64_t>(std::floor(x / bucketWidth_));
}

fp RealTable::lookup(fp x) {
  // Exact and near-zero values snap to canonical +0.0 (zero is special: it
  // decides edge zero-ness, so it must never be "merely close").
  if (x == 0.0 || (x <= tol_ && x >= -tol_)) {
    return 0.0;
  }
  const std::int64_t b = bucketOf(x);
  for (std::int64_t probe = b - 1; probe <= b + 1; ++probe) {
    const auto it = buckets_.find(probe);
    if (it == buckets_.end()) {
      continue;
    }
    for (const fp v : it->second) {
      if (std::abs(v - x) <= tol_) {
        return v;
      }
    }
  }
  buckets_[b].push_back(x);
  ++count_;
  return x;
}

void RealTable::insertExact(fp x) {
  if (x == 0.0) {
    return;  // zero is implicit
  }
  auto& bucket = buckets_[bucketOf(x)];
  for (const fp v : bucket) {
    if (v == x) {
      return;
    }
  }
  bucket.push_back(x);
  ++count_;
}

void RealTable::clear() {
  buckets_.clear();
  count_ = 0;
  for (const fp v : {0.0, 1.0, -1.0, 0.5, -0.5, SQRT2_INV, -SQRT2_INV}) {
    (void)lookup(v);
  }
}

std::size_t RealTable::memoryBytes() const noexcept {
  std::size_t bytes = buckets_.size() *
                      (sizeof(std::int64_t) + sizeof(std::vector<fp>) + 16);
  bytes += count_ * sizeof(fp);
  return bytes;
}

ComplexTable::ComplexTable(fp tolerance) : table_{tolerance} {}

Complex ComplexTable::lookup(Complex z) {
  return {table_.lookup(z.real()), table_.lookup(z.imag())};
}

std::uint64_t weightHash(const Complex& w) noexcept {
  const auto re = std::bit_cast<std::uint64_t>(w.real());
  const auto im = std::bit_cast<std::uint64_t>(w.imag());
  std::uint64_t h = re * 0x9e3779b97f4a7c15ULL;
  h ^= (im + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return h;
}

}  // namespace fdd::dd
