#include "dd/complex_table.hpp"

#include <bit>
#include <cmath>

namespace fdd::dd {

namespace {
constexpr fp kSeedValues[] = {0.0,  1.0,        -1.0,       0.5,
                              -0.5, SQRT2_INV, -SQRT2_INV};
}  // namespace

RealTable::RealTable(fp tolerance)
    : tol_{tolerance}, bucketWidth_{4 * tolerance}, slots_(kSlots) {
  // Pre-seed the values virtually every gate set produces, so they become
  // the representatives rather than whatever jittered variant shows up first.
  for (const fp v : kSeedValues) {
    (void)lookup(v);
  }
}

std::int64_t RealTable::bucketOf(fp x) const noexcept {
  return static_cast<std::int64_t>(std::floor(x / bucketWidth_));
}

std::size_t RealTable::slotOf(std::int64_t id) noexcept {
  auto h = static_cast<std::uint64_t>(id) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return static_cast<std::size_t>(h) & (kSlots - 1);
}

bool RealTable::findIn(std::int64_t id, fp x, fp& out) const noexcept {
  // Acquire on the chain heads pairs with the inserter's release stores, so
  // every node reached through them is fully initialized; interior `next`
  // pointers are immutable after publication.
  const BucketNode* bucket =
      slots_[slotOf(id)].load(std::memory_order_acquire);
  for (; bucket != nullptr; bucket = bucket->next) {
    if (bucket->id != id) {
      continue;
    }
    for (const ValueNode* v = bucket->values.load(std::memory_order_acquire);
         v != nullptr; v = v->next) {
      if (std::abs(v->value - x) <= tol_) {
        out = v->value;
        return true;
      }
    }
    return false;
  }
  return false;
}

fp RealTable::lookup(fp x) {
  // Exact and near-zero values snap to canonical +0.0 (zero is special: it
  // decides edge zero-ness, so it must never be "merely close").
  if (x == 0.0 || (x <= tol_ && x >= -tol_)) {
    return 0.0;
  }
  const std::int64_t b = bucketOf(x);
  fp out;
  for (std::int64_t probe = b - 1; probe <= b + 1; ++probe) {
    if (findIn(probe, x, out)) {
      return out;
    }
  }
  // Miss: insert under the write lock, re-probing first — a concurrent
  // insert within tolerance must win, or two workers would mint distinct
  // representatives for the "same" value and break canonicity.
  const std::lock_guard<std::mutex> lock{writeMutex_};
  for (std::int64_t probe = b - 1; probe <= b + 1; ++probe) {
    if (findIn(probe, x, out)) {
      return out;
    }
  }
  BucketNode* bucket = findOrCreateBucketLocked(b);
  valueArena_.push_back(
      ValueNode{x, bucket->values.load(std::memory_order_relaxed)});
  bucket->values.store(&valueArena_.back(), std::memory_order_release);
  count_.fetch_add(1, std::memory_order_relaxed);
  return x;
}

RealTable::BucketNode* RealTable::findOrCreateBucketLocked(std::int64_t id) {
  std::atomic<BucketNode*>& head = slots_[slotOf(id)];
  for (BucketNode* cur = head.load(std::memory_order_relaxed); cur != nullptr;
       cur = cur->next) {
    if (cur->id == id) {
      return cur;
    }
  }
  bucketArena_.emplace_back(id, head.load(std::memory_order_relaxed));
  BucketNode* bucket = &bucketArena_.back();
  head.store(bucket, std::memory_order_release);
  return bucket;
}

void RealTable::insertExact(fp x) {
  if (x == 0.0) {
    return;  // zero is implicit
  }
  const std::lock_guard<std::mutex> lock{writeMutex_};
  BucketNode* bucket = findOrCreateBucketLocked(bucketOf(x));
  for (const ValueNode* v = bucket->values.load(std::memory_order_relaxed);
       v != nullptr; v = v->next) {
    if (v->value == x) {
      return;
    }
  }
  valueArena_.push_back(
      ValueNode{x, bucket->values.load(std::memory_order_relaxed)});
  bucket->values.store(&valueArena_.back(), std::memory_order_release);
  count_.fetch_add(1, std::memory_order_relaxed);
}

void RealTable::clear() {
  {
    const std::lock_guard<std::mutex> lock{writeMutex_};
    resetLocked();
  }
  for (const fp v : kSeedValues) {
    (void)lookup(v);
  }
}

void RealTable::resetLocked() {
  for (auto& slot : slots_) {
    slot.store(nullptr, std::memory_order_relaxed);
  }
  bucketArena_.clear();
  valueArena_.clear();
  count_.store(0, std::memory_order_relaxed);
}

std::size_t RealTable::memoryBytes() const noexcept {
  std::size_t bytes = slots_.size() * sizeof(std::atomic<BucketNode*>);
  bytes += bucketArena_.size() * sizeof(BucketNode);
  bytes += valueArena_.size() * sizeof(ValueNode);
  return bytes;
}

ComplexTable::ComplexTable(fp tolerance) : table_{tolerance} {}

Complex ComplexTable::lookup(Complex z) {
  return {table_.lookup(z.real()), table_.lookup(z.imag())};
}

std::uint64_t weightHash(const Complex& w) noexcept {
  const auto re = std::bit_cast<std::uint64_t>(w.real());
  const auto im = std::bit_cast<std::uint64_t>(w.imag());
  std::uint64_t h = re * 0x9e3779b97f4a7c15ULL;
  h ^= (im + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return h;
}

}  // namespace fdd::dd
