#include "dd/package.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

#include "common/bits.hpp"
#include "obs/metrics.hpp"

namespace fdd::dd {

namespace {

/// FLATDD_DD_GRAIN: process-wide recursion grain override (parsed once).
/// 0 forces maximal task fan-out (CI exercises this), large values force
/// sequential recursion; unset/-1 keeps the automatic cutoff.
int envDdGrain() noexcept {
  static const int value = [] {
    const char* e = std::getenv("FLATDD_DD_GRAIN");
    if (e == nullptr || *e == '\0') {
      return -1;
    }
    return std::atoi(e);
  }();
  return value;
}

void atomicMaxRelaxed(std::atomic<std::size_t>& a, std::size_t v) noexcept {
  std::size_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Package::Package(Qubit nQubits, fp tolerance)
    : nQubits_{nQubits},
      ctable_{tolerance},
      vUnique_{nQubits},
      mUnique_{nQubits},
      ddGrain_{envDdGrain()} {
  if (nQubits < 1 || nQubits > 40) {
    throw std::invalid_argument("Package: qubit count must be in [1, 40]");
  }
  identCache_.reserve(static_cast<std::size_t>(nQubits));
}

// ---------------------------------------------------------------------------
// Normalization & node construction
// ---------------------------------------------------------------------------

template <typename NodeT>
Edge<NodeT> Package::normalize(Qubit level,
                               std::array<Edge<NodeT>, NodeT::kRadix> e,
                               NodePool<NodeT>& pool,
                               UniqueTable<NodeT>& table) {
  bool allZero = true;
  for (auto& edge : e) {
    if (edge.isZero()) {
      edge = Edge<NodeT>::zero();  // canonical zero (terminal node)
    } else {
      allZero = false;
    }
  }
  if (allZero) {
    return Edge<NodeT>::zero();
  }

  // Divide out the largest-magnitude weight (leftmost on ties) so the node's
  // weight pattern is canonical; the factor moves to the incoming edge.
  std::size_t idx = 0;
  fp best = -1.0;
  for (std::size_t i = 0; i < e.size(); ++i) {
    const fp mag = norm2(e[i].w);
    if (mag > best) {
      best = mag;
      idx = i;
    }
  }
  const Complex top = e[idx].w;
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (i == idx) {
      e[i].w = Complex{1.0};
      continue;
    }
    if (!e[i].isZero()) {
      e[i].w = ctable_.lookup(e[i].w / top);
      if (e[i].isZero()) {
        e[i] = Edge<NodeT>::zero();
      }
    }
  }

  bool created = false;
  NodeT* node = table.getOrInsert(level, e, pool, created);
  if (created) {
    for (const auto& child : e) {
      incRefNode(child.n);
    }
    if constexpr (std::is_same_v<NodeT, mNode>) {
      // Identity detection: [S, 0, 0, S] with weight-1 edges onto an
      // identity (or terminal) child is the identity on qubits [0, level].
      node->ident = e[1].isZero() && e[2].isZero() && e[0] == e[3] &&
                    weightEqual(e[0].w, Complex{1.0}) &&
                    (e[0].isTerminal() || e[0].n->ident);
    }
  }
  return Edge<NodeT>{node, ctable_.lookup(top)};
}

vEdge Package::makeVectorNode(Qubit level, std::array<vEdge, 2> e) {
  assert(level >= 0 && level < nQubits_);
  const vEdge r = normalize(level, e, vPool_, vUnique_);
  atomicMaxRelaxed(peakVNodes_, vUnique_.count());
  return r;
}

mEdge Package::makeMatrixNode(Qubit level, std::array<mEdge, 4> e) {
  assert(level >= 0 && level < nQubits_);
  const mEdge r = normalize(level, e, mPool_, mUnique_);
  atomicMaxRelaxed(peakMNodes_, mUnique_.count());
  return r;
}

// ---------------------------------------------------------------------------
// States
// ---------------------------------------------------------------------------

vEdge Package::makeZeroState() { return makeBasisState(0); }

vEdge Package::makeBasisState(Index bits) {
  if (nQubits_ < 62 && bits >= (Index{1} << nQubits_)) {
    throw std::out_of_range("makeBasisState: basis index out of range");
  }
  vEdge e = vEdge::one();
  for (Qubit l = 0; l < nQubits_; ++l) {
    if (testBit(bits, l)) {
      e = makeVectorNode(l, {vEdge::zero(), e});
    } else {
      e = makeVectorNode(l, {e, vEdge::zero()});
    }
  }
  return e;
}

// ---------------------------------------------------------------------------
// Adjacent-level variable swap (the reorder trick, arXiv:2211.07110)
// ---------------------------------------------------------------------------
//
// Local rewrite at u = lower + 1: a node U at level u with children a, b
// represents f(x_u, x_l, rest) = x_u' [a b] over the level-l subtrees. The
// swapped node U' indexes x_l first, so its child for x_l = i is the level-l
// node over x_u built from the i-children of a and b (weights multiplied
// through, zeros propagated). Levels above u only change because child
// *identities* changed; they are rebuilt through the normalizing
// constructors with a per-node memo (results stored weight-1 and scaled by
// the incoming edge weight — the same factoring the compute tables use).

vEdge Package::swapAdjacent(const vEdge& state, Qubit lower) {
  if (lower < 0 || lower + 1 >= nQubits_) {
    throw std::out_of_range("swapAdjacent: level out of range");
  }
  if (state.isZero() || state.isTerminal() || state.n->v <= lower) {
    return state;  // no node at or above the swapped pair: nothing to do
  }
  std::unordered_map<const vNode*, vEdge> memo;
  return swapAdjacentRec(state, lower, memo);
}

vEdge Package::swapAdjacentRec(const vEdge& e, Qubit lower,
                               std::unordered_map<const vNode*, vEdge>& memo) {
  if (e.isZero()) {
    return vEdge::zero();
  }
  if (e.isTerminal() || e.n->v <= lower) {
    return e;  // untouched strictly below the rewritten level
  }
  const Qubit level = e.n->v;
  if (const auto it = memo.find(e.n); it != memo.end()) {
    vEdge r = it->second;
    if (r.isZero()) {
      return vEdge::zero();
    }
    r.w = ctable_.lookup(r.w * e.w);
    return r.isZero() ? vEdge::zero() : r;
  }
  vEdge result;
  if (level == lower + 1) {
    const vEdge a = e.n->e[0];
    const vEdge b = e.n->e[1];
    // i-child of c's level-l node, with c's weight multiplied through. No
    // level skipping: a nonzero c points to a node at exactly `lower`.
    const auto sub = [&](const vEdge& c, std::size_t i) -> vEdge {
      if (c.isZero()) {
        return vEdge::zero();
      }
      assert(!c.isTerminal() && c.n->v == lower);
      vEdge child = c.n->e[i];
      if (child.isZero()) {
        return vEdge::zero();
      }
      child.w = ctable_.lookup(child.w * c.w);
      return child.isZero() ? vEdge::zero() : child;
    };
    std::array<vEdge, 2> swapped;
    for (std::size_t i = 0; i < 2; ++i) {
      swapped[i] = makeVectorNode(lower, {sub(a, i), sub(b, i)});
    }
    result = makeVectorNode(level, swapped);
  } else {
    std::array<vEdge, 2> children;
    for (std::size_t i = 0; i < 2; ++i) {
      children[i] = swapAdjacentRec(e.n->e[i], lower, memo);
    }
    result = makeVectorNode(level, children);
  }
  memo.emplace(e.n, result);
  if (result.isZero()) {
    return vEdge::zero();
  }
  result.w = ctable_.lookup(result.w * e.w);
  return result.isZero() ? vEdge::zero() : result;
}

// ---------------------------------------------------------------------------
// Reference counting & garbage collection
// ---------------------------------------------------------------------------

namespace {

// Saturation-aware atomic ref updates: terminal nodes (and anything that
// ever hits the ceiling) stay pinned at kRefSaturated forever, so the CAS
// loop never writes them — which also keeps the shared terminals free of
// cross-thread cache-line traffic.
template <typename NodeT>
void incRefImpl(NodeT* n) noexcept {
  std::uint32_t cur = n->ref.load(std::memory_order_relaxed);
  while (cur != kRefSaturated &&
         !n->ref.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_relaxed)) {
  }
}

template <typename NodeT>
void decRefImpl(NodeT* n) noexcept {
  std::uint32_t cur = n->ref.load(std::memory_order_relaxed);
  while (cur != kRefSaturated) {
    assert(cur > 0);
    if (n->ref.compare_exchange_weak(cur, cur - 1,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

void Package::incRefNode(vNode* n) noexcept { incRefImpl(n); }
void Package::incRefNode(mNode* n) noexcept { incRefImpl(n); }
void Package::decRefNode(vNode* n) noexcept { decRefImpl(n); }
void Package::decRefNode(mNode* n) noexcept { decRefImpl(n); }

void Package::garbageCollect(bool force) {
  const std::size_t live = vUnique_.count() + mUnique_.count();
  if (!force && live < gcThreshold_) {
    return;
  }
  ++gcRuns_;
  const std::size_t vCollected = vUnique_.collect(
      vPool_, [](const vEdge& child) { decRefNode(child.n); });
  const std::size_t mCollected = mUnique_.collect(
      mPool_, [](const mEdge& child) { decRefNode(child.n); });
  gcCollected_ += vCollected + mCollected;
  if (mCollected > 0) {
    // Released mNode addresses will be recycled; invalidate anything keyed
    // by raw matrix-node pointers (see mNodeGeneration()).
    ++mNodeGeneration_;
  }

  // Cached results may reference reclaimed nodes.
  vAddTable_.flush();
  mAddTable_.flush();
  mvTable_.flush();
  mmTable_.flush();

  // The complex table accumulates a representative for nearly every distinct
  // amplitude ever produced; on irregular circuits that is unbounded. Once
  // it outgrows the live DD, rebuild it from the weights still on live
  // edges (bit-exact, so live nodes keep hashing identically).
  if (ctable_.size() > ctableRebuildThreshold_) {
    ctable_.clear();
    vUnique_.forEach([this](const vNode* node) {
      for (const auto& child : node->e) {
        ctable_.insertExact(child.w);
      }
    });
    mUnique_.forEach([this](const mNode* node) {
      for (const auto& child : node->e) {
        ctable_.insertExact(child.w);
      }
    });
  }

  // Back off if little was reclaimed so we do not thrash (unless a caller
  // pinned the threshold explicitly).
  if (!gcThresholdPinned_) {
    const std::size_t liveAfter = vUnique_.count() + mUnique_.count();
    gcThreshold_ = std::max<std::size_t>(std::size_t{1} << 16, 2 * liveAfter);
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

PackageStats Package::stats() const {
  PackageStats s;
  s.vNodesLive = vUnique_.count();
  s.mNodesLive = mUnique_.count();
  s.peakVNodes = peakVNodes_.load(std::memory_order_relaxed);
  s.peakMNodes = peakMNodes_.load(std::memory_order_relaxed);
  s.gcRuns = gcRuns_;
  s.gcCollected = gcCollected_;
  s.memoryBytes = vPool_.allocatedBytes() + mPool_.allocatedBytes() +
                  vUnique_.memoryBytes() + mUnique_.memoryBytes() +
                  vAddTable_.memoryBytes() + mAddTable_.memoryBytes() +
                  mvTable_.memoryBytes() + mmTable_.memoryBytes() +
                  ctable_.memoryBytes();
  s.computeHits = vAddTable_.hits() + mAddTable_.hits() + mvTable_.hits() +
                  mmTable_.hits();
  s.computeMisses = vAddTable_.misses() + mAddTable_.misses() +
                    mvTable_.misses() + mmTable_.misses();
  s.computeLostInserts = vAddTable_.lostInserts() + mAddTable_.lostInserts() +
                         mvTable_.lostInserts() + mmTable_.lostInserts();
  if (obs::enabled()) {
    // Publish as gauges so the engine's registry snapshot (and therefore
    // RunReport.metrics) carries the final table health of the run —
    // backends call stats() while filling the report, before the snapshot.
    auto& reg = obs::Registry::instance();
    reg.gauge("dd.compute.hits").set(static_cast<double>(s.computeHits));
    reg.gauge("dd.compute.misses").set(static_cast<double>(s.computeMisses));
    reg.gauge("dd.compute.lost_inserts")
        .set(static_cast<double>(s.computeLostInserts));
  }
  return s;
}

namespace {

/// Canonicity scan of one unique table: no duplicate (level, children)
/// pairs, weights normalized, children one level down, zeros canonical,
/// count consistent with the live chain contents.
template <typename NodeT, typename TableT>
bool checkTableCanonical(const TableT& table) {
  bool ok = true;
  // Group live nodes by structural hash, then compare within groups: any
  // two distinct nodes with equal (level, children) break canonicity.
  std::unordered_map<std::uint64_t, std::vector<const NodeT*>> groups;
  std::size_t visited = 0;
  table.forEach([&](const NodeT* node) {
    ++visited;
    // Normalization stores a literal 1.0 at the chosen maximum and snaps
    // every other weight through the complex table, which can perturb
    // magnitudes by up to the merge tolerance (so another weight's norm may
    // sit a hair above 1, or a near-tie may canonicalize to exactly ±i to
    // the left of the unit edge). The bit-exactly checkable invariant is:
    // some edge carries weight exactly 1, and no weight's norm exceeds 1
    // beyond that tolerance slack.
    constexpr fp kSlack = 1e-8;
    bool hasUnit = false;
    for (const auto& edge : node->e) {
      hasUnit = hasUnit || weightEqual(edge.w, Complex{1.0});
      if (norm2(edge.w) > 1.0 + kSlack) {
        ok = false;  // weight larger than the supposed maximum
      }
    }
    if (!hasUnit) {
      ok = false;  // no unit weight: the node was never normalized
    }
    for (const auto& child : node->e) {
      if (child.isZero()) {
        if (!child.isTerminal() || !weightEqual(child.w, Complex{})) {
          ok = false;  // zero edges must be the canonical zero
        }
      } else if (!child.isTerminal() && child.n->v != node->v - 1) {
        ok = false;  // no level skipping
      }
    }
    auto& group = groups[nodeHash(node->v, node->e)];
    for (const NodeT* other : group) {
      if (other->v == node->v && other->e == node->e) {
        ok = false;  // duplicate canonical node
      }
    }
    group.push_back(node);
  });
  return ok && visited == table.count();
}

}  // namespace

bool Package::checkCanonical() const {
  return checkTableCanonical<vNode>(vUnique_) &&
         checkTableCanonical<mNode>(mUnique_);
}

// Explicit instantiations keep normalize's definition out of the header.
template vEdge Package::normalize<vNode>(Qubit, std::array<vEdge, 2>,
                                         NodePool<vNode>&, UniqueTable<vNode>&);
template mEdge Package::normalize<mNode>(Qubit, std::array<mEdge, 4>,
                                         NodePool<mNode>&, UniqueTable<mNode>&);

}  // namespace fdd::dd
