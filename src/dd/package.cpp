#include "dd/package.hpp"

#include <cassert>
#include <stdexcept>

#include "common/bits.hpp"

namespace fdd::dd {

Package::Package(Qubit nQubits, fp tolerance)
    : nQubits_{nQubits},
      ctable_{tolerance},
      vUnique_{nQubits},
      mUnique_{nQubits} {
  if (nQubits < 1 || nQubits > 40) {
    throw std::invalid_argument("Package: qubit count must be in [1, 40]");
  }
  identCache_.reserve(static_cast<std::size_t>(nQubits));
}

// ---------------------------------------------------------------------------
// Normalization & node construction
// ---------------------------------------------------------------------------

template <typename NodeT>
Edge<NodeT> Package::normalize(Qubit level,
                               std::array<Edge<NodeT>, NodeT::kRadix> e,
                               NodePool<NodeT>& pool,
                               UniqueTable<NodeT>& table) {
  bool allZero = true;
  for (auto& edge : e) {
    if (edge.isZero()) {
      edge = Edge<NodeT>::zero();  // canonical zero (terminal node)
    } else {
      allZero = false;
    }
  }
  if (allZero) {
    return Edge<NodeT>::zero();
  }

  // Divide out the largest-magnitude weight (leftmost on ties) so the node's
  // weight pattern is canonical; the factor moves to the incoming edge.
  std::size_t idx = 0;
  fp best = -1.0;
  for (std::size_t i = 0; i < e.size(); ++i) {
    const fp mag = norm2(e[i].w);
    if (mag > best) {
      best = mag;
      idx = i;
    }
  }
  const Complex top = e[idx].w;
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (i == idx) {
      e[i].w = Complex{1.0};
      continue;
    }
    if (!e[i].isZero()) {
      e[i].w = ctable_.lookup(e[i].w / top);
      if (e[i].isZero()) {
        e[i] = Edge<NodeT>::zero();
      }
    }
  }

  bool created = false;
  NodeT* node = table.getOrInsert(level, e, pool, created);
  if (created) {
    for (const auto& child : e) {
      incRefNode(child.n);
    }
    if constexpr (std::is_same_v<NodeT, mNode>) {
      // Identity detection: [S, 0, 0, S] with weight-1 edges onto an
      // identity (or terminal) child is the identity on qubits [0, level].
      node->ident = e[1].isZero() && e[2].isZero() && e[0] == e[3] &&
                    weightEqual(e[0].w, Complex{1.0}) &&
                    (e[0].isTerminal() || e[0].n->ident);
    }
  }
  return Edge<NodeT>{node, ctable_.lookup(top)};
}

vEdge Package::makeVectorNode(Qubit level, std::array<vEdge, 2> e) {
  assert(level >= 0 && level < nQubits_);
  const vEdge r = normalize(level, e, vPool_, vUnique_);
  peakVNodes_ = std::max(peakVNodes_, vUnique_.count());
  return r;
}

mEdge Package::makeMatrixNode(Qubit level, std::array<mEdge, 4> e) {
  assert(level >= 0 && level < nQubits_);
  const mEdge r = normalize(level, e, mPool_, mUnique_);
  peakMNodes_ = std::max(peakMNodes_, mUnique_.count());
  return r;
}

// ---------------------------------------------------------------------------
// States
// ---------------------------------------------------------------------------

vEdge Package::makeZeroState() { return makeBasisState(0); }

vEdge Package::makeBasisState(Index bits) {
  if (nQubits_ < 62 && bits >= (Index{1} << nQubits_)) {
    throw std::out_of_range("makeBasisState: basis index out of range");
  }
  vEdge e = vEdge::one();
  for (Qubit l = 0; l < nQubits_; ++l) {
    if (testBit(bits, l)) {
      e = makeVectorNode(l, {vEdge::zero(), e});
    } else {
      e = makeVectorNode(l, {e, vEdge::zero()});
    }
  }
  return e;
}

// ---------------------------------------------------------------------------
// Reference counting & garbage collection
// ---------------------------------------------------------------------------

void Package::incRefNode(vNode* n) noexcept {
  if (n->ref != kRefSaturated) {
    ++n->ref;
  }
}
void Package::incRefNode(mNode* n) noexcept {
  if (n->ref != kRefSaturated) {
    ++n->ref;
  }
}
void Package::decRefNode(vNode* n) noexcept {
  if (n->ref != kRefSaturated) {
    assert(n->ref > 0);
    --n->ref;
  }
}
void Package::decRefNode(mNode* n) noexcept {
  if (n->ref != kRefSaturated) {
    assert(n->ref > 0);
    --n->ref;
  }
}

void Package::garbageCollect(bool force) {
  const std::size_t live = vUnique_.count() + mUnique_.count();
  if (!force && live < gcThreshold_) {
    return;
  }
  ++gcRuns_;
  const std::size_t vCollected = vUnique_.collect(
      vPool_, [](const vEdge& child) { decRefNode(child.n); });
  const std::size_t mCollected = mUnique_.collect(
      mPool_, [](const mEdge& child) { decRefNode(child.n); });
  gcCollected_ += vCollected + mCollected;
  if (mCollected > 0) {
    // Released mNode addresses will be recycled; invalidate anything keyed
    // by raw matrix-node pointers (see mNodeGeneration()).
    ++mNodeGeneration_;
  }

  // Cached results may reference reclaimed nodes.
  vAddTable_.flush();
  mAddTable_.flush();
  mvTable_.flush();
  mmTable_.flush();

  // The complex table accumulates a representative for nearly every distinct
  // amplitude ever produced; on irregular circuits that is unbounded. Once
  // it outgrows the live DD, rebuild it from the weights still on live
  // edges (bit-exact, so live nodes keep hashing identically).
  if (ctable_.size() > ctableRebuildThreshold_) {
    ctable_.clear();
    vUnique_.forEach([this](const vNode* node) {
      for (const auto& child : node->e) {
        ctable_.insertExact(child.w);
      }
    });
    mUnique_.forEach([this](const mNode* node) {
      for (const auto& child : node->e) {
        ctable_.insertExact(child.w);
      }
    });
  }

  // Back off if little was reclaimed so we do not thrash (unless a caller
  // pinned the threshold explicitly).
  if (!gcThresholdPinned_) {
    const std::size_t liveAfter = vUnique_.count() + mUnique_.count();
    gcThreshold_ = std::max<std::size_t>(std::size_t{1} << 16, 2 * liveAfter);
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

PackageStats Package::stats() const {
  PackageStats s;
  s.vNodesLive = vUnique_.count();
  s.mNodesLive = mUnique_.count();
  s.peakVNodes = peakVNodes_;
  s.peakMNodes = peakMNodes_;
  s.gcRuns = gcRuns_;
  s.gcCollected = gcCollected_;
  s.memoryBytes = vPool_.allocatedBytes() + mPool_.allocatedBytes() +
                  vUnique_.memoryBytes() + mUnique_.memoryBytes() +
                  vAddTable_.memoryBytes() + mAddTable_.memoryBytes() +
                  mvTable_.memoryBytes() + mmTable_.memoryBytes() +
                  ctable_.memoryBytes();
  return s;
}

// Explicit instantiations keep normalize's definition out of the header.
template vEdge Package::normalize<vNode>(Qubit, std::array<vEdge, 2>,
                                         NodePool<vNode>&, UniqueTable<vNode>&);
template mEdge Package::normalize<mNode>(Qubit, std::array<mEdge, 4>,
                                         NodePool<mNode>&, UniqueTable<mNode>&);

}  // namespace fdd::dd
