#pragma once
// Decision-diagram node and edge types (QMDD representation [86]).
//
// Invariants maintained by Package:
//  * Fully reduced, no level skipping: a nonzero child edge of a node at
//    level l points to a node at level l-1 (the terminal when l == 0).
//  * An edge with weight 0 is always the canonical zero edge
//    {terminal, +0.0+0.0i}.
//  * All edge weights are canonical representatives from the ComplexTable,
//    so weights compare by raw bits.
//  * A node's outgoing weights are normalized: the largest-magnitude weight
//    (leftmost on ties) is exactly 1.

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>

#include "common/types.hpp"
#include "dd/complex_table.hpp"

namespace fdd::dd {

template <typename NodeT>
struct Edge {
  NodeT* n = NodeT::terminal();
  Complex w{};

  [[nodiscard]] bool isTerminal() const noexcept { return n->isTerminal(); }
  /// Canonical zero edge test (valid under the Package invariants).
  [[nodiscard]] bool isZero() const noexcept {
    return w.real() == 0.0 && w.imag() == 0.0;
  }

  [[nodiscard]] static Edge zero() noexcept {
    return {NodeT::terminal(), Complex{}};
  }
  [[nodiscard]] static Edge one() noexcept {
    return {NodeT::terminal(), Complex{1.0}};
  }

  [[nodiscard]] bool operator==(const Edge& o) const noexcept {
    return n == o.n && weightEqual(w, o.w);
  }
};

inline constexpr std::uint32_t kRefSaturated =
    std::numeric_limits<std::uint32_t>::max();

/// Vector DD node: two outgoing edges (the |0> and |1> sub-vectors).
///
/// `ref` is atomic because the parallel DD recursion inc/decrements reference
/// counts from multiple workers (relaxed RMWs — the count is a conservative
/// liveness hint consumed only at single-threaded GC points). `e`, `v` and
/// `next` are written before a node is published through the unique table's
/// release-CAS and are immutable afterwards, so plain reads are race-free.
struct vNode {
  static constexpr std::size_t kRadix = 2;

  std::array<Edge<vNode>, 2> e{};
  vNode* next = nullptr;  // unique-table chain
  std::atomic<std::uint32_t> ref{0};
  Qubit v = -1;           // level; -1 marks the terminal

  [[nodiscard]] bool isTerminal() const noexcept { return v < 0; }

  [[nodiscard]] static vNode* terminal() noexcept { return &terminalNode; }
  static vNode terminalNode;  // defined below (incomplete type here)
};

inline vNode vNode::terminalNode{{}, nullptr, kRefSaturated, -1};

/// Matrix DD node: four outgoing edges in row-major block order
/// e[0]=upper-left, e[1]=upper-right, e[2]=lower-left, e[3]=lower-right.
struct mNode {
  static constexpr std::size_t kRadix = 4;

  std::array<Edge<mNode>, 4> e{};
  mNode* next = nullptr;
  std::atomic<std::uint32_t> ref{0};
  Qubit v = -1;
  /// True when this node represents an exact identity operator on qubits
  /// [0, v]. Set at unique-table insertion; DMAV's Run kernel turns identity
  /// subtrees into one SIMD scale-accumulate instead of 2^(v+1) recursions.
  bool ident = false;

  [[nodiscard]] bool isTerminal() const noexcept { return v < 0; }

  [[nodiscard]] static mNode* terminal() noexcept { return &terminalNode; }
  static mNode terminalNode;  // defined below (incomplete type here)
};

inline mNode mNode::terminalNode{{}, nullptr, kRefSaturated, -1, false};

using vEdge = Edge<vNode>;
using mEdge = Edge<mNode>;

/// Structural hash of a prospective node (level + children).
template <typename NodeT>
[[nodiscard]] std::uint64_t nodeHash(
    Qubit level, const std::array<Edge<NodeT>, NodeT::kRadix>& e) noexcept {
  std::uint64_t h = static_cast<std::uint64_t>(level) * 0xd6e8feb86659fd93ULL;
  for (const auto& edge : e) {
    const auto p = reinterpret_cast<std::uintptr_t>(edge.n);
    h ^= (p * 0xff51afd7ed558ccdULL) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    h ^= weightHash(edge.w) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace fdd::dd
