#include "flatdd/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "flatdd/dmav_cache.hpp"
#include "flatdd/dmav_plan.hpp"
#include "simd/calibration.hpp"

namespace fdd::flat {

namespace {

/// T(node): MACs of the sub-DMAV rooted at `n` (Fig. 8). Memoized — the
/// "MAC count table".
std::uint64_t macCountNode(
    const dd::mNode* n,
    std::unordered_map<const dd::mNode*, std::uint64_t>& table) {
  const auto it = table.find(n);
  if (it != table.end()) {
    return it->second;
  }
  std::uint64_t total = 0;
  for (const auto& child : n->e) {
    if (child.isZero()) {
      continue;
    }
    total += child.isTerminal() ? 1 : macCountNode(child.n, table);
  }
  table.emplace(n, total);
  return total;
}

}  // namespace

std::uint64_t macCount(const dd::mEdge& m) {
  if (m.isZero()) {
    return 0;
  }
  if (m.isTerminal()) {
    return 1;
  }
  std::unordered_map<const dd::mNode*, std::uint64_t> table;
  return macCountNode(m.n, table);
}

fp costNoCache(const dd::mEdge& m, unsigned threads) {
  return static_cast<fp>(macCount(m)) / static_cast<fp>(threads);  // Eq. 5
}

fp costWithCache(const dd::mEdge& m, Qubit nQubits, unsigned threads,
                 fp simdWidth) {
  const ColumnAssignment a = assignColumnSpace(m, nQubits, threads);
  const fp t = static_cast<fp>(a.threads);
  const fp d = simdWidth < fp{1} ? fp{1} : simdWidth;
  const fp dim = static_cast<fp>(Index{1} << nQubits);

  // K2: MACs with repeated border nodes deduplicated per thread; H: hits.
  std::unordered_map<const dd::mNode*, std::uint64_t> table;
  std::uint64_t k2 = 0;
  std::uint64_t hits = 0;
  for (const auto& tasks : a.perThread) {
    std::unordered_set<const dd::mNode*> seen;
    for (const DmavTask& task : tasks) {
      if (task.m.isTerminal()) {
        ++k2;
        continue;
      }
      if (seen.insert(task.m.n).second) {
        k2 += macCountNode(task.m.n, table);
      } else {
        ++hits;
      }
    }
  }
  const fp b = static_cast<fp>(a.numBuffers);
  return static_cast<fp>(k2) / t +
         dim / (d * t) * (static_cast<fp>(hits) / t + b);  // Eq. 6
}

fp dmavCost(const dd::mEdge& m, Qubit nQubits, unsigned threads,
            fp simdWidth) {
  const fp c1 = costNoCache(m, clampDmavThreads(nQubits, threads));
  const fp c2 = costWithCache(m, nQubits, threads, simdWidth);
  return c1 < c2 ? c1 : c2;
}

bool cachingBeneficial(const dd::mEdge& m, Qubit nQubits, unsigned threads,
                       fp simdWidth) {
  const fp c1 = costNoCache(m, clampDmavThreads(nQubits, threads));
  const fp c2 = costWithCache(m, nQubits, threads, simdWidth);
  return c2 < c1;
}

fp dmavCostTierAware(const dd::mEdge& m, Qubit nQubits, unsigned threads) {
  fp c = dmavCost(m, nQubits, threads,
                  simd::calibratedLanes(simd::KernelClass::Mac));
  if (const auto dense = denseBlockProbe(m, nQubits)) {
    const fp dim = static_cast<fp>(Index{1} << nQubits);
    const fp t = static_cast<fp>(clampDmavThreads(nQubits, threads));
    const fp densePass =
        dim * static_cast<fp>(1u << dense->k) /
        (simd::calibratedLanes(simd::KernelClass::Dense) * t);
    c = std::min(c, densePass);
  }
  return c;
}

fp ddPhaseSpeedup(unsigned threads, unsigned coreCap) {
  if (coreCap == 0) {
    if (const char* env = std::getenv("FLATDD_DD_ASSUME_CORES")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) {
        coreCap = static_cast<unsigned>(v);
      }
    }
    if (coreCap == 0) {
      coreCap = std::max(1u, std::thread::hardware_concurrency());
    }
  }
  const unsigned t = std::min(threads, coreCap);
  return t <= 1 ? fp{1} : std::sqrt(static_cast<fp>(t));
}

}  // namespace fdd::flat
