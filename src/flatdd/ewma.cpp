#include "flatdd/ewma.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace fdd::flat {

EwmaMonitor::EwmaMonitor(fp beta, fp epsilon, std::size_t warmupGates,
                         std::size_t minSize)
    : beta_{beta}, epsilon_{epsilon}, warmup_{warmupGates}, minSize_{minSize} {
  if (beta <= 0 || beta >= 1) {
    throw std::invalid_argument("EwmaMonitor: beta must be in (0, 1)");
  }
  if (epsilon <= 0) {
    throw std::invalid_argument("EwmaMonitor: epsilon must be positive");
  }
}

bool EwmaMonitor::observe(std::size_t ddSize) {
  const fp s = static_cast<fp>(ddSize);
  value_ = beta_ * value_ + (1 - beta_) * s;  // Eq. 4
  betaPow_ *= beta_;
  ++count_;
  corrected_ = value_ / (1 - betaPow_);
  const bool eligible = count_ > warmup_ && ddSize >= minSize_;
  const bool triggered = eligible && epsilon_ * corrected_ < s;
  if (log_ != nullptr && obs::enabled()) {
    log_->push_back(EwmaDecision{count_ - 1, ddSize, corrected_,
                                 epsilon_ * corrected_, triggered});
  }
  return triggered;
}

void EwmaMonitor::reset() noexcept {
  value_ = 0;
  corrected_ = 0;
  betaPow_ = 1;
  count_ = 0;
}

}  // namespace fdd::flat
