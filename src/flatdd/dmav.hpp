#pragma once
// DMAV — multiplication of a DD-based gate matrix by an array-based state
// vector (Section 3.2, Algorithm 1). The matrix DD provides O(1) amortized
// indexing (vs O(n) per amplitude for plain array simulators); the flat
// vector avoids the exponential node blow-up of irregular DD states.
//
// Terminology follows the paper: with t threads over n qubits, sub-matrices
// are h x h (h = 2^n / t); `Assign` splits the matrix down to the border
// level n - log2(t) - 1 producing per-thread multiplication tasks; `Run`
// executes one task recursively, bottoming out in one MAC per terminal path.

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "dd/edge.hpp"

namespace fdd::flat {

/// One multiplication task produced by Assign: a sub-matrix DD edge, the
/// start index of its paired sub-vector, and the weight product accumulated
/// along the DD path from the root to (but excluding) this edge.
struct DmavTask {
  dd::mEdge m{};
  Index start = 0;   // row space: start in V; column space: start in partial
  Complex f{1.0};
};

/// Clamps a requested thread count to a power of two that is >= 1,
/// <= 2^nQubits and <= the global pool size.
[[nodiscard]] unsigned clampDmavThreads(Qubit nQubits, unsigned threads);

/// Row-space task assignment (Algorithm 1, Assign): thread u computes output
/// rows [u*h, (u+1)*h).
struct RowAssignment {
  unsigned threads = 1;
  Index h = 0;
  Qubit borderLevel = -1;
  std::vector<std::vector<DmavTask>> perThread;
};
[[nodiscard]] RowAssignment assignRowSpace(const dd::mEdge& m, Qubit nQubits,
                                           unsigned threads);

/// Ablation hook: enables/disables the identity-subtree SIMD fast path in
/// runTask. The paper's Run recurses down to scalar MACs; our fast path
/// services identity subtrees with one SIMD scale-accumulate, which shifts
/// the cached-vs-uncached balance (see bench/fig14_caching). Default: on.
void setIdentFastPath(bool enabled) noexcept;
[[nodiscard]] bool identFastPathEnabled() noexcept;

/// The Run kernel (Algorithm 1, lines 16-22): accumulates
/// f * (sub-matrix under mr) * V[iv..] into W[iw..]. `level` is the level of
/// mr's node. Thread-safe for disjoint W ranges.
void runTask(const dd::mEdge& mr, const Complex* v, Complex* w, Qubit level,
             Index iv, Index iw, Complex f);

/// DMAV without caching: W = M * V on `threads` workers. W is overwritten.
/// V and W must both have size 2^nQubits and must not alias. Executes by
/// compiling a throwaway row-mode DmavPlan and replaying it (see
/// dmav_plan.hpp); callers that apply the same gate repeatedly should cache
/// the plan (PlanCache) and call replayPlan directly.
void dmav(const dd::mEdge& m, Qubit nQubits, std::span<const Complex> v,
          std::span<Complex> w, unsigned threads);

/// The pre-plan execution path (Alg. 1 verbatim: Assign + recursive Run per
/// application). Kept as the baseline for benchmarks and differential tests.
void dmavRecursive(const dd::mEdge& m, Qubit nQubits,
                   std::span<const Complex> v, std::span<Complex> w,
                   unsigned threads);

}  // namespace fdd::flat
